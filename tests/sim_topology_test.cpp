#include "sim/topology.hpp"

#include <gtest/gtest.h>

#include "core/registry.hpp"

namespace hpcmon::sim {
namespace {

MachineShape small_shape() {
  MachineShape s;
  s.cabinets = 2;
  s.chassis_per_cabinet = 2;
  s.blades_per_chassis = 4;
  s.nodes_per_blade = 4;
  s.gpu_node_fraction = 0.25;
  s.filesystems = 2;
  s.osts_per_filesystem = 4;
  return s;
}

TEST(TopologyTest, CountsMatchShape) {
  core::MetricRegistry reg;
  Topology topo(reg, small_shape(), FabricKind::kTorus3D);
  EXPECT_EQ(topo.num_nodes(), 2 * 2 * 4 * 4);
  EXPECT_EQ(topo.num_cabinets(), 2);
  EXPECT_EQ(topo.num_routers(), 2 * 2 * 4);
  EXPECT_EQ(topo.num_filesystems(), 2);
  EXPECT_EQ(topo.osts_per_fs(), 4);
}

TEST(TopologyTest, CrayStyleNames) {
  core::MetricRegistry reg;
  Topology topo(reg, small_shape(), FabricKind::kTorus3D);
  EXPECT_EQ(reg.component(topo.node(0)).name, "c0-0c0s0n0");
  EXPECT_EQ(reg.component(topo.node(5)).name, "c0-0c0s1n1");
  // Last node of the machine is in the last cabinet/chassis/blade.
  EXPECT_EQ(reg.component(topo.node(topo.num_nodes() - 1)).name,
            "c1-0c1s3n3");
}

TEST(TopologyTest, NodeIndexRoundTrip) {
  core::MetricRegistry reg;
  Topology topo(reg, small_shape(), FabricKind::kTorus3D);
  for (int i = 0; i < topo.num_nodes(); i += 7) {
    EXPECT_EQ(topo.node_index(topo.node(i)), i);
  }
  EXPECT_EQ(topo.node_index(topo.cabinet(0)), -1);
}

TEST(TopologyTest, GpuAssignment) {
  core::MetricRegistry reg;
  Topology topo(reg, small_shape(), FabricKind::kTorus3D);
  const int expect_gpus = topo.num_nodes() / 4;
  int gpus = 0;
  for (int i = 0; i < topo.num_nodes(); ++i) {
    if (topo.node_has_gpu(i)) {
      ++gpus;
      EXPECT_NE(topo.gpu_of(i), core::kNoComponent);
    } else {
      EXPECT_EQ(topo.gpu_of(i), core::kNoComponent);
    }
  }
  EXPECT_EQ(gpus, expect_gpus);
}

TEST(TopologyTest, CabinetMembership) {
  core::MetricRegistry reg;
  Topology topo(reg, small_shape(), FabricKind::kTorus3D);
  const auto cab0 = topo.nodes_in_cabinet(0);
  EXPECT_EQ(static_cast<int>(cab0.size()), topo.shape().nodes_per_cabinet());
  for (const int n : cab0) EXPECT_EQ(topo.cabinet_of_node(n), 0);
  EXPECT_EQ(topo.cabinet_of_node(topo.num_nodes() - 1), 1);
}

TEST(TopologyTest, TorusLinksAreBidirectionalAndDegreeBounded) {
  core::MetricRegistry reg;
  Topology topo(reg, small_shape(), FabricKind::kTorus3D);
  for (int l = 0; l < topo.num_links(); ++l) {
    const auto& li = topo.link(l);
    EXPECT_GE(topo.link_between(li.dst_router, li.src_router), 0)
        << "missing reverse link";
    EXPECT_FALSE(li.global);
  }
  // Each router has at most 6 outgoing links in a 3D torus.
  for (int r = 0; r < topo.num_routers(); ++r) {
    EXPECT_LE(topo.links_from(r).size(), 6u);
    EXPECT_GE(topo.links_from(r).size(), 1u);
  }
}

TEST(TopologyTest, TorusCoordinates) {
  core::MetricRegistry reg;
  Topology topo(reg, small_shape(), FabricKind::kTorus3D);
  const auto c0 = topo.torus_coord(0);
  EXPECT_EQ(c0.x, 0);
  EXPECT_EQ(c0.y, 0);
  EXPECT_EQ(c0.z, 0);
  const auto c5 = topo.torus_coord(5);  // x_dim=4 -> (1, 1, 0)
  EXPECT_EQ(c5.x, 1);
  EXPECT_EQ(c5.y, 1);
  EXPECT_EQ(c5.z, 0);
}

TEST(TopologyTest, DragonflyGroupsAndGlobalLinks) {
  core::MetricRegistry reg;
  Topology topo(reg, small_shape(), FabricKind::kDragonfly);
  // Intra-group all-to-all: per_group routers = 8 -> 8*7 directed links per
  // group; 2 groups; plus 2 global directed links between the pair.
  const int per_group = 8;
  EXPECT_EQ(topo.num_links(), 2 * per_group * (per_group - 1) + 2);
  int globals = 0;
  for (int l = 0; l < topo.num_links(); ++l) {
    if (topo.link(l).global) {
      ++globals;
      EXPECT_NE(topo.group_of(topo.link(l).src_router),
                topo.group_of(topo.link(l).dst_router));
    }
  }
  EXPECT_EQ(globals, 2);
  EXPECT_EQ(topo.group_of(0), 0);
  EXPECT_EQ(topo.group_of(per_group), 1);
}

TEST(TopologyTest, ComponentKindsRegistered) {
  core::MetricRegistry reg;
  Topology topo(reg, small_shape(), FabricKind::kDragonfly);
  EXPECT_EQ(reg.components_of_kind(core::ComponentKind::kCabinet).size(), 2u);
  EXPECT_EQ(reg.components_of_kind(core::ComponentKind::kNode).size(), 64u);
  EXPECT_EQ(reg.components_of_kind(core::ComponentKind::kFsTarget).size(),
            2u * (1 + 4));
  EXPECT_EQ(reg.components_of_kind(core::ComponentKind::kFacility).size(), 1u);
}

}  // namespace
}  // namespace hpcmon::sim
