// Property-style relay resume test: a reference run with no faults fixes
// the expected aggregator contents, then the SAME workload is replayed with
// a connection kill scripted at EVERY socket-op index the fault-free run
// used (connect, each send, each ack read), plus seeded random multi-fault
// runs. Whatever the kill point, the aggregator must converge to the
// byte-exact reference — no acknowledged loss, no duplicate application.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "core/rng.hpp"
#include "relay/client.hpp"
#include "resilience/fault.hpp"
#include "serve/server.hpp"
#include "store/tsdb.hpp"

namespace hpcmon::relay {
namespace {

struct Upstream {
  store::TimeSeriesStore store;
  std::atomic<std::uint64_t> applies{0};
  std::unique_ptr<serve::ServeServer> server;

  explicit Upstream(core::SocketFaultInjector* faults) {
    serve::ServeConfig sc;
    sc.socket_faults = faults;
    serve::ServeHooks hooks;
    hooks.relay_apply = [this](const core::SampleBatch& b, core::Priority) {
      ++applies;
      return store.append_batch(b.samples);
    };
    server = std::make_unique<serve::ServeServer>(sc, std::move(hooks));
    EXPECT_TRUE(server->start()) << server->error();
  }
};

constexpr int kBatches = 24;
constexpr int kSeriesCount = 3;
constexpr int kSamplesPerBatch = 4;

/// Run the canonical workload through `plan` and return the resulting
/// upstream store contents as (series, time, value) triples. `converged`
/// reports whether every entry was acked within the deadline.
std::vector<std::vector<core::TimedValue>> run_workload(
    resilience::FaultPlan* plan, bool* converged,
    std::uint64_t* duplicates = nullptr, std::uint64_t* rejected = nullptr) {
  Upstream up(plan);
  RelayConfig rc;
  rc.upstream_port = up.server->port();
  rc.backoff_ms = 1;
  rc.backoff_max_ms = 20;
  rc.ack_timeout_ms = 400;
  rc.socket_faults = plan;
  RelayClient client(rc);
  EXPECT_TRUE(client.start());
  for (int b = 0; b < kBatches; ++b) {
    core::SampleBatch batch;
    batch.sweep_time = b * 100;
    for (int s = 0; s < kSeriesCount; ++s) {
      for (int i = 0; i < kSamplesPerBatch; ++i) {
        batch.samples.push_back({core::SeriesId{static_cast<std::uint32_t>(s)},
                                 b * 100 + i * 10,
                                 static_cast<double>(b * 1000 + s * 100 + i)});
      }
    }
    client.submit(batch);
  }
  *converged = client.drain_for(30000);
  client.stop();
  if (duplicates != nullptr) {
    *duplicates = up.server->stats().relay_duplicates;
  }
  if (rejected != nullptr) *rejected = client.stats().rejected_batches;
  std::vector<std::vector<core::TimedValue>> contents;
  for (int s = 0; s < kSeriesCount; ++s) {
    contents.push_back(up.store.query_range(
        core::SeriesId{static_cast<std::uint32_t>(s)},
        {0, kBatches * 100 + core::kHour}));
  }
  return contents;
}

TEST(RelayResumeTest, EveryKillPointConvergesToTheFaultFreeReference) {
  // Reference run: a zero-fault plan both counts the socket ops the
  // workload needs and fixes the expected store contents.
  resilience::FaultPlan reference_plan(1);
  bool converged = false;
  const auto reference = run_workload(&reference_plan, &converged);
  ASSERT_TRUE(converged);
  const std::uint64_t fault_free_ops = reference_plan.socket_ops();
  ASSERT_GT(fault_free_ops, static_cast<std::uint64_t>(kBatches));
  ASSERT_EQ(reference.size(), static_cast<std::size_t>(kSeriesCount));
  ASSERT_EQ(reference[0].size(),
            static_cast<std::size_t>(kBatches * kSamplesPerBatch));

  // Kill the connection at every op index the fault-free run used — every
  // connect, every append send, every ack read, client side and server
  // side (both draw from the same monotone op stream).
  for (std::uint64_t kill = 1; kill <= fault_free_ops; ++kill) {
    resilience::FaultSpec spec;
    spec.sock_reset_at = kill;
    resilience::FaultPlan plan(1);
    plan.set_spec(spec);
    bool ok = false;
    std::uint64_t rejected = 0;
    const auto contents = run_workload(&plan, &ok, nullptr, &rejected);
    EXPECT_TRUE(ok) << "kill at op " << kill << " never converged";
    EXPECT_EQ(rejected, 0u) << "kill at op " << kill;
    EXPECT_EQ(contents, reference)
        << "kill at op " << kill << " diverged from the reference";
  }
}

TEST(RelayResumeTest, SeededRandomFaultStormsConvergeWithoutLossOrDoubles) {
  resilience::FaultPlan reference_plan(1);
  bool converged = false;
  const auto reference = run_workload(&reference_plan, &converged);
  ASSERT_TRUE(converged);

  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    resilience::FaultSpec spec;
    spec.sock_reset_p = 0.03;
    spec.sock_stall_p = 0.02;
    spec.sock_short_write_p = 0.10;
    spec.sock_short_read_p = 0.10;
    spec.sock_torn_frame_p = 0.02;
    resilience::FaultPlan plan(seed * 7919);
    plan.set_spec(spec);
    bool ok = false;
    std::uint64_t duplicates = 0;
    std::uint64_t rejected = 0;
    const auto contents = run_workload(&plan, &ok, &duplicates, &rejected);
    EXPECT_TRUE(ok) << "seed " << seed << " never converged";
    EXPECT_EQ(rejected, 0u) << "seed " << seed;
    EXPECT_EQ(contents, reference)
        << "seed " << seed << " diverged (duplicates acked-without-reapply: "
        << duplicates << ")";
  }
}

}  // namespace
}  // namespace hpcmon::relay
