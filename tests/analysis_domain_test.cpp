// Correlation, power profiles/imbalance, congestion, variability, backlog.
#include <gtest/gtest.h>

#include "analysis/backlog.hpp"
#include "analysis/congestion.hpp"
#include "analysis/correlate.hpp"
#include "analysis/power_profile.hpp"
#include "analysis/variability.hpp"
#include "core/registry.hpp"
#include "core/rng.hpp"

namespace hpcmon::analysis {
namespace {

using core::ComponentId;
using core::TimedValue;

// -- Correlation --------------------------------------------------------------

TEST(AssociateTest, ExactMatchingWithoutSkew) {
  std::vector<Occurrence> a;
  std::vector<Occurrence> b;
  for (int i = 0; i < 10; ++i) {
    a.push_back({i * core::kMinute, ComponentId{1}});
    b.push_back({i * core::kMinute, ComponentId{2}});
  }
  const auto r = associate(a, b, 0);
  EXPECT_EQ(r.matched, 10u);
  EXPECT_DOUBLE_EQ(r.recall_a(), 1.0);
}

TEST(AssociateTest, SkewBreaksExactButNotWindowed) {
  std::vector<Occurrence> a;
  std::vector<Occurrence> b;
  for (int i = 0; i < 10; ++i) {
    a.push_back({i * core::kMinute, ComponentId{1}});
    b.push_back({i * core::kMinute + 300 * core::kMillisecond, ComponentId{2}});
  }
  EXPECT_EQ(associate(a, b, 0).matched, 0u);  // drift kills exact matching
  EXPECT_EQ(associate(a, b, core::kSecond).matched, 10u);
}

TEST(AssociateTest, EachBConsumedOnce) {
  std::vector<Occurrence> a{{0, ComponentId{1}}, {1, ComponentId{1}}};
  std::vector<Occurrence> b{{0, ComponentId{2}}};
  const auto r = associate(a, b, 10);
  EXPECT_EQ(r.matched, 1u);
  EXPECT_EQ(r.unmatched_a, 1u);
  EXPECT_EQ(r.unmatched_b, 0u);
}

TEST(ConcurrentTest, FindsOverlapGroups) {
  std::vector<ConditionInterval> intervals{
      {ComponentId{1}, {0, 100}, "ost slow"},
      {ComponentId{2}, {50, 150}, "mds slow"},
      {ComponentId{3}, {200, 300}, "link down"},
  };
  const auto groups = find_concurrent(intervals, 2);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].overlap, (core::TimeRange{50, 100}));
  EXPECT_EQ(groups[0].components.size(), 2u);
}

TEST(ConcurrentTest, ThreeWayOverlapAndThreshold) {
  std::vector<ConditionInterval> intervals{
      {ComponentId{1}, {0, 100}, "a"},
      {ComponentId{2}, {10, 90}, "b"},
      {ComponentId{3}, {20, 80}, "c"},
  };
  EXPECT_FALSE(find_concurrent(intervals, 3).empty());
  const auto strict = find_concurrent(intervals, 3);
  EXPECT_EQ(strict[0].overlap, (core::TimeRange{20, 80}));
  EXPECT_TRUE(find_concurrent(intervals, 4).empty());
}

TEST(ConcurrentTest, EmptyAndSingle) {
  EXPECT_TRUE(find_concurrent({}, 2).empty());
  EXPECT_TRUE(
      find_concurrent({{ComponentId{1}, {0, 10}, "x"}}, 2).empty());
}

// -- Power profiles -----------------------------------------------------------

std::vector<TimedValue> power_trace(double base, double burst_at_frac,
                                    std::size_t n = 200) {
  std::vector<TimedValue> out;
  for (std::size_t i = 0; i < n; ++i) {
    double v = base;
    const double frac = static_cast<double>(i) / n;
    if (frac > burst_at_frac && frac < burst_at_frac + 0.1) v = base * 1.5;
    out.push_back({static_cast<core::TimePoint>(i) * core::kMinute, v});
  }
  return out;
}

TEST(PowerProfileTest, SameShapeScoresNearZero) {
  PowerProfileLibrary lib;
  lib.set_reference(PowerProfile::from_trace("vasp", power_trace(100, 0.5)));
  // Same shape, different absolute level and length: normalization handles it.
  const auto score = lib.score_run("vasp", power_trace(250, 0.5, 400));
  ASSERT_TRUE(score.has_value());
  EXPECT_LT(*score, 0.05);
}

TEST(PowerProfileTest, DifferentShapeScoresHigh) {
  PowerProfileLibrary lib;
  lib.set_reference(PowerProfile::from_trace("vasp", power_trace(100, 0.5)));
  const auto score = lib.score_run("vasp", power_trace(100, 0.1));
  ASSERT_TRUE(score.has_value());
  EXPECT_GT(*score, 0.15);
  EXPECT_FALSE(lib.score_run("unknown_app", power_trace(1, 0.5)).has_value());
}

TEST(ImbalanceTest, DetectsFig3Pattern) {
  // 4 cabinets, 60 minutes. Minutes 17-22: cabinet 0 stays busy, others drop
  // to near idle (the KAUST load-imbalance bug).
  std::vector<std::vector<TimedValue>> cabinets(4);
  for (int m = 0; m < 60; ++m) {
    const bool bad = m >= 17 && m < 23;
    for (int c = 0; c < 4; ++c) {
      double watts = 30000.0;
      if (bad && c != 0) watts = 11000.0;
      cabinets[c].push_back({m * core::kMinute, watts});
    }
  }
  const auto windows = detect_imbalance(cabinets);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].range.begin, 17 * core::kMinute);
  EXPECT_EQ(windows[0].range.end, 23 * core::kMinute);
  EXPECT_NEAR(windows[0].max_ratio, 30000.0 / 11000.0, 0.01);
  // System draw dropped vs baseline: 120kW -> 63kW ~ 1.9x (the Fig 3 number).
  EXPECT_NEAR(windows[0].draw_drop, 120.0 / 63.0, 0.02);
}

TEST(ImbalanceTest, BalancedLoadIsQuiet) {
  std::vector<std::vector<TimedValue>> cabinets(4);
  core::Rng rng(9);
  for (int m = 0; m < 60; ++m) {
    for (int c = 0; c < 4; ++c) {
      cabinets[c].push_back({m * core::kMinute, rng.normal(30000.0, 500.0)});
    }
  }
  EXPECT_TRUE(detect_imbalance(cabinets).empty());
}

TEST(ImbalanceTest, ShortBlipIgnored) {
  std::vector<std::vector<TimedValue>> cabinets(2);
  for (int m = 0; m < 30; ++m) {
    const bool blip = m == 10;  // one sample only
    cabinets[0].push_back({m * core::kMinute, 30000.0});
    cabinets[1].push_back({m * core::kMinute, blip ? 10000.0 : 30000.0});
  }
  ImbalanceParams params;
  params.min_duration = 2 * core::kMinute;
  EXPECT_TRUE(detect_imbalance(cabinets, params).empty());
}

// -- Congestion ---------------------------------------------------------------

struct CongestionFixture {
  core::MetricRegistry reg;
  sim::MachineShape shape;
  std::unique_ptr<sim::Topology> topo;

  CongestionFixture() {
    shape.cabinets = 2;
    shape.chassis_per_cabinet = 2;
    shape.blades_per_chassis = 4;
    shape.nodes_per_blade = 4;
    topo = std::make_unique<sim::Topology>(reg, shape,
                                           sim::FabricKind::kTorus3D);
  }
};

TEST(CongestionTest, QuietFabric) {
  CongestionFixture f;
  std::vector<double> stalls(f.topo->num_links(), 0.0);
  const auto report = analyze_congestion(*f.topo, stalls);
  EXPECT_EQ(report.level, CongestionLevel::kNone);
  EXPECT_TRUE(report.regions.empty());
}

TEST(CongestionTest, RegionsFollowAdjacency) {
  CongestionFixture f;
  std::vector<double> stalls(f.topo->num_links(), 0.0);
  // Congest all links out of router 0 -> one region around router 0.
  for (const int li : f.topo->links_from(0)) stalls[li] = 0.5;
  // Plus one isolated congested link far away.
  const int far_router = f.topo->num_routers() - 1;
  stalls[f.topo->links_from(far_router)[0]] = 0.3;
  const auto report = analyze_congestion(*f.topo, stalls);
  EXPECT_EQ(report.regions.size(), 2u);
  EXPECT_GT(report.regions[0].links.size(), report.regions[1].links.size());
  EXPECT_GT(report.level, CongestionLevel::kNone);
}

TEST(CongestionTest, LevelGrading) {
  CongestionFixture f;
  std::vector<double> stalls(f.topo->num_links(), 0.0);
  const int n = f.topo->num_links();
  for (int i = 0; i < n / 5; ++i) stalls[i] = 1.0;  // 20% congested
  EXPECT_EQ(analyze_congestion(*f.topo, stalls).level,
            CongestionLevel::kHigh);
  std::fill(stalls.begin(), stalls.end(), 0.0);
  for (int i = 0; i < std::max(1, n / 12); ++i) stalls[i] = 1.0;  // ~8%
  EXPECT_EQ(analyze_congestion(*f.topo, stalls).level,
            CongestionLevel::kMedium);
}

TEST(CongestionTest, SizeMismatchYieldsEmptyReport) {
  CongestionFixture f;
  const auto report = analyze_congestion(*f.topo, {0.1, 0.2});
  EXPECT_EQ(report.level, CongestionLevel::kNone);
}

// -- Variability --------------------------------------------------------------

store::JobMeta run(std::uint64_t id, const std::string& app,
                   core::TimePoint start, core::Duration runtime) {
  store::JobMeta j;
  j.id = core::JobId{id};
  j.app_name = app;
  j.start_time = start;
  j.end_time = start + runtime;
  j.submit_time = start;
  return j;
}

TEST(VariabilityTest, ClassifiesVictimByCv) {
  store::JobStore jobs;
  // "victim": runtimes 10, 10, 14, 15 min (high CV).
  std::uint64_t id = 1;
  core::TimePoint t = 0;
  for (const int minutes : {10, 10, 14, 15}) {
    jobs.record_end(run(id++, "victim", t, minutes * core::kMinute));
    t += 20 * core::kMinute;
  }
  // "steady": constant runtimes.
  t = 0;
  for (int i = 0; i < 4; ++i) {
    jobs.record_end(run(id++, "steady", t, 10 * core::kMinute));
    t += 20 * core::kMinute;
  }
  VariabilityAnalyzer analyzer;
  const auto classes = analyzer.classify(jobs);
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_EQ(classes[0].app_name, "victim");  // sorted by CV desc
  EXPECT_TRUE(classes[0].is_victim);
  EXPECT_FALSE(classes[1].is_victim);
}

TEST(VariabilityTest, SuspectsOverlapSlowRuns) {
  store::JobStore jobs;
  std::uint64_t id = 1;
  // victim runs: normal at t=0, slow at t=100min.
  jobs.record_end(run(id++, "victim", 0, 10 * core::kMinute));
  jobs.record_end(run(id++, "victim", 30 * core::kMinute, 10 * core::kMinute));
  jobs.record_end(run(id++, "victim", 100 * core::kMinute, 16 * core::kMinute));
  // aggressor overlaps only the slow run.
  jobs.record_end(run(id++, "blaster", 98 * core::kMinute, 20 * core::kMinute));
  jobs.record_end(run(id++, "blaster", 200 * core::kMinute, 20 * core::kMinute));
  jobs.record_end(run(id++, "blaster", 240 * core::kMinute, 20 * core::kMinute));
  // bystander never overlaps a slow run.
  jobs.record_end(run(id++, "bystander", 0, 5 * core::kMinute));
  jobs.record_end(run(id++, "bystander", 31 * core::kMinute, 5 * core::kMinute));
  jobs.record_end(run(id++, "bystander", 200 * core::kMinute, 5 * core::kMinute));

  VariabilityAnalyzer analyzer;
  const auto suspects = analyzer.suspects(jobs);
  ASSERT_GE(suspects.size(), 1u);
  EXPECT_EQ(suspects[0].app_name, "blaster");
  for (const auto& s : suspects) EXPECT_NE(s.app_name, "victim");
  for (const auto& s : suspects) EXPECT_NE(s.app_name, "bystander");
}

TEST(VariabilityTest, MinRunsFilter) {
  store::JobStore jobs;
  jobs.record_end(run(1, "rare", 0, 10 * core::kMinute));
  VariabilityAnalyzer analyzer;
  EXPECT_TRUE(analyzer.classify(jobs).empty());
}

// -- Backlog ------------------------------------------------------------------

TEST(BacklogTest, DetectsFillAndDrain) {
  std::vector<TimedValue> depth;
  // Stable at 10 for 30 min, then fills 10/min for 10 min, stable, then
  // drains fast.
  int d = 10;
  for (int m = 0; m < 30; ++m) depth.push_back({m * core::kMinute, 1.0 * d});
  for (int m = 30; m < 40; ++m) {
    d += 10;
    depth.push_back({m * core::kMinute, 1.0 * d});
  }
  for (int m = 40; m < 50; ++m) depth.push_back({m * core::kMinute, 1.0 * d});
  for (int m = 50; m < 60 && d > 0; ++m) {
    d = std::max(0, d - 30);
    depth.push_back({m * core::kMinute, 1.0 * d});
  }
  const auto events = detect_backlog_events(depth);
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events[0].signal, BacklogSignal::kRapidFill);
  EXPECT_GT(events[0].rate_jobs_per_min, 0.0);
  bool drain = false;
  for (const auto& e : events) {
    if (e.signal == BacklogSignal::kRapidDrain) drain = true;
  }
  EXPECT_TRUE(drain);
}

TEST(BacklogTest, StableQueueIsQuiet) {
  std::vector<TimedValue> depth;
  for (int m = 0; m < 120; ++m) {
    depth.push_back({m * core::kMinute, 20.0 + (m % 3)});
  }
  EXPECT_TRUE(detect_backlog_events(depth).empty());
}

TEST(BacklogTest, WaitEstimate) {
  // 40 queued, mean runtime 1200 s, 10 running -> 4800 s.
  EXPECT_DOUBLE_EQ(estimate_wait_seconds(40, 1200, 10), 4800.0);
  EXPECT_DOUBLE_EQ(estimate_wait_seconds(0, 1200, 10), 0.0);
  EXPECT_GT(estimate_wait_seconds(5, 1200, 0), 1e17);  // scheduler wedged
}

}  // namespace
}  // namespace hpcmon::analysis
