#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "sim/filesystem.hpp"

namespace hpcmon::sim {
namespace {

struct SchedFixture {
  core::MetricRegistry reg;
  MachineShape shape;
  std::unique_ptr<Topology> topo;
  std::unique_ptr<Fabric> fabric;
  std::unique_ptr<FsModel> fs;
  std::unique_ptr<Scheduler> sched;
  std::vector<NodeState> nodes;
  std::vector<core::LogEvent> logs;
  core::TimePoint now = 0;

  explicit SchedFixture(PlacementPolicy policy = PlacementPolicy::kFirstFit) {
    shape.cabinets = 2;
    shape.chassis_per_cabinet = 2;
    shape.blades_per_chassis = 4;
    shape.nodes_per_blade = 4;  // 64 nodes
    topo = std::make_unique<Topology>(reg, shape, FabricKind::kTorus3D);
    fabric = std::make_unique<Fabric>(*topo, FabricParams{}, core::Rng(1));
    fs = std::make_unique<FsModel>(*topo, FsParams{}, core::Rng(2));
    sched = std::make_unique<Scheduler>(*topo, *fabric, *fs, policy,
                                        core::Rng(3));
    nodes.resize(topo->num_nodes());
  }

  void tick() {
    now += core::kSecond;
    sched->apply_loads(now, nodes);
    fabric->tick(now, core::kSecond, logs);
    fs->tick(now, core::kSecond, logs);
    sched->advance(now, core::kSecond, nodes, logs);
  }

  JobRequest request(int n, core::Duration runtime,
                     AppProfile profile = app_compute_bound()) {
    JobRequest r;
    r.num_nodes = n;
    r.nominal_runtime = runtime;
    r.profile = std::move(profile);
    return r;
  }
};

TEST(SchedulerTest, JobRunsToCompletionOnTime) {
  SchedFixture f;
  const auto id = f.sched->submit(0, f.request(8, 10 * core::kSecond));
  EXPECT_EQ(f.sched->queue_depth(), 1);
  f.tick();
  EXPECT_EQ(f.sched->queue_depth(), 0);
  EXPECT_EQ(f.sched->running_count(), 1);
  const auto* rec = f.sched->job(id);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->nodes.size(), 8u);
  for (int i = 0; i < 12; ++i) f.tick();
  EXPECT_EQ(f.sched->job(id)->state, JobState::kCompleted);
  // A compute job with no contention finishes in ~nominal time.
  EXPECT_LE(f.sched->job(id)->actual_runtime(), 12 * core::kSecond);
  EXPECT_EQ(f.sched->running_count(), 0);
}

TEST(SchedulerTest, NodesAreExclusive) {
  SchedFixture f;
  f.sched->submit(0, f.request(40, core::kMinute));
  f.sched->submit(0, f.request(40, core::kMinute));
  f.tick();
  // Only one 40-node job fits in 64 nodes.
  EXPECT_EQ(f.sched->running_count(), 1);
  EXPECT_EQ(f.sched->queue_depth(), 1);
  // Node ownership is consistent.
  int owned = 0;
  for (int i = 0; i < f.topo->num_nodes(); ++i) {
    if (f.sched->job_on_node(i) != core::kNoJob) ++owned;
  }
  EXPECT_EQ(owned, 40);
}

TEST(SchedulerTest, BackfillStartsSmallJobBehindBlockedLarge) {
  SchedFixture f;
  f.sched->submit(0, f.request(60, core::kMinute));  // takes most nodes
  f.sched->submit(0, f.request(60, core::kMinute));  // blocked
  f.sched->submit(0, f.request(4, core::kMinute));   // backfills
  f.tick();
  EXPECT_EQ(f.sched->running_count(), 2);  // large + small
  EXPECT_EQ(f.sched->queue_depth(), 1);
}

TEST(SchedulerTest, TopoAwarePlacementIsCompact) {
  SchedFixture ff(PlacementPolicy::kFirstFit);
  SchedFixture rand(PlacementPolicy::kRandom);
  SchedFixture topo(PlacementPolicy::kTopoAware);
  // Fragment the machine: occupy alternating blocks with small jobs, then
  // place a larger job.
  for (auto* f : {&ff, &rand, &topo}) {
    for (int i = 0; i < 6; ++i) {
      f->sched->submit(0, f->request(4, core::kHour));
    }
    f->tick();
    f->sched->submit(0, f->request(16, core::kMinute));
    f->tick();
  }
  // Topology-aware span should be no worse than random placement's span.
  EXPECT_LE(topo.sched->mean_placement_span(),
            rand.sched->mean_placement_span());
}

TEST(SchedulerTest, UnavailableNodesAreSkipped) {
  SchedFixture f;
  for (int i = 0; i < 32; ++i) f.sched->set_node_available(i, false);
  const auto id = f.sched->submit(0, f.request(20, core::kMinute));
  f.tick();
  EXPECT_EQ(f.sched->job(id)->state, JobState::kRunning);
  for (const int n : f.sched->job(id)->nodes) EXPECT_GE(n, 32);
}

TEST(SchedulerTest, PreCheckQuarantinesFailingNodes) {
  SchedFixture f;
  std::vector<int> checked;
  f.sched->set_pre_job_check([&](int node) {
    checked.push_back(node);
    return node != 0;  // node 0 always fails
  });
  const auto id = f.sched->submit(0, f.request(8, core::kMinute));
  f.tick();
  EXPECT_EQ(f.sched->job(id)->state, JobState::kRunning);
  for (const int n : f.sched->job(id)->nodes) EXPECT_NE(n, 0);
  EXPECT_FALSE(f.sched->node_available(0));
  EXPECT_FALSE(checked.empty());
}

TEST(SchedulerTest, PostCheckQuarantinesAfterJob) {
  SchedFixture f;
  f.sched->set_post_job_check([](int node) { return node != 1; });
  f.sched->submit(0, f.request(4, 5 * core::kSecond));
  for (int i = 0; i < 10; ++i) f.tick();
  EXPECT_FALSE(f.sched->node_available(1));
  EXPECT_TRUE(f.sched->node_available(2));
}

TEST(SchedulerTest, ProblemProbeMarksJobs) {
  SchedFixture f;
  f.sched->set_node_problem_probe([](int node) { return node == 2; });
  const auto id = f.sched->submit(0, f.request(4, 5 * core::kSecond));
  for (int i = 0; i < 10; ++i) f.tick();
  EXPECT_TRUE(f.sched->job(id)->saw_problem);
}

TEST(SchedulerTest, HungNodeStallsJob) {
  SchedFixture f;
  const auto id = f.sched->submit(0, f.request(4, 5 * core::kSecond));
  f.tick();
  const auto n0 = f.sched->job(id)->nodes[0];
  f.nodes[n0].hung = true;
  for (int i = 0; i < 20; ++i) f.tick();
  EXPECT_EQ(f.sched->job(id)->state, JobState::kRunning);  // stuck forever
  f.nodes[n0].hung = false;
  for (int i = 0; i < 10; ++i) f.tick();
  EXPECT_EQ(f.sched->job(id)->state, JobState::kCompleted);
}

TEST(SchedulerTest, CongestionSlowsNetworkSensitiveJob) {
  SchedFixture quiet;
  SchedFixture noisy;
  // Identical victim job; noisy fixture adds an external traffic storm
  // crossing the whole fabric.
  auto victim_req = quiet.request(8, 20 * core::kSecond, app_network_heavy());
  const auto qid = quiet.sched->submit(0, victim_req);
  const auto nid = noisy.sched->submit(0, victim_req);
  // External flows on the noisy fabric riding exactly the victim's links
  // (the victim's 8 nodes sit on routers 0 and 1; its ring crosses the
  // router 0 <-> router 1 links).
  std::vector<Flow> storm;
  for (int i = 0; i < 4; ++i) storm.push_back({i, i + 4, 6.0});
  for (int i = 4; i < 8; ++i) storm.push_back({i, i - 4, 6.0});
  noisy.fabric->set_job_flows(core::JobId{999}, storm);
  int q_ticks = 0;
  int n_ticks = 0;
  while (quiet.sched->job(qid)->state == JobState::kRunning || q_ticks == 0) {
    quiet.tick();
    if (++q_ticks > 500) break;
  }
  while (noisy.sched->job(nid)->state == JobState::kRunning || n_ticks == 0) {
    noisy.tick();
    if (++n_ticks > 500) break;
  }
  EXPECT_GT(n_ticks, q_ticks);  // congestion inflated the victim's runtime
}

TEST(SchedulerTest, CallbacksFire) {
  SchedFixture f;
  int starts = 0;
  int ends = 0;
  f.sched->set_on_start([&](const JobRecord&) { ++starts; });
  f.sched->set_on_end([&](const JobRecord&) { ++ends; });
  f.sched->submit(0, f.request(4, 3 * core::kSecond));
  for (int i = 0; i < 8; ++i) f.tick();
  EXPECT_EQ(starts, 1);
  EXPECT_EQ(ends, 1);
  EXPECT_EQ(f.sched->completed_jobs().size(), 1u);
}

TEST(SchedulerTest, SchedulerEmitsJobLogs) {
  SchedFixture f;
  f.sched->submit(0, f.request(4, 3 * core::kSecond));
  for (int i = 0; i < 8; ++i) f.tick();
  int start_logs = 0;
  int end_logs = 0;
  for (const auto& e : f.logs) {
    if (e.facility != core::LogFacility::kScheduler) continue;
    if (e.message.find("start") != std::string::npos) ++start_logs;
    if (e.message.find("end") != std::string::npos) ++end_logs;
  }
  EXPECT_EQ(start_logs, 1);
  EXPECT_EQ(end_logs, 1);
}

}  // namespace
}  // namespace hpcmon::sim
