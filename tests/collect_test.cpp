// Samplers, CollectionService synchronization, ProbeSuite, HealthCheckSuite.
#include <gtest/gtest.h>

#include "collect/collection.hpp"
#include "collect/health.hpp"
#include "collect/probes.hpp"
#include "collect/samplers.hpp"
#include "store/tsdb.hpp"
#include "transport/codec.hpp"

namespace hpcmon::collect {
namespace {

sim::ClusterParams small_params() {
  sim::ClusterParams p;
  p.shape.cabinets = 2;
  p.shape.chassis_per_cabinet = 1;
  p.shape.blades_per_chassis = 4;
  p.shape.nodes_per_blade = 4;  // 32 nodes
  p.shape.gpu_node_fraction = 0.25;
  p.fabric_kind = sim::FabricKind::kTorus3D;
  p.seed = 3;
  return p;
}

sim::JobRequest busy_job(int nodes) {
  sim::JobRequest r;
  r.num_nodes = nodes;
  r.nominal_runtime = 10 * core::kMinute;
  r.profile = sim::app_network_heavy();
  return r;
}

TEST(SamplersTest, NodeSamplerEmitsPerNodeMetrics) {
  sim::Cluster cluster(small_params());
  NodeSampler sampler(cluster);
  cluster.run_for(10 * core::kSecond);
  core::SampleBatch batch;
  sampler.sample(cluster.now(), batch);
  EXPECT_EQ(batch.size(), 32u * 4u);  // cpu, mem_free, read, write per node
  // Values are sane: mem_free close to machine config at idle.
  const auto mem_series = cluster.registry().series(
      "node.mem_free_gb", cluster.topology().node(0));
  bool found = false;
  for (const auto& s : batch.samples) {
    if (s.series == mem_series) {
      EXPECT_GT(s.value, 100.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(SamplersTest, AllSamplersCoverSubsystems) {
  sim::Cluster cluster(small_params());
  auto samplers = make_all_samplers(cluster);
  EXPECT_EQ(samplers.size(), 7u);  // node/power/hsn/fs/gpu/queue/facility
  cluster.run_for(5 * core::kSecond);
  std::size_t total = 0;
  for (auto& s : samplers) {
    core::SampleBatch batch;
    s->sample(cluster.now(), batch);
    EXPECT_FALSE(batch.empty()) << s->name();
    total += batch.size();
  }
  EXPECT_GT(total, 300u);  // 32-node machine: ~325 samples per full sweep
  // Registry now documents every metric.
  const auto dict = cluster.registry().describe_all();
  for (const char* metric : {"node.cpu_util", "power.cabinet_w",
                             "hsn.link.stalls", "fs.ost.read_bytes",
                             "gpu.health", "sched.queue_depth",
                             "facility.corrosion_ppb"}) {
    EXPECT_NE(dict.find(metric), std::string::npos) << metric;
  }
}

TEST(SamplersTest, CountersAreMonotone) {
  sim::Cluster cluster(small_params());
  cluster.submit_at(0, busy_job(16));
  HsnSampler sampler(cluster);
  double last_traffic = -1.0;
  for (int i = 0; i < 5; ++i) {
    cluster.run_for(10 * core::kSecond);
    core::SampleBatch batch;
    sampler.sample(cluster.now(), batch);
    double traffic = 0.0;
    for (const auto& s : batch.samples) {
      const auto& info = cluster.registry().metric(
          cluster.registry().series_metric(s.series));
      if (info.name == "hsn.link.traffic_bytes") traffic += s.value;
    }
    EXPECT_GE(traffic, last_traffic);
    last_traffic = traffic;
  }
  EXPECT_GT(last_traffic, 0.0);
}

TEST(CollectionServiceTest, SynchronizedSweepsLandOnGrid) {
  sim::Cluster cluster(small_params());
  store::TimeSeriesStore store;
  CollectionService service(cluster);
  service.add_sampler(std::make_unique<QueueSampler>(cluster), core::kMinute,
                      store_sink(store));
  cluster.run_for(5 * core::kMinute + 30 * core::kSecond);
  EXPECT_EQ(service.sweeps_completed(), 5u);
  const auto sid = cluster.registry().series("sched.queue_depth",
                                             cluster.topology().system());
  const auto pts = store.query_range(sid, {0, core::kDay});
  ASSERT_EQ(pts.size(), 5u);
  for (const auto& p : pts) {
    EXPECT_EQ(p.time % core::kMinute, 0) << "sweep not on synchronized grid";
  }
}

TEST(CollectionServiceTest, MultipleSamplersShareTimestamps) {
  sim::Cluster cluster(small_params());
  store::TimeSeriesStore store;
  CollectionService service(cluster);
  service.add_sampler(std::make_unique<QueueSampler>(cluster),
                      30 * core::kSecond, store_sink(store));
  service.add_sampler(std::make_unique<PowerSampler>(cluster),
                      30 * core::kSecond, store_sink(store));
  cluster.run_for(2 * core::kMinute);
  const auto q = cluster.registry().series("sched.queue_depth",
                                           cluster.topology().system());
  const auto p = cluster.registry().series("power.system_w",
                                           cluster.topology().system());
  const auto qpts = store.query_range(q, {0, core::kDay});
  const auto ppts = store.query_range(p, {0, core::kDay});
  ASSERT_EQ(qpts.size(), ppts.size());
  for (std::size_t i = 0; i < qpts.size(); ++i) {
    EXPECT_EQ(qpts[i].time, ppts[i].time);  // cross-subsystem association
  }
}

TEST(CollectionServiceTest, LogCollectorDrainsStream) {
  sim::Cluster cluster(small_params());
  cluster.submit_at(0, busy_job(4));
  std::vector<core::LogEvent> received;
  CollectionService service(cluster);
  service.add_log_collector(10 * core::kSecond,
                            [&](std::vector<core::LogEvent>&& events) {
                              for (auto& e : events) received.push_back(e);
                            });
  cluster.run_for(core::kMinute);
  EXPECT_FALSE(received.empty());
  EXPECT_EQ(cluster.pending_log_count(), 0u);
}

TEST(CollectionServiceTest, RouterSinkDeliversDecodableFrames) {
  sim::Cluster cluster(small_params());
  transport::EventRouter router;
  std::size_t samples = 0;
  router.subscribe(transport::FrameType::kSamples,
                   [&](const transport::Frame& f) {
                     const auto batch = transport::decode_samples(f);
                     ASSERT_TRUE(batch.is_ok());
                     samples += batch.value().size();
                   });
  CollectionService service(cluster);
  service.add_sampler(std::make_unique<PowerSampler>(cluster),
                      30 * core::kSecond, router_sample_sink(router));
  cluster.run_for(2 * core::kMinute);
  EXPECT_GT(samples, 0u);
}

TEST(ProbeSuiteTest, BaselinesWhenIdle) {
  sim::Cluster cluster(small_params());
  ProbeConfig config;
  config.probe_nodes = {0, 16};
  config.noise_frac = 0.0;
  ProbeSuite probes(cluster, config, core::Rng(1));
  cluster.run_for(5 * core::kSecond);
  core::SampleBatch batch;
  probes.sample(cluster.now(), batch);
  // 2 probe nodes x 3 metrics + 8 OST probes + 1 MDS probe.
  EXPECT_EQ(batch.size(), 2u * 3u + 8u + 1u);
  for (const auto& s : batch.samples) {
    const auto& name = cluster.registry()
                           .metric(cluster.registry().series_metric(s.series))
                           .name;
    if (name == "probe.dgemm_seconds") {
      EXPECT_NEAR(s.value, config.dgemm_seconds, 2.0);
    } else if (name == "probe.fs_read_ms") {
      EXPECT_NEAR(s.value, 2.0, 0.5);  // base OST latency
    }
  }
}

TEST(ProbeSuiteTest, FsDegradationShowsInProbe) {
  sim::Cluster cluster(small_params());
  ProbeConfig config;
  config.noise_frac = 0.0;
  ProbeSuite probes(cluster, config, core::Rng(1));
  cluster.inject_ost_slowdown(10 * core::kSecond, 0, 2, 8.0, core::kHour);
  cluster.run_for(core::kMinute);
  core::SampleBatch batch;
  probes.sample(cluster.now(), batch);
  const auto slow_sid = cluster.registry().series(
      "probe.fs_read_ms", cluster.topology().ost(0, 2));
  const auto ok_sid = cluster.registry().series(
      "probe.fs_read_ms", cluster.topology().ost(0, 1));
  double slow = 0.0;
  double ok = 0.0;
  for (const auto& s : batch.samples) {
    if (s.series == slow_sid) slow = s.value;
    if (s.series == ok_sid) ok = s.value;
  }
  EXPECT_GT(slow, ok * 4.0);  // NCSA-style per-target probe isolates the OST
}

TEST(HealthCheckTest, CleanMachinePasses) {
  sim::Cluster cluster(small_params());
  HealthCheckSuite health(cluster, {});
  cluster.run_for(5 * core::kSecond);
  for (int i = 0; i < cluster.topology().num_nodes(); ++i) {
    EXPECT_TRUE(health.check_node(i).ok) << "node " << i;
  }
}

TEST(HealthCheckTest, DetectsInjectedProblems) {
  sim::Cluster cluster(small_params());
  HealthConfig config;
  config.min_free_mem_gb = 8.0;
  HealthCheckSuite health(cluster, config);
  cluster.inject_mem_leak(core::kSecond, 1, 7200.0, core::kHour);  // 2 GB/s
  cluster.inject_fs_unmount(core::kSecond, 2, core::kHour);
  cluster.inject_gpu_failure(core::kSecond, 3);
  cluster.inject_node_hang(core::kSecond, 4, core::kHour);
  cluster.run_for(2 * core::kMinute);
  EXPECT_FALSE(health.check_node(1).ok);  // memory exhausted
  EXPECT_FALSE(health.check_node(2).ok);  // unmounted
  EXPECT_FALSE(health.check_node(3).ok);  // GPU failed
  EXPECT_FALSE(health.check_node(4).ok);  // hung
  EXPECT_TRUE(health.check_node(10).ok);
  // Reasons are specific.
  EXPECT_NE(health.check_node(2).failures[0].find("filesystem"),
            std::string::npos);
}

TEST(HealthCheckTest, SampleEmitsFailingCountAndLogs) {
  sim::Cluster cluster(small_params());
  HealthCheckSuite health(cluster, {});
  cluster.inject_gpu_failure(core::kSecond, 0);
  cluster.run_for(10 * core::kSecond);
  cluster.drain_logs();
  core::SampleBatch batch;
  health.sample(cluster.now(), batch);
  const auto failing_sid = cluster.registry().series(
      "health.failing_nodes", cluster.topology().system());
  double failing = -1;
  for (const auto& s : batch.samples) {
    if (s.series == failing_sid) failing = s.value;
  }
  EXPECT_DOUBLE_EQ(failing, 1.0);
  const auto logs = cluster.drain_logs();
  bool health_log = false;
  for (const auto& e : logs) {
    if (e.facility == core::LogFacility::kHealth) health_log = true;
  }
  EXPECT_TRUE(health_log);
}

TEST(HealthCheckTest, GpuPrecheckClosureWorks) {
  sim::Cluster cluster(small_params());
  cluster.inject_gpu_failure(core::kSecond, 0);
  cluster.run_for(5 * core::kSecond);
  auto check = make_gpu_precheck(cluster);
  EXPECT_FALSE(check(0));
  EXPECT_TRUE(check(20));  // non-GPU node passes
}

}  // namespace
}  // namespace hpcmon::collect
