// Decode-cache tests: LRU mechanics of ChunkCache itself, cache behavior
// observed through TimeSeriesStore, and the eviction contract — evict_before
// must hand every sealed chunk to the archive sink exactly once AND drop any
// cached decode of it (a generation id that will never be queried again).
#include <gtest/gtest.h>

#include <map>

#include "store/chunk_cache.hpp"
#include "store/tsdb.hpp"

namespace hpcmon::store {
namespace {

using core::SeriesId;
using core::TimedValue;
using core::TimePoint;
using core::TimeRange;

DecodedChunk decoded_of(std::initializer_list<double> values) {
  auto pts = std::make_shared<std::vector<TimedValue>>();
  TimePoint t = 0;
  for (const auto v : values) pts->push_back({t += core::kSecond, v});
  return pts;
}

// -- ChunkCache unit ----------------------------------------------------------

TEST(ChunkCacheTest, HitsAndMisses) {
  ChunkCache cache(4);
  EXPECT_EQ(cache.get(1), nullptr);
  cache.put(1, decoded_of({1.0}));
  const auto hit = cache.get(1);
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ(hit->front().value, 1.0);
  const auto st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.entries, 1u);
}

TEST(ChunkCacheTest, EvictsLeastRecentlyUsedAtCapacity) {
  ChunkCache cache(3);
  cache.put(1, decoded_of({1.0}));
  cache.put(2, decoded_of({2.0}));
  cache.put(3, decoded_of({3.0}));
  ASSERT_NE(cache.get(1), nullptr);  // refresh 1; LRU order now 2,3,1
  cache.put(4, decoded_of({4.0}));   // evicts 2
  EXPECT_EQ(cache.get(2), nullptr);
  EXPECT_NE(cache.get(1), nullptr);
  EXPECT_NE(cache.get(3), nullptr);
  EXPECT_NE(cache.get(4), nullptr);
  const auto st = cache.stats();
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.entries, 3u);
}

TEST(ChunkCacheTest, EraseInvalidates) {
  ChunkCache cache(4);
  cache.put(7, decoded_of({7.0}));
  cache.erase(7);
  EXPECT_EQ(cache.get(7), nullptr);
  const auto st = cache.stats();
  EXPECT_EQ(st.invalidations, 1u);
  EXPECT_EQ(st.entries, 0u);
  cache.erase(7);  // erasing an absent id is a no-op
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(ChunkCacheTest, CapacityZeroDisablesCaching) {
  ChunkCache cache(0);
  cache.put(1, decoded_of({1.0}));
  EXPECT_EQ(cache.get(1), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ChunkCacheTest, DuplicatePutKeepsFirstEntry) {
  ChunkCache cache(4);
  cache.put(1, decoded_of({1.0}));
  cache.put(1, decoded_of({99.0}));  // racing decoders: first one wins
  EXPECT_DOUBLE_EQ(cache.get(1)->front().value, 1.0);
  EXPECT_EQ(cache.stats().entries, 1u);
}

// -- Through the store --------------------------------------------------------

TEST(ChunkCacheTest, RepeatedQueryHitsCache) {
  TimeSeriesStore store(8, /*cache_chunks=*/16);
  const SeriesId s{1};
  for (int i = 1; i <= 40; ++i) store.append(s, i * core::kSecond, 0.5 * i);
  const TimeRange range{0, 41 * core::kSecond};
  const auto first = store.query_range(s, range);
  const auto cold = store.query_stats();
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(cold.cache_misses, 5u);  // 40 points / 8 per chunk = 5 sealed
  const auto second = store.query_range(s, range);
  EXPECT_EQ(second, first);
  const auto warm = store.query_stats();
  EXPECT_EQ(warm.cache_hits, 5u);
  EXPECT_EQ(warm.cache_misses, 5u);
}

TEST(ChunkCacheTest, CacheDisabledStoreStillAnswersCorrectly) {
  TimeSeriesStore cached(8, 16);
  TimeSeriesStore uncached(8, 0);
  const SeriesId s{1};
  for (int i = 1; i <= 40; ++i) {
    cached.append(s, i * core::kSecond, 0.5 * i);
    uncached.append(s, i * core::kSecond, 0.5 * i);
  }
  const TimeRange range{0, 41 * core::kSecond};
  (void)uncached.query_range(s, range);
  EXPECT_EQ(uncached.query_range(s, range), cached.query_range(s, range));
  EXPECT_EQ(uncached.query_stats().cache_hits, 0u);
  EXPECT_EQ(uncached.query_stats().cache_entries, 0u);
}

// -- Eviction contract (satellite) --------------------------------------------

TEST(ChunkCacheTest, EvictBeforeDropsCachedEntries) {
  TimeSeriesStore store(4, 16);
  const SeriesId s{1};
  for (int i = 1; i <= 20; ++i) store.append(s, i * core::kSecond, 1.0 * i);
  // Warm the cache over all 5 sealed chunks.
  (void)store.query_range(s, {0, 21 * core::kSecond});
  EXPECT_EQ(store.query_stats().cache_entries, 5u);
  // Evict the first three chunks (max times 4s, 8s, 12s).
  const auto evicted = store.evict_before(
      13 * core::kSecond, [](SeriesId, Chunk&&) {});
  EXPECT_EQ(evicted, 3u);
  const auto st = store.query_stats();
  EXPECT_EQ(st.cache_entries, 2u);
  EXPECT_EQ(st.cache_invalidations, 3u);
  // Re-querying what's left hits the surviving entries, no stale data.
  const auto rest = store.query_range(s, {0, 21 * core::kSecond});
  ASSERT_EQ(rest.size(), 8u);  // chunks at 13..16s, 17..20s
  EXPECT_EQ(rest.front().time, 13 * core::kSecond);
}

TEST(ChunkCacheTest, ArchiveSinkReceivesEverySealedChunkExactlyOnce) {
  TimeSeriesStore store(4, 16);
  const SeriesId a{1}, b{2};
  for (int i = 1; i <= 17; ++i) {  // 4 sealed chunks + 1 head point per series
    store.append(a, i * core::kSecond, 1.0 * i);
    store.append(b, i * core::kSecond, -1.0 * i);
  }
  std::map<std::uint32_t, std::vector<TimedValue>> archived;
  std::size_t calls = 0;
  const auto run = [&] {
    return store.evict_before(100 * core::kSecond,
                              [&](SeriesId sid, Chunk&& chunk) {
                                ++calls;
                                auto pts = chunk.decompress();
                                auto& dst = archived[core::raw(sid)];
                                dst.insert(dst.end(), pts.begin(), pts.end());
                              });
  };
  EXPECT_EQ(run(), 8u);
  EXPECT_EQ(calls, 8u);
  // Every sealed point arrived, in order, exactly once; head points stay hot.
  for (const auto& [raw_id, pts] : archived) {
    ASSERT_EQ(pts.size(), 16u) << "series " << raw_id;
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ(pts[i].time, (i + 1) * core::kSecond);
    }
  }
  EXPECT_DOUBLE_EQ(archived[1][2].value, 3.0);
  EXPECT_DOUBLE_EQ(archived[2][2].value, -3.0);
  // A second pass finds nothing new — no double delivery.
  EXPECT_EQ(run(), 0u);
  EXPECT_EQ(calls, 8u);
  // The head survives and is still queryable.
  const auto left = store.query_range(a, {0, 100 * core::kSecond});
  ASSERT_EQ(left.size(), 1u);
  EXPECT_EQ(left[0].time, 17 * core::kSecond);
}

}  // namespace
}  // namespace hpcmon::store
