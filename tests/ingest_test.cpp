// hpcmon::ingest: ShardedTimeSeriesStore routing + differential equivalence,
// IngestPipeline overload policies (deterministic, exact counters), threaded
// end-to-end ingest, self-metrics, and MonitoringStack wiring.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "core/config.hpp"
#include "core/registry.hpp"
#include "core/rng.hpp"
#include "ingest/pipeline.hpp"
#include "ingest/sharded_store.hpp"
#include "obs/exporter.hpp"
#include "sim/cluster.hpp"
#include "stack/stack.hpp"

namespace hpcmon::ingest {
namespace {

using core::Sample;
using core::SampleBatch;
using core::SeriesId;
using core::TimeRange;

constexpr TimeRange kAll{0, core::kDay};

// Deterministic multi-series workload: `series` series, `points` points each,
// interleaved into per-sweep batches the way samplers emit them.
std::vector<SampleBatch> make_sweeps(std::uint32_t series, int points,
                                     double jitter_seed = 7.0) {
  std::vector<SampleBatch> sweeps;
  core::Rng rng(static_cast<std::uint64_t>(jitter_seed));
  for (int p = 0; p < points; ++p) {
    SampleBatch b;
    b.sweep_time = (p + 1) * core::kMinute;
    for (std::uint32_t s = 0; s < series; ++s) {
      b.samples.push_back(
          {SeriesId{s}, b.sweep_time, s * 100.0 + p + rng.uniform(0.0, 0.5)});
    }
    sweeps.push_back(std::move(b));
  }
  return sweeps;
}

TEST(ShardedStoreTest, RoutesSeriesToStableShards) {
  ShardedTimeSeriesStore store(4);
  EXPECT_EQ(store.shard_count(), 4u);
  for (std::uint32_t s = 0; s < 64; ++s) {
    const auto shard = store.shard_of(SeriesId{s});
    EXPECT_LT(shard, 4u);
    EXPECT_EQ(shard, store.shard_of(SeriesId{s}));  // stable
  }
  // The hash spreads dense ids over every shard.
  std::vector<int> counts(4, 0);
  for (std::uint32_t s = 0; s < 64; ++s) ++counts[store.shard_of(SeriesId{s})];
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST(ShardedStoreTest, DifferentialIdenticalToSingleStore) {
  // Acceptance: sharded query results byte-identical to the single store on
  // the same ingest — every query flavour, every series.
  store::TimeSeriesStore single(32);
  ShardedTimeSeriesStore sharded(4, 32);
  const auto sweeps = make_sweeps(17, 300);
  for (const auto& b : sweeps) {
    EXPECT_EQ(single.append_batch(b.samples), sharded.append_batch(b.samples));
  }
  const TimeRange mid{40 * core::kMinute, 250 * core::kMinute};
  for (std::uint32_t s = 0; s < 17; ++s) {
    const SeriesId id{s};
    const auto a = single.query_range(id, mid);
    const auto b = sharded.query_range(id, mid);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a, b);
    // Byte-identical, literally.
    EXPECT_EQ(std::memcmp(a.data(), b.data(),
                          a.size() * sizeof(core::TimedValue)),
              0);
    EXPECT_EQ(single.latest(id), sharded.latest(id));
    EXPECT_EQ(single.aggregate(id, mid, store::Agg::kSum),
              sharded.aggregate(id, mid, store::Agg::kSum));
    EXPECT_EQ(single.downsample(id, kAll, core::kHour, store::Agg::kMean),
              sharded.downsample(id, kAll, core::kHour, store::Agg::kMean));
    EXPECT_EQ(single.has_series(id), sharded.has_series(id));
  }
  // Merged stats are exact: shards hold disjoint series.
  const auto st_a = single.stats();
  const auto st_b = sharded.stats();
  EXPECT_EQ(st_a.series, st_b.series);
  EXPECT_EQ(st_a.points, st_b.points);
  EXPECT_EQ(st_a.sealed_chunks, st_b.sealed_chunks);
  EXPECT_EQ(st_a.head_points, st_b.head_points);
  EXPECT_EQ(st_a.compressed_bytes, st_b.compressed_bytes);
}

TEST(ShardedStoreTest, RejectsDuplicatesAndOutOfOrderLikeSingleStore) {
  ShardedTimeSeriesStore store(3);
  const SeriesId id{5};
  EXPECT_TRUE(store.append(id, 100, 1.0));
  EXPECT_FALSE(store.append(id, 100, 2.0));  // duplicate timestamp
  EXPECT_FALSE(store.append(id, 99, 3.0));   // out of order
  EXPECT_TRUE(store.append(id, 101, 4.0));
  EXPECT_EQ(store.query_range(id, kAll).size(), 2u);
}

TEST(ShardedStoreTest, EvictScatterGathers) {
  store::TimeSeriesStore single(10);
  ShardedTimeSeriesStore sharded(4, 10);
  for (const auto& b : make_sweeps(8, 120)) {
    single.append_batch(b.samples);
    sharded.append_batch(b.samples);
  }
  std::size_t single_pts = 0;
  std::size_t sharded_pts = 0;
  const auto cutoff = 80 * core::kMinute;
  const auto a = single.evict_before(
      cutoff, [&](SeriesId, store::Chunk&& c) { single_pts += c.count(); });
  const auto b = sharded.evict_before(
      cutoff, [&](SeriesId, store::Chunk&& c) { sharded_pts += c.count(); });
  EXPECT_EQ(a, b);
  EXPECT_EQ(single_pts, sharded_pts);
  EXPECT_GT(a, 0u);
}

// -- Overload policies: deterministic, exact counters -------------------------
// The pipeline is constructed WITHOUT start(), so queues are static and every
// policy decision is exactly predictable.

SampleBatch one_series_batch(std::uint32_t series, int k, std::size_t samples) {
  SampleBatch b;
  b.sweep_time = (k + 1) * core::kSecond;
  for (std::size_t i = 0; i < samples; ++i) {
    b.samples.push_back({SeriesId{series},
                         b.sweep_time + static_cast<core::TimePoint>(i),
                         1.0 * k});
  }
  return b;
}

TEST(IngestPolicyTest, RejectCountsAreExact) {
  ShardedTimeSeriesStore store(1);
  IngestPipeline pipe(store, {.queue_capacity = 4,
                              .policy = OverloadPolicy::kReject});
  // Fill the queue: 4 batches of 3 samples admitted.
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(pipe.submit(one_series_batch(0, k, 3)), 3u);
  }
  // 5 more must be rejected at the door, samples counted exactly.
  for (int k = 4; k < 9; ++k) {
    EXPECT_EQ(pipe.submit(one_series_batch(0, k, 3)), 0u);
  }
  const auto m = pipe.metrics().snapshot();
  EXPECT_EQ(m.submitted_batches, 9u);
  EXPECT_EQ(m.submitted_samples, 27u);
  EXPECT_EQ(m.enqueued_batches, 4u);
  EXPECT_EQ(m.rejected_batches, 5u);
  EXPECT_EQ(m.rejected_samples, 15u);
  EXPECT_EQ(m.dropped_samples, 0u);
  EXPECT_EQ(m.blocked_pushes, 0u);
  EXPECT_EQ(m.queue_hwm[0], 4u);
  // Now run the workers: the 4 queued batches (12 samples) all land; the
  // rejected ones are gone for good.
  pipe.start();
  pipe.drain();
  const auto m2 = pipe.metrics().snapshot();
  EXPECT_EQ(m2.accepted_samples, 12u);
  EXPECT_EQ(store.stats().points, 12u);
}

TEST(IngestPolicyTest, DropOldestCountsAreExact) {
  ShardedTimeSeriesStore store(1);
  IngestPipeline pipe(store, {.queue_capacity = 4,
                              .policy = OverloadPolicy::kDropOldest});
  for (int k = 0; k < 4; ++k) pipe.submit(one_series_batch(0, k, 2));
  // Each further submit evicts exactly the oldest queued batch.
  for (int k = 4; k < 10; ++k) {
    EXPECT_EQ(pipe.submit(one_series_batch(0, k, 2)), 2u);  // admitted
  }
  const auto m = pipe.metrics().snapshot();
  EXPECT_EQ(m.enqueued_batches, 10u);
  EXPECT_EQ(m.dropped_batches, 6u);
  EXPECT_EQ(m.dropped_samples, 12u);
  EXPECT_EQ(m.rejected_samples, 0u);
  pipe.start();
  pipe.drain();
  // Survivors are the NEWEST 4 batches (k = 6..9): drop-oldest keeps fresh
  // telemetry, and their later timestamps still append in order.
  const auto m2 = pipe.metrics().snapshot();
  EXPECT_EQ(m2.accepted_samples, 8u);
  const auto pts = store.query_range(SeriesId{0}, kAll);
  ASSERT_EQ(pts.size(), 8u);
  EXPECT_EQ(pts.front().time, 7 * core::kSecond);  // k=6 sweep
  EXPECT_DOUBLE_EQ(pts.back().value, 9.0);         // k=9 batch
}

TEST(IngestPolicyTest, BlockBackpressureIsLosslessAndCounted) {
  ShardedTimeSeriesStore store(1);
  IngestPipeline pipe(store, {.queue_capacity = 2,
                              .policy = OverloadPolicy::kBlock});
  for (int k = 0; k < 2; ++k) pipe.submit(one_series_batch(0, k, 1));
  // Workers are NOT running, so the queue stays full and the next submit
  // must park in the blocking push. blocked_pushes is counted on ENTRY to
  // the wait, so observing it reach 1 proves the producer is stalled —
  // deterministically, before any worker exists to free space.
  std::thread producer([&pipe] { pipe.submit(one_series_batch(0, 2, 1)); });
  while (pipe.metrics().snapshot().blocked_pushes < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto stalled = pipe.metrics().snapshot();
  EXPECT_EQ(stalled.blocked_pushes, 1u);  // exact: the one parked producer
  EXPECT_EQ(stalled.enqueued_batches, 2u);
  EXPECT_EQ(stalled.dropped_samples, 0u);
  EXPECT_EQ(stalled.rejected_samples, 0u);
  pipe.start();  // workers free space; the parked push completes
  producer.join();
  for (int k = 3; k < 8; ++k) pipe.submit(one_series_batch(0, k, 1));
  pipe.drain();
  const auto m = pipe.metrics().snapshot();
  // Lossless: everything submitted was eventually accepted.
  EXPECT_EQ(m.submitted_samples, 8u);
  EXPECT_EQ(m.accepted_samples, 8u);
  EXPECT_EQ(m.dropped_samples, 0u);
  EXPECT_EQ(m.rejected_samples, 0u);
  EXPECT_GE(m.blocked_pushes, 1u);  // later submits may stall again
  EXPECT_EQ(store.stats().points, 8u);
}

TEST(IngestPolicyTest, SubmitAfterStopIsRejected) {
  ShardedTimeSeriesStore store(2);
  IngestPipeline pipe(store, {.queue_capacity = 4});
  pipe.start();
  pipe.submit(one_series_batch(0, 0, 2));
  pipe.stop();
  EXPECT_EQ(pipe.submit(one_series_batch(0, 1, 3)), 0u);
  const auto m = pipe.metrics().snapshot();
  EXPECT_EQ(m.rejected_samples, 3u);
  EXPECT_EQ(m.accepted_samples, 2u);
}

TEST(IngestPolicyTest, PolicyNamesRoundTrip) {
  EXPECT_EQ(policy_from_string("block", OverloadPolicy::kReject),
            OverloadPolicy::kBlock);
  EXPECT_EQ(policy_from_string("drop_oldest", OverloadPolicy::kBlock),
            OverloadPolicy::kDropOldest);
  EXPECT_EQ(policy_from_string("reject", OverloadPolicy::kBlock),
            OverloadPolicy::kReject);
  EXPECT_EQ(policy_from_string("bogus", OverloadPolicy::kDropOldest),
            OverloadPolicy::kDropOldest);
  EXPECT_EQ(to_string(OverloadPolicy::kDropOldest), "drop_oldest");
}

// -- Threaded end-to-end ------------------------------------------------------

TEST(IngestPipelineTest, ConcurrentProducersMatchSynchronousIngest) {
  // 4 producers × disjoint series through the pipeline == the same sweeps
  // appended synchronously (per-series order is preserved end to end).
  constexpr std::uint32_t kSeries = 12;
  constexpr int kPoints = 200;
  const auto sweeps = make_sweeps(kSeries, kPoints);

  store::TimeSeriesStore reference(64);
  for (const auto& b : sweeps) reference.append_batch(b.samples);

  ShardedTimeSeriesStore sharded(4, 64);
  IngestPipeline pipe(sharded, {.queue_capacity = 8,
                                .policy = OverloadPolicy::kBlock});
  pipe.start();
  std::vector<std::thread> producers;
  for (std::uint32_t p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      // Producer p submits only its own series slice, in sweep order.
      for (const auto& sweep : sweeps) {
        SampleBatch mine;
        mine.sweep_time = sweep.sweep_time;
        for (const auto& s : sweep.samples) {
          if (core::raw(s.series) % 4 == p) mine.samples.push_back(s);
        }
        pipe.submit(mine);
      }
    });
  }
  for (auto& t : producers) t.join();
  pipe.drain();

  for (std::uint32_t s = 0; s < kSeries; ++s) {
    EXPECT_EQ(reference.query_range(SeriesId{s}, kAll),
              sharded.query_range(SeriesId{s}, kAll));
  }
  const auto m = pipe.metrics().snapshot();
  EXPECT_EQ(m.accepted_samples, kSeries * static_cast<std::size_t>(kPoints));
  EXPECT_EQ(m.out_of_order_samples, 0u);
  EXPECT_GT(m.appends, 0u);
  // Every append recorded exactly one batch-size histogram entry.
  EXPECT_EQ(m.batch_samples.count, m.appends);
}

TEST(IngestMetricsTest, SelfMetricsBecomeSeries) {
  ShardedTimeSeriesStore store(2);
  IngestPipeline pipe(store, {.queue_capacity = 8});
  pipe.start();
  pipe.submit(one_series_batch(0, 0, 5));
  pipe.drain();

  core::MetricRegistry reg;
  const auto comp = reg.register_component(
      {"ingest.pipeline", core::ComponentKind::kService, core::kNoComponent});
  // The pipeline cataloged its instruments in its obs registry; the exporter
  // renders one snapshot as hpcmon.self.* samples.
  const auto samples = obs::ObsExporter().to_samples(
      pipe.obs().snapshot(), reg, comp, 42 * core::kSecond);
  ASSERT_GE(samples.size(), 8u);
  // The monitor monitors itself: re-ingest its own counters.
  pipe.submit({42 * core::kSecond, comp, samples});
  pipe.drain();
  const auto acc = reg.find_metric("hpcmon.self.ingest.accepted_samples");
  ASSERT_TRUE(acc.has_value());
  const auto sid = reg.series(*acc, comp);
  const auto pts = store.query_range(sid, kAll);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_DOUBLE_EQ(pts[0].value, 5.0);  // counter value at snapshot time
  // Data dictionary carries units/descriptions for every ingest metric.
  EXPECT_NE(reg.describe_all().find("hpcmon.self.ingest.accepted_samples"),
            std::string::npos);
}

// -- MonitoringStack wiring ---------------------------------------------------

TEST(StackIngestTest, ConfigEnablesShardedIngestTier) {
  sim::ClusterParams params;
  params.shape.cabinets = 1;
  params.shape.chassis_per_cabinet = 1;
  params.shape.blades_per_chassis = 2;
  core::Config cfg;
  cfg.set_int("ingest_shards", 4);
  cfg.set_int("ingest_queue_cap", 64);
  cfg.set("ingest_policy", "block");
  cfg.set_int("probe_interval_s", 0);
  cfg.set_int("health_interval_s", 0);

  sim::Cluster cluster(params);
  stack::MonitoringStack stack(cluster, cfg);
  ASSERT_NE(stack.ingest_pipeline(), nullptr);
  ASSERT_NE(stack.sharded_store(), nullptr);
  EXPECT_EQ(stack.sharded_store()->shard_count(), 4u);

  cluster.run_for(10 * core::kMinute);
  stack.drain_ingest();
  // Samples landed in the sharded store, not the synchronous hot tier.
  EXPECT_GT(stack.sharded_store()->stats().points, 0u);
  EXPECT_EQ(stack.tsdb().hot().stats().points, 0u);
  // The stack's own counters were re-ingested as hpcmon.self.* series.
  const auto metric =
      cluster.registry().find_metric("hpcmon.self.ingest.accepted_samples");
  ASSERT_TRUE(metric.has_value());
  const auto comp = cluster.registry().find_component("hpcmon.self");
  ASSERT_TRUE(comp.has_value());
  const auto sid = cluster.registry().series(*metric, *comp);
  EXPECT_FALSE(
      stack.sharded_store()->query_range(sid, {0, core::kDay}).empty());
  // status() reports the ingest tier.
  EXPECT_NE(stack.status().find("shards=4"), std::string::npos);
  EXPECT_NE(stack.status().find("policy=block"), std::string::npos);
}

TEST(StackIngestTest, DefaultConfigStaysSynchronous) {
  sim::ClusterParams params;
  params.shape.cabinets = 1;
  params.shape.chassis_per_cabinet = 1;
  params.shape.blades_per_chassis = 2;
  core::Config cfg;
  cfg.set_int("probe_interval_s", 0);
  cfg.set_int("health_interval_s", 0);
  sim::Cluster cluster(params);
  stack::MonitoringStack stack(cluster, cfg);
  EXPECT_EQ(stack.ingest_pipeline(), nullptr);
  EXPECT_EQ(stack.sharded_store(), nullptr);
  cluster.run_for(5 * core::kMinute);
  EXPECT_GT(stack.tsdb().hot().stats().points, 0u);
}

}  // namespace
}  // namespace hpcmon::ingest
