// Anomaly detectors, trend analysis, change-point onset detection.
#include <gtest/gtest.h>

#include "analysis/anomaly.hpp"
#include "analysis/changepoint.hpp"
#include "analysis/trend.hpp"
#include "core/rng.hpp"

namespace hpcmon::analysis {
namespace {

TEST(ZScoreTest, FlagsOutlierNotNoise) {
  core::Rng rng(1);
  ZScoreDetector det(60, 4.0);
  int false_alarms = 0;
  for (int i = 0; i < 200; ++i) {
    if (det.update(i, rng.normal(100.0, 2.0))) ++false_alarms;
  }
  EXPECT_LE(false_alarms, 2);
  const auto hit = det.update(201, 150.0);  // 25 sigma
  ASSERT_TRUE(hit.has_value());
  EXPECT_GT(hit->score, 4.0);
  EXPECT_EQ(hit->detector, "zscore");
}

TEST(ZScoreTest, SilentWithoutHistory) {
  ZScoreDetector det(60, 4.0);
  EXPECT_FALSE(det.update(0, 1e9).has_value());  // no baseline yet
}

TEST(MadTest, RobustToContaminatedBaseline) {
  // Baseline already contains outliers; MAD still finds the new one while
  // being far less inflated than a naive stddev would be.
  core::Rng rng(2);
  MadDetector det(100, 6.0);
  for (int i = 0; i < 150; ++i) {
    double x = rng.normal(10.0, 0.5);
    if (i % 20 == 0) x = 100.0;  // contamination
    det.update(i, x);
  }
  const auto hit = det.update(151, 60.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->detector, "mad");
}

TEST(ThresholdTest, HysteresisPreventsFlapping) {
  ThresholdDetector det(10.0, 2.0);
  EXPECT_FALSE(det.update(0, 9.0).has_value());
  EXPECT_TRUE(det.update(1, 11.0).has_value());   // enter alarm
  EXPECT_FALSE(det.update(2, 12.0).has_value());  // still in alarm: no refire
  EXPECT_FALSE(det.update(3, 9.0).has_value());   // above re-arm level (8.0)
  EXPECT_TRUE(det.in_alarm());
  EXPECT_FALSE(det.update(4, 7.0).has_value());   // re-armed
  EXPECT_FALSE(det.in_alarm());
  EXPECT_TRUE(det.update(5, 11.0).has_value());   // fires again
}

TEST(CusumTest, CatchesSlowDriftZScoreMisses) {
  core::Rng rng(3);
  CusumDetector cusum(100.0, 1.0, 30.0);
  ZScoreDetector zscore(60, 4.0);
  bool cusum_fired = false;
  bool zscore_fired = false;
  // Mean creeps up by 0.02/step: each step is well within noise, the
  // accumulated shift is not.
  for (int i = 0; i < 400; ++i) {
    const double x = rng.normal(100.0 + i * 0.02, 1.0);
    if (cusum.update(i, x)) cusum_fired = true;
    if (zscore.update(i, x)) zscore_fired = true;
  }
  EXPECT_TRUE(cusum_fired);
  EXPECT_FALSE(zscore_fired);
}

TEST(TrendFitTest, RecoversLine) {
  std::vector<core::TimedValue> pts;
  for (int i = 0; i < 20; ++i) {
    pts.push_back({i * core::kHour, 10.0 + 3.0 * i});
  }
  const auto fit = fit_trend(pts);
  EXPECT_NEAR(fit.slope_per_hour, 3.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 10.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(TrendFitTest, FlatAndNoisySeries) {
  std::vector<core::TimedValue> flat;
  for (int i = 0; i < 10; ++i) flat.push_back({i * core::kHour, 5.0});
  EXPECT_NEAR(fit_trend(flat).slope_per_hour, 0.0, 1e-12);

  core::Rng rng(4);
  std::vector<core::TimedValue> noise;
  for (int i = 0; i < 200; ++i) {
    noise.push_back({i * core::kHour, rng.normal(0.0, 1.0)});
  }
  EXPECT_LT(fit_trend(noise).r2, 0.2);  // no real trend to explain
}

TEST(TrendAnalyzerTest, WindowSlides) {
  TrendAnalyzer tr(10 * core::kHour);
  // Old regime: rising; recent regime: falling. The window should only see
  // the recent one.
  for (int i = 0; i < 20; ++i) tr.add(i * core::kHour, i * 1.0);
  for (int i = 20; i < 40; ++i) tr.add(i * core::kHour, 40.0 - i);
  const auto fit = tr.fit();
  ASSERT_TRUE(fit.has_value());
  EXPECT_LT(fit->slope_per_hour, 0.0);
}

TEST(TrendAnalyzerTest, ForecastCrossing) {
  TrendAnalyzer tr(core::kDay);
  // BER counter rate rising 2 units/hour from 10; limit 100 -> ~45h from t0.
  for (int i = 0; i <= 10; ++i) {
    tr.add(i * core::kHour, 10.0 + 2.0 * i);
  }
  const auto when = tr.forecast_crossing(100.0);
  ASSERT_TRUE(when.has_value());
  // Latest point is (10h, 30); (100-30)/2 = 35h further.
  EXPECT_NEAR(static_cast<double>(*when),
              static_cast<double>(45 * core::kHour),
              static_cast<double>(core::kHour));
  // Falling trend: no crossing.
  TrendAnalyzer down(core::kDay);
  for (int i = 0; i <= 10; ++i) down.add(i * core::kHour, 100.0 - i);
  EXPECT_FALSE(down.forecast_crossing(200.0).has_value());
}

TEST(OnsetTest, DetectsStepUpAndDown) {
  core::Rng rng(5);
  std::vector<core::TimedValue> series;
  // 30 samples at 100, 30 at 130, 30 back at 100.
  for (int i = 0; i < 90; ++i) {
    double level = 100.0;
    if (i >= 30 && i < 60) level = 130.0;
    series.push_back({i * core::kMinute, level + rng.normal(0.0, 1.0)});
  }
  const auto onsets = detect_onsets(series);
  ASSERT_EQ(onsets.size(), 2u);
  EXPECT_NEAR(static_cast<double>(onsets[0].time),
              static_cast<double>(30 * core::kMinute),
              static_cast<double>(4 * core::kMinute));
  EXPECT_GT(onsets[0].after_mean, onsets[0].before_mean);
  EXPECT_LT(onsets[1].after_mean, onsets[1].before_mean);
}

TEST(OnsetTest, QuietSeriesHasNoOnsets) {
  core::Rng rng(6);
  std::vector<core::TimedValue> series;
  for (int i = 0; i < 200; ++i) {
    series.push_back({i * core::kMinute, rng.normal(50.0, 2.0)});
  }
  EXPECT_TRUE(detect_onsets(series).empty());
}

TEST(OnsetTest, RelativeShiftGuardSuppressesTinySteps) {
  // A 1% step on a near-noiseless series is many sigma but operationally
  // meaningless; min_rel_shift suppresses it.
  std::vector<core::TimedValue> series;
  for (int i = 0; i < 60; ++i) {
    const double level = i < 30 ? 1000.0 : 1010.0;
    series.push_back({i * core::kMinute, level + (i % 2) * 0.01});
  }
  OnsetParams params;
  params.min_rel_shift = 0.10;
  EXPECT_TRUE(detect_onsets(series, params).empty());
}

TEST(OnsetTest, ShortSeriesHandled) {
  EXPECT_TRUE(detect_onsets({}).empty());
  std::vector<core::TimedValue> tiny{{0, 1.0}, {1, 2.0}};
  EXPECT_TRUE(detect_onsets(tiny).empty());
}

}  // namespace
}  // namespace hpcmon::analysis
