// Regression test for the Archive::reloads_ data race: fetch() is const and
// runs concurrently from query threads, but it bumps the reload counter. As
// a plain `mutable std::size_t` that increment was a tsan-visible data race
// (and could lose counts); it is now a relaxed atomic. This test hammers
// concurrent fetches and asserts the count is exact — run under
// ThreadSanitizer via the `threaded` label.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "store/retention.hpp"

namespace hpcmon::store {
namespace {

constexpr int kSeries = 4;
constexpr int kBlobsPerSeries = 3;
constexpr int kPointsPerBlob = 64;

Archive make_archive() {
  Archive archive;
  for (int s = 0; s < kSeries; ++s) {
    for (int b = 0; b < kBlobsPerSeries; ++b) {
      std::vector<core::TimedValue> pts;
      for (int i = 0; i < kPointsPerBlob; ++i) {
        pts.push_back({(b * kPointsPerBlob + i) * core::kSecond,
                       static_cast<double>(s * 1000 + i)});
      }
      archive.store(core::SeriesId{static_cast<std::uint32_t>(s)},
                    Chunk::compress(pts));
    }
  }
  return archive;
}

TEST(ArchiveRaceTest, ConcurrentFetchCountsEveryReloadExactly) {
  const Archive archive = make_archive();
  ASSERT_EQ(archive.blob_count(),
            static_cast<std::size_t>(kSeries * kBlobsPerSeries));
  ASSERT_EQ(archive.reload_count(), 0u);

  constexpr int kThreads = 8;
  constexpr int kFetchesPerThread = 100;
  const core::TimeRange all{0, core::kDay};

  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      for (int i = 0; i < kFetchesPerThread; ++i) {
        const auto series =
            core::SeriesId{static_cast<std::uint32_t>((t + i) % kSeries)};
        const auto pts = archive.fetch(series, all);
        // Full-range fetch reloads every blob of the series and returns
        // every point — concurrent reads never see partial state.
        EXPECT_EQ(pts.size(),
                  static_cast<std::size_t>(kBlobsPerSeries * kPointsPerBlob));
      }
    });
  }
  for (auto& r : readers) r.join();

  // Every fetch reloaded exactly kBlobsPerSeries blobs; a racy (non-atomic)
  // counter drops increments under contention and this equality fails.
  EXPECT_EQ(archive.reload_count(),
            static_cast<std::size_t>(kThreads * kFetchesPerThread *
                                     kBlobsPerSeries));
}

TEST(ArchiveRaceTest, MoveCarriesReloadCount) {
  Archive a = make_archive();
  (void)a.fetch(core::SeriesId{0}, {0, core::kDay});
  const auto reloads = a.reload_count();
  ASSERT_GT(reloads, 0u);
  // The atomic member deleted the implicit moves load_from_file relies on;
  // the explicit ones must preserve the counter.
  Archive b = std::move(a);
  EXPECT_EQ(b.reload_count(), reloads);
  Archive c;
  c = std::move(b);
  EXPECT_EQ(c.reload_count(), reloads);
}

}  // namespace
}  // namespace hpcmon::store
