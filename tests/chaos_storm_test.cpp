// The standing chaos battery: every standard storm scenario (log storm,
// sampler hangs, WAL I/O storm, delivery storm, queue saturation, and the
// kitchen-sink compound) runs end to end through a full chaos-wired
// MonitoringStack, and every one must satisfy the survival invariants — no
// wedge, zero critical samples lost, bounded queues, controller back to
// NORMAL. Labeled `chaos` (select with ctest -L chaos) and `threaded` (the
// ThreadSanitizer preset runs the whole battery under tsan).
#include <gtest/gtest.h>

#include <set>

#include "resilience/chaos.hpp"
#include "stack/chaos_harness.hpp"

namespace hpcmon::stack {
namespace {

TEST(ChaosStormTest, BatteryHasAtLeastFiveDistinctScenarios) {
  const auto scenarios = resilience::standard_storm_scenarios();
  EXPECT_GE(scenarios.size(), 5u);
  std::set<std::string> names;
  std::set<std::uint64_t> seeds;
  for (const auto& s : scenarios) {
    names.insert(s.name);
    seeds.insert(s.seed);
    EXPECT_FALSE(s.phases.empty()) << s.name;
    EXPECT_GT(s.total, 0) << s.name;
    for (const auto& p : s.phases) {
      EXPECT_GE(p.start, 0) << s.name;
      EXPECT_LE(p.start + p.duration, s.total) << s.name;  // recovery window
    }
  }
  EXPECT_EQ(names.size(), scenarios.size());  // distinct storms...
  EXPECT_EQ(seeds.size(), scenarios.size());  // ...under distinct seeds
}

TEST(ChaosStormTest, EveryStandardScenarioSurvives) {
  bool controller_engaged = false;
  bool shed_observed = false;
  for (const auto& scenario : resilience::standard_storm_scenarios()) {
    const auto report = run_chaos(scenario);
    EXPECT_TRUE(report.ok()) << report.to_string();
    EXPECT_TRUE(report.survived) << report.to_string();
    EXPECT_EQ(report.critical_lost, 0u) << report.to_string();
    EXPECT_EQ(report.heartbeats_stored, report.heartbeats_sent)
        << report.to_string();
    EXPECT_TRUE(report.returned_to_normal) << report.to_string();
    EXPECT_LE(report.dead_letters, report.dead_letter_cap)
        << report.to_string();
    controller_engaged = controller_engaged || report.max_mode > 0;
    shed_observed =
        shed_observed || report.bulk_shed > 0 || report.standard_shed > 0;
  }
  // The battery is not a fair-weather rubber stamp: at least one storm must
  // push the controller off NORMAL and force actual load shedding.
  EXPECT_TRUE(controller_engaged);
  EXPECT_TRUE(shed_observed);
}

TEST(ChaosStormTest, RerunningAScenarioReproducesTheTimeline) {
  // The simulated-timeline half of a storm (fault schedule, load, heartbeat
  // cadence) is deterministic under its seed, so a rerun sends the exact
  // same beats and survives the same way. (Real-thread drain timing may
  // differ; the invariants must hold regardless.)
  const auto scenarios = resilience::standard_storm_scenarios();
  ASSERT_FALSE(scenarios.empty());
  const auto& scenario = scenarios.front();
  const auto a = run_chaos(scenario);
  const auto b = run_chaos(scenario);
  EXPECT_TRUE(a.ok()) << a.to_string();
  EXPECT_TRUE(b.ok()) << b.to_string();
  EXPECT_EQ(a.heartbeats_sent, b.heartbeats_sent);
}

}  // namespace
}  // namespace hpcmon::stack
