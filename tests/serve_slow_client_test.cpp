// Slow-client isolation: a stalled subscriber under storm-rate ingest must
// cost bounded memory, shed bulk first, and NEVER lose critical state — the
// client converges to the latest value of every critical series once it
// drains. Ingest (publish_batch) must never block on the wedged socket.
#include <gtest/gtest.h>

#include <chrono>
#include <map>

#include "core/registry.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "store/tsdb.hpp"

namespace hpcmon::serve {
namespace {

constexpr std::size_t kEgressCap = 8;
constexpr int kCriticalSeries = 6;
constexpr int kBulkSeries = 6;
constexpr int kStormBatches = 2000;

class SlowClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto node = registry_.register_component(
        {"n0", core::ComponentKind::kNode, core::kNoComponent});
    const auto crit_metric = registry_.register_metric(
        {"health.heartbeat", "ok", "", false, core::Priority::kCritical});
    const auto bulk_metric = registry_.register_metric(
        {"perf.counter", "ops", "", false, core::Priority::kBulk});
    for (int i = 0; i < kCriticalSeries; ++i) {
      const auto comp = registry_.register_component(
          {"crit" + std::to_string(i), core::ComponentKind::kNode, node});
      critical_.push_back(registry_.series(crit_metric, comp));
    }
    for (int i = 0; i < kBulkSeries; ++i) {
      const auto comp = registry_.register_component(
          {"bulk" + std::to_string(i), core::ComponentKind::kNode, node});
      bulk_.push_back(registry_.series(bulk_metric, comp));
    }
    ServeConfig sc;
    sc.egress_cap = kEgressCap;
    sc.sndbuf_bytes = 4096;  // tiny pipe: a stalled reader wedges in frames
    ServeHooks hooks;
    bind_query_hooks(hooks, store_);
    hooks.registry = &registry_;
    server_ = std::make_unique<ServeServer>(sc, std::move(hooks));
    ASSERT_TRUE(server_->start()) << server_->error();
  }

  core::MetricRegistry registry_;
  std::vector<core::SeriesId> critical_, bulk_;
  store::TimeSeriesStore store_;
  std::unique_ptr<ServeServer> server_;
};

TEST_F(SlowClientTest, StalledSubscriberShedsBulkKeepsCriticalBounded) {
  ServeClient client;
  ASSERT_TRUE(client.connect(server_->port(), /*rcvbuf_bytes=*/4096));
  auto ack = client.subscribe("#");
  ASSERT_TRUE(ack.is_ok()) << ack.message();
  EXPECT_EQ(ack.value().matched.size(),
            static_cast<std::size_t>(kCriticalSeries + kBulkSeries));
  // Read the snapshot, then STALL: no more reads until the storm is over.
  auto snap = client.poll_push(2000);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->type, MsgType::kSnapshot);

  // Storm: every batch updates every series. publish_batch runs on the
  // "ingest thread" (this one) and must never block on the wedged socket.
  const auto t0 = std::chrono::steady_clock::now();
  for (int b = 1; b <= kStormBatches; ++b) {
    core::SampleBatch batch;
    batch.sweep_time = b * 1000;
    for (const auto s : critical_) {
      batch.samples.push_back({s, b * 1000, static_cast<double>(b)});
    }
    for (const auto s : bulk_) {
      batch.samples.push_back({s, b * 1000, static_cast<double>(-b)});
    }
    server_->publish_batch(batch);
  }
  const auto storm_wall = std::chrono::steady_clock::now() - t0;
  // 2000 fan-outs against a dead socket: seconds would mean we blocked.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(storm_wall)
                .count(),
            5000);

  const auto stats = server_->stats();
  // The door engaged: bulk was evicted first and counted.
  EXPECT_GT(stats.egress_evicted_bulk, 0u);
  // Critical overflow coalesced instead of dropping.
  EXPECT_GT(stats.egress_coalesced_critical, 0u);
  // Bounded egress memory: the queue's high-water mark respected the cap
  // (small slack for the never-shed ack/snapshot responses).
  obs::ObsRegistry reg;
  server_->attach_to(reg);
  EXPECT_LE(reg.snapshot().gauge("serve.egress_depth_hwm"), kEgressCap + 4.0);

  // Drain: the client reads everything pending. Track the last value seen
  // per series across snapshot + deltas.
  std::map<core::SeriesId, double> last;
  for (const auto& s : snap->batch.samples) last[s.series] = s.value;
  while (auto push = client.poll_push(500)) {
    for (const auto& s : push->batch.samples) last[s.series] = s.value;
  }
  // ZERO critical loss: every critical series converged to its final value.
  for (const auto s : critical_) {
    ASSERT_TRUE(last.count(s)) << "critical series never delivered";
    EXPECT_EQ(last[s], static_cast<double>(kStormBatches))
        << "stale critical value after drain";
  }
  // Bulk is best-effort: whatever arrived is fine, but at least one bulk
  // delta was genuinely shed (asserted via the counter above).
}

TEST_F(SlowClientTest, SlowClientDoesNotStarveAFastOne) {
  ServeClient slow;
  ASSERT_TRUE(slow.connect(server_->port(), /*rcvbuf_bytes=*/4096));
  auto slow_ack = slow.subscribe("#");
  ASSERT_TRUE(slow_ack.is_ok());
  ASSERT_TRUE(slow.poll_push(2000).has_value());  // snapshot, then stall

  ServeClient fast;
  ASSERT_TRUE(fast.connect(server_->port()));
  auto fast_ack = fast.subscribe("health.#");
  ASSERT_TRUE(fast_ack.is_ok());
  ASSERT_TRUE(fast.poll_push(2000).has_value());

  int fast_deltas = 0;
  std::map<core::SeriesId, double> last;
  for (int b = 1; b <= 200; ++b) {
    core::SampleBatch batch;
    batch.sweep_time = b * 1000;
    for (const auto s : critical_) {
      batch.samples.push_back({s, b * 1000, static_cast<double>(b)});
    }
    for (const auto s : bulk_) {
      batch.samples.push_back({s, b * 1000, 0.0});
    }
    server_->publish_batch(batch);
    // The fast client keeps consuming; per-connection queues mean the
    // wedged neighbour cannot convoy it.
    while (auto push = fast.poll_push(0)) {
      if (push->type == MsgType::kDelta) ++fast_deltas;
      for (const auto& s : push->batch.samples) last[s.series] = s.value;
    }
  }
  while (auto push = fast.poll_push(300)) {
    if (push->type == MsgType::kDelta) ++fast_deltas;
    for (const auto& s : push->batch.samples) last[s.series] = s.value;
  }
  EXPECT_GT(fast_deltas, 0);
  // Starvation check: despite the wedged neighbour, the fast client
  // converged to the final value of every critical series it watches.
  for (const auto s : critical_) {
    ASSERT_TRUE(last.count(s));
    EXPECT_EQ(last[s], 200.0);
  }
}

}  // namespace
}  // namespace hpcmon::serve
