// The crash matrix: kill the compactor at EVERY filesystem operation of a
// multi-pass workload and assert that a restart on the same directory
// recovers to the byte-exact state of a run that never crashed.
//
// The sweep is exhaustive by construction: a probe run counts the fs ops of
// the fault-free workload, then one run per k schedules `fs_crash_at = k`.
// Because no fault fires before op k, the op stream up to the crash is
// identical to the fault-free run, so every op index is reachable and every
// journaled transition (intent, tmp write, fsync, rename, commit, cleanup)
// gets killed in turn. After the crash the harness does what the stack's
// restart does: a fresh TierStore::open() on the same directory (recovery
// is not fault-injected — it is idempotent), a fresh Compactor over the
// same hot store (the WAL's job at stack level), and the remaining pass
// schedule re-runs. The final merged view must equal the reference exactly,
// with zero quarantined files — a torn tier file must never be observable.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <vector>

#include "resilience/fault.hpp"
#include "store/compactor.hpp"
#include "store/tier.hpp"
#include "store/tsdb.hpp"

namespace hpcmon::store {
namespace {

using core::kMinute;
using core::kSecond;
using core::SeriesId;
using core::TimePoint;
using core::TimeRange;

// Three-rung ladder with short horizons so seven passes exercise hot
// ingest, both aging steps, and last-tier expiry (bulk expires first).
TierPolicy matrix_policy() {
  TierPolicy p;
  TierSpec raw;
  raw.resolution = 0;
  raw.agg = Agg::kLast;
  raw.keep = {2 * kMinute, 2 * kMinute, kMinute};
  TierSpec t30;
  t30.resolution = 30 * kSecond;
  t30.agg = Agg::kMean;
  t30.keep = {6 * kMinute, 6 * kMinute, 3 * kMinute};
  TierSpec t120;
  t120.resolution = 2 * kMinute;
  t120.agg = Agg::kMean;
  t120.keep = {30 * kMinute, 30 * kMinute, 10 * kMinute};
  p.tiers = {raw, t30, t120};
  return p;
}

constexpr std::uint32_t kSeries[] = {1, 2, 3};

core::Priority priority_of(SeriesId id) {
  switch (core::raw(id)) {
    case 1: return core::Priority::kCritical;
    case 3: return core::Priority::kBulk;
    default: return core::Priority::kStandard;
  }
}

const std::vector<TimePoint> kPassTimes = {
    2 * kMinute,  4 * kMinute,  6 * kMinute, 8 * kMinute,
    10 * kMinute, 15 * kMinute, 20 * kMinute};

constexpr TimeRange kEverything{-core::kHour, 1000 * kMinute};

/// Everything observable about the store after the workload: the durable
/// watermark, quarantine count, and the full merged view per series.
struct FinalState {
  TimePoint watermark = 0;
  std::size_t quarantined = 0;
  std::map<std::uint32_t, std::vector<core::TimedValue>> points;

  bool operator==(const FinalState& o) const {
    if (watermark != o.watermark || quarantined != o.quarantined) return false;
    if (points.size() != o.points.size()) return false;
    for (const auto& [sid, pts] : points) {
      const auto it = o.points.find(sid);
      if (it == o.points.end() || it->second.size() != pts.size()) {
        return false;
      }
      for (std::size_t i = 0; i < pts.size(); ++i) {
        if (pts[i].time != it->second[i].time ||
            pts[i].value != it->second[i].value) {
          return false;
        }
      }
    }
    return true;
  }
};

/// Run the deterministic workload. When `plan` injects a crash, model the
/// restart (fresh TierStore + Compactor, faults detached, same hot store)
/// and re-run the interrupted pass. Crash count lands in `crashes_out`.
FinalState run_workload(const std::string& dir, resilience::FaultPlan* plan,
                        int* crashes_out = nullptr) {
  std::filesystem::remove_all(dir);
  TimeSeriesStore hot(4);  // chunk_points=4: plenty of sealed chunks
  for (int i = 0; i <= 60; ++i) {
    for (const auto sid : kSeries) {
      EXPECT_TRUE(hot.append(SeriesId{sid}, i * 10 * kSecond,
                             double(sid) * 1000.0 + 3.0 * i - 7.0));
    }
  }

  auto make_tiers = [&](core::FsFaultInjector* faults) {
    TierStore::Options o;
    o.dir = dir;
    o.policy = matrix_policy();
    o.faults = faults;
    auto t = std::make_unique<TierStore>(std::move(o));
    EXPECT_TRUE(t->open().is_ok());
    return t;
  };
  auto tiers = make_tiers(plan);
  CompactorOptions co;
  co.hot_window = kMinute;
  co.priority_of = priority_of;
  auto compactor = std::make_unique<Compactor>(
      std::vector<TimeSeriesStore*>{&hot}, tiers.get(), co);

  int crashes = 0;
  for (const auto t : kPassTimes) {
    const auto st = compactor->run_pass(t);
    if (tiers->crashed()) {
      // The process died mid-transaction. Restart: recover the directory
      // with a fresh instance and re-run the interrupted pass fault-free.
      ++crashes;
      tiers = make_tiers(nullptr);
      compactor = std::make_unique<Compactor>(
          std::vector<TimeSeriesStore*>{&hot}, tiers.get(), co);
      EXPECT_TRUE(compactor->run_pass(t).is_ok());
    } else {
      EXPECT_TRUE(st.is_ok()) << st.message();
    }
  }
  if (crashes_out != nullptr) *crashes_out = crashes;

  FinalState out;
  out.watermark = tiers->watermark();
  out.quarantined = tiers->quarantined_count();
  const TierSpanView<TimeSeriesStore> span(tiers.get(), &hot);
  for (const auto sid : kSeries) {
    out.points[sid] = span.query_range(SeriesId{sid}, kEverything);
  }
  return out;
}

TEST(CompactorCrashMatrixTest, ByteExactRecoveryAtEveryFsOp) {
  // Reference state, and the fs-op count of the fault-free workload.
  const auto reference = run_workload("/tmp/hpcmon_matrix_ref", nullptr);
  ASSERT_GT(reference.points.at(1).size(), 0u);
  ASSERT_EQ(reference.quarantined, 0u);

  resilience::FaultPlan probe(1);
  int crashes = 0;
  const auto probed = run_workload("/tmp/hpcmon_matrix_probe", &probe,
                                   &crashes);
  ASSERT_EQ(crashes, 0);
  ASSERT_TRUE(probed == reference) << "workload is not deterministic";
  const auto total_ops = probe.fs_ops();
  // The workload must be substantial enough that the sweep means something:
  // multiple journaled transactions, each several fs ops wide.
  ASSERT_GE(total_ops, 40u);

  for (std::uint64_t k = 1; k <= total_ops; ++k) {
    resilience::FaultSpec spec;
    spec.fs_crash_at = k;
    resilience::FaultPlan plan(1, spec);
    const auto got =
        run_workload("/tmp/hpcmon_matrix_k", &plan, &crashes);
    ASSERT_EQ(plan.injected().fs_crashes, 1u)
        << "crash one-shot at op " << k << " never fired";
    ASSERT_EQ(crashes, 1) << "crash at op " << k << " went unnoticed";
    EXPECT_EQ(got.quarantined, 0u)
        << "crash at op " << k << " left an observable torn tier file";
    EXPECT_EQ(got.watermark, reference.watermark)
        << "crash at op " << k << " diverged the durable watermark";
    ASSERT_TRUE(got == reference)
        << "recovery after a crash at fs op " << k
        << " is not byte-exact against the fault-free reference";
  }
}

}  // namespace
}  // namespace hpcmon::store
