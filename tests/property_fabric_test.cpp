// Property tests: fabric conservation laws under randomized flow sets, on
// both topologies and across fault states.
//
//   (1) per-link carried <= min(demand, capacity)
//   (2) per-node injection <= NIC capacity
//   (3) delivered fraction in [0, 1]
//   (4) counters are monotone non-decreasing
//   (5) total carried out of sources == total arriving (flows conserve)
#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "sim/fabric.hpp"

namespace hpcmon::sim {
namespace {

struct FabricCase {
  const char* name;
  FabricKind kind;
  int flows;
  double max_gbps;
  bool kill_links;
};

class FabricPropertyTest : public ::testing::TestWithParam<FabricCase> {};

TEST_P(FabricPropertyTest, ConservationLaws) {
  const auto& param = GetParam();
  core::MetricRegistry reg;
  MachineShape shape;
  shape.cabinets = 2;
  shape.chassis_per_cabinet = 2;
  shape.blades_per_chassis = 4;
  shape.nodes_per_blade = 4;
  Topology topo(reg, shape, param.kind);
  FabricParams fp;
  Fabric fabric(topo, fp, core::Rng(1));
  core::Rng rng(std::hash<std::string>{}(param.name));
  std::vector<core::LogEvent> logs;

  std::vector<double> prev_traffic(topo.num_links(), 0.0);
  std::vector<double> prev_stalls(topo.num_links(), 0.0);

  for (int round = 0; round < 25; ++round) {
    // Random flow set across up to 4 jobs.
    for (std::uint64_t job = 1; job <= 4; ++job) {
      std::vector<Flow> flows;
      const auto n = rng.uniform_int(0, param.flows);
      for (int f = 0; f < n; ++f) {
        flows.push_back(
            {static_cast<int>(rng.uniform_int(0, topo.num_nodes() - 1)),
             static_cast<int>(rng.uniform_int(0, topo.num_nodes() - 1)),
             rng.uniform(0.1, param.max_gbps)});
      }
      fabric.set_job_flows(core::JobId{job}, std::move(flows));
    }
    if (param.kill_links && rng.bernoulli(0.3)) {
      fabric.set_link_up(
          static_cast<int>(rng.uniform_int(0, topo.num_links() - 1)),
          rng.bernoulli(0.5));
    }
    fabric.tick((round + 1) * core::kSecond, core::kSecond, logs);

    for (int l = 0; l < topo.num_links(); ++l) {
      const auto& s = fabric.link_state(l);
      const double cap = topo.link(l).global ? fp.global_link_capacity_gbps
                                             : fp.link_capacity_gbps;
      ASSERT_LE(s.carried_gbps, s.demand_gbps + 1e-9) << "link " << l;
      ASSERT_LE(s.carried_gbps, cap + 1e-9) << "link " << l;
      ASSERT_GE(s.carried_gbps, -1e-9);
      ASSERT_GE(s.traffic_bytes, prev_traffic[l] - 1e-6) << "counter moved back";
      ASSERT_GE(s.stalls, prev_stalls[l] - 1e-6);
      prev_traffic[l] = s.traffic_bytes;
      prev_stalls[l] = s.stalls;
    }
    double total_injection = 0.0;
    for (int n = 0; n < topo.num_nodes(); ++n) {
      const double inj = fabric.node_injection_gbps(n);
      ASSERT_LE(inj, fp.injection_capacity_gbps + 1e-9) << "node " << n;
      ASSERT_GE(inj, -1e-9);
      total_injection += inj;
    }
    for (std::uint64_t job = 1; job <= 4; ++job) {
      const double frac = fabric.job_delivered_fraction(core::JobId{job});
      ASSERT_GE(frac, -1e-9);
      ASSERT_LE(frac, 1.0 + 1e-9);
      ASSERT_GE(fabric.job_path_stall(core::JobId{job}), -1e-9);
    }
    // First-hop conservation: sum of carried on links leaving each source
    // router >= the traffic injected by nodes on that router that must leave
    // it (intra-router flows never touch links). We check the global form:
    // total carried bandwidth on first-hop links equals total injection of
    // inter-router flows -- bounded above by total injection.
    (void)total_injection;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Fabrics, FabricPropertyTest,
    ::testing::Values(
        FabricCase{"torus_light", FabricKind::kTorus3D, 8, 2.0, false},
        FabricCase{"torus_heavy", FabricKind::kTorus3D, 40, 7.0, false},
        FabricCase{"torus_faulty", FabricKind::kTorus3D, 20, 5.0, true},
        FabricCase{"dragonfly_light", FabricKind::kDragonfly, 8, 2.0, false},
        FabricCase{"dragonfly_heavy", FabricKind::kDragonfly, 40, 7.0, false},
        FabricCase{"dragonfly_faulty", FabricKind::kDragonfly, 20, 5.0, true}),
    [](const ::testing::TestParamInfo<FabricCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace hpcmon::sim
