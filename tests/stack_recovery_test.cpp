// End-to-end resilience: crash recovery from the WAL (hot tier restored
// byte-identical to an uninterrupted run), shutdown draining the ingest
// tier, WAL truncation behind the archive watermark, and the operator
// surface for all of it.
#include "stack/stack.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

namespace hpcmon::stack {
namespace {

namespace fs = std::filesystem;

sim::ClusterParams cluster_params() {
  sim::ClusterParams p;
  p.shape.cabinets = 2;
  p.shape.chassis_per_cabinet = 2;
  p.shape.blades_per_chassis = 4;
  p.shape.nodes_per_blade = 4;
  p.shape.gpu_node_fraction = 0.25;
  p.tick = 5 * core::kSecond;
  p.seed = 61;
  return p;
}

core::Config parse(const std::string& text) {
  auto r = core::Config::parse(text);
  EXPECT_TRUE(r.is_ok());
  return r.value();
}

std::string fresh_wal_dir(const std::string& name) {
  const std::string dir = "/tmp/hpcmon_recovery_test_" + name;
  fs::remove_all(dir);
  return dir;
}

// The acceptance drill: run a stack with a WAL, crash it mid-flight (no
// retention flush, no orderly shutdown), restart on the same WAL directory,
// and verify the recovered hot tier answers every query byte-identically to
// a reference stack that never crashed.
TEST(StackRecoveryTest, CrashRecoveryRestoresHotTierByteIdentical) {
  const auto wal_dir = fresh_wal_dir("crash");
  const std::string cfg = "sample_interval_s = 30\nwal_path = " + wal_dir + "\n";
  constexpr auto kRunTime = 40 * core::kMinute;  // < first retention pass

  // Reference: identical cluster seed, no WAL, uninterrupted.
  sim::Cluster ref_cluster(cluster_params());
  MonitoringStack ref(ref_cluster, parse("sample_interval_s = 30\n"));
  ref_cluster.run_for(kRunTime);

  // Victim: same deterministic cluster, WAL enabled, then a hard crash.
  sim::Cluster cluster(cluster_params());
  std::uint64_t walled_records = 0;
  {
    auto stack = std::make_unique<MonitoringStack>(cluster, parse(cfg));
    cluster.run_for(kRunTime);
    ASSERT_NE(stack->wal(), nullptr);
    EXPECT_GT(stack->wal()->stats().appended_records, 0u);
    EXPECT_EQ(stack->wal()->stats().append_failures, 0u);
    walled_records = stack->wal()->stats().appended_records;
    stack->simulate_crash();  // destructor skips shutdown(): hot tier lost
  }

  // Restart on the same WAL directory: construction replays every record.
  // (No run_for after this point: the comparison is pure recovery.)
  MonitoringStack recovered(cluster, parse(cfg));
  EXPECT_EQ(recovered.replay_stats().records, walled_records);
  EXPECT_GT(recovered.replay_stats().samples, 0u);
  EXPECT_EQ(recovered.replay_stats().corrupt_skipped, 0u);
  EXPECT_EQ(recovered.replay_stats().bad_segments, 0u);

  // Every series the reference collected must answer identically from the
  // recovered store. SeriesIds can differ across the two registries (the
  // WAL run interns resilience.* metrics), so map through metric name +
  // component, which are stable.
  auto& ref_reg = ref_cluster.registry();
  auto& reg = cluster.registry();
  const core::TimeRange all{0, ref_cluster.now() + core::kSecond};
  std::size_t compared = 0;
  std::size_t nonempty = 0;
  for (std::uint32_t i = 0; i < ref_reg.series_count(); ++i) {
    const auto ref_sid = core::SeriesId{i};
    const auto& metric = ref_reg.metric(ref_reg.series_metric(ref_sid));
    const auto sid = reg.series(metric.name, ref_reg.series_component(ref_sid));
    const auto want = ref.tsdb().query_range(ref_sid, all);
    const auto got = recovered.tsdb().query_range(sid, all);
    EXPECT_EQ(got, want) << "series " << ref_reg.series_name(ref_sid);
    ++compared;
    if (!want.empty()) ++nonempty;
  }
  EXPECT_GT(compared, 100u);  // the sweep really covers the whole system
  EXPECT_GT(nonempty, 50u);
  fs::remove_all(wal_dir);
}

// Crash vs. clean shutdown: without the WAL the hot tier dies with the
// process; with it, nothing already acknowledged is lost.
TEST(StackRecoveryTest, WithoutWalACrashLosesTheHotTier) {
  sim::Cluster cluster(cluster_params());
  {
    auto stack = std::make_unique<MonitoringStack>(cluster, core::Config{});
    cluster.run_for(10 * core::kMinute);
    EXPECT_GT(stack->tsdb().hot().stats().points, 0u);
    stack->simulate_crash();
  }
  MonitoringStack after(cluster, core::Config{});
  EXPECT_EQ(after.replay_stats().records, 0u);
  EXPECT_EQ(after.tsdb().hot().stats().points, 0u);
}

TEST(StackRecoveryTest, ShutdownDrainsIngestBeforeTeardown) {
  sim::Cluster cluster(cluster_params());
  MonitoringStack stack(cluster, parse(R"(
      sample_interval_s = 30
      ingest_shards = 2
      ingest_policy = block
  )"));
  cluster.run_for(20 * core::kMinute);
  stack.shutdown();

  ASSERT_NE(stack.ingest_pipeline(), nullptr);
  const auto snap = stack.ingest_pipeline()->metrics().snapshot();
  EXPECT_GT(snap.submitted_samples, 0u);
  // Everything submitted was appended (or rejected as out-of-order) — no
  // sample stranded in a shard queue when the workers stopped.
  EXPECT_EQ(snap.submitted_samples,
            snap.accepted_samples + snap.out_of_order_samples);
  EXPECT_EQ(snap.dropped_samples, 0u);
  ASSERT_NE(stack.sharded_store(), nullptr);
  EXPECT_EQ(stack.sharded_store()->stats().points, snap.accepted_samples);
  // shutdown() is idempotent.
  stack.shutdown();
}

TEST(StackRecoveryTest, WalTruncatesOnlyBehindTheArchive) {
  const auto wal_dir = fresh_wal_dir("truncate");
  const std::string archive = "/tmp/hpcmon_recovery_archive.bin";
  std::remove(archive.c_str());
  sim::Cluster cluster(cluster_params());
  MonitoringStack stack(cluster, parse(
      "hot_window_s = 1800\nsample_interval_s = 30\nchunk_points = 32\n"
      "wal_segment_bytes = 4096\n"
      "archive_path = " + archive + "\nwal_path = " + wal_dir + "\n"));
  cluster.run_for(3 * core::kHour);  // hourly retention fires twice
  ASSERT_GT(stack.archive_saves(), 0u);
  ASSERT_NE(stack.wal(), nullptr);
  // Small segments rotated often; everything archived got truncated away.
  EXPECT_GT(stack.wal()->stats().segments_created, 2u);
  EXPECT_GT(stack.wal()->stats().segments_truncated, 0u);
  std::remove(archive.c_str());
  fs::remove_all(wal_dir);
}

TEST(StackRecoveryTest, SupervisedStackCollectsNormally) {
  sim::Cluster cluster(cluster_params());
  MonitoringStack stack(cluster, parse(R"(
      sample_interval_s = 30
      breaker_threshold = 3
  )"));
  cluster.run_for(10 * core::kMinute);
  ASSERT_FALSE(stack.supervised_samplers().empty());
  const auto sup = stack.supervisor_stats();
  EXPECT_GT(sup.calls, 0u);
  EXPECT_EQ(sup.errors, 0u);
  EXPECT_EQ(sup.skipped, 0u);
  EXPECT_GT(sup.samples_merged, 0u);
  // Healthy samplers: every breaker closed, and the stack says so.
  for (const auto* s : stack.supervised_samplers()) {
    EXPECT_EQ(s->breaker_state(), resilience::BreakerState::kClosed);
  }
  EXPECT_NE(stack.status().find("breakers closed="), std::string::npos);
  // The tier's own counters are re-ingested as hpcmon.self.* series.
  EXPECT_TRUE(cluster.registry().find_metric(
      "hpcmon.self.resilience.sampler_successes"));
}

TEST(StackRecoveryTest, StatusSurfacesWalAndDeadLetters) {
  const auto wal_dir = fresh_wal_dir("status");
  sim::Cluster cluster(cluster_params());
  MonitoringStack stack(
      cluster, parse("sample_interval_s = 30\nwal_path = " + wal_dir + "\n"));
  cluster.run_for(5 * core::kMinute);
  const auto line = stack.status();
  EXPECT_NE(line.find("resilience.wal_records="), std::string::npos);
  EXPECT_NE(line.find("dlq=0"), std::string::npos);
  EXPECT_TRUE(
      cluster.registry().find_metric("hpcmon.self.resilience.wal_records"));
  fs::remove_all(wal_dir);
}

}  // namespace
}  // namespace hpcmon::stack
