// ReliableDelivery: retries, bounded dead-letter queue, redelivery after
// recovery, exception containment, and FaultPlan-driven injection.
#include "resilience/delivery.hpp"

#include <gtest/gtest.h>

#include "resilience/fault.hpp"

namespace hpcmon::resilience {
namespace {

using core::Status;
using transport::Frame;

Frame make_frame(std::uint8_t tag) {
  Frame f;
  f.payload = {tag, 1, 2, 3};
  return f;
}

TEST(DeliveryTest, RetriesUntilTransientFailureClears) {
  int attempts = 0;
  ReliableDelivery d(
      [&](const Frame&) {
        return ++attempts < 3 ? Status::error("transient") : Status::ok();
      },
      {.max_attempts = 3});
  EXPECT_TRUE(d.deliver(make_frame(1)));
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(d.stats().delivered, 1u);
  EXPECT_EQ(d.stats().retries, 2u);
  EXPECT_EQ(d.stats().failures, 0u);
  EXPECT_EQ(d.dead_letter_count(), 0u);
}

TEST(DeliveryTest, ExhaustedFramesAreDeadLettered) {
  ReliableDelivery d([](const Frame&) { return Status::error("down"); },
                     {.max_attempts = 2});
  EXPECT_FALSE(d.deliver(make_frame(1)));
  EXPECT_EQ(d.stats().retries, 1u);
  EXPECT_EQ(d.stats().failures, 1u);
  EXPECT_EQ(d.stats().dead_lettered, 1u);
  ASSERT_EQ(d.dead_letter_count(), 1u);
  EXPECT_EQ(d.dead_letters().front().payload[0], 1);
}

TEST(DeliveryTest, DeadLetterQueueIsBounded) {
  ReliableDelivery d([](const Frame&) { return Status::error("down"); },
                     {.max_attempts = 1, .dead_letter_cap = 2});
  d.deliver(make_frame(1));
  d.deliver(make_frame(2));
  d.deliver(make_frame(3));  // evicts frame 1
  EXPECT_EQ(d.dead_letter_count(), 2u);
  EXPECT_EQ(d.stats().evicted, 1u);
  EXPECT_EQ(d.stats().dead_lettered, 3u);
  EXPECT_EQ(d.dead_letters().front().payload[0], 2);
  EXPECT_EQ(d.dead_letters().back().payload[0], 3);
}

TEST(DeliveryTest, RedeliverFlushesQueueAfterRecovery) {
  bool down = true;
  ReliableDelivery d(
      [&](const Frame&) { return down ? Status::error("down") : Status::ok(); },
      {.max_attempts = 1});
  d.deliver(make_frame(1));
  d.deliver(make_frame(2));
  ASSERT_EQ(d.dead_letter_count(), 2u);
  // Still down: nothing redelivered, nothing lost.
  EXPECT_EQ(d.redeliver(), 0u);
  EXPECT_EQ(d.dead_letter_count(), 2u);
  down = false;
  EXPECT_EQ(d.redeliver(), 2u);
  EXPECT_EQ(d.dead_letter_count(), 0u);
  EXPECT_EQ(d.stats().redelivered, 2u);
}

TEST(DeliveryTest, ThrowingDeliveryFunctionIsContained) {
  ReliableDelivery d(
      [](const Frame&) -> Status { throw std::runtime_error("boom"); },
      {.max_attempts = 2});
  EXPECT_FALSE(d.deliver(make_frame(1)));  // no exception escapes
  EXPECT_EQ(d.stats().failures, 1u);
  EXPECT_EQ(d.dead_letter_count(), 1u);
}

TEST(DeliveryTest, FaultPlanDrivesInjectedFailures) {
  FaultSpec spec;
  spec.delivery_error_at = 1;
  FaultPlan plan(42, spec);
  int inner_calls = 0;
  ReliableDelivery d(faulty_deliver(
                         [&](const Frame&) {
                           ++inner_calls;
                           return Status::ok();
                         },
                         plan),
                     {.max_attempts = 2});
  // First attempt eats the injected fault; the retry goes through.
  EXPECT_TRUE(d.deliver(make_frame(1)));
  EXPECT_EQ(d.stats().retries, 1u);
  EXPECT_EQ(plan.injected().delivery_errors, 1u);
  EXPECT_EQ(inner_calls, 1);
  EXPECT_EQ(d.stats().delivered, 1u);
}

}  // namespace
}  // namespace hpcmon::resilience
