// hpcmon::obs instrument layer: randomized quantile accuracy of the
// log-bucketed histogram, associativity of snapshot merges (the property
// that lets per-shard instruments combine in any order), and multi-writer
// correctness of the lock-free instruments under concurrent hammering.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "obs/exporter.hpp"
#include "obs/instruments.hpp"
#include "obs/registry.hpp"

namespace hpcmon::obs {
namespace {

/// Nearest-rank exact quantile, matching HistogramSnapshot::quantile's
/// definition (rank = ceil(q * count), 1-based).
double exact_quantile(std::vector<std::uint64_t> v, double q) {
  std::sort(v.begin(), v.end());
  const auto rank = static_cast<std::size_t>(std::max<double>(
      1.0, std::ceil(q * static_cast<double>(v.size()))));
  return static_cast<double>(v[rank - 1]);
}

class HistogramQuantileTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(HistogramQuantileTest, RandomizedQuantilesWithinResolutionBound) {
  std::mt19937_64 rng(GetParam());
  // Log-uniform over [1, 1e6]: exercises many octaves of the log-linear
  // bucketing, like real stage latencies spanning ns-scale cache hits to
  // ms-scale archive reloads.
  std::uniform_real_distribution<double> log_u(0.0, std::log(1e6));
  Histogram h;
  std::vector<std::uint64_t> values;
  values.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    const auto v = static_cast<std::uint64_t>(std::exp(log_u(rng)));
    values.push_back(v);
    h.record(v);
  }
  const auto snap = h.snapshot();
  ASSERT_EQ(snap.count, values.size());
  for (const double q : {0.5, 0.9, 0.95, 0.99}) {
    const double exact = exact_quantile(values, q);
    const double est = snap.quantile(q);
    // Sub-bucket resolution bounds relative error at 2^-(kSubBits+1)
    // ≈ 3.1%; 5% leaves headroom for bucket-midpoint reporting.
    EXPECT_NEAR(est, exact, 0.05 * exact)
        << "q=" << q << " exact=" << exact << " est=" << est;
  }
  // max is tracked exactly, not bucketed.
  EXPECT_EQ(snap.max, *std::max_element(values.begin(), values.end()));
}

TEST_P(HistogramQuantileTest, SmallValuesLandInExactUnitBuckets) {
  // Values below 2^kSubBits get exact unit buckets: the quantile identifies
  // the precise value (reported as the bucket midpoint, value + 0.5), with
  // no log-bucketing error for small integer distributions like batch sizes
  // and retry counts.
  std::mt19937_64 rng(GetParam() * 7919);
  std::uniform_int_distribution<std::uint64_t> u(0, Histogram::kSub - 1);
  Histogram h;
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 5000; ++i) {
    values.push_back(u(rng));
    h.record(values.back());
  }
  const auto snap = h.snapshot();
  for (const double q : {0.25, 0.5, 0.75, 0.99}) {
    EXPECT_DOUBLE_EQ(snap.quantile(q), exact_quantile(values, q) + 0.5) << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramQuantileTest,
                         ::testing::Values(1u, 7u, 42u, 1337u));

TEST(HistogramSnapshotTest, MergeIsAssociativeAndCommutative) {
  std::mt19937_64 rng(99);
  std::uniform_int_distribution<std::uint64_t> u(0, 1u << 20);
  Histogram ha, hb, hc;
  for (int i = 0; i < 3000; ++i) ha.record(u(rng));
  for (int i = 0; i < 1000; ++i) hb.record(u(rng));
  for (int i = 0; i < 1; ++i) hc.record(u(rng));  // tiny arm: short buckets
  const auto a = ha.snapshot(), b = hb.snapshot(), c = hc.snapshot();

  auto merged = [](HistogramSnapshot x, const HistogramSnapshot& y) {
    x.merge(y);
    return x;
  };
  const auto left = merged(merged(a, b), c);    // (a+b)+c
  const auto right = merged(a, merged(b, c));   // a+(b+c)
  const auto swapped = merged(merged(c, b), a); // c+b+a
  EXPECT_EQ(left.buckets, right.buckets);
  EXPECT_EQ(left.buckets, swapped.buckets);
  EXPECT_EQ(left.count, 4001u);
  EXPECT_EQ(left.sum, a.sum + b.sum + c.sum);
  EXPECT_EQ(left.max, std::max({a.max, b.max, c.max}));
  EXPECT_DOUBLE_EQ(left.quantile(0.95), right.quantile(0.95));
  // Merging an empty snapshot is the identity.
  EXPECT_EQ(merged(a, HistogramSnapshot{}).buckets, a.buckets);
}

TEST(ObsSnapshotTest, RegistryMergeIsAssociativeByName) {
  // Three sibling registries share some names and own some exclusively,
  // like per-shard stores attached next to a singleton WAL.
  ObsRegistry ra, rb, rc;
  ra.counter({"x.events", "events", "shared counter"}).add(10);
  rb.counter({"x.events", "events", "shared counter"}).add(5);
  rc.counter({"x.events", "events", "shared counter"}).add(1);
  ra.gauge({"x.depth", "items", "max-agg gauge"}).set(3.0);
  rc.gauge({"x.depth", "items", "max-agg gauge"}).set(9.0);
  rb.gauge({"x.load", "frac", "sum-agg gauge", core::Priority::kCritical,
            GaugeAgg::kSum})
      .set(0.25);
  rc.gauge({"x.load", "frac", "sum-agg gauge", core::Priority::kCritical,
            GaugeAgg::kSum})
      .set(0.5);
  rb.counter({"x.only_b", "events", "exclusive to b"}).add(7);

  auto merged = [](ObsSnapshot x, const ObsSnapshot& y) {
    x.merge(y);
    return x;
  };
  const auto a = ra.snapshot(), b = rb.snapshot(), c = rc.snapshot();
  const auto left = merged(merged(a, b), c);
  const auto right = merged(a, merged(b, c));
  for (const auto* s : {&left, &right}) {
    EXPECT_EQ(s->counter("x.events"), 16u);
    EXPECT_DOUBLE_EQ(s->gauge("x.depth"), 9.0);   // kMax
    EXPECT_DOUBLE_EQ(s->gauge("x.load"), 0.75);   // kSum
    EXPECT_EQ(s->counter("x.only_b"), 7u);
    EXPECT_EQ(s->counter("x.absent"), 0u);
    EXPECT_EQ(s->histogram("x.absent"), nullptr);
  }
}

TEST(ObsRegistryTest, SameNameAttachmentsMergeAtSnapshotTime) {
  ObsRegistry reg;
  // Registry-owned: re-registering a name yields the same atomic.
  auto& c1 = reg.counter({"t.hits", "hits", "dedup"});
  auto& c2 = reg.counter({"t.hits", "hits", "dedup"});
  EXPECT_EQ(&c1, &c2);
  c1.add(3);
  // Tier-owned: two shards attach their own counters under one name.
  Counter shard0, shard1;
  shard0.add(100);
  shard1.add(200);
  reg.attach({"t.appends", "appends", "per-shard"}, &shard0);
  reg.attach({"t.appends", "appends", "per-shard"}, &shard1);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter("t.hits"), 3u);
  EXPECT_EQ(snap.counter("t.appends"), 300u);
  EXPECT_EQ(reg.instrument_count(), 2u);
}

TEST(ObsInstrumentsTest, MultiWriterHammerCountsExactly) {
  // The instruments' whole contract: concurrent relaxed updates lose
  // nothing. 8 writers hammer one counter, one max-gauge, and one
  // histogram; totals must be exact (run under tsan via the threaded
  // label).
  constexpr int kThreads = 8;
  constexpr std::uint64_t kOps = 50000;
  Counter counter;
  Gauge hwm;
  Histogram hist;
  ObsRegistry reg;
  reg.attach({"hammer.ops", "ops", "shared"}, &counter);
  reg.attach({"hammer.hwm", "ops", "shared"}, &hwm);
  reg.attach({"hammer.lat", "us", "shared"}, &hist);

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kOps; ++i) {
        counter.add(1);
        hwm.update_max(static_cast<double>(t * kOps + i));
        hist.record(i & 1023u);
      }
    });
  }
  // A concurrent reader: snapshots taken mid-hammer must be internally
  // sane (count never exceeds the final total, no torn values).
  std::thread reader([&] {
    for (int i = 0; i < 200; ++i) {
      const auto snap = reg.snapshot();
      EXPECT_LE(snap.counter("hammer.ops"), kThreads * kOps);
      const auto* h = snap.histogram("hammer.lat");
      ASSERT_NE(h, nullptr);
      EXPECT_LE(h->max, 1023u);
    }
  });
  for (auto& w : writers) w.join();
  reader.join();

  EXPECT_EQ(counter.value(), kThreads * kOps);
  EXPECT_DOUBLE_EQ(hwm.value(), static_cast<double>(kThreads * kOps - 1));
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.count, kThreads * kOps);
  // Each thread records 0..1023 repeating: the sum is exactly derivable.
  std::uint64_t per_thread = 0;
  for (std::uint64_t i = 0; i < kOps; ++i) per_thread += i & 1023u;
  EXPECT_EQ(snap.sum, kThreads * per_thread);
}

TEST(ObsExporterTest, ReportLineUsesBareInstrumentNames) {
  ObsRegistry reg;
  reg.counter({"tier.things", "things", "count of things"}).add(12);
  reg.gauge({"tier.fill", "frac", "fill fraction"}).set(0.5);
  const ObsExporter exp;
  const auto line = exp.report_line(reg.snapshot());
  EXPECT_NE(line.find("tier.things=12"), std::string::npos);
  EXPECT_NE(line.find("tier.fill=0.5"), std::string::npos);
  // The hpcmon.self. prefix belongs to the re-ingested series only.
  EXPECT_EQ(line.find("hpcmon.self."), std::string::npos);
}

}  // namespace
}  // namespace hpcmon::obs
