#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

namespace hpcmon::sim {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&](core::TimePoint) { order.push_back(3); });
  q.schedule_at(10, [&](core::TimePoint) { order.push_back(1); });
  q.schedule_at(20, [&](core::TimePoint) { order.push_back(2); });
  EXPECT_EQ(q.run_until(25), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.run_until(100), 1u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(10, [&order, i](core::TimePoint) { order.push_back(i); });
  }
  q.run_until(10);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, EventsMayScheduleWithinWindow) {
  EventQueue q;
  std::vector<core::TimePoint> fired;
  q.schedule_at(5, [&](core::TimePoint t) {
    fired.push_back(t);
    q.schedule_at(7, [&](core::TimePoint t2) { fired.push_back(t2); });
  });
  EXPECT_EQ(q.run_until(10), 2u);  // the nested event also runs
  EXPECT_EQ(fired, (std::vector<core::TimePoint>{5, 7}));
}

TEST(EventQueueTest, ScheduleEveryRepeats) {
  EventQueue q;
  int count = 0;
  q.schedule_every(10, 10, [&](core::TimePoint) { ++count; });
  q.run_until(55);
  EXPECT_EQ(count, 5);  // t = 10, 20, 30, 40, 50
  EXPECT_FALSE(q.empty());  // next repetition is pending
  EXPECT_EQ(q.next_time(), 60);
}

}  // namespace
}  // namespace hpcmon::sim
