#include "analysis/streaming.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/rng.hpp"

namespace hpcmon::analysis {
namespace {

TEST(OnlineStatsTest, MatchesClosedForm) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.cv(), 2.138 / 5.0, 1e-3);
}

TEST(OnlineStatsTest, SinglePointHasZeroVariance) {
  OnlineStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(EwmaTest, ConvergesToLevel) {
  Ewma e(0.2);
  EXPECT_FALSE(e.initialized());
  for (int i = 0; i < 100; ++i) e.add(10.0);
  EXPECT_NEAR(e.mean(), 10.0, 1e-6);
  EXPECT_NEAR(e.stddev(), 0.0, 1e-6);
  // Step change: EWMA follows with lag.
  e.add(20.0);
  EXPECT_GT(e.mean(), 10.0);
  EXPECT_LT(e.mean(), 20.0);
  EXPECT_GT(e.stddev(), 0.0);
}

class P2QuantileParamTest : public ::testing::TestWithParam<double> {};

TEST_P(P2QuantileParamTest, ApproximatesExactQuantile) {
  const double q = GetParam();
  core::Rng rng(77);
  P2Quantile est(q);
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.lognormal(1.0, 0.5);
    est.add(x);
    values.push_back(x);
  }
  std::sort(values.begin(), values.end());
  const double exact =
      values[static_cast<std::size_t>(q * (values.size() - 1))];
  EXPECT_NEAR(est.value(), exact, exact * 0.05)
      << "q=" << q << " exact=" << exact << " est=" << est.value();
}

INSTANTIATE_TEST_SUITE_P(Quantiles, P2QuantileParamTest,
                         ::testing::Values(0.5, 0.9, 0.95, 0.99));

TEST(P2QuantileTest, ExactForSmallCounts) {
  P2Quantile est(0.5);
  est.add(5.0);
  EXPECT_DOUBLE_EQ(est.value(), 5.0);
  est.add(1.0);
  est.add(9.0);
  EXPECT_DOUBLE_EQ(est.value(), 5.0);  // median of {1, 5, 9}
}

TEST(RateConverterTest, CounterToRate) {
  RateConverter rc;
  EXPECT_FALSE(rc.update(0, 100.0).has_value());  // first point
  const auto r1 = rc.update(10 * core::kSecond, 600.0);
  ASSERT_TRUE(r1.has_value());
  EXPECT_DOUBLE_EQ(*r1, 50.0);  // 500 per 10 s
  const auto r2 = rc.update(20 * core::kSecond, 600.0);
  EXPECT_DOUBLE_EQ(*r2, 0.0);
}

TEST(RateConverterTest, ResetRestartsBaseline) {
  RateConverter rc;
  rc.update(0, 1000.0);
  EXPECT_FALSE(rc.update(10 * core::kSecond, 50.0).has_value());  // went back
  const auto r = rc.update(20 * core::kSecond, 150.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(*r, 10.0);
}

}  // namespace
}  // namespace hpcmon::analysis
