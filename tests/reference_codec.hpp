// Reference Gorilla codec: the original bit-at-a-time implementation, kept
// verbatim as a test oracle.
//
// The production codec (store/bitstream.hpp + store/cursor.hpp) was rewritten
// word-at-a-time for throughput with the hard requirement that the emitted
// bitstream — and the decode of arbitrary (even corrupt) streams — stay
// byte-identical / observation-identical. This header preserves the slow,
// obviously-correct original so store_codec_property_test can diff the two
// on seeded random workloads. Do not "optimize" this file; its value is that
// it never changes.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "core/series_buffer.hpp"  // TimedValue

namespace hpcmon::refcodec {

class RefBitWriter {
 public:
  void write(std::uint64_t value, int bits) {
    for (int i = bits - 1; i >= 0; --i) {
      const bool bit = (value >> i) & 1;
      const std::size_t byte_index = bit_count_ / 8;
      if (byte_index == bytes_.size()) bytes_.push_back(0);
      if (bit) {
        bytes_[byte_index] |=
            static_cast<std::uint8_t>(1u << (7 - bit_count_ % 8));
      }
      ++bit_count_;
    }
  }
  void write_bit(bool bit) { write(bit ? 1 : 0, 1); }
  std::size_t bit_count() const { return bit_count_; }
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t bit_count_ = 0;
};

class RefBitReader {
 public:
  explicit RefBitReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint64_t read(int bits) {
    std::uint64_t value = 0;
    for (int i = 0; i < bits; ++i) {
      const std::size_t byte_index = cursor_ / 8;
      if (byte_index >= bytes_.size()) {
        eof_ = true;
        return 0;
      }
      const bool bit = (bytes_[byte_index] >> (7 - cursor_ % 8)) & 1;
      value = (value << 1) | (bit ? 1 : 0);
      ++cursor_;
    }
    return value;
  }
  bool read_bit() { return read(1) != 0; }
  bool eof() const { return eof_; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t cursor_ = 0;
  bool eof_ = false;
};

inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

inline void write_dod(RefBitWriter& w, std::int64_t dod) {
  const std::uint64_t z = zigzag(dod);
  if (dod == 0) {
    w.write_bit(false);
  } else if (z < (1u << 14)) {
    w.write(0b10, 2);
    w.write(z, 14);
  } else if (z < (1u << 24)) {
    w.write(0b110, 3);
    w.write(z, 24);
  } else if (z < (1ull << 36)) {
    w.write(0b1110, 4);
    w.write(z, 36);
  } else {
    w.write(0b1111, 4);
    w.write(z, 64);
  }
}

inline std::int64_t read_dod(RefBitReader& r) {
  if (!r.read_bit()) return 0;
  if (!r.read_bit()) return unzigzag(r.read(14));
  if (!r.read_bit()) return unzigzag(r.read(24));
  if (!r.read_bit()) return unzigzag(r.read(36));
  return unzigzag(r.read(64));
}

inline std::uint64_t double_bits(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

inline double bits_double(std::uint64_t u) {
  double d;
  std::memcpy(&d, &u, sizeof(d));
  return d;
}

/// The original Chunk::compress bitstream (payload only; no framing header).
inline std::vector<std::uint8_t> ref_encode_payload(
    const std::vector<core::TimedValue>& points) {
  RefBitWriter w;
  if (points.empty()) return {};
  w.write(zigzag(points[0].time), 64);
  w.write(double_bits(points[0].value), 64);

  std::int64_t prev_time = points[0].time;
  std::int64_t prev_delta = 0;
  std::uint64_t prev_value = double_bits(points[0].value);
  int prev_leading = -1;
  int prev_trailing = 0;

  for (std::size_t i = 1; i < points.size(); ++i) {
    const std::int64_t delta = points[i].time - prev_time;
    write_dod(w, delta - prev_delta);
    prev_delta = delta;
    prev_time = points[i].time;

    const std::uint64_t bits = double_bits(points[i].value);
    const std::uint64_t x = bits ^ prev_value;
    prev_value = bits;
    if (x == 0) {
      w.write_bit(false);
      continue;
    }
    w.write_bit(true);
    int leading = 0;
    int trailing = 0;
    for (std::uint64_t probe = x; (probe & (1ull << 63)) == 0; probe <<= 1) {
      ++leading;
    }
    for (std::uint64_t probe = x; (probe & 1ull) == 0; probe >>= 1) {
      ++trailing;
    }
    if (leading > 31) leading = 31;
    if (prev_leading >= 0 && leading >= prev_leading &&
        trailing >= prev_trailing) {
      w.write_bit(false);
      const int meaningful = 64 - prev_leading - prev_trailing;
      w.write(x >> prev_trailing, meaningful);
    } else {
      w.write_bit(true);
      const int meaningful = 64 - leading - trailing;
      w.write(static_cast<std::uint64_t>(leading), 5);
      w.write(static_cast<std::uint64_t>(meaningful - 1), 6);
      w.write(x >> trailing, meaningful);
      prev_leading = leading;
      prev_trailing = trailing;
    }
  }
  return w.bytes();
}

/// The original ChunkCursor decode loop over a raw payload: decodes up to
/// `count` points, stopping early (discarding the partial point) on a
/// truncated or garbage stream — the contract the new reader must keep.
inline std::vector<core::TimedValue> ref_decode_payload(
    std::span<const std::uint8_t> payload, std::uint32_t count) {
  std::vector<core::TimedValue> out;
  if (count == 0) return out;
  RefBitReader r(payload);
  std::int64_t time = unzigzag(r.read(64));
  std::uint64_t value_bits = r.read(64);
  out.push_back({time, bits_double(value_bits)});
  std::int64_t prev_delta = 0;
  int prev_leading = 0;
  int prev_trailing = 0;
  for (std::uint32_t idx = 1; idx < count; ++idx) {
    prev_delta = static_cast<std::int64_t>(
        static_cast<std::uint64_t>(prev_delta) +
        static_cast<std::uint64_t>(read_dod(r)));
    time = static_cast<std::int64_t>(static_cast<std::uint64_t>(time) +
                                     static_cast<std::uint64_t>(prev_delta));
    if (r.read_bit()) {
      std::uint64_t x;
      if (r.read_bit()) {
        prev_leading = static_cast<int>(r.read(5));
        const int meaningful = static_cast<int>(r.read(6)) + 1;
        prev_trailing = 64 - prev_leading - meaningful;
        if (prev_trailing < 0) return out;  // garbage stream
        x = r.read(meaningful) << prev_trailing;
      } else {
        const int meaningful = 64 - prev_leading - prev_trailing;
        x = r.read(meaningful) << prev_trailing;
      }
      value_bits ^= x;
    }
    if (r.eof()) return out;  // truncated: stop at what decoded cleanly
    out.push_back({time, bits_double(value_bits)});
  }
  return out;
}

}  // namespace hpcmon::refcodec
