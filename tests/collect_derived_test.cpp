#include "collect/derived.hpp"

#include <gtest/gtest.h>

#include "collect/collection.hpp"
#include "collect/samplers.hpp"
#include "sim/cluster.hpp"

namespace hpcmon::collect {
namespace {

using core::ComponentId;
using core::SampleBatch;

struct DerivedFixture {
  core::MetricRegistry reg;
  std::vector<SampleBatch> out;
  DerivedStage stage{reg, [this](SampleBatch&& b) { out.push_back(b); }};
  ComponentId c0 = reg.register_component(
      {"n0", core::ComponentKind::kNode, core::kNoComponent});
  ComponentId c1 = reg.register_component(
      {"n1", core::ComponentKind::kNode, core::kNoComponent});
  ComponentId sys = reg.register_component(
      {"system", core::ComponentKind::kSystem, core::kNoComponent});

  SampleBatch batch(core::TimePoint t,
                    std::initializer_list<std::pair<core::SeriesId, double>>
                        samples) {
    SampleBatch b;
    b.sweep_time = t;
    for (const auto& [sid, v] : samples) b.samples.push_back({sid, t, v});
    return b;
  }
};

TEST(DerivedStageTest, CounterToRatePerComponent) {
  DerivedFixture f;
  f.stage.derive_rate("net.bytes");
  const auto m = *f.reg.find_metric("net.bytes");
  const auto s0 = f.reg.series(m, f.c0);
  const auto s1 = f.reg.series(m, f.c1);

  f.stage.process(f.batch(0, {{s0, 1000.0}, {s1, 0.0}}));
  EXPECT_TRUE(f.out.empty());  // first observation: no rate yet
  f.stage.process(f.batch(10 * core::kSecond, {{s0, 3000.0}, {s1, 500.0}}));
  ASSERT_EQ(f.out.size(), 1u);
  ASSERT_EQ(f.out[0].size(), 2u);
  // Derived series live on the same components, metric "net.bytes.rate".
  const auto rate_metric = f.reg.find_metric("net.bytes.rate");
  ASSERT_TRUE(rate_metric.has_value());
  EXPECT_DOUBLE_EQ(f.out[0].samples[0].value, 200.0);  // 2000 B / 10 s
  EXPECT_DOUBLE_EQ(f.out[0].samples[1].value, 50.0);
  EXPECT_EQ(f.reg.series_component(f.out[0].samples[0].series), f.c0);
}

TEST(DerivedStageTest, RateHandlesCounterReset) {
  DerivedFixture f;
  f.stage.derive_rate("c");
  const auto sid = f.reg.series(*f.reg.find_metric("c"), f.c0);
  f.stage.process(f.batch(0, {{sid, 100.0}}));
  f.stage.process(f.batch(core::kSecond, {{sid, 10.0}}));  // reset (replaced)
  EXPECT_TRUE(f.out.empty());  // no bogus negative rate
  f.stage.process(f.batch(2 * core::kSecond, {{sid, 20.0}}));
  ASSERT_EQ(f.out.size(), 1u);
  EXPECT_DOUBLE_EQ(f.out[0].samples[0].value, 10.0);
}

TEST(DerivedStageTest, PerSweepAggregate) {
  DerivedFixture f;
  f.stage.derive_aggregate("cpu", store::Agg::kMean, "cpu.system_mean", f.sys);
  const auto m = *f.reg.find_metric("cpu");
  f.stage.process(f.batch(core::kMinute, {{f.reg.series(m, f.c0), 0.2},
                                          {f.reg.series(m, f.c1), 0.6}}));
  ASSERT_EQ(f.out.size(), 1u);
  ASSERT_EQ(f.out[0].size(), 1u);
  EXPECT_DOUBLE_EQ(f.out[0].samples[0].value, 0.4);
  EXPECT_EQ(f.reg.series_component(f.out[0].samples[0].series), f.sys);
  EXPECT_EQ(f.out[0].samples[0].time, core::kMinute);
}

TEST(DerivedStageTest, UnrelatedMetricsIgnored) {
  DerivedFixture f;
  f.stage.derive_rate("a");
  const auto other = f.reg.series("b", f.c0);
  f.stage.process(f.batch(0, {{other, 5.0}}));
  f.stage.process(f.batch(core::kSecond, {{other, 9.0}}));
  EXPECT_TRUE(f.out.empty());
  EXPECT_EQ(f.stage.derived_samples(), 0u);
}

TEST(DerivedStageTest, EndToEndThroughRouterAndStore) {
  // Full path: sampler -> router -> derived stage -> store, on a live
  // cluster. Derived stall rates + system mean injection land in the same
  // store as the raw series.
  sim::ClusterParams params;
  params.shape.cabinets = 1;
  params.shape.chassis_per_cabinet = 2;
  params.shape.blades_per_chassis = 4;
  params.shape.nodes_per_blade = 4;
  params.seed = 9;
  sim::Cluster cluster(params);
  transport::EventRouter router;
  store::TimeSeriesStore tsdb;
  router.subscribe(transport::FrameType::kSamples,
                   [&](const transport::Frame& fr) {
                     if (auto b = transport::decode_samples(fr)) {
                       tsdb.append_batch(b.value().samples);
                     }
                   });
  DerivedStage stage(cluster.registry(), store_sink(tsdb));
  stage.derive_rate("hsn.link.traffic_bytes");
  stage.derive_aggregate("hsn.node.injection_util", store::Agg::kMean,
                         "hsn.injection_util.system_mean",
                         cluster.topology().system());
  stage.attach(router);

  CollectionService collection(cluster);
  collection.add_sampler(std::make_unique<HsnSampler>(cluster),
                         30 * core::kSecond, router_sample_sink(router));
  sim::JobRequest req;
  req.num_nodes = 16;
  req.nominal_runtime = 10 * core::kMinute;
  req.profile = sim::app_network_heavy();
  cluster.submit_at(0, req);
  cluster.run_for(5 * core::kMinute);

  // Derived series present and sane.
  const auto mean_sid = cluster.registry().series(
      "hsn.injection_util.system_mean", cluster.topology().system());
  const auto means = tsdb.query_range(mean_sid, {0, cluster.now()});
  ASSERT_GE(means.size(), 8u);
  bool nonzero = false;
  for (const auto& p : means) {
    EXPECT_GE(p.value, 0.0);
    EXPECT_LE(p.value, 1.0);
    if (p.value > 0.0) nonzero = true;
  }
  EXPECT_TRUE(nonzero);
  // A rate series exists for some link carrying the ring traffic.
  const auto rate_metric =
      cluster.registry().find_metric("hsn.link.traffic_bytes.rate");
  ASSERT_TRUE(rate_metric.has_value());
  EXPECT_GT(stage.derived_samples(), 100u);
}

}  // namespace
}  // namespace hpcmon::collect
