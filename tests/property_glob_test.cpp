// Property test: the iterative glob matcher agrees with a straightforward
// recursive reference implementation over randomized patterns and texts.
#include <gtest/gtest.h>

#include <string>

#include "core/rng.hpp"
#include "core/strings.hpp"

namespace hpcmon::core {
namespace {

// Obviously-correct exponential reference matcher.
bool ref_match(std::string_view pattern, std::string_view text) {
  if (pattern.empty()) return text.empty();
  if (pattern[0] == '*') {
    for (std::size_t i = 0; i <= text.size(); ++i) {
      if (ref_match(pattern.substr(1), text.substr(i))) return true;
    }
    return false;
  }
  if (text.empty()) return false;
  if (pattern[0] == '?' || pattern[0] == text[0]) {
    return ref_match(pattern.substr(1), text.substr(1));
  }
  return false;
}

struct GlobCase {
  const char* name;
  const char* alphabet;       // characters texts are drawn from
  double star_prob;           // probability a pattern char is '*'
  double question_prob;       // probability a pattern char is '?'
  int max_len;
};

class GlobPropertyTest : public ::testing::TestWithParam<GlobCase> {};

TEST_P(GlobPropertyTest, AgreesWithReference) {
  const auto& param = GetParam();
  Rng rng(std::hash<std::string>{}(param.name));
  const std::string_view alphabet = param.alphabet;
  int matches = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    std::string pattern;
    std::string text;
    const auto plen = rng.uniform_int(0, param.max_len);
    for (int i = 0; i < plen; ++i) {
      const double r = rng.uniform();
      if (r < param.star_prob) {
        pattern += '*';
      } else if (r < param.star_prob + param.question_prob) {
        pattern += '?';
      } else {
        pattern += alphabet[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(alphabet.size()) - 1))];
      }
    }
    const auto tlen = rng.uniform_int(0, param.max_len);
    for (int i = 0; i < tlen; ++i) {
      text += alphabet[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(alphabet.size()) - 1))];
    }
    const bool expected = ref_match(pattern, text);
    if (expected) ++matches;
    ASSERT_EQ(glob_match(pattern, text), expected)
        << "pattern='" << pattern << "' text='" << text << "'";
  }
  // The distribution should exercise both outcomes.
  EXPECT_GT(matches, 10);
}

INSTANTIATE_TEST_SUITE_P(
    Alphabets, GlobPropertyTest,
    ::testing::Values(
        GlobCase{"binary_star_heavy", "ab", 0.3, 0.1, 10},
        GlobCase{"binary_question", "ab", 0.1, 0.3, 10},
        GlobCase{"ternary_mixed", "abc", 0.2, 0.2, 12},
        GlobCase{"logline_like", "erona l", 0.15, 0.05, 16}),
    [](const ::testing::TestParamInfo<GlobCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace hpcmon::core
