// MonitoringStack + serving tier: the network front door is off by default,
// turns on behind serve_port, answers from the live store, pushes deltas from
// real collection sweeps, and exposes the admin surface end-to-end.
#include <gtest/gtest.h>

#include <cstdio>

#include "serve/client.hpp"
#include "stack/stack.hpp"

namespace hpcmon::stack {
namespace {

sim::ClusterParams cluster_params() {
  sim::ClusterParams p;
  p.shape.cabinets = 1;
  p.shape.chassis_per_cabinet = 1;
  p.shape.blades_per_chassis = 2;
  p.shape.nodes_per_blade = 4;
  p.tick = 5 * core::kSecond;
  p.seed = 77;
  return p;
}

core::Config parse(const char* text) {
  auto r = core::Config::parse(text);
  EXPECT_TRUE(r.is_ok());
  return r.value();
}

TEST(StackServe, OffByDefault) {
  sim::Cluster cluster(cluster_params());
  MonitoringStack stack(cluster, core::Config{});
  EXPECT_EQ(stack.serve(), nullptr);
}

TEST(StackServe, ServesLiveStoreOverTheWire) {
  sim::Cluster cluster(cluster_params());
  MonitoringStack stack(cluster, parse("serve_port = 0\n"));
  ASSERT_NE(stack.serve(), nullptr);
  ASSERT_TRUE(stack.serve()->running()) << stack.serve()->error();
  cluster.run_for(10 * core::kMinute);

  serve::ServeClient client;
  ASSERT_TRUE(client.connect(stack.serve()->port()));
  const auto series = cluster.registry().series("node.cpu_util",
                                                cluster.topology().node(0));
  const core::TimeRange range{0, core::kDay};
  auto remote = client.query_range(series, range);
  ASSERT_TRUE(remote.is_ok()) << remote.message();
  // Byte-identical to the in-process read of the same store.
  EXPECT_EQ(remote.value(), stack.tsdb().hot().query_range(series, range));
  EXPECT_FALSE(remote.value().empty());

  // Admin: status over the wire equals the in-process status line shape.
  auto st = client.status();
  ASSERT_TRUE(st.is_ok());
  EXPECT_NE(st.value().find("series="), std::string::npos);
  // No WAL configured: rotate reports failure instead of pretending.
  EXPECT_FALSE(client.wal_rotate());

  // Subscription fed by real collection sweeps.
  auto ack = client.subscribe("node.cpu_util@*");
  ASSERT_TRUE(ack.is_ok());
  EXPECT_GE(ack.value().matched.size(), 8u);  // every node
  auto snap = client.poll_push(2000);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->type, serve::MsgType::kSnapshot);
  cluster.run_for(5 * core::kMinute);
  bool saw_delta = false;
  while (auto push = client.poll_push(500)) {
    if (push->type == serve::MsgType::kDelta && !push->batch.samples.empty()) {
      saw_delta = true;
      break;
    }
  }
  EXPECT_TRUE(saw_delta);

  // serve.* instruments ride the stack's shared obs plane.
  const auto obs = stack.obs_snapshot();
  EXPECT_GT(obs.counter("serve.requests"), 0u);
  EXPECT_GT(obs.counter("serve.deltas"), 0u);
}

TEST(StackServe, AdminModeOverrideAndWalRotate) {
  sim::Cluster cluster(cluster_params());
  const std::string wal_dir = ::testing::TempDir() + "stack_serve_wal";
  MonitoringStack stack(cluster, parse(("serve_port = 0\n"
                                        "ingest_shards = 2\n"
                                        "degradation = 1\n"
                                        "wal_path = " +
                                        wal_dir + "\n")
                                           .c_str()));
  ASSERT_NE(stack.serve(), nullptr);
  cluster.run_for(5 * core::kMinute);
  stack.drain_ingest();

  serve::ServeClient client;
  ASSERT_TRUE(client.connect(stack.serve()->port()));
  // Degradation override lands on the ingest door...
  ASSERT_TRUE(client.set_mode(core::DegradationMode::kShedBulk));
  EXPECT_EQ(stack.ingest_pipeline()->mode(), core::DegradationMode::kShedBulk);
  // ...and nullopt releases back to NORMAL.
  ASSERT_TRUE(client.set_mode(std::nullopt));
  EXPECT_EQ(stack.ingest_pipeline()->mode(), core::DegradationMode::kNormal);
  // WAL rotate works when a WAL exists.
  EXPECT_TRUE(client.wal_rotate());
  // Shutdown stops the server before tearing down the stores.
  stack.shutdown();
  EXPECT_FALSE(stack.serve()->running());
}

}  // namespace
}  // namespace hpcmon::stack
