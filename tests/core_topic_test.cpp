// core::topic_match edge cases: the one matcher shared by the in-process Bus
// and the serve tier's live subscriptions. '#' at the start, middle, and end;
// empty segments; literal-only patterns.
#include "core/topic.hpp"

#include <gtest/gtest.h>

#include "transport/bus.hpp"

namespace hpcmon {
namespace {

using core::topic_match;

TEST(TopicMatch, LiteralOnlyPatterns) {
  EXPECT_TRUE(topic_match("node.power_w", "node.power_w"));
  EXPECT_FALSE(topic_match("node.power_w", "node.power"));
  EXPECT_FALSE(topic_match("node.power_w", "node.power_w.cab0"));
  EXPECT_FALSE(topic_match("node.power_w.cab0", "node.power_w"));
  EXPECT_TRUE(topic_match("", ""));
  EXPECT_FALSE(topic_match("", "a"));
  EXPECT_FALSE(topic_match("a", ""));
}

TEST(TopicMatch, HashAtEnd) {
  EXPECT_TRUE(topic_match("node.#", "node"));  // '#' matches ZERO segments
  EXPECT_TRUE(topic_match("node.#", "node.power_w"));
  EXPECT_TRUE(topic_match("node.#", "node.power_w.cab0.chassis1"));
  EXPECT_FALSE(topic_match("node.#", "link.power_w"));
  EXPECT_TRUE(topic_match("#", ""));
  EXPECT_TRUE(topic_match("#", "anything.at.all"));
}

TEST(TopicMatch, HashAtStart) {
  EXPECT_TRUE(topic_match("#.power_w", "power_w"));
  EXPECT_TRUE(topic_match("#.power_w", "node.power_w"));
  EXPECT_TRUE(topic_match("#.power_w", "cab0.node.power_w"));
  EXPECT_FALSE(topic_match("#.power_w", "node.power_w.extra"));
}

TEST(TopicMatch, HashInMiddle) {
  EXPECT_TRUE(topic_match("node.#.stalls", "node.stalls"));
  EXPECT_TRUE(topic_match("node.#.stalls", "node.hsn.stalls"));
  EXPECT_TRUE(topic_match("node.#.stalls", "node.hsn.link.0.stalls"));
  EXPECT_FALSE(topic_match("node.#.stalls", "node.hsn.errors"));
  // Two hashes: still fine (backtracking).
  EXPECT_TRUE(topic_match("#.hsn.#", "a.b.hsn.c.d"));
  EXPECT_TRUE(topic_match("#.hsn.#", "hsn"));
  EXPECT_FALSE(topic_match("#.hsn.#", "a.b.c"));
}

TEST(TopicMatch, StarAndQuestionStayWithinSegments) {
  EXPECT_TRUE(topic_match("node.*", "node.power_w"));
  EXPECT_FALSE(topic_match("node.*", "node.power_w.cab0"));  // '*' != '#'
  EXPECT_TRUE(topic_match("*.power_w", "node.power_w"));
  EXPECT_TRUE(topic_match("node.p?wer_w", "node.power_w"));
  EXPECT_FALSE(topic_match("node.p?wer_w", "node.pwer_w"));
  EXPECT_TRUE(topic_match("node.pow*", "node.power_w"));
}

TEST(TopicMatch, EmptySegments) {
  // "a..b" has an empty middle segment; it is an ordinary segment.
  EXPECT_TRUE(topic_match("a..b", "a..b"));
  EXPECT_FALSE(topic_match("a..b", "a.b"));
  EXPECT_FALSE(topic_match("a.b", "a..b"));
  EXPECT_TRUE(topic_match("a.*.b", "a..b"));   // '*' matches the empty run
  EXPECT_FALSE(topic_match("a.?.b", "a..b"));  // '?' needs one char
  EXPECT_TRUE(topic_match("a.#.b", "a..b"));   // '#' absorbs it
  // Leading/trailing dots create empty first/last segments.
  EXPECT_TRUE(topic_match(".a", ".a"));
  EXPECT_FALSE(topic_match(".a", "a"));
  EXPECT_TRUE(topic_match("a.", "a."));
  EXPECT_FALSE(topic_match("a", "a."));
}

TEST(TopicMatch, SerchSeriesNameShapes) {
  // Serve subscriptions match "metric@component" series names; '@' is an
  // ordinary character to the matcher.
  EXPECT_TRUE(topic_match("node.power_w@*", "node.power_w@node-3"));
  EXPECT_TRUE(topic_match("node.#", "node.power_w@node-3"));
  EXPECT_FALSE(topic_match("node.power_w@node-4", "node.power_w@node-3"));
}

TEST(TopicMatch, BusDelegatesToCore) {
  // transport::topic_match must be a thin alias — identical verdicts.
  const char* patterns[] = {"#", "a.#.b", "*.x", "a..b", "node.*", ""};
  const char* topics[] = {"", "a.b", "a.q.b", "a..b", "node.x", "node.x.y"};
  for (const char* p : patterns) {
    for (const char* t : topics) {
      EXPECT_EQ(transport::topic_match(p, t), core::topic_match(p, t))
          << "pattern=" << p << " topic=" << t;
    }
  }
}

}  // namespace
}  // namespace hpcmon
