// Satellite robustness tests for half-open connections: the server-side
// idle deadline (off by default) reaps silent peers and counts them in
// serve.idle_closed; the client-side read deadline turns a mute server from
// a forever-hang into a bounded "timeout" error on an open connection.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <thread>

#include "serve/client.hpp"
#include "serve/server.hpp"
#include "store/tsdb.hpp"

namespace hpcmon::serve {
namespace {

std::unique_ptr<ServeServer> make_server(store::TimeSeriesStore& store,
                                         ServeConfig config) {
  ServeHooks hooks;
  bind_query_hooks(hooks, store);
  auto server = std::make_unique<ServeServer>(config, std::move(hooks));
  EXPECT_TRUE(server->start()) << server->error();
  return server;
}

TEST(ServeIdleDeadlineTest, IdleConnectionsAreReapedAndCounted) {
  store::TimeSeriesStore store;
  ServeConfig config;
  config.idle_timeout_ms = 80;
  auto server = make_server(store, config);

  ServeClient active;
  ServeClient silent;
  ASSERT_TRUE(active.connect(server->port()));
  ASSERT_TRUE(silent.connect(server->port()));
  ASSERT_TRUE(active.ping());
  EXPECT_EQ(server->stats().connections, 2u);

  // Keep one connection chatty past several idle windows; the silent one
  // must be reaped, the active one must not.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(400);
  while (std::chrono::steady_clock::now() < deadline) {
    EXPECT_TRUE(active.ping());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(server->stats().idle_closed, 1u);
  EXPECT_EQ(server->stats().connections, 1u);
  EXPECT_TRUE(active.ping());
  // The reaped peer finds out the usual TCP way: its next call fails.
  silent.set_read_deadline_ms(500);
  EXPECT_FALSE(silent.ping());
}

TEST(ServeIdleDeadlineTest, IdleReapingIsOffByDefault) {
  store::TimeSeriesStore store;
  auto server = make_server(store, ServeConfig{});
  ServeClient client;
  ASSERT_TRUE(client.connect(server->port()));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_EQ(server->stats().idle_closed, 0u);
  EXPECT_TRUE(client.ping());
}

TEST(ServeIdleDeadlineTest, ClientReadDeadlineBoundsAMuteServer) {
  // A listener that accepts and then never says a word — the half-open
  // shape that used to park read_frame(-1) forever.
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listen_fd, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  std::thread acceptor([listen_fd] {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    std::this_thread::sleep_for(std::chrono::milliseconds(600));
    if (fd >= 0) ::close(fd);
  });

  ServeClient client;
  ASSERT_TRUE(client.connect(ntohs(addr.sin_port)));
  client.set_read_deadline_ms(50);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(client.ping());
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  EXPECT_GE(waited, 45);
  EXPECT_LT(waited, 500) << "deadline did not bound the wait";
  EXPECT_EQ(client.error(), "timeout");
  // The connection is deliberately left open: a timeout means "slow or
  // gone, unknown which" and the caller chooses whether to re-probe.
  EXPECT_TRUE(client.connected());

  acceptor.join();
  ::close(listen_fd);
}

}  // namespace
}  // namespace hpcmon::serve
