// Aggregation queries, drill-down, charts, CSV export, dashboard.
#include <gtest/gtest.h>

#include "viz/dashboard.hpp"
#include "viz/drilldown.hpp"
#include "viz/query.hpp"

namespace hpcmon::viz {
namespace {

using core::ComponentId;
using core::ComponentKind;
using core::TimedValue;

struct VizFixture {
  core::MetricRegistry reg;
  store::TimeSeriesStore store;
  std::vector<ComponentId> nodes;

  VizFixture() {
    for (int i = 0; i < 4; ++i) {
      nodes.push_back(reg.register_component(
          {"n" + std::to_string(i), ComponentKind::kNode, core::kNoComponent}));
    }
    // Synchronized sweeps at minutes 0..9: node i reads i*10 MB/s, except a
    // spike on node 2 at minute 5.
    for (int m = 0; m < 10; ++m) {
      for (int i = 0; i < 4; ++i) {
        double v = i * 10.0;
        if (i == 2 && m == 5) v = 500.0;
        store.append(reg.series("node.read_mbps", nodes[i]),
                     m * core::kMinute, v);
      }
    }
  }
};

TEST(QueryTest, AggregateAcrossComputesPerTimestamp) {
  VizFixture f;
  const auto sum = aggregate_across(f.store, f.reg, "node.read_mbps", f.nodes,
                                    {0, 10 * core::kMinute}, store::Agg::kSum);
  ASSERT_EQ(sum.size(), 10u);
  EXPECT_DOUBLE_EQ(sum[0].value, 60.0);   // 0+10+20+30
  EXPECT_DOUBLE_EQ(sum[5].value, 540.0);  // spike minute
  const auto mean = aggregate_across(f.store, f.reg, "node.read_mbps", f.nodes,
                                     {0, 10 * core::kMinute}, store::Agg::kMean);
  EXPECT_DOUBLE_EQ(mean[0].value, 15.0);
}

TEST(QueryTest, FractionInState) {
  VizFixture f;
  const auto frac = fraction_in_state(
      f.store, f.reg, "node.read_mbps", f.nodes, {0, 10 * core::kMinute},
      [](double v) { return v > 15.0; });
  ASSERT_EQ(frac.size(), 10u);
  EXPECT_DOUBLE_EQ(frac[0].value, 0.5);   // nodes 2, 3
  EXPECT_DOUBLE_EQ(frac[5].value, 0.5);
}

TEST(QueryTest, BreakdownAtSortsDescending) {
  VizFixture f;
  const auto rows = breakdown_at(f.store, f.reg, "node.read_mbps", f.nodes,
                                 5 * core::kMinute, core::kMinute);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].name, "n2");  // the spike
  EXPECT_DOUBLE_EQ(rows[0].value, 500.0);
  EXPECT_EQ(rows[1].name, "n3");
}

TEST(DrillDownTest, AttributesSpikeToJob) {
  VizFixture f;
  store::JobStore jobs;
  store::JobMeta job;
  job.id = core::JobId{42};
  job.app_name = "io_blaster";
  job.nodes = {2, 3};
  job.start_time = 4 * core::kMinute;
  job.end_time = 7 * core::kMinute;
  jobs.record_end(job);

  DrillDown drill(f.store, f.reg, jobs);
  const auto result = drill.investigate(
      "node.read_mbps", f.nodes, 5 * core::kMinute, core::kMinute,
      [&f](ComponentId c) {
        for (std::size_t i = 0; i < f.nodes.size(); ++i) {
          if (f.nodes[i] == c) return static_cast<int>(i);
        }
        return -1;
      });
  ASSERT_TRUE(result.responsible_job.has_value());
  EXPECT_EQ(core::raw(result.responsible_job->id), 42u);
  EXPECT_EQ(result.responsible_job->app_name, "io_blaster");
  // Job share: nodes 2+3 contributed 530 of 540.
  EXPECT_NEAR(result.job_share, 530.0 / 540.0, 1e-9);
}

TEST(DrillDownTest, NoJobWhenNothingRuns) {
  VizFixture f;
  store::JobStore jobs;
  DrillDown drill(f.store, f.reg, jobs);
  const auto result = drill.investigate("node.read_mbps", f.nodes,
                                        5 * core::kMinute, core::kMinute,
                                        [](ComponentId) { return 0; });
  EXPECT_FALSE(result.responsible_job.has_value());
  EXPECT_GT(result.aggregate_value, 0.0);
}

ChartSeries wave(const std::string& label, double amp) {
  ChartSeries s;
  s.label = label;
  for (int i = 0; i < 50; ++i) {
    s.points.push_back({i * core::kMinute, amp * (i % 10)});
  }
  return s;
}

TEST(ChartTest, AsciiRenderContainsStructure) {
  ChartOptions opt;
  opt.title = "Test Chart";
  const auto out = render_ascii({wave("a", 1.0), wave("b", 2.0)}, opt);
  EXPECT_NE(out.find("Test Chart"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);  // series glyphs
  EXPECT_NE(out.find('+'), std::string::npos);
  EXPECT_NE(out.find("a"), std::string::npos);  // legend
  EXPECT_NE(out.find("0+00:00:00.000"), std::string::npos);  // time footer
}

TEST(ChartTest, EmptySeriesHandled) {
  const auto out = render_ascii({}, {});
  EXPECT_NE(out.find("(no data)"), std::string::npos);
  const auto svg = render_svg({}, {});
  EXPECT_NE(svg.find("<svg"), std::string::npos);
}

TEST(ChartTest, SvgHasPolylinePerSeries) {
  const auto svg = render_svg({wave("x", 1.0), wave("y", 3.0)}, {});
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = svg.find("<polyline", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 2u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(ExportTest, CsvAlignsSeriesByTime) {
  ChartSeries a;
  a.label = "cpu";
  a.points = {{0, 1.0}, {core::kMinute, 2.0}};
  ChartSeries b;
  b.label = "mem";
  b.points = {{core::kMinute, 5.0}, {2 * core::kMinute, 6.0}};
  const auto csv = export_csv({a, b});
  EXPECT_EQ(csv,
            "time_s,cpu,mem\n"
            "0,1,\n"
            "60,2,5\n"
            "120,,6\n");
}

TEST(DashboardTest, PanelsRenderLiveData) {
  VizFixture f;
  Dashboard dash("system overview");
  int query_runs = 0;
  dash.add_panel("reads", [&]() {
    ++query_runs;
    ChartSeries s;
    s.label = "sum";
    s.points = aggregate_across(f.store, f.reg, "node.read_mbps", f.nodes,
                                {0, core::kDay}, store::Agg::kSum);
    return std::vector<ChartSeries>{s};
  });
  EXPECT_EQ(dash.panel_count(), 1u);
  const auto text = dash.render();
  EXPECT_NE(text.find("system overview"), std::string::npos);
  EXPECT_NE(text.find("reads"), std::string::npos);
  EXPECT_EQ(query_runs, 1);
  dash.render();  // live: re-queries each time
  EXPECT_EQ(query_runs, 2);
  EXPECT_NE(dash.panel_csv(0).find("time_s,sum"), std::string::npos);
  EXPECT_NE(dash.render_panel_svg(0).find("<svg"), std::string::npos);
  EXPECT_NE(dash.describe().find("panel \"reads\""), std::string::npos);
}

}  // namespace
}  // namespace hpcmon::viz
