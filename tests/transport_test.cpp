// Codec (binary round-trip, lossy text path), EventRouter, Bus, Channel.
#include <gtest/gtest.h>

#include <thread>

#include "core/registry.hpp"
#include "transport/bus.hpp"
#include "transport/channel.hpp"
#include "transport/codec.hpp"
#include "transport/event_router.hpp"

namespace hpcmon::transport {
namespace {

using core::ComponentId;
using core::JobId;
using core::LogEvent;
using core::SampleBatch;
using core::SeriesId;

SampleBatch make_batch() {
  SampleBatch b;
  b.sweep_time = 42 * core::kSecond;
  b.origin = ComponentId{3};
  for (int i = 0; i < 20; ++i) {
    b.samples.push_back({SeriesId{static_cast<std::uint32_t>(i)},
                         b.sweep_time + i, i * 1.5});
  }
  return b;
}

std::vector<LogEvent> make_logs() {
  std::vector<LogEvent> events;
  for (int i = 0; i < 5; ++i) {
    LogEvent e;
    e.time = i * core::kSecond;
    e.local_time = e.time + 123;  // drifted local stamp
    e.component = ComponentId{static_cast<std::uint32_t>(i)};
    e.facility = core::LogFacility::kHardware;
    e.severity = core::Severity::kError;
    e.job = JobId{static_cast<std::uint64_t>(100 + i)};
    e.message = "GPU double bit error count " + std::to_string(i);
    events.push_back(e);
  }
  return events;
}

TEST(CodecTest, SamplesRoundTripLosslessly) {
  const auto batch = make_batch();
  const auto frame = encode_samples(batch);
  EXPECT_EQ(frame.type, FrameType::kSamples);
  const auto decoded = decode_samples(frame);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().sweep_time, batch.sweep_time);
  EXPECT_EQ(decoded.value().origin, batch.origin);
  EXPECT_EQ(decoded.value().samples, batch.samples);
}

TEST(CodecTest, LogsRoundTripLosslessly) {
  const auto events = make_logs();
  const auto frame = encode_logs(events);
  const auto decoded = decode_logs(frame);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), events);  // every field, including job + local time
}

TEST(CodecTest, DecodeRejectsWrongTypeAndTruncation) {
  const auto frame = encode_samples(make_batch());
  EXPECT_FALSE(decode_logs(frame).is_ok());
  Frame truncated = frame;
  truncated.payload.resize(truncated.payload.size() / 2);
  EXPECT_FALSE(decode_samples(truncated).is_ok());
  Frame empty;
  empty.type = FrameType::kSamples;
  EXPECT_FALSE(decode_samples(empty).is_ok());
}

TEST(CodecTest, TextPathIsLossyExactlyAsThePaperWarns) {
  core::MetricRegistry reg;
  const auto comp = reg.register_component(
      {"c0-0c0s0n0", core::ComponentKind::kNode, core::kNoComponent});
  auto events = make_logs();
  events[0].component = comp;
  const auto line = format_text(events[0], reg);
  const auto parsed = parse_text(line, reg);
  ASSERT_TRUE(parsed.has_value());
  // Preserved: time, component, facility, severity, message.
  EXPECT_EQ(parsed->time, events[0].time);
  EXPECT_EQ(parsed->component, events[0].component);
  EXPECT_EQ(parsed->facility, events[0].facility);
  EXPECT_EQ(parsed->severity, events[0].severity);
  EXPECT_EQ(parsed->message, events[0].message);
  // Lost in translation (Sec. IV-A): job attribution and local clock stamp.
  EXPECT_EQ(parsed->job, core::kNoJob);
  EXPECT_NE(parsed->job, events[0].job);
  EXPECT_EQ(parsed->local_time, parsed->time);
  EXPECT_NE(parsed->local_time, events[0].local_time);
}

TEST(CodecTest, ParseTextRejectsGarbage) {
  core::MetricRegistry reg;
  EXPECT_FALSE(parse_text("not a log line", reg).has_value());
  EXPECT_FALSE(parse_text("", reg).has_value());
}

TEST(RouterTest, TypeDispatchAndRawTap) {
  EventRouter router;
  int samples = 0;
  int logs = 0;
  int raw = 0;
  router.subscribe(FrameType::kSamples, [&](const Frame&) { ++samples; });
  router.subscribe(FrameType::kLogs, [&](const Frame&) { ++logs; });
  router.subscribe_raw([&](const Frame&) { ++raw; });
  router.publish(encode_samples(make_batch()));
  router.publish(encode_logs(make_logs()));
  EXPECT_EQ(samples, 1);
  EXPECT_EQ(logs, 1);
  EXPECT_EQ(raw, 2);
  EXPECT_EQ(router.stats().frames, 2u);
  EXPECT_GT(router.stats().bytes, 0u);
  EXPECT_EQ(router.stats().dropped, 0u);
}

TEST(RouterTest, ForwardingTree) {
  EventRouter leaf;
  EventRouter mid;
  EventRouter root;
  leaf.forward_to(mid);
  mid.forward_to(root);
  int received = 0;
  root.subscribe(FrameType::kSamples, [&](const Frame&) { ++received; });
  leaf.publish(encode_samples(make_batch()));
  EXPECT_EQ(received, 1);
  EXPECT_EQ(root.stats().frames, 1u);
}

TEST(RouterTest, DroppedCountsUndeliveredFrames) {
  EventRouter router;
  router.publish(encode_samples(make_batch()));
  EXPECT_EQ(router.stats().dropped, 1u);
}

TEST(RouterTest, ThrowingSubscriberDoesNotHaltFanOut) {
  EventRouter router;
  int before = 0;
  int after = 0;
  int raw = 0;
  router.subscribe(FrameType::kSamples, [&](const Frame&) { ++before; });
  router.subscribe(FrameType::kSamples, [&](const Frame&) -> void {
    throw std::runtime_error("bad consumer");
  });
  router.subscribe(FrameType::kSamples, [&](const Frame&) { ++after; });
  router.subscribe_raw([&](const Frame&) { ++raw; });
  router.publish(encode_samples(make_batch()));
  router.publish(encode_samples(make_batch()));
  // Subscribers past the throwing one still received every frame.
  EXPECT_EQ(before, 2);
  EXPECT_EQ(after, 2);
  EXPECT_EQ(raw, 2);
  EXPECT_EQ(router.stats().subscriber_failures, 2u);
  EXPECT_EQ(router.stats().dropped, 0u);
}

TEST(RouterTest, ThrowingRawTapIsContained) {
  EventRouter router;
  int delivered = 0;
  router.subscribe_raw(
      [](const Frame&) -> void { throw std::runtime_error("tap died"); });
  router.subscribe(FrameType::kSamples, [&](const Frame&) { ++delivered; });
  router.publish(encode_samples(make_batch()));
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(router.stats().subscriber_failures, 1u);
}

TEST(BusTest, TopicGlobRouting) {
  Bus bus;
  int node_batches = 0;
  int all = 0;
  int logs = 0;
  bus.subscribe("samples.node.*", [&](const std::string&, const Payload&) {
    ++node_batches;
  });
  bus.subscribe("#", [&](const std::string&, const Payload&) { ++all; });
  bus.subscribe("logs.*", [&](const std::string&, const Payload& p) {
    ++logs;
    EXPECT_TRUE(std::holds_alternative<std::vector<LogEvent>>(p));
  });
  bus.publish("samples.node.c0-0", make_batch());
  bus.publish("samples.power.system", make_batch());
  bus.publish("logs.hardware", make_logs());
  EXPECT_EQ(node_batches, 1);
  EXPECT_EQ(all, 3);
  EXPECT_EQ(logs, 1);
  EXPECT_EQ(bus.stats().published, 3u);
  EXPECT_EQ(bus.stats().deliveries, 5u);
  EXPECT_EQ(bus.stats().unrouted, 0u);
}

TEST(BusTest, StarMatchesExactlyOneSegment) {
  // AMQP semantics: `*` never crosses a `.` boundary.
  EXPECT_TRUE(topic_match("samples.*.power", "samples.node.power"));
  EXPECT_FALSE(topic_match("samples.*.power", "samples.node.c0-0.power"));
  EXPECT_FALSE(topic_match("samples.*", "samples.node.c0-0"));
  EXPECT_FALSE(topic_match("*", "samples.node"));
  EXPECT_TRUE(topic_match("*", "samples"));
  // Glob characters still work WITHIN a segment.
  EXPECT_TRUE(topic_match("samples.node.c0-*", "samples.node.c0-0c1s3n2"));
  EXPECT_FALSE(topic_match("samples.node.c0-*", "samples.node.c1-0"));
  EXPECT_TRUE(topic_match("logs.hw?", "logs.hw1"));
}

TEST(BusTest, HashMatchesZeroOrMoreSegments) {
  EXPECT_TRUE(topic_match("#", "samples.node.c0-0"));
  EXPECT_TRUE(topic_match("#", "samples"));
  EXPECT_TRUE(topic_match("logs.#", "logs.hardware.gpu"));
  EXPECT_TRUE(topic_match("logs.#", "logs"));  // zero segments
  EXPECT_FALSE(topic_match("logs.#", "samples.node"));
  EXPECT_TRUE(topic_match("samples.#.power", "samples.power"));
  EXPECT_TRUE(topic_match("samples.#.power", "samples.node.c0-0.power"));
  EXPECT_FALSE(topic_match("samples.#.power", "samples.node.temp"));
  // `#` composes with `*`: any depth, then one node segment.
  EXPECT_TRUE(topic_match("#.c0-*", "samples.node.c0-0"));
  EXPECT_FALSE(topic_match("#.c0-*", "samples.node"));
}

TEST(BusTest, HashSubscriptionRoutesAcrossDepths) {
  Bus bus;
  int n = 0;
  bus.subscribe("samples.#", [&](const std::string&, const Payload&) { ++n; });
  bus.publish("samples", make_batch());
  bus.publish("samples.node", make_batch());
  bus.publish("samples.node.c0-0.power", make_batch());
  bus.publish("logs.hardware", make_logs());
  EXPECT_EQ(n, 3);
  EXPECT_EQ(bus.stats().unrouted, 1u);
}

TEST(BusTest, UnroutedCounted) {
  Bus bus;
  bus.subscribe("only.this", [](const std::string&, const Payload&) {});
  bus.publish("something.else", std::string("payload"));
  EXPECT_EQ(bus.stats().unrouted, 1u);
}

TEST(ChannelTest, FifoAndClose) {
  Channel<int> ch(4);
  EXPECT_TRUE(ch.try_push(1));
  EXPECT_TRUE(ch.try_push(2));
  EXPECT_EQ(ch.pop(), 1);
  EXPECT_EQ(ch.pop(), 2);
  EXPECT_FALSE(ch.try_pop().has_value());
  ch.close();
  EXPECT_FALSE(ch.push(3));
  EXPECT_FALSE(ch.pop().has_value());
}

TEST(ChannelTest, BoundedCapacity) {
  Channel<int> ch(2);
  EXPECT_TRUE(ch.try_push(1));
  EXPECT_TRUE(ch.try_push(2));
  EXPECT_FALSE(ch.try_push(3));  // full
  ch.try_pop();
  EXPECT_TRUE(ch.try_push(3));
}

TEST(ChannelTest, PopForTimesOutOnEmptyAndReturnsWhenFed) {
  using namespace std::chrono_literals;
  Channel<int> ch(2);
  EXPECT_FALSE(ch.pop_for(1ms).has_value());  // empty: times out
  int v = 7;
  EXPECT_TRUE(ch.push_for(v, 0ms));
  const auto got = ch.pop_for(1h);  // returns immediately, no 1h wait
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 7);
}

TEST(ChannelTest, PushForTimesOutWhenFullWithoutConsumingValue) {
  using namespace std::chrono_literals;
  Channel<std::string> ch(1);
  std::string first = "first";
  std::string second = "second";
  EXPECT_TRUE(ch.push_for(first, 0ms));
  // Full: timed push fails AND leaves the value intact so the caller can
  // apply an overload policy (retry, drop-oldest, reject) with the same item.
  EXPECT_FALSE(ch.push_for(second, 1ms));
  EXPECT_EQ(second, "second");
  ch.try_pop();
  EXPECT_TRUE(ch.push_for(second, 0ms));
  EXPECT_EQ(ch.pop_for(0ms), "second");
}

TEST(ChannelTest, CloseWakesTimedWaiters) {
  using namespace std::chrono_literals;
  Channel<int> ch(1);
  // A pop_for blocked on an empty channel returns nullopt promptly on close
  // rather than sleeping out its full timeout.
  std::thread closer([&ch] {
    std::this_thread::sleep_for(5ms);
    ch.close();
  });
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(ch.pop_for(10s).has_value());
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 5s);
  closer.join();
  // After close: timed push always fails, timed pop drains then fails.
  int v = 1;
  EXPECT_FALSE(ch.push_for(v, 10s));
  EXPECT_FALSE(ch.pop_for(0ms).has_value());
}

TEST(ChannelTest, CloseWithBacklogDrainsThroughPopFor) {
  using namespace std::chrono_literals;
  Channel<int> ch(4);
  int a = 1;
  int b = 2;
  ch.push_for(a, 0ms);
  ch.push_for(b, 0ms);
  ch.close();
  EXPECT_EQ(ch.pop_for(0ms), 1);  // close never loses queued items
  EXPECT_EQ(ch.pop_for(0ms), 2);
  EXPECT_FALSE(ch.pop_for(1ms).has_value());
}

TEST(ChannelTest, TimedCrossThreadHandoff) {
  using namespace std::chrono_literals;
  Channel<int> ch(1);
  std::thread producer([&ch] {
    for (int i = 0; i < 100; ++i) {
      int v = i;
      while (!ch.push_for(v, 1ms)) {
      }
    }
    ch.close();
  });
  int expected = 0;
  for (;;) {
    const auto v = ch.pop_for(1ms);
    if (v.has_value()) {
      EXPECT_EQ(*v, expected++);
    } else if (ch.closed() && ch.size() == 0) {
      break;  // close happens-after every push, so empty+closed means done
    }
  }
  producer.join();
  EXPECT_EQ(expected, 100);
}

TEST(ChannelTest, CrossThreadTransfer) {
  Channel<int> ch(8);
  std::thread producer([&ch] {
    for (int i = 0; i < 1000; ++i) ch.push(i);
    ch.close();
  });
  int expected = 0;
  while (auto v = ch.pop()) {
    EXPECT_EQ(*v, expected++);
  }
  producer.join();
  EXPECT_EQ(expected, 1000);
}

}  // namespace
}  // namespace hpcmon::transport
