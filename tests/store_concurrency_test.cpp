// Satellite: concurrent-store stress. M producer threads (a mix of
// disjoint-series and overlapping-series writers) race a reader thread that
// continuously runs query_range / stats / latest. Typed over BOTH the
// single-mutex TimeSeriesStore and the hash-partitioned
// ingest::ShardedTimeSeriesStore so the two honor the same contract under
// contention. Labeled `threaded` — the tsan preset runs it under
// ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "ingest/sharded_store.hpp"
#include "store/tsdb.hpp"

namespace hpcmon {
namespace {

using core::SeriesId;
using core::TimePoint;
using core::TimeRange;

template <typename Store>
Store make_store();

template <>
store::TimeSeriesStore make_store<store::TimeSeriesStore>() {
  return store::TimeSeriesStore(64);
}
template <>
ingest::ShardedTimeSeriesStore make_store<ingest::ShardedTimeSeriesStore>() {
  return ingest::ShardedTimeSeriesStore(4, 64);
}

template <typename Store>
class StoreConcurrencyTest : public ::testing::Test {};

using StoreTypes =
    ::testing::Types<store::TimeSeriesStore, ingest::ShardedTimeSeriesStore>;
TYPED_TEST_SUITE(StoreConcurrencyTest, StoreTypes);

TYPED_TEST(StoreConcurrencyTest, ProducersAndReaderRaceSafely) {
  constexpr int kDisjointProducers = 3;
  constexpr int kOverlapProducers = 2;
  constexpr int kPointsPerSeries = 400;
  constexpr std::uint32_t kSharedSeries = 1000;

  auto store = make_store<TypeParam>();
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> overlap_accepted{0};

  // Reader: exercises every read path while writers mutate.
  std::thread reader([&] {
    std::uint64_t sink = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const auto st = store.stats();
      sink += st.points;
      for (std::uint32_t s = 0; s < kDisjointProducers + 1; ++s) {
        sink += store.query_range(SeriesId{s}, TimeRange{0, core::kDay}).size();
        if (const auto l = store.latest(SeriesId{s})) sink += l->time > 0;
      }
      sink += store.query_range(SeriesId{kSharedSeries},
                                TimeRange{0, core::kDay}).size();
    }
    EXPECT_GE(sink, 0u);  // keep `sink` observable
  });

  std::vector<std::thread> producers;
  // Disjoint writers: producer p owns series p exclusively, strictly
  // increasing timestamps, so every append must be accepted.
  for (int p = 0; p < kDisjointProducers; ++p) {
    producers.emplace_back([&store, p] {
      for (int i = 0; i < kPointsPerSeries; ++i) {
        ASSERT_TRUE(store.append(SeriesId{static_cast<std::uint32_t>(p)},
                                 (i + 1) * core::kSecond, p + i * 0.5));
      }
    });
  }
  // Overlapping writers: both hammer the SAME series with the same timestamp
  // ladder — exactly one append per timestamp may win; none may corrupt.
  for (int p = 0; p < kOverlapProducers; ++p) {
    producers.emplace_back([&store, &overlap_accepted] {
      for (int i = 0; i < kPointsPerSeries; ++i) {
        if (store.append(SeriesId{kSharedSeries}, (i + 1) * core::kSecond,
                         1.0 * i)) {
          overlap_accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  // Disjoint series all complete and ordered.
  for (std::uint32_t s = 0; s < kDisjointProducers; ++s) {
    const auto pts = store.query_range(SeriesId{s}, TimeRange{0, core::kDay});
    ASSERT_EQ(pts.size(), static_cast<std::size_t>(kPointsPerSeries));
    for (std::size_t i = 1; i < pts.size(); ++i) {
      ASSERT_LT(pts[i - 1].time, pts[i].time);
    }
  }
  // Shared series: the store accepted exactly the points it now returns,
  // all strictly increasing, and the top of the timestamp ladder landed
  // (a fast writer may advance last_time past a slow one, so the count can
  // legitimately be below kPointsPerSeries — but never above).
  const auto shared =
      store.query_range(SeriesId{kSharedSeries}, TimeRange{0, core::kDay});
  EXPECT_EQ(shared.size(), overlap_accepted.load());
  EXPECT_GE(shared.size(), 1u);
  EXPECT_LE(shared.size(), static_cast<std::size_t>(kPointsPerSeries));
  EXPECT_EQ(shared.back().time, kPointsPerSeries * core::kSecond);
  for (std::size_t i = 1; i < shared.size(); ++i) {
    ASSERT_LT(shared[i - 1].time, shared[i].time);
  }
  const auto st = store.stats();
  EXPECT_EQ(st.points, kDisjointProducers * kPointsPerSeries + shared.size());
  EXPECT_EQ(st.series, static_cast<std::size_t>(kDisjointProducers) + 1);
}

// Read-path race: many readers running the NEW query engine
// (aggregate/downsample/scan/query_range, summaries + cursors + shared
// decode cache) while a writer keeps appending and an evictor keeps sealing
// chunks out from under them. Validates the shared_mutex + striped-lock +
// cache design under tsan: readers must never block each other out of
// correctness (that's the bench's job to show) and must always see a
// consistent snapshot — whatever count() a query returns, the points are
// strictly ordered and aggregates agree with them.
TYPED_TEST(StoreConcurrencyTest, QueryEngineReadersRaceWriterAndEvictor) {
  constexpr int kReaders = 4;
  constexpr int kPoints = 3000;
  const SeriesId series{7};

  auto store = make_store<TypeParam>();
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> archived{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&store, &stop, series, r] {
      std::uint64_t sink = 0;
      const TimeRange all{0, core::kDay};
      while (!stop.load(std::memory_order_acquire)) {
        // Every fast path at once; each must be self-consistent.
        const auto pts = store.query_range(series, all);
        for (std::size_t i = 1; i < pts.size(); ++i) {
          ASSERT_LT(pts[i - 1].time, pts[i].time);
        }
        const auto count = store.aggregate(series, all, store::Agg::kCount);
        if (count) sink += static_cast<std::uint64_t>(*count);
        sink += store.downsample(series, all, core::kMinute,
                                 static_cast<store::Agg>(r % 6))
                    .size();
        std::uint64_t visited = 0;
        store.scan(series, all, [&](const core::TimedValue& p) {
          sink += p.time > 0;
          return ++visited < 64;  // early exit path
        });
      }
      EXPECT_GE(sink, 0u);
    });
  }

  std::thread evictor([&store, &stop, &archived] {
    while (!stop.load(std::memory_order_acquire)) {
      // Trail the writer: keep roughly the last 500s hot.
      const auto latest = store.latest(SeriesId{7});
      const TimePoint cutoff = latest ? latest->time - 500 * core::kSecond : 0;
      store.evict_before(cutoff, [&](SeriesId, store::Chunk&& chunk) {
        archived.fetch_add(chunk.count(), std::memory_order_relaxed);
      });
    }
  });

  for (int i = 1; i <= kPoints; ++i) {
    ASSERT_TRUE(store.append(series, i * core::kSecond, 0.25 * i));
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  evictor.join();

  // Conservation: every appended point is either still hot or was archived.
  const auto hot =
      store.query_range(series, TimeRange{0, core::kDay}).size();
  EXPECT_EQ(hot + archived.load(), static_cast<std::uint64_t>(kPoints));
  // The read-path self-metrics saw real traffic.
  const auto qs = store.query_stats();
  EXPECT_GT(qs.queries, 0u);
}

}  // namespace
}  // namespace hpcmon
