// WriteAheadLog: append/replay round-trip, rotation, truncation, torn tails,
// CRC-skipped corruption, and injected file-layer faults.
#include "resilience/wal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "resilience/fault.hpp"

namespace hpcmon::resilience {
namespace {

namespace fs = std::filesystem;
using core::SampleBatch;

std::string fresh_dir(const std::string& name) {
  const std::string dir = "/tmp/hpcmon_wal_test_" + name;
  fs::remove_all(dir);
  return dir;
}

SampleBatch make_batch(core::TimePoint sweep, int n = 8) {
  SampleBatch b;
  b.sweep_time = sweep;
  b.origin = core::ComponentId{7};
  for (int i = 0; i < n; ++i) {
    b.samples.push_back({core::SeriesId{static_cast<std::uint32_t>(i)},
                         sweep + i, sweep * 0.25 + i});
  }
  return b;
}

std::vector<SampleBatch> replay_all(const std::string& dir,
                                    ReplayStats* stats = nullptr) {
  std::vector<SampleBatch> out;
  const auto s = WriteAheadLog::replay(
      dir, [&](SampleBatch&& b) { out.push_back(std::move(b)); });
  if (stats != nullptr) *stats = s;
  return out;
}

TEST(WalTest, AppendReplayRoundTrip) {
  const auto dir = fresh_dir("roundtrip");
  {
    WriteAheadLog wal({.dir = dir});
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(wal.append(make_batch((i + 1) * core::kMinute)).is_ok());
    }
    EXPECT_EQ(wal.stats().appended_records, 3u);
    EXPECT_EQ(wal.stats().appended_samples, 24u);
    EXPECT_GT(wal.stats().appended_bytes, 0u);
  }
  ReplayStats stats;
  const auto batches = replay_all(dir, &stats);
  EXPECT_EQ(stats.segments, 1u);
  EXPECT_EQ(stats.records, 3u);
  EXPECT_EQ(stats.samples, 24u);
  EXPECT_EQ(stats.corrupt_skipped, 0u);
  EXPECT_EQ(stats.torn_tails, 0u);
  ASSERT_EQ(batches.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    const auto want = make_batch((i + 1) * core::kMinute);
    EXPECT_EQ(batches[i].sweep_time, want.sweep_time);
    EXPECT_EQ(batches[i].origin, want.origin);
    EXPECT_EQ(batches[i].samples, want.samples);
  }
  fs::remove_all(dir);
}

TEST(WalTest, EmptyBatchIsNoOp) {
  const auto dir = fresh_dir("empty");
  WriteAheadLog wal({.dir = dir});
  EXPECT_TRUE(wal.append(SampleBatch{}).is_ok());
  EXPECT_EQ(wal.stats().appended_records, 0u);
  fs::remove_all(dir);
}

TEST(WalTest, RotationSealsSegments) {
  const auto dir = fresh_dir("rotate");
  {
    // Tiny segments: every append exceeds the threshold and seals.
    WriteAheadLog wal({.dir = dir, .segment_bytes = 64});
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(wal.append(make_batch((i + 1) * core::kMinute)).is_ok());
    }
    EXPECT_EQ(wal.sealed_segments(), 5u);
    EXPECT_EQ(wal.stats().segments_created, 6u);  // 5 sealed + active
  }
  ReplayStats stats;
  const auto batches = replay_all(dir, &stats);
  EXPECT_EQ(stats.segments, 6u);
  EXPECT_EQ(stats.records, 5u);
  ASSERT_EQ(batches.size(), 5u);
  EXPECT_EQ(batches.front().sweep_time, core::kMinute);
  EXPECT_EQ(batches.back().sweep_time, 5 * core::kMinute);
  fs::remove_all(dir);
}

TEST(WalTest, TruncateBeforeDropsOnlySealedOldSegments) {
  const auto dir = fresh_dir("truncate");
  WriteAheadLog wal({.dir = dir, .segment_bytes = 64});
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(wal.append(make_batch((i + 1) * core::kMinute)).is_ok());
  }
  ASSERT_EQ(wal.sealed_segments(), 4u);
  // Newest sample in segment i is (i+1)min + 7us; cutoff past segment 2.
  const auto removed = wal.truncate_before(2 * core::kMinute + core::kSecond);
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(wal.sealed_segments(), 2u);
  EXPECT_EQ(wal.stats().segments_truncated, 2u);
  // The surviving records are exactly the newer two.
  const auto batches = replay_all(dir);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].sweep_time, 3 * core::kMinute);
  EXPECT_EQ(batches[1].sweep_time, 4 * core::kMinute);
  // Cutoff beyond everything: sealed segments go, the active one stays.
  wal.truncate_before(core::kHour);
  EXPECT_EQ(wal.sealed_segments(), 0u);
  ASSERT_TRUE(wal.append(make_batch(core::kHour)).is_ok());
  fs::remove_all(dir);
}

TEST(WalTest, TornTailToleratedOnReplay) {
  const auto dir = fresh_dir("torn");
  {
    WriteAheadLog wal({.dir = dir});
    ASSERT_TRUE(wal.append(make_batch(core::kMinute)).is_ok());
    ASSERT_TRUE(wal.append(make_batch(2 * core::kMinute)).is_ok());
    wal.simulate_torn_tail();
    EXPECT_TRUE(wal.poisoned());
    // The poisoned log refuses further appends (damage bounded to the tear).
    EXPECT_FALSE(wal.append(make_batch(3 * core::kMinute)).is_ok());
    EXPECT_EQ(wal.stats().append_failures, 2u);
  }
  ReplayStats stats;
  const auto batches = replay_all(dir, &stats);
  EXPECT_EQ(stats.records, 2u);
  EXPECT_EQ(stats.torn_tails, 1u);
  EXPECT_EQ(stats.corrupt_skipped, 0u);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[1].sweep_time, 2 * core::kMinute);
  fs::remove_all(dir);
}

TEST(WalTest, CorruptRecordSkippedScanContinues) {
  const auto dir = fresh_dir("corrupt");
  std::string segment;
  {
    WriteAheadLog wal({.dir = dir});
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(wal.append(make_batch((i + 1) * core::kMinute)).is_ok());
    }
    segment = dir + "/wal-00000001.seg";
  }
  // Flip one byte inside the second record's payload: CRC must catch it,
  // replay must skip that record and still deliver the third.
  std::FILE* f = std::fopen(segment.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::uint32_t len1 = 0;
  ASSERT_EQ(std::fseek(f, 8, SEEK_SET), 0);  // past segment header
  ASSERT_EQ(std::fread(&len1, 4, 1, f), 1u);
  const long second_payload = 8 + 8 + static_cast<long>(len1) + 8;
  ASSERT_EQ(std::fseek(f, second_payload + 3, SEEK_SET), 0);
  unsigned char byte = 0;
  ASSERT_EQ(std::fread(&byte, 1, 1, f), 1u);
  byte ^= 0xFF;
  ASSERT_EQ(std::fseek(f, second_payload + 3, SEEK_SET), 0);
  ASSERT_EQ(std::fwrite(&byte, 1, 1, f), 1u);
  std::fclose(f);

  ReplayStats stats;
  const auto batches = replay_all(dir, &stats);
  EXPECT_EQ(stats.corrupt_skipped, 1u);
  EXPECT_EQ(stats.torn_tails, 0u);
  EXPECT_EQ(stats.records, 2u);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].sweep_time, core::kMinute);
  EXPECT_EQ(batches[1].sweep_time, 3 * core::kMinute);
  fs::remove_all(dir);
}

TEST(WalTest, BadSegmentHeaderSkipsSegment) {
  const auto dir = fresh_dir("badheader");
  fs::create_directories(dir);
  std::FILE* f = std::fopen((dir + "/wal-00000001.seg").c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not a wal segment", f);
  std::fclose(f);
  ReplayStats stats;
  const auto batches = replay_all(dir, &stats);
  EXPECT_EQ(stats.bad_segments, 1u);
  EXPECT_EQ(stats.segments, 0u);
  EXPECT_TRUE(batches.empty());
  fs::remove_all(dir);
}

TEST(WalTest, MissingDirectoryReplaysEmpty) {
  ReplayStats stats;
  const auto batches = replay_all("/tmp/hpcmon_wal_never_created", &stats);
  EXPECT_TRUE(batches.empty());
  EXPECT_EQ(stats.segments, 0u);
  EXPECT_EQ(stats.bad_segments, 0u);
}

TEST(WalTest, ReopenSealsPriorIncarnationsSegments) {
  const auto dir = fresh_dir("reopen");
  {
    WriteAheadLog wal({.dir = dir});
    ASSERT_TRUE(wal.append(make_batch(core::kMinute)).is_ok());
    EXPECT_EQ(wal.active_segment_index(), 1u);
  }
  {
    WriteAheadLog wal({.dir = dir});
    EXPECT_EQ(wal.sealed_segments(), 1u);
    EXPECT_EQ(wal.active_segment_index(), 2u);
    ASSERT_TRUE(wal.append(make_batch(2 * core::kMinute)).is_ok());
  }
  const auto batches = replay_all(dir);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0].sweep_time, core::kMinute);
  EXPECT_EQ(batches[1].sweep_time, 2 * core::kMinute);
  fs::remove_all(dir);
}

// The WAL consults the generic filesystem fault points (one kWrite op per
// logical append), so these tests script faults by fs-op index.
TEST(WalTest, InjectedErrorFailsOneAppend) {
  const auto dir = fresh_dir("inject_error");
  FaultSpec spec;
  spec.fs_error_at = 2;
  FaultPlan plan(1234, spec);
  {
    WriteAheadLog wal({.dir = dir, .faults = &plan});
    EXPECT_TRUE(wal.append(make_batch(core::kMinute)).is_ok());
    EXPECT_FALSE(wal.append(make_batch(2 * core::kMinute)).is_ok());
    EXPECT_FALSE(wal.poisoned());  // plain error, not a torn write
    EXPECT_TRUE(wal.append(make_batch(3 * core::kMinute)).is_ok());
    EXPECT_EQ(wal.stats().append_failures, 1u);
    EXPECT_EQ(wal.stats().appended_records, 2u);
  }
  EXPECT_EQ(plan.injected().fs_errors, 1u);
  EXPECT_EQ(plan.fs_ops(), 3u);
  const auto batches = replay_all(dir);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[1].sweep_time, 3 * core::kMinute);
  fs::remove_all(dir);
}

TEST(WalTest, InjectedEnospcFailsAppendWithoutPoisoning) {
  const auto dir = fresh_dir("inject_enospc");
  FaultSpec spec;
  spec.fs_enospc_at = 2;
  FaultPlan plan(1234, spec);
  {
    WriteAheadLog wal({.dir = dir, .faults = &plan});
    EXPECT_TRUE(wal.append(make_batch(core::kMinute)).is_ok());
    EXPECT_FALSE(wal.append(make_batch(2 * core::kMinute)).is_ok());
    // A full disk rejects the record cleanly; nothing was half-written, so
    // the log is not poisoned and recovers as soon as space returns.
    EXPECT_FALSE(wal.poisoned());
    EXPECT_TRUE(wal.append(make_batch(3 * core::kMinute)).is_ok());
  }
  EXPECT_EQ(plan.injected().fs_enospc, 1u);
  const auto batches = replay_all(dir);
  ASSERT_EQ(batches.size(), 2u);
  fs::remove_all(dir);
}

TEST(WalTest, InjectedShortWriteTearsAndPoisons) {
  const auto dir = fresh_dir("inject_short");
  FaultSpec spec;
  spec.fs_short_write_at = 3;
  FaultPlan plan(1234, spec);
  {
    WriteAheadLog wal({.dir = dir, .faults = &plan});
    EXPECT_TRUE(wal.append(make_batch(core::kMinute)).is_ok());
    EXPECT_TRUE(wal.append(make_batch(2 * core::kMinute)).is_ok());
    EXPECT_FALSE(wal.append(make_batch(3 * core::kMinute)).is_ok());
    EXPECT_TRUE(wal.poisoned());
  }
  EXPECT_EQ(plan.injected().fs_short_writes, 1u);
  ReplayStats stats;
  const auto batches = replay_all(dir, &stats);
  EXPECT_EQ(stats.torn_tails, 1u);
  ASSERT_EQ(batches.size(), 2u);
  fs::remove_all(dir);
}

TEST(WalTest, InjectedCrashLooksLikeATornTail) {
  const auto dir = fresh_dir("inject_crash");
  FaultSpec spec;
  spec.fs_crash_at = 2;
  FaultPlan plan(1234, spec);
  {
    WriteAheadLog wal({.dir = dir, .faults = &plan});
    EXPECT_TRUE(wal.append(make_batch(core::kMinute)).is_ok());
    EXPECT_FALSE(wal.append(make_batch(2 * core::kMinute)).is_ok());
    EXPECT_TRUE(wal.poisoned());
  }
  EXPECT_EQ(plan.injected().fs_crashes, 1u);
  ReplayStats stats;
  const auto batches = replay_all(dir, &stats);
  EXPECT_EQ(stats.torn_tails, 1u);
  ASSERT_EQ(batches.size(), 1u);  // only the pre-crash record survives
  fs::remove_all(dir);
}

}  // namespace
}  // namespace hpcmon::resilience
