// End-to-end pipeline: simulated platform -> synchronized collection ->
// EventRouter transport -> tiered store + log store + job store -> analysis
// (rules, detectors) -> alerts -> automated response -> dashboard queries.
//
// This is the paper's Table I exercised as one running system.
#include <gtest/gtest.h>

#include "analysis/rules.hpp"
#include "collect/collection.hpp"
#include "collect/probes.hpp"
#include "collect/samplers.hpp"
#include "response/actions.hpp"
#include "response/alerts.hpp"
#include "store/jobstore.hpp"
#include "store/logstore.hpp"
#include "store/retention.hpp"
#include "transport/codec.hpp"
#include "transport/event_router.hpp"
#include "viz/drilldown.hpp"
#include "viz/query.hpp"

namespace hpcmon {
namespace {

struct Pipeline {
  sim::Cluster cluster;
  transport::EventRouter router;
  store::TieredStore tsdb;
  store::LogStore logs;
  store::JobStore jobs;
  analysis::RuleEngine rules;
  response::AlertManager alerts;
  response::ActionDispatcher actions;
  collect::CollectionService collection{cluster};

  static sim::ClusterParams params() {
    sim::ClusterParams p;
    p.shape.cabinets = 2;
    p.shape.chassis_per_cabinet = 2;
    p.shape.blades_per_chassis = 4;
    p.shape.nodes_per_blade = 4;  // 64 nodes
    p.shape.gpu_node_fraction = 0.25;
    p.fabric_kind = sim::FabricKind::kDragonfly;
    p.seed = 99;
    return p;
  }

  Pipeline() : cluster(params()), tsdb(store::RetentionPolicy{}) {
    // Collection -> router (binary frames), router -> stores.
    for (auto& sampler : collect::make_all_samplers(cluster)) {
      collection.add_sampler(std::move(sampler), 30 * core::kSecond,
                             collect::router_sample_sink(router));
    }
    collection.add_log_collector(10 * core::kSecond,
                                 collect::router_log_sink(router));
    router.subscribe(transport::FrameType::kSamples,
                     [this](const transport::Frame& f) {
                       auto batch = transport::decode_samples(f);
                       ASSERT_TRUE(batch.is_ok());
                       tsdb.append_batch(batch.value().samples);
                     });
    router.subscribe(transport::FrameType::kLogs,
                     [this](const transport::Frame& f) {
                       auto events = transport::decode_logs(f);
                       ASSERT_TRUE(events.is_ok());
                       for (auto& e : events.value()) {
                         for (const auto& match : rules.process(e)) {
                           alerts.raise({match.time,
                                         response::AlertSeverity::kWarning,
                                         match.rule_name, match.component,
                                         match.detail});
                         }
                       }
                       logs.append_batch(std::move(events).take());
                     });
    for (auto& r : analysis::standard_platform_rules()) {
      rules.add_rule(std::move(r));
    }
    alerts.add_sink(
        [this](const response::Alert& a) { actions.dispatch(a); });
    // Scheduler lifecycle -> job store.
    cluster.scheduler().set_on_start([this](const sim::JobRecord& rec) {
      jobs.record_start(to_meta(rec));
    });
    cluster.scheduler().set_on_end([this](const sim::JobRecord& rec) {
      jobs.record_end(to_meta(rec));
    });
  }

  static store::JobMeta to_meta(const sim::JobRecord& rec) {
    store::JobMeta m;
    m.id = rec.id;
    m.app_name = rec.request.profile.name;
    m.nodes = rec.nodes;
    m.submit_time = rec.submit_time;
    m.start_time = rec.start_time;
    m.end_time = rec.end_time;
    m.failed = rec.state == sim::JobState::kFailed;
    return m;
  }
};

TEST(IntegrationTest, FullPipelineEndToEnd) {
  Pipeline p;
  sim::WorkloadParams w;
  w.mean_interarrival = 30 * core::kSecond;
  w.max_nodes = 16;
  w.median_runtime = 3 * core::kMinute;
  p.cluster.start_workload(w);
  // Inject a GPU failure mid-run; the hardware-critical rule should alert.
  p.cluster.inject_gpu_failure(5 * core::kMinute, 2);
  p.cluster.run_for(15 * core::kMinute);

  // Numeric data flowed through the binary transport into the TSDB.
  const auto power_sid = p.cluster.registry().series(
      "power.system_w", p.cluster.topology().system());
  const auto pts = p.tsdb.query_range(power_sid, {0, p.cluster.now()});
  EXPECT_GE(pts.size(), 25u);  // 30 sweeps in 15 min
  for (const auto& pt : pts) EXPECT_GT(pt.value, 1000.0);

  // Logs flowed and are queryable.
  EXPECT_GT(p.logs.size(), 10u);
  store::LogQuery q;
  q.facility = core::LogFacility::kScheduler;
  EXPECT_GT(p.logs.count(q), 0u);

  // Jobs recorded with node allocations and timeframes.
  EXPECT_GT(p.jobs.size(), 5u);
  const auto running = p.jobs.running_at(10 * core::kMinute);
  for (const auto& j : running) EXPECT_FALSE(j.nodes.empty());

  // The GPU failure produced a critical hardware log and an alert.
  store::LogQuery gq;
  gq.max_severity = core::Severity::kCritical;
  gq.facility = core::LogFacility::kHardware;
  EXPECT_GT(p.logs.count(gq), 0u);
  bool hw_alert = false;
  for (const auto& a : p.alerts.active()) {
    if (a.key == "hw_critical") hw_alert = true;
  }
  EXPECT_TRUE(hw_alert);

  // Transport stats are consistent.
  EXPECT_GT(p.router.stats().frames, 30u);
  EXPECT_EQ(p.router.stats().dropped, 0u);
}

TEST(IntegrationTest, RetentionPreservesQueryabilityOverDays) {
  Pipeline p;
  // Use a small synthetic series pushed directly through the tiered store at
  // cluster pace: 26 hours of 1-minute power data via collection.
  sim::WorkloadParams w;
  w.mean_interarrival = 2 * core::kMinute;
  w.max_nodes = 8;
  p.cluster.start_workload(w);
  // Run 2 simulated hours (enough to cross the 6h hot window? no — so force
  // retention with a short policy instead).
  p.cluster.run_for(2 * core::kHour);
  const auto before = p.tsdb.hot().stats().points;
  EXPECT_GT(before, 0u);
  p.tsdb.enforce(p.cluster.now() + 7 * core::kHour);  // age everything out
  const auto power_sid = p.cluster.registry().series(
      "power.system_w", p.cluster.topology().system());
  // Full-fidelity history still available via archive reload.
  const auto full = p.tsdb.query_full(power_sid, {0, p.cluster.now()});
  EXPECT_GT(full.size(), 200u);
  // Dashboard query path (hot+warm) also still answers.
  const auto ds = p.tsdb.query_range(power_sid, {0, p.cluster.now()});
  EXPECT_FALSE(ds.empty());
}

TEST(IntegrationTest, DrillDownFindsInjectedIoJob) {
  Pipeline p;
  // Background compute jobs plus one I/O blaster.
  sim::JobRequest io;
  io.num_nodes = 8;
  io.nominal_runtime = 6 * core::kMinute;
  io.profile = sim::app_io_checkpoint();
  p.cluster.submit_at(core::kMinute, io);
  sim::JobRequest quiet;
  quiet.num_nodes = 8;
  quiet.nominal_runtime = 10 * core::kMinute;
  quiet.profile = sim::app_compute_bound();
  p.cluster.submit_at(core::kMinute, quiet);
  p.cluster.run_for(8 * core::kMinute);

  // Find the aggregate write spike.
  auto& reg = p.cluster.registry();
  std::vector<core::ComponentId> node_comps;
  for (int i = 0; i < p.cluster.topology().num_nodes(); ++i) {
    node_comps.push_back(p.cluster.topology().node(i));
  }
  const auto agg = viz::aggregate_across(p.tsdb.hot(), reg, "node.write_mbps",
                                         node_comps, {0, p.cluster.now()},
                                         store::Agg::kSum);
  ASSERT_FALSE(agg.empty());
  auto peak = agg[0];
  for (const auto& pt : agg) {
    if (pt.value > peak.value) peak = pt;
  }
  EXPECT_GT(peak.value, 1000.0);

  // Drill down at the spike: the io_checkpoint job is responsible.
  viz::DrillDown drill(p.tsdb.hot(), reg, p.jobs);
  const auto result = drill.investigate(
      "node.write_mbps", node_comps, peak.time, core::kMinute,
      [&p](core::ComponentId c) { return p.cluster.topology().node_index(c); });
  ASSERT_TRUE(result.responsible_job.has_value());
  EXPECT_EQ(result.responsible_job->app_name, "io_checkpoint");
  EXPECT_GT(result.job_share, 0.9);
}

}  // namespace
}  // namespace hpcmon
