// Relay tier unit tests over a real loopback wire: forwarding with acks,
// server-side (source, seq) dedupe and the bounded window, the hello heal
// after state-file loss, priority-aware shedding, and seq-lease persistence.
#include "relay/client.hpp"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <memory>
#include <thread>

#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "store/tsdb.hpp"
#include "transport/codec.hpp"

namespace hpcmon::relay {
namespace {

/// An aggregator stand-in: a ServeServer whose relay hook appends into a
/// plain TimeSeriesStore and counts every apply (the exactly-once ledger).
struct Upstream {
  store::TimeSeriesStore store;
  std::atomic<std::uint64_t> applies{0};
  std::atomic<std::uint64_t> applied_samples{0};
  std::unique_ptr<serve::ServeServer> server;

  explicit Upstream(serve::ServeConfig config = {}) {
    serve::ServeHooks hooks;
    hooks.relay_apply = [this](const core::SampleBatch& b, core::Priority) {
      ++applies;
      const auto n = store.append_batch(b.samples);
      applied_samples += n;
      return n;
    };
    server = std::make_unique<serve::ServeServer>(config, std::move(hooks));
    EXPECT_TRUE(server->start()) << server->error();
  }
};

core::SampleBatch make_batch(core::SeriesId series, core::TimePoint t0,
                             int n) {
  core::SampleBatch batch;
  batch.sweep_time = t0;
  for (int i = 0; i < n; ++i) {
    batch.samples.push_back(
        {series, t0 + i * 10, static_cast<double>(t0 + i)});
  }
  return batch;
}

/// A raw wire peer for driving the server's dedupe state directly with
/// hand-built (source, seq) appends — the client never sends these shapes.
class RawPeer {
 public:
  bool connect(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return false;
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
           0;
  }
  ~RawPeer() {
    if (fd_ >= 0) ::close(fd_);
  }

  std::optional<serve::WireFrame> call(serve::MsgType type,
                                       const std::vector<std::uint8_t>& body) {
    std::vector<std::uint8_t> bytes;
    serve::append_wire_frame(bytes, type, next_id_++, body);
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return std::nullopt;
      off += static_cast<std::size_t>(n);
    }
    while (true) {
      if (auto frame = assembler_.next()) return frame;
      std::uint8_t buf[4096];
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return std::nullopt;
      if (!assembler_.feed(buf, static_cast<std::size_t>(n))) {
        return std::nullopt;
      }
    }
  }

  std::optional<serve::RelayAck> append(std::uint64_t source,
                                        std::uint64_t seq,
                                        const core::SampleBatch& batch) {
    serve::RelayAppend msg;
    msg.source_id = source;
    msg.seq = seq;
    msg.payload = transport::encode_samples(batch).payload;
    auto reply = call(serve::MsgType::kRelayAppend,
                      serve::encode_relay_append(msg));
    if (!reply || reply->type != serve::MsgType::kOk) return std::nullopt;
    serve::RelayAck ack;
    if (!serve::decode_relay_ack(reply->body, ack)) return std::nullopt;
    return ack;
  }

 private:
  int fd_ = -1;
  std::uint32_t next_id_ = 1;
  serve::WireAssembler assembler_;
};

TEST(RelayClientTest, ForwardsBatchesByteExactAndAdvancesWatermark) {
  Upstream up;
  RelayConfig rc;
  rc.upstream_port = up.server->port();
  rc.backoff_ms = 1;
  RelayClient client(rc);
  ASSERT_TRUE(client.start());

  const core::SeriesId series{7};
  core::SampleBatch sent;
  for (int b = 0; b < 5; ++b) {
    auto batch = make_batch(series, 1000 * b, 20);
    sent.samples.insert(sent.samples.end(), batch.samples.begin(),
                        batch.samples.end());
    EXPECT_EQ(client.submit(batch), 1u);
  }
  ASSERT_TRUE(client.drain_for(5000));
  client.stop();

  const auto stored =
      up.store.query_range(series, {0, 1000 * 5 + core::kHour});
  ASSERT_EQ(stored.size(), sent.samples.size());
  for (std::size_t i = 0; i < stored.size(); ++i) {
    EXPECT_EQ(stored[i].time, sent.samples[i].time);
    EXPECT_EQ(stored[i].value, sent.samples[i].value);
  }
  const auto stats = client.stats();
  EXPECT_EQ(stats.acked_batches, 5u);
  EXPECT_EQ(stats.acked_samples, sent.samples.size());
  EXPECT_EQ(stats.watermark, 5u);
  EXPECT_EQ(up.applies.load(), 5u);
  EXPECT_EQ(up.server->stats().relay_applied_batches, 5u);
}

TEST(RelayClientTest, SplitsByPriorityClassAndChunkSize) {
  Upstream up;
  RelayConfig rc;
  rc.upstream_port = up.server->port();
  rc.batch_samples = 8;
  rc.priority_of = [](core::SeriesId id) {
    return core::raw(id) == 1 ? core::Priority::kCritical : core::Priority::kBulk;
  };
  RelayClient client(rc);
  ASSERT_TRUE(client.start());

  core::SampleBatch mixed;
  for (int i = 0; i < 20; ++i) {
    mixed.samples.push_back({core::SeriesId{1}, i * 10, 1.0});
    mixed.samples.push_back({core::SeriesId{2}, i * 10, 2.0});
  }
  // 20 critical + 20 bulk at <= 8 samples per entry: 3 + 3 entries.
  EXPECT_EQ(client.submit(mixed), 6u);
  ASSERT_TRUE(client.drain_for(5000));
  client.stop();
  EXPECT_EQ(up.store.query_range(core::SeriesId{1}, {0, 1000}).size(), 20u);
  EXPECT_EQ(up.store.query_range(core::SeriesId{2}, {0, 1000}).size(), 20u);
  EXPECT_EQ(up.applies.load(), 6u);
}

TEST(RelayClientTest, ServerDedupesBySourceSeqWithinBoundedWindow) {
  serve::ServeConfig sc;
  sc.relay_dedupe_window = 3;
  Upstream up(sc);
  RawPeer peer;
  ASSERT_TRUE(peer.connect(up.server->port()));

  const auto batch = make_batch(core::SeriesId{9}, 0, 4);
  // Novel seq applies and advances the watermark.
  auto ack = peer.append(42, 1, batch);
  ASSERT_TRUE(ack.has_value());
  EXPECT_TRUE(ack->applied);
  EXPECT_EQ(ack->watermark, 1u);
  // The same seq again is acked WITHOUT a second apply.
  ack = peer.append(42, 1, batch);
  ASSERT_TRUE(ack.has_value());
  EXPECT_FALSE(ack->applied);
  EXPECT_TRUE(ack->duplicate);
  EXPECT_EQ(up.applies.load(), 1u);
  // Beyond the window (> watermark + 3): refused un-applied, watermark
  // unchanged — the client must resend once the gap closes.
  ack = peer.append(42, 5, batch);
  ASSERT_TRUE(ack.has_value());
  EXPECT_FALSE(ack->applied);
  EXPECT_FALSE(ack->duplicate);
  EXPECT_EQ(ack->watermark, 1u);
  EXPECT_EQ(up.applies.load(), 1u);
  // Out-of-order within the window: applied above the watermark, then the
  // gap closes and the watermark sweeps forward contiguously.
  ack = peer.append(42, 3, batch);
  ASSERT_TRUE(ack.has_value());
  EXPECT_TRUE(ack->applied);
  EXPECT_EQ(ack->watermark, 1u);  // 2 still missing
  ack = peer.append(42, 2, batch);
  ASSERT_TRUE(ack.has_value());
  EXPECT_TRUE(ack->applied);
  EXPECT_EQ(ack->watermark, 3u);  // 2 applied, 3 already above
  // seq 0 is invalid (seqs are 1-based): kError, nothing applied.
  EXPECT_FALSE(peer.append(42, 0, batch).has_value());
  // A second source has independent dedupe state.
  ack = peer.append(43, 1, batch);
  ASSERT_TRUE(ack.has_value());
  EXPECT_TRUE(ack->applied);
  EXPECT_EQ(ack->watermark, 1u);
  const auto stats = up.server->stats();
  EXPECT_EQ(stats.relay_duplicates, 1u);
  EXPECT_EQ(stats.relay_window_rejects, 1u);
  EXPECT_EQ(stats.relay_sources, 2u);
}

TEST(RelayClientTest, ZeroDedupeWindowIsFlooredAtOne) {
  // A zero window must not refuse the next in-order seq — that would
  // livelock every client against its own resends (the refusal-ack leaves
  // the watermark where it was, so the client resends the same seq
  // forever). The server floors the window at 1: strictly in-order
  // traffic always makes progress.
  serve::ServeConfig sc;
  sc.relay_dedupe_window = 0;
  Upstream up(sc);
  RawPeer peer;
  ASSERT_TRUE(peer.connect(up.server->port()));
  const auto batch = make_batch(core::SeriesId{9}, 0, 4);
  for (std::uint64_t seq = 1; seq <= 3; ++seq) {
    auto ack = peer.append(42, seq, batch);
    ASSERT_TRUE(ack.has_value());
    EXPECT_TRUE(ack->applied);
    EXPECT_EQ(ack->watermark, seq);
  }
  EXPECT_EQ(up.applies.load(), 3u);
  // Anything past next-in-order is still refused: the floor is exactly 1.
  auto ack = peer.append(42, 5, batch);
  ASSERT_TRUE(ack.has_value());
  EXPECT_FALSE(ack->applied);
  EXPECT_EQ(ack->watermark, 3u);
}

TEST(RelayClientTest, CorruptPayloadIsRefusedNotAcked) {
  Upstream up;
  RawPeer peer;
  ASSERT_TRUE(peer.connect(up.server->port()));
  serve::RelayAppend msg;
  msg.source_id = 7;
  msg.seq = 1;
  msg.payload = {0xde, 0xad, 0xbe, 0xef};  // not a samples frame
  auto reply = peer.call(serve::MsgType::kRelayAppend,
                         serve::encode_relay_append(msg));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, serve::MsgType::kError);
  EXPECT_EQ(up.applies.load(), 0u);
  // The refused seq was NOT recorded: a valid retry of the same seq applies.
  auto ack = peer.append(7, 1, make_batch(core::SeriesId{1}, 0, 2));
  ASSERT_TRUE(ack.has_value());
  EXPECT_TRUE(ack->applied);
}

TEST(RelayClientTest, HelloHealPreventsSeqReuseAfterStateLoss) {
  Upstream up;
  const std::string state = "/tmp/hpcmon_relay_heal.state";
  std::filesystem::remove(state);

  RelayConfig rc;
  rc.upstream_port = up.server->port();
  rc.source_id = 11;
  rc.state_path = state;
  {
    RelayClient client(rc);
    ASSERT_TRUE(client.start());
    client.submit(make_batch(core::SeriesId{3}, 0, 10));
    ASSERT_TRUE(client.drain_for(5000));
    client.stop();
    EXPECT_EQ(client.watermark(), 1u);
  }
  // The node loses its disk: the state file is gone, so a naive restart
  // would reuse seq 1 and the server would ack-as-duplicate, silently
  // discarding fresh data. The hello heal jumps next_seq past the server's
  // watermark instead.
  std::filesystem::remove(state);
  {
    RelayClient client(rc);
    ASSERT_TRUE(client.start());
    client.submit(make_batch(core::SeriesId{3}, 1000, 10));
    ASSERT_TRUE(client.drain_for(5000));
    client.stop();
    EXPECT_EQ(client.stats().acked_batches, 1u);
  }
  EXPECT_EQ(up.applies.load(), 2u);
  EXPECT_EQ(up.store.query_range(core::SeriesId{3}, {0, core::kHour}).size(),
            20u);
  EXPECT_EQ(up.server->stats().relay_duplicates, 0u);
}

TEST(RelayClientTest, StateFilePersistsSeqLeaseAcrossRestarts) {
  Upstream up;
  const std::string state = "/tmp/hpcmon_relay_lease.state";
  std::filesystem::remove(state);
  RelayConfig rc;
  rc.upstream_port = up.server->port();
  rc.source_id = 12;
  rc.state_path = state;
  {
    RelayClient client(rc);
    ASSERT_TRUE(client.start());
    client.submit(make_batch(core::SeriesId{4}, 0, 5));
    ASSERT_TRUE(client.drain_for(5000));
    client.stop();
  }
  ASSERT_TRUE(std::filesystem::exists(state));
  {
    // State survives: the restarted client resumes past the lease and the
    // loaded watermark, so fresh submits apply cleanly.
    RelayClient client(rc);
    ASSERT_TRUE(client.start());
    EXPECT_EQ(client.watermark(), 1u);  // loaded from the state file
    client.submit(make_batch(core::SeriesId{4}, 1000, 5));
    ASSERT_TRUE(client.drain_for(5000));
    client.stop();
    EXPECT_EQ(client.stats().rejected_batches, 0u);
  }
  EXPECT_EQ(up.applies.load(), 2u);
  std::filesystem::remove(state);
}

TEST(RelayClientTest, ShedsUnsentBulkUnderPressureNeverCritical) {
  // No server behind this port: nothing drains, so the queue bound governs.
  RelayConfig rc;
  rc.upstream_port = 1;  // connect() refused instantly
  rc.queue_cap = 4;
  rc.backoff_ms = 200;  // keep the worker mostly parked in backoff
  rc.backoff_max_ms = 400;
  rc.priority_of = [](core::SeriesId id) {
    return core::raw(id) == 1 ? core::Priority::kCritical : core::Priority::kBulk;
  };
  RelayClient client(rc);
  ASSERT_TRUE(client.start());

  core::SampleBatch bulk;
  for (int i = 0; i < 10; ++i) {
    bulk.samples.clear();
    bulk.samples.push_back({core::SeriesId{2}, i * 10, 1.0});
    client.submit(bulk);
  }
  // Bulk over the cap was shed (drop-oldest-unsent), never grown unbounded.
  EXPECT_LE(client.pending(), rc.queue_cap + 1);
  EXPECT_GT(client.stats().shed_batches, 0u);

  core::SampleBatch critical;
  for (int i = 0; i < 6; ++i) {
    critical.samples.clear();
    critical.samples.push_back({core::SeriesId{1}, i * 10, 2.0});
    EXPECT_EQ(client.submit(critical), 1u);  // never shed, cap or not
  }
  // Every critical entry is still pending (bulk was evicted to make room,
  // and critical overflows the cap rather than dropping).
  const auto stats = client.stats();
  EXPECT_GE(stats.pending, 6u);
  client.stop();
}

}  // namespace
}  // namespace hpcmon::relay
