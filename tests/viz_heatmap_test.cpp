#include "viz/heatmap.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/registry.hpp"
#include "core/strings.hpp"

namespace hpcmon::viz {
namespace {

sim::MachineShape shape() {
  sim::MachineShape s;
  s.cabinets = 2;
  s.chassis_per_cabinet = 2;
  s.blades_per_chassis = 4;
  s.nodes_per_blade = 4;
  return s;
}

TEST(HeatmapTest, MachineLayoutDimensions) {
  core::MetricRegistry reg;
  sim::Topology topo(reg, shape(), sim::FabricKind::kTorus3D);
  const auto out = machine_heatmap(
      topo, [](int node) { return static_cast<double>(node); }, {});
  // One row per chassis + cabinet label row + legend.
  const auto lines = core::split(out, '\n');
  int grid_rows = 0;
  for (const auto line : lines) {
    if (line.find('|') != std::string_view::npos) ++grid_rows;
  }
  EXPECT_EQ(grid_rows, 2);  // chassis_per_cabinet
  EXPECT_NE(out.find("c0-0"), std::string::npos);
  EXPECT_NE(out.find("c1-0"), std::string::npos);
  EXPECT_NE(out.find("scale:"), std::string::npos);
}

TEST(HeatmapTest, IntensityTracksValues) {
  core::MetricRegistry reg;
  sim::Topology topo(reg, shape(), sim::FabricKind::kTorus3D);
  HeatmapOptions opt;
  opt.scale_min = 0.0;
  opt.scale_max = 1.0;
  // Node 0 hot, everything else cold.
  const auto out = machine_heatmap(
      topo, [](int node) { return node == 0 ? 1.0 : 0.0; }, opt);
  // Exactly one hot cell in the grid (the legend also shows the glyph).
  const auto grid = out.substr(0, out.find("scale:"));
  EXPECT_EQ(std::count(grid.begin(), grid.end(), '@'), 1);
}

TEST(HeatmapTest, NanRendersAsUnknown) {
  core::MetricRegistry reg;
  sim::Topology topo(reg, shape(), sim::FabricKind::kTorus3D);
  const auto out = machine_heatmap(
      topo,
      [](int node) {
        return node == 5 ? std::nan("") : 0.5;
      },
      {});
  EXPECT_NE(out.find('?'), std::string::npos);
}

TEST(HeatmapTest, RouterGridTorusHasPlanePerCabinet) {
  core::MetricRegistry reg;
  sim::Topology topo(reg, shape(), sim::FabricKind::kTorus3D);
  const auto out = router_grid_heatmap(
      topo, [](int r) { return static_cast<double>(r % 3); }, {});
  EXPECT_NE(out.find("z=0"), std::string::npos);
  EXPECT_NE(out.find("z=1"), std::string::npos);
  EXPECT_NE(out.find("y1"), std::string::npos);
}

TEST(HeatmapTest, RouterGridDragonflyHasGroupRows) {
  core::MetricRegistry reg;
  sim::Topology topo(reg, shape(), sim::FabricKind::kDragonfly);
  const auto out = router_grid_heatmap(
      topo, [](int) { return 0.2; }, {});
  EXPECT_NE(out.find("group 0"), std::string::npos);
  EXPECT_NE(out.find("group 1"), std::string::npos);
}

TEST(HeatmapTest, DerivedScaleCoversData) {
  core::MetricRegistry reg;
  sim::Topology topo(reg, shape(), sim::FabricKind::kTorus3D);
  const auto out = machine_heatmap(
      topo, [](int node) { return 100.0 + node; }, {});
  EXPECT_NE(out.find("100"), std::string::npos);  // derived min in legend
}

}  // namespace
}  // namespace hpcmon::viz
