// Config, CSV, SeriesBuffer, Result, Rng, DriftClock.
#include <gtest/gtest.h>

#include "core/clock.hpp"
#include "core/config.hpp"
#include "core/csv.hpp"
#include "core/result.hpp"
#include "core/rng.hpp"
#include "core/series_buffer.hpp"

namespace hpcmon::core {
namespace {

TEST(ConfigTest, ParseAndTypedGet) {
  const auto r = Config::parse(
      "# comment\n"
      "interval = 60\n"
      "threshold = 2.5\n"
      "enabled = true\n"
      "name = hot store  # trailing comment\n"
      "\n");
  ASSERT_TRUE(r.is_ok());
  const auto& c = r.value();
  EXPECT_EQ(c.get_int("interval", 0), 60);
  EXPECT_DOUBLE_EQ(c.get_double("threshold", 0.0), 2.5);
  EXPECT_TRUE(c.get_bool("enabled", false));
  EXPECT_EQ(c.get_string("name", ""), "hot store");
  EXPECT_EQ(c.get_int("missing", -1), -1);
}

TEST(ConfigTest, ParseErrors) {
  EXPECT_FALSE(Config::parse("no equals sign").is_ok());
  EXPECT_FALSE(Config::parse("= value").is_ok());
}

TEST(ConfigTest, BadValueFallsBackToDefault) {
  Config c;
  c.set("x", "not_a_number");
  EXPECT_EQ(c.get_int("x", 7), 7);
  EXPECT_DOUBLE_EQ(c.get_double("x", 1.5), 1.5);
}

TEST(ConfigTest, RoundTripThroughDump) {
  Config c;
  c.set_int("a", 42);
  c.set_bool("b", true);
  const auto r = Config::parse(c.dump());
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().get_int("a", 0), 42);
  EXPECT_TRUE(r.value().get_bool("b", false));
}

TEST(CsvTest, EscapingAndRows) {
  CsvWriter w;
  w.field("plain");
  w.field("has,comma");
  w.field("has\"quote");
  w.number(static_cast<std::int64_t>(3));
  w.number(1.5);
  w.end_row();
  EXPECT_EQ(w.str(), "plain,\"has,comma\",\"has\"\"quote\",3,1.5\n");
}

TEST(SeriesBufferTest, RingSemantics) {
  SeriesBuffer buf(3);
  EXPECT_TRUE(buf.empty());
  buf.push(1, 10.0);
  buf.push(2, 20.0);
  buf.push(3, 30.0);
  buf.push(4, 40.0);  // overwrites (1, 10)
  EXPECT_EQ(buf.size(), 3u);
  EXPECT_EQ(buf.latest()->time, 4);
  EXPECT_EQ(buf.at_newest(2).time, 2);
  const auto snap = buf.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap.front().time, 2);
  EXPECT_EQ(snap.back().time, 4);
  const auto win = buf.window({3, 5});
  ASSERT_EQ(win.size(), 2u);
  EXPECT_EQ(win[0].time, 3);
}

TEST(ResultTest, OkAndError) {
  Result<int> ok(5);
  EXPECT_TRUE(ok.is_ok());
  EXPECT_EQ(ok.value(), 5);
  auto err = Result<int>::error("boom");
  EXPECT_FALSE(err.is_ok());
  EXPECT_EQ(err.message(), "boom");
  EXPECT_TRUE(Status::ok().is_ok());
  EXPECT_FALSE(Status::error("x").is_ok());
}

TEST(RngTest, DeterministicAndForkIndependent) {
  Rng a(7), b(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
  Rng c(7);
  auto child = c.fork();
  // Child stream differs from a fresh parent's continued stream.
  Rng d(7);
  d.fork();
  EXPECT_DOUBLE_EQ(c.uniform(), d.uniform());  // parents stay in sync
  (void)child;
}

TEST(RngTest, DistributionSanity) {
  Rng rng(123);
  double sum = 0.0;
  for (int i = 0; i < 4000; ++i) sum += rng.normal(5.0, 1.0);
  EXPECT_NEAR(sum / 4000.0, 5.0, 0.1);
  for (int i = 0; i < 100; ++i) {
    const auto v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
  }
}

TEST(SimClockTest, MonotoneAdvance) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0);
  clock.advance_by(kSecond);
  clock.advance_to(5 * kSecond);
  EXPECT_EQ(clock.now(), 5 * kSecond);
}

TEST(DriftClockTest, SkewAccumulates) {
  DriftClock::Params p;
  p.offset0 = 1000;
  p.skew_ppm = 100.0;  // 100us per second
  DriftClock dc(p, Rng(1));
  EXPECT_EQ(dc.local_time(0), 1000);
  // After 100 seconds: offset0 + 100ppm*100s = 1000 + 10000us.
  EXPECT_NEAR(static_cast<double>(dc.local_time(100 * kSecond) -
                                  100 * kSecond),
              11000.0, 1.0);
}

TEST(DriftClockTest, RandomWalkMoves) {
  DriftClock::Params p;
  p.walk_step = kSecond;
  p.walk_sigma = 1000;
  DriftClock dc(p, Rng(42));
  const auto off1 = dc.current_offset(10 * kSecond);
  const auto off2 = dc.current_offset(200 * kSecond);
  EXPECT_NE(off1, off2);
}

}  // namespace
}  // namespace hpcmon::core
