#include "core/strings.hpp"

#include <gtest/gtest.h>

namespace hpcmon::core {
namespace {

TEST(StringsTest, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("\ta b\n"), "a b");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(starts_with("hello world", "hello"));
  EXPECT_FALSE(starts_with("hello", "hello world"));
  EXPECT_TRUE(ends_with("file.csv", ".csv"));
  EXPECT_FALSE(ends_with("csv", "file.csv"));
}

TEST(StringsTest, GlobExact) {
  EXPECT_TRUE(glob_match("abc", "abc"));
  EXPECT_FALSE(glob_match("abc", "abd"));
  EXPECT_FALSE(glob_match("abc", "ab"));
}

TEST(StringsTest, GlobStar) {
  EXPECT_TRUE(glob_match("*", ""));
  EXPECT_TRUE(glob_match("*", "anything"));
  EXPECT_TRUE(glob_match("HSN link failed*", "HSN link failed: lane degrade"));
  EXPECT_TRUE(glob_match("*error*", "GPU double bit error count 3"));
  EXPECT_FALSE(glob_match("*error*", "all good"));
  EXPECT_TRUE(glob_match("a*b*c", "aXXbYYc"));
  EXPECT_FALSE(glob_match("a*b*c", "aXXcYYb"));
}

TEST(StringsTest, GlobQuestion) {
  EXPECT_TRUE(glob_match("a?c", "abc"));
  EXPECT_FALSE(glob_match("a?c", "ac"));
  EXPECT_TRUE(glob_match("??", "xy"));
}

TEST(StringsTest, GlobBacktracking) {
  // Patterns that require re-expanding an earlier '*'.
  EXPECT_TRUE(glob_match("*ab", "aab"));
  EXPECT_TRUE(glob_match("*aab", "aaab"));
  EXPECT_TRUE(glob_match("a*a*a", "aaaa"));
  EXPECT_FALSE(glob_match("a*a*a", "aa"));
}

TEST(StringsTest, ToLower) {
  EXPECT_EQ(to_lower("MiXeD 123"), "mixed 123");
}

TEST(StringsTest, TokenizeWords) {
  const auto toks = tokenize_words("GPU double-bit error, count=3 (node c0-0c1s2n3)");
  // '-' '.' '_' are word characters; punctuation splits.
  EXPECT_NE(std::find(toks.begin(), toks.end(), "gpu"), toks.end());
  EXPECT_NE(std::find(toks.begin(), toks.end(), "double-bit"), toks.end());
  EXPECT_NE(std::find(toks.begin(), toks.end(), "c0-0c1s2n3"), toks.end());
  EXPECT_EQ(std::find(toks.begin(), toks.end(), "count=3"), toks.end());
}

TEST(StringsTest, Strformat) {
  EXPECT_EQ(strformat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strformat("%.2f", 1.5), "1.50");
  EXPECT_EQ(strformat("empty"), "empty");
}

}  // namespace
}  // namespace hpcmon::core
