// Bounded fan-out (BufferedSubscription): a slow consumer's pending queue
// must stay capped during a storm — shedding lowest class first, oldest
// first within a class — with every shed frame counted, instead of growing
// without bound and taking the router's process down with it.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "transport/codec.hpp"
#include "transport/event_router.hpp"

namespace hpcmon::transport {
namespace {

// A distinguishable samples frame: `tag` round-trips through sweep_time.
Frame sample_frame(int tag, core::Priority pri = core::Priority::kStandard) {
  core::SampleBatch b;
  b.sweep_time = (tag + 1) * core::kSecond;
  b.samples.push_back({core::SeriesId{1}, b.sweep_time, static_cast<double>(tag)});
  auto f = encode_samples(b);
  f.priority = pri;
  return f;
}

int tag_of(const Frame& f) {
  const auto d = decode_samples(f);
  EXPECT_TRUE(d.is_ok());
  return static_cast<int>(d.value().sweep_time / core::kSecond) - 1;
}

std::vector<int> drain_tags(BufferedSubscription& sub) {
  std::vector<int> tags;
  sub.drain([&](const Frame& f) { tags.push_back(tag_of(f)); });
  return tags;
}

TEST(FanoutBoundTest, PendingNeverExceedsCap) {
  EventRouter router;
  auto sub = router.subscribe_buffered(FrameType::kSamples, 4);
  for (int i = 0; i < 10; ++i) {
    router.publish(sample_frame(i));
    EXPECT_LE(sub->pending(), 4u);
  }
  EXPECT_EQ(sub->pending(), 4u);
  EXPECT_EQ(sub->dropped(), 6u);
  EXPECT_EQ(router.stats().fanout_dropped, 6u);
  EXPECT_EQ(router.stats().fanout_pending_hwm, 4u);
  // Same-class shedding keeps the freshest frames (oldest evicted first).
  EXPECT_EQ(drain_tags(*sub), (std::vector<int>{6, 7, 8, 9}));
}

TEST(FanoutBoundTest, EvictsLowestClassOldestFirst) {
  EventRouter router;
  auto sub = router.subscribe_buffered(FrameType::kSamples, 3);
  router.publish(sample_frame(0, core::Priority::kBulk));
  router.publish(sample_frame(1, core::Priority::kStandard));
  router.publish(sample_frame(2, core::Priority::kBulk));
  EXPECT_EQ(sub->pending(), 3u);
  // Full queue, standard arrives: the OLDEST bulk frame (0) goes first.
  router.publish(sample_frame(3, core::Priority::kStandard));
  // Critical arrives: the remaining bulk frame (2) goes.
  router.publish(sample_frame(4, core::Priority::kCritical));
  // Bulk arrives while everything pending outranks it: the incoming frame
  // itself is shed and the queue is untouched.
  router.publish(sample_frame(5, core::Priority::kBulk));
  EXPECT_EQ(sub->pending(), 3u);
  EXPECT_EQ(sub->dropped(), 3u);  // evicted 0 and 2, refused 5
  EXPECT_EQ(router.stats().fanout_dropped, 3u);
  // Survivors drain in arrival order; the critical frame survived.
  EXPECT_EQ(drain_tags(*sub), (std::vector<int>{1, 3, 4}));
}

TEST(FanoutBoundTest, DrainDeliversInOrderAndClears) {
  EventRouter router;
  auto sub = router.subscribe_buffered(FrameType::kSamples, 8);
  for (int i = 0; i < 5; ++i) router.publish(sample_frame(i));
  std::vector<int> tags;
  const auto delivered =
      sub->drain([&](const Frame& f) { tags.push_back(tag_of(f)); });
  EXPECT_EQ(delivered, 5u);
  EXPECT_EQ(tags, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(sub->pending(), 0u);
  EXPECT_EQ(sub->drain([](const Frame&) {}), 0u);
  EXPECT_EQ(sub->dropped(), 0u);  // a big enough queue sheds nothing
}

TEST(FanoutBoundTest, ThrowingDrainHandlerLosesOnlyItsFrame) {
  EventRouter router;
  auto sub = router.subscribe_buffered(FrameType::kSamples, 8);
  for (int i = 0; i < 3; ++i) router.publish(sample_frame(i));
  std::vector<int> tags;
  const auto delivered = sub->drain([&](const Frame& f) {
    const int tag = tag_of(f);
    if (tag == 1) throw std::runtime_error("bad consumer");
    tags.push_back(tag);
  });
  EXPECT_EQ(delivered, 3u);  // the throw consumed its frame
  EXPECT_EQ(tags, (std::vector<int>{0, 2}));
  EXPECT_EQ(sub->pending(), 0u);
}

TEST(FanoutBoundTest, OnlyMatchingTypeIsBuffered) {
  EventRouter router;
  auto sub = router.subscribe_buffered(FrameType::kSamples, 4);
  router.publish(sample_frame(0));
  Frame logs = encode_logs({});
  router.publish(logs);  // different type: not queued, but counted dropped
  EXPECT_EQ(sub->pending(), 1u);
  EXPECT_EQ(router.stats().dropped, 1u);  // the log frame had no taker
}

TEST(FanoutBoundTest, ZeroCapIsClampedToOne) {
  EventRouter router;
  auto sub = router.subscribe_buffered(FrameType::kSamples, 0);
  EXPECT_EQ(sub->max_pending(), 1u);
  router.publish(sample_frame(0));
  router.publish(sample_frame(1));
  EXPECT_EQ(sub->pending(), 1u);
  EXPECT_EQ(sub->dropped(), 1u);
  EXPECT_EQ(drain_tags(*sub), (std::vector<int>{1}));
}

}  // namespace
}  // namespace hpcmon::transport
