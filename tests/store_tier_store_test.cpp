// TierStore + Compactor fundamentals: journaled hot ingest, aging down the
// resolution ladder, per-class retention, clean-restart recovery, and the
// stack-level circuit breaker that turns a sick disk into "stop compacting,
// keep serving".
#include <gtest/gtest.h>

#include <filesystem>

#include "core/config.hpp"
#include "resilience/fault.hpp"
#include "sim/cluster.hpp"
#include "stack/stack.hpp"
#include "store/compactor.hpp"
#include "store/tier.hpp"
#include "store/tsdb.hpp"

namespace hpcmon::store {
namespace {

using core::kMinute;
using core::kSecond;
using core::SeriesId;
using core::TimeRange;

std::string scratch_dir(const std::string& name) {
  const std::string dir = "/tmp/hpcmon_tier_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Short ladder so one test exercises ingest, aging, and expiry quickly:
/// raw for 2 min, 30s buckets for 10 min, gone afterwards. Critical keeps
/// raw twice as long as bulk.
TierPolicy short_policy() {
  TierPolicy p;
  TierSpec raw;
  raw.resolution = 0;
  raw.agg = Agg::kLast;
  raw.keep = {2 * kMinute, 2 * kMinute, 1 * kMinute};
  TierSpec t30;
  t30.resolution = 30 * kSecond;
  t30.agg = Agg::kMean;
  t30.keep = {10 * kMinute, 10 * kMinute, 5 * kMinute};
  p.tiers = {raw, t30};
  return p;
}

struct Rig {
  TimeSeriesStore hot{4};  // tiny chunks: sealing happens fast
  std::unique_ptr<TierStore> tiers;
  std::unique_ptr<Compactor> compactor;

  explicit Rig(const std::string& dir, TierPolicy policy = short_policy(),
               core::FsFaultInjector* faults = nullptr,
               core::Duration hot_window = kMinute) {
    TierStore::Options o;
    o.dir = dir;
    o.policy = std::move(policy);
    o.faults = faults;
    tiers = std::make_unique<TierStore>(std::move(o));
    EXPECT_TRUE(tiers->open().is_ok());
    CompactorOptions co;
    co.hot_window = hot_window;
    compactor = std::make_unique<Compactor>(
        std::vector<TimeSeriesStore*>{&hot}, tiers.get(), std::move(co));
  }
};

TEST(TierStoreTest, HotIngestMovesSealedChunksBehindTheWatermark) {
  const auto dir = scratch_dir("ingest");
  Rig rig(dir);
  const SeriesId s{1};
  // 20 points, 10s apart: t in [0, 190]. Chunks of 4 seal every 40s.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(rig.hot.append(s, i * 10 * kSecond, i));
  }
  const auto raw = rig.hot.query_range(s, {0, 1000 * kSecond});
  ASSERT_EQ(raw.size(), 20u);

  // Pass at t=250s: chunks whose newest point is older than 250-60=190s
  // move to tier 0 and are evicted from the hot store.
  ASSERT_TRUE(rig.compactor->run_pass(250 * kSecond).is_ok());
  EXPECT_GT(rig.tiers->file_count(), 0u);
  EXPECT_GT(rig.tiers->watermark(), 0);
  EXPECT_LT(rig.hot.query_range(s, {0, 1000 * kSecond}).size(), 20u);

  // The merged view is byte-complete: every appended point, exactly once.
  TierSpanView<TimeSeriesStore> span(rig.tiers.get(), &rig.hot);
  const auto merged = span.query_range(s, {0, 1000 * kSecond});
  ASSERT_EQ(merged.size(), raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    EXPECT_EQ(merged[i].time, raw[i].time);
    EXPECT_EQ(merged[i].value, raw[i].value);
  }
  // Nothing below the watermark is only in the hot store.
  const auto wm = rig.tiers->watermark();
  const auto cold = rig.tiers->query_range(s, {0, wm});
  const auto pre_wm = span.query_range(s, {0, wm});
  EXPECT_EQ(cold.size(), pre_wm.size());
}

TEST(TierStoreTest, AggregatesStayExactAcrossAging) {
  const auto dir = scratch_dir("aging");
  Rig rig(dir);
  const SeriesId s{7};
  double sum = 0.0;
  for (int i = 0; i < 40; ++i) {
    const double v = 3.5 * i - 20.0;
    ASSERT_TRUE(rig.hot.append(s, i * 10 * kSecond, v));
    sum += v;
  }
  // March time forward so raw files age into the 30s tier — but stay
  // inside the 30s tier's own retention, or the data (correctly) expires.
  for (int m = 5; m <= 9; ++m) {
    ASSERT_TRUE(rig.compactor->run_pass(m * kMinute).is_ok());
  }
  EXPECT_FALSE(rig.tiers->files(1).empty()) << "nothing aged into tier 1";

  // Index summaries carry the ORIGINAL raw stats through aging: whole-range
  // aggregates over the merged view equal the raw ground truth exactly.
  TierSpanView<TimeSeriesStore> span(rig.tiers.get(), &rig.hot);
  const TimeRange all{0, 1000 * kMinute};
  EXPECT_EQ(span.aggregate(s, all, Agg::kCount).value_or(-1), 40.0);
  EXPECT_DOUBLE_EQ(span.aggregate(s, all, Agg::kSum).value_or(-1), sum);
  EXPECT_DOUBLE_EQ(span.aggregate(s, all, Agg::kMin).value_or(1), -20.0);
  EXPECT_DOUBLE_EQ(span.aggregate(s, all, Agg::kMax).value_or(-1),
                   3.5 * 39 - 20.0);
  EXPECT_DOUBLE_EQ(span.aggregate(s, all, Agg::kMean).value_or(-1),
                   sum / 40.0);
  // The aged points themselves are 30s-bucketed (coarser, not raw).
  const auto aged = rig.tiers->query_range(s, all);
  for (const auto& p : aged) {
    if (!rig.tiers->files(1).empty() && p.time < 2 * kMinute) {
      EXPECT_EQ(p.time % (30 * kSecond), 0) << "aged point not bucket-aligned";
    }
  }
}

TEST(TierStoreTest, PerClassRetentionExpiresBulkFirst) {
  const auto dir = scratch_dir("perclass");
  Rig rig(dir);
  const SeriesId crit{1};
  const SeriesId bulk{2};
  CompactorOptions co;
  co.hot_window = kMinute;
  co.priority_of = [&](SeriesId id) {
    return core::raw(id) == 1 ? core::Priority::kCritical
                              : core::Priority::kBulk;
  };
  Compactor compactor({&rig.hot}, rig.tiers.get(), std::move(co));
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(rig.hot.append(crit, i * 10 * kSecond, i));
    ASSERT_TRUE(rig.hot.append(bulk, i * 10 * kSecond, i));
  }
  ASSERT_TRUE(compactor.run_pass(3 * kMinute).is_ok());
  const TimeRange all{0, 1000 * kMinute};
  // Both classes landed in the ladder (bulk's short raw retention may age
  // it straight into tier 1 within the same pass).
  EXPECT_FALSE(rig.tiers->files(0, 0).empty());
  EXPECT_FALSE(rig.tiers->query_range(bulk, all).empty());
  // At t=7min: bulk (keep 1min raw, 5min in tier 1) has fully expired;
  // critical (keep 10min in tier 1) is still queryable.
  ASSERT_TRUE(compactor.run_pass(7 * kMinute).is_ok());
  ASSERT_TRUE(compactor.run_pass(8 * kMinute).is_ok());
  EXPECT_FALSE(rig.tiers->query_range(crit, all).empty());
  EXPECT_TRUE(rig.tiers->query_range(bulk, all).empty())
      << "bulk outlived its retention";
}

TEST(TierStoreTest, CleanRestartRecoversFilesAndWatermark) {
  const auto dir = scratch_dir("restart");
  core::TimePoint wm = 0;
  std::size_t files = 0;
  std::vector<core::TimedValue> before;
  const SeriesId s{3};
  {
    Rig rig(dir);
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(rig.hot.append(s, i * 10 * kSecond, 2.0 * i));
    }
    ASSERT_TRUE(rig.compactor->run_pass(250 * kSecond).is_ok());
    wm = rig.tiers->watermark();
    files = rig.tiers->file_count();
    before = rig.tiers->query_range(s, {0, 1000 * kSecond});
    ASSERT_GT(files, 0u);
  }
  // Fresh instance on the same directory: identical durable state.
  TierStore::Options o;
  o.dir = dir;
  o.policy = short_policy();
  TierStore reopened(std::move(o));
  ASSERT_TRUE(reopened.open().is_ok());
  EXPECT_EQ(reopened.watermark(), wm);
  EXPECT_EQ(reopened.file_count(), files);
  EXPECT_EQ(reopened.quarantined_count(), 0u);
  const auto after = reopened.query_range(s, {0, 1000 * kSecond});
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(after[i].time, before[i].time);
    EXPECT_EQ(after[i].value, before[i].value);
  }
}

TEST(TierStoreTest, InjectedErrorAbortsThePassWithoutDamage) {
  const auto dir = scratch_dir("ioerror");
  resilience::FaultSpec spec;
  spec.fs_error_at = 2;  // second fs op of the pass fails
  resilience::FaultPlan plan(42, spec);
  Rig rig(dir, short_policy(), &plan);
  const SeriesId s{5};
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(rig.hot.append(s, i * 10 * kSecond, i));
  }
  EXPECT_FALSE(rig.compactor->run_pass(250 * kSecond).is_ok());
  EXPECT_EQ(plan.injected().fs_errors, 1u);
  // Sources untouched: the hot store still owns every sample.
  EXPECT_EQ(rig.hot.query_range(s, {0, 1000 * kSecond}).size(), 20u);
  // The next pass (fault exhausted) succeeds and the ladder catches up.
  EXPECT_TRUE(rig.compactor->run_pass(251 * kSecond).is_ok());
  EXPECT_GT(rig.tiers->file_count(), 0u);
  TierSpanView<TimeSeriesStore> span(rig.tiers.get(), &rig.hot);
  EXPECT_EQ(span.query_range(s, {0, 1000 * kSecond}).size(), 20u);
}

TEST(TierStoreTest, EnospcFailsPassesUntilSpaceReturns) {
  const auto dir = scratch_dir("enospc");
  resilience::FaultSpec spec;
  spec.fs_enospc_p = 1.0;  // every space-consuming op fails
  resilience::FaultPlan plan(7, spec);
  Rig rig(dir, short_policy(), &plan);
  const SeriesId s{9};
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(rig.hot.append(s, i * 10 * kSecond, i));
  }
  EXPECT_FALSE(rig.compactor->run_pass(250 * kSecond).is_ok());
  EXPECT_FALSE(rig.compactor->run_pass(260 * kSecond).is_ok());
  EXPECT_GT(plan.injected().fs_enospc, 0u);
  EXPECT_EQ(rig.hot.query_range(s, {0, 1000 * kSecond}).size(), 20u);
  plan.set_spec({});  // space recovered
  EXPECT_TRUE(rig.compactor->run_pass(270 * kSecond).is_ok());
  TierSpanView<TimeSeriesStore> span(rig.tiers.get(), &rig.hot);
  EXPECT_EQ(span.query_range(s, {0, 1000 * kSecond}).size(), 20u);
}

// Satellite: the stack wraps compactor I/O in a circuit breaker. Persistent
// fs failure opens it (passes stop being attempted — "stop compacting, keep
// serving"), and after the cooldown a half-open probe closes it again.
TEST(TierStoreTest, StackBreakerOpensUnderDiskFailureAndRecovers) {
  const std::string dir = scratch_dir("breaker");
  sim::ClusterParams params;
  params.shape.cabinets = 1;
  params.shape.chassis_per_cabinet = 1;
  params.shape.blades_per_chassis = 1;
  params.shape.nodes_per_blade = 2;
  sim::Cluster cluster(params);
  core::Config config;
  config.set("tier_dir", dir);
  config.set("chunk_points", "4");
  config.set("tier_hot_window_s", "60");
  config.set("compact_interval_s", "3600");  // we drive passes by hand
  config.set("probe_interval_s", "0");
  config.set("health_interval_s", "0");
  resilience::FaultPlan plan(3);
  stack::MonitoringStack stack(cluster, config, &plan);
  ASSERT_NE(stack.tiers(), nullptr);
  ASSERT_NE(stack.compactor(), nullptr);

  const auto m = cluster.registry().register_metric(
      {"test.flow", "u", "breaker test series", true,
       core::Priority::kStandard});
  const auto comp = cluster.registry().register_component(
      {"test.c", core::ComponentKind::kService, cluster.topology().system()});
  const auto s = cluster.registry().series(m, comp);
  std::vector<core::Sample> batch;
  for (int i = 0; i < 20; ++i) {
    batch.push_back({s, i * 10 * kSecond, double(i)});
  }
  stack.tsdb().hot().append_batch(batch);

  // Disk goes dark: every pass fails until the breaker opens and passes
  // stop being attempted at all.
  resilience::FaultSpec sick;
  sick.fs_error_p = 1.0;
  plan.set_spec(sick);
  core::TimePoint t = 300 * kSecond;
  for (int i = 0; i < 3; ++i, t += 10 * kSecond) stack.run_compaction(t);
  ASSERT_EQ(stack.compact_breaker()->state(), resilience::BreakerState::kOpen);
  const auto failed_ops = plan.fs_ops();
  stack.run_compaction(t);  // denied by the breaker: no I/O attempted
  EXPECT_EQ(plan.fs_ops(), failed_ops);
  // Serving continues throughout: the hot store still answers.
  EXPECT_EQ(stack.tsdb().hot().query_range(s, {0, 1000 * kMinute}).size(),
            20u);

  // Disk recovers; after the cooldown the half-open probe succeeds, the
  // breaker closes, and the ladder catches up.
  plan.set_spec({});
  t += core::kHour;
  stack.run_compaction(t);
  EXPECT_EQ(stack.compact_breaker()->state(),
            resilience::BreakerState::kClosed);
  EXPECT_GT(stack.tiers()->file_count(), 0u);
}

// A typo'd tier_policy must fall back to the standard ladder, not become a
// "keep nothing" ladder: every segment here is malformed (no colon, empty,
// non-numeric fields, negative resolution), so nothing survives parsing and
// the stack must behave exactly as if the knob were unset.
TEST(TierStoreTest, HostileTierPolicyFallsBackToTheStandardLadder) {
  const std::string dir = scratch_dir("tier_hostile_policy");
  sim::ClusterParams params;
  params.shape.cabinets = 1;
  params.tick = 5 * kSecond;
  params.seed = 11;
  sim::Cluster cluster(params);
  core::Config config;
  config.set("tier_dir", dir);
  config.set("chunk_points", "8");
  config.set("tier_hot_window_s", "60");
  config.set("compact_interval_s", "300");
  config.set("probe_interval_s", "0");
  config.set("health_interval_s", "0");
  config.set("tier_policy", "garbage;;;not:a,ladder;-5:x;10:,,");
  stack::MonitoringStack stack(cluster, config);
  ASSERT_NE(stack.tiers(), nullptr);

  const auto m = cluster.registry().register_metric(
      {"test.hostile", "u", "hostile policy series", true,
       core::Priority::kCritical});
  const auto comp = cluster.registry().register_component(
      {"test.h", core::ComponentKind::kService, cluster.topology().system()});
  const auto s = cluster.registry().series(m, comp);
  std::vector<core::Sample> batch;
  for (int i = 0; i < 64; ++i) {
    batch.push_back({s, i * 10 * kSecond, double(i)});
  }
  stack.tsdb().hot().append_batch(batch);

  stack.run_compaction(30 * core::kMinute);
  // Under the standard ladder the raw tier keeps critical data for days, so
  // the pass must have produced a file and the samples must still answer.
  EXPECT_GT(stack.tiers()->file_count(), 0u);
  const auto pts = stack.tiers()->query_range(
      s, {core::TimePoint{0}, 30 * core::kMinute});
  EXPECT_FALSE(pts.empty());
}

}  // namespace
}  // namespace hpcmon::store
