// Storm-mode guarantees, tested as properties: the DegradationController's
// hysteresis (consecutive-tick arming, dead band, one level per transition,
// loss sprint, shed hold) on synthetic health signals, and the ingest door's
// priority contract — critical-class samples are never dropped or rejected —
// across seeded storm schedules, overload policies, and degradation modes.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "core/priority.hpp"
#include "core/rng.hpp"
#include "ingest/pipeline.hpp"
#include "ingest/sharded_store.hpp"
#include "obs/exporter.hpp"
#include "obs/registry.hpp"
#include "resilience/degradation.hpp"

namespace hpcmon::resilience {
namespace {

using core::DegradationMode;
using core::Priority;
using core::SampleBatch;
using core::SeriesId;

HealthSignals fill(double queue_fill) {
  HealthSignals s;
  s.queue_fill = queue_fill;
  return s;
}

TEST(DegradationControllerTest, StaysNormalInFairWeather) {
  DegradationController c;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(c.evaluate(i * core::kMinute, fill(0.3)), DegradationMode::kNormal);
  }
  EXPECT_EQ(c.stats().evaluations, 100u);
  EXPECT_EQ(c.stats().transitions, 0u);
  EXPECT_EQ(c.stats().ticks_in_mode[0], 100u);
}

TEST(DegradationControllerTest, EscalationNeedsConsecutiveTicks) {
  DegradationController c;  // enter_ticks = 2
  EXPECT_EQ(c.evaluate(1, fill(0.8)), DegradationMode::kNormal);
  EXPECT_EQ(c.evaluate(2, fill(0.8)), DegradationMode::kShedBulk);
  EXPECT_EQ(c.stats().escalations, 1u);

  // A single calm reading disarms the counter: no transition on 0.8-calm-0.8.
  DegradationController d;
  EXPECT_EQ(d.evaluate(1, fill(0.8)), DegradationMode::kNormal);
  EXPECT_EQ(d.evaluate(2, fill(0.3)), DegradationMode::kNormal);
  EXPECT_EQ(d.evaluate(3, fill(0.8)), DegradationMode::kNormal);
  EXPECT_EQ(d.stats().transitions, 0u);
}

TEST(DegradationControllerTest, SustainedOverloadClimbsOneLevelAtATime) {
  DegradationController c;
  std::vector<DegradationMode> changes;
  c.on_change([&](DegradationMode m) { changes.push_back(m); });
  for (int i = 1; i <= 6; ++i) c.evaluate(i, fill(0.99));
  EXPECT_EQ(changes,
            (std::vector<DegradationMode>{DegradationMode::kShedBulk,
                                          DegradationMode::kSummarize,
                                          DegradationMode::kQuarantine}));
  EXPECT_EQ(c.mode(), DegradationMode::kQuarantine);
  // Saturated: more pressure cannot escalate past the top level.
  for (int i = 7; i <= 10; ++i) c.evaluate(i, fill(1.0));
  EXPECT_EQ(c.mode(), DegradationMode::kQuarantine);
  EXPECT_EQ(c.stats().escalations, 3u);
}

TEST(DegradationControllerTest, DeadBandHoldsAndExitNeedsConsecutiveTicks) {
  DegradationController c;  // exit[1] = 0.40, enter[2] = 0.90, exit_ticks = 3
  c.evaluate(1, fill(0.8));
  c.evaluate(2, fill(0.8));
  ASSERT_EQ(c.mode(), DegradationMode::kShedBulk);
  // The dead band between exit and the next enter threshold holds the mode.
  for (int i = 3; i < 53; ++i) {
    EXPECT_EQ(c.evaluate(i, fill(0.5)), DegradationMode::kShedBulk);
  }
  EXPECT_EQ(c.stats().transitions, 1u);
  // Calm readings de-escalate only after exit_ticks consecutive evaluations.
  EXPECT_EQ(c.evaluate(53, fill(0.3)), DegradationMode::kShedBulk);
  EXPECT_EQ(c.evaluate(54, fill(0.3)), DegradationMode::kShedBulk);
  EXPECT_EQ(c.evaluate(55, fill(0.3)), DegradationMode::kNormal);
  EXPECT_EQ(c.stats().deescalations, 1u);
}

TEST(DegradationControllerTest, AlternatingPressureNeverFlaps) {
  // The classic flap input: pressure oscillating across both thresholds
  // every tick. Consecutive-tick arming means the controller never moves.
  DegradationController c;
  for (int i = 0; i < 100; ++i) {
    c.evaluate(i, fill(i % 2 == 0 ? 0.95 : 0.2));
  }
  EXPECT_EQ(c.mode(), DegradationMode::kNormal);
  EXPECT_EQ(c.stats().transitions, 0u);
}

TEST(DegradationControllerTest, InvoluntaryLossSprintsPressureToFull) {
  DegradationController c;
  HealthSignals s;  // every fill signal quiet...
  s.lost_samples = 10;  // ...but samples were lost since the last look
  EXPECT_EQ(c.pressure(s), 1.0);
  // No NEW loss on the next reading: back to the fill signals.
  EXPECT_EQ(c.pressure(s), 0.0);
  s.lost_samples = 25;
  EXPECT_EQ(c.pressure(s), 1.0);
}

TEST(DegradationControllerTest, ActiveSheddingHoldsForItsBudgetThenProbes) {
  DegradationController c;
  c.evaluate(1, fill(0.8));
  c.evaluate(2, fill(0.8));
  ASSERT_EQ(c.mode(), DegradationMode::kShedBulk);
  // Fills look calm BECAUSE the door is shedding; fresh sheds hold pressure
  // at the exit threshold so the mode does not relax the instant the gauges
  // clear — but only for shed_hold_ticks evaluations. A degraded mode sheds
  // its own steady-state traffic, so an unbounded hold would pin the
  // controller at its own door forever.
  HealthSignals s = fill(0.1);
  const auto hold = c.config().shed_hold_ticks;
  for (std::uint32_t i = 0; i < hold; ++i) {
    s.shed_samples += 100;  // the door turned more load away
    EXPECT_EQ(c.evaluate(3 + i, s), DegradationMode::kShedBulk);
  }
  EXPECT_EQ(c.stats().transitions, 1u);
  // Budget spent, gauges still calm: even with the door still shedding, the
  // controller probes downward after exit_ticks more evaluations.
  for (std::uint32_t i = 0; i < c.config().exit_ticks; ++i) {
    s.shed_samples += 100;
    c.evaluate(3 + hold + i, s);
  }
  EXPECT_EQ(c.mode(), DegradationMode::kNormal);
  EXPECT_EQ(c.stats().deescalations, 1u);
}

TEST(DegradationControllerTest, GenuinePressureRefillsTheShedHold) {
  DegradationController c;
  c.evaluate(1, fill(0.8));
  c.evaluate(2, fill(0.8));
  ASSERT_EQ(c.mode(), DegradationMode::kShedBulk);
  // Alternate shed-only calm readings with real fill pressure: the hold
  // budget refills on every genuine reading, so the mode never relaxes
  // mid-storm no matter how long it lasts.
  HealthSignals s;
  for (int i = 3; i < 60; ++i) {
    s.queue_fill = (i % 3 == 0) ? 0.6 : 0.1;  // storm keeps resurfacing
    s.shed_samples += 50;
    EXPECT_EQ(c.evaluate(i, s), DegradationMode::kShedBulk) << "tick " << i;
  }
  EXPECT_EQ(c.stats().transitions, 1u);
}

TEST(DegradationControllerTest, SeededWalksNeverSkipLevels) {
  // Property: whatever the pressure trajectory, every committed transition
  // moves exactly one level, and the mode stays in range.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    DegradationController c;
    int prev = 0;
    std::uint64_t observed = 0;
    c.on_change([&](DegradationMode m) {
      const int now = static_cast<int>(m);
      EXPECT_EQ(std::abs(now - prev), 1) << "seed " << seed;
      prev = now;
      ++observed;
    });
    core::Rng rng(seed);
    HealthSignals s;
    for (int i = 0; i < 500; ++i) {
      s.queue_fill = rng.uniform(0.0, 1.0);
      s.dlq_fill = rng.uniform(0.0, 1.0);
      if (rng.uniform() < 0.05) s.lost_samples += 1;
      const auto m = static_cast<int>(c.evaluate(i, s));
      EXPECT_GE(m, 0);
      EXPECT_LT(m, static_cast<int>(core::kDegradationModes));
      EXPECT_EQ(m, prev);  // on_change fired for every committed change
    }
    EXPECT_EQ(c.stats().transitions, observed);
    EXPECT_EQ(c.stats().escalations + c.stats().deescalations, observed);
  }
}

TEST(DegradationControllerTest, OperatorSurfaces) {
  DegradationController c;
  obs::ObsRegistry registry;
  c.attach_to(registry);
  c.evaluate(1, fill(0.8));
  c.evaluate(2, fill(0.8));
  ASSERT_EQ(c.mode(), DegradationMode::kShedBulk);

  // The controller's instruments surface through the shared registry.
  const auto snap = registry.snapshot();
  EXPECT_DOUBLE_EQ(snap.gauge("resilience.degradation.mode"), 1.0);
  EXPECT_DOUBLE_EQ(snap.gauge("resilience.degradation.pressure"), 0.8);
  EXPECT_EQ(snap.counter("resilience.degradation.evaluations"), 2u);
  EXPECT_EQ(snap.counter("resilience.degradation.transitions"), 1u);

  // And the exporter re-ingests them as critical-class series: mode
  // telemetry must survive the storms it reports on.
  core::MetricRegistry reg;
  const auto comp = reg.register_component(
      {"resilience", core::ComponentKind::kService, core::kNoComponent});
  const auto samples =
      obs::ObsExporter().to_samples(snap, reg, comp, 3 * core::kMinute);
  ASSERT_GE(samples.size(), 3u);
  for (const auto& s : samples) {
    EXPECT_EQ(reg.series_priority(s.series), Priority::kCritical);
  }
  const auto mode = reg.find_metric("hpcmon.self.resilience.degradation.mode");
  ASSERT_TRUE(mode.has_value());
}

// ---------------------------------------------------------------------------
// Ingest-door half of the contract, driven deterministically (no workers).

ingest::IngestConfig door_config(ingest::OverloadPolicy policy,
                                 std::size_t cap) {
  ingest::IngestConfig cfg;
  cfg.queue_capacity = cap;
  cfg.policy = policy;
  // Series ids map to classes: 0-2 critical, 3-7 standard, 8+ bulk.
  cfg.priority_of = [](SeriesId id) {
    const auto v = static_cast<std::uint32_t>(id);
    if (v < 3) return Priority::kCritical;
    if (v < 8) return Priority::kStandard;
    return Priority::kBulk;
  };
  return cfg;
}

SampleBatch one(std::uint32_t series, core::TimePoint t) {
  SampleBatch b;
  b.sweep_time = t;
  b.samples.push_back({SeriesId{series}, t, 1.0});
  return b;
}

TEST(PriorityDoorTest, CriticalEvictsBulkUnderDropOldest) {
  ingest::ShardedTimeSeriesStore store(1);
  ingest::IngestPipeline pipe(store,
                              door_config(ingest::OverloadPolicy::kDropOldest, 4));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(pipe.submit(one(8, (i + 1) * core::kSecond)), 1u);  // bulk
  }
  EXPECT_EQ(pipe.queue_depth(0), 4u);
  // Critical arrives at a full queue: the oldest bulk item makes room.
  EXPECT_EQ(pipe.submit(one(0, core::kMinute)), 1u);
  const auto snap = pipe.metrics().snapshot();
  EXPECT_EQ(snap.dropped_by_class[static_cast<std::size_t>(Priority::kBulk)], 1u);
  EXPECT_EQ(snap.dropped_by_class[static_cast<std::size_t>(Priority::kCritical)],
            0u);
  EXPECT_EQ(pipe.queue_depth(0), 4u);
}

TEST(PriorityDoorTest, NothingEvictsCritical) {
  ingest::ShardedTimeSeriesStore store(1);
  ingest::IngestPipeline pipe(store,
                              door_config(ingest::OverloadPolicy::kDropOldest, 3));
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(pipe.submit(one(static_cast<std::uint32_t>(i),
                              (i + 1) * core::kSecond)),
              1u);  // queue now all critical
  }
  // Standard and bulk arrivals find nothing they may evict: the INCOMING
  // batch is dropped, the critical backlog is untouched.
  EXPECT_EQ(pipe.submit(one(4, core::kMinute)), 0u);
  EXPECT_EQ(pipe.submit(one(9, core::kMinute)), 0u);
  const auto snap = pipe.metrics().snapshot();
  EXPECT_EQ(snap.dropped_by_class[static_cast<std::size_t>(Priority::kStandard)],
            1u);
  EXPECT_EQ(snap.dropped_by_class[static_cast<std::size_t>(Priority::kBulk)], 1u);
  EXPECT_EQ(snap.dropped_by_class[static_cast<std::size_t>(Priority::kCritical)],
            0u);
  EXPECT_EQ(pipe.queue_depth(0), 3u);
}

TEST(PriorityDoorTest, CriticalBypassesReject) {
  ingest::ShardedTimeSeriesStore store(1);
  ingest::IngestPipeline pipe(store,
                              door_config(ingest::OverloadPolicy::kReject, 2));
  EXPECT_EQ(pipe.submit(one(8, core::kSecond)), 1u);
  EXPECT_EQ(pipe.submit(one(9, 2 * core::kSecond)), 1u);
  // Full queue under kReject: non-critical is refused at the door...
  EXPECT_EQ(pipe.submit(one(4, core::kMinute)), 0u);
  // ...critical falls back to evicting bulk instead of being refused.
  EXPECT_EQ(pipe.submit(one(0, core::kMinute)), 1u);
  const auto snap = pipe.metrics().snapshot();
  EXPECT_EQ(snap.rejected_by_class[static_cast<std::size_t>(Priority::kStandard)],
            1u);
  EXPECT_EQ(snap.rejected_by_class[static_cast<std::size_t>(Priority::kCritical)],
            0u);
  EXPECT_EQ(snap.dropped_by_class[static_cast<std::size_t>(Priority::kBulk)], 1u);
}

TEST(PriorityDoorTest, ModesShedAtTheDoor) {
  ingest::ShardedTimeSeriesStore store(1);
  auto cfg = door_config(ingest::OverloadPolicy::kBlock, 256);
  cfg.standard_stride = 4;
  ingest::IngestPipeline pipe(store, cfg);
  constexpr auto kStd = static_cast<std::size_t>(Priority::kStandard);
  constexpr auto kBulk = static_cast<std::size_t>(Priority::kBulk);
  core::TimePoint t = core::kSecond;

  pipe.set_mode(core::DegradationMode::kShedBulk);
  EXPECT_EQ(pipe.submit(one(8, t += core::kSecond)), 0u);  // bulk turned away
  EXPECT_EQ(pipe.submit(one(4, t += core::kSecond)), 1u);  // standard flows
  auto snap = pipe.metrics().snapshot();
  EXPECT_EQ(snap.shed_by_class[kBulk], 1u);

  pipe.set_mode(core::DegradationMode::kSummarize);
  std::size_t admitted = 0;
  for (int i = 0; i < 8; ++i) admitted += pipe.submit(one(4, t += core::kSecond));
  EXPECT_EQ(admitted, 2u);  // every 4th standard sample of the series
  snap = pipe.metrics().snapshot();
  EXPECT_EQ(snap.shed_by_class[kStd], 6u);

  pipe.set_mode(core::DegradationMode::kQuarantine);
  EXPECT_EQ(pipe.submit(one(4, t += core::kSecond)), 0u);  // standard shed
  EXPECT_EQ(pipe.submit(one(0, t += core::kSecond)), 1u);  // critical flows
  snap = pipe.metrics().snapshot();
  EXPECT_EQ(snap.shed_by_class[kStd], 7u);
  EXPECT_EQ(snap.shed_by_class[static_cast<std::size_t>(Priority::kCritical)],
            0u);

  pipe.set_mode(core::DegradationMode::kNormal);
  EXPECT_EQ(pipe.submit(one(8, t += core::kSecond)), 1u);  // bulk readmitted
  // Voluntary sheds are not involuntary losses.
  snap = pipe.metrics().snapshot();
  EXPECT_EQ(snap.lost_samples(), 0u);
}

TEST(PriorityDoorTest, UnknownSeriesDefaultsToHookResult) {
  // Without a priority hook the machinery is inert: everything is standard
  // and the seed drop-oldest semantics apply unchanged.
  ingest::ShardedTimeSeriesStore store(1);
  ingest::IngestConfig cfg;
  cfg.queue_capacity = 2;
  cfg.policy = ingest::OverloadPolicy::kDropOldest;
  ingest::IngestPipeline pipe(store, cfg);
  EXPECT_EQ(pipe.submit(one(0, core::kSecond)), 1u);
  EXPECT_EQ(pipe.submit(one(1, 2 * core::kSecond)), 1u);
  EXPECT_EQ(pipe.submit(one(2, 3 * core::kSecond)), 1u);  // evicts oldest
  const auto snap = pipe.metrics().snapshot();
  EXPECT_EQ(snap.dropped_batches, 1u);
  EXPECT_EQ(snap.dropped_by_class[static_cast<std::size_t>(Priority::kStandard)],
            1u);
}

// The headline property, end to end through real worker threads: across
// seeded storm schedules (random load mix, random mode changes, every
// overload policy), not one critical-class sample is lost — every single one
// is queryable from the store afterwards.
TEST(PriorityDoorTest, SeededStormsNeverLoseCritical) {
  constexpr std::uint32_t kCriticalSeries = 3;
  constexpr int kSubmits = 400;
  const ingest::OverloadPolicy policies[] = {
      ingest::OverloadPolicy::kBlock, ingest::OverloadPolicy::kDropOldest,
      ingest::OverloadPolicy::kReject};
  for (const auto policy : policies) {
    for (std::uint64_t seed = 11; seed <= 14; ++seed) {
      ingest::ShardedTimeSeriesStore store(2);
      auto cfg = door_config(policy, 4);  // tiny queues: constant overload
      ingest::IngestPipeline pipe(store, cfg);
      pipe.start();
      core::Rng rng(seed);
      for (int i = 0; i < kSubmits; ++i) {
        SampleBatch b;
        b.sweep_time = (i + 1) * core::kSecond;
        for (std::uint32_t s = 0; s < kCriticalSeries; ++s) {
          b.samples.push_back({SeriesId{s}, b.sweep_time, 1.0});
        }
        const auto extras = rng.uniform_int(0, 24);
        for (std::int64_t e = 0; e < extras; ++e) {
          const auto s = static_cast<std::uint32_t>(rng.uniform_int(3, 15));
          b.samples.push_back(
              {SeriesId{s}, b.sweep_time + e + 1, rng.uniform()});
        }
        pipe.submit(b);
        if (rng.uniform() < 0.02) {
          pipe.set_mode(static_cast<core::DegradationMode>(
              rng.uniform_int(0, core::kDegradationModes - 1)));
        }
      }
      pipe.drain();
      pipe.stop();
      const auto snap = pipe.metrics().snapshot();
      constexpr auto kCrit = static_cast<std::size_t>(Priority::kCritical);
      EXPECT_EQ(snap.dropped_by_class[kCrit], 0u)
          << "policy " << static_cast<int>(policy) << " seed " << seed;
      EXPECT_EQ(snap.rejected_by_class[kCrit], 0u);
      EXPECT_EQ(snap.shed_by_class[kCrit], 0u);
      EXPECT_EQ(snap.submitted_by_class[kCrit],
                static_cast<std::uint64_t>(kSubmits) * kCriticalSeries);
      // Byte-complete: every critical sample is in the store.
      for (std::uint32_t s = 0; s < kCriticalSeries; ++s) {
        EXPECT_EQ(store.query_range(SeriesId{s}, {0, core::kDay}).size(),
                  static_cast<std::size_t>(kSubmits))
            << "series " << s;
      }
    }
  }
}

}  // namespace
}  // namespace hpcmon::resilience
