// core::TopoPath: the one shared cname parser/formatter. These tests pin the
// canonical format at every level, the parse rejections, and the dense-index
// arithmetic that sim::Topology's registration order and viz::machine_heatmap
// both rely on.
#include "core/topo_path.hpp"

#include <gtest/gtest.h>

#include "sim/topology.hpp"

namespace hpcmon::core {
namespace {

TEST(TopoPath, FormatsEveryLevel) {
  TopoPath p;
  EXPECT_EQ(p.format(), "system");
  EXPECT_EQ(p.level(), TopoPath::Level::kSystem);
  p.cabinet = 3;
  EXPECT_EQ(p.format(), "c3-0");
  EXPECT_EQ(p.level(), TopoPath::Level::kCabinet);
  p.chassis = 2;
  EXPECT_EQ(p.format(), "c3-0c2");
  EXPECT_EQ(p.level(), TopoPath::Level::kChassis);
  p.slot = 5;
  EXPECT_EQ(p.format(), "c3-0c2s5");
  EXPECT_EQ(p.level(), TopoPath::Level::kBlade);
  p.node = 1;
  EXPECT_EQ(p.format(), "c3-0c2s5n1");
  EXPECT_EQ(p.level(), TopoPath::Level::kNode);
}

TEST(TopoPath, ParseRoundTripsEveryLevel) {
  for (const char* cname :
       {"system", "c0-0", "c12-0", "c3-0c2", "c3-0c2s7", "c3-0c2s7n3"}) {
    const auto p = TopoPath::parse(cname);
    ASSERT_TRUE(p.has_value()) << cname;
    EXPECT_TRUE(p->valid()) << cname;
    EXPECT_EQ(p->format(), cname);
  }
  // Row is parsed faithfully even though today's machines are single-row.
  const auto rowed = TopoPath::parse("c1-2c0s0n0");
  ASSERT_TRUE(rowed.has_value());
  EXPECT_EQ(rowed->row, 2);
  EXPECT_EQ(rowed->format(), "c1-2c0s0n0");
}

TEST(TopoPath, ParseRejectsMalformedNames) {
  for (const char* bad :
       {"", "c", "c1", "c1-", "c-0", "1-0", "c1-0x", "c1-0c", "c1-0cs2",
        "c1-0c2s", "c1-0c2n1", "c1-0c2s3n", "c1-0c2s3n1x", "c1-0c2s3n1n2",
        "system ", "Systems", "c1-0 ", " c1-0", "c999999999999-0"}) {
    EXPECT_FALSE(TopoPath::parse(bad).has_value()) << bad;
  }
}

TEST(TopoPath, ValidRequiresPrefixCoordinates) {
  TopoPath p;
  p.node = 2;  // node without blade/chassis/cabinet
  EXPECT_FALSE(p.valid());
  p.slot = 1;
  EXPECT_FALSE(p.valid());
  p.chassis = 0;
  EXPECT_FALSE(p.valid());
  p.cabinet = 0;
  EXPECT_TRUE(p.valid());
  p.row = -1;
  EXPECT_FALSE(p.valid());
}

TEST(TopoPath, NodeIndexRoundTrip) {
  const TopoPath::Dims dims{/*chassis_per_cabinet=*/3,
                            /*blades_per_chassis=*/4,
                            /*nodes_per_blade=*/2};
  const int total = 2 * 3 * 4 * 2;  // two cabinets' worth
  for (int i = 0; i < total; ++i) {
    const auto p = TopoPath::of_node_index(i, dims);
    EXPECT_EQ(p.level(), TopoPath::Level::kNode);
    EXPECT_EQ(p.node_index(dims), i);
    // Round-trip through the formatted cname too.
    const auto parsed = TopoPath::parse(p.format());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->node_index(dims), i);
  }
  // Out-of-range coordinates and shallow paths refuse an index.
  TopoPath shallow;
  shallow.cabinet = 0;
  EXPECT_EQ(shallow.node_index(dims), -1);
  auto oob = TopoPath::of_node_index(0, dims);
  oob.node = dims.nodes_per_blade;
  EXPECT_EQ(oob.node_index(dims), -1);
}

TEST(TopoPath, BladeIndexMatchesRegistrationOrder) {
  const TopoPath::Dims dims{2, 3, 4};
  int expect = 0;
  for (int cab = 0; cab < 2; ++cab) {
    for (int ch = 0; ch < 2; ++ch) {
      for (int s = 0; s < 3; ++s) {
        TopoPath p;
        p.cabinet = cab;
        p.chassis = ch;
        p.slot = s;
        EXPECT_EQ(p.blade_index(dims), expect++) << p.format();
      }
    }
  }
  TopoPath chassis_only;
  chassis_only.cabinet = 0;
  chassis_only.chassis = 0;
  EXPECT_EQ(chassis_only.blade_index(dims), -1);
}

// The registry names produced by sim::Topology ARE canonical TopoPath cnames:
// parsing a node's registered name recovers its dense registry index.
TEST(TopoPath, AgreesWithTopologyRegistration) {
  MetricRegistry registry;
  sim::MachineShape shape;
  shape.cabinets = 2;
  shape.chassis_per_cabinet = 2;
  shape.blades_per_chassis = 3;
  shape.nodes_per_blade = 2;
  sim::Topology topo(registry, shape, sim::FabricKind::kDragonfly);
  const TopoPath::Dims dims{shape.chassis_per_cabinet,
                            shape.blades_per_chassis, shape.nodes_per_blade};
  for (int i = 0; i < topo.num_nodes(); ++i) {
    const auto& name = registry.component(topo.node(i)).name;
    const auto p = TopoPath::parse(name);
    ASSERT_TRUE(p.has_value()) << name;
    EXPECT_EQ(p->node_index(dims), i) << name;
    EXPECT_EQ(TopoPath::of_node_index(i, dims).format(), name);
  }
  for (int c = 0; c < topo.num_cabinets(); ++c) {
    const auto& name = registry.component(topo.cabinet(c)).name;
    const auto p = TopoPath::parse(name);
    ASSERT_TRUE(p.has_value()) << name;
    EXPECT_EQ(p->level(), TopoPath::Level::kCabinet);
    EXPECT_EQ(p->cabinet, c);
  }
  EXPECT_EQ(registry.component(topo.system()).name, "system");
}

}  // namespace
}  // namespace hpcmon::core
