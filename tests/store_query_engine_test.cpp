// Query-engine tests: chunk summaries, streaming cursors, stepped
// aggregation, scan(), and the sharded scatter-gather fan-out. The key
// property throughout: the summary/cursor fast paths must be observationally
// equivalent to decompress-everything-then-filter.
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "ingest/sharded_store.hpp"
#include "store/cursor.hpp"
#include "store/tsdb.hpp"

namespace hpcmon::store {
namespace {

using core::SeriesId;
using core::TimedValue;
using core::TimePoint;
using core::TimeRange;

constexpr SeriesId kS0{0};

std::vector<TimedValue> random_series(std::uint64_t seed, int n) {
  core::Rng rng(seed);
  std::vector<TimedValue> pts;
  TimePoint t = 0;
  double level = rng.uniform(50.0, 400.0);
  for (int i = 0; i < n; ++i) {
    t += core::kSecond + rng.uniform_int(0, core::kSecond);
    level += rng.normal(0.0, 2.0);
    pts.push_back({t, level});
  }
  return pts;
}

// TimeSeriesStore owns mutexes and can't move; fill in place.
void fill(TimeSeriesStore& store, const std::vector<TimedValue>& pts) {
  for (const auto& p : pts) EXPECT_TRUE(store.append(kS0, p.time, p.value));
}

// -- Summaries ----------------------------------------------------------------

TEST(ChunkSummaryTest, ComputedAtSealTime) {
  std::vector<TimedValue> pts{{10, 3.0}, {20, -1.0}, {30, 7.0}, {40, 2.0}};
  const auto chunk = Chunk::compress(pts);
  const auto& s = chunk.summary();
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.sum, 11.0);
  EXPECT_DOUBLE_EQ(s.min, -1.0);
  EXPECT_DOUBLE_EQ(s.max, 7.0);
  EXPECT_DOUBLE_EQ(s.first, 3.0);
  EXPECT_DOUBLE_EQ(s.last, 2.0);
}

TEST(ChunkSummaryTest, SurvivesSerializeRoundTrip) {
  const auto pts = random_series(7, 200);
  const auto chunk = Chunk::compress(pts);
  const auto back = Chunk::deserialize(chunk.serialize());
  EXPECT_EQ(back.summary(), chunk.summary());
  EXPECT_NE(back.id(), chunk.id());  // a distinct generation, never aliased
  EXPECT_NE(back.id(), 0u);
}

TEST(ChunkSummaryTest, MergeMatchesFlatAccumulation) {
  const auto pts = random_series(11, 300);
  ChunkSummary flat;
  for (const auto& p : pts) flat.add(p);
  ChunkSummary merged;
  ChunkSummary a, b;
  for (int i = 0; i < 150; ++i) a.add(pts[i]);
  for (int i = 150; i < 300; ++i) b.add(pts[i]);
  merged.merge(a);
  merged.merge(b);
  EXPECT_EQ(merged.count, flat.count);
  EXPECT_DOUBLE_EQ(merged.sum, flat.sum);
  EXPECT_DOUBLE_EQ(merged.min, flat.min);
  EXPECT_DOUBLE_EQ(merged.max, flat.max);
  EXPECT_DOUBLE_EQ(merged.first, flat.first);
  EXPECT_DOUBLE_EQ(merged.last, flat.last);
}

// -- Cursor -------------------------------------------------------------------

TEST(ChunkCursorTest, StreamsExactlyWhatDecompressReturns) {
  const auto pts = random_series(23, 700);
  const auto chunk = Chunk::compress(pts);
  ChunkCursor cursor(chunk);
  std::vector<TimedValue> streamed;
  TimedValue p;
  while (cursor.next(p)) streamed.push_back(p);
  EXPECT_EQ(streamed, chunk.decompress());
  EXPECT_EQ(streamed, pts);
  EXPECT_EQ(cursor.remaining(), 0u);
}

TEST(ChunkCursorTest, EmptyChunkYieldsNothing) {
  Chunk empty;
  ChunkCursor cursor(empty);
  TimedValue p;
  EXPECT_FALSE(cursor.next(p));
}

// -- Aggregate/downsample equivalence ----------------------------------------

// The reference semantics: what the pre-summary store computed.
std::optional<double> reference_aggregate(const TimeSeriesStore& store,
                                          const TimeRange& range, Agg agg) {
  return aggregate_points(store.query_range(kS0, range), agg);
}

TEST(QueryEngineTest, AggregateMatchesFullDecodeAcrossRangeShapes) {
  const auto pts = random_series(42, 2000);
  TimeSeriesStore store(128);  // ~15 sealed chunks + head
  fill(store, pts);
  const TimePoint lo = pts.front().time;
  const TimePoint hi = pts.back().time;
  const std::vector<TimeRange> ranges = {
      {0, hi + core::kMinute},              // everything
      {lo, hi},                             // half-open: drops the last point
      {lo + (hi - lo) / 4, hi - (hi - lo) / 4},  // interior, chunk-straddling
      {lo + core::kSecond, lo + 2 * core::kSecond},  // inside one chunk
      {hi, hi + core::kMinute},             // exactly the last point
      {hi + 1, hi + 2},                     // past the end: empty
  };
  for (const auto& range : ranges) {
    for (const auto agg : {Agg::kSum, Agg::kMean, Agg::kMin, Agg::kMax,
                           Agg::kCount, Agg::kLast}) {
      const auto fast = store.aggregate(kS0, range, agg);
      const auto slow = reference_aggregate(store, range, agg);
      ASSERT_EQ(fast.has_value(), slow.has_value())
          << "range [" << range.begin << "," << range.end << ") "
          << to_string(agg);
      if (!fast) continue;
      if (agg == Agg::kSum || agg == Agg::kMean) {
        // Summed per-chunk then merged: same order, but association differs.
        EXPECT_NEAR(*fast, *slow, std::abs(*slow) * 1e-12 + 1e-12);
      } else {
        EXPECT_DOUBLE_EQ(*fast, *slow);
      }
    }
  }
  // Covered chunks really were answered from summaries, not decoded.
  EXPECT_GT(store.query_stats().summary_chunks, 0u);
}

TEST(QueryEngineTest, DownsampleMatchesFullDecode) {
  const auto pts = random_series(77, 3000);
  TimeSeriesStore store(100);
  fill(store, pts);
  const TimeRange range{0, pts.back().time + core::kMinute};
  for (const auto bucket : {core::kMinute, 10 * core::kMinute, core::kHour}) {
    for (const auto agg :
         {Agg::kSum, Agg::kMean, Agg::kMin, Agg::kMax, Agg::kCount,
          Agg::kLast}) {
      const auto fast = store.downsample(kS0, range, bucket, agg);
      // Reference: bucket the materialized points the way the old code did.
      const auto all = store.query_range(kS0, range);
      std::vector<TimedValue> slow;
      std::size_t i = 0;
      while (i < all.size()) {
        const TimePoint bs =
            range.begin + (all[i].time - range.begin) / bucket * bucket;
        std::vector<TimedValue> in_bucket;
        while (i < all.size() && all[i].time < bs + bucket) {
          in_bucket.push_back(all[i]);
          ++i;
        }
        if (auto v = aggregate_points(in_bucket, agg)) slow.push_back({bs, *v});
      }
      ASSERT_EQ(fast.size(), slow.size()) << to_string(agg);
      for (std::size_t k = 0; k < fast.size(); ++k) {
        EXPECT_EQ(fast[k].time, slow[k].time);
        if (agg == Agg::kSum || agg == Agg::kMean) {
          EXPECT_NEAR(fast[k].value, slow[k].value,
                      std::abs(slow[k].value) * 1e-12 + 1e-12);
        } else {
          EXPECT_DOUBLE_EQ(fast[k].value, slow[k].value);
        }
      }
    }
  }
}

TEST(QueryEngineTest, LatestAnsweredFromSummaryWithoutDecode) {
  TimeSeriesStore store(4);
  for (int i = 1; i <= 8; ++i) {
    store.append(kS0, i * core::kSecond, i * 1.5);  // two sealed chunks
  }
  const auto qs_before = store.query_stats();
  const auto l = store.latest(kS0);
  ASSERT_TRUE(l.has_value());
  EXPECT_EQ(l->time, 8 * core::kSecond);
  EXPECT_DOUBLE_EQ(l->value, 12.0);
  const auto qs_after = store.query_stats();
  EXPECT_EQ(qs_after.cache_misses, qs_before.cache_misses);  // no decode
}

// -- Empty-range and boundary edges (satellite) -------------------------------

TEST(QueryEngineTest, EmptyRangeReturnsNothingEverywhere) {
  const auto pts = random_series(5, 500);
  TimeSeriesStore store(64);
  fill(store, pts);
  const TimePoint mid = pts[pts.size() / 2].time;
  for (const TimeRange empty :
       {TimeRange{mid, mid}, TimeRange{mid, mid - core::kSecond},
        TimeRange{pts.front().time, pts.front().time},
        TimeRange{pts.back().time, pts.back().time}}) {
    EXPECT_TRUE(store.query_range(kS0, empty).empty());
    EXPECT_FALSE(store.aggregate(kS0, empty, Agg::kCount).has_value());
    EXPECT_TRUE(
        store.downsample(kS0, empty, core::kMinute, Agg::kMean).empty());
    EXPECT_EQ(store.scan(kS0, empty, [](const TimedValue&) { return true; }),
              0u);
  }
}

TEST(QueryEngineTest, ExactMinMaxBoundaries) {
  TimeSeriesStore store(4);
  // One sealed chunk [1s..4s] and head [5s..6s].
  for (int i = 1; i <= 6; ++i) store.append(kS0, i * core::kSecond, 1.0 * i);
  const TimePoint min = 1 * core::kSecond;
  const TimePoint max = 4 * core::kSecond;  // sealed chunk's max_time
  // [min, min+1): exactly the first point.
  EXPECT_DOUBLE_EQ(*store.aggregate(kS0, {min, min + 1}, Agg::kSum), 1.0);
  // [min, max): the half-open end excludes the chunk's max point.
  EXPECT_DOUBLE_EQ(*store.aggregate(kS0, {min, max}, Agg::kCount), 3.0);
  // [max, max+1): exactly the chunk's last point.
  EXPECT_DOUBLE_EQ(*store.aggregate(kS0, {max, max + 1}, Agg::kSum), 4.0);
  // [min, max+1): the whole chunk, summary-covered.
  const auto before = store.query_stats().summary_chunks;
  EXPECT_DOUBLE_EQ(*store.aggregate(kS0, {min, max + 1}, Agg::kSum), 10.0);
  EXPECT_EQ(store.query_stats().summary_chunks, before + 1);
}

// -- scan() -------------------------------------------------------------------

TEST(QueryEngineTest, ScanVisitsExactlyQueryRange) {
  const auto pts = random_series(13, 1500);
  TimeSeriesStore store(128);
  fill(store, pts);
  const TimeRange range{pts[100].time, pts[1200].time};
  std::vector<TimedValue> streamed;
  const auto n = store.scan(kS0, range, [&](const TimedValue& p) {
    streamed.push_back(p);
    return true;
  });
  EXPECT_EQ(streamed, store.query_range(kS0, range));
  EXPECT_EQ(n, streamed.size());
}

TEST(QueryEngineTest, ScanStopsEarlyWhenVisitorDeclines) {
  const auto pts = random_series(19, 1000);
  TimeSeriesStore store(64);
  fill(store, pts);
  std::size_t seen = 0;
  const auto n = store.scan(kS0, {0, pts.back().time + 1},
                            [&](const TimedValue&) { return ++seen < 10; });
  EXPECT_EQ(n, 10u);
  EXPECT_EQ(seen, 10u);
}

// -- Sharded scatter-gather ---------------------------------------------------

TEST(QueryEngineTest, ShardedAggregateManyMatchesPerSeriesCalls) {
  ingest::ShardedTimeSeriesStore store(4, 64);
  core::Rng rng(3);
  std::vector<SeriesId> ids;
  for (std::uint32_t s = 0; s < 24; ++s) {
    ids.push_back(SeriesId{s});
    TimePoint t = 0;
    for (int i = 0; i < 300; ++i) {
      t += core::kSecond;
      store.append(SeriesId{s}, t, rng.uniform(0.0, 100.0));
    }
  }
  const TimeRange range{10 * core::kSecond, 250 * core::kSecond};
  const auto many = store.aggregate_many(ids, range, Agg::kSum);
  ASSERT_EQ(many.size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto one = store.aggregate(ids[i], range, Agg::kSum);
    ASSERT_EQ(many[i].has_value(), one.has_value());
    if (one) EXPECT_DOUBLE_EQ(*many[i], *one);
  }
  const auto ds_many =
      store.downsample_many(ids, range, core::kMinute, Agg::kMean);
  ASSERT_EQ(ds_many.size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ds_many[i],
              store.downsample(ids[i], range, core::kMinute, Agg::kMean));
  }
  // Merged self-metrics see the fan-out.
  EXPECT_GE(store.query_stats().queries, 2 * ids.size());
}

TEST(QueryEngineTest, QueryStatsCountersMove) {
  const auto pts = random_series(31, 1000);
  TimeSeriesStore store(100);
  fill(store, pts);
  const TimeRange range{0, pts.back().time + 1};
  (void)store.query_range(kS0, range);
  const auto cold = store.query_stats();
  EXPECT_GT(cold.queries, 0u);
  EXPECT_GT(cold.cache_misses, 0u);
  EXPECT_EQ(cold.cache_hits, 0u);
  (void)store.query_range(kS0, range);  // dashboard refresh
  const auto warm = store.query_stats();
  EXPECT_EQ(warm.cache_misses, cold.cache_misses);
  EXPECT_GT(warm.cache_hits, 0u);
  EXPECT_GT(warm.cache_entries, 0u);
}

}  // namespace
}  // namespace hpcmon::store
