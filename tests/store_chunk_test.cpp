#include "store/chunk.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "core/rng.hpp"
#include "store/bitstream.hpp"

namespace hpcmon::store {
namespace {

using core::TimedValue;

TEST(BitstreamTest, RoundTripMixedWidths) {
  BitWriter w;
  w.write(0b101, 3);
  w.write(0xDEADBEEF, 32);
  w.write_bit(true);
  w.write(0x1234567890ABCDEFull, 64);
  BitReader r(w.bytes());
  EXPECT_EQ(r.read(3), 0b101u);
  EXPECT_EQ(r.read(32), 0xDEADBEEFu);
  EXPECT_TRUE(r.read_bit());
  EXPECT_EQ(r.read(64), 0x1234567890ABCDEFull);
  EXPECT_FALSE(r.eof());
}

TEST(BitstreamTest, ReaderReportsEof) {
  BitWriter w;
  w.write(0xFF, 8);
  BitReader r(w.bytes());
  EXPECT_EQ(r.read(8), 0xFFu);
  r.read(1);
  EXPECT_TRUE(r.eof());
}

std::vector<TimedValue> regular_series(std::size_t n) {
  std::vector<TimedValue> pts;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({static_cast<core::TimePoint>(i) * core::kMinute,
                   200.0 + std::sin(static_cast<double>(i) * 0.1) * 5.0});
  }
  return pts;
}

TEST(ChunkTest, RoundTripRegularSeries) {
  const auto pts = regular_series(500);
  const auto chunk = Chunk::compress(pts);
  EXPECT_EQ(chunk.count(), 500u);
  EXPECT_EQ(chunk.min_time(), pts.front().time);
  EXPECT_EQ(chunk.max_time(), pts.back().time);
  EXPECT_EQ(chunk.decompress(), pts);
}

TEST(ChunkTest, CompressionBeatsRawOnTelemetry) {
  // Constant-interval timestamps + slowly varying values: the typical
  // monitoring series. Raw = 16 bytes/point.
  const auto pts = regular_series(1000);
  const auto chunk = Chunk::compress(pts);
  EXPECT_LT(chunk.byte_size(), pts.size() * 16 / 2)
      << "expected at least 2x compression on smooth telemetry";
}

TEST(ChunkTest, ConstantSeriesCompressesExtremely) {
  std::vector<TimedValue> pts;
  for (int i = 0; i < 1000; ++i) {
    pts.push_back({i * core::kSecond, 42.0});
  }
  const auto chunk = Chunk::compress(pts);
  // dod = 0 and xor = 0 after the header: ~2 bits/point.
  EXPECT_LT(chunk.byte_size(), 300u);
  EXPECT_EQ(chunk.decompress(), pts);
}

TEST(ChunkTest, SinglePointAndEmpty) {
  EXPECT_TRUE(Chunk::compress({}).empty());
  const std::vector<TimedValue> one{{123456, -7.25}};
  const auto chunk = Chunk::compress(one);
  EXPECT_EQ(chunk.decompress(), one);
}

TEST(ChunkTest, SerializeDeserializeRoundTrip) {
  const auto pts = regular_series(100);
  const auto chunk = Chunk::compress(pts);
  const auto blob = chunk.serialize();
  const auto back = Chunk::deserialize(blob);
  EXPECT_EQ(back.count(), chunk.count());
  EXPECT_EQ(back.min_time(), chunk.min_time());
  EXPECT_EQ(back.max_time(), chunk.max_time());
  EXPECT_EQ(back.decompress(), pts);
}

TEST(ChunkTest, DeserializeRejectsGarbage) {
  EXPECT_TRUE(Chunk::deserialize({1, 2, 3}).empty());
  EXPECT_TRUE(Chunk::deserialize({}).empty());
}

TEST(ChunkTest, OverlapPredicate) {
  const auto chunk = Chunk::compress(regular_series(10));  // [0, 9min]
  EXPECT_TRUE(chunk.overlaps({0, core::kMinute}));
  EXPECT_TRUE(chunk.overlaps({9 * core::kMinute, 10 * core::kMinute}));
  EXPECT_FALSE(chunk.overlaps({10 * core::kMinute, 20 * core::kMinute}));
  EXPECT_FALSE(chunk.overlaps({-5, 0}));
}

TEST(ChunkTest, OverlapsRejectsEmptyRange) {
  const auto chunk = Chunk::compress(regular_series(10));  // [0, 9min]
  // begin == end is the empty half-open range: it contains no instant, so it
  // overlaps nothing — even when that instant is inside the chunk.
  EXPECT_FALSE(chunk.overlaps({5 * core::kMinute, 5 * core::kMinute}));
  EXPECT_FALSE(chunk.overlaps({0, 0}));
  EXPECT_FALSE(chunk.overlaps({9 * core::kMinute, 9 * core::kMinute}));
  // Inverted ranges are empty too.
  EXPECT_FALSE(chunk.overlaps({8 * core::kMinute, 2 * core::kMinute}));
}

TEST(ChunkTest, OverlapsExactBoundaries) {
  const auto chunk = Chunk::compress(regular_series(10));  // [0, 9min]
  const core::TimePoint min = chunk.min_time();
  const core::TimePoint max = chunk.max_time();
  // A range whose half-open end lands exactly on min_time excludes it.
  EXPECT_FALSE(chunk.overlaps({min - core::kMinute, min}));
  EXPECT_TRUE(chunk.overlaps({min - core::kMinute, min + 1}));
  EXPECT_TRUE(chunk.overlaps({min, min + 1}));
  // A range beginning exactly at max_time includes it (inclusive begin).
  EXPECT_TRUE(chunk.overlaps({max, max + core::kMinute}));
  EXPECT_FALSE(chunk.overlaps({max + 1, max + core::kMinute}));
}

// -- Malformed-input sweep ----------------------------------------------------
// Contract: Chunk::deserialize returns the empty chunk for ANY input it
// cannot fully validate — truncated headers, framing mismatches, garbage
// bitstreams — never a partly-decoded or lying chunk.

std::vector<std::uint8_t> valid_blob() {
  return Chunk::compress(regular_series(50)).serialize();
}

TEST(ChunkTest, DeserializeRejectsTruncatedHeader) {
  const auto blob = valid_blob();
  for (std::size_t len = 0; len < 24; ++len) {
    const std::vector<std::uint8_t> cut(blob.begin(), blob.begin() + len);
    EXPECT_TRUE(Chunk::deserialize(cut).empty()) << "header length " << len;
  }
}

TEST(ChunkTest, DeserializeRejectsTruncatedPayload) {
  const auto blob = valid_blob();
  for (const std::size_t drop : {std::size_t{1}, std::size_t{7},
                                 blob.size() - 25}) {
    const std::vector<std::uint8_t> cut(blob.begin(), blob.end() - drop);
    EXPECT_TRUE(Chunk::deserialize(cut).empty()) << "dropped " << drop;
  }
}

TEST(ChunkTest, DeserializeRejectsCountMismatch) {
  for (const std::int32_t delta : {+1, -1, +1000}) {
    auto blob = valid_blob();
    std::uint32_t count = 0;
    std::memcpy(&count, blob.data(), 4);
    count = static_cast<std::uint32_t>(static_cast<std::int64_t>(count) + delta);
    std::memcpy(blob.data(), &count, 4);
    EXPECT_TRUE(Chunk::deserialize(blob).empty()) << "count delta " << delta;
  }
}

TEST(ChunkTest, DeserializeRejectsPayloadLenMismatch) {
  for (const std::int32_t delta : {+1, -1, +4096}) {
    auto blob = valid_blob();
    std::uint32_t len = 0;
    std::memcpy(&len, blob.data() + 20, 4);
    len = static_cast<std::uint32_t>(static_cast<std::int64_t>(len) + delta);
    std::memcpy(blob.data() + 20, &len, 4);
    EXPECT_TRUE(Chunk::deserialize(blob).empty()) << "len delta " << delta;
  }
}

TEST(ChunkTest, DeserializeRejectsCorruptedEndpoints) {
  {
    auto blob = valid_blob();  // shift min_time: first decoded point mismatch
    std::uint64_t min = 0;
    std::memcpy(&min, blob.data() + 4, 8);
    min += 1;
    std::memcpy(blob.data() + 4, &min, 8);
    EXPECT_TRUE(Chunk::deserialize(blob).empty());
  }
  {
    auto blob = valid_blob();  // shift max_time: last decoded point mismatch
    std::uint64_t max = 0;
    std::memcpy(&max, blob.data() + 12, 8);
    max += 1;
    std::memcpy(blob.data() + 12, &max, 8);
    EXPECT_TRUE(Chunk::deserialize(blob).empty());
  }
  {
    auto blob = valid_blob();  // min > max
    std::uint64_t min = 0, max = 0;
    std::memcpy(&min, blob.data() + 4, 8);
    std::memcpy(&max, blob.data() + 12, 8);
    std::memcpy(blob.data() + 4, &max, 8);
    std::memcpy(blob.data() + 12, &min, 8);
    EXPECT_TRUE(Chunk::deserialize(blob).empty());
  }
}

TEST(ChunkTest, DeserializeRejectsGarbageBitstream) {
  // Keep the valid header, replace the payload with noise: decode-validation
  // must reject it (wrong endpoints, non-monotonic times, or early EOF) and
  // never crash or emit partial data.
  core::Rng rng(0xBADBADull);
  for (int trial = 0; trial < 50; ++trial) {
    auto blob = valid_blob();
    for (std::size_t i = 24; i < blob.size(); ++i) {
      blob[i] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    EXPECT_TRUE(Chunk::deserialize(blob).empty()) << "trial " << trial;
  }
}

TEST(ChunkTest, DeserializeRejectsBitFlips) {
  // Single bit flips anywhere in the blob must never yield a chunk that
  // contradicts its own header. (Most flips are rejected outright; a flip in
  // a value's XOR residual can legitimately decode — values carry no
  // checksum — but times/count/framing must still agree.)
  const auto blob = valid_blob();
  core::Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    auto copy = blob;
    const auto bit = rng.uniform_int(0, static_cast<std::int64_t>(copy.size()) * 8 - 1);
    copy[static_cast<std::size_t>(bit / 8)] ^=
        static_cast<std::uint8_t>(1u << (bit % 8));
    const auto chunk = Chunk::deserialize(copy);
    if (chunk.empty()) continue;
    const auto pts = chunk.decompress();
    ASSERT_EQ(pts.size(), chunk.count());
    EXPECT_EQ(pts.front().time, chunk.min_time());
    EXPECT_EQ(pts.back().time, chunk.max_time());
  }
}

// Property sweep: random series shapes must round-trip exactly.
struct ChunkPropertyCase {
  const char* name;
  core::Duration base_interval;
  double jitter_frac;     // interval jitter
  double value_scale;
  bool integer_values;
  bool include_specials;  // zeros / negatives / huge magnitudes
};

class ChunkPropertyTest : public ::testing::TestWithParam<ChunkPropertyCase> {};

TEST_P(ChunkPropertyTest, RandomSeriesRoundTrip) {
  const auto& param = GetParam();
  core::Rng rng(std::hash<std::string>{}(param.name));
  for (int trial = 0; trial < 20; ++trial) {
    const auto n = 1 + rng.uniform_int(0, 700);
    std::vector<TimedValue> pts;
    core::TimePoint t = rng.uniform_int(0, core::kDay);
    for (std::int64_t i = 0; i < n; ++i) {
      t += std::max<core::Duration>(
          1, static_cast<core::Duration>(
                 static_cast<double>(param.base_interval) *
                 (1.0 + rng.normal(0.0, param.jitter_frac))));
      double v = rng.normal(0.0, param.value_scale);
      if (param.integer_values) v = std::floor(v);
      if (param.include_specials) {
        const auto pick = rng.uniform_int(0, 9);
        if (pick == 0) v = 0.0;
        if (pick == 1) v = -v * 1e12;
        if (pick == 2) v = 1e-300;
      }
      pts.push_back({t, v});
    }
    const auto chunk = Chunk::compress(pts);
    EXPECT_EQ(chunk.decompress(), pts)
        << param.name << " trial " << trial << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ChunkPropertyTest,
    ::testing::Values(
        ChunkPropertyCase{"steady_1s", core::kSecond, 0.0, 100.0, false, false},
        ChunkPropertyCase{"steady_1m", core::kMinute, 0.0, 1e6, false, false},
        ChunkPropertyCase{"jittered", core::kSecond, 0.3, 50.0, false, false},
        ChunkPropertyCase{"integers", core::kSecond, 0.1, 1000.0, true, false},
        ChunkPropertyCase{"specials", 10 * core::kSecond, 0.5, 1.0, false, true},
        ChunkPropertyCase{"subsecond", core::kMillisecond, 0.2, 10.0, false,
                          false}),
    [](const ::testing::TestParamInfo<ChunkPropertyCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace hpcmon::store
