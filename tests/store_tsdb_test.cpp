#include "store/tsdb.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace hpcmon::store {
namespace {

using core::SeriesId;
using core::TimeRange;

constexpr SeriesId kS0{0};
constexpr SeriesId kS1{1};

TEST(TsdbTest, AppendAndQueryRange) {
  TimeSeriesStore store(4);  // tiny chunks to exercise sealing
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(store.append(kS0, i * core::kSecond, i * 1.0));
  }
  const auto pts = store.query_range(kS0, {2 * core::kSecond, 7 * core::kSecond});
  ASSERT_EQ(pts.size(), 5u);
  EXPECT_EQ(pts.front().time, 2 * core::kSecond);
  EXPECT_EQ(pts.back().time, 6 * core::kSecond);
  EXPECT_DOUBLE_EQ(pts.back().value, 6.0);
  // Full range spans sealed chunks + head.
  EXPECT_EQ(store.query_range(kS0, {0, core::kDay}).size(), 10u);
}

TEST(TsdbTest, RejectsOutOfOrder) {
  TimeSeriesStore store;
  EXPECT_TRUE(store.append(kS0, 100, 1.0));
  EXPECT_FALSE(store.append(kS0, 100, 2.0));  // duplicate time
  EXPECT_FALSE(store.append(kS0, 50, 3.0));   // older
  EXPECT_TRUE(store.append(kS0, 101, 4.0));
  // Other series are unaffected.
  EXPECT_TRUE(store.append(kS1, 50, 5.0));
}

TEST(TsdbTest, DuplicateTimestampRejectedAtChunkSealBoundary) {
  // last_time must survive the head-vector -> sealed-chunk handoff: a
  // duplicate of the final point of a just-sealed chunk is still rejected.
  TimeSeriesStore store(4);
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE(store.append(kS0, i * core::kSecond, i * 1.0));
  }
  ASSERT_EQ(store.stats().sealed_chunks, 1u);  // head just sealed
  EXPECT_FALSE(store.append(kS0, 4 * core::kSecond, 99.0));  // dup of sealed tail
  EXPECT_FALSE(store.append(kS0, 3 * core::kSecond, 99.0));
  EXPECT_TRUE(store.append(kS0, 5 * core::kSecond, 5.0));
  // query_range can never return duplicate timestamps.
  const auto pts = store.query_range(kS0, {0, core::kDay});
  ASSERT_EQ(pts.size(), 5u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LT(pts[i - 1].time, pts[i].time);
  }
}

TEST(TsdbTest, DuplicateTimestampRejectedAfterEviction) {
  // Eviction removes points but not ordering history: re-appending an
  // evicted timestamp must still fail, or re-ingest after retention would
  // silently reorder the series.
  TimeSeriesStore store(4);
  for (int i = 1; i <= 9; ++i) store.append(kS0, i * core::kSecond, i * 1.0);
  std::size_t moved = 0;
  store.evict_before(5 * core::kSecond,
                     [&](SeriesId, Chunk&&) { ++moved; });
  ASSERT_GT(moved, 0u);
  EXPECT_FALSE(store.append(kS0, 2 * core::kSecond, 99.0));  // evicted region
  EXPECT_FALSE(store.append(kS0, 9 * core::kSecond, 99.0));  // dup of live tail
  EXPECT_TRUE(store.append(kS0, 10 * core::kSecond, 10.0));
}

TEST(TsdbTest, AppendBatchCountsDuplicatesAsRejected) {
  TimeSeriesStore store;
  std::vector<core::Sample> batch = {
      {kS0, 100, 1.0}, {kS0, 100, 2.0},  // duplicate inside one batch
      {kS0, 101, 3.0}, {kS0, 90, 4.0},   // out-of-order straggler
      {kS1, 100, 5.0},
  };
  EXPECT_EQ(store.append_batch(batch), 3u);  // 2 of 5 rejected
  EXPECT_EQ(store.query_range(kS0, {0, core::kDay}).size(), 2u);
  EXPECT_EQ(store.query_range(kS1, {0, core::kDay}).size(), 1u);
}

TEST(TsdbTest, LatestAcrossSealedAndHead) {
  TimeSeriesStore store(4);
  EXPECT_FALSE(store.latest(kS0).has_value());
  for (int i = 0; i < 4; ++i) store.append(kS0, i + 1, i * 1.0);  // sealed
  const auto latest = store.latest(kS0);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->time, 4);
  store.append(kS0, 10, 9.0);
  EXPECT_EQ(store.latest(kS0)->time, 10);
}

TEST(TsdbTest, Aggregates) {
  TimeSeriesStore store;
  for (int i = 1; i <= 5; ++i) store.append(kS0, i, static_cast<double>(i));
  const TimeRange all{0, 100};
  EXPECT_DOUBLE_EQ(*store.aggregate(kS0, all, Agg::kSum), 15.0);
  EXPECT_DOUBLE_EQ(*store.aggregate(kS0, all, Agg::kMean), 3.0);
  EXPECT_DOUBLE_EQ(*store.aggregate(kS0, all, Agg::kMin), 1.0);
  EXPECT_DOUBLE_EQ(*store.aggregate(kS0, all, Agg::kMax), 5.0);
  EXPECT_DOUBLE_EQ(*store.aggregate(kS0, all, Agg::kCount), 5.0);
  EXPECT_DOUBLE_EQ(*store.aggregate(kS0, all, Agg::kLast), 5.0);
  EXPECT_FALSE(store.aggregate(kS0, {50, 60}, Agg::kSum).has_value());
  EXPECT_FALSE(store.aggregate(kS1, all, Agg::kSum).has_value());
}

TEST(TsdbTest, Downsample) {
  TimeSeriesStore store;
  // 1-second data for 10 minutes.
  for (int i = 0; i < 600; ++i) {
    store.append(kS0, i * core::kSecond, static_cast<double>(i));
  }
  const auto buckets =
      store.downsample(kS0, {0, 600 * core::kSecond}, core::kMinute, Agg::kMean);
  ASSERT_EQ(buckets.size(), 10u);
  EXPECT_EQ(buckets[0].time, 0);
  EXPECT_DOUBLE_EQ(buckets[0].value, 29.5);  // mean of 0..59
  EXPECT_EQ(buckets[9].time, 9 * core::kMinute);
}

TEST(TsdbTest, EvictBeforeMovesSealedChunksOnly) {
  TimeSeriesStore store(10);
  for (int i = 0; i < 35; ++i) {
    store.append(kS0, i * core::kMinute, static_cast<double>(i));
  }
  // 3 sealed chunks (0-9, 10-19, 20-29) + 5 head points.
  std::size_t archived_points = 0;
  const auto evicted = store.evict_before(
      25 * core::kMinute,
      [&](SeriesId, Chunk&& c) { archived_points += c.count(); });
  EXPECT_EQ(evicted, 2u);  // chunk 20-29 still overlaps the cutoff
  EXPECT_EQ(archived_points, 20u);
  // Remaining data still queryable.
  EXPECT_EQ(store.query_range(kS0, {0, core::kDay}).size(), 15u);
}

TEST(TsdbTest, StatsReflectContent) {
  TimeSeriesStore store(8);
  for (int i = 0; i < 20; ++i) store.append(kS0, i, 1.0);
  for (int i = 0; i < 3; ++i) store.append(kS1, i, 1.0);
  const auto st = store.stats();
  EXPECT_EQ(st.series, 2u);
  EXPECT_EQ(st.points, 23u);
  EXPECT_EQ(st.sealed_chunks, 2u);
  EXPECT_EQ(st.head_points, 4u + 3u);
  EXPECT_GT(st.compressed_bytes, 0u);
}

TEST(TsdbTest, ConcurrentAppendAndQuery) {
  TimeSeriesStore store(64);
  std::thread writer([&store] {
    for (int i = 0; i < 5000; ++i) {
      store.append(kS0, i + 1, static_cast<double>(i));
    }
  });
  std::size_t reads = 0;
  for (int i = 0; i < 50; ++i) {
    const auto pts = store.query_range(kS0, {0, 10000});
    reads += pts.size();
    // Values seen must be consistent with their timestamps.
    for (const auto& p : pts) {
      EXPECT_DOUBLE_EQ(p.value, static_cast<double>(p.time - 1));
    }
  }
  writer.join();
  EXPECT_EQ(store.query_range(kS0, {0, 10000}).size(), 5000u);
  (void)reads;
}

}  // namespace
}  // namespace hpcmon::store
