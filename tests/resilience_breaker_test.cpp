// CircuitBreaker: closed -> open -> half-open -> closed transitions,
// exponential backoff with cap, and deterministic seeded jitter.
#include "resilience/breaker.hpp"

#include <gtest/gtest.h>

namespace hpcmon::resilience {
namespace {

BreakerConfig no_jitter() {
  BreakerConfig c;
  c.failure_threshold = 3;
  c.cooldown = core::kMinute;
  c.backoff_factor = 2.0;
  c.max_cooldown = 4 * core::kMinute;
  c.jitter = 0.0;
  return c;
}

TEST(BreakerTest, OpensAfterConsecutiveFailures) {
  CircuitBreaker b(no_jitter());
  core::TimePoint t = 0;
  EXPECT_TRUE(b.allow(t));
  b.record_failure(t);
  b.record_failure(t);
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  EXPECT_EQ(b.consecutive_failures(), 2);
  // A success resets the streak: failures must be consecutive to open.
  b.record_success(t);
  EXPECT_EQ(b.consecutive_failures(), 0);
  b.record_failure(t);
  b.record_failure(t);
  b.record_failure(t);
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_EQ(b.stats().opens, 1u);
  EXPECT_EQ(b.retry_at(), t + core::kMinute);
}

TEST(BreakerTest, DeniesWhileOpenThenAdmitsOneProbe) {
  CircuitBreaker b(no_jitter());
  for (int i = 0; i < 3; ++i) b.record_failure(0);
  ASSERT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_FALSE(b.allow(core::kSecond));
  EXPECT_FALSE(b.allow(30 * core::kSecond));
  EXPECT_EQ(b.stats().denied, 2u);
  // Cooldown elapsed: exactly one probe admitted; further calls wait for
  // the probe's verdict.
  EXPECT_TRUE(b.allow(core::kMinute));
  EXPECT_EQ(b.state(), BreakerState::kHalfOpen);
  EXPECT_EQ(b.stats().half_open_probes, 1u);
  EXPECT_FALSE(b.allow(core::kMinute));
  EXPECT_EQ(b.stats().denied, 3u);
}

TEST(BreakerTest, ProbeSuccessCloses) {
  CircuitBreaker b(no_jitter());
  for (int i = 0; i < 3; ++i) b.record_failure(0);
  ASSERT_TRUE(b.allow(core::kMinute));
  b.record_success(core::kMinute);
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  EXPECT_EQ(b.stats().closes, 1u);
  EXPECT_TRUE(b.allow(core::kMinute + core::kSecond));
}

TEST(BreakerTest, ProbeFailureReopensWithExponentialBackoff) {
  CircuitBreaker b(no_jitter());
  core::TimePoint t = 0;
  for (int i = 0; i < 3; ++i) b.record_failure(t);
  // 1st open: cooldown 1 min.
  EXPECT_EQ(b.retry_at(), t + core::kMinute);
  t = b.retry_at();
  ASSERT_TRUE(b.allow(t));
  b.record_failure(t);  // probe fails -> re-open, cooldown doubles
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_EQ(b.retry_at(), t + 2 * core::kMinute);
  t = b.retry_at();
  ASSERT_TRUE(b.allow(t));
  b.record_failure(t);
  EXPECT_EQ(b.retry_at(), t + 4 * core::kMinute);
  t = b.retry_at();
  ASSERT_TRUE(b.allow(t));
  b.record_failure(t);
  // Capped at max_cooldown (4 min), not 8.
  EXPECT_EQ(b.retry_at(), t + 4 * core::kMinute);
  EXPECT_EQ(b.stats().opens, 4u);
  // A successful probe resets the backoff streak entirely.
  t = b.retry_at();
  ASSERT_TRUE(b.allow(t));
  b.record_success(t);
  for (int i = 0; i < 3; ++i) b.record_failure(t);
  EXPECT_EQ(b.retry_at(), t + core::kMinute);
}

TEST(BreakerTest, JitterIsDeterministicPerSeed) {
  BreakerConfig cfg = no_jitter();
  cfg.jitter = 0.5;
  CircuitBreaker a(cfg, 111);
  CircuitBreaker b(cfg, 111);
  CircuitBreaker c(cfg, 222);
  for (int i = 0; i < 3; ++i) {
    a.record_failure(0);
    b.record_failure(0);
    c.record_failure(0);
  }
  // Same seed -> bit-identical cooldown; different seed -> de-synchronized.
  EXPECT_EQ(a.retry_at(), b.retry_at());
  EXPECT_NE(a.retry_at(), c.retry_at());
  // Jittered cooldown stays within +/- 50% of nominal.
  EXPECT_GE(a.retry_at(), core::kMinute / 2);
  EXPECT_LE(a.retry_at(), 3 * core::kMinute / 2);
}

}  // namespace
}  // namespace hpcmon::resilience
