#include "stack/stack.hpp"

#include <gtest/gtest.h>

namespace hpcmon::stack {
namespace {

sim::ClusterParams cluster_params() {
  sim::ClusterParams p;
  p.shape.cabinets = 2;
  p.shape.chassis_per_cabinet = 2;
  p.shape.blades_per_chassis = 4;
  p.shape.nodes_per_blade = 4;
  p.shape.gpu_node_fraction = 0.25;
  p.tick = 5 * core::kSecond;
  p.seed = 61;
  return p;
}

core::Config parse(const char* text) {
  auto r = core::Config::parse(text);
  EXPECT_TRUE(r.is_ok());
  return r.value();
}

TEST(StackTest, DefaultConfigCollectsEverything) {
  sim::Cluster cluster(cluster_params());
  MonitoringStack stack(cluster, core::Config{});
  sim::WorkloadParams w;
  w.mean_interarrival = core::kMinute;
  w.max_nodes = 8;
  cluster.start_workload(w);
  cluster.run_for(30 * core::kMinute);

  const auto st = stack.tsdb().hot().stats();
  EXPECT_GT(st.points, 1000u);
  EXPECT_GT(stack.logs().size(), 5u);
  EXPECT_GT(stack.jobs().size(), 3u);
  EXPECT_GT(stack.router().stats().frames, 30u);
  // Probe + health samplers installed by default.
  EXPECT_TRUE(cluster.registry().find_metric("probe.dgemm_seconds"));
  EXPECT_TRUE(cluster.registry().find_metric("health.ok"));
  EXPECT_NE(stack.status().find("series="), std::string::npos);
  // Read-path self-metrics surface as store.* counters, and querying moves
  // them (rules/detectors already query during collection, so just verify
  // the counter is live and reported).
  const auto qs0 = stack.store_query_stats();
  (void)stack.tsdb().hot().query_range(
      cluster.registry().series("node.cpu_load", cluster.topology().node(0)),
      {0, core::kDay});
  EXPECT_GT(stack.store_query_stats().queries, qs0.queries);
  EXPECT_NE(stack.status().find("store.queries="), std::string::npos);
  EXPECT_NE(stack.status().find("store.cache_hits="), std::string::npos);
}

TEST(StackTest, ConfigDisablesOptionalStages) {
  sim::Cluster cluster(cluster_params());
  MonitoringStack stack(cluster, parse(R"(
      probe_interval_s = 0
      health_interval_s = 0
      rules = false
  )"));
  cluster.run_for(15 * core::kMinute);
  EXPECT_FALSE(cluster.registry().find_metric("probe.dgemm_seconds"));
  EXPECT_FALSE(cluster.registry().find_metric("health.ok"));
  EXPECT_EQ(stack.rules().rule_count(), 0u);
}

TEST(StackTest, SampleIntervalIsRespected) {
  sim::Cluster cluster(cluster_params());
  MonitoringStack stack(cluster, parse("sample_interval_s = 30\n"));
  cluster.run_for(10 * core::kMinute);
  const auto sid = cluster.registry().series("power.system_w",
                                             cluster.topology().system());
  const auto pts = stack.tsdb().hot().query_range(sid, {0, cluster.now()});
  ASSERT_GE(pts.size(), 19u);  // 10 min / 30 s
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_EQ(pts[i].time - pts[i - 1].time, 30 * core::kSecond);
  }
}

TEST(StackTest, RulesRaiseAlertsAndActionsFire) {
  sim::Cluster cluster(cluster_params());
  MonitoringStack stack(cluster, parse(R"(
      quarantine_on_hw_critical = true
      gate_repair_s = 600
  )"));
  cluster.inject_gpu_failure(2 * core::kMinute, 1);
  cluster.run_for(10 * core::kMinute);
  bool hw = false;
  for (const auto& a : stack.alerts().active()) {
    if (a.key == "hw_critical") hw = true;
  }
  EXPECT_TRUE(hw);
  ASSERT_FALSE(stack.actions().log().empty());
  EXPECT_EQ(stack.actions().log()[0].action, "quarantine");
}

TEST(StackTest, NoveltyPipelineCollectsReports) {
  sim::Cluster cluster(cluster_params());
  MonitoringStack stack(cluster, parse(R"(
      novelty = true
      novelty_training_s = 600
  )"));
  cluster.run_for(15 * core::kMinute);
  cluster.emit_log({cluster.now(), cluster.now(), cluster.topology().node(0),
                    core::LogFacility::kConsole, core::Severity::kError,
                    core::kNoJob, "xyzzy: completely novel failure mode"});
  cluster.run_for(core::kMinute);
  bool found = false;
  for (const auto& n : stack.novelty_reports()) {
    if (n.tmpl.find("xyzzy") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(StackTest, GateInstalledFromConfig) {
  sim::Cluster cluster(cluster_params());
  MonitoringStack stack(cluster, parse("gate_pre = true\n"));
  ASSERT_NE(stack.gate_stats(), nullptr);
  cluster.inject_gpu_failure(core::kSecond, 0);
  sim::JobRequest req;
  req.num_nodes = 8;
  req.nominal_runtime = core::kMinute;
  req.profile = sim::app_compute_bound();
  cluster.submit_at(5 * core::kSecond, req);
  cluster.run_for(5 * core::kMinute);
  EXPECT_GT(stack.gate_stats()->pre_checks, 0u);
  EXPECT_EQ(stack.gate_stats()->pre_failures, 1u);
}

TEST(StackTest, ArchiveSpillsToFileAndReloads) {
  const std::string path = "/tmp/hpcmon_stack_archive_test.bin";
  std::remove(path.c_str());
  sim::Cluster cluster(cluster_params());
  const std::string cfg_text =
      "hot_window_s = 1800\nsample_interval_s = 30\nchunk_points = 32\n"
      "archive_path = " +
      path + "\n";
  MonitoringStack stack(cluster, parse(cfg_text.c_str()));
  cluster.run_for(3 * core::kHour);
  EXPECT_GT(stack.archive_saves(), 0u);
  // The spilled file is a loadable archive containing real history.
  const auto loaded = store::Archive::load_from_file(path);
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_GT(loaded.value().blob_count(), 0u);
  const auto sid = cluster.registry().series("power.system_w",
                                             cluster.topology().system());
  EXPECT_FALSE(loaded.value().fetch(sid, {0, cluster.now()}).empty());
  std::remove(path.c_str());
}

TEST(StackTest, NumericAlertsFireOnInjectedConditions) {
  sim::Cluster cluster(cluster_params());
  MonitoringStack stack(cluster, parse("sample_interval_s = 30\n"));
  cluster.inject_corrosion_excursion(5 * core::kMinute, 30.0, core::kHour);
  cluster.inject_mem_leak(5 * core::kMinute, 2, 600.0, 2 * core::kHour);
  cluster.run_for(90 * core::kMinute);
  bool corrosion = false;
  bool low_mem = false;
  for (const auto& a : stack.alerts().active()) {
    if (a.key == "facility.corrosion") corrosion = true;
    if (a.key == "node.low_memory" &&
        a.component == cluster.topology().node(2)) {
      low_mem = true;
    }
  }
  EXPECT_TRUE(corrosion);
  EXPECT_TRUE(low_mem);
}

TEST(StackTest, NumericAlertsCanBeDisabled) {
  sim::Cluster cluster(cluster_params());
  MonitoringStack stack(cluster, parse("numeric_alerts = false\n"));
  cluster.inject_corrosion_excursion(core::kMinute, 30.0, core::kHour);
  cluster.run_for(30 * core::kMinute);
  for (const auto& a : stack.alerts().active()) {
    EXPECT_NE(a.key, "facility.corrosion");
  }
}

TEST(StackTest, RetentionScheduleArchives) {
  sim::Cluster cluster(cluster_params());
  MonitoringStack stack(cluster, parse(R"(
      hot_window_s = 1800
      warm_bucket_s = 300
      sample_interval_s = 30
      chunk_points = 32
  )"));
  cluster.run_for(3 * core::kHour);  // hourly enforcement fires twice
  EXPECT_GT(stack.tsdb().archive().blob_count(), 0u);
  // Full-fidelity history still retrievable.
  const auto sid = cluster.registry().series("power.system_w",
                                             cluster.topology().system());
  const auto full = stack.tsdb().query_full(sid, {0, cluster.now()});
  EXPECT_GT(full.size(), 300u);
}

}  // namespace
}  // namespace hpcmon::stack
