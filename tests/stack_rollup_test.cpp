// MonitoringStack + rollup tree: off by default, wired behind rollup_enable
// on both the synchronous and sharded ingest paths, ticked on the simulated
// timeline, feeding the heatmap / fleet-glance / fleet-health read paths with
// zero store scatter-gather, and served over the wire as kRollupQuery /
// kRollupSub / kRollupUnsub.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "resilience/degradation.hpp"
#include "serve/client.hpp"
#include "stack/stack.hpp"
#include "viz/fleet.hpp"
#include "viz/heatmap.hpp"

namespace hpcmon::stack {
namespace {

sim::ClusterParams cluster_params() {
  sim::ClusterParams p;
  p.shape.cabinets = 2;
  p.shape.chassis_per_cabinet = 1;
  p.shape.blades_per_chassis = 2;
  p.shape.nodes_per_blade = 4;
  p.tick = 5 * core::kSecond;
  p.seed = 99;
  return p;
}

core::Config parse(const char* text) {
  auto r = core::Config::parse(text);
  EXPECT_TRUE(r.is_ok());
  return r.value();
}

TEST(StackRollup, OffByDefault) {
  sim::Cluster cluster(cluster_params());
  MonitoringStack stack(cluster, core::Config{});
  EXPECT_EQ(stack.rollup(), nullptr);
  stack.rollup_tick();  // no-op, not a crash
  EXPECT_EQ(stack.status().find("rollup"), std::string::npos);
}

TEST(StackRollup, SyncPathFeedsTreeAndReadsAvoidTheStore) {
  sim::Cluster cluster(cluster_params());
  MonitoringStack stack(cluster, parse("rollup_enable = 1\n"
                                       "rollup_tick_s = 30\n"));
  ASSERT_NE(stack.rollup(), nullptr);
  cluster.run_for(10 * core::kMinute);

  const auto snap = stack.rollup()->snapshot();
  ASSERT_GT(snap->version(), 0u);
  const auto& topo = cluster.topology();
  const auto* sys = snap->find(topo.system(), "node.cpu_util");
  ASSERT_NE(sys, nullptr);
  EXPECT_EQ(sys->count, static_cast<std::uint64_t>(topo.num_nodes()));

  // Every level agrees with the per-series latest values in the hot store.
  for (int c = 0; c < topo.num_cabinets(); ++c) {
    double sum = 0.0;
    for (const int n : topo.nodes_in_cabinet(c)) {
      const auto latest = stack.tsdb().hot().latest(
          cluster.registry().series("node.cpu_util", topo.node(n)));
      ASSERT_TRUE(latest.has_value());
      sum += latest->value;
    }
    const auto* cab = snap->find(topo.cabinet(c), "node.cpu_util");
    ASSERT_NE(cab, nullptr);
    EXPECT_EQ(cab->sum, sum);
    EXPECT_EQ(cab->count, topo.nodes_in_cabinet(c).size());
  }

  // The heatmap rendered from the rollup snapshot equals the one rendered
  // from store queries — and does not touch the store at all.
  viz::HeatmapOptions opts;
  opts.title = "cpu";
  opts.scale_min = 0.0;
  opts.scale_max = 1.0;
  const auto from_store = viz::machine_heatmap(
      topo,
      [&](int node) {
        const auto latest = stack.tsdb().hot().latest(
            cluster.registry().series("node.cpu_util", topo.node(node)));
        return latest ? latest->value
                      : std::numeric_limits<double>::quiet_NaN();
      },
      opts);
  const auto queries_before = stack.store_query_stats().queries;
  const auto from_rollup =
      viz::machine_heatmap(topo, *snap, "node.cpu_util", opts);
  EXPECT_EQ(stack.store_query_stats().queries, queries_before)
      << "rollup-fed heatmap must not scatter-gather the store";
  EXPECT_EQ(from_rollup, from_store);

  // Fleet-at-a-glance report: system + per-cabinet rows off the snapshot.
  const auto glance =
      viz::fleet_glance(topo, *snap, {"node.cpu_util", "node.temp_c"});
  EXPECT_NE(glance.find("system"), std::string::npos);
  EXPECT_NE(glance.find("c1-0"), std::string::npos);
  EXPECT_NE(glance.find("rollup v"), std::string::npos);
  EXPECT_EQ(stack.store_query_stats().queries, queries_before);

  // rollup.* instruments ride the shared obs plane; status reports the tree.
  const auto obs = stack.obs_snapshot();
  EXPECT_GT(obs.counter("rollup.ticks"), 0u);
  EXPECT_GT(obs.counter("rollup.updates"), 0u);
  EXPECT_GT(obs.counter("rollup.reads"), 0u);
  EXPECT_NE(stack.status().find("rollup v="), std::string::npos);
}

TEST(StackRollup, ShardedPathObservesThroughTheShards) {
  sim::Cluster cluster(cluster_params());
  MonitoringStack stack(cluster, parse("rollup_enable = 1\n"
                                       "ingest_shards = 3\n"));
  ASSERT_NE(stack.rollup(), nullptr);
  ASSERT_NE(stack.sharded_store(), nullptr);
  EXPECT_EQ(stack.sharded_store()->rollup(), stack.rollup());
  EXPECT_GE(stack.rollup()->shard_count(),
            stack.sharded_store()->shard_count());
  cluster.run_for(10 * core::kMinute);
  stack.drain_ingest();
  stack.rollup_tick();

  const auto& topo = cluster.topology();
  const auto mean = stack.sharded_store()->rollup_aggregate(
      topo.system(), "node.cpu_util", store::Agg::kMean);
  ASSERT_TRUE(mean.has_value());
  // Scatter-gather reference over the shards' latest values.
  double sum = 0.0;
  for (int n = 0; n < topo.num_nodes(); ++n) {
    const auto latest = stack.sharded_store()->latest(
        cluster.registry().series("node.cpu_util", topo.node(n)));
    ASSERT_TRUE(latest.has_value());
    sum += latest->value;
  }
  EXPECT_EQ(*mean, sum / topo.num_nodes());
}

TEST(StackRollup, FleetHealthReadsFromTheSnapshot) {
  sim::Cluster cluster(cluster_params());
  MonitoringStack stack(cluster, parse("rollup_enable = 1\n"
                                       "degradation = 1\n"));
  cluster.run_for(10 * core::kMinute);
  const auto snap = stack.rollup()->snapshot();
  const auto* sys = snap->find(cluster.topology().system(), "node.cpu_util");
  ASSERT_NE(sys, nullptr);
  ASSERT_FALSE(sys->empty());

  resilience::HealthSignalAssembler assembler;
  const auto hs = assembler.assemble(stack.obs_snapshot(), snap.get(),
                                     cluster.topology().system());
  EXPECT_EQ(hs.fleet_nodes_live, sys->count);
  EXPECT_EQ(hs.fleet_utilization, rollup::MeanReducer::reduce(*sys));
  // Without a snapshot the fleet fields stay at their defaults.
  const auto bare = assembler.assemble(stack.obs_snapshot());
  EXPECT_EQ(bare.fleet_nodes_live, 0u);
  EXPECT_EQ(bare.fleet_utilization, 0.0);
}

TEST(StackRollup, ServedOverTheWire) {
  sim::Cluster cluster(cluster_params());
  MonitoringStack stack(cluster, parse("serve_port = 0\n"
                                       "rollup_enable = 1\n"
                                       "rollup_tick_s = 30\n"));
  ASSERT_NE(stack.serve(), nullptr);
  ASSERT_TRUE(stack.serve()->running()) << stack.serve()->error();
  cluster.run_for(5 * core::kMinute);

  serve::ServeClient client;
  ASSERT_TRUE(client.connect(stack.serve()->port()));

  // Query by name: the reply stat IS the in-process snapshot entry.
  auto sys = client.rollup_query("system", "node.cpu_util");
  ASSERT_TRUE(sys.is_ok()) << sys.message();
  ASSERT_TRUE(sys.value().found);
  const auto snap = stack.rollup()->snapshot();
  EXPECT_EQ(sys.value().stat, *snap->find(cluster.topology().system(),
                                          "node.cpu_util"));
  auto cab = client.rollup_query("c1-0", "node.cpu_util");
  ASSERT_TRUE(cab.is_ok());
  ASSERT_TRUE(cab.value().found);
  EXPECT_EQ(cab.value().stat.count,
            static_cast<std::uint64_t>(
                cluster.topology().nodes_in_cabinet(1).size()));
  // Unknown component / metric: answered, not found.
  auto missing = client.rollup_query("c9-9", "node.cpu_util");
  ASSERT_TRUE(missing.is_ok());
  EXPECT_FALSE(missing.value().found);

  // Subscribe: the ack carries the current stat; later ticks push deltas.
  auto ack = client.rollup_sub("system", "node.cpu_util");
  ASSERT_TRUE(ack.is_ok()) << ack.message();
  EXPECT_TRUE(ack.value().current.found);
  EXPECT_TRUE(stack.serve()->has_rollup_subs());
  cluster.run_for(5 * core::kMinute);
  auto push = client.poll_push(2000);
  ASSERT_TRUE(push.has_value());
  EXPECT_EQ(push->type, serve::MsgType::kRollupDelta);
  EXPECT_EQ(push->sub_id, ack.value().sub_id);
  EXPECT_EQ(push->rollup.component, "system");
  EXPECT_EQ(push->rollup.metric, "node.cpu_util");
  EXPECT_FALSE(push->rollup.stat.empty());

  EXPECT_TRUE(client.rollup_unsub(ack.value().sub_id));
  EXPECT_FALSE(stack.serve()->has_rollup_subs());

  const auto obs = stack.obs_snapshot();
  EXPECT_GT(obs.counter("serve.rollup_queries"), 0u);
  EXPECT_GT(obs.counter("serve.rollup_deltas"), 0u);
}

TEST(StackRollup, WireQueryErrorsWhenRollupDisabled) {
  sim::Cluster cluster(cluster_params());
  MonitoringStack stack(cluster, parse("serve_port = 0\n"));
  ASSERT_NE(stack.serve(), nullptr);
  serve::ServeClient client;
  ASSERT_TRUE(client.connect(stack.serve()->port()));
  auto r = client.rollup_query("system", "node.cpu_util");
  EXPECT_FALSE(r.is_ok());
  auto s = client.rollup_sub("system", "node.cpu_util");
  EXPECT_FALSE(s.is_ok());
}

}  // namespace
}  // namespace hpcmon::stack
