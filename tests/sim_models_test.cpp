// FsModel, PowerModel, GpuFleet, apps, workload.
#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "sim/apps.hpp"
#include "sim/filesystem.hpp"
#include "sim/gpu.hpp"
#include "sim/power.hpp"
#include "sim/workload.hpp"

namespace hpcmon::sim {
namespace {

MachineShape tiny_shape() {
  MachineShape s;
  s.cabinets = 2;
  s.chassis_per_cabinet = 1;
  s.blades_per_chassis = 2;
  s.nodes_per_blade = 4;
  s.gpu_node_fraction = 0.5;
  s.filesystems = 1;
  s.osts_per_filesystem = 4;
  return s;
}

struct ModelsFixture {
  core::MetricRegistry reg;
  Topology topo{reg, tiny_shape(), FabricKind::kTorus3D};
  std::vector<core::LogEvent> logs;
};

TEST(FsModelTest, UnloadedLatencyIsBaseline) {
  ModelsFixture f;
  FsParams p;
  FsModel fs(f.topo, p, core::Rng(1));
  fs.begin_tick();
  fs.tick(core::kSecond, core::kSecond, f.logs);
  EXPECT_NEAR(fs.ost_state(0, 0).latency_ms, p.base_io_latency_ms, 1e-9);
  EXPECT_NEAR(fs.mds_state(0).latency_ms, p.base_md_latency_ms, 1e-9);
  EXPECT_NEAR(fs.io_slowdown(0), 1.0, 1e-9);
}

TEST(FsModelTest, LoadInflatesLatencyAndCapsThroughput) {
  ModelsFixture f;
  FsParams p;  // 2000 MB/s per OST
  FsModel fs(f.topo, p, core::Rng(1));
  fs.begin_tick();
  // Node 0 -> OST 0 with 4x the OST's bandwidth.
  fs.add_demand(0, 0, 8000.0, 0.0, 0.0);
  fs.tick(core::kSecond, core::kSecond, f.logs);
  const auto& ost = fs.ost_state(0, 0);
  EXPECT_NEAR(ost.carried, 2000.0, 1e-9);
  EXPECT_GT(ost.latency_ms, p.base_io_latency_ms * 10);
  EXPECT_GT(fs.io_slowdown(0), 1.0);
  // Counter advanced by carried bytes only.
  EXPECT_NEAR(ost.read_bytes, 2000.0 * 1e6, 1.0);
}

TEST(FsModelTest, StripingSpreadsNodesOverOsts) {
  ModelsFixture f;
  FsModel fs(f.topo, {}, core::Rng(1));
  fs.begin_tick();
  for (int n = 0; n < 4; ++n) fs.add_demand(0, n, 100.0, 0.0, 0.0);
  fs.tick(core::kSecond, core::kSecond, f.logs);
  for (int o = 0; o < 4; ++o) {
    EXPECT_NEAR(fs.ost_state(0, o).demand, 100.0, 1e-9);
  }
  EXPECT_NEAR(fs.fs_read_mbps(0), 400.0, 1e-9);
  EXPECT_NEAR(fs.node_read_mbps(2), 100.0, 1e-9);
}

TEST(FsModelTest, SlowdownFaultRaisesLatencyAndLogs) {
  ModelsFixture f;
  FsModel fs(f.topo, {}, core::Rng(1));
  fs.set_ost_slowdown(0, 1, 5.0);
  fs.begin_tick();
  fs.add_demand(0, 1, 500.0, 0.0, 0.0);  // node 1 -> ost 1
  fs.tick(core::kSecond, core::kSecond, f.logs);
  EXPECT_GT(fs.ost_state(0, 1).latency_ms, 5.0);
  EXPECT_FALSE(f.logs.empty());  // "OST slow ios" logged
}

TEST(FsModelTest, MdsSaturationLogsWarning) {
  ModelsFixture f;
  FsParams p;
  FsModel fs(f.topo, p, core::Rng(1));
  fs.begin_tick();
  fs.add_demand(0, 0, 0.0, 0.0, p.mds_ops_capacity * 2);
  fs.tick(core::kSecond, core::kSecond, f.logs);
  bool found = false;
  for (const auto& e : f.logs) {
    if (e.message.find("MDS request queue saturated") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(PowerModelTest, IdleAndBusyDraw) {
  ModelsFixture f;
  PowerParams p;
  p.noise_w = 0.0;
  PowerModel pm(f.topo, p, core::Rng(1));
  std::vector<NodeState> nodes(f.topo.num_nodes());
  pm.tick(core::kSecond, core::kSecond, nodes, f.logs);
  // Idle node with GPU (first half of nodes have GPUs).
  EXPECT_NEAR(pm.node_power_w(0), p.node_idle_w + p.gpu_idle_w, 1e-6);
  // Idle node without GPU.
  EXPECT_NEAR(pm.node_power_w(f.topo.num_nodes() - 1), p.node_idle_w, 1e-6);

  for (auto& n : nodes) n.cpu_util = 1.0;
  pm.tick(2 * core::kSecond, core::kSecond, nodes, f.logs);
  EXPECT_NEAR(pm.node_power_w(f.topo.num_nodes() - 1), p.node_peak_w, 1e-6);
  // Cabinet = blower + sum of nodes.
  double cab0 = p.blower_w_per_cabinet;
  for (const int n : f.topo.nodes_in_cabinet(0)) cab0 += pm.node_power_w(n);
  EXPECT_NEAR(pm.cabinet_power_w(0), cab0, 1e-6);
  EXPECT_NEAR(pm.system_power_w(),
              pm.cabinet_power_w(0) + pm.cabinet_power_w(1), 1e-6);
  EXPECT_GT(pm.energy_joules(), 0.0);
}

TEST(PowerModelTest, TemperatureTracksLoad) {
  ModelsFixture f;
  PowerParams p;
  p.noise_w = 0.0;
  PowerModel pm(f.topo, p, core::Rng(1));
  std::vector<NodeState> nodes(f.topo.num_nodes());
  pm.tick(core::kSecond, core::kSecond, nodes, f.logs);
  const double idle_temp = pm.cabinet_temp_c(0);
  for (auto& n : nodes) n.cpu_util = 1.0;
  pm.tick(2 * core::kSecond, core::kSecond, nodes, f.logs);
  EXPECT_GT(pm.cabinet_temp_c(0), idle_temp);
}

TEST(PowerModelTest, CorrosionExcursionLogsAshraeBreach) {
  ModelsFixture f;
  PowerModel pm(f.topo, {}, core::Rng(1));
  std::vector<NodeState> nodes(f.topo.num_nodes());
  pm.set_corrosion_excursion(30.0, 10 * core::kSecond);
  pm.tick(core::kSecond, core::kSecond, nodes, f.logs);
  EXPECT_GT(pm.facility().corrosion_ppb, 10.0);
  bool breach = false;
  for (const auto& e : f.logs) {
    if (e.facility == core::LogFacility::kFacilityEnv) breach = true;
  }
  EXPECT_TRUE(breach);
  // After the excursion window, level returns to baseline.
  f.logs.clear();
  pm.tick(20 * core::kSecond, core::kSecond, nodes, f.logs);
  EXPECT_LT(pm.facility().corrosion_ppb, 10.0);
}

TEST(GpuFleetTest, HealthyFleetPassesDiagnostics) {
  ModelsFixture f;
  GpuFleet gpus(f.topo, {}, core::Rng(1));
  EXPECT_EQ(gpus.num_gpus(), f.topo.num_nodes() / 2);
  for (const int n : gpus.gpu_nodes()) {
    EXPECT_TRUE(gpus.run_diagnostic(n));
    EXPECT_EQ(gpus.health(n), GpuHealth::kOk);
  }
  // Non-GPU node trivially passes.
  EXPECT_TRUE(gpus.run_diagnostic(f.topo.num_nodes() - 1));
}

TEST(GpuFleetTest, FailedGpuAlwaysCaught) {
  ModelsFixture f;
  GpuFleet gpus(f.topo, {}, core::Rng(1));
  const int victim = gpus.gpu_nodes()[0];
  gpus.force_health(victim, GpuHealth::kFailed);
  EXPECT_FALSE(gpus.run_diagnostic(victim));
  EXPECT_EQ(gpus.count(GpuHealth::kFailed), 1);
  gpus.repair(victim);
  EXPECT_EQ(gpus.health(victim), GpuHealth::kOk);
  EXPECT_EQ(gpus.damage(victim), 0.0);
}

TEST(GpuFleetTest, CorrosionAcceleratesDegradation) {
  ModelsFixture f;
  GpuParams p;
  GpuFleet clean(f.topo, p, core::Rng(7));
  GpuFleet corroded(f.topo, p, core::Rng(7));
  std::vector<core::LogEvent> logs;
  // Simulate 60 days in 1-hour steps: clean room vs 40 ppb excess sulfur.
  for (int h = 0; h < 24 * 60; ++h) {
    clean.tick(h * core::kHour, core::kHour, 3.0, logs);
    corroded.tick(h * core::kHour, core::kHour, 50.0, logs);
  }
  const int clean_bad = clean.count(GpuHealth::kDegraded) +
                        clean.count(GpuHealth::kFailed);
  const int corroded_bad = corroded.count(GpuHealth::kDegraded) +
                           corroded.count(GpuHealth::kFailed);
  EXPECT_GT(corroded_bad, clean_bad);
  EXPECT_GT(corroded.damage(corroded.gpu_nodes()[0]), 0.0);
  EXPECT_EQ(clean.damage(clean.gpu_nodes()[0]), 0.0);
}

TEST(AppProfileTest, PhaseSelection) {
  const auto app = app_io_checkpoint();
  EXPECT_EQ(app.phase_at(0.0), 0);
  EXPECT_EQ(app.phase_at(0.45), 1);   // checkpoint phase
  EXPECT_EQ(app.phase_at(0.60), 2);
  EXPECT_EQ(app.phase_at(0.95), 3);
  EXPECT_EQ(app.phase_at(1.5), 3);    // clamped to last
}

TEST(AppProfileTest, ImbalancedProfileHasPartialActiveFraction) {
  const auto app = app_imbalanced();
  const int mid = app.phase_at(0.5);
  EXPECT_LT(app.phases[mid].active_fraction, 0.5);
  EXPECT_EQ(app.phases[app.phase_at(0.05)].active_fraction, 1.0);
}

TEST(WorkloadTest, RequestsWithinBounds) {
  WorkloadParams p;
  p.min_nodes = 2;
  p.max_nodes = 32;
  WorkloadGenerator gen(p, core::Rng(5));
  for (int i = 0; i < 200; ++i) {
    const auto req = gen.next_request();
    EXPECT_GE(req.num_nodes, 2);
    EXPECT_LE(req.num_nodes, 32);
    EXPECT_GE(req.nominal_runtime, p.min_runtime);
    EXPECT_FALSE(req.profile.name.empty());
    EXPECT_GT(gen.next_interarrival(), 0);
  }
}

TEST(WorkloadTest, WeightsBiasTheMix) {
  WorkloadParams p;
  p.mix = {app_compute_bound(), app_aggressor()};
  p.weights = {0.0, 1.0};
  WorkloadGenerator gen(p, core::Rng(5));
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(gen.next_request().profile.name, "aggressor");
  }
}

}  // namespace
}  // namespace hpcmon::sim
