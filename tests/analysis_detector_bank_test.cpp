#include "analysis/detector_bank.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"

namespace hpcmon::analysis {
namespace {

using core::ComponentId;
using core::SampleBatch;

struct BankFixture {
  core::MetricRegistry reg;
  DetectorBank bank{reg};
  ComponentId c0 = reg.register_component(
      {"n0", core::ComponentKind::kNode, core::kNoComponent});
  ComponentId c1 = reg.register_component(
      {"n1", core::ComponentKind::kNode, core::kNoComponent});

  SampleBatch batch(core::TimePoint t, core::SeriesId sid, double v) {
    SampleBatch b;
    b.sweep_time = t;
    b.samples.push_back({sid, t, v});
    return b;
  }
};

TEST(DetectorBankTest, AboveThresholdWatch) {
  BankFixture f;
  f.bank.watch("hot", "temp", above_factory(80.0, 5.0));
  const auto sid = f.reg.series("temp", f.c0);
  EXPECT_TRUE(f.bank.process(f.batch(1, sid, 70.0)).empty());
  const auto hits = f.bank.process(f.batch(2, sid, 85.0));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].watch_name, "hot");
  EXPECT_EQ(hits[0].component, f.c0);
  EXPECT_EQ(hits[0].metric, "temp");
  // Hysteresis: stays quiet until it drops below 75 and crosses again.
  EXPECT_TRUE(f.bank.process(f.batch(3, sid, 90.0)).empty());
  EXPECT_TRUE(f.bank.process(f.batch(4, sid, 74.0)).empty());
  EXPECT_EQ(f.bank.process(f.batch(5, sid, 85.0)).size(), 1u);
}

TEST(DetectorBankTest, BelowWatchReportsRealValue) {
  BankFixture f;
  f.bank.watch("low_mem", "mem_free", below_factory(8.0));
  const auto sid = f.reg.series("mem_free", f.c0);
  EXPECT_TRUE(f.bank.process(f.batch(1, sid, 100.0)).empty());
  const auto hits = f.bank.process(f.batch(2, sid, 3.0));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_DOUBLE_EQ(hits[0].event.value, 3.0);
  EXPECT_EQ(hits[0].event.detector, "below");
}

TEST(DetectorBankTest, PerSeriesIsolation) {
  BankFixture f;
  f.bank.watch("z", "m", zscore_factory(40, 4.0));
  const auto s0 = f.reg.series("m", f.c0);
  const auto s1 = f.reg.series("m", f.c1);
  core::Rng rng(3);
  // c0 sits near 10, c1 near 1000: each learns its own baseline.
  for (int i = 0; i < 60; ++i) {
    SampleBatch b;
    b.sweep_time = i;
    b.samples.push_back({s0, i, rng.normal(10.0, 0.5)});
    b.samples.push_back({s1, i, rng.normal(1000.0, 10.0)});
    EXPECT_TRUE(f.bank.process(b).empty());
  }
  EXPECT_EQ(f.bank.active_detectors(), 2u);
  // A value normal for c1 is wildly anomalous for c0.
  const auto hits = f.bank.process(f.batch(100, s0, 1000.0));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].component, f.c0);
}

TEST(DetectorBankTest, MultipleWatchesOnOneMetric) {
  BankFixture f;
  f.bank.watch("warn", "temp", above_factory(70.0));
  f.bank.watch("crit", "temp", above_factory(90.0));
  const auto sid = f.reg.series("temp", f.c0);
  const auto warm = f.bank.process(f.batch(1, sid, 75.0));
  ASSERT_EQ(warm.size(), 1u);
  EXPECT_EQ(warm[0].watch_name, "warn");
  const auto hot = f.bank.process(f.batch(2, sid, 95.0));
  ASSERT_EQ(hot.size(), 1u);  // warn already in alarm; crit fires
  EXPECT_EQ(hot[0].watch_name, "crit");
}

TEST(DetectorBankTest, UnwatchedMetricsIgnoredCheaply) {
  BankFixture f;
  f.bank.watch("w", "watched", above_factory(1.0));
  const auto other = f.reg.series("unwatched", f.c0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(f.bank.process(f.batch(i, other, 100.0)).empty());
  }
  EXPECT_EQ(f.bank.active_detectors(), 0u);
}

}  // namespace
}  // namespace hpcmon::analysis
