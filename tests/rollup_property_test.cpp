// Property test: under seeded random workloads — batched and single appends,
// cross-series arrival shuffling, retention eviction, series churn — every
// level of the RollupTree equals, BITWISE, a scatter-gather reference folded
// from the stores' latest values in the tree's contractual order (self, then
// children ascending by raw ComponentId). A threaded round drives concurrent
// shard appenders, ticks, and snapshot readers under TSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include "core/registry.hpp"
#include "ingest/sharded_store.hpp"
#include "rollup/tree.hpp"
#include "sim/topology.hpp"

namespace hpcmon::rollup {
namespace {

using core::ComponentId;
using core::Sample;
using core::SeriesId;

struct Workload {
  core::MetricRegistry reg;
  sim::Topology topo;
  std::vector<std::string> metrics = {"node.cpu_util", "node.temp_c",
                                      "node.power_w"};
  std::vector<SeriesId> series;              // every (metric, node) pair
  std::vector<core::TimePoint> next_time;    // per-series monotone clock
  std::vector<ComponentId> all_components;   // every rollup level to check

  explicit Workload(const sim::MachineShape& shape)
      : topo(reg, shape, sim::FabricKind::kDragonfly) {
    for (const auto& m : metrics) {
      for (int n = 0; n < topo.num_nodes(); ++n) {
        series.push_back(reg.series(m, topo.node(n)));
      }
    }
    next_time.assign(series.size(), 1);
    for (std::uint32_t c = 0; c < reg.component_count(); ++c) {
      all_components.push_back(ComponentId{c});
    }
  }
};

RollupStat reference(core::MetricRegistry& reg,
                     const ingest::ShardedTimeSeriesStore& store,
                     std::uint32_t metric, ComponentId comp) {
  RollupStat total;
  if (const auto lv = store.latest(reg.series(metric, comp))) {
    total = RollupStat::of_value(lv->time, lv->value);
  }
  auto kids = reg.children_of(comp);
  std::sort(kids.begin(), kids.end(), [](ComponentId a, ComponentId b) {
    return core::raw(a) < core::raw(b);
  });
  for (const auto child : kids) {
    total.fold(reference(reg, store, metric, child));
  }
  return total;
}

/// Assert every (metric, component) level of the snapshot equals the
/// scatter-gather reference — including levels the tree has not interned
/// (those must have an empty reference).
void expect_tree_equals_scatter_gather(
    Workload& w, const ingest::ShardedTimeSeriesStore& store,
    const RollupSnapshot& snap) {
  for (const auto& metric : w.metrics) {
    const auto m = w.reg.find_metric(metric);
    ASSERT_TRUE(m.has_value());
    for (const auto comp : w.all_components) {
      const auto ref = reference(w.reg, store, *m, comp);
      const auto* got = snap.find(comp, metric);
      if (got == nullptr) {
        EXPECT_TRUE(ref.empty())
            << metric << "@" << w.reg.component(comp).name;
      } else {
        // RollupStat operator== compares doubles exactly: bitwise equality.
        EXPECT_EQ(*got, ref) << metric << "@" << w.reg.component(comp).name;
      }
    }
  }
}

TEST(RollupProperty, RandomWorkloadsMatchScatterGatherAtEveryLevel) {
  for (const std::uint64_t seed : {11u, 23u, 47u}) {
    std::mt19937_64 rng(seed);
    sim::MachineShape shape;
    shape.cabinets = 2;
    shape.chassis_per_cabinet = 2;
    shape.blades_per_chassis = 2;
    shape.nodes_per_blade = 2;  // 16 nodes x 3 metrics = 48 series
    Workload w(shape);
    // Tiny chunks so retention can fully drain a series' history mid-run.
    ingest::ShardedTimeSeriesStore store(/*shards=*/3, /*chunk_points=*/4);
    RollupTree tree(w.reg, {.shards = store.shard_count()});
    store.attach_rollup(&tree);

    std::uniform_real_distribution<double> value(-100.0, 100.0);
    core::TimePoint clock = 1;
    for (int round = 0; round < 40; ++round) {
      // Occasional retention pass FIRST (on last round's drained state):
      // when it empties a series the gone listener retracts it from the
      // tree, and everything appended below is newer than its old history,
      // so a retracted series only ever resurrects with store-accepted data.
      if (round % 7 == 6) {
        store.evict_before(clock - static_cast<core::TimePoint>(rng() % 20),
                           {});
      }
      // A shuffled multi-series batch: per-series times stay strictly
      // increasing (the store's append contract) but arrival order across
      // series is scrambled, and some samples repeat a stale timestamp to
      // exercise the store-reject / tree-discard path.
      std::vector<Sample> batch;
      const int picks = 1 + static_cast<int>(rng() % 24);
      for (int i = 0; i < picks; ++i) {
        const auto si = rng() % w.series.size();
        core::TimePoint t;
        // Stale repeats only target series that still hold data: the store
        // rejects them against its persistent last_time, and the tree's
        // applied last_time (equal to the store's) discards them in kind. A
        // just-evicted series must not see one — its tree-side clock was
        // retracted, so only genuinely newer samples may resurrect it.
        if (rng() % 8 == 0 && w.next_time[si] > 2 &&
            store.latest(w.series[si]).has_value()) {
          t = static_cast<core::TimePoint>(rng() % (w.next_time[si] - 1)) + 1;
        } else {
          t = w.next_time[si] + static_cast<core::TimePoint>(rng() % 3);
          w.next_time[si] = t + 1;
          clock = std::max(clock, t);
        }
        batch.push_back({w.series[si], t, value(rng)});
      }
      std::shuffle(batch.begin(), batch.end(), rng);
      switch (rng() % 3) {
        case 0:
          store.append_batch(batch);
          break;
        case 1:
          for (const auto& s : batch) store.append(s);
          break;
        default: {
          // Per-series sorted runs through the run path.
          std::stable_sort(batch.begin(), batch.end(),
                           [](const Sample& a, const Sample& b) {
                             return core::raw(a.series) < core::raw(b.series);
                           });
          std::size_t i = 0;
          while (i < batch.size()) {
            std::size_t j = i;
            while (j < batch.size() && batch[j].series == batch[i].series) ++j;
            std::vector<Sample> run(batch.begin() + i, batch.begin() + j);
            std::sort(run.begin(), run.end(),
                      [](const Sample& a, const Sample& b) {
                        return a.time < b.time;
                      });
            store.append_run(batch[i].series, run);
            i = j;
          }
        }
      }
      // Occasional retention pass; when it empties a series the gone
      // listener must retract it from the tree. Future appends are always
      // newer than the cutoff (per-series clocks only move forward).
      if (round % 7 == 6) {
        store.evict_before(clock - static_cast<core::TimePoint>(rng() % 20),
                           {});
      }
      tree.tick();
      const auto snap = tree.snapshot();
      ASSERT_NE(snap, nullptr);
      expect_tree_equals_scatter_gather(w, store, *snap);
    }
    // Final full drain: evict everything, every level must empty out.
    store.evict_before(clock + 1000, {});
    tree.tick();
    const auto snap = tree.snapshot();
    expect_tree_equals_scatter_gather(w, store, *snap);
    store.attach_rollup(nullptr);
  }
}

// Threaded round: appenders race across shards while a reader spins on
// snapshot() and the main thread ticks. TSan checks the locking discipline;
// the final barrier + tick must still equal scatter-gather exactly.
TEST(RollupProperty, ConcurrentAppendersTickersAndReaders) {
  sim::MachineShape shape;
  shape.cabinets = 2;
  shape.chassis_per_cabinet = 1;
  shape.blades_per_chassis = 2;
  shape.nodes_per_blade = 2;
  Workload w(shape);
  ingest::ShardedTimeSeriesStore store(/*shards=*/4, /*chunk_points=*/8);
  RollupTree tree(w.reg, {.shards = store.shard_count()});
  store.attach_rollup(&tree);

  constexpr int kWriters = 4;
  constexpr int kRoundsPerWriter = 200;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  // Writers partition the series space so per-series times stay monotone.
  for (int wtr = 0; wtr < kWriters; ++wtr) {
    threads.emplace_back([&, wtr] {
      std::mt19937_64 rng(1000 + wtr);
      std::uniform_real_distribution<double> value(0.0, 1.0);
      for (int r = 0; r < kRoundsPerWriter; ++r) {
        std::vector<Sample> batch;
        for (std::size_t si = wtr; si < w.series.size(); si += kWriters) {
          batch.push_back({w.series[si], r + 1, value(rng)});
        }
        std::shuffle(batch.begin(), batch.end(), rng);
        store.append_batch(batch);
      }
    });
  }
  std::thread reader([&] {
    std::uint64_t last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const auto snap = tree.snapshot();
      ASSERT_NE(snap, nullptr);
      EXPECT_GE(snap->version(), last);  // versions only move forward
      last = snap->version();
      if (const auto* sys = snap->find(w.topo.system(), "node.cpu_util")) {
        EXPECT_LE(sys->count,
                  static_cast<std::uint64_t>(w.topo.num_nodes()));
      }
    }
  });
  for (int i = 0; i < 50; ++i) {
    tree.tick();
    std::this_thread::yield();
  }
  for (auto& t : threads) t.join();
  tree.tick();  // drain everything the writers left pending
  stop.store(true, std::memory_order_release);
  reader.join();

  const auto snap = tree.snapshot();
  expect_tree_equals_scatter_gather(w, store, *snap);
  const auto* sys = snap->find(w.topo.system(), "node.cpu_util");
  ASSERT_NE(sys, nullptr);
  EXPECT_EQ(sys->count, static_cast<std::uint64_t>(w.topo.num_nodes()));
  store.attach_rollup(nullptr);
}

}  // namespace
}  // namespace hpcmon::rollup
