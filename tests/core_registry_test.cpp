#include "core/registry.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace hpcmon::core {
namespace {

TEST(RegistryTest, MetricInterning) {
  MetricRegistry reg;
  const auto a = reg.register_metric({"power.node_w", "W", "node draw", false});
  const auto b = reg.register_metric({"power.node_w", "V", "ignored", true});
  EXPECT_EQ(a, b);  // same name -> same index
  EXPECT_EQ(reg.metric(a).units, "W");  // first registration wins
  EXPECT_EQ(reg.metric_count(), 1u);
  EXPECT_TRUE(reg.find_metric("power.node_w").has_value());
  EXPECT_FALSE(reg.find_metric("nope").has_value());
}

TEST(RegistryTest, ComponentHierarchy) {
  MetricRegistry reg;
  const auto sys = reg.register_component({"system", ComponentKind::kSystem,
                                           kNoComponent});
  const auto cab = reg.register_component({"c0-0", ComponentKind::kCabinet, sys});
  const auto n1 = reg.register_component({"c0-0c0s0n0", ComponentKind::kNode, cab});
  const auto n2 = reg.register_component({"c0-0c0s0n1", ComponentKind::kNode, cab});
  EXPECT_EQ(reg.component_count(), 4u);
  EXPECT_EQ(reg.component(n1).parent, cab);
  const auto nodes = reg.components_of_kind(ComponentKind::kNode);
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(nodes[0], n1);
  EXPECT_EQ(nodes[1], n2);
  const auto kids = reg.children_of(cab);
  ASSERT_EQ(kids.size(), 2u);
}

TEST(RegistryTest, SeriesInterning) {
  MetricRegistry reg;
  const auto c = reg.register_component({"n0", ComponentKind::kNode, kNoComponent});
  const auto s1 = reg.series("cpu", c);
  const auto s2 = reg.series("cpu", c);
  EXPECT_EQ(s1, s2);
  const auto s3 = reg.series("mem", c);
  EXPECT_NE(s1, s3);
  EXPECT_EQ(reg.series_count(), 2u);
  EXPECT_EQ(reg.series_component(s1), c);
  EXPECT_EQ(reg.series_name(s1), "cpu@n0");
}

TEST(RegistryTest, DescribeAllListsUnitsAndDocs) {
  MetricRegistry reg;
  reg.register_metric({"hsn.link.stalls", "events", "credit stalls", true});
  reg.register_metric({"mystery", "", "", false});
  const auto text = reg.describe_all();
  EXPECT_NE(text.find("hsn.link.stalls [events] (counter): credit stalls"),
            std::string::npos);
  EXPECT_NE(text.find("mystery [-]: (undocumented)"), std::string::npos);
}

TEST(RegistryTest, ConcurrentInterningIsSafe) {
  MetricRegistry reg;
  const auto c = reg.register_component({"n0", ComponentKind::kNode, kNoComponent});
  std::vector<std::thread> threads;
  std::array<SeriesId, 8> results{};
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&reg, c, i, &results] {
      results[i] = reg.series("same.metric", c);
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 1; i < 8; ++i) EXPECT_EQ(results[i], results[0]);
  EXPECT_EQ(reg.series_count(), 1u);
}

}  // namespace
}  // namespace hpcmon::core
