#include "analysis/novelty.hpp"

#include <gtest/gtest.h>

namespace hpcmon::analysis {
namespace {

using core::LogEvent;

LogEvent ev(core::TimePoint t, std::string msg) {
  LogEvent e;
  e.time = t;
  e.message = std::move(msg);
  e.component = core::ComponentId{1};
  return e;
}

TEST(TemplateTest, NumbersAbstracted) {
  EXPECT_EQ(message_template("CRC retry count 3"), "CRC retry count #");
  EXPECT_EQ(message_template("CRC retry count 17"), "CRC retry count #");
  EXPECT_EQ(message_template("job 42 start nodes=8"), "job # start nodes=#");
}

TEST(TemplateTest, HexTokensAbstracted) {
  EXPECT_EQ(message_template("page fault at 0x7fff0a2c"), "page fault at &");
  EXPECT_EQ(message_template("uuid deadbeef99"), "uuid &");
  // Real words survive, even hex-looking short ones.
  EXPECT_EQ(message_template("bad cafe bed"), "bad cafe bed");
}

TEST(TemplateTest, DistinctStructuresStayDistinct) {
  EXPECT_NE(message_template("link failed: lane degrade"),
            message_template("link recovered"));
  EXPECT_NE(message_template("error count 3"), message_template("error rate 3"));
}

TEST(NoveltyTest, TrainingWindowSuppressesKnownTemplates) {
  NoveltyParams params;
  params.training_until = core::kHour;
  NoveltyDetector det(params);
  // Training period: everything is silent.
  EXPECT_TRUE(det.process(ev(core::kMinute, "CRC retry count 1")).empty());
  EXPECT_TRUE(det.process(ev(2 * core::kMinute, "session opened")).empty());
  // After training: known templates stay silent, new ones fire once.
  EXPECT_TRUE(det.process(ev(2 * core::kHour, "CRC retry count 99")).empty());
  const auto hits =
      det.process(ev(3 * core::kHour, "kernel BUG at mm/slab.c:123"));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].example, "kernel BUG at mm/slab.c:123");
  // The same new template does not fire twice.
  EXPECT_TRUE(
      det.process(ev(4 * core::kHour, "kernel BUG at mm/slab.c:456")).empty());
  EXPECT_EQ(det.occurrences(message_template("kernel BUG at mm/slab.c:1")), 2u);
}

TEST(NoveltyTest, FirstSeenAfterTrainingFiresEvenWithNoTraining) {
  NoveltyDetector det(NoveltyParams{});  // training_until = 0
  const auto hits = det.process(ev(core::kSecond, "anything at all"));
  EXPECT_EQ(hits.size(), 1u);
}

TEST(NoveltyTest, RareReturnFires) {
  NoveltyParams params;
  params.rare_gap = core::kDay;
  NoveltyDetector det(params);
  det.process(ev(0, "lustre reconnect"));
  EXPECT_TRUE(det.process(ev(core::kHour, "lustre reconnect")).empty());
  // Silent for > rare_gap, then returns: flagged again.
  const auto hits = det.process(ev(3 * core::kDay, "lustre reconnect"));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].time, 3 * core::kDay);
}

TEST(NoveltyTest, TemplatePopulationIsCompact) {
  NoveltyDetector det(NoveltyParams{});
  for (int i = 0; i < 1000; ++i) {
    det.process(ev(i, "CRC retry count " + std::to_string(i)));
    det.process(ev(i, "job " + std::to_string(i) + " start nodes=" +
                          std::to_string(i % 64)));
  }
  EXPECT_EQ(det.known_templates(), 2u);  // 2000 messages, 2 signatures
}

}  // namespace
}  // namespace hpcmon::analysis
