// Exhaustive corruption sweep over the tier file format: every single-bit
// flip and every truncation of a real tier file must surface as a typed
// kCorruption — either at TierFile::load() (header/index damage, caught by
// the index CRC) or at load_chunk() (payload damage, caught by the per-
// entry CRC + decode validation). Nothing may load silently wrong. And a
// TierStore that finds a damaged file at open() quarantines it (renamed
// *.corrupt) instead of serving it — or refusing to start.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "store/chunk.hpp"
#include "store/tier.hpp"

namespace hpcmon::store {
namespace {

using core::kSecond;
using core::SeriesId;
using core::StatusCode;

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Build one real tier file (two series, three chunks) through the durable
/// ingest path and return its bytes + path.
struct BuiltFile {
  std::string dir;
  std::string path;
  std::vector<std::uint8_t> bytes;
  std::size_t entries = 0;
};

BuiltFile build_tier_file(const std::string& name) {
  BuiltFile out;
  out.dir = "/tmp/hpcmon_corrupt_" + name;
  std::filesystem::remove_all(out.dir);
  TierStore::Options o;
  o.dir = out.dir;
  TierStore tiers(std::move(o));
  EXPECT_TRUE(tiers.open().is_ok());

  TierWriteSpec spec;
  spec.tier = 0;
  spec.cls = 1;
  auto add = [&spec](std::uint32_t sid, core::TimePoint t0, int n) {
    std::vector<core::TimedValue> pts;
    for (int i = 0; i < n; ++i) {
      pts.push_back({t0 + i * kSecond, 1.25 * i - double(sid)});
    }
    const auto chunk = Chunk::compress(pts);
    TierWriteSpec::SeriesChunk sc;
    sc.series = SeriesId{sid};
    sc.min_time = chunk.min_time();
    sc.max_time = chunk.max_time();
    sc.summary = chunk.summary();
    sc.payload = chunk.serialize();
    spec.chunks.push_back(std::move(sc));
  };
  add(1, 0, 16);
  add(1, 100 * kSecond, 16);
  add(2, 0, 12);
  EXPECT_TRUE(tiers.ingest_hot({spec}, 200 * kSecond).is_ok());
  EXPECT_EQ(tiers.file_count(), 1u);
  out.path = tiers.files(0)[0]->path();
  out.bytes = read_file(out.path);
  out.entries = tiers.files(0)[0]->entries().size();
  EXPECT_EQ(out.entries, 3u);
  return out;
}

/// True when the damaged copy is fully rejected: load fails kCorruption, or
/// load succeeds and at least one entry's chunk read fails kCorruption.
/// (A flip under an already-loaded index only ever lives in some payload.)
bool damage_detected(const std::string& path, bool* load_failed) {
  auto loaded = TierFile::load(path);
  if (!loaded.is_ok()) {
    *load_failed = true;
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption)
        << loaded.status().message();
    return loaded.status().code() == StatusCode::kCorruption;
  }
  *load_failed = false;
  for (const auto& e : loaded.value()->entries()) {
    const auto chunk = loaded.value()->load_chunk(e);
    if (!chunk.is_ok()) {
      EXPECT_EQ(chunk.status().code(), StatusCode::kCorruption);
      return chunk.status().code() == StatusCode::kCorruption;
    }
  }
  return false;
}

TEST(TierCorruptionTest, EveryBitFlipIsDetectedAndTyped) {
  const auto built = build_tier_file("bitflip");
  ASSERT_FALSE(built.bytes.empty());
  // The format is gapless (header | index | payloads), so the two CRC
  // domains cover every byte; a gap would make the sweep below unsound.
  std::size_t payload_bytes = 0;
  {
    const auto f = TierFile::load(built.path);
    ASSERT_TRUE(f.is_ok());
    for (const auto& e : f.value()->entries()) payload_bytes += e.payload_len;
  }
  ASSERT_EQ(built.bytes.size(), 56 + 84 * built.entries + payload_bytes)
      << "tier file has uncovered padding bytes";

  const std::string victim = built.dir + "/flipped.bits";
  std::size_t index_rejections = 0;
  std::size_t payload_rejections = 0;
  for (std::size_t byte = 0; byte < built.bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto copy = built.bytes;
      copy[byte] ^= static_cast<std::uint8_t>(1u << bit);
      write_file(victim, copy);
      bool load_failed = false;
      ASSERT_TRUE(damage_detected(victim, &load_failed))
          << "bit " << bit << " of byte " << byte
          << " flipped without any kCorruption";
      (load_failed ? index_rejections : payload_rejections) += 1;
    }
  }
  // Both detection layers fired: the index CRC on header/index damage, the
  // entry CRCs on payload damage.
  EXPECT_GT(index_rejections, 0u);
  EXPECT_GT(payload_rejections, 0u);
}

TEST(TierCorruptionTest, EveryTruncationIsDetectedAndTyped) {
  const auto built = build_tier_file("trunc");
  const std::string victim = built.dir + "/truncated.bits";
  for (std::size_t len = 0; len < built.bytes.size(); ++len) {
    auto copy = built.bytes;
    copy.resize(len);
    write_file(victim, copy);
    bool load_failed = false;
    ASSERT_TRUE(damage_detected(victim, &load_failed))
        << "truncation to " << len << " bytes loaded silently";
  }
}

TEST(TierCorruptionTest, OpenQuarantinesDamagedFilesAndServesTheRest) {
  const auto built = build_tier_file("quarantine");
  // Smash a byte in the index region of the published file, in place.
  auto damaged = built.bytes;
  damaged[60] ^= 0xFF;
  write_file(built.path, damaged);

  TierStore::Options o;
  o.dir = built.dir;
  TierStore reopened(std::move(o));
  ASSERT_TRUE(reopened.open().is_ok())
      << "a damaged file must quarantine, not brick the store";
  EXPECT_EQ(reopened.quarantined_count(), 1u);
  EXPECT_EQ(reopened.file_count(), 0u);
  EXPECT_FALSE(std::filesystem::exists(built.path))
      << "damaged file still in the serving directory";
  EXPECT_TRUE(std::filesystem::exists(built.path + ".corrupt"))
      << "damaged file was deleted instead of preserved for forensics";
  // The store still serves (nothing left here, but the read path works).
  EXPECT_TRUE(reopened.query_range(SeriesId{1}, {0, 1000 * kSecond}).empty());
}

}  // namespace
}  // namespace hpcmon::store
