// Cold-tier integrity: every archived blob carries a CRC32 (V2 format), a
// flipped bit on slow media surfaces as a typed kCorruption status — not a
// garbage chunk silently decompressed into a dashboard — and legacy V1
// archives (no CRC) still load.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/result.hpp"
#include "store/retention.hpp"

namespace hpcmon::store {
namespace {

constexpr core::SeriesId kS0{3};

Archive make_archive(int series_count = 2) {
  Archive archive;
  std::vector<core::TimedValue> pts;
  for (int i = 0; i < 50; ++i) pts.push_back({i * core::kSecond, i * 2.0});
  for (int s = 0; s < series_count; ++s) {
    archive.store(core::SeriesId{static_cast<std::uint32_t>(3 + 4 * s)},
                  Chunk::compress(pts));
  }
  return archive;
}

std::vector<std::uint8_t> read_all(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  return bytes;
}

void write_all(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(b.data(), 1, b.size(), f), b.size());
  std::fclose(f);
}

template <typename T>
T read_le(const std::vector<std::uint8_t>& b, std::size_t off) {
  T v{};
  std::memcpy(&v, b.data() + off, sizeof(T));
  return v;
}

TEST(ArchiveCrcTest, CleanSaveLoadsAndFetchesIntact) {
  const std::string path = "/tmp/hpcmon_crc_clean.bin";
  const auto archive = make_archive();
  ASSERT_TRUE(archive.save_to_file(path).is_ok());
  const auto loaded = Archive::load_from_file(path);
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_EQ(loaded.value().blob_count(), archive.blob_count());
  EXPECT_EQ(loaded.value().fetch(kS0, {0, core::kDay}),
            archive.fetch(kS0, {0, core::kDay}));
  std::remove(path.c_str());
}

TEST(ArchiveCrcTest, BitFlipInBlobIsTypedCorruption) {
  const std::string path = "/tmp/hpcmon_crc_bitflip.bin";
  ASSERT_TRUE(make_archive().save_to_file(path).is_ok());
  auto bytes = read_all(path);
  ASSERT_GT(bytes.size(), 32u);
  // The file ends inside the last blob's compressed payload: flip one bit
  // there, exactly the single-event upset a long-lived cold file can take.
  bytes[bytes.size() - 1] ^= 0x01;
  write_all(path, bytes);

  const auto loaded = Archive::load_from_file(path);
  ASSERT_FALSE(loaded.is_ok());
  EXPECT_EQ(loaded.status().code(), core::StatusCode::kCorruption);
  EXPECT_NE(loaded.message().find("CRC"), std::string::npos);
  // The message localizes the damage (series, blob) for the operator.
  EXPECT_NE(loaded.message().find("series"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ArchiveCrcTest, EverySingleBitFlipInPayloadIsCaught) {
  // Property-style sweep: flipping ANY single bit of a blob payload must be
  // detected — CRC32 guarantees detection of all 1-bit errors.
  const std::string path = "/tmp/hpcmon_crc_sweep.bin";
  ASSERT_TRUE(make_archive(1).save_to_file(path).is_ok());
  const auto pristine = read_all(path);
  // Layout: magic u32, n_series u32, then id u32, n_blobs u32, then per blob
  // min u64, max u64, len u32, crc u32, raw[len]. One series, one blob.
  const std::size_t payload_off = 4 + 4 + 4 + 4 + 8 + 8 + 4 + 4;
  const auto len = read_le<std::uint32_t>(pristine, payload_off - 8);
  ASSERT_EQ(payload_off + len, pristine.size());
  for (std::size_t i = payload_off; i < pristine.size(); i += 7) {
    for (int bit = 0; bit < 8; bit += 3) {
      auto bytes = pristine;
      bytes[i] ^= static_cast<std::uint8_t>(1u << bit);
      write_all(path, bytes);
      const auto loaded = Archive::load_from_file(path);
      ASSERT_FALSE(loaded.is_ok()) << "undetected flip at byte " << i;
      EXPECT_EQ(loaded.status().code(), core::StatusCode::kCorruption);
    }
  }
  std::remove(path.c_str());
}

TEST(ArchiveCrcTest, TruncationIsAnErrorNotAPartialLoad) {
  const std::string path = "/tmp/hpcmon_crc_truncated.bin";
  ASSERT_TRUE(make_archive().save_to_file(path).is_ok());
  const auto bytes = read_all(path);
  // Chop mid-payload and mid-header: both must refuse to load.
  for (const auto keep : {bytes.size() - 5, std::size_t{4 + 4 + 4 + 4 + 8 + 2}}) {
    write_all(path, {bytes.begin(), bytes.begin() + static_cast<long>(keep)});
    EXPECT_FALSE(Archive::load_from_file(path).is_ok()) << "kept " << keep;
  }
  std::remove(path.c_str());
}

TEST(ArchiveCrcTest, LegacyV1ArchiveStillLoads) {
  // Rewrite a V2 file into the V1 layout (old magic, no per-blob CRC): sites
  // with cold archives from before the integrity change must not lose them.
  const std::string path = "/tmp/hpcmon_crc_v1.bin";
  const auto archive = make_archive();
  ASSERT_TRUE(archive.save_to_file(path).is_ok());
  const auto v2 = read_all(path);

  std::vector<std::uint8_t> v1;
  auto copy = [&](std::size_t off, std::size_t n) {
    v1.insert(v1.end(), v2.begin() + static_cast<long>(off),
              v2.begin() + static_cast<long>(off + n));
  };
  const std::uint32_t v1_magic = 0x48504D41;  // "HPMA"
  v1.resize(4);
  std::memcpy(v1.data(), &v1_magic, 4);
  std::size_t off = 4;
  const auto n_series = read_le<std::uint32_t>(v2, off);
  copy(off, 4);
  off += 4;
  for (std::uint32_t s = 0; s < n_series; ++s) {
    copy(off, 4);  // series id
    const auto n_blobs = read_le<std::uint32_t>(v2, off + 4);
    copy(off + 4, 4);
    off += 8;
    for (std::uint32_t b = 0; b < n_blobs; ++b) {
      copy(off, 8 + 8 + 4);  // min, max, len — but NOT the crc word
      const auto len = read_le<std::uint32_t>(v2, off + 16);
      copy(off + 24, len);  // skip the 4-byte crc, copy the payload
      off += 24 + len;
    }
  }
  write_all(path, v1);

  const auto loaded = Archive::load_from_file(path);
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_EQ(loaded.value().blob_count(), archive.blob_count());
  EXPECT_EQ(loaded.value().fetch(kS0, {0, core::kDay}),
            archive.fetch(kS0, {0, core::kDay}));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hpcmon::store
