// Property-style checks of the tier ladder: whatever the random workload
// and whatever the pass schedule, the merged tier+hot view must (a) return
// raw-resident data verbatim, (b) keep whole-range aggregates EXACT against
// raw ground truth across any number of agings (the dual-summary contract),
// and (c) produce downsampled points that are precisely the floor-aligned
// bucket reductions of the raw history.
//
// Values are integers (exactly representable doubles), so "exact" means
// bitwise double equality — any drift in the summary-merge plumbing fails
// loudly instead of hiding inside an epsilon.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <map>
#include <memory>
#include <vector>

#include "core/rng.hpp"
#include "store/compactor.hpp"
#include "store/tier.hpp"
#include "store/tsdb.hpp"

namespace hpcmon::store {
namespace {

using core::kMinute;
using core::kSecond;
using core::SeriesId;
using core::TimePoint;
using core::TimeRange;

constexpr TimeRange kEverything{-core::kHour, 10000 * kMinute};
constexpr core::Duration kRes = 30 * kSecond;

/// Two rungs, nothing ever expires (the last tier keeps everything), so
/// whole-range aggregates must stay exact forever.
TierPolicy keep_forever_policy(core::Duration raw_keep) {
  TierPolicy p;
  TierSpec raw;
  raw.resolution = 0;
  raw.agg = Agg::kLast;
  raw.keep = {raw_keep, raw_keep, raw_keep};
  TierSpec coarse;
  coarse.resolution = kRes;
  coarse.agg = Agg::kMean;
  const auto forever = 100000 * core::kHour;
  coarse.keep = {forever, forever, forever};
  p.tiers = {raw, coarse};
  return p;
}

struct Truth {
  std::vector<core::TimedValue> points;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
};

TEST(TierPropertyTest, RawResidentDataRoundTripsVerbatim) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const std::string dir =
        "/tmp/hpcmon_prop_raw_" + std::to_string(seed);
    std::filesystem::remove_all(dir);
    core::Rng rng(seed);
    TimeSeriesStore hot(8);
    // A burst narrower than the raw retention window, so the first pass
    // tiers it without aging anything.
    std::map<std::uint32_t, std::vector<core::TimedValue>> truth;
    TimePoint max_t = 0;
    for (std::uint32_t sid = 1; sid <= 3; ++sid) {
      TimePoint t = rng.uniform_int(0, 3) * kSecond;
      for (int i = 0; i < 40; ++i) {
        const double v = double(rng.uniform_int(-1000, 1000));
        ASSERT_TRUE(hot.append(SeriesId{sid}, t, v));
        truth[sid].push_back({t, v});
        max_t = std::max(max_t, t);
        t += kSecond;
      }
    }
    TierStore::Options o;
    o.dir = dir;
    o.policy = keep_forever_policy(5 * kMinute);
    TierStore tiers(std::move(o));
    ASSERT_TRUE(tiers.open().is_ok());
    CompactorOptions co;
    co.hot_window = 10 * kSecond;
    Compactor compactor({&hot}, &tiers, std::move(co));
    ASSERT_TRUE(compactor.run_pass(max_t + 70 * kSecond).is_ok());
    ASSERT_GT(tiers.file_count(), 0u);
    ASSERT_TRUE(tiers.files(1).empty()) << "nothing should have aged yet";

    const TierSpanView<TimeSeriesStore> span(&tiers, &hot);
    for (const auto& [sid, pts] : truth) {
      const auto got = span.query_range(SeriesId{sid}, kEverything);
      ASSERT_EQ(got.size(), pts.size()) << "seed " << seed;
      for (std::size_t i = 0; i < pts.size(); ++i) {
        EXPECT_EQ(got[i].time, pts[i].time);
        EXPECT_EQ(got[i].value, pts[i].value);
      }
    }
  }
}

TEST(TierPropertyTest, WholeRangeAggregatesExactUnderAnyPassSchedule) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const std::string dir =
        "/tmp/hpcmon_prop_agg_" + std::to_string(seed);
    std::filesystem::remove_all(dir);
    core::Rng rng(seed);
    TimeSeriesStore hot(static_cast<std::size_t>(rng.uniform_int(4, 16)));
    std::map<std::uint32_t, Truth> truth;
    TimePoint max_t = 0;
    for (std::uint32_t sid = 1; sid <= 4; ++sid) {
      auto& tr = truth[sid];
      TimePoint t = rng.uniform_int(0, 30) * kSecond;
      const int n = static_cast<int>(rng.uniform_int(50, 200));
      for (int i = 0; i < n; ++i) {
        const double v = double(rng.uniform_int(-1000, 1000));
        ASSERT_TRUE(hot.append(SeriesId{sid}, t, v));
        tr.points.push_back({t, v});
        tr.sum += v;
        tr.min = i == 0 ? v : std::min(tr.min, v);
        tr.max = i == 0 ? v : std::max(tr.max, v);
        max_t = std::max(max_t, t);
        t += rng.uniform_int(1, 30) * kSecond;
      }
    }
    TierStore::Options o;
    o.dir = dir;
    o.policy = keep_forever_policy(2 * kMinute);
    TierStore tiers(std::move(o));
    ASSERT_TRUE(tiers.open().is_ok());
    CompactorOptions co;
    co.hot_window = kMinute;
    Compactor compactor({&hot}, &tiers, std::move(co));
    // A random pass schedule marching well past the data: every sealed
    // chunk tiers out and then ages, in whatever grouping the schedule
    // happens to produce.
    TimePoint now = 0;
    while (now < max_t + 20 * kMinute) {
      now += rng.uniform_int(1, 5) * kMinute;
      ASSERT_TRUE(compactor.run_pass(now).is_ok());
    }
    ASSERT_FALSE(tiers.files(1).empty()) << "seed " << seed;

    const TierSpanView<TimeSeriesStore> span(&tiers, &hot);
    for (const auto& [sid, tr] : truth) {
      const SeriesId s{sid};
      const double n = double(tr.points.size());
      EXPECT_EQ(span.aggregate(s, kEverything, Agg::kCount).value_or(-1), n);
      EXPECT_EQ(span.aggregate(s, kEverything, Agg::kSum).value_or(-1),
                tr.sum)
          << "seed " << seed << " series " << sid;
      EXPECT_EQ(span.aggregate(s, kEverything, Agg::kMin).value_or(-1),
                tr.min);
      EXPECT_EQ(span.aggregate(s, kEverything, Agg::kMax).value_or(-1),
                tr.max);
      EXPECT_EQ(span.aggregate(s, kEverything, Agg::kMean).value_or(-1),
                tr.sum / n);
      EXPECT_EQ(span.aggregate(s, kEverything, Agg::kLast).value_or(-1e18),
                tr.points.back().value);
    }
  }
}

TEST(TierPropertyTest, AgedPointsAreFloorAlignedBucketReductions) {
  for (std::uint64_t seed = 10; seed <= 13; ++seed) {
    const std::string dir =
        "/tmp/hpcmon_prop_ds_" + std::to_string(seed);
    std::filesystem::remove_all(dir);
    core::Rng rng(seed);
    TimeSeriesStore hot(8);
    std::vector<core::TimedValue> raw;
    const SeriesId s{42};
    TimePoint t = 0;
    for (int i = 0; i < 150; ++i) {
      const double v = double(rng.uniform_int(-1000, 1000));
      ASSERT_TRUE(hot.append(s, t, v));
      raw.push_back({t, v});
      t += rng.uniform_int(1, 20) * kSecond;
    }
    const auto max_t = raw.back().time;
    TierStore::Options o;
    o.dir = dir;
    o.policy = keep_forever_policy(2 * kMinute);
    TierStore tiers(std::move(o));
    ASSERT_TRUE(tiers.open().is_ok());
    CompactorOptions co;
    co.hot_window = kMinute;
    Compactor compactor({&hot}, &tiers, std::move(co));
    // One pass far in the future tiers AND ages everything in one motion,
    // so every bucket's mean is computed over the bucket's full raw
    // membership. (Aging spread across passes may split a boundary bucket
    // into partial means — correct within downsample semantics, but not
    // comparable to a whole-bucket ground truth.)
    ASSERT_TRUE(compactor.run_pass(max_t + core::kHour).is_ok());
    ASSERT_FALSE(tiers.files(1).empty());
    ASSERT_TRUE(tiers.files(0).empty()) << "raw files should all have aged";

    // Ground truth: floor-aligned mean per kRes bucket over the aged span.
    std::map<TimePoint, ChunkSummary> buckets;
    const auto aged_before = tiers.watermark();
    for (const auto& p : raw) {
      if (p.time < aged_before) buckets[(p.time / kRes) * kRes].add(p);
    }
    const auto got = tiers.query_range(s, kEverything);
    ASSERT_EQ(got.size(), buckets.size()) << "seed " << seed;
    auto it = buckets.begin();
    for (std::size_t i = 0; i < got.size(); ++i, ++it) {
      EXPECT_EQ(got[i].time % kRes, 0) << "aged point not bucket-aligned";
      EXPECT_EQ(got[i].time, it->first);
      EXPECT_EQ(got[i].value, it->second.sum / double(it->second.count))
          << "seed " << seed << " bucket " << it->first;
    }
    // The downsample read path agrees with itself at the native resolution.
    const auto ds = tiers.downsample(s, kEverything, kRes, Agg::kMean);
    ASSERT_EQ(ds.size(), got.size());
    for (std::size_t i = 0; i < ds.size(); ++i) {
      EXPECT_EQ(ds[i].time, got[i].time);
      EXPECT_EQ(ds[i].value, got[i].value);
    }
  }
}

}  // namespace
}  // namespace hpcmon::store
