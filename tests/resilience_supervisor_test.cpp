// SupervisedSampler: error containment, deadline watchdog, quarantine via
// the circuit breaker, and the headline guarantee — one permanently hung
// source never stalls the sweep.
#include "resilience/supervisor.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "resilience/fault.hpp"

namespace hpcmon::resilience {
namespace {

using core::SampleBatch;
using core::TimePoint;

/// Emits one sample per sweep; throws while `fail` is set (after first
/// polluting the output batch, so discard-on-error is observable).
class ScriptedSampler : public collect::Sampler {
 public:
  explicit ScriptedSampler(bool* fail) : fail_(fail) {}
  std::string name() const override { return "scripted"; }
  void sample(TimePoint sweep_time, SampleBatch& out) override {
    ++calls;
    out.samples.push_back({core::SeriesId{1}, sweep_time, 1.0});
    if (*fail_) throw std::runtime_error("scripted failure");
  }
  int calls = 0;

 private:
  bool* fail_;
};

SupervisorOptions inline_options(int threshold, core::Duration cooldown) {
  SupervisorOptions o;
  o.deadline_ms = 0;
  o.breaker.failure_threshold = threshold;
  o.breaker.cooldown = cooldown;
  o.breaker.jitter = 0.0;
  return o;
}

TEST(SupervisorTest, InlineErrorsContainedAndPartialOutputDiscarded) {
  bool fail = true;
  SupervisedSampler sup(std::make_unique<ScriptedSampler>(&fail),
                        inline_options(5, core::kMinute));
  SampleBatch out;
  out.sweep_time = 0;
  sup.sample(0, out);
  // The sampler pushed a sample before throwing; the supervisor discarded it.
  EXPECT_TRUE(out.samples.empty());
  EXPECT_EQ(sup.stats().errors, 1u);
  fail = false;
  sup.sample(core::kMinute, out);
  EXPECT_EQ(out.samples.size(), 1u);
  EXPECT_EQ(sup.stats().successes, 1u);
  EXPECT_EQ(sup.stats().samples_merged, 1u);
}

TEST(SupervisorTest, BreakerOpensHalfOpensAndCloses) {
  bool fail = true;
  SupervisedSampler sup(std::make_unique<ScriptedSampler>(&fail),
                        inline_options(2, 5 * core::kMinute));
  SampleBatch out;
  const auto sweep = [&](TimePoint t) { sup.sample(t, out); };

  sweep(0 * core::kMinute);
  EXPECT_EQ(sup.breaker_state(), BreakerState::kClosed);
  sweep(1 * core::kMinute);  // 2nd consecutive failure -> open
  EXPECT_EQ(sup.breaker_state(), BreakerState::kOpen);
  sweep(2 * core::kMinute);  // quarantined: inner sampler not called
  sweep(3 * core::kMinute);
  EXPECT_EQ(sup.stats().skipped, 2u);
  EXPECT_EQ(sup.stats().errors, 2u);

  fail = false;  // source repaired; next admitted call is the probe
  sweep(6 * core::kMinute);  // past retry_at (1min open + 5min cooldown)
  EXPECT_EQ(sup.breaker_state(), BreakerState::kClosed);
  EXPECT_EQ(sup.breaker().stats().half_open_probes, 1u);
  EXPECT_EQ(sup.breaker().stats().closes, 1u);
  EXPECT_EQ(out.samples.size(), 1u);
  EXPECT_EQ(sup.stats().calls, 5u);
}

TEST(SupervisorTest, DeadlineAbandonsHungCallAndQuarantines) {
  FaultSpec spec;
  spec.sampler_hang_at = 1;
  spec.sampler_hang_sticky = true;  // permanently wedged probe
  FaultPlan plan(99, spec);

  bool fail = false;
  auto inner = std::make_unique<ScriptedSampler>(&fail);
  SupervisorOptions opts;
  opts.deadline_ms = 25;
  opts.breaker.failure_threshold = 2;
  opts.breaker.cooldown = core::kHour;
  opts.breaker.jitter = 0.0;
  SupervisedSampler sup(
      std::make_unique<FaultySampler>(std::move(inner), plan), opts);

  SampleBatch out;
  for (int i = 0; i < 5; ++i) {
    sup.sample(i * core::kMinute, out);  // returns despite the hang
  }
  EXPECT_EQ(sup.stats().timeouts, 2u);  // two abandoned watchdog calls
  EXPECT_EQ(sup.stats().skipped, 3u);   // then the breaker quarantined it
  EXPECT_EQ(sup.breaker_state(), BreakerState::kOpen);
  EXPECT_TRUE(out.samples.empty());
  EXPECT_EQ(plan.active_hangs(), 2u);
  plan.release_hangs();
  EXPECT_EQ(plan.active_hangs(), 0u);
  // Give the released (detached) watchdog threads a beat to finish.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
}

TEST(SupervisorTest, HungSamplerNeverStallsTheSweep) {
  // Acceptance scenario: one permanently hung source among healthy ones.
  // Every sweep must complete and the healthy sources must keep producing.
  FaultSpec spec;
  spec.sampler_hang_at = 1;
  spec.sampler_hang_sticky = true;
  FaultPlan plan(7, spec);

  bool never_fail = false;
  SupervisorOptions opts;
  opts.deadline_ms = 25;
  opts.breaker.failure_threshold = 2;
  opts.breaker.cooldown = core::kHour;  // stays dark for the whole test
  opts.breaker.jitter = 0.0;

  SupervisorOptions healthy_opts = opts;
  healthy_opts.deadline_ms = 2000;  // generous: healthy calls always finish

  std::vector<std::unique_ptr<SupervisedSampler>> samplers;
  samplers.push_back(std::make_unique<SupervisedSampler>(
      std::make_unique<FaultySampler>(
          std::make_unique<ScriptedSampler>(&never_fail), plan),
      opts));
  samplers.push_back(std::make_unique<SupervisedSampler>(
      std::make_unique<ScriptedSampler>(&never_fail), healthy_opts));
  samplers.push_back(std::make_unique<SupervisedSampler>(
      std::make_unique<ScriptedSampler>(&never_fail), healthy_opts));

  constexpr int kSweeps = 6;
  std::size_t healthy_samples = 0;
  for (int i = 0; i < kSweeps; ++i) {
    SampleBatch sweep;
    sweep.sweep_time = i * core::kMinute;
    for (auto& s : samplers) s->sample(sweep.sweep_time, sweep);
    healthy_samples += sweep.samples.size();
  }
  // Both healthy sources produced on every sweep; the hung one contributed
  // nothing but cost at most two 25 ms deadlines before quarantine.
  EXPECT_EQ(healthy_samples, 2u * kSweeps);
  EXPECT_EQ(samplers[0]->stats().timeouts, 2u);
  EXPECT_EQ(samplers[0]->stats().skipped, kSweeps - 2u);
  EXPECT_EQ(samplers[0]->breaker_state(), BreakerState::kOpen);
  EXPECT_EQ(samplers[1]->stats().successes, static_cast<std::uint64_t>(kSweeps));
  EXPECT_EQ(samplers[2]->stats().successes, static_cast<std::uint64_t>(kSweeps));
  EXPECT_EQ(plan.injected().sampler_hangs, 2u);

  SupervisorStats total;
  for (auto& s : samplers) total += s->stats();
  EXPECT_EQ(total.calls, 3u * kSweeps);
  EXPECT_EQ(total.timeouts, 2u);

  plan.release_hangs();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
}

TEST(SupervisorTest, DeadlinePathMergesSuccessfulOutput) {
  bool fail = false;
  SupervisorOptions opts;
  opts.deadline_ms = 2000;  // generous: the call always finishes
  SupervisedSampler sup(std::make_unique<ScriptedSampler>(&fail), opts);
  SampleBatch out;
  out.sweep_time = core::kMinute;
  out.samples.push_back({core::SeriesId{9}, 0, 9.0});  // pre-existing content
  sup.sample(core::kMinute, out);
  ASSERT_EQ(out.samples.size(), 2u);
  EXPECT_EQ(out.samples[1].time, core::kMinute);
  EXPECT_EQ(sup.stats().successes, 1u);
  // A thrown error on the watchdog thread is contained and counted too.
  fail = true;
  sup.sample(2 * core::kMinute, out);
  EXPECT_EQ(out.samples.size(), 2u);
  EXPECT_EQ(sup.stats().errors, 1u);
}

}  // namespace
}  // namespace hpcmon::resilience
