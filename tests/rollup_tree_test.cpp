// rollup::RollupTree unit tests: the reducer concept, latest-value fold
// semantics, incremental bottom-up recompute, snapshot immutability, and the
// membership-follows-retention regression (evict a series mid-run and the
// tree must keep matching a scatter-gather over the store's latest values).
#include "rollup/tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/registry.hpp"
#include "core/strings.hpp"
#include "ingest/sharded_store.hpp"
#include "obs/registry.hpp"
#include "rollup/reducer.hpp"

namespace hpcmon::rollup {
namespace {

using core::ComponentId;
using core::ComponentKind;
using core::SeriesId;

/// The stat-plugin promise: a reducer nobody anticipated, no tree changes.
struct RangeReducer {
  static double reduce(const RollupStat& s) { return s.max - s.min; }
};
static_assert(Reducer<RangeReducer>);

/// A two-cabinet, two-nodes-per-cabinet hand-built containment tree.
struct SmallFleet {
  core::MetricRegistry reg;
  ComponentId system, cab0, cab1;
  ComponentId nodes[4];
  SeriesId temp[4];

  SmallFleet() {
    system = reg.register_component(
        {"system", ComponentKind::kSystem, core::kNoComponent});
    cab0 = reg.register_component({"c0-0", ComponentKind::kCabinet, system});
    cab1 = reg.register_component({"c1-0", ComponentKind::kCabinet, system});
    const ComponentId cabs[2] = {cab0, cab1};
    for (int i = 0; i < 4; ++i) {
      nodes[i] = reg.register_component(
          {core::strformat("c%d-0c0s0n%d", i / 2, i % 2),
           ComponentKind::kNode, cabs[i / 2]});
      temp[i] = reg.series("node.temp_c", nodes[i]);
    }
  }
};

/// Scatter-gather reference: fold self (the store's latest value for this
/// exact series), then children ascending by raw ComponentId — the same
/// deterministic order the tree contracts to, so equality is bitwise.
template <typename Store>
RollupStat reference(core::MetricRegistry& reg, const Store& store,
                     std::string_view metric, ComponentId comp) {
  RollupStat total;
  if (const auto m = reg.find_metric(metric)) {
    if (const auto lv = store.latest(reg.series(*m, comp))) {
      total = RollupStat::of_value(lv->time, lv->value);
    }
  }
  auto kids = reg.children_of(comp);
  std::sort(kids.begin(), kids.end(), [](ComponentId a, ComponentId b) {
    return core::raw(a) < core::raw(b);
  });
  for (const auto child : kids) {
    total.fold(reference(reg, store, metric, child));
  }
  return total;
}

TEST(RollupStatTest, FoldKeepsFirstValueOnLastTimeTies) {
  auto a = RollupStat::of_value(10, 1.0);
  a.fold(RollupStat::of_value(10, 2.0));  // tie: earlier-folded member wins
  EXPECT_EQ(a.last, 1.0);
  EXPECT_EQ(a.count, 2u);
  EXPECT_EQ(a.sum, 3.0);
  a.fold(RollupStat{});  // empty members are inert
  EXPECT_EQ(a.count, 2u);
  a.fold(RollupStat::of_value(11, -5.0));
  EXPECT_EQ(a.last, -5.0);
  EXPECT_EQ(a.min, -5.0);
  EXPECT_EQ(a.max, 2.0);
}

TEST(RollupStatTest, ReducersAndRuntimeDispatch) {
  auto s = RollupStat::of_value(5, 4.0);
  s.fold(RollupStat::of_value(6, 10.0));
  EXPECT_EQ(SumReducer::reduce(s), 14.0);
  EXPECT_EQ(MeanReducer::reduce(s), 7.0);
  EXPECT_EQ(MinReducer::reduce(s), 4.0);
  EXPECT_EQ(MaxReducer::reduce(s), 10.0);
  EXPECT_EQ(LastReducer::reduce(s), 10.0);
  EXPECT_EQ(CountReducer::reduce(s), 2.0);
  EXPECT_EQ(RangeReducer::reduce(s), 6.0);
  EXPECT_EQ(reduce(s, store::Agg::kMean), 7.0);
  EXPECT_EQ(reduce(RollupStat{}, store::Agg::kMean), std::nullopt);
}

TEST(RollupTreeTest, SnapshotIsNeverNullAndStartsEmpty) {
  SmallFleet f;
  RollupTree tree(f.reg);
  const auto snap = tree.snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->version(), 0u);
  EXPECT_EQ(snap->entry_count(), 0u);
  EXPECT_EQ(snap->find(f.system, "node.temp_c"), nullptr);
}

TEST(RollupTreeTest, IncrementalHierarchicalAggregation) {
  SmallFleet f;
  RollupTree tree(f.reg);
  const double temps[4] = {40.0, 50.0, 60.0, 30.0};
  for (int i = 0; i < 4; ++i) {
    tree.observe(0, core::Sample{f.temp[i], 100 + i, temps[i]});
  }
  const auto stats = tree.tick();
  EXPECT_EQ(stats.leaf_updates, 4u);
  EXPECT_GT(stats.changed, 0u);

  const auto snap = tree.snapshot();
  EXPECT_EQ(snap->version(), 1u);
  const auto* sys = snap->find(f.system, "node.temp_c");
  ASSERT_NE(sys, nullptr);
  EXPECT_EQ(sys->count, 4u);
  EXPECT_EQ(sys->sum, 180.0);
  EXPECT_EQ(sys->min, 30.0);
  EXPECT_EQ(sys->max, 60.0);
  EXPECT_EQ(sys->last, 30.0);  // node 3 reported last (t=103)
  EXPECT_EQ(sys->last_time, 103);

  const auto* c0 = snap->find(f.cab0, "node.temp_c");
  ASSERT_NE(c0, nullptr);
  EXPECT_EQ(c0->count, 2u);
  EXPECT_EQ(c0->sum, 90.0);
  const auto* leaf = snap->find(f.nodes[2], "node.temp_c");
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(leaf->count, 1u);
  EXPECT_EQ(leaf->last, 60.0);

  // Reducer reads straight off the snapshot.
  EXPECT_EQ(snap->read<MeanReducer>(f.system, "node.temp_c"), 45.0);
  EXPECT_EQ(snap->read<RangeReducer>(f.cab1, "node.temp_c"), 30.0);
  EXPECT_EQ(snap->aggregate(f.cab0, "node.temp_c", store::Agg::kMax), 50.0);
  EXPECT_EQ(snap->read<MeanReducer>(f.system, "gpu.power_w"), std::nullopt);

  // One leaf moves: ancestors recompute, siblings' cabinets don't change,
  // and the previously published snapshot is immutable.
  tree.observe(0, core::Sample{f.temp[0], 200, 44.0});
  const auto stats2 = tree.tick();
  EXPECT_EQ(stats2.leaf_updates, 1u);
  const auto snap2 = tree.snapshot();
  EXPECT_EQ(snap2->version(), 2u);
  EXPECT_EQ(snap2->find(f.cab0, "node.temp_c")->sum, 94.0);
  EXPECT_EQ(snap2->find(f.cab1, "node.temp_c")->sum,
            snap->find(f.cab1, "node.temp_c")->sum);
  EXPECT_EQ(snap->find(f.cab0, "node.temp_c")->sum, 90.0);  // old view frozen
  EXPECT_EQ(sys->sum, 180.0);
}

TEST(RollupTreeTest, LatestValueSemanticsRejectStaleAndTiedUpdates) {
  SmallFleet f;
  RollupTree tree(f.reg);
  tree.observe(0, core::Sample{f.temp[0], 100, 1.0});
  tree.tick();
  // Older-than-applied and tied-with-applied updates are both discarded —
  // exactly the store's strictly-increasing append contract.
  tree.observe(0, core::Sample{f.temp[0], 99, 7.0});
  tree.observe(0, core::Sample{f.temp[0], 100, 7.0});
  const auto stats = tree.tick();
  EXPECT_EQ(stats.leaf_updates, 0u);
  EXPECT_EQ(tree.snapshot()->find(f.nodes[0], "node.temp_c")->last, 1.0);
  // Within one window, the max-time sample wins regardless of arrival order.
  tree.observe(0, core::Sample{f.temp[1], 300, 3.0});
  tree.observe(0, core::Sample{f.temp[1], 250, 9.0});
  tree.tick();
  const auto* leaf = tree.snapshot()->find(f.nodes[1], "node.temp_c");
  EXPECT_EQ(leaf->last, 3.0);
  EXPECT_EQ(leaf->last_time, 300);
}

TEST(RollupTreeTest, ForgetRetractsAndReobserveResurrects) {
  SmallFleet f;
  RollupTree tree(f.reg);
  for (int i = 0; i < 4; ++i) {
    tree.observe(0, core::Sample{f.temp[i], 10 + i, 1.0});
  }
  tree.tick();
  tree.forget_series(f.temp[3]);
  const auto stats = tree.tick();
  EXPECT_EQ(stats.forgotten, 1u);
  auto snap = tree.snapshot();
  EXPECT_EQ(snap->find(f.system, "node.temp_c")->count, 3u);
  EXPECT_TRUE(snap->find(f.nodes[3], "node.temp_c")->empty());
  EXPECT_EQ(snap->find(f.cab1, "node.temp_c")->count, 1u);
  // A later observation re-admits the series at any representable time.
  tree.observe(0, core::Sample{f.temp[3], 5, 2.0});
  tree.tick();
  snap = tree.snapshot();
  EXPECT_EQ(snap->find(f.system, "node.temp_c")->count, 4u);
  EXPECT_EQ(snap->find(f.nodes[3], "node.temp_c")->last, 2.0);
}

TEST(RollupTreeTest, ForgetBeatsPendingObservedBeforeIt) {
  SmallFleet f;
  RollupTree tree(f.reg);
  tree.observe(0, core::Sample{f.temp[0], 100, 1.0});
  tree.forget_series(f.temp[0]);  // clears the pending cell immediately
  EXPECT_EQ(tree.tick().leaf_updates, 0u);
  // The level was interned by the observe but never got a value.
  const auto* sys = tree.snapshot()->find(f.system, "node.temp_c");
  ASSERT_NE(sys, nullptr);
  EXPECT_TRUE(sys->empty());
  // ...but an observation AFTER the forget wins (it is newer information).
  tree.observe(0, core::Sample{f.temp[0], 100, 1.0});
  tree.forget_series(f.temp[0]);
  tree.observe(0, core::Sample{f.temp[0], 101, 2.0});
  tree.tick();
  EXPECT_EQ(tree.snapshot()->find(f.nodes[0], "node.temp_c")->last, 2.0);
}

// Satellite regression: rollup membership follows eviction. Evict one
// series' entire history mid-run and the tree must agree — bitwise — with a
// scatter-gather over the store's latest values at every level, both right
// after the retraction and after the series returns.
TEST(RollupTreeTest, EvictionMidRunKeepsTreeEqualToScatterGather) {
  SmallFleet f;
  // chunk_points = 4: eight appends seal two chunks and leave the head
  // empty, so evict_before() can fully empty a series (heads never evict).
  ingest::ShardedTimeSeriesStore store(/*shards=*/2, /*chunk_points=*/4);
  RollupTree tree(f.reg, {.shards = store.shard_count()});
  store.attach_rollup(&tree);

  // Node 0 gets history that will be entirely behind the cutoff; the others
  // keep a younger second chunk.
  for (int i = 0; i < 4; ++i) {
    for (int k = 0; k < 8; ++k) {
      const core::TimePoint t = (i == 0 || k < 4) ? (10 + k) : (1000 + k);
      ASSERT_TRUE(store.append(f.temp[i], t, 100.0 * i + k));
    }
  }
  tree.tick();
  const auto check_all_levels = [&] {
    const auto snap = tree.snapshot();
    for (const auto comp : {f.system, f.cab0, f.cab1, f.nodes[0], f.nodes[1],
                            f.nodes[2], f.nodes[3]}) {
      const auto ref = reference(f.reg, store, "node.temp_c", comp);
      const auto* got = snap->find(comp, "node.temp_c");
      if (got == nullptr) {
        EXPECT_TRUE(ref.empty()) << core::raw(comp);
      } else {
        EXPECT_EQ(*got, ref) << core::raw(comp);
      }
    }
  };
  check_all_levels();
  EXPECT_EQ(tree.snapshot()->find(f.system, "node.temp_c")->count, 4u);

  // Retention pass: everything older than t=500 goes. Node 0's series is
  // now empty, fires the gone listener, and must leave the rollup.
  store.evict_before(500, {});
  // Mid-run churn: node 1 reports again between the eviction and the tick.
  ASSERT_TRUE(store.append(f.temp[1], 2000, 55.0));
  tree.tick();
  check_all_levels();
  const auto* sys = tree.snapshot()->find(f.system, "node.temp_c");
  EXPECT_EQ(sys->count, 3u);
  EXPECT_EQ(sys->last, 55.0);

  // The evicted node comes back (times keep increasing past its old data).
  ASSERT_TRUE(store.append(f.temp[0], 3000, 42.0));
  tree.tick();
  check_all_levels();
  EXPECT_EQ(tree.snapshot()->find(f.system, "node.temp_c")->count, 4u);

  store.attach_rollup(nullptr);  // detach before the tree dies
}

TEST(RollupTreeTest, ShardedRollupAggregateAnswersFromTree) {
  SmallFleet f;
  ingest::ShardedTimeSeriesStore store(2);
  EXPECT_EQ(store.rollup_aggregate(f.system, "node.temp_c", store::Agg::kMean),
            std::nullopt);  // no tree attached
  RollupTree tree(f.reg, {.shards = store.shard_count()});
  store.attach_rollup(&tree);
  const double temps[4] = {40.0, 50.0, 60.0, 30.0};
  std::vector<core::Sample> batch;
  for (int i = 0; i < 4; ++i) batch.push_back({f.temp[i], 100, temps[i]});
  EXPECT_EQ(store.append_batch(batch), 4u);
  tree.tick();
  EXPECT_EQ(store.rollup_aggregate(f.system, "node.temp_c", store::Agg::kMean),
            45.0);
  EXPECT_EQ(store.rollup_aggregate(f.cab1, "node.temp_c", store::Agg::kMin),
            30.0);
  EXPECT_EQ(store.rollup_aggregate(f.cab1, "nope", store::Agg::kMin),
            std::nullopt);
  // append_run feeds the tree its max-time sample too.
  std::vector<core::Sample> run = {{f.temp[0], 200, 41.0},
                                   {f.temp[0], 201, 43.0}};
  EXPECT_EQ(store.append_run(f.temp[0], run), 2u);
  tree.tick();
  EXPECT_EQ(store.rollup_aggregate(f.nodes[0], "node.temp_c",
                                   store::Agg::kLast),
            43.0);
  store.attach_rollup(nullptr);
}

TEST(RollupTreeTest, ObsInstrumentsCountTheWork) {
  SmallFleet f;
  RollupTree tree(f.reg);
  obs::ObsRegistry obs;
  tree.attach_to(obs);
  tree.observe(0, core::Sample{f.temp[0], 1, 1.0});
  tree.tick();
  (void)tree.snapshot();
  tree.forget_series(f.temp[0]);
  tree.tick();
  const auto snap = obs.snapshot();
  EXPECT_EQ(snap.counter("rollup.ticks"), 2u);
  EXPECT_EQ(snap.counter("rollup.updates"), 1u);
  EXPECT_EQ(snap.counter("rollup.forgotten"), 1u);
  EXPECT_GT(snap.counter("rollup.reads"), 0u);
  EXPECT_GT(snap.counter("rollup.recomputes"), 0u);
}

}  // namespace
}  // namespace hpcmon::rollup
