// Property tests pinning the word-at-a-time codec to the original
// bit-at-a-time implementation (tests/reference_codec.hpp, kept verbatim as
// the oracle):
//   * encode: Chunk::compress payload bytes are identical on seeded random
//     workloads covering every delta-of-delta class and XOR window shape;
//   * decode: decode_all / ChunkCursor reproduce the original decode, and
//     next() vs scan_batch() are interchangeable at any block size;
//   * raw bitstream: BitWriter/BitReader match the reference bit-for-bit on
//     random write/read schedules, including resumed writes after bytes();
//   * append-many: append_run and the span append_batch produce sealed
//     chunks byte-identical to N individual append() calls;
//   * adversarial: bit-flip and truncated frames keep failing typed (empty
//     chunk or a fully valid one — never a crash, hang, or bad invariant).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <random>
#include <span>
#include <vector>

#include "core/sample.hpp"
#include "ingest/sharded_store.hpp"
#include "reference_codec.hpp"
#include "store/bitstream.hpp"
#include "store/chunk.hpp"
#include "store/cursor.hpp"
#include "store/tsdb.hpp"

namespace hpcmon {
namespace {

using core::Sample;
using core::SeriesId;
using core::TimedValue;
using store::BitReader;
using store::BitWriter;
using store::Chunk;
using store::ChunkCursor;

// Seeded workload shapes chosen to hit every codec path: all four dod
// prefix classes, XOR-zero runs, window reuse, window widening, exponent
// churn (leading-zero collapse), and sign flips.
std::vector<TimedValue> make_points(std::uint64_t seed, int shape,
                                    std::size_t n) {
  std::mt19937_64 rng(seed * 1000003ull + static_cast<std::uint64_t>(shape));
  std::vector<TimedValue> pts;
  pts.reserve(n);
  std::int64_t t = 1'700'000'000'000'000 +
                   static_cast<std::int64_t>(rng() % 1'000'000);
  double v = 40.0 + static_cast<double>(rng() % 100);
  for (std::size_t i = 0; i < n; ++i) {
    switch (shape) {
      case 0:  // constant value, perfectly regular cadence (dod == 0)
        t += 1'000'000;
        break;
      case 1:  // random walk, regular cadence
        t += 1'000'000;
        v += (static_cast<double>(rng() % 2001) - 1000.0) / 97.0;
        break;
      case 2:  // jittered cadence (small dods), slow drift
        t += 1'000'000 + static_cast<std::int64_t>(rng() % 4096) - 2048;
        v += 0.125;
        break;
      case 3:  // exponent churn: values jump across magnitudes and sign
        t += 1'000'000;
        v = (rng() % 2 ? 1.0 : -1.0) *
            std::ldexp(static_cast<double>(rng() % 4096 + 1),
                       static_cast<int>(rng() % 200) - 100);
        break;
      case 4: {  // wild time gaps: exercises the 24/36/64-bit dod classes
        const int klass = static_cast<int>(rng() % 4);
        const std::int64_t gap =
            klass == 0   ? 1'000'000
            : klass == 1 ? static_cast<std::int64_t>(rng() % (1u << 22))
            : klass == 2 ? static_cast<std::int64_t>(rng() % (1ull << 34))
                         : static_cast<std::int64_t>(rng() % (1ull << 44));
        t += gap + 1;
        v += 1.0;
        break;
      }
      default:  // plateaus: runs of identical values (XOR-zero control bits)
        t += 1'000'000;
        if (rng() % 4 == 0) v += static_cast<double>(rng() % 7);
        break;
    }
    pts.push_back({t, v});
  }
  return pts;
}

constexpr int kShapes = 6;

TEST(CodecProperty, EncodePayloadMatchesReference) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    for (int shape = 0; shape < kShapes; ++shape) {
      const auto pts = make_points(seed, shape, 400);
      const auto chunk = Chunk::compress(pts);
      const auto ref = refcodec::ref_encode_payload(pts);
      ASSERT_EQ(chunk.payload(), ref)
          << "seed=" << seed << " shape=" << shape;
    }
  }
}

TEST(CodecProperty, DecodeMatchesReferenceAndInput) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    for (int shape = 0; shape < kShapes; ++shape) {
      const auto pts = make_points(seed, shape, 400);
      const auto chunk = Chunk::compress(pts);
      std::vector<TimedValue> decoded;
      ASSERT_EQ(store::decode_all(chunk, decoded), pts.size());
      ASSERT_EQ(decoded, pts) << "seed=" << seed << " shape=" << shape;
      const auto ref = refcodec::ref_decode_payload(chunk.payload(),
                                                    chunk.count());
      ASSERT_EQ(decoded, ref);
    }
  }
}

TEST(CodecProperty, CursorNextMatchesScanBatchAtAnyBlockSize) {
  const auto pts = make_points(7, 1, 500);
  const auto chunk = Chunk::compress(pts);
  for (const std::size_t block : {std::size_t{1}, std::size_t{3},
                                  std::size_t{7}, std::size_t{64},
                                  std::size_t{499}, std::size_t{1000}}) {
    ChunkCursor cursor(chunk);
    std::vector<TimedValue> got;
    std::vector<TimedValue> buf(block);
    for (;;) {
      const auto n = cursor.scan_batch(buf);
      if (n == 0) break;
      got.insert(got.end(), buf.begin(), buf.begin() + n);
    }
    ASSERT_EQ(got, pts) << "block=" << block;
  }
  // Alternating next() and scan_batch() on one cursor stays coherent.
  ChunkCursor cursor(chunk);
  std::vector<TimedValue> got;
  std::vector<TimedValue> buf(5);
  TimedValue one;
  while (true) {
    if (got.size() % 3 == 0) {
      if (!cursor.next(one)) break;
      got.push_back(one);
    } else {
      const auto n = cursor.scan_batch(buf);
      if (n == 0) break;
      got.insert(got.end(), buf.begin(), buf.begin() + n);
    }
  }
  ASSERT_EQ(got, pts);
}

TEST(CodecProperty, BitstreamWriterMatchesReferenceOnRandomSchedules) {
  std::mt19937_64 rng(42);
  for (int round = 0; round < 50; ++round) {
    BitWriter w;
    refcodec::RefBitWriter ref;
    const int fields = 1 + static_cast<int>(rng() % 200);
    for (int i = 0; i < fields; ++i) {
      const int bits = 1 + static_cast<int>(rng() % 64);
      const std::uint64_t value = rng();
      w.write(value, bits);
      ref.write(value, bits);
      if (rng() % 8 == 0) {
        // Resumed writes after observing bytes() must not perturb the stream.
        ASSERT_EQ(w.bytes(), ref.bytes());
      }
    }
    ASSERT_EQ(w.bit_count(), ref.bit_count());
    ASSERT_EQ(w.bytes(), ref.bytes());
  }
}

TEST(CodecProperty, BitstreamReaderMatchesReferenceOnRandomSchedules) {
  std::mt19937_64 rng(43);
  for (int round = 0; round < 50; ++round) {
    std::vector<std::uint8_t> data(rng() % 64);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());
    BitReader r(data);
    refcodec::RefBitReader ref(data);
    // Read past the end on purpose: underrun semantics must match too.
    for (int i = 0; i < 100; ++i) {
      const int bits = 1 + static_cast<int>(rng() % 64);
      ASSERT_EQ(r.read(bits), ref.read(bits))
          << "round=" << round << " i=" << i << " bits=" << bits;
      ASSERT_EQ(r.eof(), ref.eof());
    }
  }
}

std::vector<Sample> run_of(SeriesId id, const std::vector<TimedValue>& pts) {
  std::vector<Sample> out;
  out.reserve(pts.size());
  for (const auto& p : pts) out.push_back({id, p.time, p.value});
  return out;
}

// Sealed state fingerprint: serialize() bytes of every sealed chunk (the
// framing covers count/min/max/payload) in (series, position) order.
std::vector<std::vector<std::uint8_t>> sealed_bytes(
    const store::TimeSeriesStore& s) {
  std::vector<std::vector<std::uint8_t>> out;
  const auto set = s.sealed_chunks_before(INT64_MAX);
  for (const auto& [id, chunk] : set.chunks) out.push_back(chunk->serialize());
  return out;
}

TEST(CodecProperty, AppendRunByteIdenticalToPerSampleAppends) {
  const SeriesId id{3};
  auto pts = make_points(11, 1, 1300);  // > 2 chunk seals at 512
  // Inject out-of-order and duplicate timestamps: both paths must reject
  // the same samples.
  pts[100].time = pts[99].time;
  pts[200].time = pts[150].time - 5;
  const auto run = run_of(id, pts);

  store::TimeSeriesStore one(512, 0);
  std::size_t accepted_one = 0;
  for (const auto& s : run) {
    if (one.append(s.series, s.time, s.value)) ++accepted_one;
  }
  store::TimeSeriesStore many(512, 0);
  const auto accepted_many = many.append_run(id, run);

  EXPECT_EQ(accepted_one, accepted_many);
  EXPECT_EQ(sealed_bytes(one), sealed_bytes(many));
  const core::TimeRange all{INT64_MIN + 1, INT64_MAX};
  EXPECT_EQ(one.query_range(id, all), many.query_range(id, all));
}

TEST(CodecProperty, AppendBatchSpanByteIdenticalToPerSampleAppends) {
  // Interleave many series (spread across stripes and shards) in one batch.
  std::vector<Sample> batch;
  for (std::uint32_t sweep = 0; sweep < 40; ++sweep) {
    for (std::uint32_t s = 0; s < 37; ++s) {
      const std::int64_t t = 1'000'000 + sweep * 1'000'000 + (s % 3);
      batch.push_back({SeriesId{s}, t, static_cast<double>(sweep * s)});
    }
  }
  // A few out-of-order duplicates.
  batch.push_back({SeriesId{5}, 1'000'000, 1.0});
  batch.push_back({SeriesId{6}, 0, 2.0});

  store::TimeSeriesStore one(64, 0);
  std::size_t accepted_one = 0;
  for (const auto& s : batch) {
    if (one.append(s.series, s.time, s.value)) ++accepted_one;
  }
  store::TimeSeriesStore many(64, 0);
  EXPECT_EQ(many.append_batch(batch), accepted_one);
  EXPECT_EQ(sealed_bytes(one), sealed_bytes(many));

  ingest::ShardedTimeSeriesStore sharded(4, 64);
  EXPECT_EQ(sharded.append_batch(batch), accepted_one);
  const core::TimeRange all{INT64_MIN + 1, INT64_MAX};
  for (std::uint32_t s = 0; s < 37; ++s) {
    ASSERT_EQ(sharded.query_range(SeriesId{s}, all),
              one.query_range(SeriesId{s}, all))
        << "series=" << s;
  }
}

// A deserialized chunk must be all-or-nothing: either the empty chunk
// (typed rejection) or one whose decode satisfies every framing invariant.
void expect_typed(const Chunk& c) {
  if (c.empty()) return;
  const auto pts = c.decompress();
  ASSERT_EQ(pts.size(), c.count());
  ASSERT_EQ(pts.front().time, c.min_time());
  ASSERT_EQ(pts.back().time, c.max_time());
  for (std::size_t i = 1; i < pts.size(); ++i) {
    ASSERT_LT(pts[i - 1].time, pts[i].time);
  }
  // And the new reader agrees with the reference on the (possibly corrupt
  // but accepted) payload.
  ASSERT_EQ(pts, refcodec::ref_decode_payload(c.payload(), c.count()));
}

TEST(CodecProperty, BitFlipSweepFailsTyped) {
  const auto pts = make_points(3, 1, 64);
  const auto raw = Chunk::compress(pts).serialize();
  for (std::size_t bit = 0; bit < raw.size() * 8; ++bit) {
    auto flipped = raw;
    flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    expect_typed(Chunk::deserialize(flipped));
  }
}

TEST(CodecProperty, TruncatedPayloadFailsTyped) {
  const auto pts = make_points(5, 2, 64);
  const auto raw = Chunk::compress(pts).serialize();
  constexpr std::size_t kHeader = 24;
  const std::size_t payload_len = raw.size() - kHeader;
  for (std::size_t keep = 0; keep < payload_len; ++keep) {
    // Re-frame so payload_len matches the truncated buffer: the decoder
    // itself (not the framing check) must catch the truncation.
    std::vector<std::uint8_t> cut(raw.begin(),
                                  raw.begin() + kHeader + keep);
    const auto len32 = static_cast<std::uint32_t>(keep);
    std::memcpy(cut.data() + 20, &len32, 4);
    const auto c = Chunk::deserialize(cut);
    // Fewer payload bytes can never still decode all 64 distinct points.
    EXPECT_TRUE(c.empty()) << "keep=" << keep;
  }
}

}  // namespace
}  // namespace hpcmon
