#include "sim/fabric.hpp"

#include <gtest/gtest.h>

#include "core/registry.hpp"

namespace hpcmon::sim {
namespace {

struct FabricFixture {
  core::MetricRegistry reg;
  MachineShape shape;
  std::unique_ptr<Topology> topo;
  std::unique_ptr<Fabric> fabric;
  std::vector<core::LogEvent> logs;

  explicit FabricFixture(FabricKind kind = FabricKind::kTorus3D,
                         FabricParams params = {}) {
    shape.cabinets = 2;
    shape.chassis_per_cabinet = 2;
    shape.blades_per_chassis = 4;
    shape.nodes_per_blade = 4;
    topo = std::make_unique<Topology>(reg, shape, kind);
    fabric = std::make_unique<Fabric>(*topo, params, core::Rng(1));
  }
};

TEST(FabricTest, RoutesExistAndAreMinimalHopPaths) {
  FabricFixture f;
  // Same-blade nodes share a router: empty route.
  EXPECT_TRUE(f.fabric->route(0, 1).empty());
  // Adjacent blades (routers 0 and 1 on the x ring): one hop.
  const auto& r01 = f.fabric->route(0, 4);
  EXPECT_EQ(r01.size(), 1u);
  // Two blades apart on the x ring: two hops either way round.
  EXPECT_EQ(f.fabric->route(0, 8).size(), 2u);
  // Route endpoints connect the right routers.
  const auto& path = f.fabric->route(0, f.topo->num_nodes() - 1);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(f.topo->link(path.front()).src_router, f.topo->router_of_node(0));
  EXPECT_EQ(f.topo->link(path.back()).dst_router,
            f.topo->router_of_node(f.topo->num_nodes() - 1));
  // Consecutive links chain.
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_EQ(f.topo->link(path[i - 1]).dst_router,
              f.topo->link(path[i]).src_router);
  }
}

TEST(FabricTest, DragonflyRoutesAreShort) {
  FabricFixture f(FabricKind::kDragonfly);
  // Max minimal path: intra + global + intra = 3 hops.
  for (int dst : {1, 20, 40, 63}) {
    const auto& path = f.fabric->route(0, dst);
    EXPECT_LE(path.size(), 3u);
  }
}

TEST(FabricTest, UncongestedFlowDeliversFullBandwidth) {
  FabricFixture f;
  f.fabric->set_job_flows(core::JobId{1}, {{0, 8, 2.0}});
  f.fabric->tick(core::kSecond, core::kSecond, f.logs);
  EXPECT_NEAR(f.fabric->node_injection_gbps(0), 2.0, 1e-9);
  EXPECT_NEAR(f.fabric->job_delivered_fraction(core::JobId{1}), 1.0, 1e-9);
  EXPECT_NEAR(f.fabric->job_path_stall(core::JobId{1}), 0.0, 1e-9);
  // Counters advanced: 2 Gbit/s for 1 s = 0.25 GB.
  const auto& path = f.fabric->route(0, 8);
  ASSERT_FALSE(path.empty());
  EXPECT_NEAR(f.fabric->link_state(path[0]).traffic_bytes, 2.0e9 / 8.0, 1e3);
}

TEST(FabricTest, NicCapacityLimitsInjection) {
  FabricFixture f;
  // One node sources 3 flows of 4 Gbps each = 12 > 8 Gbps NIC.
  f.fabric->set_job_flows(core::JobId{1},
                          {{0, 8, 4.0}, {0, 16, 4.0}, {0, 24, 4.0}});
  f.fabric->tick(core::kSecond, core::kSecond, f.logs);
  EXPECT_NEAR(f.fabric->node_injection_gbps(0), 8.0, 1e-6);
  EXPECT_NEAR(f.fabric->node_injection_utilization(0), 1.0, 1e-6);
}

TEST(FabricTest, LinkOversubscriptionCausesStalls) {
  FabricFixture f;
  // Many flows crossing the same first-hop link (router 0 -> router 1):
  // demand 4 x 4 = 16 Gbps on a 10 Gbps link.
  f.fabric->set_job_flows(core::JobId{1}, {{0, 4, 4.0},
                                           {1, 5, 4.0},
                                           {2, 6, 4.0},
                                           {3, 7, 4.0}});
  f.fabric->tick(core::kSecond, core::kSecond, f.logs);
  const auto& path = f.fabric->route(0, 4);
  ASSERT_EQ(path.size(), 1u);
  const auto& link = f.fabric->link_state(path[0]);
  EXPECT_GT(link.stall_rate, 0.0);
  EXPECT_NEAR(link.demand_gbps, 16.0, 1e-9);
  EXPECT_LE(link.carried_gbps, 10.0 + 1e-9);
  EXPECT_LT(f.fabric->job_delivered_fraction(core::JobId{1}), 1.0);
  EXPECT_GT(f.fabric->job_path_stall(core::JobId{1}), 0.0);
}

TEST(FabricTest, LinkDownReroutes) {
  FabricFixture f;
  const auto path_before = f.fabric->route(0, 4);
  ASSERT_EQ(path_before.size(), 1u);
  f.fabric->set_link_up(path_before[0], false);
  const auto& path_after = f.fabric->route(0, 4);
  ASSERT_FALSE(path_after.empty());
  for (const int li : path_after) EXPECT_NE(li, path_before[0]);
  // Traffic still flows.
  f.fabric->set_job_flows(core::JobId{1}, {{0, 4, 1.0}});
  f.fabric->tick(core::kSecond, core::kSecond, f.logs);
  EXPECT_NEAR(f.fabric->node_injection_gbps(0), 1.0, 1e-9);
}

TEST(FabricTest, BerMultiplierRaisesBitErrors) {
  FabricParams params;
  params.base_ber = 1e-9;  // high enough to observe
  FabricFixture f(FabricKind::kTorus3D, params);
  f.fabric->set_job_flows(core::JobId{1}, {{0, 8, 5.0}});
  const auto& path = f.fabric->route(0, 8);
  ASSERT_FALSE(path.empty());
  // Baseline errors over 100 ticks.
  for (int i = 1; i <= 100; ++i) {
    f.fabric->tick(i * core::kSecond, core::kSecond, f.logs);
  }
  const double base_errors = f.fabric->link_state(path[0]).bit_errors;
  f.fabric->set_link_ber_multiplier(path[0], 100.0);
  for (int i = 101; i <= 200; ++i) {
    f.fabric->tick(i * core::kSecond, core::kSecond, f.logs);
  }
  const double burst_errors =
      f.fabric->link_state(path[0]).bit_errors - base_errors;
  EXPECT_GT(burst_errors, base_errors * 10);
}

TEST(FabricTest, ClearJobFlowsStopsTraffic) {
  FabricFixture f;
  f.fabric->set_job_flows(core::JobId{1}, {{0, 8, 2.0}});
  f.fabric->tick(core::kSecond, core::kSecond, f.logs);
  EXPECT_GT(f.fabric->node_injection_gbps(0), 0.0);
  f.fabric->clear_job_flows(core::JobId{1});
  f.fabric->tick(2 * core::kSecond, core::kSecond, f.logs);
  EXPECT_EQ(f.fabric->node_injection_gbps(0), 0.0);
}

}  // namespace
}  // namespace hpcmon::sim
