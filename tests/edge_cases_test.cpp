// Edge cases across modules: empty inputs, disabled features, boundary
// values — the paths production monitoring hits during bring-up and quiet
// hours.
#include <gtest/gtest.h>

#include "analysis/changepoint.hpp"
#include "analysis/congestion.hpp"
#include "analysis/power_profile.hpp"
#include "analysis/trend.hpp"
#include "collect/health.hpp"
#include "store/logstore.hpp"
#include "store/tsdb.hpp"
#include "transport/bus.hpp"
#include "transport/codec.hpp"
#include "viz/drilldown.hpp"
#include "viz/export.hpp"
#include "viz/query.hpp"

namespace hpcmon {
namespace {

TEST(CodecEdge, EmptyBatchesRoundTrip) {
  core::SampleBatch empty;
  const auto decoded = transport::decode_samples(transport::encode_samples(empty));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_TRUE(decoded.value().samples.empty());

  const auto logs = transport::decode_logs(transport::encode_logs({}));
  ASSERT_TRUE(logs.is_ok());
  EXPECT_TRUE(logs.value().empty());
}

TEST(CodecEdge, HugeMessageTruncatedSafely) {
  core::LogEvent e;
  e.message = std::string(100000, 'x');  // > u16 length field
  const auto back = transport::decode_logs(transport::encode_logs({e}));
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value()[0].message.size(), 65535u);
}

TEST(BusEdge, StringPayloadVariant) {
  transport::Bus bus;
  std::string got;
  bus.subscribe("raw.*", [&](const std::string&, const transport::Payload& p) {
    if (const auto* s = std::get_if<std::string>(&p)) got = *s;
  });
  bus.publish("raw.console", std::string("hello"));
  EXPECT_EQ(got, "hello");
}

TEST(TsdbEdge, QueryEmptyAndUnknownSeries) {
  store::TimeSeriesStore store;
  EXPECT_TRUE(store.query_range(core::SeriesId{99}, {0, 100}).empty());
  EXPECT_FALSE(store.latest(core::SeriesId{99}).has_value());
  EXPECT_FALSE(store.has_series(core::SeriesId{99}));
  EXPECT_TRUE(store.downsample(core::SeriesId{0}, {0, 100}, 0, store::Agg::kMean)
                  .empty());  // zero bucket
  EXPECT_EQ(store.stats().series, 0u);
}

TEST(TsdbEdge, EmptyRangeAndReversedRange) {
  store::TimeSeriesStore store;
  store.append(core::SeriesId{0}, 50, 1.0);
  EXPECT_TRUE(store.query_range(core::SeriesId{0}, {60, 60}).empty());
  EXPECT_TRUE(store.query_range(core::SeriesId{0}, {80, 20}).empty());
}

TEST(LogStoreEdge, EmptyStoreQueries) {
  store::LogStore logs;
  EXPECT_EQ(logs.count({}), 0u);
  EXPECT_TRUE(logs.count_by_bucket({}, core::kMinute).empty());
  const auto hist = logs.severity_histogram();
  for (const auto n : hist) EXPECT_EQ(n, 0u);
}

TEST(TrendEdge, DegenerateInputs) {
  EXPECT_EQ(analysis::fit_trend({}).points, 0u);
  EXPECT_EQ(analysis::fit_trend({{5, 1.0}}).points, 1u);
  // All points at the same instant: denominator guard.
  const auto fit = analysis::fit_trend({{5, 1.0}, {5, 2.0}, {5, 3.0}});
  EXPECT_DOUBLE_EQ(fit.slope_per_hour, 0.0);
  analysis::TrendAnalyzer tr(core::kHour);
  EXPECT_FALSE(tr.fit().has_value());
  EXPECT_FALSE(tr.forecast_crossing(10.0).has_value());
}

TEST(PowerProfileEdge, EmptyTraces) {
  const auto p = analysis::PowerProfile::from_trace("x", {});
  EXPECT_TRUE(p.shape.empty());
  analysis::PowerProfileLibrary lib;
  lib.set_reference(p);
  // Scoring against an empty reference is defined (large distance).
  const auto score = lib.score_run("x", {{0, 1.0}});
  ASSERT_TRUE(score.has_value());
  EXPECT_GT(*score, 1e6);
  EXPECT_TRUE(analysis::detect_imbalance({}).empty());
  EXPECT_TRUE(analysis::detect_imbalance({{}, {}}).empty());
}

TEST(HealthEdge, DisabledChecksPass) {
  sim::ClusterParams params;
  params.shape.cabinets = 1;
  params.shape.chassis_per_cabinet = 1;
  params.shape.blades_per_chassis = 2;
  params.shape.nodes_per_blade = 4;
  params.seed = 1;
  sim::Cluster cluster(params);
  collect::HealthConfig config;
  config.check_fs_mounts = false;
  config.check_daemons = false;
  config.min_free_mem_gb = 0.0;
  collect::HealthCheckSuite health(cluster, config);
  cluster.inject_fs_unmount(core::kSecond, 0, core::kHour);
  cluster.run_for(10 * core::kSecond);
  EXPECT_TRUE(health.check_node(0).ok);  // unmount ignored when disabled
}

TEST(VizEdge, DrillDownOnEmptyStore) {
  core::MetricRegistry reg;
  store::TimeSeriesStore store;
  store::JobStore jobs;
  viz::DrillDown drill(store, reg, jobs);
  const auto c = reg.register_component(
      {"n0", core::ComponentKind::kNode, core::kNoComponent});
  const auto result = drill.investigate("metric", {c}, 100, core::kMinute,
                                        [](core::ComponentId) { return 0; });
  EXPECT_TRUE(result.breakdown.empty());
  EXPECT_FALSE(result.responsible_job.has_value());
  EXPECT_DOUBLE_EQ(result.aggregate_value, 0.0);
}

TEST(VizEdge, ExportCsvEmpty) {
  EXPECT_EQ(viz::export_csv({}), "time_s\n");
  viz::ChartSeries s;
  s.label = "empty";
  EXPECT_EQ(viz::export_csv({s}), "time_s,empty\n");
}

TEST(OnsetEdge, ConstantSeriesNoOnset) {
  std::vector<core::TimedValue> flat;
  for (int i = 0; i < 100; ++i) flat.push_back({i * core::kMinute, 7.0});
  EXPECT_TRUE(analysis::detect_onsets(flat).empty());
}

TEST(CongestionEdge, SingleLinkMachine) {
  core::MetricRegistry reg;
  sim::MachineShape shape;
  shape.cabinets = 1;
  shape.chassis_per_cabinet = 1;
  shape.blades_per_chassis = 2;
  shape.nodes_per_blade = 1;
  sim::Topology topo(reg, shape, sim::FabricKind::kTorus3D);
  std::vector<double> stalls(topo.num_links(), 0.9);
  const auto report = analysis::analyze_congestion(topo, stalls);
  EXPECT_GT(report.level, analysis::CongestionLevel::kNone);
  ASSERT_FALSE(report.regions.empty());
}

TEST(AggregateEdge, MixedSweepMembership) {
  // A component that reports only on some sweeps still aggregates correctly.
  core::MetricRegistry reg;
  store::TimeSeriesStore store;
  const auto a = reg.register_component(
      {"a", core::ComponentKind::kNode, core::kNoComponent});
  const auto b = reg.register_component(
      {"b", core::ComponentKind::kNode, core::kNoComponent});
  store.append(reg.series("m", a), core::kMinute, 1.0);
  store.append(reg.series("m", a), 2 * core::kMinute, 1.0);
  store.append(reg.series("m", b), 2 * core::kMinute, 3.0);
  const auto sum = viz::aggregate_across(store, reg, "m", {a, b},
                                         {0, core::kHour}, store::Agg::kSum);
  ASSERT_EQ(sum.size(), 2u);
  EXPECT_DOUBLE_EQ(sum[0].value, 1.0);
  EXPECT_DOUBLE_EQ(sum[1].value, 4.0);
}

}  // namespace
}  // namespace hpcmon
