// The network_storm scenario end to end: a node stack relaying to an
// aggregator stack over one fault plan that injects every socket fault
// class (resets, stalls, short writes/reads, torn frames) on both sides of
// the wire, concurrent with a bulk ingest flood. The verdict is the relay
// tier's whole contract: zero acknowledged critical-sample loss and a
// byte-exact critical series on the aggregator.
#include <gtest/gtest.h>

#include "resilience/chaos.hpp"
#include "stack/chaos_harness.hpp"

namespace hpcmon::stack {
namespace {

TEST(ChaosNetworkStormTest, SurvivesEverySocketFaultClassWithoutAckedLoss) {
  const auto report = run_network_storm(resilience::network_storm_scenario());
  SCOPED_TRACE(report.to_string());
  EXPECT_TRUE(report.ok()) << report.to_string();
  // The storm was real: every fault class fired, and the relay actually
  // had to reconnect and resend through it.
  EXPECT_TRUE(report.all_fault_classes);
  EXPECT_GT(report.resent_batches + report.duplicates +
                report.window_rejects,
            0u)
      << "no retry machinery was ever exercised";
  // The byte-exactness verdict is the headline invariant.
  EXPECT_TRUE(report.critical_byte_exact);
  EXPECT_EQ(report.relay_unacked, 0u);
  EXPECT_EQ(report.rejected_batches, 0u);
}

}  // namespace
}  // namespace hpcmon::stack
