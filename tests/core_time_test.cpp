#include "core/time.hpp"

#include <gtest/gtest.h>

namespace hpcmon::core {
namespace {

TEST(TimeTest, UnitConversions) {
  EXPECT_EQ(kSecond, 1'000'000);
  EXPECT_EQ(kMinute, 60 * kSecond);
  EXPECT_EQ(kHour, 60 * kMinute);
  EXPECT_EQ(kDay, 24 * kHour);
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(to_seconds(500 * kMillisecond), 0.5);
  EXPECT_EQ(from_seconds(2.5), 2 * kSecond + 500 * kMillisecond);
}

TEST(TimeTest, RangeContains) {
  const TimeRange r{10, 20};
  EXPECT_TRUE(r.contains(10));
  EXPECT_TRUE(r.contains(19));
  EXPECT_FALSE(r.contains(20));  // half-open
  EXPECT_FALSE(r.contains(9));
  EXPECT_EQ(r.length(), 10);
  EXPECT_FALSE(r.empty());
  EXPECT_TRUE((TimeRange{5, 5}).empty());
  EXPECT_TRUE((TimeRange{7, 3}).empty());
}

TEST(TimeTest, RangeOverlaps) {
  const TimeRange a{0, 10};
  EXPECT_TRUE(a.overlaps({5, 15}));
  EXPECT_TRUE(a.overlaps({-5, 1}));
  EXPECT_FALSE(a.overlaps({10, 20}));  // touching half-open ends
  EXPECT_FALSE(a.overlaps({-10, 0}));
  EXPECT_TRUE(a.overlaps({2, 3}));
}

TEST(TimeTest, FormatTime) {
  EXPECT_EQ(format_time(0), "0+00:00:00.000");
  EXPECT_EQ(format_time(kSecond), "0+00:00:01.000");
  EXPECT_EQ(format_time(kDay + kHour + kMinute + kSecond + 5 * kMillisecond),
            "1+01:01:01.005");
  EXPECT_EQ(format_time(-kSecond), "-0+00:00:01.000");
}

TEST(TimeTest, FormatDuration) {
  EXPECT_EQ(format_duration(500), "500us");
  EXPECT_EQ(format_duration(90 * kSecond), "90s");
  EXPECT_EQ(format_duration(5 * kMinute), "5m");
  EXPECT_EQ(format_duration(3 * kHour), "3h");
}

}  // namespace
}  // namespace hpcmon::core
