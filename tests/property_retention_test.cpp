// Property tests: tiered retention preserves data under randomized ingest
// and enforcement schedules.
//
//   (1) query_full == the reference raw series, always (no point is ever
//       lost across hot -> cold transitions)
//   (2) query_range (hot+warm) is time-ordered and covers the series' span
//   (3) repeated enforcement is idempotent
//   (4) warm values are consistent with the aggregate of their bucket
#include <gtest/gtest.h>

#include <map>

#include "core/rng.hpp"
#include "store/retention.hpp"

namespace hpcmon::store {
namespace {

using core::SeriesId;
using core::TimedValue;

struct RetentionCase {
  const char* name;
  core::Duration hot_window;
  core::Duration bucket;
  std::size_t chunk_points;
  int series_count;
  double irregularity;  // interval jitter fraction
};

class RetentionPropertyTest : public ::testing::TestWithParam<RetentionCase> {};

TEST_P(RetentionPropertyTest, NoPointLostUnderRandomEnforcement) {
  const auto& param = GetParam();
  core::Rng rng(std::hash<std::string>{}(param.name));
  RetentionPolicy policy;
  policy.hot_window = param.hot_window;
  policy.warm_window = 30 * core::kDay;
  policy.warm_bucket = param.bucket;
  TieredStore store(policy, param.chunk_points);

  std::map<std::uint32_t, std::vector<TimedValue>> reference;
  std::vector<core::TimePoint> cursor(param.series_count, 0);
  core::TimePoint now = 0;

  for (int round = 0; round < 30; ++round) {
    // Random burst of appends.
    const auto appends = rng.uniform_int(20, 120);
    for (int i = 0; i < appends; ++i) {
      const auto s = static_cast<std::uint32_t>(
          rng.uniform_int(0, param.series_count - 1));
      cursor[s] += std::max<core::Duration>(
          1, static_cast<core::Duration>(
                 static_cast<double>(core::kMinute) *
                 (1.0 + rng.normal(0.0, param.irregularity))));
      const double v = rng.normal(100.0, 10.0);
      if (store.append(SeriesId{s}, cursor[s], v)) {
        reference[s].push_back({cursor[s], v});
      }
      now = std::max(now, cursor[s]);
    }
    // Random enforcement at a random "current time".
    if (rng.bernoulli(0.7)) {
      store.enforce(now + static_cast<core::Duration>(
                              rng.uniform(0.0, static_cast<double>(
                                                   2 * param.hot_window))));
    }
  }

  const core::TimeRange everything{0, now + core::kDay};
  for (const auto& [s, ref] : reference) {
    // (1) full-fidelity equality.
    const auto full = store.query_full(SeriesId{s}, everything);
    ASSERT_EQ(full, ref) << "series " << s;
    // (2) dashboard view ordered and spanning.
    const auto ds = store.query_range(SeriesId{s}, everything);
    ASSERT_FALSE(ds.empty());
    for (std::size_t i = 1; i < ds.size(); ++i) {
      ASSERT_LT(ds[i - 1].time, ds[i].time);
    }
    ASSERT_LE(ds.front().time, ref.front().time);
    ASSERT_GE(ds.back().time, ref.back().time - param.bucket);
  }

  // (3) idempotence: a second enforcement at the same instant is a no-op.
  store.enforce(now);
  const auto blobs = store.archive().blob_count();
  store.enforce(now);
  EXPECT_EQ(store.archive().blob_count(), blobs);
}

TEST_P(RetentionPropertyTest, WarmBucketsAggregateTheirMembers) {
  const auto& param = GetParam();
  core::Rng rng(std::hash<std::string>{}(param.name) ^ 0x5a5a);
  RetentionPolicy policy;
  policy.hot_window = param.hot_window;
  policy.warm_bucket = param.bucket;
  policy.warm_agg = Agg::kMean;
  TieredStore store(policy, param.chunk_points);

  std::vector<TimedValue> ref;
  core::TimePoint t = 0;
  for (int i = 0; i < 2000; ++i) {
    t += core::kMinute;
    const double v = rng.uniform(0.0, 100.0);
    store.append(SeriesId{0}, t, v);
    ref.push_back({t, v});
  }
  store.enforce(t + 2 * param.hot_window);
  for (const auto& bucket : store.warm().query_range(SeriesId{0}, {0, t + 1})) {
    // The bucket's value must lie within [min, max] of the raw members.
    double lo = 1e18;
    double hi = -1e18;
    for (const auto& p : ref) {
      if (p.time >= bucket.time && p.time < bucket.time + param.bucket) {
        lo = std::min(lo, p.value);
        hi = std::max(hi, p.value);
      }
    }
    ASSERT_LE(lo, hi) << "warm bucket with no raw members";
    ASSERT_GE(bucket.value, lo - 1e-9);
    ASSERT_LE(bucket.value, hi + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, RetentionPropertyTest,
    ::testing::Values(
        RetentionCase{"small_chunks", core::kHour, 5 * core::kMinute, 8, 3, 0.0},
        RetentionCase{"large_chunks", core::kHour, 10 * core::kMinute, 256, 2,
                      0.0},
        RetentionCase{"tight_hot", 10 * core::kMinute, 2 * core::kMinute, 16, 4,
                      0.0},
        RetentionCase{"jittered", core::kHour, 5 * core::kMinute, 32, 3, 0.4}),
    [](const ::testing::TestParamInfo<RetentionCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace hpcmon::store
