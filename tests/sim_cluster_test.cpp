#include "sim/cluster.hpp"

#include <gtest/gtest.h>

namespace hpcmon::sim {
namespace {

ClusterParams small_params() {
  ClusterParams p;
  p.shape.cabinets = 2;
  p.shape.chassis_per_cabinet = 2;
  p.shape.blades_per_chassis = 4;
  p.shape.nodes_per_blade = 4;
  p.shape.gpu_node_fraction = 0.25;
  p.fabric_kind = FabricKind::kTorus3D;
  p.seed = 11;
  return p;
}

JobRequest simple_job(int nodes, core::Duration runtime,
                      AppProfile profile = app_compute_bound()) {
  JobRequest r;
  r.num_nodes = nodes;
  r.nominal_runtime = runtime;
  r.profile = std::move(profile);
  return r;
}

TEST(ClusterTest, AdvancesAndTicksDeterministically) {
  Cluster a(small_params());
  Cluster b(small_params());
  a.submit_at(0, simple_job(8, core::kMinute));
  b.submit_at(0, simple_job(8, core::kMinute));
  a.run_for(2 * core::kMinute);
  b.run_for(2 * core::kMinute);
  EXPECT_EQ(a.now(), b.now());
  EXPECT_DOUBLE_EQ(a.power().system_power_w(), b.power().system_power_w());
  EXPECT_EQ(a.scheduler().completed_jobs().size(), 1u);
  EXPECT_EQ(b.scheduler().completed_jobs().size(), 1u);
}

TEST(ClusterTest, RunningJobRaisesPowerAndCpu) {
  Cluster c(small_params());
  c.run_for(10 * core::kSecond);
  const double idle_power = c.power().system_power_w();
  c.submit_at(c.now(), simple_job(32, 5 * core::kMinute));
  c.run_for(core::kMinute);
  EXPECT_GT(c.power().system_power_w(), idle_power * 1.2);
  double cpu = 0;
  for (int i = 0; i < c.topology().num_nodes(); ++i) {
    cpu += c.node_state(i).cpu_util;
  }
  EXPECT_GT(cpu, 10.0);  // 32 busy nodes
}

TEST(ClusterTest, LogsAccumulateAndDrain) {
  Cluster c(small_params());
  c.submit_at(0, simple_job(4, 30 * core::kSecond));
  c.run_for(2 * core::kMinute);
  const auto logs = c.drain_logs();
  EXPECT_FALSE(logs.empty());
  EXPECT_EQ(c.pending_log_count(), 0u);
  // Scheduler events are among them.
  bool sched = false;
  for (const auto& e : logs) {
    if (e.facility == core::LogFacility::kScheduler) sched = true;
  }
  EXPECT_TRUE(sched);
}

TEST(ClusterTest, WorkloadKeepsMachineBusy) {
  auto params = small_params();
  Cluster c(params);
  WorkloadParams w;
  w.mean_interarrival = 20 * core::kSecond;
  w.max_nodes = 16;
  w.median_runtime = 2 * core::kMinute;
  c.start_workload(w);
  c.run_for(20 * core::kMinute);
  // The machine is deliberately undersized for this arrival rate: jobs
  // complete continuously while a backlog builds.
  EXPECT_GT(c.scheduler().completed_jobs().size(), 10u);
  EXPECT_GT(c.scheduler().queue_depth(), 0);
}

TEST(ClusterTest, MemLeakFaultDrainsFreeMemory) {
  Cluster c(small_params());
  const double before = c.node_mem_free_gb(3);
  c.inject_mem_leak(10 * core::kSecond, 3, 3600.0, core::kHour);  // 1 GB/s
  c.run_for(2 * core::kMinute);
  EXPECT_LT(c.node_mem_free_gb(3), before - 50.0);
  ASSERT_EQ(c.fault_log().size(), 1u);
  EXPECT_EQ(c.fault_log()[0].kind, "mem_leak");
}

TEST(ClusterTest, NodeHangFaultSetsAndClears) {
  Cluster c(small_params());
  c.inject_node_hang(10 * core::kSecond, 5, 30 * core::kSecond);
  c.run_for(20 * core::kSecond);
  EXPECT_TRUE(c.node_state(5).hung);
  c.run_for(core::kMinute);
  EXPECT_FALSE(c.node_state(5).hung);
}

TEST(ClusterTest, FsUnmountFaultVisibleToHealthChecks) {
  Cluster c(small_params());
  c.inject_fs_unmount(core::kSecond, 7, 10 * core::kSecond);
  c.run_for(5 * core::kSecond);
  EXPECT_FALSE(c.node_state(7).fs_mounted);
  c.run_for(30 * core::kSecond);
  EXPECT_TRUE(c.node_state(7).fs_mounted);
}

TEST(ClusterTest, GpuFailureInjection) {
  Cluster c(small_params());
  c.inject_gpu_failure(core::kSecond, 0);
  c.run_for(5 * core::kSecond);
  EXPECT_EQ(c.gpus().health(0), GpuHealth::kFailed);
}

TEST(ClusterTest, LogStormFloodsConsole) {
  Cluster c(small_params());
  c.run_for(10 * core::kSecond);
  c.drain_logs();
  c.inject_log_storm(c.now() + core::kSecond, 10 * core::kSecond, 20,
                     "mce: hardware error");
  c.run_for(30 * core::kSecond);
  const auto logs = c.drain_logs();
  int storm = 0;
  for (const auto& e : logs) {
    if (e.message.find("mce") != std::string::npos) ++storm;
  }
  EXPECT_GE(storm, 150);  // ~20/tick for ~9-10 ticks
}

TEST(ClusterTest, LinkDownEmitsFailAndRecoverLogs) {
  Cluster c(small_params());
  c.inject_link_down(5 * core::kSecond, 0, 20 * core::kSecond);
  c.run_for(core::kMinute);
  const auto logs = c.drain_logs();
  bool fail = false;
  bool recover = false;
  for (const auto& e : logs) {
    if (e.message.find("link failed") != std::string::npos) fail = true;
    if (e.message.find("link recovered") != std::string::npos) recover = true;
  }
  EXPECT_TRUE(fail);
  EXPECT_TRUE(recover);
}

TEST(ClusterTest, DriftedClocksDiverge) {
  auto params = small_params();
  params.clock_drift = true;
  params.drift_skew_ppm_sigma = 200.0;
  Cluster c(params);
  c.run_for(core::kHour);
  // Different nodes should read different local times.
  const auto t0 = c.node_local_time(0);
  const auto t1 = c.node_local_time(1);
  const auto t2 = c.node_local_time(2);
  EXPECT_TRUE(t0 != t1 || t1 != t2);
  // Drift magnitude is bounded but nonzero after an hour.
  EXPECT_NE(t0, c.now());
}

TEST(ClusterTest, NoDriftMeansGlobalTime) {
  Cluster c(small_params());
  c.run_for(core::kMinute);
  EXPECT_EQ(c.node_local_time(0), c.now());
}

}  // namespace
}  // namespace hpcmon::sim
