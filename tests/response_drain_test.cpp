// Job-failure path and the drain-node response action: a wedged node's job
// is killed and requeued instead of stalling forever.
#include <gtest/gtest.h>

#include "response/actions.hpp"
#include "response/alerts.hpp"
#include "sim/cluster.hpp"

namespace hpcmon::response {
namespace {

sim::ClusterParams params() {
  sim::ClusterParams p;
  p.shape.cabinets = 1;
  p.shape.chassis_per_cabinet = 2;
  p.shape.blades_per_chassis = 4;
  p.shape.nodes_per_blade = 4;  // 32 nodes
  p.seed = 77;
  return p;
}

sim::JobRequest job(int nodes, core::Duration runtime) {
  sim::JobRequest r;
  r.num_nodes = nodes;
  r.nominal_runtime = runtime;
  r.profile = sim::app_compute_bound();
  return r;
}

TEST(FailJobTest, KillReleasesNodesAndMarksFailed) {
  sim::Cluster cluster(params());
  cluster.submit_at(0, job(8, 10 * core::kMinute));
  cluster.run_for(10 * core::kSecond);
  ASSERT_EQ(cluster.scheduler().running_count(), 1);
  const auto id = cluster.scheduler().running_jobs()[0];
  const int node = cluster.scheduler().job(id)->nodes[0];

  const auto killed = cluster.fail_job_on_node(node, /*requeue=*/false);
  EXPECT_EQ(killed, id);
  EXPECT_EQ(cluster.scheduler().job(id)->state, sim::JobState::kFailed);
  EXPECT_EQ(cluster.scheduler().running_count(), 0);
  EXPECT_EQ(cluster.scheduler().queue_depth(), 0);  // no requeue
  for (int n = 0; n < cluster.topology().num_nodes(); ++n) {
    EXPECT_EQ(cluster.scheduler().job_on_node(n), core::kNoJob);
  }
  // Killing an idle node's job is a no-op.
  EXPECT_EQ(cluster.fail_job_on_node(node, false), core::kNoJob);
  // A failure log was emitted.
  bool failed_log = false;
  for (const auto& e : cluster.drain_logs()) {
    if (e.message.find("state=failed") != std::string::npos) failed_log = true;
  }
  EXPECT_TRUE(failed_log);
}

TEST(FailJobTest, RequeueRestartsTheWork) {
  sim::Cluster cluster(params());
  cluster.submit_at(0, job(8, 30 * core::kSecond));
  cluster.run_for(10 * core::kSecond);
  const auto id = cluster.scheduler().running_jobs()[0];
  const int node = cluster.scheduler().job(id)->nodes[0];
  cluster.fail_job_on_node(node, /*requeue=*/true);
  // The requeued copy starts and completes.
  cluster.run_for(2 * core::kMinute);
  EXPECT_EQ(cluster.scheduler().job(id)->state, sim::JobState::kFailed);
  bool completed_copy = false;
  for (const auto cid : cluster.scheduler().completed_jobs()) {
    const auto* rec = cluster.scheduler().job(cid);
    if (cid != id && rec->state == sim::JobState::kCompleted &&
        rec->request.num_nodes == 8) {
      completed_copy = true;
    }
  }
  EXPECT_TRUE(completed_copy);
}

TEST(DrainActionTest, WedgedNodeIsDrainedAndJobRecovers) {
  sim::Cluster cluster(params());
  AlertManager alerts;
  ActionDispatcher actions;
  actions.bind("node.wedged", AlertSeverity::kWarning, "drain",
               make_drain_action(cluster, 5 * core::kMinute));
  alerts.add_sink([&](const Alert& a) { actions.dispatch(a); });

  cluster.submit_at(0, job(8, 30 * core::kSecond));
  cluster.run_for(10 * core::kSecond);
  const auto id = cluster.scheduler().running_jobs()[0];
  const int victim = cluster.scheduler().job(id)->nodes[0];
  // The node wedges; without a drain the job would stall forever.
  cluster.inject_node_hang(cluster.now() + core::kSecond, victim, core::kDay);
  cluster.run_for(core::kMinute);
  EXPECT_EQ(cluster.scheduler().job(id)->state, sim::JobState::kRunning);
  EXPECT_LT(cluster.scheduler().job(id)->progress, 1.0);

  // Monitoring notices (here: the test plays detector) and raises the alert.
  Alert a;
  a.time = cluster.now();
  a.key = "node.wedged";
  a.severity = AlertSeverity::kCritical;
  a.component = cluster.topology().node(victim);
  alerts.raise(a);

  EXPECT_EQ(cluster.scheduler().job(id)->state, sim::JobState::kFailed);
  EXPECT_FALSE(cluster.scheduler().node_available(victim));
  // The requeued copy lands on healthy nodes and completes despite the
  // original node still being hung.
  cluster.run_for(3 * core::kMinute);
  std::size_t completed = 0;
  for (const auto cid : cluster.scheduler().completed_jobs()) {
    if (cluster.scheduler().job(cid)->state == sim::JobState::kCompleted) {
      ++completed;
      for (const int n : cluster.scheduler().job(cid)->nodes) {
        EXPECT_NE(n, victim);
      }
    }
  }
  EXPECT_EQ(completed, 1u);
  ASSERT_EQ(actions.log().size(), 1u);
  EXPECT_EQ(actions.log()[0].action, "drain");
}

TEST(DrainActionTest, NonNodeComponentIgnored) {
  sim::Cluster cluster(params());
  auto action = make_drain_action(cluster, core::kMinute);
  Alert a;
  a.component = cluster.topology().cabinet(0);
  action(a);  // must not crash or change anything
  for (int n = 0; n < cluster.topology().num_nodes(); ++n) {
    EXPECT_TRUE(cluster.scheduler().node_available(n));
  }
}

}  // namespace
}  // namespace hpcmon::response
