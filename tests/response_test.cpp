// AlertManager, ActionDispatcher, HealthGate, PowerBudgetWatcher.
#include <gtest/gtest.h>

#include "response/actions.hpp"
#include "response/alerts.hpp"
#include "response/gate.hpp"
#include "response/power_budget.hpp"

namespace hpcmon::response {
namespace {

Alert alert(core::TimePoint t, const std::string& key,
            AlertSeverity sev = AlertSeverity::kWarning) {
  Alert a;
  a.time = t;
  a.key = key;
  a.severity = sev;
  a.message = "test";
  return a;
}

TEST(AlertManagerTest, DeliversAndDeduplicates) {
  AlertManager mgr;
  std::vector<Alert> seen;
  mgr.add_sink([&](const Alert& a) { seen.push_back(a); });
  EXPECT_TRUE(mgr.raise(alert(0, "ost.slow")));
  EXPECT_FALSE(mgr.raise(alert(core::kMinute, "ost.slow")));  // deduped
  EXPECT_TRUE(mgr.raise(alert(core::kMinute, "link.down")));  // distinct key
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_EQ(mgr.raised_total(), 3u);
  EXPECT_EQ(mgr.suppressed_total(), 1u);
}

TEST(AlertManagerTest, DedupWindowExpires) {
  AlertPolicy policy;
  policy.dedup_window = core::kMinute;
  AlertManager mgr(policy);
  EXPECT_TRUE(mgr.raise(alert(0, "k")));
  EXPECT_FALSE(mgr.raise(alert(30 * core::kSecond, "k")));
  EXPECT_TRUE(mgr.raise(alert(2 * core::kMinute, "k")));
}

TEST(AlertManagerTest, EscalationAfterRepeats) {
  AlertPolicy policy;
  policy.dedup_window = core::kHour;
  policy.escalate_after = 3;
  AlertManager mgr(policy);
  std::vector<Alert> seen;
  mgr.add_sink([&](const Alert& a) { seen.push_back(a); });
  mgr.raise(alert(0, "k", AlertSeverity::kWarning));
  mgr.raise(alert(1, "k"));
  mgr.raise(alert(2, "k"));  // third merged occurrence -> escalation fires
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[1].severity, AlertSeverity::kCritical);
}

TEST(AlertManagerTest, ResolveClearsActive) {
  AlertManager mgr;
  mgr.raise(alert(0, "a", AlertSeverity::kCritical));
  mgr.raise(alert(0, "b", AlertSeverity::kInfo));
  auto active = mgr.active();
  ASSERT_EQ(active.size(), 2u);
  EXPECT_EQ(active[0].key, "a");  // most severe first
  mgr.resolve("a", core::kMinute);
  EXPECT_EQ(mgr.active().size(), 1u);
  // After resolve, the same key can fire again immediately.
  EXPECT_TRUE(mgr.raise(alert(2 * core::kMinute, "a")));
}

TEST(ActionDispatcherTest, BindingsFilterByKeyAndSeverity) {
  ActionDispatcher dispatcher;
  int quarantines = 0;
  int notifies = 0;
  dispatcher.bind("node.*", AlertSeverity::kCritical, "quarantine",
                  [&](const Alert&) { ++quarantines; });
  dispatcher.bind("*", AlertSeverity::kInfo, "notify",
                  [&](const Alert&) { ++notifies; });
  dispatcher.dispatch(alert(0, "node.gpu_failed", AlertSeverity::kCritical));
  dispatcher.dispatch(alert(1, "node.gpu_failed", AlertSeverity::kWarning));
  dispatcher.dispatch(alert(2, "fs.slow", AlertSeverity::kCritical));
  EXPECT_EQ(quarantines, 1);
  EXPECT_EQ(notifies, 3);
  ASSERT_EQ(dispatcher.log().size(), 4u);
  EXPECT_EQ(dispatcher.log()[0].action, "quarantine");
}

sim::ClusterParams gpu_cluster_params() {
  sim::ClusterParams p;
  p.shape.cabinets = 1;
  p.shape.chassis_per_cabinet = 2;
  p.shape.blades_per_chassis = 4;
  p.shape.nodes_per_blade = 4;
  p.shape.gpu_node_fraction = 1.0;
  p.seed = 21;
  return p;
}

TEST(QuarantineActionTest, RemovesAndRestoresNode) {
  sim::Cluster cluster(gpu_cluster_params());
  cluster.inject_gpu_failure(core::kSecond, 3);
  cluster.run_for(5 * core::kSecond);
  auto action = make_quarantine_action(cluster, core::kMinute);
  Alert a = alert(cluster.now(), "node.gpu_failed", AlertSeverity::kCritical);
  a.component = cluster.topology().node(3);
  action(a);
  EXPECT_FALSE(cluster.scheduler().node_available(3));
  cluster.run_for(2 * core::kMinute);
  EXPECT_TRUE(cluster.scheduler().node_available(3));
  EXPECT_EQ(cluster.gpus().health(3), sim::GpuHealth::kOk);  // repaired
}

TEST(HealthGateTest, PreGateKeepsBadNodeFromJobs) {
  sim::Cluster cluster(gpu_cluster_params());
  HealthGate gate(cluster, 10 * core::kMinute);
  gate.attach(/*pre=*/true, /*post=*/true);
  cluster.inject_gpu_failure(core::kSecond, 0);
  // Jobs that would love to use node 0.
  for (int i = 0; i < 5; ++i) {
    sim::JobRequest req;
    req.num_nodes = 4;
    req.nominal_runtime = 30 * core::kSecond;
    req.profile = sim::app_compute_bound();
    cluster.submit_at(2 * core::kSecond + i * core::kMinute, req);
  }
  cluster.run_for(6 * core::kMinute);
  EXPECT_GT(gate.stats().pre_checks, 0u);
  EXPECT_EQ(gate.stats().pre_failures, 1u);  // caught exactly once
  // No completed job ran on node 0.
  for (const auto id : cluster.scheduler().completed_jobs()) {
    const auto* rec = cluster.scheduler().job(id);
    for (const int n : rec->nodes) EXPECT_NE(n, 0);
  }
}

TEST(HealthGateTest, RepairReturnsNodeToService) {
  sim::Cluster cluster(gpu_cluster_params());
  HealthGate gate(cluster, core::kMinute);
  gate.attach(true, false);
  cluster.inject_gpu_failure(core::kSecond, 0);
  sim::JobRequest req;
  req.num_nodes = 4;
  req.nominal_runtime = 10 * core::kSecond;
  req.profile = sim::app_compute_bound();
  cluster.submit_at(2 * core::kSecond, req);
  cluster.run_for(5 * core::kMinute);
  EXPECT_GE(gate.stats().repairs, 1u);
  EXPECT_TRUE(cluster.scheduler().node_available(0));
}

TEST(PowerBudgetTest, AlertsNearAndOverBudget) {
  AlertManager alerts;
  PowerBudgetParams params;
  params.budget_w = 100000.0;
  PowerBudgetWatcher watcher(params, alerts);
  // Comfortable: exportable headroom reported.
  auto rec = watcher.update(0, 60000.0);
  EXPECT_NEAR(rec.exportable_w, 20000.0, 1e-6);
  EXPECT_TRUE(alerts.active().empty());
  // Near budget.
  watcher.update(core::kMinute, 95000.0);
  ASSERT_EQ(alerts.active().size(), 1u);
  EXPECT_EQ(alerts.active()[0].key, "power.near_budget");
  // Over budget.
  rec = watcher.update(2 * core::kMinute, 110000.0);
  EXPECT_EQ(rec.exportable_w, 0.0);
  EXPECT_EQ(watcher.over_budget_samples(), 1u);
  bool critical = false;
  for (const auto& a : alerts.active()) {
    if (a.key == "power.over_budget") critical = true;
  }
  EXPECT_TRUE(critical);
}

}  // namespace
}  // namespace hpcmon::response
