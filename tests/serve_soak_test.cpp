// Short loopback soak: concurrent query clients + a subscriber + a live
// publisher hammering one server for a couple of seconds. Nothing may error,
// wedge, or leak a connection — the CI smoke for the serving tier.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/registry.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "store/tsdb.hpp"

namespace hpcmon::serve {
namespace {

TEST(ServeSoak, ConcurrentClientsAndPublisherStayHealthy) {
  core::MetricRegistry registry;
  const auto node = registry.register_component(
      {"n0", core::ComponentKind::kNode, core::kNoComponent});
  const auto metric = registry.register_metric(
      {"node.power_w", "W", "", false, core::Priority::kCritical});
  std::vector<core::SeriesId> series;
  for (int i = 0; i < 8; ++i) {
    const auto comp = registry.register_component(
        {"n" + std::to_string(i + 1), core::ComponentKind::kNode, node});
    series.push_back(registry.series(metric, comp));
  }
  store::TimeSeriesStore store;
  for (const auto s : series) {
    for (int t = 0; t < 500; ++t) store.append(s, t * 100, t * 0.5);
  }
  ServeConfig sc;
  sc.writer_threads = 3;
  ServeHooks hooks;
  bind_query_hooks(hooks, store);
  hooks.registry = &registry;
  ServeServer server(sc, std::move(hooks));
  ASSERT_TRUE(server.start()) << server.error();

  constexpr auto kSoak = std::chrono::seconds(2);
  const auto deadline = std::chrono::steady_clock::now() + kSoak;
  std::atomic<bool> failed{false};
  std::atomic<std::uint64_t> queries{0};
  std::atomic<std::uint64_t> deltas{0};

  // Query hammers: point reads + paginated scans, checked against the store.
  std::vector<std::thread> threads;
  for (int c = 0; c < 4; ++c) {
    threads.emplace_back([&, c] {
      ServeClient client;
      if (!client.connect(server.port())) {
        failed = true;
        return;
      }
      const auto s = series[static_cast<std::size_t>(c) % series.size()];
      while (std::chrono::steady_clock::now() < deadline) {
        auto pts = client.query_range(s, {0, 50000});
        if (!pts.is_ok() || pts.value() != store.query_range(s, {0, 50000})) {
          failed = true;
          return;
        }
        auto agg = client.aggregate(s, {0, 50000}, store::Agg::kMax);
        if (!agg.is_ok()) {
          failed = true;
          return;
        }
        auto cursor = client.scan_open(s, {0, 50000}, 200);
        if (!cursor.is_ok()) {
          failed = true;
          return;
        }
        while (true) {
          auto page = client.scan_next(cursor.value());
          if (!page.is_ok()) {
            failed = true;
            return;
          }
          if (page.value().done) break;
        }
        queries.fetch_add(1);
      }
    });
  }
  // A subscriber counting deltas.
  threads.emplace_back([&] {
    ServeClient client;
    if (!client.connect(server.port())) {
      failed = true;
      return;
    }
    auto ack = client.subscribe("node.power_w@*");
    if (!ack.is_ok()) {
      failed = true;
      return;
    }
    while (std::chrono::steady_clock::now() < deadline) {
      if (auto push = client.poll_push(50)) {
        deltas.fetch_add(push->batch.samples.size());
      }
    }
  });
  // The publisher, pushing from "ingest".
  threads.emplace_back([&] {
    std::int64_t t = 100000;
    while (std::chrono::steady_clock::now() < deadline) {
      core::SampleBatch batch;
      batch.sweep_time = t;
      for (const auto s : series) batch.samples.push_back({s, t, 1.0});
      server.publish_batch(batch);
      t += 100;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (auto& th : threads) th.join();

  EXPECT_FALSE(failed.load());
  EXPECT_GT(queries.load(), 0u);
  EXPECT_GT(deltas.load(), 0u);
  const auto stats = server.stats();
  EXPECT_EQ(stats.bad_frames, 0u);
  EXPECT_EQ(stats.request_errors, 0u);
  EXPECT_GT(stats.requests, 0u);
  server.stop();
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace hpcmon::serve
