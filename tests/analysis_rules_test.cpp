#include "analysis/rules.hpp"

#include <gtest/gtest.h>

namespace hpcmon::analysis {
namespace {

using core::ComponentId;
using core::LogEvent;
using core::LogFacility;
using core::Severity;

LogEvent ev(core::TimePoint t, std::string msg,
            ComponentId comp = ComponentId{1},
            Severity sev = Severity::kError,
            LogFacility fac = LogFacility::kNetwork) {
  LogEvent e;
  e.time = t;
  e.local_time = t;
  e.message = std::move(msg);
  e.component = comp;
  e.severity = sev;
  e.facility = fac;
  return e;
}

TEST(RuleEngineTest, SingleRuleFiresOnMatch) {
  RuleEngine engine;
  Rule r;
  r.name = "fail";
  r.pattern = "*failed*";
  engine.add_rule(r);
  EXPECT_TRUE(engine.process(ev(1, "all good")).empty());
  const auto fired = engine.process(ev(2, "HSN link failed"));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].rule_name, "fail");
  EXPECT_EQ(fired[0].time, 2);
}

TEST(RuleEngineTest, SeverityAndFacilityGuards) {
  RuleEngine engine;
  Rule r;
  r.name = "hw_crit";
  r.max_severity = Severity::kCritical;
  r.facility = LogFacility::kHardware;
  engine.add_rule(r);
  EXPECT_TRUE(engine.process(ev(1, "x", ComponentId{1}, Severity::kError,
                                LogFacility::kHardware))
                  .empty());  // not severe enough
  EXPECT_TRUE(engine.process(ev(2, "x", ComponentId{1}, Severity::kCritical,
                                LogFacility::kNetwork))
                  .empty());  // wrong facility
  EXPECT_EQ(engine.process(ev(3, "x", ComponentId{1}, Severity::kCritical,
                              LogFacility::kHardware))
                .size(),
            1u);
}

TEST(RuleEngineTest, SuppressionSwallowsRepeats) {
  RuleEngine engine;
  Rule r;
  r.name = "noisy";
  r.pattern = "*err*";
  r.suppress = core::kMinute;
  engine.add_rule(r);
  EXPECT_EQ(engine.process(ev(0, "err")).size(), 1u);
  EXPECT_TRUE(engine.process(ev(10 * core::kSecond, "err")).empty());
  // Different component is not suppressed.
  EXPECT_EQ(engine.process(ev(11 * core::kSecond, "err", ComponentId{2})).size(),
            1u);
  // After the window, re-fires.
  EXPECT_EQ(engine.process(ev(2 * core::kMinute, "err")).size(), 1u);
}

TEST(RuleEngineTest, PairRuleMatchesChains) {
  RuleEngine engine;
  Rule r;
  r.name = "fail_then_throttle";
  r.kind = RuleKind::kPair;
  r.pattern = "*link failed*";
  r.pattern_b = "*throttle*";
  r.window = core::kMinute;
  engine.add_rule(r);
  engine.process(ev(0, "HSN link failed"));
  const auto fired = engine.process(ev(30 * core::kSecond, "HSN throttle"));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_NE(fired[0].detail.find("pair completed"), std::string::npos);
  // B after the window does not fire.
  engine.process(ev(2 * core::kMinute, "HSN link failed"));
  EXPECT_TRUE(engine.process(ev(10 * core::kMinute, "HSN throttle")).empty());
}

TEST(RuleEngineTest, PairRequiresSameComponentByDefault) {
  RuleEngine engine;
  Rule r;
  r.name = "pair";
  r.kind = RuleKind::kPair;
  r.pattern = "A*";
  r.pattern_b = "B*";
  r.window = core::kMinute;
  engine.add_rule(r);
  engine.process(ev(0, "A event", ComponentId{1}));
  EXPECT_TRUE(engine.process(ev(1, "B event", ComponentId{2})).empty());
  EXPECT_EQ(engine.process(ev(2, "B event", ComponentId{1})).size(), 1u);
}

TEST(RuleEngineTest, AbsenceFiresWhenRecoveryNeverComes) {
  RuleEngine engine;
  Rule r;
  r.name = "no_recovery";
  r.kind = RuleKind::kAbsence;
  r.pattern = "*link failed*";
  r.pattern_b = "*link recovered*";
  r.window = 5 * core::kMinute;
  engine.add_rule(r);
  engine.process(ev(0, "HSN link failed"));
  // Recovery arrives in time: nothing fires, ever.
  engine.process(ev(core::kMinute, "HSN link recovered"));
  EXPECT_TRUE(engine.advance_time(core::kHour).empty());

  // Second failure without recovery: fires at deadline.
  engine.process(ev(2 * core::kHour, "HSN link failed"));
  const auto fired = engine.advance_time(3 * core::kHour);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].rule_name, "no_recovery");
  EXPECT_EQ(fired[0].time, 2 * core::kHour + 5 * core::kMinute);
}

TEST(RuleEngineTest, AbsenceExpiryDeliveredByLaterEvent) {
  RuleEngine engine;
  Rule r;
  r.name = "no_recovery";
  r.kind = RuleKind::kAbsence;
  r.pattern = "*failed*";
  r.pattern_b = "*recovered*";
  r.window = core::kMinute;
  engine.add_rule(r);
  engine.process(ev(0, "failed"));
  // Any later event carries time forward and flushes the expiry.
  const auto fired = engine.process(ev(10 * core::kMinute, "unrelated"));
  ASSERT_EQ(fired.size(), 1u);
}

TEST(RuleEngineTest, ThresholdCountsWithinWindow) {
  RuleEngine engine;
  Rule r;
  r.name = "storm";
  r.kind = RuleKind::kThreshold;
  r.pattern = "*DBE*";
  r.window = core::kMinute;
  r.count = 3;
  engine.add_rule(r);
  EXPECT_TRUE(engine.process(ev(0, "DBE")).empty());
  EXPECT_TRUE(engine.process(ev(10 * core::kSecond, "DBE")).empty());
  EXPECT_EQ(engine.process(ev(20 * core::kSecond, "DBE")).size(), 1u);
  // Old events age out of the window.
  EXPECT_TRUE(engine.process(ev(5 * core::kMinute, "DBE")).empty());
}

TEST(RuleEngineTest, ThresholdMachineWideWhenSameComponentFalse) {
  RuleEngine engine;
  Rule r;
  r.name = "flood";
  r.kind = RuleKind::kThreshold;
  r.window = core::kMinute;
  r.count = 3;
  r.same_component = false;
  engine.add_rule(r);
  engine.process(ev(0, "x", ComponentId{1}));
  engine.process(ev(1, "x", ComponentId{2}));
  EXPECT_EQ(engine.process(ev(2, "x", ComponentId{3})).size(), 1u);
}

TEST(RuleEngineTest, StandardRuleSetCatchesPlatformEvents) {
  RuleEngine engine;
  for (auto& r : standard_platform_rules()) engine.add_rule(std::move(r));
  EXPECT_GE(engine.rule_count(), 5u);
  // GPU DBE storm on one component.
  std::vector<RuleMatch> fired;
  for (int i = 0; i < 4; ++i) {
    auto matches = engine.process(ev(i * core::kMinute,
                                     "GPU double bit error count 1",
                                     ComponentId{7}, Severity::kError,
                                     LogFacility::kHardware));
    fired.insert(fired.end(), matches.begin(), matches.end());
  }
  bool storm = false;
  for (const auto& m : fired) {
    if (m.rule_name == "gpu_dbe_storm") storm = true;
  }
  EXPECT_TRUE(storm);
}

}  // namespace
}  // namespace hpcmon::analysis
