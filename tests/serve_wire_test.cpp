// Serve wire framing under adversarial socket input: truncated frames,
// oversized declared lengths (rejected by the byte cap, no unbounded
// allocation), and frames split across arbitrary read() boundaries.
#include "serve/wire.hpp"

#include <gtest/gtest.h>

#include "serve/protocol.hpp"

namespace hpcmon::serve {
namespace {

std::vector<std::uint8_t> frame_bytes(MsgType type, std::uint32_t id,
                                      const std::vector<std::uint8_t>& body) {
  std::vector<std::uint8_t> out;
  append_wire_frame(out, type, id, body);
  return out;
}

TEST(WireAssembler, RoundTripsOneFrame) {
  const auto bytes = frame_bytes(MsgType::kQueryRange, 42, {1, 2, 3, 4});
  WireAssembler a;
  ASSERT_TRUE(a.feed(bytes.data(), bytes.size()));
  auto frame = a.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, MsgType::kQueryRange);
  EXPECT_EQ(frame->request_id, 42u);
  EXPECT_EQ(frame->body, (std::vector<std::uint8_t>{1, 2, 3, 4}));
  EXPECT_FALSE(a.next().has_value());
  EXPECT_EQ(a.buffered(), 0u);
}

TEST(WireAssembler, ReassemblesAcrossArbitrarySplits) {
  // Three frames, fed one byte at a time — the cruellest fragmentation a
  // socket can produce.
  std::vector<std::uint8_t> stream;
  for (std::uint32_t id = 1; id <= 3; ++id) {
    const auto f = frame_bytes(MsgType::kPing, id,
                               std::vector<std::uint8_t>(id * 7, 0xAB));
    stream.insert(stream.end(), f.begin(), f.end());
  }
  WireAssembler a;
  std::vector<WireFrame> got;
  for (const std::uint8_t b : stream) {
    ASSERT_TRUE(a.feed(&b, 1));
    while (auto f = a.next()) got.push_back(std::move(*f));
  }
  ASSERT_EQ(got.size(), 3u);
  for (std::uint32_t id = 1; id <= 3; ++id) {
    EXPECT_EQ(got[id - 1].request_id, id);
    EXPECT_EQ(got[id - 1].body.size(), id * 7u);
  }
}

TEST(WireAssembler, TruncatedFrameStaysPending) {
  auto bytes = frame_bytes(MsgType::kStatus, 7, {9, 9, 9});
  bytes.pop_back();  // lose the last body byte
  WireAssembler a;
  ASSERT_TRUE(a.feed(bytes.data(), bytes.size()));
  EXPECT_FALSE(a.next().has_value());  // incomplete, not an error
  EXPECT_FALSE(a.errored());
  const std::uint8_t tail = 9;
  ASSERT_TRUE(a.feed(&tail, 1));
  EXPECT_TRUE(a.next().has_value());
}

TEST(WireAssembler, OversizedDeclaredLengthIsARejectionNotAnAllocation) {
  // Header declaring a 4 GiB-ish frame: must fail the moment the length is
  // readable, buffering nothing beyond the header.
  std::vector<std::uint8_t> evil = {0xFF, 0xFF, 0xFF, 0xFE};
  WireAssembler a;
  a.feed(evil.data(), evil.size());
  EXPECT_FALSE(a.next().has_value());
  EXPECT_TRUE(a.errored());
  EXPECT_EQ(a.buffered(), 0u);  // cleared on error, not held
  // Sticky: further feeds are refused.
  const std::uint8_t more = 0;
  EXPECT_FALSE(a.feed(&more, 1));
}

TEST(WireAssembler, CustomCapApplies) {
  WireAssembler a(/*max_frame_bytes=*/64);
  const auto ok = frame_bytes(MsgType::kPing, 1, std::vector<std::uint8_t>(32));
  ASSERT_TRUE(a.feed(ok.data(), ok.size()));
  EXPECT_TRUE(a.next().has_value());
  const auto big =
      frame_bytes(MsgType::kPing, 2, std::vector<std::uint8_t>(128));
  a.feed(big.data(), big.size());
  EXPECT_FALSE(a.next().has_value());
  EXPECT_TRUE(a.errored());
}

TEST(WireAssembler, UndersizedDeclaredLengthIsAnError) {
  // length < type+id (5) cannot frame anything.
  const std::vector<std::uint8_t> evil = {3, 0, 0, 0, 1, 0, 0};
  WireAssembler a;
  a.feed(evil.data(), evil.size());
  EXPECT_FALSE(a.next().has_value());
  EXPECT_TRUE(a.errored());
}

TEST(ProtocolDecoders, HostileCountsCannotForceAllocation) {
  // A points body declaring 4 billion entries but carrying 8 bytes: the
  // decoder must fail on underrun without reserving for the declared count.
  std::vector<std::uint8_t> body = {0xFF, 0xFF, 0xFF, 0xFF,  // count
                                    1,    2,    3,    4,    5, 6, 7, 8};
  std::vector<core::TimedValue> points;
  EXPECT_FALSE(decode_points(body, points));
  ScanPage page;
  std::vector<std::uint8_t> page_body = {1, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0};
  EXPECT_FALSE(decode_scan_page(page_body, page));
  SubscribeAck ack;
  std::vector<std::uint8_t> ack_body = {1, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF};
  EXPECT_FALSE(decode_subscribe_ack(ack_body, ack));
  std::vector<ConnInfo> conns;
  std::vector<std::uint8_t> conn_body = {0xFF, 0xFF, 0xFF, 0xFF, 1};
  EXPECT_FALSE(decode_conn_list(conn_body, conns));
}

TEST(ProtocolDecoders, RejectOutOfRangeEnums) {
  AggregateReq agg_req;
  agg_req.series = core::SeriesId{3};
  agg_req.range = {0, 100};
  agg_req.agg = store::Agg::kMax;
  auto body = encode_aggregate_req(agg_req);
  body.back() = 250;  // not a store::Agg
  AggregateReq decoded;
  EXPECT_FALSE(decode_aggregate_req(body, decoded));

  auto mode_body = encode_set_mode(core::DegradationMode::kQuarantine);
  mode_body.back() = 17;  // not a DegradationMode
  std::optional<core::DegradationMode> mode;
  EXPECT_FALSE(decode_set_mode(mode_body, mode));

  DownsampleReq ds;
  ds.series = core::SeriesId{1};
  ds.range = {0, 100};
  ds.bucket = 0;  // zero-width bucket would divide by zero downstream
  ds.agg = store::Agg::kMean;
  DownsampleReq ds_out;
  EXPECT_FALSE(decode_downsample_req(encode_downsample_req(ds), ds_out));
}

TEST(ProtocolCodecs, RoundTripEveryBody) {
  RangeReq rr{core::SeriesId{9}, {-5, 5000}};
  RangeReq rr2;
  ASSERT_TRUE(decode_range_req(encode_range_req(rr), rr2));
  EXPECT_EQ(rr2.series, rr.series);
  EXPECT_EQ(rr2.range, rr.range);

  ScanOpenReq so{core::SeriesId{2}, {10, 20}, 77};
  ScanOpenReq so2;
  ASSERT_TRUE(decode_scan_open_req(encode_scan_open_req(so), so2));
  EXPECT_EQ(so2.page_points, 77u);

  SubscribeAck ack;
  ack.sub_id = 5;
  ack.matched = {{core::SeriesId{1}, "node.power_w@n0"},
                 {core::SeriesId{2}, "node.power_w@n1"}};
  SubscribeAck ack2;
  ASSERT_TRUE(decode_subscribe_ack(encode_subscribe_ack(ack), ack2));
  EXPECT_EQ(ack2.sub_id, 5u);
  ASSERT_EQ(ack2.matched.size(), 2u);
  EXPECT_EQ(ack2.matched[1].second, "node.power_w@n1");

  ScanPage page;
  page.done = true;
  page.points = {{1, 1.5}, {2, 2.5}};
  ScanPage page2;
  ASSERT_TRUE(decode_scan_page(encode_scan_page(page), page2));
  EXPECT_TRUE(page2.done);
  EXPECT_EQ(page2.points, page.points);

  std::optional<core::TimedValue> latest2;
  ASSERT_TRUE(decode_latest(encode_latest(core::TimedValue{7, 3.25}), latest2));
  ASSERT_TRUE(latest2.has_value());
  EXPECT_EQ(latest2->time, 7);
  EXPECT_EQ(latest2->value, 3.25);
  ASSERT_TRUE(decode_latest(encode_latest(std::nullopt), latest2));
  EXPECT_FALSE(latest2.has_value());

  std::vector<ConnInfo> conns = {{1, 10, 100, 2, 1}, {2, 20, 200, 0, 0}};
  std::vector<ConnInfo> conns2;
  ASSERT_TRUE(decode_conn_list(encode_conn_list(conns), conns2));
  ASSERT_EQ(conns2.size(), 2u);
  EXPECT_EQ(conns2[0].tx_bytes, 100u);
  EXPECT_EQ(conns2[1].id, 2u);
}

}  // namespace
}  // namespace hpcmon::serve
