#include "store/retention.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace hpcmon::store {
namespace {

using core::SeriesId;
using core::TimeRange;

constexpr SeriesId kS0{0};

RetentionPolicy tight_policy() {
  RetentionPolicy p;
  p.hot_window = core::kHour;
  p.warm_window = core::kDay;
  p.warm_bucket = 10 * core::kMinute;
  return p;
}

TEST(TieredStoreTest, EnforceMovesOldDataToWarmAndCold) {
  TieredStore store(tight_policy(), 16);
  // 4 hours of minute data.
  for (int i = 0; i < 240; ++i) {
    store.append(kS0, i * core::kMinute, static_cast<double>(i % 10));
  }
  const auto now = 240 * core::kMinute;
  const auto archived = store.enforce(now);
  EXPECT_GT(archived, 0u);
  EXPECT_GT(store.archive().blob_count(), 0u);
  // Hot retains the recent window (plus chunk-boundary slack).
  const auto hot_pts = store.hot().query_range(kS0, {0, now});
  ASSERT_FALSE(hot_pts.empty());
  EXPECT_GE(hot_pts.front().time, now - tight_policy().hot_window -
                                      16 * core::kMinute);
  // Warm has downsampled history.
  EXPECT_GT(store.warm().query_range(kS0, {0, now}).size(), 0u);
}

TEST(TieredStoreTest, QueryRangeMergesWarmAndHotWithoutGaps) {
  TieredStore store(tight_policy(), 16);
  for (int i = 0; i < 240; ++i) {
    store.append(kS0, i * core::kMinute, 1.0);
  }
  store.enforce(240 * core::kMinute);
  const auto pts = store.query_range(kS0, {0, 240 * core::kMinute});
  ASSERT_FALSE(pts.empty());
  // Time-ordered.
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LT(pts[i - 1].time, pts[i].time);
  }
  // Coverage: first point at or near t=0 (warm bucket start), last recent.
  EXPECT_LE(pts.front().time, 10 * core::kMinute);
  EXPECT_EQ(pts.back().time, 239 * core::kMinute);
  // Warm is downsampled, so the merged count is less than raw but still
  // covers the whole span.
  EXPECT_LT(pts.size(), 240u);
}

TEST(TieredStoreTest, QueryFullReloadsArchiveAtFullFidelity) {
  TieredStore store(tight_policy(), 16);
  for (int i = 0; i < 240; ++i) {
    store.append(kS0, i * core::kMinute, static_cast<double>(i));
  }
  store.enforce(240 * core::kMinute);
  const auto pts = store.query_full(kS0, {0, 240 * core::kMinute});
  ASSERT_EQ(pts.size(), 240u);  // every raw point is back
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(pts[i].time, static_cast<core::TimePoint>(i) * core::kMinute);
    EXPECT_DOUBLE_EQ(pts[i].value, static_cast<double>(i));
  }
  EXPECT_GT(store.archive().reload_count(), 0u);
}

TEST(TieredStoreTest, WarmDownsampleAggregatesCorrectly) {
  RetentionPolicy p = tight_policy();
  p.warm_agg = Agg::kMax;
  TieredStore store(p, 32);
  for (int i = 0; i < 200; ++i) {
    store.append(kS0, i * core::kMinute, static_cast<double>(i));
  }
  store.enforce(200 * core::kMinute);
  const auto warm = store.warm().query_range(kS0, {0, 200 * core::kMinute});
  ASSERT_FALSE(warm.empty());
  // Each warm bucket holds the max of its member minutes.
  for (const auto& b : warm) {
    const double bucket_index =
        static_cast<double>(b.time / (10 * core::kMinute));
    EXPECT_GE(b.value, bucket_index * 10.0);
  }
}

TEST(TieredStoreTest, RepeatedEnforceIsIdempotentOnQuietStore) {
  TieredStore store(tight_policy(), 16);
  for (int i = 0; i < 100; ++i) store.append(kS0, i * core::kMinute, 1.0);
  const auto now = 100 * core::kMinute;
  store.enforce(now);
  const auto blobs_before = store.archive().blob_count();
  store.enforce(now);
  EXPECT_EQ(store.archive().blob_count(), blobs_before);
}

TEST(ArchiveTest, SaveAndLoadFile) {
  Archive archive;
  std::vector<core::TimedValue> pts;
  for (int i = 0; i < 50; ++i) pts.push_back({i * core::kSecond, i * 2.0});
  archive.store(kS0, Chunk::compress(pts));
  archive.store(SeriesId{7}, Chunk::compress(pts));

  const std::string path = "/tmp/hpcmon_archive_test.bin";
  ASSERT_TRUE(archive.save_to_file(path).is_ok());
  const auto loaded = Archive::load_from_file(path);
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_EQ(loaded.value().blob_count(), 2u);
  const auto fetched = loaded.value().fetch(kS0, {0, core::kDay});
  EXPECT_EQ(fetched, pts);
  std::remove(path.c_str());
}

TEST(ArchiveTest, LoadRejectsTruncatedFile) {
  Archive archive;
  std::vector<core::TimedValue> pts;
  for (int i = 0; i < 50; ++i) pts.push_back({i * core::kSecond, i * 2.0});
  archive.store(kS0, Chunk::compress(pts));
  const std::string path = "/tmp/hpcmon_archive_truncated.bin";
  ASSERT_TRUE(archive.save_to_file(path).is_ok());
  // Chop the file mid-blob, as a crash mid-copy or a full disk would.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_GT(size, 32);
  std::error_code ec;
  std::filesystem::resize_file(path, static_cast<std::uintmax_t>(size / 2), ec);
  ASSERT_FALSE(ec);
  EXPECT_FALSE(Archive::load_from_file(path).is_ok());
  std::remove(path.c_str());
}

TEST(ArchiveTest, SaveIsAtomicAndNeverClobbersOnFailure) {
  // A good archive followed by a failed save must leave the good one intact:
  // save writes a sibling .tmp and renames only on success.
  Archive archive;
  std::vector<core::TimedValue> pts;
  for (int i = 0; i < 20; ++i) pts.push_back({i * core::kSecond, 1.0});
  archive.store(kS0, Chunk::compress(pts));
  const std::string path = "/tmp/hpcmon_archive_atomic.bin";
  ASSERT_TRUE(archive.save_to_file(path).is_ok());
  // A save into an unopenable temp location fails cleanly...
  const std::string bad = "/tmp/nonexistent_dir_hpcmon/archive.bin";
  EXPECT_FALSE(archive.save_to_file(bad).is_ok());
  // ...and no stray .tmp litters the directory after a successful save.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  const auto loaded = Archive::load_from_file(path);
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_EQ(loaded.value().fetch(kS0, {0, core::kDay}), pts);
  std::remove(path.c_str());
}

TEST(ArchiveTest, LoadRejectsMissingAndCorrupt) {
  EXPECT_FALSE(Archive::load_from_file("/tmp/nonexistent_hpcmon.bin").is_ok());
  const std::string path = "/tmp/hpcmon_corrupt.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("not an archive", f);
  std::fclose(f);
  EXPECT_FALSE(Archive::load_from_file(path).is_ok());
  std::remove(path.c_str());
}

TEST(ArchiveTest, FetchFiltersByRange) {
  Archive archive;
  std::vector<core::TimedValue> pts;
  for (int i = 0; i < 100; ++i) pts.push_back({i * core::kSecond, 1.0});
  archive.store(kS0, Chunk::compress(pts));
  EXPECT_EQ(archive.fetch(kS0, {10 * core::kSecond, 20 * core::kSecond}).size(),
            10u);
  EXPECT_TRUE(archive.fetch(kS0, {core::kDay, 2 * core::kDay}).empty());
  EXPECT_TRUE(archive.fetch(SeriesId{9}, {0, core::kDay}).empty());
}

}  // namespace
}  // namespace hpcmon::store
