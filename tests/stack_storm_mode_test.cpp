// Storm-mode wiring through MonitoringStack: registry priorities drive the
// ingest door, the DegradationController's transitions reach the pipeline
// and the samplers, controller telemetry is re-ingested and visible in
// status(), and shutdown() is deadline-bounded — a wedged tier is reported,
// never waited on forever.
#include "stack/stack.hpp"

#include <gtest/gtest.h>

#include <string>

namespace hpcmon::stack {
namespace {

sim::ClusterParams cluster_params() {
  sim::ClusterParams p;
  p.shape.cabinets = 2;
  p.shape.chassis_per_cabinet = 2;
  p.shape.blades_per_chassis = 4;
  p.shape.nodes_per_blade = 4;
  p.shape.gpu_node_fraction = 0.25;
  p.tick = 5 * core::kSecond;
  p.seed = 61;
  return p;
}

core::Config parse(const std::string& text) {
  auto r = core::Config::parse(text);
  EXPECT_TRUE(r.is_ok());
  return r.value();
}

const std::string kStormCfg =
    "sample_interval_s = 30\n"
    "ingest_shards = 2\n"
    "ingest_queue_cap = 512\n"
    "ingest_policy = drop_oldest\n"
    "breaker_threshold = 3\n"
    "degradation = 1\n"
    "degradation_interval_s = 30\n";

TEST(StormModeStackTest, FairWeatherStaysNormalAndEvaluates) {
  sim::Cluster cluster(cluster_params());
  MonitoringStack stack(cluster, parse(kStormCfg));
  ASSERT_NE(stack.degradation(), nullptr);
  cluster.run_for(10 * core::kMinute);
  const auto* d = stack.degradation();
  EXPECT_GE(d->stats().evaluations, 10u);  // 30 s cadence over 10 min
  EXPECT_EQ(d->mode(), core::DegradationMode::kNormal);
  EXPECT_EQ(d->stats().transitions, 0u);
  EXPECT_EQ(stack.ingest_pipeline()->mode(), core::DegradationMode::kNormal);
  // A healthy run sheds nothing and loses nothing.
  const auto snap = stack.ingest_pipeline()->metrics().snapshot();
  EXPECT_EQ(snap.shed_samples(), 0u);
  EXPECT_EQ(snap.lost_samples(), 0u);
}

TEST(StormModeStackTest, ControllerTelemetryIsIngestedCritical) {
  sim::Cluster cluster(cluster_params());
  MonitoringStack stack(cluster, parse(kStormCfg));
  cluster.run_for(10 * core::kMinute);
  stack.drain_ingest();
  auto& reg = cluster.registry();
  bool found = false;
  for (std::uint32_t i = 0; i < reg.series_count(); ++i) {
    const auto id = core::SeriesId{i};
    if (reg.series_name(id).find("resilience.degradation.mode") ==
        std::string::npos) {
      continue;
    }
    found = true;
    EXPECT_EQ(reg.series_priority(id), core::Priority::kCritical);
    const auto pts =
        stack.sharded_store()->query_range(id, {0, cluster.now() + core::kHour});
    EXPECT_FALSE(pts.empty());  // the controller reports itself every eval
  }
  EXPECT_TRUE(found);
}

TEST(StormModeStackTest, TransitionsReachDoorAndSamplers) {
  sim::Cluster cluster(cluster_params());
  MonitoringStack stack(cluster, parse(kStormCfg));
  auto* d = stack.degradation();
  ASSERT_NE(d, nullptr);
  ASSERT_FALSE(stack.supervised_samplers().empty());

  // Force the loop with synthetic saturation readings (the controller is
  // deliberately signal-agnostic): two ticks arm, the third escalates again.
  resilience::HealthSignals storm;
  storm.queue_fill = 1.0;
  d->evaluate(core::kMinute, storm);
  d->evaluate(2 * core::kMinute, storm);
  EXPECT_EQ(d->mode(), core::DegradationMode::kShedBulk);
  EXPECT_EQ(stack.ingest_pipeline()->mode(), core::DegradationMode::kShedBulk);

  d->evaluate(3 * core::kMinute, storm);
  d->evaluate(4 * core::kMinute, storm);
  EXPECT_EQ(d->mode(), core::DegradationMode::kSummarize);
  EXPECT_EQ(stack.ingest_pipeline()->mode(), core::DegradationMode::kSummarize);
  // SUMMARIZE widens sampler cadence — except critical samplers (the health
  // battery), which keep full cadence through any storm.
  const auto stride = d->config().sampler_stride[static_cast<std::size_t>(
      core::DegradationMode::kSummarize)];
  EXPECT_GT(stride, 1u);
  for (const auto* s : stack.supervised_samplers()) {
    if (s->priority() == core::Priority::kCritical) {
      EXPECT_EQ(s->stride(), 1u);
    } else {
      EXPECT_EQ(s->stride(), stride);
    }
  }

  // Recovery unwinds the strides too.
  resilience::HealthSignals calm;
  for (int i = 0; i < 12; ++i) d->evaluate((5 + i) * core::kMinute, calm);
  EXPECT_EQ(d->mode(), core::DegradationMode::kNormal);
  EXPECT_EQ(stack.ingest_pipeline()->mode(), core::DegradationMode::kNormal);
  for (const auto* s : stack.supervised_samplers()) EXPECT_EQ(s->stride(), 1u);
}

TEST(StormModeStackTest, StatusCarriesDegradationSegment) {
  sim::Cluster cluster(cluster_params());
  MonitoringStack stack(cluster, parse(kStormCfg));
  cluster.run_for(5 * core::kMinute);
  const auto line = stack.status();
  EXPECT_NE(line.find("NORMAL"), std::string::npos) << line;
}

TEST(StormModeStackTest, ShutdownDrainsCleanlyWithinDeadline) {
  sim::Cluster cluster(cluster_params());
  MonitoringStack stack(cluster, parse(kStormCfg));
  cluster.run_for(10 * core::kMinute);
  const auto report = stack.shutdown(std::chrono::milliseconds(5000));
  EXPECT_TRUE(report.clean());
  EXPECT_TRUE(report.drained);
  EXPECT_EQ(report.abandoned_batches, 0);
  // Idempotent: a second call is a no-op, and so is the destructor after it.
  const auto again = stack.shutdown();
  EXPECT_TRUE(again.clean());
}

TEST(StormModeStackTest, WedgedIngestIsReportedNotWaitedOn) {
  // The drill: pipeline constructed but never started (ingest_autostart=0),
  // so nothing ever drains. shutdown() must come back at its deadline with
  // an exact abandonment count instead of hanging teardown forever.
  sim::Cluster cluster(cluster_params());
  MonitoringStack stack(cluster,
                        parse(kStormCfg + "ingest_autostart = 0\n"));
  ASSERT_FALSE(stack.ingest_pipeline()->started());
  cluster.run_for(5 * core::kMinute);  // sweeps queue work that never moves
  ASSERT_GT(stack.ingest_pipeline()->in_flight(), 0);
  const auto queued = stack.ingest_pipeline()->in_flight();

  const auto t0 = std::chrono::steady_clock::now();
  const auto report = stack.shutdown(std::chrono::milliseconds(200));
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(5));  // bounded, not wedged
  EXPECT_FALSE(report.drained);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.abandoned_batches, queued);
}

}  // namespace
}  // namespace hpcmon::stack
