// DVFS / p-state behaviour: power scaling, Amdahl runtime scaling, and the
// compute-vs-communication asymmetry the SNL sweeps exploit.
#include <gtest/gtest.h>

#include "sim/cluster.hpp"

namespace hpcmon::sim {
namespace {

ClusterParams params() {
  ClusterParams p;
  p.shape.cabinets = 1;
  p.shape.chassis_per_cabinet = 2;
  p.shape.blades_per_chassis = 4;
  p.shape.nodes_per_blade = 4;  // 32 nodes
  p.power.noise_w = 0.0;
  p.seed = 5;
  return p;
}

core::Duration run_job(AppProfile profile, double pstate) {
  Cluster cluster(params());
  cluster.set_all_pstates(pstate);
  JobRequest req;
  req.num_nodes = 32;
  req.nominal_runtime = 2 * core::kMinute;
  req.profile = std::move(profile);
  const auto id = cluster.scheduler().submit(0, std::move(req));
  while (cluster.scheduler().job(id)->state != JobState::kCompleted) {
    cluster.run_for(core::kSecond);
    if (cluster.now() > core::kHour) return -1;
  }
  return cluster.scheduler().job(id)->actual_runtime();
}

TEST(PstateTest, ClampedToValidRange) {
  Cluster cluster(params());
  cluster.set_node_pstate(0, 2.0);
  EXPECT_DOUBLE_EQ(cluster.node_state(0).pstate, 1.0);
  cluster.set_node_pstate(0, 0.1);
  EXPECT_DOUBLE_EQ(cluster.node_state(0).pstate, 0.4);
  cluster.set_node_pstate(0, 0.75);
  EXPECT_DOUBLE_EQ(cluster.node_state(0).pstate, 0.75);
}

TEST(PstateTest, DynamicPowerScalesCubically) {
  Cluster full(params());
  Cluster half(params());
  half.set_all_pstates(0.5);
  // Identical full-machine compute load.
  for (auto* c : {&full, &half}) {
    JobRequest req;
    req.num_nodes = 32;
    req.nominal_runtime = 10 * core::kMinute;
    req.profile = app_network_heavy();  // constant single phase
    c->scheduler().submit(0, std::move(req));
    c->run_for(core::kMinute);
  }
  const auto& pp = params().power;
  const double full_dyn = full.power().node_power_w(0) - pp.node_idle_w;
  const double half_dyn = half.power().node_power_w(0) - pp.node_idle_w;
  EXPECT_NEAR(half_dyn / full_dyn, 0.125, 0.03);  // (0.5)^3
}

TEST(PstateTest, ComputeBoundSlowsLikeOneOverF) {
  // Pure-compute profile: Amdahl with cpu_share ~ 0.95.
  auto app = app_network_heavy();
  app.phases[0].net_gbps_per_node = 0.0;  // remove the fabric term
  app.phases[0].cpu_util = 1.0;
  const auto t_full = run_job(app, 1.0);
  const auto t_half = run_job(app, 0.5);
  ASSERT_GT(t_full, 0);
  ASSERT_GT(t_half, 0);
  EXPECT_NEAR(static_cast<double>(t_half) / static_cast<double>(t_full), 2.0,
              0.15);
}

TEST(PstateTest, LowCpuPhasesBarelySlow) {
  auto app = app_network_heavy();
  app.phases[0].cpu_util = 0.2;  // mostly waiting on the fabric
  app.phases[0].net_gbps_per_node = 0.0;
  const auto t_full = run_job(app, 1.0);
  const auto t_half = run_job(app, 0.5);
  const double slowdown =
      static_cast<double>(t_half) / static_cast<double>(t_full);
  EXPECT_LT(slowdown, 1.35);  // Amdahl: 0.2/0.5 + 0.8 = 1.2
  EXPECT_GT(slowdown, 1.05);
}

TEST(PstateTest, PerNodeKnobIsIndependent) {
  Cluster cluster(params());
  cluster.set_node_pstate(3, 0.6);
  EXPECT_DOUBLE_EQ(cluster.node_state(3).pstate, 0.6);
  EXPECT_DOUBLE_EQ(cluster.node_state(4).pstate, 1.0);
  // Survives ticks (it is configuration, not load).
  cluster.run_for(10 * core::kSecond);
  EXPECT_DOUBLE_EQ(cluster.node_state(3).pstate, 0.6);
}

}  // namespace
}  // namespace hpcmon::sim
