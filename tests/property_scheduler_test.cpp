// Property tests: scheduler invariants under randomized operation sequences
// (submissions of random shapes, nodes going in/out of service, gates that
// randomly reject nodes).
//
//   (1) a node is owned by at most one running job, and owners match records
//   (2) accounting: submitted == queued + running + completed
//   (3) completed jobs release every node they held
//   (4) unavailable nodes never receive new jobs
//   (5) job node counts always match their requests
#include <gtest/gtest.h>

#include <set>

#include "core/registry.hpp"
#include "sim/filesystem.hpp"
#include "sim/scheduler.hpp"

namespace hpcmon::sim {
namespace {

struct SchedCase {
  const char* name;
  PlacementPolicy policy;
  bool with_gate;
  bool toggle_nodes;
  int max_job_nodes;
};

class SchedulerPropertyTest : public ::testing::TestWithParam<SchedCase> {};

TEST_P(SchedulerPropertyTest, InvariantsHoldUnderRandomOps) {
  const auto& param = GetParam();
  core::MetricRegistry reg;
  MachineShape shape;
  shape.cabinets = 2;
  shape.chassis_per_cabinet = 2;
  shape.blades_per_chassis = 4;
  shape.nodes_per_blade = 4;  // 64 nodes
  Topology topo(reg, shape, FabricKind::kTorus3D);
  Fabric fabric(topo, {}, core::Rng(1));
  FsModel fs(topo, {}, core::Rng(2));
  Scheduler sched(topo, fabric, fs, param.policy, core::Rng(3));
  core::Rng rng(std::hash<std::string>{}(param.name));
  std::vector<NodeState> nodes(topo.num_nodes());
  std::vector<core::LogEvent> logs;

  std::set<int> gate_rejects;  // nodes the gate currently dislikes
  if (param.with_gate) {
    sched.set_pre_job_check(
        [&gate_rejects](int node) { return gate_rejects.count(node) == 0; });
  }

  std::size_t submitted = 0;
  core::TimePoint now = 0;
  const auto mix = standard_app_mix();
  for (int round = 0; round < 400; ++round) {
    now += core::kSecond;
    // Random operations.
    if (rng.bernoulli(0.25)) {
      JobRequest req;
      req.num_nodes = static_cast<int>(rng.uniform_int(1, param.max_job_nodes));
      req.nominal_runtime =
          rng.uniform_int(5, 60) * core::kSecond;
      req.profile = mix[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(mix.size()) - 1))];
      sched.submit(now, std::move(req));
      ++submitted;
    }
    if (param.toggle_nodes && rng.bernoulli(0.1)) {
      const int n = static_cast<int>(rng.uniform_int(0, topo.num_nodes() - 1));
      sched.set_node_available(n, rng.bernoulli(0.5));
    }
    if (param.with_gate && rng.bernoulli(0.05)) {
      gate_rejects.clear();
      const auto k = rng.uniform_int(0, 5);
      for (int i = 0; i < k; ++i) {
        gate_rejects.insert(
            static_cast<int>(rng.uniform_int(0, topo.num_nodes() - 1)));
      }
    }
    if (param.toggle_nodes && rng.bernoulli(0.03)) {
      // Operator kills a random running job (no requeue: keeps accounting).
      const auto running_now = sched.running_jobs();
      if (!running_now.empty()) {
        sched.fail_job(now,
                       running_now[static_cast<std::size_t>(rng.uniform_int(
                           0, static_cast<std::int64_t>(running_now.size()) - 1))],
                       /*requeue=*/false, logs);
      }
    }

    sched.apply_loads(now, nodes);
    fabric.tick(now, core::kSecond, logs);
    fs.tick(now, core::kSecond, logs);
    sched.advance(now, core::kSecond, nodes, logs);

    // ---- invariants -------------------------------------------------------
    // (1) ownership consistency.
    std::map<core::JobId, std::set<int>> owned;
    for (int n = 0; n < topo.num_nodes(); ++n) {
      const auto owner = sched.job_on_node(n);
      if (owner != core::kNoJob) owned[owner].insert(n);
    }
    const auto running = sched.running_jobs();
    ASSERT_EQ(owned.size(), running.size());
    for (const auto id : running) {
      const auto* rec = sched.job(id);
      ASSERT_NE(rec, nullptr);
      ASSERT_EQ(rec->state, JobState::kRunning);
      // (5) allocation matches request.
      ASSERT_EQ(static_cast<int>(rec->nodes.size()), rec->request.num_nodes);
      std::set<int> expect(rec->nodes.begin(), rec->nodes.end());
      ASSERT_EQ(owned[id], expect) << "ownership mismatch";
    }
    // (2) accounting.
    ASSERT_EQ(submitted, static_cast<std::size_t>(sched.queue_depth()) +
                             running.size() + sched.completed_jobs().size());
  }

  // (3) completed jobs hold nothing.
  for (const auto id : sched.completed_jobs()) {
    const auto* rec = sched.job(id);
    for (const int n : rec->nodes) {
      ASSERT_NE(sched.job_on_node(n), id);
    }
    ASSERT_GE(rec->actual_runtime(), 0);
  }
  // The run did meaningful work.
  EXPECT_GT(sched.completed_jobs().size(), 5u);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, SchedulerPropertyTest,
    ::testing::Values(
        SchedCase{"firstfit_plain", PlacementPolicy::kFirstFit, false, false, 24},
        SchedCase{"random_plain", PlacementPolicy::kRandom, false, false, 24},
        SchedCase{"topo_plain", PlacementPolicy::kTopoAware, false, false, 24},
        SchedCase{"firstfit_gated", PlacementPolicy::kFirstFit, true, false, 16},
        SchedCase{"topo_toggling", PlacementPolicy::kTopoAware, false, true, 16},
        SchedCase{"chaos", PlacementPolicy::kRandom, true, true, 32}),
    [](const ::testing::TestParamInfo<SchedCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace hpcmon::sim
