// LogStore and JobStore.
#include <cstdio>
#include <gtest/gtest.h>

#include "store/jobstore.hpp"
#include "store/logstore.hpp"

namespace hpcmon::store {
namespace {

using core::ComponentId;
using core::JobId;
using core::LogEvent;
using core::LogFacility;
using core::Severity;

LogEvent event(core::TimePoint t, std::string msg,
               Severity sev = Severity::kInfo,
               LogFacility fac = LogFacility::kConsole,
               ComponentId comp = ComponentId{0}) {
  LogEvent e;
  e.time = t;
  e.local_time = t;
  e.message = std::move(msg);
  e.severity = sev;
  e.facility = fac;
  e.component = comp;
  return e;
}

TEST(LogStoreTest, TimeRangeQuery) {
  LogStore store;
  for (int i = 0; i < 10; ++i) {
    store.append(event(i * core::kSecond, "line"));
  }
  LogQuery q;
  q.range = {3 * core::kSecond, 7 * core::kSecond};
  EXPECT_EQ(store.count(q), 4u);
  EXPECT_EQ(store.size(), 10u);
}

TEST(LogStoreTest, SeverityAndFacilityFilters) {
  LogStore store;
  store.append(event(1, "a", Severity::kError, LogFacility::kHardware));
  store.append(event(2, "b", Severity::kInfo, LogFacility::kHardware));
  store.append(event(3, "c", Severity::kCritical, LogFacility::kNetwork));
  LogQuery q;
  q.max_severity = Severity::kError;  // error or worse
  EXPECT_EQ(store.count(q), 2u);
  q.facility = LogFacility::kHardware;
  EXPECT_EQ(store.count(q), 1u);
  EXPECT_EQ(store.query(q)[0].message, "a");
}

TEST(LogStoreTest, TokenIndexFastPath) {
  LogStore store;
  store.append(event(1, "GPU double bit error count 3"));
  store.append(event(2, "systemd session opened"));
  store.append(event(3, "gpu fell off the bus"));
  LogQuery q;
  q.token = "GPU";  // case-insensitive via index
  EXPECT_EQ(store.count(q), 2u);
  q.token = "absent";
  EXPECT_EQ(store.count(q), 0u);
}

TEST(LogStoreTest, GlobFilter) {
  LogStore store;
  store.append(event(1, "HSN link failed: lane degrade"));
  store.append(event(2, "HSN link recovered"));
  store.append(event(3, "OST slow ios"));
  LogQuery q;
  q.message_glob = "HSN link*";
  EXPECT_EQ(store.count(q), 2u);
  q.message_glob = "*failed*";
  EXPECT_EQ(store.count(q), 1u);
}

TEST(LogStoreTest, JobAndComponentFilters) {
  LogStore store;
  auto e1 = event(1, "x");
  e1.job = JobId{5};
  e1.component = ComponentId{2};
  store.append(e1);
  store.append(event(2, "y"));
  LogQuery q;
  q.job = JobId{5};
  EXPECT_EQ(store.count(q), 1u);
  LogQuery q2;
  q2.component = ComponentId{2};
  EXPECT_EQ(store.count(q2), 1u);
}

TEST(LogStoreTest, CountByBucketHistogram) {
  LogStore store;
  // 3 events in minute 0, 1 in minute 2.
  store.append(event(5 * core::kSecond, "e"));
  store.append(event(20 * core::kSecond, "e"));
  store.append(event(50 * core::kSecond, "e"));
  store.append(event(130 * core::kSecond, "e"));
  const auto hist = store.count_by_bucket({}, core::kMinute);
  ASSERT_EQ(hist.size(), 2u);
  EXPECT_EQ(hist[0].time, 0);
  EXPECT_DOUBLE_EQ(hist[0].value, 3.0);
  EXPECT_EQ(hist[1].time, 2 * core::kMinute);
  EXPECT_DOUBLE_EQ(hist[1].value, 1.0);
}

TEST(LogStoreTest, OutOfOrderClampedNotLost) {
  LogStore store;
  store.append(event(100, "first"));
  store.append(event(50, "late"));  // clamped to t=100
  EXPECT_EQ(store.size(), 2u);
  LogQuery q;
  q.range = {100, 101};
  EXPECT_EQ(store.count(q), 2u);
}

TEST(LogStoreTest, SeverityHistogram) {
  LogStore store;
  store.append(event(1, "a", Severity::kError));
  store.append(event(2, "b", Severity::kError));
  store.append(event(3, "c", Severity::kInfo));
  const auto hist = store.severity_histogram();
  EXPECT_EQ(hist[static_cast<std::size_t>(Severity::kError)], 2u);
  EXPECT_EQ(hist[static_cast<std::size_t>(Severity::kInfo)], 1u);
}

TEST(LogStoreTest, SaveAndLoadFilePreservesEverything) {
  LogStore store;
  for (int i = 0; i < 2500; ++i) {  // spans multiple stored frames
    auto e = event(i * core::kSecond, "CRC retry count " + std::to_string(i),
                   i % 7 == 0 ? Severity::kError : Severity::kInfo,
                   LogFacility::kNetwork, ComponentId{static_cast<std::uint32_t>(i % 16)});
    e.job = JobId{static_cast<std::uint64_t>(i)};
    e.local_time = e.time + 123;
    store.append(std::move(e));
  }
  const std::string path = "/tmp/hpcmon_logstore_test.bin";
  ASSERT_TRUE(store.save_to_file(path).is_ok());

  LogStore loaded;
  ASSERT_TRUE(LogStore::load_from_file(path, loaded).is_ok());
  EXPECT_EQ(loaded.size(), store.size());
  // Structured fields survive, including job attribution and local stamps.
  LogQuery q;
  q.job = JobId{77};
  const auto hits = loaded.query(q);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].local_time, hits[0].time + 123);
  // The token index was rebuilt on load.
  LogQuery tq;
  tq.token = "crc";
  EXPECT_EQ(loaded.count(tq), 2500u);
  std::remove(path.c_str());
}

TEST(LogStoreTest, LoadRejectsMissingAndCorrupt) {
  LogStore out;
  EXPECT_FALSE(LogStore::load_from_file("/tmp/nonexistent_logs.bin", out)
                   .is_ok());
  const std::string path = "/tmp/hpcmon_logstore_corrupt.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("garbage", f);
  std::fclose(f);
  EXPECT_FALSE(LogStore::load_from_file(path, out).is_ok());
  std::remove(path.c_str());
}

JobMeta job(std::uint64_t id, std::string app, std::vector<int> nodes,
            core::TimePoint start, core::TimePoint end) {
  JobMeta j;
  j.id = JobId{id};
  j.app_name = std::move(app);
  j.nodes = std::move(nodes);
  j.submit_time = start;
  j.start_time = start;
  j.end_time = end;
  return j;
}

TEST(JobStoreTest, RecordAndLookup) {
  JobStore store;
  store.record_start(job(1, "lammps", {0, 1, 2}, 100, -1));
  EXPECT_EQ(store.size(), 1u);
  auto j = store.get(JobId{1});
  ASSERT_TRUE(j.has_value());
  EXPECT_TRUE(j->running_at(150));
  store.record_end(job(1, "lammps", {0, 1, 2}, 100, 200));
  j = store.get(JobId{1});
  EXPECT_FALSE(j->running_at(250));
  EXPECT_TRUE(j->running_at(150));
}

TEST(JobStoreTest, JobOnNodeAt) {
  JobStore store;
  store.record_end(job(1, "a", {0, 1}, 0, 100));
  store.record_end(job(2, "b", {1, 2}, 100, 200));
  EXPECT_EQ(core::raw(store.job_on_node_at(1, 50)->id), 1u);
  EXPECT_EQ(core::raw(store.job_on_node_at(1, 150)->id), 2u);
  EXPECT_FALSE(store.job_on_node_at(5, 50).has_value());
  EXPECT_FALSE(store.job_on_node_at(0, 150).has_value());
}

TEST(JobStoreTest, OverlapQuery) {
  JobStore store;
  store.record_end(job(1, "a", {0}, 0, 100));
  store.record_end(job(2, "b", {1}, 150, 250));
  store.record_start(job(3, "c", {2}, 260, -1));  // still running
  EXPECT_EQ(store.jobs_overlapping({50, 160}).size(), 2u);
  EXPECT_EQ(store.jobs_overlapping({500, 600}).size(), 1u);  // running job
  EXPECT_EQ(store.jobs_overlapping({100, 150}).size(), 0u);  // gap
}

TEST(JobStoreTest, RunningAtAndCompletedRuns) {
  JobStore store;
  store.record_end(job(1, "vasp", {0}, 0, 100));
  store.record_end(job(2, "vasp", {1}, 50, 300));
  auto failed = job(3, "vasp", {2}, 60, 70);
  failed.failed = true;
  store.record_end(failed);
  EXPECT_EQ(store.running_at(60).size(), 3u);
  const auto runs = store.completed_runs_of("vasp");
  ASSERT_EQ(runs.size(), 2u);  // failed run excluded
  EXPECT_LE(runs[0].start_time, runs[1].start_time);
}

}  // namespace
}  // namespace hpcmon::store
