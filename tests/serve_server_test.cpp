// End-to-end serve tests over a real loopback socket: query results must be
// byte-identical to in-process store calls, scans paginate losslessly, and a
// subscription delivers its snapshot before any delta, in order.
#include "serve/server.hpp"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "core/registry.hpp"
#include "serve/client.hpp"
#include "store/tsdb.hpp"

namespace hpcmon::serve {
namespace {

class ServeServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    node_ = registry_.register_component(
        {"n0", core::ComponentKind::kNode, core::kNoComponent});
    power_ = registry_.series("node.power_w", node_);
    temp_ = registry_.series("node.temp_c", node_);
    for (int i = 0; i < 1000; ++i) {
      store_.append(power_, i * 10, 100.0 + i);
      store_.append(temp_, i * 10, 40.0 + (i % 7));
    }
    ServeHooks hooks;
    bind_query_hooks(hooks, store_);
    hooks.registry = &registry_;
    hooks.status = [] { return std::string("status-line"); };
    server_ = std::make_unique<ServeServer>(ServeConfig{}, std::move(hooks));
    ASSERT_TRUE(server_->start()) << server_->error();
    ASSERT_TRUE(client_.connect(server_->port()));
  }

  core::MetricRegistry registry_;
  core::ComponentId node_{};
  core::SeriesId power_{}, temp_{};
  store::TimeSeriesStore store_;
  std::unique_ptr<ServeServer> server_;
  ServeClient client_;
};

TEST_F(ServeServerTest, PingAndStatus) {
  EXPECT_TRUE(client_.ping());
  auto st = client_.status();
  ASSERT_TRUE(st.is_ok()) << st.message();
  EXPECT_EQ(st.value(), "status-line");
}

TEST_F(ServeServerTest, QueryResultsMatchInProcessCallsExactly) {
  const core::TimeRange range{150, 7450};
  auto remote = client_.query_range(power_, range);
  ASSERT_TRUE(remote.is_ok()) << remote.message();
  EXPECT_EQ(remote.value(), store_.query_range(power_, range));

  auto lat = client_.latest(temp_);
  ASSERT_TRUE(lat.is_ok());
  EXPECT_EQ(lat.value(), store_.latest(temp_));

  for (const auto agg : {store::Agg::kSum, store::Agg::kMean, store::Agg::kMin,
                         store::Agg::kMax, store::Agg::kCount}) {
    auto remote_agg = client_.aggregate(power_, range, agg);
    ASSERT_TRUE(remote_agg.is_ok());
    EXPECT_EQ(remote_agg.value(), store_.aggregate(power_, range, agg))
        << "agg=" << static_cast<int>(agg);
  }

  auto ds = client_.downsample(power_, range, 500, store::Agg::kMean);
  ASSERT_TRUE(ds.is_ok());
  EXPECT_EQ(ds.value(), store_.downsample(power_, range, 500, store::Agg::kMean));
}

TEST_F(ServeServerTest, QueriesOnUnknownSeriesMatchInProcessEmptiness) {
  const core::SeriesId ghost{999};
  const core::TimeRange range{0, 10000};
  auto remote = client_.query_range(ghost, range);
  ASSERT_TRUE(remote.is_ok());
  EXPECT_EQ(remote.value(), store_.query_range(ghost, range));
  auto agg = client_.aggregate(ghost, range, store::Agg::kSum);
  ASSERT_TRUE(agg.is_ok());
  EXPECT_EQ(agg.value(), store_.aggregate(ghost, range, store::Agg::kSum));
}

TEST_F(ServeServerTest, ScanPaginatesLosslesslyWithClientDrivenFlowControl) {
  const core::TimeRange range{0, 10000};
  auto cursor = client_.scan_open(power_, range, 128);
  ASSERT_TRUE(cursor.is_ok()) << cursor.message();
  std::vector<core::TimedValue> streamed;
  std::size_t pages = 0;
  while (true) {
    auto page = client_.scan_next(cursor.value());
    ASSERT_TRUE(page.is_ok()) << page.message();
    streamed.insert(streamed.end(), page.value().points.begin(),
                    page.value().points.end());
    ++pages;
    ASSERT_LE(page.value().points.size(), 128u);
    if (page.value().done) break;
    ASSERT_LT(pages, 100u) << "cursor never finished";
  }
  EXPECT_GT(pages, 2u);  // genuinely paginated
  EXPECT_EQ(streamed, store_.query_range(power_, range));
  // Exhausted cursors auto-close: another next is an error, not a crash.
  EXPECT_FALSE(client_.scan_next(cursor.value()).is_ok());
}

TEST_F(ServeServerTest, ScanCloseReleasesTheCursorEarly) {
  auto cursor = client_.scan_open(power_, {0, 10000}, 64);
  ASSERT_TRUE(cursor.is_ok());
  ASSERT_TRUE(client_.scan_next(cursor.value()).is_ok());
  EXPECT_TRUE(client_.scan_close(cursor.value()));
  EXPECT_FALSE(client_.scan_next(cursor.value()).is_ok());
}

TEST_F(ServeServerTest, SubscribeDeliversSnapshotThenDeltasInOrder) {
  auto ack = client_.subscribe("node.power_w@*");
  ASSERT_TRUE(ack.is_ok()) << ack.message();
  ASSERT_EQ(ack.value().matched.size(), 1u);
  EXPECT_EQ(ack.value().matched[0].first, power_);

  // The snapshot must arrive before any delta and carry the latest value.
  auto snap = client_.poll_push(2000);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->type, MsgType::kSnapshot);
  EXPECT_EQ(snap->sub_id, ack.value().sub_id);
  ASSERT_EQ(snap->batch.samples.size(), 1u);
  EXPECT_EQ(snap->batch.samples[0].time, store_.latest(power_)->time);

  // Publish three batches; deltas arrive in publish order, only for the
  // matched series.
  for (int i = 0; i < 3; ++i) {
    core::SampleBatch batch;
    batch.sweep_time = 20000 + i * 10;
    batch.samples.push_back({power_, 20000 + i * 10, 500.0 + i});
    batch.samples.push_back({temp_, 20000 + i * 10, 99.0});  // not matched
    EXPECT_EQ(server_->publish_batch(batch), 1u);
  }
  for (int i = 0; i < 3; ++i) {
    auto delta = client_.poll_push(2000);
    ASSERT_TRUE(delta.has_value()) << "delta " << i;
    EXPECT_EQ(delta->type, MsgType::kDelta);
    EXPECT_EQ(delta->sub_id, ack.value().sub_id);
    ASSERT_EQ(delta->batch.samples.size(), 1u);
    EXPECT_EQ(delta->batch.samples[0].series, power_);
    EXPECT_EQ(delta->batch.samples[0].value, 500.0 + i);
  }

  EXPECT_TRUE(client_.unsubscribe(ack.value().sub_id));
  core::SampleBatch after;
  after.samples.push_back({power_, 30000, 1.0});
  EXPECT_EQ(server_->publish_batch(after), 0u);
}

TEST_F(ServeServerTest, SeriesBornAfterSubscribeStillMatch) {
  auto ack = client_.subscribe("node.#");
  ASSERT_TRUE(ack.is_ok());
  ASSERT_TRUE(client_.poll_push(2000).has_value());  // snapshot
  const auto newborn = registry_.series("node.fan_rpm", node_);
  core::SampleBatch batch;
  batch.samples.push_back({newborn, 40000, 7.0});
  EXPECT_EQ(server_->publish_batch(batch), 1u);
  auto delta = client_.poll_push(2000);
  ASSERT_TRUE(delta.has_value());
  EXPECT_EQ(delta->batch.samples[0].series, newborn);
}

TEST_F(ServeServerTest, AdminSurface) {
  // No set_mode / wal_rotate hooks were provided: kError, not a hang.
  EXPECT_FALSE(client_.set_mode(core::DegradationMode::kShedBulk));
  EXPECT_FALSE(client_.wal_rotate());

  auto conns = client_.list_conns();
  ASSERT_TRUE(conns.is_ok());
  ASSERT_EQ(conns.value().size(), 1u);
  EXPECT_GT(conns.value()[0].requests, 0u);

  ServeClient second;
  ASSERT_TRUE(second.connect(server_->port()));
  ASSERT_TRUE(second.ping());
  conns = client_.list_conns();
  ASSERT_TRUE(conns.is_ok());
  EXPECT_EQ(conns.value().size(), 2u);
}

TEST_F(ServeServerTest, MalformedFrameDropsOnlyThatConnection) {
  ServeClient bystander;
  ASSERT_TRUE(bystander.connect(server_->port()));
  ASSERT_TRUE(bystander.ping());
  // A raw socket sending a header that declares a 16 MiB frame: a protocol
  // violation the server must answer by dropping THAT connection only.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server_->port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::uint32_t huge = 16u << 20;
  std::uint8_t evil[9] = {};
  std::memcpy(evil, &huge, 4);
  ASSERT_EQ(::send(fd, evil, sizeof(evil), 0), 9);
  // The server closes the connection; recv sees EOF (or RST).
  std::uint8_t buf[8];
  for (int spin = 0; spin < 200; ++spin) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
  }
  ::close(fd);
  // Good clients unaffected, violation counted.
  EXPECT_TRUE(client_.ping());
  EXPECT_TRUE(bystander.ping());
  for (int spin = 0; spin < 200 && server_->stats().bad_frames == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(server_->stats().bad_frames, 1u);
}

TEST_F(ServeServerTest, StatsAndObsAgree) {
  ASSERT_TRUE(client_.ping());
  obs::ObsRegistry reg;
  server_->attach_to(reg);
  const auto snap = reg.snapshot();
  const auto stats = server_->stats();
  EXPECT_EQ(snap.counter("serve.requests"), stats.requests);
  EXPECT_EQ(snap.counter("serve.bytes_out"), stats.bytes_out);
  EXPECT_GT(snap.counter("serve.requests"), 0u);
  ASSERT_NE(snap.histogram("serve.request_us"), nullptr);
  EXPECT_EQ(snap.histogram("serve.request_us")->count, stats.requests);
}

}  // namespace
}  // namespace hpcmon::serve
