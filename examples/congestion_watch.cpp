// congestion_watch: SNL-style continuous HSN congestion monitoring
// (Sec. II.9) combined with HLRS aggressor/victim analysis (Sec. II.10).
//
// Samples link counters synchronously every 30s for four hours of mixed
// production, grades machine congestion per sweep, prints the congestion
// timeline with region details for the worst sweep, and closes with the
// runtime-variability classification of the workload.
#include <cstdio>

#include "analysis/congestion.hpp"
#include "analysis/streaming.hpp"
#include "analysis/variability.hpp"
#include "collect/collection.hpp"
#include "collect/samplers.hpp"
#include "sim/cluster.hpp"
#include "store/jobstore.hpp"
#include "store/tsdb.hpp"

using namespace hpcmon;

int main() {
  sim::ClusterParams params;
  params.shape.cabinets = 2;
  params.shape.chassis_per_cabinet = 2;
  params.shape.blades_per_chassis = 6;
  params.shape.nodes_per_blade = 4;  // 96 nodes
  params.fabric_kind = sim::FabricKind::kTorus3D;
  params.placement = sim::PlacementPolicy::kRandom;  // fragmented era
  params.tick = 10 * core::kSecond;
  params.seed = 13;
  sim::Cluster cluster(params);

  store::TimeSeriesStore tsdb;
  store::JobStore jobs;
  cluster.scheduler().set_on_end([&jobs](const sim::JobRecord& rec) {
    store::JobMeta m;
    m.id = rec.id;
    m.app_name = rec.request.profile.name;
    m.nodes = rec.nodes;
    m.start_time = rec.start_time;
    m.end_time = rec.end_time;
    jobs.record_end(m);
  });
  collect::CollectionService collection(cluster);
  collection.add_sampler(std::make_unique<collect::HsnSampler>(cluster),
                         30 * core::kSecond, collect::store_sink(tsdb));

  // Mixed workload with periodic aggressor bursts.
  sim::WorkloadParams w;
  w.mean_interarrival = 40 * core::kSecond;
  w.max_nodes = 24;
  w.mix = {sim::app_network_heavy(), sim::app_compute_bound()};
  cluster.start_workload(w);
  sim::JobRequest blast;
  blast.num_nodes = 48;
  blast.nominal_runtime = 15 * core::kMinute;
  blast.profile = sim::app_aggressor();
  for (int i = 0; i < 4; ++i) {
    cluster.submit_at((40 + 60 * i) * core::kMinute, blast);
  }
  std::printf("4h of production with aggressor bursts at t=40,100,160,220m\n\n");
  cluster.run_for(4 * core::kHour);

  // Congestion timeline: stall rates from counters, one grade per sweep.
  auto& reg = cluster.registry();
  const int n_links = cluster.topology().num_links();
  std::vector<std::vector<core::TimedValue>> counter_series(n_links);
  for (int l = 0; l < n_links; ++l) {
    counter_series[l] = tsdb.query_range(
        reg.series("hsn.link.stalls", cluster.topology().link(l).component),
        {0, cluster.now()});
  }
  std::vector<analysis::RateConverter> rc(n_links);
  std::printf("congestion timeline (one char per sweep: .=none -=low "
              "m=medium H=high)\n  ");
  analysis::CongestionReport worst;
  core::TimePoint worst_at = 0;
  const std::size_t sweeps = counter_series[0].size();
  std::map<analysis::CongestionLevel, int> level_counts;
  for (std::size_t i = 0; i < sweeps; ++i) {
    std::vector<double> stalls(n_links, 0.0);
    for (int l = 0; l < n_links; ++l) {
      if (i < counter_series[l].size()) {
        if (auto r = rc[l].update(counter_series[l][i].time,
                                  counter_series[l][i].value)) {
          stalls[l] = *r / 1e6;
        }
      }
    }
    const auto report = analysis::analyze_congestion(cluster.topology(), stalls);
    ++level_counts[report.level];
    const char glyph[] = {'.', '-', 'm', 'H'};
    std::printf("%c", glyph[static_cast<int>(report.level)]);
    if ((i + 1) % 60 == 0) std::printf("\n  ");
    if (report.max_stall > worst.max_stall) {
      worst = report;
      worst_at = counter_series[0][i].time;
    }
  }
  std::printf("\n\nsweeps by level: none=%d low=%d medium=%d high=%d\n",
              level_counts[analysis::CongestionLevel::kNone],
              level_counts[analysis::CongestionLevel::kLow],
              level_counts[analysis::CongestionLevel::kMedium],
              level_counts[analysis::CongestionLevel::kHigh]);
  std::printf("worst sweep at %s: %zu region(s), largest touches %zu routers "
              "(peak stall %.2f)\n",
              core::format_time(worst_at).c_str(), worst.regions.size(),
              worst.regions.empty() ? 0 : worst.regions[0].routers.size(),
              worst.max_stall);
  if (!worst.regions.empty()) {
    std::printf("  region routers:");
    for (const int r : worst.regions[0].routers) std::printf(" r%d", r);
    std::printf("\n");
  }

  // Who suffered, who caused it (HLRS). Note: the stochastic workload mixes
  // job sizes and nominal runtimes, so CV here reflects workload spread as
  // well as contention — production deployments (and bench/
  // sec2_aggressor_victim) compare repeated fixed-size runs instead.
  analysis::VariabilityAnalyzer analyzer;
  std::printf("\nruntime variability (victim threshold CV > 0.10):\n");
  for (const auto& c : analyzer.classify(jobs)) {
    std::printf("  %-16s runs=%-3zu cv=%.3f %s\n", c.app_name.c_str(), c.runs,
                c.cv, c.is_victim ? "<- victim" : "");
  }
  std::printf("aggressor suspects:\n");
  for (const auto& s : analyzer.suspects(jobs)) {
    std::printf("  %-16s overlapped %zu victim slow-runs\n", s.app_name.c_str(),
                s.overlaps);
  }
  return 0;
}
