// serve_client: a consumer talking to the monitoring stack over TCP.
//
// The paper's recommendation is continuous availability of monitoring data
// to consumers — dashboards, per-job reports, site tooling — without a
// privileged seat inside the collector process. This example deploys a
// stack with the serving tier enabled (`serve_port = 0` binds an ephemeral
// loopback port) and then acts as such a consumer: point queries and
// aggregates answered byte-identically to the in-process store, a live
// subscription fed snapshot-then-deltas from real collection sweeps, and
// the admin surface (status, degradation override, connection listing).
#include <cstdio>

#include "serve/client.hpp"
#include "stack/stack.hpp"

using namespace hpcmon;

int main() {
  // -- A running site: simulator + full stack, front door enabled ----------
  sim::ClusterParams params;
  params.shape.cabinets = 1;
  params.shape.chassis_per_cabinet = 2;
  params.shape.blades_per_chassis = 4;
  params.shape.nodes_per_blade = 4;  // 32 nodes
  params.tick = 5 * core::kSecond;
  params.seed = 1234;
  sim::Cluster cluster(params);

  const auto config = core::Config::parse(R"(
      sample_interval_s = 30
      serve_port = 0
      serve_writer_threads = 2
  )");
  stack::MonitoringStack stack(cluster, config.value());
  if (stack.serve() == nullptr || !stack.serve()->running()) {
    std::fprintf(stderr, "serving tier failed to start\n");
    return 1;
  }
  cluster.run_for(30 * core::kMinute);
  std::printf("stack serving on 127.0.0.1:%u\n\n", stack.serve()->port());

  // -- The consumer: an ordinary TCP client --------------------------------
  serve::ServeClient client;
  if (!client.connect(stack.serve()->port())) {
    std::fprintf(stderr, "connect failed: %s\n", client.error().c_str());
    return 1;
  }

  // Point query: the CPU utilization history of node 0.
  const auto series =
      cluster.registry().series("node.cpu_util", cluster.topology().node(0));
  auto points = client.query_range(series, {0, core::kDay});
  if (!points.is_ok()) {
    std::fprintf(stderr, "query failed: %s\n", points.message().c_str());
    return 1;
  }
  std::printf("%s: %zu points over 30 min\n",
              cluster.registry().series_name(series).c_str(),
              points.value().size());

  // Aggregate: fleet-facing dashboards ask for maxima, not raw streams.
  auto peak = client.aggregate(series, {0, core::kDay}, store::Agg::kMax);
  if (peak.is_ok() && peak.value().has_value()) {
    std::printf("peak cpu_util: %.2f\n", *peak.value());
  }

  // Live subscription: snapshot first, then deltas from every sweep.
  auto ack = client.subscribe("node.cpu_util@*");
  if (!ack.is_ok()) {
    std::fprintf(stderr, "subscribe failed: %s\n", ack.message().c_str());
    return 1;
  }
  std::printf("subscribed: %zu series matched\n", ack.value().matched.size());
  auto snapshot = client.poll_push(2000);
  if (snapshot.has_value()) {
    std::printf("snapshot: %zu current values\n",
                snapshot->batch.samples.size());
  }
  cluster.run_for(2 * core::kMinute);  // two more sweeps land...
  std::size_t delta_samples = 0;
  while (auto push = client.poll_push(250)) {
    if (push->type == serve::MsgType::kDelta) {
      delta_samples += push->batch.samples.size();
    }
  }
  std::printf("live deltas: %zu samples pushed\n", delta_samples);

  // Admin surface: what an operator script sees.
  auto status = client.status();
  if (status.is_ok()) {
    std::printf("\nstatus: %s\n", status.value().c_str());
  }
  auto conns = client.list_conns();
  if (conns.is_ok()) {
    std::printf("connections: %zu\n", conns.value().size());
  }
  return 0;
}
