// site_operations: a shift in the life of an operations team.
//
// The full Table I loop on one machine: synchronized collection, rule-driven
// alerting with dedup/escalation, automated response (quarantine + repair),
// health gating, queue backlog watching, and an end-of-shift report with
// dashboards. Faults arrive the way they do in production — overlapping and
// unannounced.
#include <cstdio>

#include "analysis/backlog.hpp"
#include "analysis/rules.hpp"
#include "collect/collection.hpp"
#include "collect/health.hpp"
#include "collect/samplers.hpp"
#include "response/actions.hpp"
#include "response/alerts.hpp"
#include "response/gate.hpp"
#include "sim/cluster.hpp"
#include "store/logstore.hpp"
#include "store/tsdb.hpp"
#include "transport/codec.hpp"
#include "transport/event_router.hpp"
#include "viz/chart.hpp"
#include "viz/query.hpp"

using namespace hpcmon;

int main() {
  // A GPU-partition machine (CSCS-style).
  sim::ClusterParams params;
  params.shape.cabinets = 2;
  params.shape.chassis_per_cabinet = 3;
  params.shape.blades_per_chassis = 4;
  params.shape.nodes_per_blade = 4;  // 96 nodes
  params.shape.gpu_node_fraction = 0.5;
  params.fabric_kind = sim::FabricKind::kDragonfly;
  params.tick = 5 * core::kSecond;
  params.seed = 31;
  sim::Cluster cluster(params);

  // Monitoring plumbing.
  transport::EventRouter router;
  store::TimeSeriesStore tsdb;
  store::LogStore logs;
  analysis::RuleEngine rules;
  for (auto& r : analysis::standard_platform_rules()) rules.add_rule(std::move(r));

  response::AlertManager alerts;
  response::ActionDispatcher actions;
  std::vector<response::Alert> pages;  // what would hit the on-call phone
  alerts.add_sink([&](const response::Alert& a) {
    actions.dispatch(a);
    if (a.severity >= response::AlertSeverity::kCritical) pages.push_back(a);
  });
  actions.bind("hw_critical", response::AlertSeverity::kWarning, "quarantine",
               response::make_quarantine_action(cluster, 30 * core::kMinute));

  router.subscribe(transport::FrameType::kSamples,
                   [&](const transport::Frame& f) {
                     if (auto b = transport::decode_samples(f)) {
                       tsdb.append_batch(b.value().samples);
                     }
                   });
  router.subscribe(transport::FrameType::kLogs, [&](const transport::Frame& f) {
    if (auto evs = transport::decode_logs(f)) {
      for (const auto& e : evs.value()) {
        for (const auto& m : rules.process(e)) {
          alerts.raise({m.time,
                        m.rule_name == "hw_critical"
                            ? response::AlertSeverity::kCritical
                            : response::AlertSeverity::kWarning,
                        m.rule_name, m.component, m.detail});
        }
      }
      logs.append_batch(std::move(evs).take());
    }
  });

  collect::CollectionService collection(cluster);
  for (auto& s : collect::make_all_samplers(cluster)) {
    collection.add_sampler(std::move(s), core::kMinute,
                           collect::router_sample_sink(router));
  }
  collection.add_log_collector(15 * core::kSecond,
                               collect::router_log_sink(router));
  // LANL-style health battery every 10 minutes.
  collect::HealthConfig hc;
  collection.add_sampler(
      std::make_unique<collect::HealthCheckSuite>(cluster, hc),
      10 * core::kMinute, collect::store_sink(tsdb));
  // CSCS-style pre/post job gating.
  response::HealthGate gate(cluster, 30 * core::kMinute);
  gate.attach(true, true);

  // The shift: 8 hours of production with overlapping incidents.
  sim::WorkloadParams w;
  w.mean_interarrival = 30 * core::kSecond;
  w.max_nodes = 24;
  w.gpu_job_fraction = 0.3;
  cluster.start_workload(w);
  cluster.inject_gpu_failure(core::kHour, 5);
  cluster.inject_mem_leak(2 * core::kHour, 40, 40.0, 3 * core::kHour);
  cluster.inject_link_down(3 * core::kHour, 2, 20 * core::kMinute);
  cluster.inject_mds_slowdown(5 * core::kHour, 0, 4.0, core::kHour);
  cluster.inject_log_storm(6 * core::kHour, 5 * core::kMinute, 30,
                           "mce: correctable memory error");
  std::printf("running an 8-hour shift with 5 scheduled incidents...\n\n");
  cluster.run_for(8 * core::kHour);

  // ---- End-of-shift report ----------------------------------------------
  auto& reg = cluster.registry();
  const core::TimeRange shift{0, cluster.now()};

  std::printf("==== shift report ====\n\n");
  std::printf("jobs completed: %zu, queue depth now: %d\n",
              cluster.scheduler().completed_jobs().size(),
              cluster.scheduler().queue_depth());
  const auto hist = logs.severity_histogram();
  std::printf("log events: %zu total (crit %zu, err %zu, warn %zu)\n\n",
              logs.size(), hist[2], hist[3], hist[4]);

  std::printf("pages sent to on-call: %zu\n", pages.size());
  for (const auto& a : pages) {
    std::printf("  [%s] %s: %s\n", core::format_time(a.time).c_str(),
                a.key.c_str(), a.message.c_str());
  }
  std::printf("\nautomated actions taken: %zu\n", actions.log().size());
  for (const auto& rec : actions.log()) {
    std::printf("  [%s] %s on %s\n", core::format_time(rec.time).c_str(),
                rec.action.c_str(),
                rec.component == core::kNoComponent
                    ? "-"
                    : reg.component(rec.component).name.c_str());
  }
  std::printf("\nhealth gate: %llu pre-checks, %llu quarantines, %llu repairs\n",
              static_cast<unsigned long long>(gate.stats().pre_checks),
              static_cast<unsigned long long>(gate.stats().pre_failures),
              static_cast<unsigned long long>(gate.stats().repairs));

  // Queue backlog review (NERSC-style).
  const auto depth = tsdb.query_range(
      reg.series("sched.queue_depth", cluster.topology().system()), shift);
  const auto backlog_events = analysis::detect_backlog_events(depth);
  std::printf("\nqueue backlog events: %zu\n", backlog_events.size());
  for (const auto& e : backlog_events) {
    std::printf("  [%s] %s at rate %+.1f jobs/min (depth %.0f)\n",
                core::format_time(e.time).c_str(),
                std::string(analysis::to_string(e.signal)).c_str(),
                e.rate_jobs_per_min, e.depth);
  }

  // Dashboard panel: failing-node count over the shift.
  viz::ChartSeries failing;
  failing.label = "nodes failing health checks";
  failing.points = tsdb.query_range(
      reg.series("health.failing_nodes", cluster.topology().system()), shift);
  viz::ChartOptions opt;
  opt.title = "health over the shift";
  opt.height = 8;
  std::printf("\n%s\n", viz::render_ascii({failing}, opt).c_str());
  return 0;
}
