// Quickstart: monitor a simulated cluster end to end in ~80 lines of user
// code.
//
// Demonstrates the core loop of the library:
//   1. build a simulated machine (the platform a real deployment would be),
//   2. attach synchronized samplers and a log collector,
//   3. route telemetry over the documented binary transport — here across a
//      real thread boundary through a bounded Channel, the way a production
//      collector and store would be separate processes,
//   4. store, query, and render.
#include <cstdio>
#include <thread>

#include "collect/collection.hpp"
#include "collect/samplers.hpp"
#include "sim/cluster.hpp"
#include "store/logstore.hpp"
#include "store/tsdb.hpp"
#include "transport/channel.hpp"
#include "transport/codec.hpp"
#include "viz/chart.hpp"
#include "viz/query.hpp"

using namespace hpcmon;

int main() {
  // 1. A small Cray-like machine: 2 cabinets, dragonfly fabric, 64 nodes.
  sim::ClusterParams params;
  params.shape.cabinets = 2;
  params.shape.chassis_per_cabinet = 2;
  params.shape.blades_per_chassis = 4;
  params.shape.nodes_per_blade = 4;
  params.fabric_kind = sim::FabricKind::kDragonfly;
  params.seed = 7;
  sim::Cluster cluster(params);

  // 2. Stores live on the "server side" of a bounded channel; a consumer
  //    thread drains frames while the simulation produces them.
  store::TimeSeriesStore tsdb;
  store::LogStore logs;
  transport::Channel<transport::Frame> channel(256);
  std::thread consumer([&] {
    while (auto frame = channel.pop()) {
      if (frame->type == transport::FrameType::kSamples) {
        if (auto batch = transport::decode_samples(*frame)) {
          tsdb.append_batch(batch.value().samples);
        }
      } else if (auto events = transport::decode_logs(*frame)) {
        logs.append_batch(std::move(events).take());
      }
    }
  });

  // 3. Synchronized collection every 30s, logs drained every 10s.
  collect::CollectionService collection(cluster);
  for (auto& sampler : collect::make_all_samplers(cluster)) {
    collection.add_sampler(std::move(sampler), 30 * core::kSecond,
                           [&channel](core::SampleBatch&& batch) {
                             channel.push(transport::encode_samples(batch));
                           });
  }
  collection.add_log_collector(10 * core::kSecond,
                               [&channel](std::vector<core::LogEvent>&& evs) {
                                 channel.push(transport::encode_logs(evs));
                               });

  // 4. Run 30 minutes of simulated production: a job stream plus one fault.
  sim::WorkloadParams workload;
  workload.mean_interarrival = 45 * core::kSecond;
  workload.max_nodes = 16;
  cluster.start_workload(workload);
  cluster.inject_ost_slowdown(15 * core::kMinute, /*fs=*/0, /*ost=*/2,
                              /*factor=*/6.0, 10 * core::kMinute);
  cluster.run_for(30 * core::kMinute);
  channel.close();
  consumer.join();

  // 5. Query and render.
  auto& reg = cluster.registry();
  const core::TimeRange all{0, cluster.now()};
  viz::ChartSeries power;
  power.label = "system power (W)";
  power.points = tsdb.query_range(
      reg.series("power.system_w", cluster.topology().system()), all);
  viz::ChartSeries ost;
  ost.label = "ost2 latency (ms)";
  ost.points = tsdb.query_range(
      reg.series("fs.ost.latency_ms", cluster.topology().ost(0, 2)), all);
  viz::ChartOptions opt;
  opt.title = "quickstart: 30 minutes of production";
  std::printf("%s\n", viz::render_ascii({power, ost}, opt).c_str());

  std::printf("stored %zu points across %zu series; %zu log events\n",
              tsdb.stats().points, tsdb.stats().series, logs.size());
  store::LogQuery q;
  q.max_severity = core::Severity::kError;
  std::printf("error-or-worse log events: %zu (try logs.query to explore)\n",
              logs.count(q));
  std::printf("\nmetric dictionary excerpt:\n");
  const auto dict = reg.describe_all();
  std::printf("%.*s...\n", 400, dict.c_str());
  return 0;
}
