// power_center: KAUST-style power monitoring (Sec. II.7, Fig 3) plus the
// paper's envisioned power-budget response (Sec. III-C).
//
// Builds a power-profile library from known-good runs, scores live runs
// against it (flagging the one with a load-imbalance bug), and runs a
// budget watcher that recommends exportable headroom "between platforms and
// even between other site resources".
#include <cstdio>

#include "analysis/power_profile.hpp"
#include "collect/collection.hpp"
#include "collect/samplers.hpp"
#include "response/power_budget.hpp"
#include "sim/cluster.hpp"
#include "store/jobstore.hpp"
#include "store/tsdb.hpp"
#include "viz/query.hpp"

using namespace hpcmon;

namespace {

sim::ClusterParams machine() {
  sim::ClusterParams p;
  p.shape.cabinets = 4;
  p.shape.chassis_per_cabinet = 2;
  p.shape.blades_per_chassis = 6;
  p.shape.nodes_per_blade = 4;  // 192 nodes
  p.fabric_kind = sim::FabricKind::kDragonfly;
  p.tick = 5 * core::kSecond;
  p.seed = 55;
  return p;
}

// Run one full-machine job of `profile` and return its power trace.
std::vector<core::TimedValue> profile_run(const sim::AppProfile& profile,
                                          std::uint64_t seed) {
  auto params = machine();
  params.seed = seed;
  sim::Cluster cluster(params);
  store::TimeSeriesStore tsdb;
  store::JobStore jobs;
  cluster.scheduler().set_on_end([&jobs](const sim::JobRecord& rec) {
    store::JobMeta m;
    m.id = rec.id;
    m.app_name = rec.request.profile.name;
    m.start_time = rec.start_time;
    m.end_time = rec.end_time;
    jobs.record_end(m);
  });
  collect::CollectionService collection(cluster);
  collection.add_sampler(std::make_unique<collect::PowerSampler>(cluster),
                         30 * core::kSecond, collect::store_sink(tsdb));
  sim::JobRequest req;
  req.num_nodes = cluster.topology().num_nodes();
  req.nominal_runtime = 30 * core::kMinute;
  req.profile = profile;
  cluster.submit_at(core::kMinute, req);
  cluster.run_for(50 * core::kMinute);

  // Extract the job-window power trace.
  const auto run = jobs.jobs_overlapping({0, cluster.now()});
  if (run.empty()) return {};
  return tsdb.query_range(
      cluster.registry().series("power.system_w", cluster.topology().system()),
      {run[0].start_time, run[0].end_time});
}

}  // namespace

int main() {
  std::printf("power center: profiling known-good applications...\n");
  // Reference library from clean runs (KAUST: "comparison against power
  // profiles of known good application runs").
  analysis::PowerProfileLibrary library;
  const auto good_compute = profile_run(sim::app_compute_bound(), 100);
  const auto good_ckpt = profile_run(sim::app_io_checkpoint(), 101);
  library.set_reference(
      analysis::PowerProfile::from_trace("compute_bound", good_compute));
  library.set_reference(
      analysis::PowerProfile::from_trace("io_checkpoint", good_ckpt));
  std::printf("library holds %zu reference profiles\n\n", library.size());

  // Live runs: a healthy repeat, and a run that developed the imbalance bug.
  const auto live_good = profile_run(sim::app_compute_bound(), 200);
  auto buggy_profile = sim::app_imbalanced();
  buggy_profile.name = "compute_bound";  // same app, buggy input deck
  const auto live_bad = profile_run(buggy_profile, 201);

  const auto score_good = library.score_run("compute_bound", live_good);
  const auto score_bad = library.score_run("compute_bound", live_bad);
  std::printf("live run scores vs reference (0 = identical shape):\n");
  std::printf("  healthy rerun:     %.3f %s\n", score_good.value_or(-1),
              score_good.value_or(1) < 0.15 ? "(normal)" : "(INVESTIGATE)");
  std::printf("  imbalanced run:    %.3f %s\n\n", score_bad.value_or(-1),
              score_bad.value_or(0) < 0.15 ? "(normal)" : "(INVESTIGATE)");

  // Budget watcher over a mixed production stretch.
  auto params = machine();
  sim::Cluster cluster(params);
  store::TimeSeriesStore tsdb;
  collect::CollectionService collection(cluster);
  collection.add_sampler(std::make_unique<collect::PowerSampler>(cluster),
                         30 * core::kSecond, collect::store_sink(tsdb));
  sim::WorkloadParams w;
  w.mean_interarrival = 20 * core::kSecond;
  w.max_nodes = 48;
  cluster.start_workload(w);
  cluster.run_for(2 * core::kHour);

  response::AlertManager alerts;
  response::PowerBudgetParams bp;
  bp.budget_w = 70000.0;
  response::PowerBudgetWatcher watcher(bp, alerts);
  const auto draws = tsdb.query_range(
      cluster.registry().series("power.system_w", cluster.topology().system()),
      {0, cluster.now()});
  double min_export = 1e18;
  double max_export = 0;
  for (const auto& p : draws) {
    const auto rec = watcher.update(p.time, p.value);
    min_export = std::min(min_export, rec.exportable_w);
    max_export = std::max(max_export, rec.exportable_w);
  }
  std::printf("budget watch over 2h (budget %.0f kW):\n", bp.budget_w / 1000);
  std::printf("  exportable headroom ranged %.1f .. %.1f kW\n",
              min_export / 1000, max_export / 1000);
  std::printf("  over-budget samples: %llu, alerts active: %zu\n",
              static_cast<unsigned long long>(watcher.over_budget_samples()),
              alerts.active().size());
  return 0;
}
