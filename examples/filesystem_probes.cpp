// filesystem_probes: NCSA-style targeted filesystem monitoring (Sec. II.2).
//
// "NCSA staff have additionally developed a set of probes that execute on
// one minute intervals and measure file I/O and metadata action response
// latencies. These target each independent filesystem component and run from
// a distributed set of clients."
//
// This example runs per-target probes from distributed client nodes on two
// filesystems, degrades one OST mid-run, and shows how per-target probing
// isolates the sick component while the aggregate view shows user impact.
#include <cstdio>

#include "analysis/changepoint.hpp"
#include "collect/collection.hpp"
#include "collect/probes.hpp"
#include "sim/cluster.hpp"
#include "store/tsdb.hpp"
#include "viz/chart.hpp"
#include "core/strings.hpp"
#include "viz/export.hpp"

using namespace hpcmon;

int main() {
  sim::ClusterParams params;
  params.shape.cabinets = 2;
  params.shape.chassis_per_cabinet = 2;
  params.shape.blades_per_chassis = 4;
  params.shape.nodes_per_blade = 4;
  params.shape.filesystems = 2;   // home + scratch
  params.shape.osts_per_filesystem = 6;
  params.tick = 10 * core::kSecond;
  params.seed = 17;
  sim::Cluster cluster(params);

  store::TimeSeriesStore tsdb;
  collect::CollectionService collection(cluster);
  // Probes launch from a distributed set of clients, once per minute.
  collect::ProbeConfig pc;
  pc.probe_nodes = {0, 17, 34, 51};
  collection.add_sampler(
      std::make_unique<collect::ProbeSuite>(cluster, pc, core::Rng(2)),
      core::kMinute, collect::store_sink(tsdb));

  // Production I/O load plus the incident: OST 3 of scratch (fs1) degrades.
  sim::WorkloadParams w;
  w.mean_interarrival = core::kMinute;
  w.max_nodes = 16;
  w.mix = {sim::app_io_checkpoint(), sim::app_metadata_heavy(),
           sim::app_compute_bound()};
  cluster.start_workload(w);
  cluster.inject_ost_slowdown(2 * core::kHour, /*fs=*/1, /*ost=*/3,
                              /*factor=*/8.0, 90 * core::kMinute);
  std::printf("probing 2 filesystems x (6 OSTs + MDS) every minute for 5h;\n");
  std::printf("scratch OST3 degrades 8x at t=2h for 90 minutes...\n\n");
  cluster.run_for(5 * core::kHour);

  auto& reg = cluster.registry();
  const core::TimeRange all{0, cluster.now()};

  // Per-target view: every OST of the scratch filesystem.
  std::vector<viz::ChartSeries> per_target;
  for (int o = 0; o < cluster.topology().osts_per_fs(); ++o) {
    viz::ChartSeries s;
    s.label = reg.component(cluster.topology().ost(1, o)).name;
    s.points = tsdb.query_range(
        reg.series("probe.fs_read_ms", cluster.topology().ost(1, o)), all);
    per_target.push_back(std::move(s));
  }
  viz::ChartOptions opt;
  opt.title = "scratch per-OST read-probe latency (ms)";
  opt.height = 12;
  std::printf("%s\n", viz::render_ascii(per_target, opt).c_str());

  // Which target is sick? Onset detection per target.
  std::printf("onset detection per scratch target:\n");
  int sick_targets = 0;
  for (int o = 0; o < cluster.topology().osts_per_fs(); ++o) {
    const auto series = tsdb.query_range(
        reg.series("probe.fs_read_ms", cluster.topology().ost(1, o)), all);
    const auto onsets = analysis::detect_onsets(series);
    if (!onsets.empty()) {
      ++sick_targets;
      std::printf("  %s: %zu onset(s), first at %s (%.1f -> %.1f ms)\n",
                  reg.component(cluster.topology().ost(1, o)).name.c_str(),
                  onsets.size(), core::format_time(onsets[0].time).c_str(),
                  onsets[0].before_mean, onsets[0].after_mean);
    }
  }
  std::printf("  (%d of %d targets show onsets — the probe isolated the "
              "component)\n\n",
              sick_targets, cluster.topology().osts_per_fs());

  // MDS view across both filesystems: metadata health.
  std::vector<viz::ChartSeries> mds;
  for (int f = 0; f < cluster.topology().num_filesystems(); ++f) {
    viz::ChartSeries s;
    s.label = reg.component(cluster.topology().mds(f)).name;
    s.points = tsdb.query_range(
        reg.series("probe.fs_md_ms", cluster.topology().mds(f)), all);
    mds.push_back(std::move(s));
  }
  opt.title = "metadata-probe latency per filesystem (ms)";
  opt.height = 8;
  std::printf("%s\n", viz::render_ascii(mds, opt).c_str());

  // Raw data download for the sick target (user-facing, Fig 5 style).
  const auto csv = viz::export_csv({per_target[3]});
  std::printf("raw probe data for the degraded target (CSV, first lines):\n");
  int n = 0;
  for (const auto line : core::split(csv, '\n')) {
    if (n++ == 6) break;
    std::printf("  %.*s\n", static_cast<int>(line.size()), line.data());
  }
  return 0;
}
