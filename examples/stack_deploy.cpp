// stack_deploy: the whole monitoring pipeline from one config file.
//
// What a site's deployment looks like when the vendor ships Table I: a
// version-controlled config assembles collection, transport, tiered storage,
// rules, alerting, automated response, and job gating in one call — and the
// operator console is a status line plus architecture-context heatmaps.
#include <cstdio>

#include "stack/stack.hpp"
#include "viz/heatmap.hpp"

using namespace hpcmon;

int main() {
  // The deployment description a site would keep in git.
  const char* kDeployConfig = R"(
      # collection
      sample_interval_s = 30
      log_interval_s    = 10
      probe_interval_s  = 300
      health_interval_s = 300
      # storage tiers
      hot_window_s  = 3600
      warm_bucket_s = 300
      chunk_points  = 64
      # analysis & response
      rules   = true
      novelty = true
      novelty_training_s = 1800
      quarantine_on_hw_critical = true
      gate_pre  = true
      gate_post = true
      gate_repair_s = 900
  )";
  const auto config = core::Config::parse(kDeployConfig);
  if (!config.is_ok()) {
    std::fprintf(stderr, "config error: %s\n", config.message().c_str());
    return 1;
  }
  std::printf("deploying with configuration:\n%s\n",
              config.value().dump().c_str());

  sim::ClusterParams params;
  params.shape.cabinets = 2;
  params.shape.chassis_per_cabinet = 3;
  params.shape.blades_per_chassis = 6;
  params.shape.nodes_per_blade = 4;  // 144 nodes
  params.shape.gpu_node_fraction = 0.5;
  params.fabric_kind = sim::FabricKind::kDragonfly;
  params.tick = 5 * core::kSecond;
  params.seed = 2718;
  sim::Cluster cluster(params);
  stack::MonitoringStack stack(cluster, config.value());

  sim::WorkloadParams w;
  w.mean_interarrival = 30 * core::kSecond;
  w.max_nodes = 32;
  cluster.start_workload(w);
  cluster.inject_gpu_failure(30 * core::kMinute, 7);
  cluster.inject_mem_leak(core::kHour, 50, 60.0, core::kHour);

  for (int hour = 1; hour <= 3; ++hour) {
    cluster.run_for(core::kHour);
    std::printf("[hour %d] %s\n", hour, stack.status().c_str());
  }
  std::printf("\n");

  // Operator console: the machine as it stands on the floor.
  viz::HeatmapOptions opt;
  opt.title = "node cpu utilization (physical layout)";
  opt.scale_min = 0.0;
  opt.scale_max = 1.0;
  std::printf("%s\n",
              viz::machine_heatmap(
                  cluster.topology(),
                  [&](int node) { return cluster.node_state(node).cpu_util; },
                  opt)
                  .c_str());
  opt.title = "free memory GiB (watch the leaking node dim out)";
  opt.scale_min = 0.0;
  opt.scale_max = cluster.node_params().mem_total_gb;
  std::printf("%s\n",
              viz::machine_heatmap(
                  cluster.topology(),
                  [&](int node) { return cluster.node_mem_free_gb(node); },
                  opt)
                  .c_str());

  std::printf("alerts active:\n");
  for (const auto& a : stack.alerts().active()) {
    std::printf("  [%s] %-18s %s\n",
                std::string(response::to_string(a.severity)).c_str(),
                a.key.c_str(), a.message.c_str());
  }
  std::printf("novelty reports: %zu\n", stack.novelty_reports().size());
  for (const auto& n : stack.novelty_reports()) {
    std::printf("  new signature: %s\n", n.tmpl.c_str());
  }
  if (const auto* gs = stack.gate_stats()) {
    std::printf("gate: %llu checks, %llu quarantines, %llu repairs\n",
                static_cast<unsigned long long>(gs->pre_checks + gs->post_checks),
                static_cast<unsigned long long>(gs->pre_failures +
                                                gs->post_failures),
                static_cast<unsigned long long>(gs->repairs));
  }
  return 0;
}
