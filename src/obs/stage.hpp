// StageTimer: per-stage latency distributions for a batch's trip through the
// pipeline.
//
// The paper (Table I) demands that the monitoring system's own transport
// impact "be well-documented"; the stage map makes that one histogram per
// pipeline stage, all registered in the shared ObsRegistry and exported as
// hpcmon.self.stage.* p50/p95/p99 series:
//
//   sampler_sweep    one sampler's sweep callback (collect tier)
//   queue_wait       enqueue on a shard channel -> worker pop (ingest tier)
//   shard_worker     worker pop -> append completed, incl. coalescing
//   store_append     the store append_batch call inside the worker
//   query_summary    read answered from seal-time summaries alone
//   query_cursor     read that had to stream-decode boundary chunks
//   query_cache      materializing read served entirely from the decode cache
//
// Stage times are REAL (steady_clock) durations in microseconds: the
// library's telemetry runs on the simulated timeline, but the ingest and
// query tiers are real threads doing real work. record() is wait-free;
// Scoped is an RAII convenience for timing a block.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string_view>

#include "obs/registry.hpp"

namespace hpcmon::obs {

enum class Stage : std::uint8_t {
  kSamplerSweep = 0,
  kQueueWait,
  kShardWorker,
  kStoreAppend,
  kQuerySummary,
  kQueryCursor,
  kQueryCache,
};
inline constexpr std::size_t kStageCount = 7;

std::string_view to_string(Stage s);

class StageTimer {
 public:
  StageTimer() = default;

  /// Catalog every stage histogram as "stage.<name>_us" in `registry`.
  void attach_to(ObsRegistry& registry) const;

  void record(Stage s, std::uint64_t us) {
    hist_[static_cast<std::size_t>(s)].record(us);
  }

  const Histogram& histogram(Stage s) const {
    return hist_[static_cast<std::size_t>(s)];
  }

  /// RAII span: times construction -> destruction into one stage. A null
  /// timer is allowed (the span is then free of atomics entirely).
  class Scoped {
   public:
    Scoped(StageTimer* timer, Stage stage) : timer_(timer), stage_(stage) {
      if (timer_ != nullptr) t0_ = std::chrono::steady_clock::now();
    }
    Scoped(const Scoped&) = delete;
    Scoped& operator=(const Scoped&) = delete;
    ~Scoped() {
      if (timer_ == nullptr) return;
      timer_->record(stage_, static_cast<std::uint64_t>(
                                 std::chrono::duration_cast<
                                     std::chrono::microseconds>(
                                     std::chrono::steady_clock::now() - t0_)
                                     .count()));
    }
    /// Redirect the pending record to a different stage (e.g. a query that
    /// discovers mid-flight whether it was summary- or cursor-answered).
    void set_stage(Stage stage) { stage_ = stage; }

   private:
    StageTimer* timer_;
    Stage stage_;
    std::chrono::steady_clock::time_point t0_{};
  };

 private:
  std::array<Histogram, kStageCount> hist_;
};

}  // namespace hpcmon::obs
