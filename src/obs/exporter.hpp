// ObsExporter: the single export path for self-observability.
//
// Replaces the per-tier to_samples()/to_string() plumbing (IngestMetrics,
// resilience_samples, DegradationController::to_samples, per-tier status()
// string assembly) with two renderings of one ObsSnapshot:
//
//   to_samples()  re-ingests every instrument as an "hpcmon.self.<name>"
//                 series on the simulated timeline, registered with the
//                 instrument's declared priority (critical by default —
//                 the monitor's vitals must survive the storms they report
//                 on). Counters export cumulative values (is_counter),
//                 gauges export instantaneous readings, histograms export
//                 _p50/_p95/_p99 latency gauges plus a _count counter.
//
//   report_line() one-line operator summary (name=value per instrument;
//                 empty histograms elided) for MonitoringStack::status().
//   report()      multi-line rendering grouped by tier prefix, with a
//                 per-stage latency table for histograms.
//
// The paper's §III-IV lesson is that analyses must be runnable "at a variety
// of locations within the monitoring infrastructure": because snapshots
// re-enter as ordinary series, every dashboard, detector, and retention tier
// works on the monitor's own vitals unchanged.
#pragma once

#include <string>
#include <vector>

#include "core/registry.hpp"
#include "core/sample.hpp"
#include "core/time.hpp"
#include "obs/registry.hpp"

namespace hpcmon::obs {

class ObsExporter {
 public:
  explicit ObsExporter(std::string prefix = "hpcmon.self.")
      : prefix_(std::move(prefix)) {}

  /// Render `snap` as samples at simulated time `now`, interning
  /// "<prefix><instrument>" metrics on `component`.
  std::vector<core::Sample> to_samples(const ObsSnapshot& snap,
                                       core::MetricRegistry& registry,
                                       core::ComponentId component,
                                       core::TimePoint now) const;

  /// One-line "k=v k=v ..." summary of every instrument.
  std::string report_line(const ObsSnapshot& snap) const;

  /// Multi-line report grouped by tier prefix; histograms render as a
  /// p50/p95/p99 table.
  std::string report(const ObsSnapshot& snap) const;

  const std::string& prefix() const { return prefix_; }

 private:
  std::string prefix_;
};

}  // namespace hpcmon::obs
