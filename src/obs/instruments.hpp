// Lock-free self-observability instruments: Counter, Gauge, Histogram.
//
// The paper's §III-IV complaint is fragmentation — every site (and, until
// this subsystem, every hpcmon tier) grew a bespoke metrics struct with its
// own snapshot, merge, and re-ingest path. hpcmon::obs is the single
// instrument layer all tiers register with: relaxed-atomic counters and
// gauges for O(1) hot-path updates, a fixed log-bucketed histogram with
// mergeable snapshots and quantile estimation, and one export path
// (exporter.hpp) that turns a registry snapshot into hpcmon.self.* series
// and the operator report.
//
// Instruments are standalone values — a tier holds them as members and the
// owner attaches them to an ObsRegistry (registry.hpp) under a stable name.
// Several instruments attached under one name (per-shard stores, per-sampler
// supervisors) merge at snapshot time: counters sum, gauges combine per
// their declared aggregation, histograms add bucket-wise.
//
// The noop namespace mirrors the API with empty inline bodies so hot paths
// can be template-instantiated with instruments compiled out entirely
// (bench/ablation_obs_overhead measures the difference).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <vector>

namespace hpcmon::obs {

/// Monotonic event count. All operations are relaxed atomics: self-telemetry
/// must never order (or slow) the data it observes.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous reading (queue depth, fill fraction, mode). set() overwrites;
/// update_max() keeps a high-water mark.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void update_max(double v) {
    double seen = v_.load(std::memory_order_relaxed);
    while (seen < v &&
           !v_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Point-in-time histogram contents; plain values, mergeable, and able to
/// estimate quantiles. merge() is associative and commutative (bucket-wise
/// sums plus a max), so snapshots from shards/replicas combine in any order.
struct HistogramSnapshot {
  std::vector<std::uint64_t> buckets;  // trimmed at the last nonzero bucket
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;

  void merge(const HistogramSnapshot& o);
  /// Estimated value at quantile q in [0,1] (bucket midpoint; relative error
  /// bounded by the sub-bucket resolution, ~3%). 0 when empty.
  double quantile(double q) const;
  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Fixed log-linear bucketed histogram over non-negative integer values
/// (typically microseconds or sample counts). Values below 2^kSubBits get
/// exact unit buckets; above, each power-of-two octave is split into
/// 2^kSubBits sub-buckets, bounding relative quantile error at
/// 2^-(kSubBits+1) ≈ 3.1%. record() is wait-free (one relaxed fetch_add per
/// atomic touched); snapshots are consistent enough for telemetry (each
/// cell individually atomic).
class Histogram {
 public:
  static constexpr std::uint32_t kSubBits = 4;
  static constexpr std::uint32_t kSub = 1u << kSubBits;  // 16
  static constexpr std::size_t kBuckets = kSub + (64 - kSubBits) * kSub;

  void record(std::uint64_t v) {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (seen < v &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  HistogramSnapshot snapshot() const;

  /// Bucket index for a value (exposed for tests).
  static std::size_t bucket_of(std::uint64_t v) {
    if (v < kSub) return static_cast<std::size_t>(v);
    const auto msb = static_cast<std::uint32_t>(63 - std::countl_zero(v));
    const auto sub =
        static_cast<std::uint32_t>(v >> (msb - kSubBits)) & (kSub - 1);
    return kSub + static_cast<std::size_t>(msb - kSubBits) * kSub + sub;
  }
  /// Inclusive lower bound of a bucket (exposed for tests).
  static std::uint64_t bucket_lower(std::size_t idx);
  /// Representative (midpoint) value reported for a bucket.
  static double bucket_mid(std::size_t idx);

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// API-compatible no-op instruments: instantiate a hot path template with
/// these to compile the instrumentation out (the baseline arm of
/// bench/ablation_obs_overhead).
namespace noop {
struct Counter {
  void add(std::uint64_t = 1) {}
  std::uint64_t value() const { return 0; }
};
struct Gauge {
  void set(double) {}
  void update_max(double) {}
  double value() const { return 0.0; }
};
struct Histogram {
  void record(std::uint64_t) {}
  std::uint64_t count() const { return 0; }
};
}  // namespace noop

}  // namespace hpcmon::obs
