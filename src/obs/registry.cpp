#include "obs/registry.hpp"

#include <algorithm>
#include <stdexcept>

namespace hpcmon::obs {

const InstrumentValue* ObsSnapshot::find(std::string_view name) const {
  for (const auto& v : values) {
    if (v.info.name == name) return &v;
  }
  return nullptr;
}

std::uint64_t ObsSnapshot::counter(std::string_view name) const {
  const auto* v = find(name);
  return v != nullptr && v->kind == InstrumentKind::kCounter ? v->counter : 0;
}

double ObsSnapshot::gauge(std::string_view name) const {
  const auto* v = find(name);
  return v != nullptr && v->kind == InstrumentKind::kGauge ? v->gauge : 0.0;
}

const HistogramSnapshot* ObsSnapshot::histogram(std::string_view name) const {
  const auto* v = find(name);
  return v != nullptr && v->kind == InstrumentKind::kHistogram ? &v->histogram
                                                               : nullptr;
}

void ObsSnapshot::merge(const ObsSnapshot& o) {
  for (const auto& ov : o.values) {
    InstrumentValue* mine = nullptr;
    for (auto& v : values) {
      if (v.info.name == ov.info.name && v.kind == ov.kind) {
        mine = &v;
        break;
      }
    }
    if (mine == nullptr) {
      values.push_back(ov);
      continue;
    }
    switch (ov.kind) {
      case InstrumentKind::kCounter:
        mine->counter += ov.counter;
        break;
      case InstrumentKind::kGauge:
        mine->gauge = mine->info.gauge_agg == GaugeAgg::kSum
                          ? mine->gauge + ov.gauge
                          : std::max(mine->gauge, ov.gauge);
        break;
      case InstrumentKind::kHistogram:
        mine->histogram.merge(ov.histogram);
        break;
    }
  }
}

ObsRegistry::Entry& ObsRegistry::entry_for(const InstrumentInfo& info,
                                           InstrumentKind kind) {
  // Caller holds mu_.
  if (const auto it = by_name_.find(info.name); it != by_name_.end()) {
    auto& e = entries_[it->second];
    if (e.kind != kind) {
      throw std::logic_error("obs instrument '" + info.name +
                             "' re-registered with a different kind");
    }
    return e;  // first metadata wins
  }
  by_name_.emplace(info.name, entries_.size());
  entries_.push_back({info, kind, {}});
  return entries_.back();
}

Counter& ObsRegistry::counter(const InstrumentInfo& info) {
  std::scoped_lock lock(mu_);
  auto& e = entry_for(info, InstrumentKind::kCounter);
  if (e.sources.empty()) {
    owned_counters_.emplace_back();
    e.sources.push_back(&owned_counters_.back());
  }
  return *const_cast<Counter*>(static_cast<const Counter*>(e.sources.front()));
}

Gauge& ObsRegistry::gauge(const InstrumentInfo& info) {
  std::scoped_lock lock(mu_);
  auto& e = entry_for(info, InstrumentKind::kGauge);
  if (e.sources.empty()) {
    owned_gauges_.emplace_back();
    e.sources.push_back(&owned_gauges_.back());
  }
  return *const_cast<Gauge*>(static_cast<const Gauge*>(e.sources.front()));
}

Histogram& ObsRegistry::histogram(const InstrumentInfo& info) {
  std::scoped_lock lock(mu_);
  auto& e = entry_for(info, InstrumentKind::kHistogram);
  if (e.sources.empty()) {
    owned_histograms_.emplace_back();
    e.sources.push_back(&owned_histograms_.back());
  }
  return *const_cast<Histogram*>(
      static_cast<const Histogram*>(e.sources.front()));
}

void ObsRegistry::attach(const InstrumentInfo& info, const Counter* c) {
  std::scoped_lock lock(mu_);
  entry_for(info, InstrumentKind::kCounter).sources.push_back(c);
}

void ObsRegistry::attach(const InstrumentInfo& info, const Gauge* g) {
  std::scoped_lock lock(mu_);
  entry_for(info, InstrumentKind::kGauge).sources.push_back(g);
}

void ObsRegistry::attach(const InstrumentInfo& info, const Histogram* h) {
  std::scoped_lock lock(mu_);
  entry_for(info, InstrumentKind::kHistogram).sources.push_back(h);
}

ObsSnapshot ObsRegistry::snapshot() const {
  std::scoped_lock lock(mu_);
  ObsSnapshot snap;
  snap.values.reserve(entries_.size());
  for (const auto& e : entries_) {
    InstrumentValue v;
    v.info = e.info;
    v.kind = e.kind;
    for (std::size_t i = 0; i < e.sources.size(); ++i) {
      switch (e.kind) {
        case InstrumentKind::kCounter:
          v.counter += static_cast<const Counter*>(e.sources[i])->value();
          break;
        case InstrumentKind::kGauge: {
          const double g = static_cast<const Gauge*>(e.sources[i])->value();
          if (i == 0) {
            v.gauge = g;
          } else {
            v.gauge = e.info.gauge_agg == GaugeAgg::kSum ? v.gauge + g
                                                         : std::max(v.gauge, g);
          }
          break;
        }
        case InstrumentKind::kHistogram:
          v.histogram.merge(
              static_cast<const Histogram*>(e.sources[i])->snapshot());
          break;
      }
    }
    snap.values.push_back(std::move(v));
  }
  return snap;
}

std::size_t ObsRegistry::instrument_count() const {
  std::scoped_lock lock(mu_);
  return entries_.size();
}

}  // namespace hpcmon::obs
