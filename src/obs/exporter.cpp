#include "obs/exporter.hpp"

#include "core/strings.hpp"

namespace hpcmon::obs {

namespace {

/// Compact numeric rendering for gauges ("0.75", "12", "3.2e+06").
std::string gauge_str(double v) { return core::strformat("%.4g", v); }

std::string_view tier_of(const std::string& name) {
  const auto dot = name.find('.');
  return dot == std::string::npos ? std::string_view(name)
                                  : std::string_view(name).substr(0, dot);
}

}  // namespace

std::vector<core::Sample> ObsExporter::to_samples(
    const ObsSnapshot& snap, core::MetricRegistry& registry,
    core::ComponentId component, core::TimePoint now) const {
  std::vector<core::Sample> out;
  out.reserve(snap.values.size());
  const auto emit = [&](const std::string& name, const std::string& unit,
                        const std::string& desc, bool counter,
                        core::Priority pri, double value) {
    const auto metric =
        registry.register_metric({name, unit, desc, counter, pri});
    out.push_back({registry.series(metric, component), now, value});
  };
  for (const auto& v : snap.values) {
    const auto name = prefix_ + v.info.name;
    switch (v.kind) {
      case InstrumentKind::kCounter:
        emit(name, v.info.unit, v.info.description, true, v.info.priority,
             static_cast<double>(v.counter));
        break;
      case InstrumentKind::kGauge:
        emit(name, v.info.unit, v.info.description, false, v.info.priority,
             v.gauge);
        break;
      case InstrumentKind::kHistogram:
        emit(name + "_p50", v.info.unit, v.info.description + " (p50)", false,
             v.info.priority, v.histogram.quantile(0.50));
        emit(name + "_p95", v.info.unit, v.info.description + " (p95)", false,
             v.info.priority, v.histogram.quantile(0.95));
        emit(name + "_p99", v.info.unit, v.info.description + " (p99)", false,
             v.info.priority, v.histogram.quantile(0.99));
        emit(name + "_count", "events", v.info.description + " (count)", true,
             v.info.priority, static_cast<double>(v.histogram.count));
        break;
    }
  }
  return out;
}

std::string ObsExporter::report_line(const ObsSnapshot& snap) const {
  std::string line;
  for (const auto& v : snap.values) {
    switch (v.kind) {
      case InstrumentKind::kCounter:
        if (!line.empty()) line += ' ';
        line += core::strformat("%s=%llu", v.info.name.c_str(),
                                static_cast<unsigned long long>(v.counter));
        break;
      case InstrumentKind::kGauge:
        if (!line.empty()) line += ' ';
        line += v.info.name + '=' + gauge_str(v.gauge);
        break;
      case InstrumentKind::kHistogram:
        if (v.histogram.count == 0) break;  // an idle stage adds no noise
        if (!line.empty()) line += ' ';
        line += core::strformat(
            "%s{p50=%.0f p99=%.0f n=%llu}", v.info.name.c_str(),
            v.histogram.quantile(0.50), v.histogram.quantile(0.99),
            static_cast<unsigned long long>(v.histogram.count));
        break;
    }
  }
  return line;
}

std::string ObsExporter::report(const ObsSnapshot& snap) const {
  std::string out;
  std::string_view tier;
  for (const auto& v : snap.values) {
    if (const auto t = tier_of(v.info.name); t != tier) {
      tier = t;
      out += core::strformat("[%.*s]\n", static_cast<int>(tier.size()),
                             tier.data());
    }
    switch (v.kind) {
      case InstrumentKind::kCounter:
        out += core::strformat("  %-40s %12llu %s\n", v.info.name.c_str(),
                               static_cast<unsigned long long>(v.counter),
                               v.info.unit.c_str());
        break;
      case InstrumentKind::kGauge:
        out += core::strformat("  %-40s %12s %s\n", v.info.name.c_str(),
                               gauge_str(v.gauge).c_str(),
                               v.info.unit.c_str());
        break;
      case InstrumentKind::kHistogram:
        out += core::strformat(
            "  %-40s p50=%-8.0f p95=%-8.0f p99=%-8.0f max=%-8llu n=%llu\n",
            v.info.name.c_str(), v.histogram.quantile(0.50),
            v.histogram.quantile(0.95), v.histogram.quantile(0.99),
            static_cast<unsigned long long>(v.histogram.max),
            static_cast<unsigned long long>(v.histogram.count));
        break;
    }
  }
  return out;
}

}  // namespace hpcmon::obs
