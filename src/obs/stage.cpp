#include "obs/stage.hpp"

namespace hpcmon::obs {

std::string_view to_string(Stage s) {
  switch (s) {
    case Stage::kSamplerSweep: return "sampler_sweep";
    case Stage::kQueueWait: return "queue_wait";
    case Stage::kShardWorker: return "shard_worker";
    case Stage::kStoreAppend: return "store_append";
    case Stage::kQuerySummary: return "query_summary";
    case Stage::kQueryCursor: return "query_cursor";
    case Stage::kQueryCache: return "query_cache";
  }
  return "?";
}

void StageTimer::attach_to(ObsRegistry& registry) const {
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const auto stage = static_cast<Stage>(i);
    InstrumentInfo info;
    info.name = "stage." + std::string(to_string(stage)) + "_us";
    info.unit = "us";
    info.description =
        "real-time latency distribution of pipeline stage " +
        std::string(to_string(stage));
    registry.attach(info, &hist_[i]);
  }
}

}  // namespace hpcmon::obs
