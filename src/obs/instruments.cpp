#include "obs/instruments.hpp"

#include <algorithm>
#include <cmath>

namespace hpcmon::obs {

std::uint64_t Histogram::bucket_lower(std::size_t idx) {
  if (idx < kSub) return idx;
  const auto octave = static_cast<std::uint32_t>((idx - kSub) / kSub);
  const auto sub = static_cast<std::uint64_t>((idx - kSub) % kSub);
  const auto msb = octave + kSubBits;
  return (std::uint64_t{1} << msb) + (sub << (msb - kSubBits));
}

double Histogram::bucket_mid(std::size_t idx) {
  const auto lo = bucket_lower(idx);
  const auto hi = idx + 1 < kBuckets ? bucket_lower(idx + 1) : lo + 1;
  return (static_cast<double>(lo) + static_cast<double>(hi)) / 2.0;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  std::size_t last = 0;
  std::vector<std::uint64_t> all(kBuckets, 0);
  for (std::size_t i = 0; i < kBuckets; ++i) {
    all[i] = buckets_[i].load(std::memory_order_relaxed);
    if (all[i] != 0) last = i + 1;
  }
  all.resize(last);
  s.buckets = std::move(all);
  return s;
}

void HistogramSnapshot::merge(const HistogramSnapshot& o) {
  if (o.buckets.size() > buckets.size()) buckets.resize(o.buckets.size(), 0);
  for (std::size_t i = 0; i < o.buckets.size(); ++i) buckets[i] += o.buckets[i];
  count += o.count;
  sum += o.sum;
  max = std::max(max, o.max);
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th element (1-based, nearest-rank definition).
  const auto rank = static_cast<std::uint64_t>(
      std::max<double>(1.0, std::ceil(q * static_cast<double>(count))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) return Histogram::bucket_mid(i);
  }
  return Histogram::bucket_mid(buckets.empty() ? 0 : buckets.size() - 1);
}

}  // namespace hpcmon::obs
