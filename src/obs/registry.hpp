// ObsRegistry: the one catalog of self-observability instruments.
//
// Every tier registers its instruments here exactly once, with a stable
// dotted name ("ingest.accepted_samples"), a unit, a description, and a
// core::Priority for the exported hpcmon.self.* series. Hot-path updates
// never touch the registry — instruments are plain atomic values the tier
// holds directly (registry-owned via counter()/gauge()/histogram(), or
// tier-owned and attached via attach_*) — so registration cost is paid once
// and updates stay O(1) and lock-free.
//
// Multiple instruments may be attached under one name (each shard's store
// counters, each supervised sampler's call counters); snapshot() merges
// them: counters sum, gauges combine per their declared aggregation,
// histograms merge bucket-wise. snapshot() walks the catalog under its
// mutex and reads every instrument with relaxed loads, yielding one
// consistent-enough ObsSnapshot that feeds BOTH the degradation control
// loop (HealthSignals) and the operator-facing export — the same numbers,
// by construction.
//
// Lifetime: attached instruments must outlive any snapshot() call; in
// practice the owner (MonitoringStack) declares the registry before the
// tiers and never snapshots during teardown.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/priority.hpp"
#include "obs/instruments.hpp"

namespace hpcmon::obs {

enum class InstrumentKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// How same-name gauge instances combine at snapshot time (counters always
/// sum; histograms always merge bucket-wise).
enum class GaugeAgg : std::uint8_t { kMax, kSum };

struct InstrumentInfo {
  std::string name;         // dotted, e.g. "store.cache_hits"
  std::string unit;         // e.g. "samples", "us", "frac"
  std::string description;  // Table I: "the meaning of all raw data"
  /// Shedding class of the exported hpcmon.self.* series. Self-telemetry
  /// defaults to critical: the monitor's own vitals must survive the storms
  /// they report on.
  core::Priority priority = core::Priority::kCritical;
  GaugeAgg gauge_agg = GaugeAgg::kMax;
};

/// One instrument's merged reading inside a snapshot.
struct InstrumentValue {
  InstrumentInfo info;
  InstrumentKind kind = InstrumentKind::kCounter;
  std::uint64_t counter = 0;    // kCounter
  double gauge = 0.0;           // kGauge
  HistogramSnapshot histogram;  // kHistogram
};

/// A consistent point-in-time view of every registered instrument, in
/// registration order. merge() combines snapshots from sibling registries
/// (associatively), aligning entries by name.
struct ObsSnapshot {
  std::vector<InstrumentValue> values;

  const InstrumentValue* find(std::string_view name) const;
  /// Counter value by name; 0 when absent (absent == never incremented).
  std::uint64_t counter(std::string_view name) const;
  /// Gauge value by name; 0.0 when absent.
  double gauge(std::string_view name) const;
  /// Histogram by name; nullptr when absent.
  const HistogramSnapshot* histogram(std::string_view name) const;

  void merge(const ObsSnapshot& o);
};

class ObsRegistry {
 public:
  /// Register (or look up) a registry-owned instrument. Re-registering the
  /// same name returns the SAME instrument (first metadata wins), so
  /// same-name registrations from sibling components share one atomic.
  Counter& counter(const InstrumentInfo& info);
  Gauge& gauge(const InstrumentInfo& info);
  Histogram& histogram(const InstrumentInfo& info);

  /// Catalog an externally-owned instrument under `info.name`. Several
  /// attachments may share a name; snapshot() merges them. The instrument
  /// must outlive every subsequent snapshot().
  void attach(const InstrumentInfo& info, const Counter* c);
  void attach(const InstrumentInfo& info, const Gauge* g);
  void attach(const InstrumentInfo& info, const Histogram* h);

  ObsSnapshot snapshot() const;

  std::size_t instrument_count() const;

 private:
  struct Entry {
    InstrumentInfo info;
    InstrumentKind kind;
    std::vector<const void*> sources;  // Counter*/Gauge*/Histogram*
  };

  Entry& entry_for(const InstrumentInfo& info, InstrumentKind kind);

  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  std::unordered_map<std::string, std::size_t> by_name_;
  // Owned instruments; deques keep addresses stable across growth.
  std::deque<Counter> owned_counters_;
  std::deque<Gauge> owned_gauges_;
  std::deque<Histogram> owned_histograms_;
};

}  // namespace hpcmon::obs
