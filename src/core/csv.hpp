// CSV writer.
//
// Fig 5's caption: NCSA "enables user access to plots, with the ability to
// download the image and also the raw data" as CSV. viz::export_csv builds on
// this writer; it is in core because probes and benches also emit CSV.
#pragma once

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace hpcmon::core {

class CsvWriter {
 public:
  /// Begin a row; fields are appended with field()/number().
  void field(std::string_view v);
  void number(double v);
  void number(std::int64_t v);
  /// Terminate the current row.
  void end_row();

  /// Convenience: write a whole row of strings.
  void row(const std::vector<std::string>& fields);

  std::string str() const { return out_.str(); }

 private:
  void sep();
  std::ostringstream out_;
  bool row_open_ = false;
};

/// Quote a field per RFC 4180 when it contains comma/quote/newline.
std::string csv_escape(std::string_view v);

}  // namespace hpcmon::core
