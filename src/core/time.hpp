// Core time types for hpcmon.
//
// The paper (Sec. III-A) calls out that cross-component association breaks
// when "a single global timestamp is unavailable as local clock drift can
// result in erroneous associations". To make that failure mode testable, the
// entire library runs on an explicit simulated timeline: no module reads the
// wall clock. TimePoint is microseconds since simulation epoch.
#pragma once

#include <cstdint>
#include <string>

namespace hpcmon::core {

/// Microseconds since simulation epoch.
using TimePoint = std::int64_t;
/// Signed duration in microseconds.
using Duration = std::int64_t;

constexpr Duration kMicrosecond = 1;
constexpr Duration kMillisecond = 1000 * kMicrosecond;
constexpr Duration kSecond = 1000 * kMillisecond;
constexpr Duration kMinute = 60 * kSecond;
constexpr Duration kHour = 60 * kMinute;
constexpr Duration kDay = 24 * kHour;

/// Convert a duration to fractional seconds (for reporting only).
constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// Convert fractional seconds to a Duration, truncating to microseconds.
constexpr Duration from_seconds(double s) {
  return static_cast<Duration>(s * static_cast<double>(kSecond));
}

/// Half-open time interval [begin, end).
struct TimeRange {
  TimePoint begin = 0;
  TimePoint end = 0;

  constexpr bool contains(TimePoint t) const { return t >= begin && t < end; }
  constexpr Duration length() const { return end - begin; }
  constexpr bool empty() const { return end <= begin; }
  /// True if the two ranges share at least one instant.
  constexpr bool overlaps(const TimeRange& o) const {
    return begin < o.end && o.begin < end;
  }
  friend constexpr bool operator==(const TimeRange&, const TimeRange&) = default;
};

/// Render a TimePoint as "D+HH:MM:SS.mmm" for logs and dashboards.
std::string format_time(TimePoint t);

/// Render a Duration as a compact human string, e.g. "90s", "2.5m", "3h".
std::string format_duration(Duration d);

}  // namespace hpcmon::core
