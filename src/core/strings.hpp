// Small string utilities shared across modules (log scanning, CSV, config).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hpcmon::core {

/// Split on a single-character delimiter; keeps empty fields.
std::vector<std::string_view> split(std::string_view s, char delim);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// Join pieces with a separator.
std::string join(const std::vector<std::string>& pieces, std::string_view sep);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Case-sensitive glob match supporting '*' (any run) and '?' (any char).
/// Used by SEC-style rules and log scans instead of full regex.
bool glob_match(std::string_view pattern, std::string_view text);

/// Lower-case ASCII copy.
std::string to_lower(std::string_view s);

/// Tokenize a log message into indexable words (alnum runs, lower-cased).
std::vector<std::string> tokenize_words(std::string_view s);

/// printf-style formatting into a std::string.
std::string strformat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace hpcmon::core
