#include "core/config.hpp"

#include <cstdlib>

#include "core/strings.hpp"

namespace hpcmon::core {

Result<Config> Config::parse(std::string_view text) {
  Config cfg;
  std::size_t line_no = 0;
  for (auto line : split(text, '\n')) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Result<Config>::error(
          strformat("config line %zu: expected 'key = value'", line_no));
    }
    const auto key = trim(line.substr(0, eq));
    const auto value = trim(line.substr(eq + 1));
    if (key.empty()) {
      return Result<Config>::error(
          strformat("config line %zu: empty key", line_no));
    }
    cfg.set(key, value);
  }
  return cfg;
}

void Config::set(std::string_view key, std::string_view value) {
  values_.insert_or_assign(std::string(key), std::string(value));
}

void Config::set_int(std::string_view key, std::int64_t value) {
  set(key, strformat("%lld", static_cast<long long>(value)));
}

void Config::set_double(std::string_view key, double value) {
  set(key, strformat("%.17g", value));
}

void Config::set_bool(std::string_view key, bool value) {
  set(key, value ? "true" : "false");
}

bool Config::contains(std::string_view key) const {
  return values_.find(key) != values_.end();
}

std::string Config::get_string(std::string_view key,
                               std::string_view dflt) const {
  if (auto it = values_.find(key); it != values_.end()) return it->second;
  return std::string(dflt);
}

std::int64_t Config::get_int(std::string_view key, std::int64_t dflt) const {
  if (auto it = values_.find(key); it != values_.end()) {
    char* end = nullptr;
    const auto v = std::strtoll(it->second.c_str(), &end, 10);
    if (end != it->second.c_str() && *end == '\0') return v;
  }
  return dflt;
}

double Config::get_double(std::string_view key, double dflt) const {
  if (auto it = values_.find(key); it != values_.end()) {
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end != it->second.c_str() && *end == '\0') return v;
  }
  return dflt;
}

bool Config::get_bool(std::string_view key, bool dflt) const {
  if (auto it = values_.find(key); it != values_.end()) {
    if (it->second == "true" || it->second == "1" || it->second == "yes") {
      return true;
    }
    if (it->second == "false" || it->second == "0" || it->second == "no") {
      return false;
    }
  }
  return dflt;
}

std::string Config::dump() const {
  std::string out;
  for (const auto& [k, v] : values_) {
    out += k;
    out += " = ";
    out += v;
    out += '\n';
  }
  return out;
}

}  // namespace hpcmon::core
