// Deterministic random source.
//
// Every stochastic process in the simulator draws from an explicitly seeded
// Rng so experiments and tests are reproducible bit-for-bit. fork() derives
// independent child streams so adding a new consumer does not perturb
// existing draws (important when comparing eras, e.g. Fig 1 pre/post-TAS).
#pragma once

#include <cstdint>
#include <random>
#include <span>

namespace hpcmon::core {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : engine_(seed) {}

  /// Derive an independent child stream. Deterministic in (parent seed,
  /// number of prior forks).
  Rng fork() { return Rng(engine_() ^ 0xD1B54A32D192ED03ull); }

  /// Uniform in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }
  /// Exponential with the given mean (not rate).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }
  /// Log-normal parameterized by the mean/sigma of the underlying normal.
  double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }
  std::int64_t poisson(double mean) {
    return std::poisson_distribution<std::int64_t>(mean)(engine_);
  }
  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }
  /// Pick a uniformly random element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    return items[static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(items.size()) - 1))];
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace hpcmon::core
