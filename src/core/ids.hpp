// Strongly-typed identifiers used throughout hpcmon.
//
// Components follow the Cray XC physical hierarchy the paper's sites monitor
// at: cabinet -> chassis -> blade -> node, plus links, filesystem targets,
// and facility sensors. ComponentId is a dense index assigned by the
// topology builder; SeriesId is a dense index assigned by the MetricRegistry.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace hpcmon::core {

/// Dense id of one timeseries (metric x component) in the MetricRegistry.
enum class SeriesId : std::uint32_t {};
/// Dense id of one physical or logical component in the Topology.
enum class ComponentId : std::uint32_t {};
/// Scheduler-assigned job identifier (monotonically increasing).
enum class JobId : std::uint64_t {};

constexpr std::uint32_t raw(SeriesId id) { return static_cast<std::uint32_t>(id); }
constexpr std::uint32_t raw(ComponentId id) { return static_cast<std::uint32_t>(id); }
constexpr std::uint64_t raw(JobId id) { return static_cast<std::uint64_t>(id); }

constexpr ComponentId kNoComponent = ComponentId{0xFFFFFFFFu};
constexpr JobId kNoJob = JobId{0xFFFFFFFFFFFFFFFFull};

/// Kinds of components hpcmon knows how to address.
enum class ComponentKind : std::uint8_t {
  kSystem,    // whole-machine aggregate pseudo-component
  kCabinet,
  kChassis,
  kBlade,
  kNode,
  kGpu,
  kHsnLink,
  kHsnRouter,
  kFsTarget,  // Lustre-like MDS/OST
  kFacility,  // datacenter environment sensor (temp, humidity, corrosion)
  kService,   // daemons, mounts -- things LANL-style health checks probe
};

/// Human label for a component kind ("node", "hsn_link", ...).
std::string_view to_string(ComponentKind kind);

}  // namespace hpcmon::core

template <>
struct std::hash<hpcmon::core::SeriesId> {
  std::size_t operator()(hpcmon::core::SeriesId id) const noexcept {
    return std::hash<std::uint32_t>{}(static_cast<std::uint32_t>(id));
  }
};
template <>
struct std::hash<hpcmon::core::ComponentId> {
  std::size_t operator()(hpcmon::core::ComponentId id) const noexcept {
    return std::hash<std::uint32_t>{}(static_cast<std::uint32_t>(id));
  }
};
template <>
struct std::hash<hpcmon::core::JobId> {
  std::size_t operator()(hpcmon::core::JobId id) const noexcept {
    return std::hash<std::uint64_t>{}(static_cast<std::uint64_t>(id));
  }
};
