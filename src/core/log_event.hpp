// Text telemetry record: a single log line with structured envelope.
//
// The paper (Sec. IV-A) describes Cray splitting log events into >=20 per-day
// files with inconsistent time formats, some multi-line, some binary. hpcmon
// instead keeps one canonical structured record from the source onward;
// transports may encode it in binary (EventRouter) or render it as text, but
// the structure is never lost ("tools to transport and store the data in
// native format are highly desirable", Table I).
#pragma once

#include <cstdint>
#include <string>

#include "core/ids.hpp"
#include "core/time.hpp"

namespace hpcmon::core {

/// Syslog-compatible severity, most severe first.
enum class Severity : std::uint8_t {
  kEmergency = 0,
  kAlert = 1,
  kCritical = 2,
  kError = 3,
  kWarning = 4,
  kNotice = 5,
  kInfo = 6,
  kDebug = 7,
};

std::string_view to_string(Severity s);

/// Coarse source category, mirroring the per-source log streams the paper
/// describes (hardware errors, network events, console, scheduler, ...).
enum class LogFacility : std::uint8_t {
  kConsole = 0,
  kHardware = 1,
  kNetwork = 2,
  kFilesystem = 3,
  kScheduler = 4,
  kPower = 5,
  kHealth = 6,   // health-check / probe suite results
  kFacilityEnv = 7,  // datacenter environment (ASHRAE-style, Sec. II.6)
};

std::string_view to_string(LogFacility f);

/// One structured log event.
struct LogEvent {
  TimePoint time = 0;              // global (drift-corrected) timestamp
  TimePoint local_time = 0;        // timestamp as stamped by the source clock
  ComponentId component = kNoComponent;
  LogFacility facility = LogFacility::kConsole;
  Severity severity = Severity::kInfo;
  JobId job = kNoJob;              // owning job when known
  std::string message;

  friend bool operator==(const LogEvent&, const LogEvent&) = default;
};

}  // namespace hpcmon::core
