#include "core/registry.hpp"

#include <cassert>
#include <sstream>

namespace hpcmon::core {

namespace {
std::uint64_t series_key(std::uint32_t metric, ComponentId component) {
  return (static_cast<std::uint64_t>(metric) << 32) |
         static_cast<std::uint64_t>(raw(component));
}
}  // namespace

std::uint32_t MetricRegistry::register_metric(const MetricInfo& info) {
  std::scoped_lock lock(mu_);
  if (auto it = metric_by_name_.find(info.name); it != metric_by_name_.end()) {
    return it->second;
  }
  const auto index = static_cast<std::uint32_t>(metrics_.size());
  metrics_.push_back(info);
  metric_by_name_.emplace(info.name, index);
  return index;
}

ComponentId MetricRegistry::register_component(const ComponentInfo& info) {
  std::scoped_lock lock(mu_);
  if (auto it = component_by_name_.find(info.name);
      it != component_by_name_.end()) {
    return it->second;
  }
  const auto id = ComponentId{static_cast<std::uint32_t>(components_.size())};
  components_.push_back(info);
  component_by_name_.emplace(info.name, id);
  return id;
}

SeriesId MetricRegistry::series(std::uint32_t metric_index,
                                ComponentId component) {
  std::scoped_lock lock(mu_);
  assert(metric_index < metrics_.size());
  const auto key = series_key(metric_index, component);
  if (auto it = series_by_key_.find(key); it != series_by_key_.end()) {
    return it->second;
  }
  const auto id = SeriesId{static_cast<std::uint32_t>(series_.size())};
  series_.push_back({metric_index, component});
  series_by_key_.emplace(key, id);
  return id;
}

SeriesId MetricRegistry::series(std::string_view metric_name,
                                ComponentId component) {
  const auto index = register_metric({std::string(metric_name), "", "", false});
  return series(index, component);
}

std::optional<std::uint32_t> MetricRegistry::find_metric(
    std::string_view name) const {
  std::scoped_lock lock(mu_);
  if (auto it = metric_by_name_.find(std::string(name));
      it != metric_by_name_.end()) {
    return it->second;
  }
  return std::nullopt;
}

std::optional<ComponentId> MetricRegistry::find_component(
    std::string_view name) const {
  std::scoped_lock lock(mu_);
  if (auto it = component_by_name_.find(std::string(name));
      it != component_by_name_.end()) {
    return it->second;
  }
  return std::nullopt;
}

const MetricInfo& MetricRegistry::metric(std::uint32_t index) const {
  std::scoped_lock lock(mu_);
  return metrics_.at(index);
}

const ComponentInfo& MetricRegistry::component(ComponentId id) const {
  std::scoped_lock lock(mu_);
  return components_.at(raw(id));
}

Priority MetricRegistry::series_priority(SeriesId id) const {
  std::scoped_lock lock(mu_);
  return metrics_.at(series_.at(raw(id)).metric).priority;
}

std::uint32_t MetricRegistry::series_metric(SeriesId id) const {
  std::scoped_lock lock(mu_);
  return series_.at(raw(id)).metric;
}

ComponentId MetricRegistry::series_component(SeriesId id) const {
  std::scoped_lock lock(mu_);
  return series_.at(raw(id)).component;
}

std::string MetricRegistry::series_name(SeriesId id) const {
  std::scoped_lock lock(mu_);
  const auto& rec = series_.at(raw(id));
  std::string out = metrics_.at(rec.metric).name;
  out += '@';
  if (rec.component == kNoComponent) {
    out += "<none>";
  } else {
    out += components_.at(raw(rec.component)).name;
  }
  return out;
}

std::size_t MetricRegistry::metric_count() const {
  std::scoped_lock lock(mu_);
  return metrics_.size();
}

std::size_t MetricRegistry::component_count() const {
  std::scoped_lock lock(mu_);
  return components_.size();
}

std::size_t MetricRegistry::series_count() const {
  std::scoped_lock lock(mu_);
  return series_.size();
}

std::vector<ComponentId> MetricRegistry::components_of_kind(
    ComponentKind kind) const {
  std::scoped_lock lock(mu_);
  std::vector<ComponentId> out;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (components_[i].kind == kind) {
      out.push_back(ComponentId{static_cast<std::uint32_t>(i)});
    }
  }
  return out;
}

std::vector<ComponentId> MetricRegistry::children_of(ComponentId parent) const {
  std::scoped_lock lock(mu_);
  std::vector<ComponentId> out;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (components_[i].parent == parent) {
      out.push_back(ComponentId{static_cast<std::uint32_t>(i)});
    }
  }
  return out;
}

std::string MetricRegistry::describe_all() const {
  std::scoped_lock lock(mu_);
  std::ostringstream os;
  for (const auto& m : metrics_) {
    os << m.name << " [" << (m.units.empty() ? "-" : m.units) << "]"
       << (m.is_counter ? " (counter)" : "");
    if (m.priority != Priority::kStandard) {
      os << " {" << to_string(m.priority) << "}";
    }
    os << ": " << (m.description.empty() ? "(undocumented)" : m.description)
       << "\n";
  }
  return os.str();
}

}  // namespace hpcmon::core
