// Minimal Result/Status types for expected failures at module boundaries.
//
// hpcmon does not throw across library API boundaries for anticipated
// conditions (missing series, exhausted archive, malformed frame); those are
// reported as Status/Result values. Exceptions remain for programmer errors.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace hpcmon::core {

/// Broad failure class, so callers can branch on *what kind* of failure
/// occurred (e.g. corruption is surfaced to operators differently than a
/// missing file) without parsing the human-readable message.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kError = 1,       // generic expected failure
  kCorruption = 2,  // data failed an integrity check (CRC, framing)
};

class Status {
 public:
  Status() = default;  // OK
  static Status ok() { return Status(); }
  static Status error(std::string message) {
    return make(StatusCode::kError, std::move(message));
  }
  static Status corruption(std::string message) {
    return make(StatusCode::kCorruption, std::move(message));
  }

  bool is_ok() const { return code_ == StatusCode::kOk; }
  explicit operator bool() const { return is_ok(); }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

 private:
  static Status make(StatusCode code, std::string message) {
    Status s;
    s.message_ = std::move(message);
    s.code_ = code;
    return s;
  }

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.is_ok() && "use the value constructor for success");
  }
  static Result error(std::string message) {
    return Result(Status::error(std::move(message)));
  }

  bool is_ok() const { return value_.has_value(); }
  explicit operator bool() const { return is_ok(); }

  const T& value() const& {
    assert(is_ok());
    return *value_;
  }
  T& value() & {
    assert(is_ok());
    return *value_;
  }
  T&& take() && {
    assert(is_ok());
    return std::move(*value_);
  }
  const Status& status() const { return status_; }
  const std::string& message() const { return status_.message(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace hpcmon::core
