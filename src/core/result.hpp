// Minimal Result/Status types for expected failures at module boundaries.
//
// hpcmon does not throw across library API boundaries for anticipated
// conditions (missing series, exhausted archive, malformed frame); those are
// reported as Status/Result values. Exceptions remain for programmer errors.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace hpcmon::core {

class Status {
 public:
  Status() = default;  // OK
  static Status ok() { return Status(); }
  static Status error(std::string message) {
    Status s;
    s.message_ = std::move(message);
    s.ok_ = false;
    return s;
  }

  bool is_ok() const { return ok_; }
  explicit operator bool() const { return ok_; }
  const std::string& message() const { return message_; }

 private:
  bool ok_ = true;
  std::string message_;
};

template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.is_ok() && "use the value constructor for success");
  }
  static Result error(std::string message) {
    return Result(Status::error(std::move(message)));
  }

  bool is_ok() const { return value_.has_value(); }
  explicit operator bool() const { return is_ok(); }

  const T& value() const& {
    assert(is_ok());
    return *value_;
  }
  T& value() & {
    assert(is_ok());
    return *value_;
  }
  T&& take() && {
    assert(is_ok());
    return std::move(*value_);
  }
  const Status& status() const { return status_; }
  const std::string& message() const { return status_.message(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace hpcmon::core
