// Filesystem fault-injection interface.
//
// Durable-state code (the WAL, the tiered-retention compactor) must be
// provably crash-safe: a torn write, a full disk, a failed rename, or a kill
// at any point between two syscalls may never lose acknowledged data or
// leave a torn file behind. Proving that requires injecting exactly those
// faults at every filesystem operation. The injector interface lives in
// core so the store tier can consult it without depending on the resilience
// tier (which implements it in FaultPlan and already depends on store
// transitively); production code passes nullptr and pays nothing.
//
// Contract: callers consult fs_fault(op) immediately BEFORE performing the
// real operation. Each consultation advances the injector's single fs-op
// schedule, so a scripted "crash at op N" lands on a precise step of a
// multi-file transaction — the crash-matrix battery sweeps N over every op
// of a compaction pass.
#pragma once

#include <cstdint>
#include <string_view>

namespace hpcmon::core {

/// The filesystem operation about to be performed.
enum class FsOp : std::uint8_t { kOpen, kWrite, kFsync, kRename, kUnlink };

/// What the injector wants to happen instead.
enum class FsFault : std::uint8_t {
  kNone,        // perform the operation normally
  kError,       // fail with a generic I/O error
  kShortWrite,  // write part of the data, then fail (torn record/file)
  kEnospc,      // fail as a full disk would
  kCrash,       // do NOT perform the operation; the process "dies" here —
                // the caller must abandon all in-memory state and recover
                // from disk (tests restart on the same directory)
};

constexpr std::string_view to_string(FsOp op) {
  switch (op) {
    case FsOp::kOpen: return "open";
    case FsOp::kWrite: return "write";
    case FsOp::kFsync: return "fsync";
    case FsOp::kRename: return "rename";
    case FsOp::kUnlink: return "unlink";
  }
  return "?";
}

constexpr std::string_view to_string(FsFault f) {
  switch (f) {
    case FsFault::kNone: return "none";
    case FsFault::kError: return "error";
    case FsFault::kShortWrite: return "short_write";
    case FsFault::kEnospc: return "enospc";
    case FsFault::kCrash: return "crash";
  }
  return "?";
}

/// Consulted before every physical filesystem operation of fault-aware
/// durable-state code. Implementations must be thread-safe (the WAL appends
/// from transport threads while the compactor runs on the timeline).
class FsFaultInjector {
 public:
  virtual ~FsFaultInjector() = default;
  virtual FsFault fs_fault(FsOp op) = 0;
};

}  // namespace hpcmon::core
