#include "core/topo_path.hpp"

#include "core/strings.hpp"

namespace hpcmon::core {

namespace {

/// Consume a non-negative decimal integer from the front of `s`; nullopt when
/// the front is not a digit. Bounds the value so hostile input can't overflow.
std::optional<int> eat_int(std::string_view& s) {
  if (s.empty() || s.front() < '0' || s.front() > '9') return std::nullopt;
  long v = 0;
  std::size_t i = 0;
  while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
    v = v * 10 + (s[i] - '0');
    if (v > 1'000'000'000) return std::nullopt;
    ++i;
  }
  s.remove_prefix(i);
  return static_cast<int>(v);
}

bool eat(std::string_view& s, char c) {
  if (s.empty() || s.front() != c) return false;
  s.remove_prefix(1);
  return true;
}

}  // namespace

TopoPath::Level TopoPath::level() const {
  if (node >= 0) return Level::kNode;
  if (slot >= 0) return Level::kBlade;
  if (chassis >= 0) return Level::kChassis;
  if (cabinet >= 0) return Level::kCabinet;
  return Level::kSystem;
}

bool TopoPath::valid() const {
  if (row < 0) return false;
  // Coordinates must form a prefix: no deeper coordinate without every
  // shallower one.
  if (node >= 0 && slot < 0) return false;
  if (slot >= 0 && chassis < 0) return false;
  if (chassis >= 0 && cabinet < 0) return false;
  return true;
}

std::string TopoPath::format() const {
  switch (level()) {
    case Level::kSystem:
      return "system";
    case Level::kCabinet:
      return strformat("c%d-%d", cabinet, row);
    case Level::kChassis:
      return strformat("c%d-%dc%d", cabinet, row, chassis);
    case Level::kBlade:
      return strformat("c%d-%dc%ds%d", cabinet, row, chassis, slot);
    case Level::kNode:
      return strformat("c%d-%dc%ds%dn%d", cabinet, row, chassis, slot, node);
  }
  return "system";
}

std::optional<TopoPath> TopoPath::parse(std::string_view cname) {
  TopoPath p;
  if (cname == "system") return p;
  std::string_view s = cname;
  if (!eat(s, 'c')) return std::nullopt;
  auto cab = eat_int(s);
  if (!cab || !eat(s, '-')) return std::nullopt;
  auto row = eat_int(s);
  if (!row) return std::nullopt;
  p.cabinet = *cab;
  p.row = *row;
  if (s.empty()) return p;
  if (!eat(s, 'c')) return std::nullopt;
  auto ch = eat_int(s);
  if (!ch) return std::nullopt;
  p.chassis = *ch;
  if (s.empty()) return p;
  if (!eat(s, 's')) return std::nullopt;
  auto slot = eat_int(s);
  if (!slot) return std::nullopt;
  p.slot = *slot;
  if (s.empty()) return p;
  if (!eat(s, 'n')) return std::nullopt;
  auto node = eat_int(s);
  if (!node || !s.empty()) return std::nullopt;
  p.node = *node;
  return p;
}

TopoPath TopoPath::of_node_index(int node_index, const Dims& dims) {
  TopoPath p;
  if (node_index < 0) return p;
  const int blades_per_cabinet = dims.chassis_per_cabinet * dims.blades_per_chassis;
  const int blade = node_index / dims.nodes_per_blade;
  p.node = node_index % dims.nodes_per_blade;
  p.cabinet = blade / blades_per_cabinet;
  const int within_cab = blade % blades_per_cabinet;
  p.chassis = within_cab / dims.blades_per_chassis;
  p.slot = within_cab % dims.blades_per_chassis;
  return p;
}

int TopoPath::node_index(const Dims& dims) const {
  if (level() != Level::kNode) return -1;
  if (chassis >= dims.chassis_per_cabinet || slot >= dims.blades_per_chassis ||
      node >= dims.nodes_per_blade) {
    return -1;
  }
  return blade_index(dims) * dims.nodes_per_blade + node;
}

int TopoPath::blade_index(const Dims& dims) const {
  if (level() < Level::kBlade) return -1;
  if (chassis >= dims.chassis_per_cabinet || slot >= dims.blades_per_chassis) {
    return -1;
  }
  return (cabinet * dims.chassis_per_cabinet + chassis) *
             dims.blades_per_chassis +
         slot;
}

}  // namespace hpcmon::core
