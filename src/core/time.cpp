#include "core/time.hpp"

#include <cstdio>

namespace hpcmon::core {

std::string format_time(TimePoint t) {
  const bool neg = t < 0;
  std::int64_t us = neg ? -t : t;
  const std::int64_t ms = (us / kMillisecond) % 1000;
  std::int64_t s = us / kSecond;
  const std::int64_t days = s / (24 * 3600);
  s %= 24 * 3600;
  const std::int64_t h = s / 3600;
  const std::int64_t m = (s % 3600) / 60;
  const std::int64_t sec = s % 60;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s%lld+%02lld:%02lld:%02lld.%03lld",
                neg ? "-" : "", static_cast<long long>(days),
                static_cast<long long>(h), static_cast<long long>(m),
                static_cast<long long>(sec), static_cast<long long>(ms));
  return buf;
}

std::string format_duration(Duration d) {
  char buf[48];
  const double s = to_seconds(d < 0 ? -d : d);
  const char* sign = d < 0 ? "-" : "";
  if (s < 1.0) {
    std::snprintf(buf, sizeof(buf), "%s%lldus", sign,
                  static_cast<long long>(d < 0 ? -d : d));
  } else if (s < 120.0) {
    std::snprintf(buf, sizeof(buf), "%s%.3gs", sign, s);
  } else if (s < 2.0 * 3600.0) {
    std::snprintf(buf, sizeof(buf), "%s%.3gm", sign, s / 60.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%s%.3gh", sign, s / 3600.0);
  }
  return buf;
}

}  // namespace hpcmon::core
