// Flat key-value configuration with typed accessors.
//
// Table I (Architecture) requires that "changes in data direction and data
// access [be] easily configured and changed"; hpcmon components take their
// tunables (intervals, retention windows, thresholds) from a Config rather
// than hard-coding them. Supports "key = value" text parsing with '#'
// comments so examples can ship config files.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "core/result.hpp"

namespace hpcmon::core {

class Config {
 public:
  Config() = default;

  /// Parse "key = value" lines; '#' starts a comment; blank lines ignored.
  static Result<Config> parse(std::string_view text);

  void set(std::string_view key, std::string_view value);
  void set_int(std::string_view key, std::int64_t value);
  void set_double(std::string_view key, double value);
  void set_bool(std::string_view key, bool value);

  bool contains(std::string_view key) const;

  std::string get_string(std::string_view key, std::string_view dflt) const;
  std::int64_t get_int(std::string_view key, std::int64_t dflt) const;
  double get_double(std::string_view key, double dflt) const;
  bool get_bool(std::string_view key, bool dflt) const;

  /// Keys in sorted order (for dumps).
  std::string dump() const;
  std::size_t size() const { return values_.size(); }

 private:
  std::map<std::string, std::string, std::less<>> values_;
};

}  // namespace hpcmon::core
