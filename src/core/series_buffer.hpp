// Fixed-capacity ring buffer of (time, value) points.
//
// Used at data sources to hold recent samples before a transport sweep, and
// by streaming analyses that need a bounded trailing window. Oldest points
// are overwritten when full (the store, not the source, owns history).
#pragma once

#include <cassert>
#include <cstddef>
#include <optional>
#include <vector>

#include "core/time.hpp"

namespace hpcmon::core {

struct TimedValue {
  TimePoint time = 0;
  double value = 0.0;
  friend bool operator==(const TimedValue&, const TimedValue&) = default;
};

class SeriesBuffer {
 public:
  explicit SeriesBuffer(std::size_t capacity) : data_(capacity) {
    assert(capacity > 0);
  }

  void push(TimePoint t, double v) {
    data_[head_] = {t, v};
    head_ = (head_ + 1) % data_.size();
    if (size_ < data_.size()) ++size_;
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return data_.size(); }
  bool empty() const { return size_ == 0; }

  /// i-th most recent point; at(0) is the newest.
  const TimedValue& at_newest(std::size_t i) const {
    assert(i < size_);
    return data_[(head_ + data_.size() - 1 - i) % data_.size()];
  }

  std::optional<TimedValue> latest() const {
    if (size_ == 0) return std::nullopt;
    return at_newest(0);
  }

  /// Points within [range.begin, range.end), oldest first.
  std::vector<TimedValue> window(const TimeRange& range) const {
    std::vector<TimedValue> out;
    for (std::size_t i = size_; i-- > 0;) {
      const auto& tv = at_newest(i);
      if (range.contains(tv.time)) out.push_back(tv);
    }
    return out;
  }

  /// All points, oldest first.
  std::vector<TimedValue> snapshot() const {
    std::vector<TimedValue> out;
    out.reserve(size_);
    for (std::size_t i = size_; i-- > 0;) out.push_back(at_newest(i));
    return out;
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::vector<TimedValue> data_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace hpcmon::core
