#include "core/csv.hpp"

#include <cstdio>

namespace hpcmon::core {

std::string csv_escape(std::string_view v) {
  const bool needs_quotes =
      v.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(v);
  std::string out = "\"";
  for (char c : v) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::sep() {
  if (row_open_) out_ << ',';
  row_open_ = true;
}

void CsvWriter::field(std::string_view v) {
  sep();
  out_ << csv_escape(v);
}

void CsvWriter::number(double v) {
  sep();
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out_ << buf;
}

void CsvWriter::number(std::int64_t v) {
  sep();
  out_ << v;
}

void CsvWriter::end_row() {
  out_ << '\n';
  row_open_ = false;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (const auto& f : fields) field(f);
  end_row();
}

}  // namespace hpcmon::core
