// Priority classes for metrics and the storm-mode degradation ladder.
//
// The paper's sites all hit the same failure shape: monitoring is most
// needed exactly when the machine is melting down (log storms, congestion
// cascades, filesystem brownouts), yet naive collectors fall over or —
// worse — silently drop the tier-1 signals operators steer by (Secs.
// III-IV). hpcmon makes the triage explicit: every metric family carries a
// Priority, and every shedding decision in the stack is priority-aware.
//
//   kCritical  never dropped anywhere in the stack. Queue-full admission
//              falls back to backpressure, eviction passes over it, and the
//              WAL has already made it durable before ingest sees it.
//   kStandard  degraded gracefully: downsampled on ingest under SUMMARIZE,
//              shed entirely only under QUARANTINE.
//   kBulk      sheds first: dropped at the ingest door from SHED_BULK on,
//              evicted first under queue pressure in any mode.
//
// DegradationMode is the closed-loop ladder the DegradationController
// (resilience/degradation.hpp) walks with hysteresis; it lives here because
// both the ingest tier (enforcement) and the resilience tier (control) need
// it without depending on each other.
#pragma once

#include <cstdint>
#include <string_view>

namespace hpcmon::core {

enum class Priority : std::uint8_t {
  kCritical = 0,
  kStandard = 1,
  kBulk = 2,
};
inline constexpr std::size_t kPriorityClasses = 3;

/// Tiered storm modes, ordered by severity; comparisons rely on the order.
enum class DegradationMode : std::uint8_t {
  kNormal = 0,      // everything flows
  kShedBulk = 1,    // bulk dropped at the ingest door
  kSummarize = 2,   // + standard downsampled-on-ingest (per-series stride)
  kQuarantine = 3,  // + standard shed entirely; only critical flows
};
inline constexpr std::size_t kDegradationModes = 4;

std::string_view to_string(Priority p);
std::string_view to_string(DegradationMode m);
/// Parse "critical" / "standard" / "bulk"; anything else returns `dflt`.
Priority priority_from_string(std::string_view name, Priority dflt);

}  // namespace hpcmon::core
