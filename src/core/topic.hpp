// AMQP-style topic matching over dot-separated segments.
//
// Factored out of transport::Bus so every layer that routes by dotted name
// shares ONE matcher with ONE set of semantics: the in-process Bus bindings
// and the serve tier's live-subscription patterns (a network client
// subscribing to "node.power_w.#" must match exactly what a Bus binding
// would). Semantics: '#' matches zero or more whole segments; within a
// segment, '*' and '?' glob without crossing dots, so a bare '*' segment
// matches exactly one segment. Empty segments (from "a..b" or a leading /
// trailing dot) are ordinary zero-length segments: only another empty
// segment, '*', '?'-free globs matching "", or '#' can match them.
#pragma once

#include <string_view>

namespace hpcmon::core {

/// True when `topic` matches the pattern (see file comment for semantics).
bool topic_match(std::string_view pattern, std::string_view topic);

}  // namespace hpcmon::core
