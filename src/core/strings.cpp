#include "core/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace hpcmon::core {

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const auto pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) out += sep;
    out += pieces[i];
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool glob_match(std::string_view pattern, std::string_view text) {
  // Iterative two-pointer match with backtracking over the last '*'.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, match = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      match = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++match;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::vector<std::string> tokenize_words(std::string_view s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
        c == '.') {
      cur += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!cur.empty()) {
      out.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

std::string strformat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace hpcmon::core
