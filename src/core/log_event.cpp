#include "core/log_event.hpp"

namespace hpcmon::core {

std::string_view to_string(Severity s) {
  switch (s) {
    case Severity::kEmergency: return "emerg";
    case Severity::kAlert: return "alert";
    case Severity::kCritical: return "crit";
    case Severity::kError: return "err";
    case Severity::kWarning: return "warning";
    case Severity::kNotice: return "notice";
    case Severity::kInfo: return "info";
    case Severity::kDebug: return "debug";
  }
  return "unknown";
}

std::string_view to_string(LogFacility f) {
  switch (f) {
    case LogFacility::kConsole: return "console";
    case LogFacility::kHardware: return "hardware";
    case LogFacility::kNetwork: return "network";
    case LogFacility::kFilesystem: return "filesystem";
    case LogFacility::kScheduler: return "scheduler";
    case LogFacility::kPower: return "power";
    case LogFacility::kHealth: return "health";
    case LogFacility::kFacilityEnv: return "facility_env";
  }
  return "unknown";
}

}  // namespace hpcmon::core
