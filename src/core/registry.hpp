// MetricRegistry: interns (metric name, component) pairs to dense SeriesIds
// and component names to dense ComponentIds.
//
// Table I requires that "the meaning of all raw data should be provided";
// every metric registered here carries units and a free-text description, and
// the registry can dump a data dictionary (see describe_all()).
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/ids.hpp"
#include "core/priority.hpp"

namespace hpcmon::core {

/// Metadata describing one metric family (e.g. "power_w" exists once per
/// cabinet; each (metric, component) pair is a distinct series).
struct MetricInfo {
  std::string name;         // e.g. "hsn.link.stalls"
  std::string units;        // e.g. "stalls/s"
  std::string description;  // Table I: "the meaning of all raw data"
  bool is_counter = false;  // monotonically increasing raw counter?
  /// Shedding class under storm load (priority.hpp); like the rest of the
  /// metadata, the first registration wins and the class is then immutable.
  Priority priority = Priority::kStandard;
};

/// Metadata describing one component instance.
struct ComponentInfo {
  std::string name;  // e.g. "c0-0c1s3n2" (Cray cname style) or "ost.12"
  ComponentKind kind = ComponentKind::kNode;
  ComponentId parent = kNoComponent;  // physical containment
};

/// Thread-safe interning registry. Ids are dense and stable for the lifetime
/// of the registry, so stores can use them as vector indices.
class MetricRegistry {
 public:
  /// Register (or look up) a metric family. Re-registering the same name
  /// returns the original index; metadata from the first call wins.
  std::uint32_t register_metric(const MetricInfo& info);

  /// Register (or look up) a component. Name must be unique system-wide.
  ComponentId register_component(const ComponentInfo& info);

  /// Intern the series for (metric, component), creating it on first use.
  SeriesId series(std::uint32_t metric_index, ComponentId component);

  /// Convenience: register metric by name with empty metadata + get series.
  SeriesId series(std::string_view metric_name, ComponentId component);

  std::optional<std::uint32_t> find_metric(std::string_view name) const;
  std::optional<ComponentId> find_component(std::string_view name) const;

  const MetricInfo& metric(std::uint32_t index) const;
  const ComponentInfo& component(ComponentId id) const;
  /// Metric/component of an interned series.
  std::uint32_t series_metric(SeriesId id) const;
  ComponentId series_component(SeriesId id) const;
  /// Shedding class of an interned series (its metric family's priority).
  Priority series_priority(SeriesId id) const;
  /// "metric@component" label for reports.
  std::string series_name(SeriesId id) const;

  std::size_t metric_count() const;
  std::size_t component_count() const;
  std::size_t series_count() const;

  /// All components of a given kind (e.g. every cabinet for Fig 3 panels).
  std::vector<ComponentId> components_of_kind(ComponentKind kind) const;
  /// Direct children of a component in the containment tree.
  std::vector<ComponentId> children_of(ComponentId parent) const;

  /// Render the full data dictionary (one line per metric family).
  std::string describe_all() const;

 private:
  struct SeriesRec {
    std::uint32_t metric = 0;
    ComponentId component = kNoComponent;
  };

  mutable std::mutex mu_;
  std::vector<MetricInfo> metrics_;
  std::unordered_map<std::string, std::uint32_t> metric_by_name_;
  std::vector<ComponentInfo> components_;
  std::unordered_map<std::string, ComponentId> component_by_name_;
  std::vector<SeriesRec> series_;
  std::unordered_map<std::uint64_t, SeriesId> series_by_key_;
};

}  // namespace hpcmon::core
