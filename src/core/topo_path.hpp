// TopoPath: the machine-topology address of a component, in Cray cname form.
//
// The sim's topology names components "c<cab>-<row>", "c<cab>-<row>c<ch>",
// "c<cab>-<row>c<ch>s<slot>", "c<cab>-<row>c<ch>s<slot>n<node>" (cabinet ->
// chassis -> blade -> node), and several layers used to re-derive the same
// strings and the same dense node-index arithmetic independently
// (sim/topology.cpp registering components, viz/heatmap.cpp mapping grid
// cells back to node indices). This is the one shared parser/formatter:
// parse a cname into its level coordinates, format coordinates back into the
// canonical cname, and convert between a node path and the registry's dense
// node index given the machine dimensions.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace hpcmon::core {

struct TopoPath {
  /// Depth of the deepest coordinate present. kSystem is the empty path
  /// (every coordinate -1), formatted as "system" — the registry's root.
  enum class Level { kSystem = 0, kCabinet, kChassis, kBlade, kNode };

  /// The machine dimensions needed for dense-index arithmetic; agrees field
  /// for field with sim::MachineShape (which can't be included here — core
  /// sits below sim).
  struct Dims {
    int chassis_per_cabinet = 1;
    int blades_per_chassis = 1;
    int nodes_per_blade = 1;
  };

  int cabinet = -1;
  int row = 0;  // every hpcmon machine is single-row today; kept for parse fidelity
  int chassis = -1;
  int slot = -1;  // blade slot within the chassis
  int node = -1;  // node within the blade

  friend bool operator==(const TopoPath&, const TopoPath&) = default;

  Level level() const;

  /// A path is valid when its coordinates are a non-negative prefix of
  /// (cabinet, chassis, slot, node) — a deeper coordinate never appears
  /// without every shallower one.
  bool valid() const;

  /// Canonical cname for this level ("system", "c3-0", "c3-0c2", "c3-0c2s5",
  /// "c3-0c2s5n1").
  std::string format() const;

  /// Parse a canonical cname (or "system") back into a path. Rejects
  /// trailing garbage, missing coordinates, and out-of-order levels.
  static std::optional<TopoPath> parse(std::string_view cname);

  // -- Dense-index arithmetic (registration order: cabinet-major) ------------

  /// Path of the i-th node in the registry's dense node block.
  static TopoPath of_node_index(int node_index, const Dims& dims);

  /// Dense node index of a node-level path; -1 for shallower levels or
  /// coordinates outside `dims`.
  int node_index(const Dims& dims) const;

  /// Dense blade index (cabinet-major) for blade-or-deeper paths; -1
  /// otherwise.
  int blade_index(const Dims& dims) const;
};

}  // namespace hpcmon::core
