// Socket fault-injection interface.
//
// The relay tier must be provably robust against the network failing exactly
// when the monitored system does (the paper's transport sections; no vendor
// transport guarantees delivery). Proving "at-least-once, exactly-applied"
// requires injecting connection resets, stalls, partial writes, short reads
// and torn frames at every socket operation of both ends of the wire. Like
// FsFaultInjector, the interface lives in core so serve and relay can consult
// it without depending on the resilience tier (which implements it in
// FaultPlan); production code passes nullptr and pays nothing.
//
// Contract: callers consult socket_fault(op) immediately BEFORE performing
// the real syscall. Each consultation advances the injector's single
// socket-op schedule, so a scripted "reset at op N" lands on a precise step
// of a send/ack exchange — the resume battery sweeps N over every op of a
// relay session. Faults map onto the syscall as follows:
//
//   kReset      connect/send/recv fails as if the peer reset (the caller
//               additionally tears down the socket so the peer observes it)
//   kStall      the operation is delayed a bounded interval, then proceeds
//               (models latency spikes; deadlines must absorb it)
//   kShortWrite send transmits only a prefix and reports the short count
//               (benign fragmentation; framing must reassemble)
//   kShortRead  recv returns fewer bytes than available (same, read side)
//   kTornFrame  send transmits a prefix, then the connection dies — the
//               peer is left holding a torn frame it must discard
#pragma once

#include <cstdint>
#include <string_view>

namespace hpcmon::core {

/// The socket operation about to be performed.
enum class SocketOp : std::uint8_t { kConnect, kSend, kRecv };

/// What the injector wants to happen instead.
enum class SocketFault : std::uint8_t {
  kNone,        // perform the operation normally
  kReset,       // fail as a peer reset would (ECONNRESET)
  kStall,       // delay the operation, then perform it normally
  kShortWrite,  // transmit a prefix only, report the short count (send)
  kShortRead,   // deliver fewer bytes than available (recv)
  kTornFrame,   // transmit a prefix, then kill the connection (send)
};

constexpr std::string_view to_string(SocketOp op) {
  switch (op) {
    case SocketOp::kConnect: return "connect";
    case SocketOp::kSend: return "send";
    case SocketOp::kRecv: return "recv";
  }
  return "?";
}

constexpr std::string_view to_string(SocketFault f) {
  switch (f) {
    case SocketFault::kNone: return "none";
    case SocketFault::kReset: return "reset";
    case SocketFault::kStall: return "stall";
    case SocketFault::kShortWrite: return "short_write";
    case SocketFault::kShortRead: return "short_read";
    case SocketFault::kTornFrame: return "torn_frame";
  }
  return "?";
}

/// Consulted before every physical socket operation of fault-aware network
/// code. Implementations must be thread-safe (the relay worker and the serve
/// reactor/writer threads draw from one shared schedule).
class SocketFaultInjector {
 public:
  virtual ~SocketFaultInjector() = default;
  virtual SocketFault socket_fault(SocketOp op) = 0;
};

}  // namespace hpcmon::core
