#include "core/priority.hpp"

namespace hpcmon::core {

std::string_view to_string(Priority p) {
  switch (p) {
    case Priority::kCritical: return "critical";
    case Priority::kStandard: return "standard";
    case Priority::kBulk: return "bulk";
  }
  return "?";
}

std::string_view to_string(DegradationMode m) {
  switch (m) {
    case DegradationMode::kNormal: return "NORMAL";
    case DegradationMode::kShedBulk: return "SHED_BULK";
    case DegradationMode::kSummarize: return "SUMMARIZE";
    case DegradationMode::kQuarantine: return "QUARANTINE";
  }
  return "?";
}

Priority priority_from_string(std::string_view name, Priority dflt) {
  if (name == "critical") return Priority::kCritical;
  if (name == "standard") return Priority::kStandard;
  if (name == "bulk") return Priority::kBulk;
  return dflt;
}

}  // namespace hpcmon::core
