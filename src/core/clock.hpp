// Simulation clocks.
//
// SimClock is the single global timeline the simulator advances. DriftClock
// models a component's local oscillator: reading it returns global time plus
// an accumulated offset (constant skew + random-walk jitter). The paper
// (Sec. III-A) notes that "local clock drift can result in erroneous
// associations" when events are timestamped locally; samplers can stamp with
// either clock so the ablation bench can quantify the damage and the
// correlator's tolerance can be validated.
#pragma once

#include <cassert>

#include "core/rng.hpp"
#include "core/time.hpp"

namespace hpcmon::core {

/// The authoritative simulated timeline. Monotonically advanced by the DES.
class SimClock {
 public:
  TimePoint now() const { return now_; }

  /// Advance to an absolute time; never goes backwards.
  void advance_to(TimePoint t) {
    assert(t >= now_);
    now_ = t;
  }
  void advance_by(Duration d) { advance_to(now_ + d); }

 private:
  TimePoint now_ = 0;
};

/// A drifting local view of the global clock.
///
/// local(t) = t + offset0 + skew_ppm * 1e-6 * t + random_walk(t)
/// The random walk steps once per step_interval with N(0, step_sigma).
class DriftClock {
 public:
  struct Params {
    Duration offset0 = 0;        // initial offset
    double skew_ppm = 0.0;       // constant frequency error, parts-per-million
    Duration walk_step = kMinute;  // random-walk step interval
    Duration walk_sigma = 0;     // per-step stddev of the walk
  };

  DriftClock() = default;
  DriftClock(Params params, Rng rng) : params_(params), rng_(rng) {}

  /// Local timestamp a device with this clock would stamp at global time t.
  /// Must be called with non-decreasing t (the walk advances statefully).
  TimePoint local_time(TimePoint global) {
    advance_walk(global);
    const double skew = params_.skew_ppm * 1e-6 * static_cast<double>(global);
    return global + params_.offset0 + static_cast<TimePoint>(skew) + walk_;
  }

  /// Current total offset (local - global) at the last queried instant.
  Duration current_offset(TimePoint global) {
    return local_time(global) - global;
  }

 private:
  void advance_walk(TimePoint global) {
    if (params_.walk_sigma == 0) return;
    while (last_step_ + params_.walk_step <= global) {
      last_step_ += params_.walk_step;
      walk_ += static_cast<Duration>(
          rng_.normal(0.0, static_cast<double>(params_.walk_sigma)));
    }
  }

  Params params_;
  Rng rng_;
  Duration walk_ = 0;
  TimePoint last_step_ = 0;
};

}  // namespace hpcmon::core
