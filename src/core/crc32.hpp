// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320).
//
// Used by the resilience tier to frame write-ahead-log records so that a
// torn or bit-flipped record is detected on replay instead of silently
// corrupting the restored hot tier (the paper's Table I "Data Storage" row:
// stores must be trustworthy across restarts).
#pragma once

#include <cstddef>
#include <cstdint>

namespace hpcmon::core {

/// Checksum `len` bytes; `seed` allows incremental computation by passing a
/// previous result (standard init/final XOR handled internally).
std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed = 0);

}  // namespace hpcmon::core
