// The fundamental numeric telemetry record.
//
// Table I (Data Sources) requires "traditional text (e.g., logs), numeric
// (e.g., counters) sources, as well as test results". Numeric data flows
// through hpcmon as Sample records; text flows as LogEvent (log_event.hpp);
// probe/test results are Samples on probe metrics plus LogEvents on failure.
#pragma once

#include <vector>

#include "core/ids.hpp"
#include "core/time.hpp"

namespace hpcmon::core {

/// One observation of one series at one instant.
struct Sample {
  SeriesId series{0};
  TimePoint time = 0;
  double value = 0.0;

  friend bool operator==(const Sample&, const Sample&) = default;
};

/// A batch of samples that share a collection sweep. Samplers emit batches so
/// that transports can frame, compress, and route them as a unit.
struct SampleBatch {
  /// Scheduled (synchronized) collection time of the sweep.
  TimePoint sweep_time = 0;
  /// Component that produced the batch (e.g. the node a sampler ran on).
  ComponentId origin = kNoComponent;
  std::vector<Sample> samples;

  bool empty() const { return samples.empty(); }
  std::size_t size() const { return samples.size(); }
};

}  // namespace hpcmon::core
