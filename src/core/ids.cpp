#include "core/ids.hpp"

namespace hpcmon::core {

std::string_view to_string(ComponentKind kind) {
  switch (kind) {
    case ComponentKind::kSystem: return "system";
    case ComponentKind::kCabinet: return "cabinet";
    case ComponentKind::kChassis: return "chassis";
    case ComponentKind::kBlade: return "blade";
    case ComponentKind::kNode: return "node";
    case ComponentKind::kGpu: return "gpu";
    case ComponentKind::kHsnLink: return "hsn_link";
    case ComponentKind::kHsnRouter: return "hsn_router";
    case ComponentKind::kFsTarget: return "fs_target";
    case ComponentKind::kFacility: return "facility";
    case ComponentKind::kService: return "service";
  }
  return "unknown";
}

}  // namespace hpcmon::core
