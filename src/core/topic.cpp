#include "core/topic.hpp"

#include <cstddef>
#include <vector>

#include "core/strings.hpp"

namespace hpcmon::core {

namespace {
// Recursive segment matcher; pattern/topic segment lists are short (a topic
// has a handful of dot-separated parts), so backtracking over '#' is cheap.
bool segments_match(const std::vector<std::string_view>& pat, std::size_t pi,
                    const std::vector<std::string_view>& top, std::size_t ti) {
  if (pi == pat.size()) return ti == top.size();
  if (pat[pi] == "#") {
    // '#' consumes zero or more whole segments.
    for (std::size_t k = ti; k <= top.size(); ++k) {
      if (segments_match(pat, pi + 1, top, k)) return true;
    }
    return false;
  }
  if (ti == top.size()) return false;
  if (!glob_match(pat[pi], top[ti])) return false;
  return segments_match(pat, pi + 1, top, ti + 1);
}
}  // namespace

bool topic_match(std::string_view pattern, std::string_view topic) {
  return segments_match(split(pattern, '.'), 0, split(topic, '.'), 0);
}

}  // namespace hpcmon::core
