#include "resilience/fault.hpp"

#include <stdexcept>

namespace hpcmon::resilience {

FaultPlan::FaultPlan(std::uint64_t seed, FaultSpec spec)
    : rng_(seed), spec_(spec) {}

void FaultPlan::set_spec(FaultSpec spec) {
  std::scoped_lock lock(mu_);
  spec_ = spec;
}

FaultSpec FaultPlan::spec() const {
  std::scoped_lock lock(mu_);
  return spec_;
}

bool FaultPlan::draw(double p, std::uint64_t& counter, std::uint64_t at,
                     std::uint64_t& injected_counter, bool sticky) {
  ++counter;
  bool fire = at != 0 && (counter == at || (sticky && counter > at));
  if (!fire && p > 0.0) fire = rng_.bernoulli(p);
  if (fire) ++injected_counter;
  return fire;
}

bool FaultPlan::sampler_error() {
  std::scoped_lock lock(mu_);
  return draw(spec_.sampler_error_p, sampler_error_ops_,
              spec_.sampler_error_at, injected_.sampler_errors);
}

bool FaultPlan::sampler_hang() {
  std::scoped_lock lock(mu_);
  return draw(spec_.sampler_hang_p, sampler_hang_ops_, spec_.sampler_hang_at,
              injected_.sampler_hangs, spec_.sampler_hang_sticky);
}

core::FsFault FaultPlan::fs_fault(core::FsOp op) {
  std::scoped_lock lock(mu_);
  ++fs_ops_;
  const auto at = [&](std::uint64_t n) { return n != 0 && fs_ops_ == n; };
  const auto p = [&](double prob) { return prob > 0.0 && rng_.bernoulli(prob); };
  // At most one fault per op; scripted one-shots and the most disruptive
  // classes win. Applicability: short writes only tear kWrite; rename
  // errors only hit kRename; ENOSPC hits the space-consuming ops; generic
  // errors and crashes hit everything.
  if (at(spec_.fs_crash_at) || p(spec_.fs_crash_p)) {
    ++injected_.fs_crashes;
    return core::FsFault::kCrash;
  }
  if (op == core::FsOp::kRename &&
      (at(spec_.fs_rename_error_at) || p(spec_.fs_rename_error_p))) {
    ++injected_.fs_rename_errors;
    return core::FsFault::kError;
  }
  if (op == core::FsOp::kWrite &&
      (at(spec_.fs_short_write_at) || p(spec_.fs_short_write_p))) {
    ++injected_.fs_short_writes;
    return core::FsFault::kShortWrite;
  }
  if ((op == core::FsOp::kOpen || op == core::FsOp::kWrite ||
       op == core::FsOp::kFsync) &&
      (at(spec_.fs_enospc_at) || p(spec_.fs_enospc_p))) {
    ++injected_.fs_enospc;
    return core::FsFault::kEnospc;
  }
  if (at(spec_.fs_error_at) || p(spec_.fs_error_p)) {
    ++injected_.fs_errors;
    return core::FsFault::kError;
  }
  return core::FsFault::kNone;
}

std::uint64_t FaultPlan::fs_ops() const {
  std::scoped_lock lock(mu_);
  return fs_ops_;
}

core::SocketFault FaultPlan::socket_fault(core::SocketOp op) {
  std::scoped_lock lock(mu_);
  ++sock_ops_;
  const auto at = [&](std::uint64_t n) { return n != 0 && sock_ops_ == n; };
  const auto p = [&](double prob) { return prob > 0.0 && rng_.bernoulli(prob); };
  // At most one fault per op; scripted one-shots and the most disruptive
  // classes win. Applicability: torn frames and short writes only mangle
  // kSend; short reads only hit kRecv; resets and stalls hit everything.
  if (at(spec_.sock_reset_at) || p(spec_.sock_reset_p)) {
    ++injected_.sock_resets;
    return core::SocketFault::kReset;
  }
  if (op == core::SocketOp::kSend &&
      (at(spec_.sock_torn_frame_at) || p(spec_.sock_torn_frame_p))) {
    ++injected_.sock_torn_frames;
    return core::SocketFault::kTornFrame;
  }
  if (op == core::SocketOp::kSend &&
      (at(spec_.sock_short_write_at) || p(spec_.sock_short_write_p))) {
    ++injected_.sock_short_writes;
    return core::SocketFault::kShortWrite;
  }
  if (op == core::SocketOp::kRecv &&
      (at(spec_.sock_short_read_at) || p(spec_.sock_short_read_p))) {
    ++injected_.sock_short_reads;
    return core::SocketFault::kShortRead;
  }
  if (at(spec_.sock_stall_at) || p(spec_.sock_stall_p)) {
    ++injected_.sock_stalls;
    return core::SocketFault::kStall;
  }
  return core::SocketFault::kNone;
}

std::uint64_t FaultPlan::socket_ops() const {
  std::scoped_lock lock(mu_);
  return sock_ops_;
}

bool FaultPlan::delivery_error() {
  std::scoped_lock lock(mu_);
  return draw(spec_.delivery_error_p, delivery_ops_, spec_.delivery_error_at,
              injected_.delivery_errors);
}

void FaultPlan::enter_hang() {
  std::unique_lock lock(mu_);
  if (released_) return;
  ++hanging_;
  hang_cv_.wait(lock, [&] { return released_; });
  --hanging_;
  hang_cv_.notify_all();
}

void FaultPlan::release_hangs() {
  std::unique_lock lock(mu_);
  released_ = true;
  hang_cv_.notify_all();
  hang_cv_.wait(lock, [&] { return hanging_ == 0; });
}

std::size_t FaultPlan::active_hangs() const {
  std::scoped_lock lock(mu_);
  return hanging_;
}

InjectedFaults FaultPlan::injected() const {
  std::scoped_lock lock(mu_);
  return injected_;
}

void FaultySampler::sample(core::TimePoint sweep_time, core::SampleBatch& out) {
  if (plan_.sampler_hang()) {
    plan_.enter_hang();
    return;  // released long after the sweep: contributes nothing
  }
  if (plan_.sampler_error()) {
    throw std::runtime_error("injected sampler fault: " + inner_->name());
  }
  inner_->sample(sweep_time, out);
}

}  // namespace hpcmon::resilience
