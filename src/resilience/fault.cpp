#include "resilience/fault.hpp"

#include <stdexcept>

namespace hpcmon::resilience {

FaultPlan::FaultPlan(std::uint64_t seed, FaultSpec spec)
    : rng_(seed), spec_(spec) {}

void FaultPlan::set_spec(FaultSpec spec) {
  std::scoped_lock lock(mu_);
  spec_ = spec;
}

FaultSpec FaultPlan::spec() const {
  std::scoped_lock lock(mu_);
  return spec_;
}

bool FaultPlan::draw(double p, std::uint64_t& counter, std::uint64_t at,
                     std::uint64_t& injected_counter, bool sticky) {
  ++counter;
  bool fire = at != 0 && (counter == at || (sticky && counter > at));
  if (!fire && p > 0.0) fire = rng_.bernoulli(p);
  if (fire) ++injected_counter;
  return fire;
}

bool FaultPlan::sampler_error() {
  std::scoped_lock lock(mu_);
  return draw(spec_.sampler_error_p, sampler_error_ops_,
              spec_.sampler_error_at, injected_.sampler_errors);
}

bool FaultPlan::sampler_hang() {
  std::scoped_lock lock(mu_);
  return draw(spec_.sampler_hang_p, sampler_hang_ops_, spec_.sampler_hang_at,
              injected_.sampler_hangs, spec_.sampler_hang_sticky);
}

WalFault FaultPlan::wal_fault() {
  std::scoped_lock lock(mu_);
  ++wal_ops_;
  const bool short_at = spec_.wal_short_write_at != 0 &&
                        wal_ops_ == spec_.wal_short_write_at;
  const bool error_at = spec_.wal_error_at != 0 && wal_ops_ == spec_.wal_error_at;
  if (short_at || (spec_.wal_short_write_p > 0.0 &&
                   rng_.bernoulli(spec_.wal_short_write_p))) {
    ++injected_.wal_short_writes;
    return WalFault::kShortWrite;
  }
  if (error_at || (spec_.wal_error_p > 0.0 && rng_.bernoulli(spec_.wal_error_p))) {
    ++injected_.wal_errors;
    return WalFault::kError;
  }
  return WalFault::kNone;
}

bool FaultPlan::delivery_error() {
  std::scoped_lock lock(mu_);
  return draw(spec_.delivery_error_p, delivery_ops_, spec_.delivery_error_at,
              injected_.delivery_errors);
}

void FaultPlan::enter_hang() {
  std::unique_lock lock(mu_);
  if (released_) return;
  ++hanging_;
  hang_cv_.wait(lock, [&] { return released_; });
  --hanging_;
  hang_cv_.notify_all();
}

void FaultPlan::release_hangs() {
  std::unique_lock lock(mu_);
  released_ = true;
  hang_cv_.notify_all();
  hang_cv_.wait(lock, [&] { return hanging_ == 0; });
}

std::size_t FaultPlan::active_hangs() const {
  std::scoped_lock lock(mu_);
  return hanging_;
}

InjectedFaults FaultPlan::injected() const {
  std::scoped_lock lock(mu_);
  return injected_;
}

void FaultySampler::sample(core::TimePoint sweep_time, core::SampleBatch& out) {
  if (plan_.sampler_hang()) {
    plan_.enter_hang();
    return;  // released long after the sweep: contributes nothing
  }
  if (plan_.sampler_error()) {
    throw std::runtime_error("injected sampler fault: " + inner_->name());
  }
  inner_->sample(sweep_time, out);
}

}  // namespace hpcmon::resilience
