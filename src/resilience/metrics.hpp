// Resilience tier self-telemetry: re-emit every counter as resilience.*
// series, following the ingest tier's monitor-the-monitor pattern.
//
// Table I requires that losses and degradations be "well-documented"; the
// resilience counters (WAL appends/failures/truncations, replay recoveries,
// breaker quarantines, delivery retries/dead letters) are re-ingested
// through the normal pipeline so operators see their monitoring's own
// durability and supervision state on the same dashboards as the machine.
#pragma once

#include <vector>

#include "core/registry.hpp"
#include "core/sample.hpp"
#include "resilience/delivery.hpp"
#include "resilience/supervisor.hpp"
#include "resilience/wal.hpp"

namespace hpcmon::resilience {

/// Build resilience.* samples at simulated time `now` on `component`.
/// Any stats pointer may be null (that subsystem is disabled); counters are
/// cumulative (is_counter = true), state summaries are gauges.
std::vector<core::Sample> resilience_samples(core::MetricRegistry& registry,
                                             core::ComponentId component,
                                             core::TimePoint now,
                                             const WalStats* wal,
                                             const ReplayStats* replay,
                                             const SupervisorStats* supervisor,
                                             const DeliveryStats* delivery);

}  // namespace hpcmon::resilience
