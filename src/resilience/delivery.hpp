// ReliableDelivery: retry + bounded dead-letter queue for frame delivery.
//
// Sec. IV's transport war stories (NERSC's RabbitMQ pipeline, ALCF's
// reverse-engineered ERD) converge on the same requirement: forwarding must
// retry transient failures, give up visibly (never silently), and bound the
// memory a dead downstream can consume. ReliableDelivery wraps any
// frame-delivery function: each deliver() makes up to max_attempts tries
// (with optional real-time backoff between tries — kept at 0 in
// deterministic tests); exhausted frames land in a bounded dead-letter
// queue, evicting the oldest dead letter when full. Every retry, failure,
// dead-letter and eviction is counted (Table I: the transport's impact
// "should be well-documented"). redeliver() retries the queue once the
// downstream recovers.
//
// A delivery function that throws is treated exactly like one that returns
// an error Status, so a misbehaving downstream subscriber cannot unwind the
// publisher.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "core/result.hpp"
#include "obs/registry.hpp"
#include "transport/codec.hpp"

namespace hpcmon::resilience {

class FaultPlan;

struct DeliveryOptions {
  int max_attempts = 3;     // tries per frame before dead-lettering
  int backoff_ms = 0;       // real sleep between tries: backoff_ms * 2^(n-1)
  std::size_t dead_letter_cap = 64;
};

/// Typed view over the delivery instruments.
struct DeliveryStats {
  std::uint64_t delivered = 0;     // frames that eventually got through
  std::uint64_t retries = 0;       // extra attempts beyond the first
  std::uint64_t failures = 0;      // frames that exhausted every attempt
  std::uint64_t dead_lettered = 0;
  std::uint64_t evicted = 0;       // oldest dead letters pushed out by cap
  std::uint64_t redelivered = 0;   // dead letters later delivered
};

class ReliableDelivery {
 public:
  using DeliverFn = std::function<core::Status(const transport::Frame&)>;

  explicit ReliableDelivery(DeliverFn fn, DeliveryOptions options = {});

  /// Deliver with retries; on exhaustion the frame is dead-lettered.
  /// Returns true if the frame was delivered.
  bool deliver(const transport::Frame& frame);

  /// One redelivery attempt per queued dead letter (no retries within);
  /// successes leave the queue. Returns the number redelivered.
  std::size_t redeliver();

  std::size_t dead_letter_count() const { return dead_letters_.size(); }
  const std::deque<transport::Frame>& dead_letters() const {
    return dead_letters_;
  }
  DeliveryStats stats() const;
  const DeliveryOptions& options() const { return options_; }
  /// Catalog the delivery counters and the live DLQ fill gauge as
  /// resilience.* in `registry`.
  void attach_to(obs::ObsRegistry& registry) const;

 private:
  core::Status attempt(const transport::Frame& frame);

  void update_dlq_fill() {
    dlq_fill_.set(options_.dead_letter_cap == 0
                      ? 0.0
                      : static_cast<double>(dead_letters_.size()) /
                            static_cast<double>(options_.dead_letter_cap));
  }

  DeliverFn fn_;
  DeliveryOptions options_;
  std::deque<transport::Frame> dead_letters_;
  obs::Counter delivered_;
  obs::Counter retries_;
  obs::Counter failures_;
  obs::Counter dead_lettered_;
  obs::Counter evicted_;
  obs::Counter redelivered_;
  obs::Gauge dlq_fill_;  // dead letters / cap, refreshed on every change
};

/// Wrap a delivery function with FaultPlan-injected failures (for driving
/// the retry/dead-letter machinery in tests and benches).
ReliableDelivery::DeliverFn faulty_deliver(ReliableDelivery::DeliverFn inner,
                                           FaultPlan& plan);

}  // namespace hpcmon::resilience
