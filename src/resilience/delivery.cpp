#include "resilience/delivery.hpp"

#include <chrono>
#include <thread>

#include "resilience/fault.hpp"

namespace hpcmon::resilience {

using core::Status;

ReliableDelivery::ReliableDelivery(DeliverFn fn, DeliveryOptions options)
    : fn_(std::move(fn)), options_(options) {
  if (options_.max_attempts < 1) options_.max_attempts = 1;
}

Status ReliableDelivery::attempt(const transport::Frame& frame) {
  try {
    return fn_(frame);
  } catch (const std::exception& e) {
    return Status::error(std::string("delivery threw: ") + e.what());
  }
}

bool ReliableDelivery::deliver(const transport::Frame& frame) {
  for (int n = 0; n < options_.max_attempts; ++n) {
    if (n > 0) {
      retries_.add();
      if (options_.backoff_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options_.backoff_ms << (n - 1)));
      }
    }
    if (attempt(frame).is_ok()) {
      delivered_.add();
      return true;
    }
  }
  failures_.add();
  if (options_.dead_letter_cap > 0) {
    if (dead_letters_.size() >= options_.dead_letter_cap) {
      // Priority-aware eviction: a full queue makes room by dropping the
      // oldest frame of the LOWEST priority present (bulk before standard
      // before critical), so a bulk flood can never push a critical frame
      // out of its last durable refuge. When everything parked outranks the
      // newcomer, the newcomer is the one turned away.
      auto victim = dead_letters_.begin();
      for (auto it = dead_letters_.begin(); it != dead_letters_.end(); ++it) {
        if (it->priority > victim->priority) victim = it;
      }
      if (victim->priority < frame.priority) {
        evicted_.add();
        update_dlq_fill();
        return false;  // incoming frame is the lowest priority in sight
      }
      dead_letters_.erase(victim);
      evicted_.add();
    }
    dead_letters_.push_back(frame);
    dead_lettered_.add();
    update_dlq_fill();
  }
  return false;
}

std::size_t ReliableDelivery::redeliver() {
  std::size_t ok = 0;
  const std::size_t pending = dead_letters_.size();
  for (std::size_t i = 0; i < pending; ++i) {
    transport::Frame frame = std::move(dead_letters_.front());
    dead_letters_.pop_front();
    if (attempt(frame).is_ok()) {
      ++ok;
      redelivered_.add();
    } else {
      dead_letters_.push_back(std::move(frame));  // keep, retry later
    }
  }
  update_dlq_fill();
  return ok;
}

DeliveryStats ReliableDelivery::stats() const {
  DeliveryStats s;
  s.delivered = delivered_.value();
  s.retries = retries_.value();
  s.failures = failures_.value();
  s.dead_lettered = dead_lettered_.value();
  s.evicted = evicted_.value();
  s.redelivered = redelivered_.value();
  return s;
}

void ReliableDelivery::attach_to(obs::ObsRegistry& registry) const {
  registry.attach({"resilience.delivered_frames", "frames",
                   "frames that eventually got through"},
                  &delivered_);
  registry.attach({"resilience.delivery_retries", "attempts",
                   "extra delivery attempts beyond the first"},
                  &retries_);
  registry.attach({"resilience.delivery_failures", "frames",
                   "frames that exhausted every delivery attempt"},
                  &failures_);
  registry.attach({"resilience.dead_letters", "frames",
                   "frames parked in the dead-letter queue (cumulative)"},
                  &dead_lettered_);
  registry.attach({"resilience.dead_letter_evictions", "frames",
                   "dead letters evicted by the bounded queue"},
                  &evicted_);
  registry.attach({"resilience.redelivered", "frames",
                   "dead letters successfully redelivered"},
                  &redelivered_);
  obs::InstrumentInfo fill;
  fill.name = "resilience.dlq_fill";
  fill.unit = "frac";
  fill.description = "dead-letter queue occupancy / capacity";
  fill.gauge_agg = obs::GaugeAgg::kMax;
  registry.attach(fill, &dlq_fill_);
}

ReliableDelivery::DeliverFn faulty_deliver(ReliableDelivery::DeliverFn inner,
                                           FaultPlan& plan) {
  return [inner = std::move(inner), &plan](const transport::Frame& frame) {
    if (plan.delivery_error()) {
      return Status::error("injected delivery fault");
    }
    return inner(frame);
  };
}

}  // namespace hpcmon::resilience
