#include "resilience/delivery.hpp"

#include <chrono>
#include <thread>

#include "core/strings.hpp"
#include "resilience/fault.hpp"

namespace hpcmon::resilience {

using core::Status;

std::string DeliveryStats::to_string() const {
  return core::strformat(
      "dlv ok=%llu retry=%llu fail=%llu dlq=%llu evict=%llu redlv=%llu",
      static_cast<unsigned long long>(delivered),
      static_cast<unsigned long long>(retries),
      static_cast<unsigned long long>(failures),
      static_cast<unsigned long long>(dead_lettered),
      static_cast<unsigned long long>(evicted),
      static_cast<unsigned long long>(redelivered));
}

ReliableDelivery::ReliableDelivery(DeliverFn fn, DeliveryOptions options)
    : fn_(std::move(fn)), options_(options) {
  if (options_.max_attempts < 1) options_.max_attempts = 1;
}

Status ReliableDelivery::attempt(const transport::Frame& frame) {
  try {
    return fn_(frame);
  } catch (const std::exception& e) {
    return Status::error(std::string("delivery threw: ") + e.what());
  }
}

bool ReliableDelivery::deliver(const transport::Frame& frame) {
  for (int n = 0; n < options_.max_attempts; ++n) {
    if (n > 0) {
      ++stats_.retries;
      if (options_.backoff_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options_.backoff_ms << (n - 1)));
      }
    }
    if (attempt(frame).is_ok()) {
      ++stats_.delivered;
      return true;
    }
  }
  ++stats_.failures;
  if (options_.dead_letter_cap > 0) {
    if (dead_letters_.size() >= options_.dead_letter_cap) {
      dead_letters_.pop_front();
      ++stats_.evicted;
    }
    dead_letters_.push_back(frame);
    ++stats_.dead_lettered;
  }
  return false;
}

std::size_t ReliableDelivery::redeliver() {
  std::size_t ok = 0;
  const std::size_t pending = dead_letters_.size();
  for (std::size_t i = 0; i < pending; ++i) {
    transport::Frame frame = std::move(dead_letters_.front());
    dead_letters_.pop_front();
    if (attempt(frame).is_ok()) {
      ++ok;
      ++stats_.redelivered;
    } else {
      dead_letters_.push_back(std::move(frame));  // keep, retry later
    }
  }
  return ok;
}

ReliableDelivery::DeliverFn faulty_deliver(ReliableDelivery::DeliverFn inner,
                                           FaultPlan& plan) {
  return [inner = std::move(inner), &plan](const transport::Frame& frame) {
    if (plan.delivery_error()) {
      return Status::error("injected delivery fault");
    }
    return inner(frame);
  };
}

}  // namespace hpcmon::resilience
