// SupervisedSampler: deadline watchdog + circuit breaker around any Sampler.
//
// The failure the paper's sites feared most from synchronized sweeps: one
// wedged probe (dead filesystem mount, hung vendor ioctl) stalls the entire
// sweep, and then monitoring itself is down exactly when it is needed
// (Sec. III; LANL's health checks exist because probes DO hang). The
// supervisor guarantees a sweep is never held hostage:
//
//   * deadline: with deadline_ms > 0 the wrapped sample() runs on a
//     watchdog thread; if it does not finish within the (real-time)
//     deadline, the call is abandoned — the sweep continues with whatever
//     the other samplers produced, and the abandoned thread parks until the
//     hung call eventually returns (its output is discarded).
//   * errors: a sampler that throws is contained and counted; the sweep
//     continues.
//   * quarantine: consecutive failures open a CircuitBreaker (on the
//     simulated timeline, so transitions are deterministic); while open, the
//     sampler is skipped entirely — a permanently hung source degrades to
//     "that source is dark and counted", not "the sweep stalls".
//
// With deadline_ms == 0 the call runs inline (no threads, bit-deterministic)
// with error containment + breaker only; this is what MonitoringStack uses
// by default so existing deterministic runs are unchanged.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "collect/sampler.hpp"
#include "core/priority.hpp"
#include "obs/registry.hpp"
#include "resilience/breaker.hpp"

namespace hpcmon::resilience {

struct SupervisorOptions {
  /// Real-time budget per sample() call; 0 = inline (no watchdog thread).
  int deadline_ms = 0;
  BreakerConfig breaker;
  /// Seed for this sampler's breaker-jitter stream.
  std::uint64_t seed = 0x5EEDB4EA;
  /// Shedding class of the series this sampler produces: the degradation
  /// controller widens cadence (set_stride) on standard/bulk samplers under
  /// storm load but never on critical ones.
  core::Priority priority = core::Priority::kStandard;
};

/// Typed view over a supervised sampler's obs instruments; operator+= merges
/// views across samplers (the registry does the same at snapshot time when
/// every sampler attaches under the shared resilience.sampler_* names).
struct SupervisorStats {
  std::uint64_t calls = 0;      // sweeps routed at this sampler
  std::uint64_t successes = 0;  // completed within deadline, no error
  std::uint64_t errors = 0;     // sampler threw
  std::uint64_t timeouts = 0;   // deadline exceeded, call abandoned
  std::uint64_t skipped = 0;    // quarantined by the open breaker
  std::uint64_t downsampled = 0;  // sweeps skipped by a cadence stride > 1
  std::uint64_t samples_merged = 0;

  SupervisorStats& operator+=(const SupervisorStats& o);
};

class SupervisedSampler : public collect::Sampler {
 public:
  /// Takes ownership of `inner`. The inner sampler may outlive this wrapper
  /// if a call was abandoned mid-hang (shared ownership with the watchdog
  /// thread); anything the inner sampler references must outlive that hang.
  SupervisedSampler(std::unique_ptr<collect::Sampler> inner,
                    SupervisorOptions options);
  ~SupervisedSampler() override = default;

  std::string name() const override { return inner_->name(); }
  void sample(core::TimePoint sweep_time, core::SampleBatch& out) override;

  BreakerState breaker_state() const { return breaker_.state(); }
  const CircuitBreaker& breaker() const { return breaker_; }
  SupervisorStats stats() const;
  core::Priority priority() const { return options_.priority; }

  /// Catalog this sampler's instruments as resilience.sampler_* in
  /// `registry` (plus the breaker's resilience.breaker_*). All supervised
  /// samplers share the names; the registry sums them at snapshot time.
  void attach_to(obs::ObsRegistry& registry) const;

  /// Cadence divisor under degradation: with stride N this sampler runs on
  /// every Nth sweep and the rest are counted as downsampled (no inner call,
  /// no error/breaker accounting). 1 restores full cadence; 0 is clamped to
  /// 1. Safe to call from any thread.
  void set_stride(std::uint32_t stride) {
    stride_.store(stride == 0 ? 1 : stride, std::memory_order_relaxed);
  }
  std::uint32_t stride() const {
    return stride_.load(std::memory_order_relaxed);
  }

 private:
  void run_inline(core::TimePoint sweep_time, core::SampleBatch& out);
  void run_with_deadline(core::TimePoint sweep_time, core::SampleBatch& out);

  std::shared_ptr<collect::Sampler> inner_;
  SupervisorOptions options_;
  CircuitBreaker breaker_;
  obs::Counter calls_;
  obs::Counter successes_;
  obs::Counter errors_;
  obs::Counter timeouts_;
  obs::Counter skipped_;
  obs::Counter downsampled_;
  obs::Counter samples_merged_;
  std::atomic<std::uint32_t> stride_{1};
  std::uint64_t sweep_seq_ = 0;  // advances once per sample() call
};

}  // namespace hpcmon::resilience
