// ChaosSchedule: seeded, full-stack storm scenarios.
//
// FaultPlan (fault.hpp) injects individual faults; a real incident is never
// one fault. The paper's war stories are compound: a fabric error burst IS a
// log storm IS a console-forwarder overload (Sec. IV-B), a filesystem
// brownout hangs probes AND backs up the store. ChaosSchedule scripts that
// shape: a scenario is a set of possibly-overlapping StormPhases, each
// contributing fault probabilities and synthetic load (log storms, bulk
// floods); arming the schedule onto the simulated EventQueue swaps the
// composed FaultSpec into a live FaultPlan at every phase boundary, so the
// whole storm is deterministic under its seed and replayable in CI.
//
// The harness side — building a stack, generating the load the phases ask
// for, asserting the survival invariants — lives in stack/chaos_harness.hpp
// (the stack depends on resilience, not the other way around).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/time.hpp"
#include "resilience/fault.hpp"
#include "sim/event_queue.hpp"

namespace hpcmon::resilience {

/// One windowed contribution to the storm. Overlapping phases compose: the
/// active FaultSpec takes, per fault class, the max probability over active
/// phases (and ORs sticky flags; scripted one-shot indices compose by max,
/// so give at most one active phase a scripted fault).
struct StormPhase {
  std::string label;
  core::Duration start = 0;     // offset from the armed t0
  core::Duration duration = 0;  // phase length on the simulated timeline
  FaultSpec spec;               // fault pressure while the phase is active
  /// Synthetic load the harness generates every tick while active.
  std::uint32_t log_events_per_tick = 0;    // log storm intensity
  std::uint32_t bulk_batches_per_tick = 0;  // bulk-class ingest flood
};

struct ChaosScenario {
  std::string name;
  std::uint64_t seed = 1;
  /// Scenario length including the post-storm recovery window the invariants
  /// are checked over (controller must be back to NORMAL by the end).
  core::Duration total = 0;
  std::vector<StormPhase> phases;
  /// Stack config overrides this scenario needs (key, value).
  std::vector<std::pair<std::string, std::string>> config_overrides;
  /// When nonzero, the harness hard-crashes the stack (no shutdown, exactly
  /// as simulate_crash()) at this offset from t0 and rebuilds it on the same
  /// WAL/tier directories — the recovery path runs mid-storm, and the
  /// zero-critical-loss invariant must hold across the restart.
  core::Duration crash_restart_at = 0;
};

class ChaosSchedule {
 public:
  struct Hooks {
    std::function<void(const StormPhase&, core::TimePoint)> phase_start;
    std::function<void(const StormPhase&, core::TimePoint)> phase_end;
  };

  explicit ChaosSchedule(ChaosScenario scenario)
      : scenario_(std::move(scenario)),
        active_(scenario_.phases.size(), false) {}

  /// Schedule every phase boundary on `events`: at each boundary the specs
  /// of the then-active phases are composed into `plan` and the matching
  /// hook fires. The schedule and the plan must outlive the armed events.
  void arm(sim::EventQueue& events, core::TimePoint t0, FaultPlan& plan,
           Hooks hooks = {});

  /// Phases currently active (valid while armed events are firing).
  std::vector<const StormPhase*> active_phases() const;
  /// Max synthetic load over the active phases, for the harness tick.
  std::uint32_t active_log_events_per_tick() const;
  std::uint32_t active_bulk_batches_per_tick() const;

  const ChaosScenario& scenario() const { return scenario_; }

 private:
  FaultSpec composed() const;

  ChaosScenario scenario_;
  std::vector<bool> active_;
};

/// The standing storm battery every chaos build runs: at least five distinct
/// seeded scenarios (log storm, hang storm, WAL I/O storm, delivery storm,
/// queue saturation, a kitchen-sink compound, and a disk storm that crashes
/// the stack mid-compaction and restarts it into an ENOSPC burst).
std::vector<ChaosScenario> standard_storm_scenarios();

/// The two-stack relay battery: every socket fault class (resets, stalls,
/// short writes/reads, torn frames) over a node→aggregator wire, concurrent
/// with a bulk ingest flood. Run by stack/chaos_harness.hpp's
/// run_network_storm, which asserts zero acknowledged critical-sample loss
/// and a byte-exact critical series on the aggregator.
ChaosScenario network_storm_scenario();

}  // namespace hpcmon::resilience
