#include "resilience/chaos.hpp"

#include <algorithm>

namespace hpcmon::resilience {

FaultSpec ChaosSchedule::composed() const {
  FaultSpec out;
  for (std::size_t i = 0; i < scenario_.phases.size(); ++i) {
    if (!active_[i]) continue;
    const auto& s = scenario_.phases[i].spec;
    out.sampler_error_p = std::max(out.sampler_error_p, s.sampler_error_p);
    out.sampler_hang_p = std::max(out.sampler_hang_p, s.sampler_hang_p);
    out.delivery_error_p = std::max(out.delivery_error_p, s.delivery_error_p);
    out.fs_error_p = std::max(out.fs_error_p, s.fs_error_p);
    out.fs_short_write_p = std::max(out.fs_short_write_p, s.fs_short_write_p);
    out.fs_enospc_p = std::max(out.fs_enospc_p, s.fs_enospc_p);
    out.fs_rename_error_p =
        std::max(out.fs_rename_error_p, s.fs_rename_error_p);
    out.fs_crash_p = std::max(out.fs_crash_p, s.fs_crash_p);
    out.sock_reset_p = std::max(out.sock_reset_p, s.sock_reset_p);
    out.sock_stall_p = std::max(out.sock_stall_p, s.sock_stall_p);
    out.sock_short_write_p =
        std::max(out.sock_short_write_p, s.sock_short_write_p);
    out.sock_short_read_p =
        std::max(out.sock_short_read_p, s.sock_short_read_p);
    out.sock_torn_frame_p =
        std::max(out.sock_torn_frame_p, s.sock_torn_frame_p);
    out.sampler_error_at = std::max(out.sampler_error_at, s.sampler_error_at);
    out.sampler_hang_at = std::max(out.sampler_hang_at, s.sampler_hang_at);
    out.delivery_error_at =
        std::max(out.delivery_error_at, s.delivery_error_at);
    out.fs_error_at = std::max(out.fs_error_at, s.fs_error_at);
    out.fs_short_write_at =
        std::max(out.fs_short_write_at, s.fs_short_write_at);
    out.fs_enospc_at = std::max(out.fs_enospc_at, s.fs_enospc_at);
    out.fs_rename_error_at =
        std::max(out.fs_rename_error_at, s.fs_rename_error_at);
    out.fs_crash_at = std::max(out.fs_crash_at, s.fs_crash_at);
    out.sock_reset_at = std::max(out.sock_reset_at, s.sock_reset_at);
    out.sock_stall_at = std::max(out.sock_stall_at, s.sock_stall_at);
    out.sock_short_write_at =
        std::max(out.sock_short_write_at, s.sock_short_write_at);
    out.sock_short_read_at =
        std::max(out.sock_short_read_at, s.sock_short_read_at);
    out.sock_torn_frame_at =
        std::max(out.sock_torn_frame_at, s.sock_torn_frame_at);
    out.sampler_hang_sticky |= s.sampler_hang_sticky;
  }
  return out;
}

void ChaosSchedule::arm(sim::EventQueue& events, core::TimePoint t0,
                        FaultPlan& plan, Hooks hooks) {
  for (std::size_t i = 0; i < scenario_.phases.size(); ++i) {
    const auto& phase = scenario_.phases[i];
    events.schedule_at(t0 + phase.start, [this, i, &plan,
                                          hooks](core::TimePoint now) {
      active_[i] = true;
      plan.set_spec(composed());
      if (hooks.phase_start) hooks.phase_start(scenario_.phases[i], now);
    });
    events.schedule_at(
        t0 + phase.start + phase.duration,
        [this, i, &plan, hooks](core::TimePoint now) {
          active_[i] = false;
          plan.set_spec(composed());
          if (hooks.phase_end) hooks.phase_end(scenario_.phases[i], now);
        });
  }
}

std::vector<const StormPhase*> ChaosSchedule::active_phases() const {
  std::vector<const StormPhase*> out;
  for (std::size_t i = 0; i < scenario_.phases.size(); ++i) {
    if (active_[i]) out.push_back(&scenario_.phases[i]);
  }
  return out;
}

std::uint32_t ChaosSchedule::active_log_events_per_tick() const {
  std::uint32_t out = 0;
  for (const auto* p : active_phases()) {
    out = std::max(out, p->log_events_per_tick);
  }
  return out;
}

std::uint32_t ChaosSchedule::active_bulk_batches_per_tick() const {
  std::uint32_t out = 0;
  for (const auto* p : active_phases()) {
    out = std::max(out, p->bulk_batches_per_tick);
  }
  return out;
}

std::vector<ChaosScenario> standard_storm_scenarios() {
  std::vector<ChaosScenario> out;

  // 1. Log storm: the Sec. IV-B console-forwarder meltdown. A burst of log
  // traffic rides alongside elevated delivery failures (the forwarder is
  // what is melting).
  {
    ChaosScenario s;
    s.name = "log_storm";
    s.seed = 0xCA05001;
    s.total = 40 * core::kMinute;
    StormPhase storm;
    storm.label = "log_burst";
    storm.start = 5 * core::kMinute;
    storm.duration = 15 * core::kMinute;
    storm.log_events_per_tick = 200;
    storm.spec.delivery_error_p = 0.10;
    s.phases.push_back(storm);
    out.push_back(std::move(s));
  }

  // 2. Sampler hang storm: probes wedge on dead mounts; the watchdog
  // deadline and breaker quarantine must carry the sweep.
  {
    ChaosScenario s;
    s.name = "sampler_hang_storm";
    s.seed = 0xCA05002;
    s.total = 40 * core::kMinute;
    StormPhase hang;
    hang.label = "probe_hangs";
    hang.start = 5 * core::kMinute;
    hang.duration = 12 * core::kMinute;
    hang.spec.sampler_hang_p = 0.08;
    hang.spec.sampler_error_p = 0.15;
    s.phases.push_back(hang);
    out.push_back(std::move(s));
  }

  // 3. WAL I/O storm: the durability device browns out (errors and torn
  // writes); critical data must still survive end to end.
  {
    ChaosScenario s;
    s.name = "wal_io_storm";
    s.seed = 0xCA05003;
    s.total = 40 * core::kMinute;
    StormPhase io;
    io.label = "wal_brownout";
    io.start = 5 * core::kMinute;
    io.duration = 10 * core::kMinute;
    io.spec.fs_error_p = 0.20;
    io.spec.fs_short_write_p = 0.05;
    s.phases.push_back(io);
    out.push_back(std::move(s));
  }

  // 4. Delivery storm: the downstream sink flaps hard; retries and the DLQ
  // absorb it, and the DLQ bound must hold.
  {
    ChaosScenario s;
    s.name = "delivery_storm";
    s.seed = 0xCA05004;
    s.total = 40 * core::kMinute;
    StormPhase d;
    d.label = "sink_flapping";
    d.start = 5 * core::kMinute;
    d.duration = 15 * core::kMinute;
    d.spec.delivery_error_p = 0.60;
    s.phases.push_back(d);
    out.push_back(std::move(s));
  }

  // 5. Queue saturation: a bulk-class ingest flood far beyond queue
  // capacity; the degradation ladder must shed bulk and keep critical
  // intact.
  {
    ChaosScenario s;
    s.name = "queue_saturation";
    s.seed = 0xCA05005;
    s.total = 45 * core::kMinute;
    StormPhase flood;
    flood.label = "bulk_flood";
    flood.start = 5 * core::kMinute;
    flood.duration = 15 * core::kMinute;
    flood.bulk_batches_per_tick = 50;
    s.phases.push_back(flood);
    out.push_back(std::move(s));
  }

  // 6. Kitchen sink: overlapping compound storm — the realistic incident.
  {
    ChaosScenario s;
    s.name = "kitchen_sink";
    s.seed = 0xCA05006;
    s.total = 60 * core::kMinute;
    StormPhase logs;
    logs.label = "log_burst";
    logs.start = 5 * core::kMinute;
    logs.duration = 20 * core::kMinute;
    logs.log_events_per_tick = 100;
    s.phases.push_back(logs);
    StormPhase flood;
    flood.label = "bulk_flood";
    flood.start = 10 * core::kMinute;
    flood.duration = 15 * core::kMinute;
    flood.bulk_batches_per_tick = 30;
    s.phases.push_back(flood);
    StormPhase faults;
    faults.label = "fault_pressure";
    faults.start = 12 * core::kMinute;
    faults.duration = 10 * core::kMinute;
    faults.spec.sampler_error_p = 0.10;
    faults.spec.sampler_hang_p = 0.03;
    faults.spec.fs_error_p = 0.05;
    faults.spec.delivery_error_p = 0.30;
    s.phases.push_back(faults);
    out.push_back(std::move(s));
  }

  // 7. Disk storm: the retention device dies in every way at once. Bulk
  // load keeps the compactor busy; a crash window kills filesystem ops at
  // random (torn WAL tails, dead mid-pass compactions); the whole stack is
  // then hard-crashed and rebuilt on the same WAL + tier directories; the
  // revived stack immediately faces an ENOSPC burst. Zero critical loss
  // across the restart and a return to NORMAL are the invariants.
  {
    ChaosScenario s;
    s.name = "disk_storm";
    s.seed = 0xCA05007;
    s.total = 45 * core::kMinute;
    s.config_overrides = {
        {"tier_dir", "auto"},          // harness substitutes a scratch dir
        {"compact_interval_s", "60"},  // compact every simulated minute
        {"tier_hot_window_s", "300"},  // age sealed chunks out aggressively
        {"chunk_points", "32"},        // seal fast so tiers actually fill
    };
    StormPhase load;
    load.label = "bulk_load";
    load.start = 1 * core::kMinute;
    load.duration = 30 * core::kMinute;
    load.bulk_batches_per_tick = 20;
    s.phases.push_back(load);
    StormPhase kill;
    kill.label = "fs_crash_window";
    kill.start = 8 * core::kMinute;
    kill.duration = 1 * core::kMinute;
    kill.spec.fs_crash_p = 0.05;
    s.phases.push_back(kill);
    // Hard restart after the crash window, with enough clean time first for
    // self-heal (WAL rotate + DLQ redelivery) to make everything durable.
    s.crash_restart_at = 12 * core::kMinute;
    StormPhase enospc;
    enospc.label = "enospc_burst";
    enospc.start = 14 * core::kMinute;
    enospc.duration = 8 * core::kMinute;
    enospc.spec.fs_enospc_p = 0.35;
    s.phases.push_back(enospc);
    out.push_back(std::move(s));
  }

  return out;
}

ChaosScenario network_storm_scenario() {
  // The wire between a node stack and its aggregator fails in every
  // injectable way at once, while an ingest storm keeps the relay queue
  // under pressure. Phases overlap so resets land on connections already
  // degraded by short reads/writes; a clean recovery window at the end lets
  // the relay drain, which is when the acked-watermark and byte-exact
  // invariants are checked.
  ChaosScenario s;
  s.name = "network_storm";
  s.seed = 0xCA05008;
  s.total = 30 * core::kMinute;
  StormPhase flood;
  flood.label = "bulk_flood";
  flood.start = 1 * core::kMinute;
  flood.duration = 18 * core::kMinute;
  flood.bulk_batches_per_tick = 10;
  s.phases.push_back(flood);
  StormPhase frag;
  frag.label = "fragmented_wire";  // benign fragmentation: reassembly only
  frag.start = 2 * core::kMinute;
  frag.duration = 16 * core::kMinute;
  frag.spec.sock_short_write_p = 0.10;
  frag.spec.sock_short_read_p = 0.10;
  s.phases.push_back(frag);
  StormPhase stall;
  stall.label = "latency_spikes";
  stall.start = 4 * core::kMinute;
  stall.duration = 10 * core::kMinute;
  stall.spec.sock_stall_p = 0.05;
  s.phases.push_back(stall);
  StormPhase tear;
  tear.label = "resets_and_torn_frames";  // every connection is suspect
  tear.start = 6 * core::kMinute;
  tear.duration = 8 * core::kMinute;
  tear.spec.sock_reset_p = 0.02;
  tear.spec.sock_torn_frame_p = 0.02;
  s.phases.push_back(tear);
  return s;
}

}  // namespace hpcmon::resilience
