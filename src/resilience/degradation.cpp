#include "resilience/degradation.hpp"

#include <algorithm>
#include <string>

namespace hpcmon::resilience {

HealthSignals HealthSignalAssembler::assemble(const obs::ObsSnapshot& snap) {
  HealthSignals hs;
  // Live fill gauges the stack refreshes just before snapshotting.
  hs.queue_fill = snap.gauge("ingest.queue_fill");
  hs.dlq_fill = snap.gauge("resilience.dlq_fill");
  hs.breaker_open_frac = snap.gauge("resilience.breaker_open_frac");
  hs.disk_fill = snap.gauge("compact.disk_fill");
  hs.cache_fill =
      std::min(1.0, snap.gauge("store.cache_entries") / 1024.0);
  // The cumulative failure counter never shrinks, so pressure comes from the
  // delta since the previous assembly (ten failing appends within one window
  // = full pressure from the durability tier).
  const auto failures = snap.counter("resilience.wal_append_failures");
  const auto delta =
      failures >= last_wal_failures_ ? failures - last_wal_failures_ : 0;
  last_wal_failures_ = failures;
  hs.wal_backlog = std::min(1.0, static_cast<double>(delta) / 10.0);
  hs.lost_samples = snap.counter("ingest.dropped_samples") +
                    snap.counter("ingest.rejected_samples");
  for (std::size_t c = 0; c < core::kPriorityClasses; ++c) {
    const std::string cls{core::to_string(static_cast<core::Priority>(c))};
    hs.shed_samples += snap.counter("ingest.shed_" + cls + "_samples");
  }
  return hs;
}

HealthSignals HealthSignalAssembler::assemble(
    const obs::ObsSnapshot& snap, const rollup::RollupSnapshot* fleet,
    core::ComponentId system) {
  HealthSignals hs = assemble(snap);
  if (fleet == nullptr) return hs;
  if (const auto* s = fleet->find(system, "node.cpu_util");
      s != nullptr && !s->empty()) {
    hs.fleet_utilization = rollup::MeanReducer::reduce(*s);
    hs.fleet_nodes_live = s->count;
  }
  return hs;
}

DegradationController::DegradationController(DegradationConfig config)
    : config_(config) {
  config_.enter_ticks = std::max<std::uint32_t>(1, config_.enter_ticks);
  config_.exit_ticks = std::max<std::uint32_t>(1, config_.exit_ticks);
}

double DegradationController::pressure(const HealthSignals& signals) {
  double p = std::max({signals.queue_fill, signals.dlq_fill,
                       signals.wal_backlog, signals.cache_fill,
                       signals.breaker_open_frac, signals.disk_fill});
  // Fresh involuntary loss: samples are already being dropped or rejected,
  // so whatever the fill gauges say, the system is saturated. Sprint up.
  const std::uint64_t lost_delta =
      signals.lost_samples >= last_lost_ ? signals.lost_samples - last_lost_
                                         : signals.lost_samples;
  last_lost_ = signals.lost_samples;
  if (lost_delta > 0) p = 1.0;
  // Fresh voluntary shedding: the door is actively turning load away, which
  // is exactly why the fill gauges look healthy. Hold pressure at the
  // current level's exit threshold so the controller neither escalates off
  // the shed (it is working as designed) nor relaxes into re-admitting the
  // storm the moment the gauges clear. The hold is a BOUNDED budget, not a
  // latch: a degraded mode sheds its own steady-state traffic (QUARANTINE
  // turns every standard sweep away), so an unbounded hold would pin the
  // controller at its own door forever. After shed_hold_ticks consecutive
  // evaluations where ONLY the shed is keeping pressure up, the hold lapses
  // and the controller probes downward; any real pressure (a fill gauge at
  // or above the exit threshold, fresh involuntary loss) refills the budget.
  const std::uint64_t shed_delta =
      signals.shed_samples >= last_shed_ ? signals.shed_samples - last_shed_
                                         : signals.shed_samples;
  last_shed_ = signals.shed_samples;
  const auto level = static_cast<std::size_t>(mode_);
  if (level > 0) {
    if (p >= config_.exit[level]) {
      shed_hold_used_ = 0;  // genuine pressure: the hold budget refills
    } else if (shed_delta > 0 && shed_hold_used_ < config_.shed_hold_ticks) {
      ++shed_hold_used_;
      p = std::max(p, config_.exit[level]);
    }
  }
  return std::clamp(p, 0.0, 1.0);
}

core::DegradationMode DegradationController::evaluate(
    core::TimePoint now, const HealthSignals& signals) {
  evaluations_.add();
  const auto level = static_cast<std::size_t>(mode_);
  ticks_in_mode_[level].add();
  const double p = pressure(signals);
  pressure_gauge_.set(p);

  const auto commit = [&](core::DegradationMode next, bool up) {
    mode_ = next;
    mode_gauge_.set(static_cast<double>(static_cast<int>(next)));
    transitions_.add();
    if (up) {
      escalations_.add();
    } else {
      deescalations_.add();
    }
    last_transition_ = now;
    above_ticks_ = 0;
    below_ticks_ = 0;
    shed_hold_used_ = 0;  // each level gets a fresh anti-flap hold budget
    if (on_change_) on_change_(mode_);
  };

  // Escalation: pressure above the NEXT level's enter threshold for
  // enter_ticks consecutive evaluations, one level per transition.
  if (level + 1 < core::kDegradationModes && p >= config_.enter[level + 1]) {
    below_ticks_ = 0;
    if (++above_ticks_ >= config_.enter_ticks) {
      commit(static_cast<core::DegradationMode>(level + 1), true);
    }
    return mode_;
  }
  // De-escalation: pressure below the CURRENT level's exit threshold for
  // exit_ticks consecutive evaluations.
  if (level > 0 && p < config_.exit[level]) {
    above_ticks_ = 0;
    if (++below_ticks_ >= config_.exit_ticks) {
      commit(static_cast<core::DegradationMode>(level - 1), false);
    }
    return mode_;
  }
  // In the dead band between exit and enter: stay put, disarm both counters.
  above_ticks_ = 0;
  below_ticks_ = 0;
  return mode_;
}

DegradationStats DegradationController::stats() const {
  DegradationStats s;
  s.evaluations = evaluations_.value();
  s.transitions = transitions_.value();
  s.escalations = escalations_.value();
  s.deescalations = deescalations_.value();
  for (std::size_t i = 0; i < core::kDegradationModes; ++i) {
    s.ticks_in_mode[i] = ticks_in_mode_[i].value();
  }
  s.last_transition = last_transition_;
  s.last_pressure = pressure_gauge_.value();
  return s;
}

void DegradationController::attach_to(obs::ObsRegistry& registry) const {
  registry.attach({"resilience.degradation.mode", "level",
                   "degradation mode in force (0=NORMAL..3=QUARANTINE)"},
                  &mode_gauge_);
  registry.attach({"resilience.degradation.pressure", "frac",
                   "scalar pressure driving the degradation control loop"},
                  &pressure_gauge_);
  registry.attach({"resilience.degradation.evaluations", "evals",
                   "health readings folded into the control loop"},
                  &evaluations_);
  registry.attach({"resilience.degradation.transitions", "transitions",
                   "mode changes committed by the degradation controller"},
                  &transitions_);
  registry.attach({"resilience.degradation.escalations", "transitions",
                   "mode changes that tightened shedding"},
                  &escalations_);
  registry.attach({"resilience.degradation.deescalations", "transitions",
                   "mode changes that relaxed shedding"},
                  &deescalations_);
}

}  // namespace hpcmon::resilience
