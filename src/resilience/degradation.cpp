#include "resilience/degradation.hpp"

#include <algorithm>

#include "core/strings.hpp"

namespace hpcmon::resilience {

DegradationController::DegradationController(DegradationConfig config)
    : config_(config) {
  config_.enter_ticks = std::max<std::uint32_t>(1, config_.enter_ticks);
  config_.exit_ticks = std::max<std::uint32_t>(1, config_.exit_ticks);
}

double DegradationController::pressure(const HealthSignals& signals) {
  double p = std::max({signals.queue_fill, signals.dlq_fill,
                       signals.wal_backlog, signals.cache_fill,
                       signals.breaker_open_frac});
  // Fresh involuntary loss: samples are already being dropped or rejected,
  // so whatever the fill gauges say, the system is saturated. Sprint up.
  const std::uint64_t lost_delta =
      signals.lost_samples >= last_lost_ ? signals.lost_samples - last_lost_
                                         : signals.lost_samples;
  last_lost_ = signals.lost_samples;
  if (lost_delta > 0) p = 1.0;
  // Fresh voluntary shedding: the door is actively turning load away, which
  // is exactly why the fill gauges look healthy. Hold pressure at the
  // current level's exit threshold so the controller neither escalates off
  // the shed (it is working as designed) nor relaxes into re-admitting the
  // storm the moment the gauges clear. The hold is a BOUNDED budget, not a
  // latch: a degraded mode sheds its own steady-state traffic (QUARANTINE
  // turns every standard sweep away), so an unbounded hold would pin the
  // controller at its own door forever. After shed_hold_ticks consecutive
  // evaluations where ONLY the shed is keeping pressure up, the hold lapses
  // and the controller probes downward; any real pressure (a fill gauge at
  // or above the exit threshold, fresh involuntary loss) refills the budget.
  const std::uint64_t shed_delta =
      signals.shed_samples >= last_shed_ ? signals.shed_samples - last_shed_
                                         : signals.shed_samples;
  last_shed_ = signals.shed_samples;
  const auto level = static_cast<std::size_t>(mode_);
  if (level > 0) {
    if (p >= config_.exit[level]) {
      shed_hold_used_ = 0;  // genuine pressure: the hold budget refills
    } else if (shed_delta > 0 && shed_hold_used_ < config_.shed_hold_ticks) {
      ++shed_hold_used_;
      p = std::max(p, config_.exit[level]);
    }
  }
  return std::clamp(p, 0.0, 1.0);
}

core::DegradationMode DegradationController::evaluate(
    core::TimePoint now, const HealthSignals& signals) {
  ++stats_.evaluations;
  const auto level = static_cast<std::size_t>(mode_);
  ++stats_.ticks_in_mode[level];
  const double p = pressure(signals);
  stats_.last_pressure = p;

  const auto commit = [&](core::DegradationMode next, bool up) {
    mode_ = next;
    ++stats_.transitions;
    if (up) {
      ++stats_.escalations;
    } else {
      ++stats_.deescalations;
    }
    stats_.last_transition = now;
    above_ticks_ = 0;
    below_ticks_ = 0;
    shed_hold_used_ = 0;  // each level gets a fresh anti-flap hold budget
    if (on_change_) on_change_(mode_);
  };

  // Escalation: pressure above the NEXT level's enter threshold for
  // enter_ticks consecutive evaluations, one level per transition.
  if (level + 1 < core::kDegradationModes && p >= config_.enter[level + 1]) {
    below_ticks_ = 0;
    if (++above_ticks_ >= config_.enter_ticks) {
      commit(static_cast<core::DegradationMode>(level + 1), true);
    }
    return mode_;
  }
  // De-escalation: pressure below the CURRENT level's exit threshold for
  // exit_ticks consecutive evaluations.
  if (level > 0 && p < config_.exit[level]) {
    above_ticks_ = 0;
    if (++below_ticks_ >= config_.exit_ticks) {
      commit(static_cast<core::DegradationMode>(level - 1), false);
    }
    return mode_;
  }
  // In the dead band between exit and enter: stay put, disarm both counters.
  above_ticks_ = 0;
  below_ticks_ = 0;
  return mode_;
}

std::string DegradationController::to_string() const {
  return core::strformat(
      "degrade mode=%s p=%.2f transitions=%llu up=%llu down=%llu",
      std::string(core::to_string(mode_)).c_str(), stats_.last_pressure,
      static_cast<unsigned long long>(stats_.transitions),
      static_cast<unsigned long long>(stats_.escalations),
      static_cast<unsigned long long>(stats_.deescalations));
}

std::vector<core::Sample> DegradationController::to_samples(
    core::MetricRegistry& registry, core::ComponentId component,
    core::TimePoint now) const {
  std::vector<core::Sample> out;
  const auto emit = [&](const char* name, const char* units, const char* desc,
                        bool counter, double value) {
    const auto metric = registry.register_metric(
        {name, units, desc, counter, core::Priority::kCritical});
    out.push_back({registry.series(metric, component), now, value});
  };
  emit("resilience.degradation.mode", "level",
       "degradation mode in force (0=NORMAL..3=QUARANTINE)", false,
       static_cast<double>(static_cast<int>(mode_)));
  emit("resilience.degradation.pressure", "frac",
       "scalar pressure driving the degradation control loop", false,
       stats_.last_pressure);
  emit("resilience.degradation.transitions", "transitions",
       "mode changes committed by the degradation controller", true,
       static_cast<double>(stats_.transitions));
  return out;
}

}  // namespace hpcmon::resilience
