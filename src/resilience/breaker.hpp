// Circuit breaker for flaky telemetry sources.
//
// The paper's sites all hit the same operational failure: one hung or
// erroring collector stalls or pollutes the whole synchronized sweep
// (Sec. III; MPCDF and ORNL both supervise collectors for exactly this
// reason). The breaker turns "keeps failing" into "stop asking for a
// while": closed (normal) -> open after `failure_threshold` consecutive
// failures (calls denied) -> half-open after a cooldown (one probe allowed)
// -> closed again on probe success, or re-open with exponentially longer
// cooldown on probe failure. Jitter (a seeded-RNG fraction of the cooldown)
// de-synchronizes many breakers recovering at once — deterministic under a
// fixed seed, like everything else in hpcmon.
//
// The breaker is a pure state machine on the simulated timeline: it never
// reads a clock and owns no threads, so it is trivially unit-testable and
// its transitions are bit-reproducible.
#pragma once

#include <cstdint>
#include <string_view>

#include "core/rng.hpp"
#include "core/time.hpp"
#include "obs/registry.hpp"

namespace hpcmon::resilience {

enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };

std::string_view to_string(BreakerState state);

struct BreakerConfig {
  int failure_threshold = 3;  // consecutive failures before opening
  core::Duration cooldown = 5 * core::kMinute;  // first open duration
  double backoff_factor = 2.0;                  // cooldown growth per re-open
  core::Duration max_cooldown = core::kHour;
  double jitter = 0.1;  // +/- fraction of the cooldown, drawn per open
};

/// Typed view over a breaker's obs instruments.
struct BreakerStats {
  std::uint64_t opens = 0;             // closed/half-open -> open transitions
  std::uint64_t half_open_probes = 0;  // probes admitted while half-open
  std::uint64_t closes = 0;            // half-open -> closed recoveries
  std::uint64_t denied = 0;            // calls refused while open
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerConfig config = {},
                          std::uint64_t jitter_seed = 0x5EEDB4EA)
      : config_(config), rng_(jitter_seed) {}

  /// May the protected call proceed at `now`? Performs the open -> half-open
  /// transition when the cooldown has elapsed (the admitted call is the
  /// probe). Denials are counted.
  bool allow(core::TimePoint now);

  void record_success(core::TimePoint now);
  void record_failure(core::TimePoint now);

  BreakerState state() const { return state_; }
  int consecutive_failures() const { return consecutive_failures_; }
  /// Earliest time a half-open probe will be admitted (meaningful when open).
  core::TimePoint retry_at() const { return retry_at_; }
  BreakerStats stats() const;
  /// Catalog the breaker's counters as resilience.breaker_* in `registry`
  /// (shared names across breakers; the registry sums at snapshot time).
  void attach_to(obs::ObsRegistry& registry) const;

 private:
  void open(core::TimePoint now);

  BreakerConfig config_;
  core::Rng rng_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int reopen_streak_ = 0;  // consecutive opens without a close (backoff exp.)
  core::TimePoint retry_at_ = 0;
  obs::Counter opens_;
  obs::Counter half_open_probes_;
  obs::Counter closes_;
  obs::Counter denied_;
};

}  // namespace hpcmon::resilience
