// DegradationController: closed-loop, priority-aware graceful degradation.
//
// The paper's sites all describe the same failure: the monitoring system is
// engineered for fair weather, and the first full-system storm (a log storm,
// a network-wide error burst, a wedged store) takes monitoring down exactly
// when operators need it most (Secs. III-IV). hpcmon's storm mode closes the
// loop: this controller watches the stack's own health telemetry and moves
// through four modes, each shedding more low-priority load so critical
// telemetry keeps flowing:
//
//   NORMAL      everything at full cadence
//   SHED_BULK   bulk-class series turned away at the ingest door
//   SUMMARIZE   + standard-class series downsampled (ingest stride admission
//               and wider sampler cadence)
//   QUARANTINE  only critical-class series flow at all
//
// The controller itself is policy-free glue: it consumes a plain
// HealthSignals struct (the owning stack gathers queue fill, loss counters,
// DLQ/WAL/breaker/cache state) and invokes an on_change callback with the
// new mode; the stack wires that to IngestPipeline::set_mode and to
// SupervisedSampler::set_stride. Keeping the controller free of ingest/stack
// types lets property tests drive it with synthetic signals, and avoids a
// dependency cycle (ingest enforces, resilience decides, stack wires).
//
// Flap resistance (the part worth being careful about):
//   * escalation requires `enter_ticks` consecutive evaluations above the
//     next level's enter threshold; de-escalation requires `exit_ticks`
//     consecutive evaluations below the current level's exit threshold, and
//     exit thresholds sit well below enter thresholds (hysteresis band);
//   * transitions move ONE level at a time, except that fresh involuntary
//     loss (drops/rejects since the last evaluation) forces pressure to 1.0
//     — data is already being lost, so the controller sprints upward;
//   * fresh voluntary shedding holds pressure at no less than the current
//     level's exit threshold — while the door is actively turning load away,
//     relaxing would re-admit the storm (flapping) — but the hold is a
//     bounded budget (shed_hold_ticks), because a degraded mode sheds its
//     own steady-state traffic and an unbounded hold would never stand down.
//     When the budget lapses with every fill gauge calm, the controller
//     probes one level down; if the storm is still on, the probe re-arms
//     escalation and the counters record a slow bounded oscillation instead
//     of a tight flap.
// All timing is on the simulated timeline: deterministic, seedable tests.
#pragma once

#include <array>
#include <cstdint>
#include <functional>

#include "core/ids.hpp"
#include "core/priority.hpp"
#include "core/time.hpp"
#include "obs/registry.hpp"
#include "rollup/tree.hpp"

namespace hpcmon::resilience {

/// One evaluation's worth of observed stack health; every field is a live
/// reading, not a delta, except the two cumulative counters noted.
struct HealthSignals {
  double queue_fill = 0.0;    // max ingest shard queue depth / capacity
  double dlq_fill = 0.0;      // dead-letter queue size / capacity
  double wal_backlog = 0.0;   // WAL append failures mapped into [0,1]
  double cache_fill = 0.0;    // store decode-cache pressure in [0,1]
  double breaker_open_frac = 0.0;  // open breakers / supervised samplers
  double disk_fill = 0.0;  // tier-ladder disk bytes / configured budget
  /// Cumulative involuntarily lost samples (ingest dropped + rejected);
  /// the controller reacts to the delta since its previous evaluation.
  std::uint64_t lost_samples = 0;
  /// Cumulative voluntarily shed samples (degradation-mode door sheds).
  std::uint64_t shed_samples = 0;

  // -- Fleet context from the rollup tree (advisory; NOT a pressure input —
  // the controller reacts to the stack's own health, these give the operator
  // report and chaos assertions the "what is the machine doing" side).
  double fleet_utilization = 0.0;       // system-level mean node.cpu_util
  std::uint64_t fleet_nodes_live = 0;   // node.cpu_util series still rolled up
};

/// Builds a HealthSignals reading from an ObsSnapshot — the SAME snapshot
/// the exporter prints and the self-series are cut from, so the control
/// loop, the chaos assertions, and the operator report read identical
/// numbers by construction. Stateful only for the WAL-failure delta (the
/// cumulative counter never shrinks; pressure comes from failures within
/// one evaluation window — ten failing appends in a window = full pressure
/// from the durability tier).
class HealthSignalAssembler {
 public:
  HealthSignals assemble(const obs::ObsSnapshot& snap);

  /// Same reading, plus fleet context looked up O(depth) from the rollup
  /// tree's `system`-level node.cpu_util stat. `fleet` may be nullptr (tree
  /// disabled): fleet fields stay zero and the reading is identical to the
  /// two-free-argument overload.
  HealthSignals assemble(const obs::ObsSnapshot& snap,
                         const rollup::RollupSnapshot* fleet,
                         core::ComponentId system);

 private:
  std::uint64_t last_wal_failures_ = 0;
};

struct DegradationConfig {
  /// Pressure needed to arm escalation INTO level i (index 1..3; index 0
  /// unused). Defaults leave headroom between levels so one noisy signal
  /// does not sprint to QUARANTINE.
  std::array<double, core::kDegradationModes> enter = {0.0, 0.75, 0.90, 0.98};
  /// Pressure below which de-escalation OUT of level i arms. Must sit well
  /// below enter[i] (hysteresis band).
  std::array<double, core::kDegradationModes> exit = {0.0, 0.40, 0.55, 0.70};
  /// Consecutive evaluations required before a transition commits.
  std::uint32_t enter_ticks = 2;
  std::uint32_t exit_ticks = 3;
  /// Max consecutive evaluations the voluntary-shed hold may keep pressure
  /// at the exit threshold with every fill gauge calm; afterwards the
  /// controller probes downward. Refilled by any genuine pressure reading
  /// and on every committed transition.
  std::uint32_t shed_hold_ticks = 4;
  /// Sampler cadence divisor per mode (NORMAL..QUARANTINE), applied by the
  /// stack to non-critical supervised samplers.
  std::array<std::uint32_t, core::kDegradationModes> sampler_stride = {1, 1, 2,
                                                                      4};
};

/// Typed view over the controller's obs instruments (see attach_to).
struct DegradationStats {
  std::uint64_t evaluations = 0;
  std::uint64_t transitions = 0;
  std::uint64_t escalations = 0;
  std::uint64_t deescalations = 0;
  std::array<std::uint64_t, core::kDegradationModes> ticks_in_mode{};
  core::TimePoint last_transition{};
  double last_pressure = 0.0;
};

class DegradationController {
 public:
  explicit DegradationController(DegradationConfig config = {});

  /// Invoked (synchronously, from evaluate) whenever the mode changes.
  void on_change(std::function<void(core::DegradationMode)> cb) {
    on_change_ = std::move(cb);
  }

  /// Fold one reading of the stack's health into the control loop; returns
  /// the mode in force after the evaluation. Call at a fixed cadence on the
  /// simulated timeline.
  core::DegradationMode evaluate(core::TimePoint now,
                                 const HealthSignals& signals);

  core::DegradationMode mode() const { return mode_; }
  DegradationStats stats() const;
  const DegradationConfig& config() const { return config_; }

  /// Scalar pressure in [0,1] derived from `signals` (max of the fill
  /// signals, with loss/shed deltas applied as described in the header).
  /// Exposed for tests and the ablation bench.
  double pressure(const HealthSignals& signals);

  /// Catalog the controller's instruments as resilience.degradation.* in
  /// `registry`. All default critical priority — mode telemetry must
  /// survive the very storms it reports on.
  void attach_to(obs::ObsRegistry& registry) const;

 private:
  DegradationConfig config_;
  core::DegradationMode mode_ = core::DegradationMode::kNormal;
  std::function<void(core::DegradationMode)> on_change_;
  obs::Counter evaluations_;
  obs::Counter transitions_;
  obs::Counter escalations_;
  obs::Counter deescalations_;
  std::array<obs::Counter, core::kDegradationModes> ticks_in_mode_;
  obs::Gauge mode_gauge_;      // 0=NORMAL..3=QUARANTINE, set on commit
  obs::Gauge pressure_gauge_;  // last evaluation's scalar pressure
  core::TimePoint last_transition_{};
  std::uint32_t above_ticks_ = 0;  // consecutive evals arming escalation
  std::uint32_t below_ticks_ = 0;  // consecutive evals arming de-escalation
  std::uint64_t last_lost_ = 0;
  std::uint64_t last_shed_ = 0;
  std::uint32_t shed_hold_used_ = 0;  // anti-flap hold budget spent so far
};

}  // namespace hpcmon::resilience
