#include "resilience/wal.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>

#include "core/crc32.hpp"
#include "core/strings.hpp"
#include "transport/codec.hpp"

namespace hpcmon::resilience {

namespace fs = std::filesystem;
using core::SampleBatch;
using core::Status;
using core::TimePoint;

namespace {
constexpr std::uint32_t kWalMagic = 0x4C575048;  // "HPWL"
constexpr std::uint32_t kWalVersion = 1;
// A record longer than this is treated as a corrupt length header: no sane
// sweep produces a 64 MiB batch, and bounding it keeps replay from trying
// to allocate garbage lengths read from a damaged file.
constexpr std::uint32_t kMaxRecordBytes = 64u << 20;

bool write_u32(std::FILE* f, std::uint32_t v) {
  return std::fwrite(&v, 4, 1, f) == 1;
}
bool read_u32(std::FILE* f, std::uint32_t& v) {
  return std::fread(&v, 4, 1, f) == 1;
}

TimePoint batch_max_time(const SampleBatch& batch) {
  TimePoint t = batch.sweep_time;
  for (const auto& s : batch.samples) t = std::max(t, s.time);
  return t;
}

/// Scan one segment; `apply` may be empty (header-validation / max-time
/// scans). Returns the newest sample time seen (INT64_MIN when none).
TimePoint scan_segment(const std::string& path,
                       const std::function<void(SampleBatch&&)>& apply,
                       ReplayStats& stats) {
  TimePoint max_time = INT64_MIN;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    ++stats.bad_segments;
    return max_time;
  }
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  if (!read_u32(f, magic) || magic != kWalMagic || !read_u32(f, version) ||
      version != kWalVersion) {
    ++stats.bad_segments;
    std::fclose(f);
    return max_time;
  }
  ++stats.segments;
  std::vector<std::uint8_t> payload;
  for (;;) {
    std::uint32_t len = 0;
    std::uint32_t crc = 0;
    if (!read_u32(f, len)) break;  // clean end of segment
    if (!read_u32(f, crc) || len > kMaxRecordBytes) {
      // Header torn mid-write (or length garbage): everything before the
      // tear is already applied; stop here.
      ++stats.torn_tails;
      break;
    }
    payload.resize(len);
    if (len != 0 && std::fread(payload.data(), 1, len, f) != len) {
      ++stats.torn_tails;  // payload torn mid-write
      break;
    }
    if (core::crc32(payload.data(), payload.size()) != crc) {
      ++stats.corrupt_skipped;  // bit rot: skip this record, keep scanning
      continue;
    }
    transport::Frame frame;
    frame.type = transport::FrameType::kSamples;
    frame.payload = payload;
    auto batch = transport::decode_samples(frame);
    if (!batch.is_ok()) {
      ++stats.corrupt_skipped;
      continue;
    }
    ++stats.records;
    stats.samples += batch.value().size();
    max_time = std::max(max_time, batch_max_time(batch.value()));
    if (apply) apply(std::move(batch).take());
  }
  std::fclose(f);
  return max_time;
}

/// Segment files in `dir`, ascending by index.
std::vector<std::pair<std::uint64_t, std::string>> list_segments(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    unsigned long long index = 0;
    int consumed = 0;
    if (std::sscanf(name.c_str(), "wal-%20llu.seg%n", &index, &consumed) == 1 &&
        consumed == static_cast<int>(name.size())) {
      out.emplace_back(index, entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}
}  // namespace

std::string ReplayStats::to_string() const {
  return core::strformat(
      "replay segs=%llu rec=%llu samples=%llu corrupt=%llu torn=%llu bad=%llu",
      static_cast<unsigned long long>(segments),
      static_cast<unsigned long long>(records),
      static_cast<unsigned long long>(samples),
      static_cast<unsigned long long>(corrupt_skipped),
      static_cast<unsigned long long>(torn_tails),
      static_cast<unsigned long long>(bad_segments));
}

WriteAheadLog::WriteAheadLog(WalOptions opts) : opts_(std::move(opts)) {
  if (opts_.segment_bytes < 64) opts_.segment_bytes = 64;
  std::error_code ec;
  fs::create_directories(opts_.dir, ec);
  std::uint64_t highest = 0;
  for (auto& [index, path] : list_segments(opts_.dir)) {
    // Pre-existing segments (a previous incarnation's log) become sealed:
    // replayable and truncatable, never appended to — so a torn tail from
    // the crash we are recovering from can never be written past.
    ReplayStats scratch;
    Sealed s;
    s.index = index;
    s.path = path;
    s.max_time = scan_segment(path, {}, scratch);
    sealed_.push_back(std::move(s));
    highest = std::max(highest, index);
  }
  if (!open_segment(highest + 1).is_ok()) dead_ = true;
}

WriteAheadLog::~WriteAheadLog() {
  if (file_ != nullptr) std::fclose(file_);
}

std::string WriteAheadLog::segment_path(std::uint64_t index) const {
  return opts_.dir +
         core::strformat("/wal-%08llu.seg",
                         static_cast<unsigned long long>(index));
}

core::Status WriteAheadLog::open_segment(std::uint64_t index) {
  file_ = std::fopen(segment_path(index).c_str(), "wb");
  if (file_ == nullptr) {
    return Status::error("wal: cannot open " + segment_path(index));
  }
  active_index_ = index;
  active_max_time_ = INT64_MIN;
  file_bytes_ = 8;
  segments_created_.add();
  if (!write_u32(file_, kWalMagic) || !write_u32(file_, kWalVersion) ||
      std::fflush(file_) != 0) {
    return Status::error("wal: short header write");
  }
  return Status::ok();
}

void WriteAheadLog::seal_active() {
  std::fclose(file_);
  file_ = nullptr;
  Sealed s;
  s.index = active_index_;
  s.path = segment_path(active_index_);
  s.max_time = active_max_time_;
  sealed_.push_back(std::move(s));
}

core::Status WriteAheadLog::append(const SampleBatch& batch) {
  if (batch.empty()) return Status::ok();
  if (dead_ || file_ == nullptr) {
    append_failures_.add();
    return Status::error("wal: log is poisoned");
  }
  if (opts_.faults != nullptr) {
    // One fs-op consult per logical append (the record write); the generic
    // injector maps onto the WAL's two observable failure shapes.
    switch (opts_.faults->fs_fault(core::FsOp::kWrite)) {
      case core::FsFault::kNone:
        break;
      case core::FsFault::kError:
        append_failures_.add();
        return Status::error("wal: injected I/O error");
      case core::FsFault::kEnospc:
        append_failures_.add();
        return Status::error("wal: injected ENOSPC");
      case core::FsFault::kShortWrite:
      case core::FsFault::kCrash:
        // A crash mid-append and a short write are indistinguishable to the
        // next reader: both leave a torn tail that replay must tolerate.
        simulate_torn_tail();
        return Status::error("wal: injected short write (torn tail)");
    }
  }
  const auto payload = transport::encode_samples(batch).payload;
  const auto len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = core::crc32(payload.data(), payload.size());
  const bool ok = write_u32(file_, len) && write_u32(file_, crc) &&
                  std::fwrite(payload.data(), 1, payload.size(), file_) ==
                      payload.size() &&
                  std::fflush(file_) == 0;
  if (!ok) {
    // A real short write leaves an undefined tail; poison the log so the
    // damage is bounded to one record (replay tolerates the tear).
    dead_ = true;
    append_failures_.add();
    return Status::error("wal: short write");
  }
  file_bytes_ += 8 + payload.size();
  active_max_time_ = std::max(active_max_time_, batch_max_time(batch));
  appended_records_.add();
  appended_samples_.add(batch.size());
  appended_bytes_.add(8 + payload.size());
  if (file_bytes_ >= opts_.segment_bytes) {
    seal_active();
    if (!open_segment(active_index_ + 1).is_ok()) dead_ = true;
  }
  return Status::ok();
}

core::Status WriteAheadLog::rotate() {
  if (file_ != nullptr) seal_active();
  const auto st = open_segment(active_index_ + 1);
  dead_ = !st.is_ok();
  return st;
}

core::Status WriteAheadLog::sync() {
  if (file_ == nullptr) return Status::error("wal: no active segment");
  return std::fflush(file_) == 0 ? Status::ok()
                                 : Status::error("wal: flush failed");
}

void WriteAheadLog::simulate_torn_tail() {
  if (file_ == nullptr) return;
  // Promise an 80-byte payload, deliver half of it, then "crash".
  const std::vector<std::uint8_t> half(40, 0xAB);
  write_u32(file_, 80);
  write_u32(file_, core::crc32(half.data(), half.size()));
  std::fwrite(half.data(), 1, half.size(), file_);
  std::fflush(file_);
  dead_ = true;
  append_failures_.add();
}

std::size_t WriteAheadLog::truncate_before(TimePoint cutoff) {
  std::size_t removed = 0;
  auto it = sealed_.begin();
  while (it != sealed_.end() && it->max_time < cutoff) {
    std::error_code ec;
    fs::remove(it->path, ec);
    it = sealed_.erase(it);
    ++removed;
    segments_truncated_.add();
  }
  return removed;
}

ReplayStats WriteAheadLog::replay(
    const std::string& dir,
    const std::function<void(SampleBatch&&)>& apply) {
  ReplayStats stats;
  for (auto& [index, path] : list_segments(dir)) {
    scan_segment(path, apply, stats);
  }
  return stats;
}

WalStats WriteAheadLog::stats() const {
  WalStats s;
  s.appended_records = appended_records_.value();
  s.appended_samples = appended_samples_.value();
  s.appended_bytes = appended_bytes_.value();
  s.append_failures = append_failures_.value();
  s.segments_created = segments_created_.value();
  s.segments_truncated = segments_truncated_.value();
  return s;
}

void WriteAheadLog::attach_to(obs::ObsRegistry& registry) const {
  registry.attach({"resilience.wal_records", "records",
                   "sample batches appended to the write-ahead log"},
                  &appended_records_);
  registry.attach({"resilience.wal_samples", "samples",
                   "samples made durable by the WAL"},
                  &appended_samples_);
  registry.attach({"resilience.wal_bytes", "bytes",
                   "bytes appended to the WAL"},
                  &appended_bytes_);
  registry.attach({"resilience.wal_append_failures", "records",
                   "WAL appends that failed (I/O error or torn write)"},
                  &append_failures_);
  registry.attach({"resilience.wal_segments_created", "segments",
                   "WAL segments opened (initial + rotations)"},
                  &segments_created_);
  registry.attach(
      {"resilience.wal_segments_truncated", "segments",
       "sealed WAL segments deleted past the durability watermark"},
      &segments_truncated_);
}

}  // namespace hpcmon::resilience
