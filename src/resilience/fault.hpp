// Deterministic fault injection for the resilience tier.
//
// Every site in the paper learned its failure modes the hard way: hung
// vendor probes, lossy undocumented transports, stores that could not be
// trusted across restarts (Secs. III-IV). hpcmon makes those failure modes
// first-class test inputs instead. A FaultPlan is a seeded-RNG-driven (plus
// optionally scripted) schedule of faults; wrappers consult it at well-
// defined points:
//   * FaultySampler  — wraps any collect::Sampler; injects thrown errors and
//     simulated hangs (the hang parks the calling thread on a condition
//     variable until release_hangs(), so a SupervisedSampler watchdog can be
//     exercised deterministically and CI can always reclaim the thread).
//   * core::FsFaultInjector — FaultPlan implements the generic filesystem
//     fault interface: every durable-state writer (the WAL's appends, the
//     tiered-retention compactor's temp-write/fsync/rename/unlink sequences)
//     consults fs_fault(op) before each physical operation. One shared
//     monotone fs-op counter drives the scripted `fs_*_at` one-shots, so a
//     crash-matrix test can kill a multi-file transaction at exactly the
//     Nth filesystem operation and assert byte-exact recovery.
//   * core::SocketFaultInjector — the same pattern for the network: the
//     relay client and the serve server consult socket_fault(op) before
//     every connect/send/recv. One shared monotone socket-op counter drives
//     the scripted `sock_*_at` one-shots, so a resume test can reset the
//     wire at exactly the Nth socket operation of a send/ack exchange and
//     assert byte-exact recovery on the aggregator.
//   * ReliableDelivery — faulty_deliver() wraps a delivery function with
//     injected failures to drive retry/dead-letter paths.
//
// Determinism: all probabilistic draws come from one seeded core::Rng behind
// a mutex; given a fixed seed and a fixed sequence of queries the injected
// fault schedule is bit-reproducible. Scripted one-shots (`*_at` fields,
// 1-based operation indices) fire regardless of the probabilities, so tests
// can place a single fault at an exact operation.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "collect/sampler.hpp"
#include "core/fsfault.hpp"
#include "core/rng.hpp"
#include "core/sockfault.hpp"

namespace hpcmon::resilience {

struct FaultSpec {
  // Per-operation probabilities (0 disables the class of fault).
  double sampler_error_p = 0.0;
  double sampler_hang_p = 0.0;
  double delivery_error_p = 0.0;
  // Filesystem fault probabilities, consulted once per physical fs
  // operation by every fault-aware durable-state writer. Short writes
  // apply only to kWrite ops; rename errors only to kRename; ENOSPC to
  // the space-consuming ops (open/write/fsync); error and crash to all.
  double fs_error_p = 0.0;
  double fs_short_write_p = 0.0;
  double fs_enospc_p = 0.0;
  double fs_rename_error_p = 0.0;
  double fs_crash_p = 0.0;
  // Socket fault probabilities, consulted once per physical socket operation
  // by fault-aware network code (relay client, serve server). Short writes
  // and torn frames apply only to kSend ops; short reads only to kRecv;
  // resets and stalls to all.
  double sock_reset_p = 0.0;
  double sock_stall_p = 0.0;
  double sock_short_write_p = 0.0;
  double sock_short_read_p = 0.0;
  double sock_torn_frame_p = 0.0;
  // Scripted one-shots: fire at the Nth query of that category (1-based);
  // 0 disables. Fires in addition to any probabilistic faults. All fs_*_at
  // indices count the SAME fs-op stream, so "crash at fs op 7" is exact
  // regardless of which fault classes are armed.
  std::uint64_t sampler_error_at = 0;
  std::uint64_t sampler_hang_at = 0;
  std::uint64_t delivery_error_at = 0;
  std::uint64_t fs_error_at = 0;
  std::uint64_t fs_short_write_at = 0;
  std::uint64_t fs_enospc_at = 0;
  std::uint64_t fs_rename_error_at = 0;
  std::uint64_t fs_crash_at = 0;
  // All sock_*_at indices count the SAME socket-op stream (distinct from the
  // fs-op stream), so "reset at socket op 7" is exact regardless of which
  // fault classes are armed.
  std::uint64_t sock_reset_at = 0;
  std::uint64_t sock_stall_at = 0;
  std::uint64_t sock_short_write_at = 0;
  std::uint64_t sock_short_read_at = 0;
  std::uint64_t sock_torn_frame_at = 0;
  /// Every sampler query after `sampler_hang_at` also hangs when set —
  /// models a permanently wedged probe rather than a one-off stall.
  bool sampler_hang_sticky = false;
};

/// Counters of faults actually injected (for asserting test coverage).
struct InjectedFaults {
  std::uint64_t sampler_errors = 0;
  std::uint64_t sampler_hangs = 0;
  std::uint64_t delivery_errors = 0;
  std::uint64_t fs_errors = 0;
  std::uint64_t fs_short_writes = 0;
  std::uint64_t fs_enospc = 0;
  std::uint64_t fs_rename_errors = 0;
  std::uint64_t fs_crashes = 0;
  std::uint64_t sock_resets = 0;
  std::uint64_t sock_stalls = 0;
  std::uint64_t sock_short_writes = 0;
  std::uint64_t sock_short_reads = 0;
  std::uint64_t sock_torn_frames = 0;
};

class FaultPlan : public core::FsFaultInjector, public core::SocketFaultInjector {
 public:
  explicit FaultPlan(std::uint64_t seed, FaultSpec spec = {});

  /// Replace the active spec (thread-safe). Operation counters and the RNG
  /// stream keep running, so a ChaosSchedule can swap phase specs mid-run
  /// without disturbing determinism of the draws themselves.
  void set_spec(FaultSpec spec);
  FaultSpec spec() const;

  // Each query advances that category's operation counter; thread-safe.
  bool sampler_error();
  bool sampler_hang();
  bool delivery_error();

  /// Generic filesystem fault point (core::FsFaultInjector). Advances the
  /// shared fs-op counter; scripted one-shots take precedence over the
  /// probabilistic draws, and at most one fault fires per operation.
  core::FsFault fs_fault(core::FsOp op) override;

  /// Total filesystem operations consulted so far — lets a crash-matrix
  /// test measure a pass's op count before sweeping fs_crash_at over it.
  std::uint64_t fs_ops() const;

  /// Generic socket fault point (core::SocketFaultInjector). Advances the
  /// shared socket-op counter; scripted one-shots take precedence over the
  /// probabilistic draws, and at most one fault fires per operation.
  core::SocketFault socket_fault(core::SocketOp op) override;

  /// Total socket operations consulted so far — lets a resume test measure
  /// a session's op count before sweeping sock_reset_at over it.
  std::uint64_t socket_ops() const;

  /// Park the calling thread (a simulated hang) until release_hangs().
  void enter_hang();
  /// Wake every simulated hang and wait until the hung threads have left
  /// enter_hang(), so tests tear down deterministically.
  void release_hangs();
  std::size_t active_hangs() const;

  InjectedFaults injected() const;

 private:
  bool draw(double p, std::uint64_t& counter, std::uint64_t at,
            std::uint64_t& injected_counter, bool sticky = false);

  mutable std::mutex mu_;
  std::condition_variable hang_cv_;
  core::Rng rng_;
  FaultSpec spec_;
  std::uint64_t sampler_error_ops_ = 0;
  std::uint64_t sampler_hang_ops_ = 0;
  std::uint64_t fs_ops_ = 0;
  std::uint64_t sock_ops_ = 0;
  std::uint64_t delivery_ops_ = 0;
  std::size_t hanging_ = 0;
  bool released_ = false;
  InjectedFaults injected_;
};

/// Wrap `inner` so its sample() calls consult `plan`: an injected error
/// throws std::runtime_error; an injected hang parks the calling thread
/// until plan.release_hangs(). The plan must outlive every thread that may
/// still be inside sample().
class FaultySampler : public collect::Sampler {
 public:
  FaultySampler(std::unique_ptr<collect::Sampler> inner, FaultPlan& plan)
      : inner_(std::move(inner)), plan_(plan) {}

  std::string name() const override { return inner_->name(); }
  void sample(core::TimePoint sweep_time, core::SampleBatch& out) override;

 private:
  std::unique_ptr<collect::Sampler> inner_;
  FaultPlan& plan_;
};

}  // namespace hpcmon::resilience
