#include "resilience/metrics.hpp"

namespace hpcmon::resilience {

std::vector<core::Sample> resilience_samples(core::MetricRegistry& registry,
                                             core::ComponentId component,
                                             core::TimePoint now,
                                             const WalStats* wal,
                                             const ReplayStats* replay,
                                             const SupervisorStats* supervisor,
                                             const DeliveryStats* delivery) {
  std::vector<core::Sample> out;
  const auto emit = [&](const char* name, const char* units, const char* desc,
                        bool counter, double value) {
    const auto metric = registry.register_metric({name, units, desc, counter});
    out.push_back({registry.series(metric, component), now, value});
  };
  if (wal != nullptr) {
    emit("resilience.wal_records", "records",
         "sample batches appended to the write-ahead log", true,
         static_cast<double>(wal->appended_records));
    emit("resilience.wal_bytes", "bytes", "bytes appended to the WAL", true,
         static_cast<double>(wal->appended_bytes));
    emit("resilience.wal_append_failures", "records",
         "WAL appends that failed (I/O error or torn write)", true,
         static_cast<double>(wal->append_failures));
    emit("resilience.wal_segments_truncated", "segments",
         "sealed WAL segments deleted past the durability watermark", true,
         static_cast<double>(wal->segments_truncated));
  }
  if (replay != nullptr) {
    emit("resilience.replay_records", "records",
         "WAL records restored at the last restart", true,
         static_cast<double>(replay->records));
    emit("resilience.replay_samples", "samples",
         "samples restored from the WAL at the last restart", true,
         static_cast<double>(replay->samples));
    emit("resilience.replay_corrupt_skipped", "records",
         "CRC-mismatched WAL records skipped during replay", true,
         static_cast<double>(replay->corrupt_skipped));
    emit("resilience.replay_torn_tails", "records",
         "torn trailing WAL records tolerated during replay", true,
         static_cast<double>(replay->torn_tails));
  }
  if (supervisor != nullptr) {
    emit("resilience.sampler_errors", "calls",
         "supervised sampler calls that threw", true,
         static_cast<double>(supervisor->errors));
    emit("resilience.sampler_timeouts", "calls",
         "supervised sampler calls abandoned at the deadline", true,
         static_cast<double>(supervisor->timeouts));
    emit("resilience.sampler_skipped", "calls",
         "sweeps that skipped a quarantined (breaker-open) sampler", true,
         static_cast<double>(supervisor->skipped));
    emit("resilience.sampler_successes", "calls",
         "supervised sampler calls that completed in time", true,
         static_cast<double>(supervisor->successes));
  }
  if (delivery != nullptr) {
    emit("resilience.delivery_retries", "attempts",
         "extra delivery attempts beyond the first", true,
         static_cast<double>(delivery->retries));
    emit("resilience.dead_letters", "frames",
         "frames parked in the dead-letter queue (cumulative)", true,
         static_cast<double>(delivery->dead_lettered));
    emit("resilience.dead_letter_evictions", "frames",
         "dead letters evicted by the bounded queue", true,
         static_cast<double>(delivery->evicted));
    emit("resilience.redelivered", "frames",
         "dead letters successfully redelivered", true,
         static_cast<double>(delivery->redelivered));
  }
  return out;
}

}  // namespace hpcmon::resilience
