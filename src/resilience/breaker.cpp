#include "resilience/breaker.hpp"

#include <algorithm>
#include <cmath>

namespace hpcmon::resilience {

std::string_view to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half_open";
  }
  return "?";
}

bool CircuitBreaker::allow(core::TimePoint now) {
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (now >= retry_at_) {
        state_ = BreakerState::kHalfOpen;
        ++stats_.half_open_probes;
        return true;  // this call is the probe
      }
      ++stats_.denied;
      return false;
    case BreakerState::kHalfOpen:
      // One probe at a time; further calls wait for its verdict.
      ++stats_.denied;
      return false;
  }
  return true;
}

void CircuitBreaker::record_success(core::TimePoint) {
  consecutive_failures_ = 0;
  if (state_ == BreakerState::kHalfOpen) {
    state_ = BreakerState::kClosed;
    reopen_streak_ = 0;
    ++stats_.closes;
  }
}

void CircuitBreaker::record_failure(core::TimePoint now) {
  if (state_ == BreakerState::kHalfOpen) {
    open(now);  // probe failed: back off harder
    return;
  }
  ++consecutive_failures_;
  if (state_ == BreakerState::kClosed &&
      consecutive_failures_ >= config_.failure_threshold) {
    open(now);
  }
}

void CircuitBreaker::open(core::TimePoint now) {
  state_ = BreakerState::kOpen;
  ++stats_.opens;
  ++reopen_streak_;
  const double factor =
      std::pow(config_.backoff_factor, reopen_streak_ - 1);
  double cooldown = static_cast<double>(config_.cooldown) * factor;
  cooldown = std::min(cooldown, static_cast<double>(config_.max_cooldown));
  if (config_.jitter > 0.0) {
    cooldown *= 1.0 + config_.jitter * rng_.uniform(-1.0, 1.0);
  }
  retry_at_ = now + static_cast<core::Duration>(std::max(cooldown, 1.0));
}

}  // namespace hpcmon::resilience
