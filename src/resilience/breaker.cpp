#include "resilience/breaker.hpp"

#include <algorithm>
#include <cmath>

namespace hpcmon::resilience {

std::string_view to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half_open";
  }
  return "?";
}

bool CircuitBreaker::allow(core::TimePoint now) {
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (now >= retry_at_) {
        state_ = BreakerState::kHalfOpen;
        half_open_probes_.add();
        return true;  // this call is the probe
      }
      denied_.add();
      return false;
    case BreakerState::kHalfOpen:
      // One probe at a time; further calls wait for its verdict.
      denied_.add();
      return false;
  }
  return true;
}

void CircuitBreaker::record_success(core::TimePoint) {
  consecutive_failures_ = 0;
  if (state_ == BreakerState::kHalfOpen) {
    state_ = BreakerState::kClosed;
    reopen_streak_ = 0;
    closes_.add();
  }
}

void CircuitBreaker::record_failure(core::TimePoint now) {
  if (state_ == BreakerState::kHalfOpen) {
    open(now);  // probe failed: back off harder
    return;
  }
  ++consecutive_failures_;
  if (state_ == BreakerState::kClosed &&
      consecutive_failures_ >= config_.failure_threshold) {
    open(now);
  }
}

void CircuitBreaker::open(core::TimePoint now) {
  state_ = BreakerState::kOpen;
  opens_.add();
  ++reopen_streak_;
  const double factor =
      std::pow(config_.backoff_factor, reopen_streak_ - 1);
  double cooldown = static_cast<double>(config_.cooldown) * factor;
  cooldown = std::min(cooldown, static_cast<double>(config_.max_cooldown));
  if (config_.jitter > 0.0) {
    cooldown *= 1.0 + config_.jitter * rng_.uniform(-1.0, 1.0);
  }
  retry_at_ = now + static_cast<core::Duration>(std::max(cooldown, 1.0));
}

BreakerStats CircuitBreaker::stats() const {
  BreakerStats s;
  s.opens = opens_.value();
  s.half_open_probes = half_open_probes_.value();
  s.closes = closes_.value();
  s.denied = denied_.value();
  return s;
}

void CircuitBreaker::attach_to(obs::ObsRegistry& registry) const {
  registry.attach({"resilience.breaker_opens", "transitions",
                   "circuit breakers opened (quarantine began)"},
                  &opens_);
  registry.attach({"resilience.breaker_probes", "calls",
                   "half-open probes admitted after a cooldown"},
                  &half_open_probes_);
  registry.attach({"resilience.breaker_closes", "transitions",
                   "breakers closed again after a successful probe"},
                  &closes_);
  registry.attach({"resilience.breaker_denied", "calls",
                   "calls refused while a breaker was open"},
                  &denied_);
}

}  // namespace hpcmon::resilience
