#include "resilience/supervisor.hpp"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "core/strings.hpp"

namespace hpcmon::resilience {

SupervisorStats& SupervisorStats::operator+=(const SupervisorStats& o) {
  calls += o.calls;
  successes += o.successes;
  errors += o.errors;
  timeouts += o.timeouts;
  skipped += o.skipped;
  downsampled += o.downsampled;
  samples_merged += o.samples_merged;
  return *this;
}

std::string SupervisorStats::to_string() const {
  return core::strformat(
      "sup calls=%llu ok=%llu err=%llu timeout=%llu skipped=%llu downs=%llu",
      static_cast<unsigned long long>(calls),
      static_cast<unsigned long long>(successes),
      static_cast<unsigned long long>(errors),
      static_cast<unsigned long long>(timeouts),
      static_cast<unsigned long long>(skipped),
      static_cast<unsigned long long>(downsampled));
}

SupervisedSampler::SupervisedSampler(std::unique_ptr<collect::Sampler> inner,
                                     SupervisorOptions options)
    : inner_(std::move(inner)),
      options_(options),
      breaker_(options.breaker, options.seed) {}

void SupervisedSampler::sample(core::TimePoint sweep_time,
                               core::SampleBatch& out) {
  ++stats_.calls;
  const auto stride = stride_.load(std::memory_order_relaxed);
  const auto seq = sweep_seq_++;
  if (stride > 1 && (seq % stride) != 0) {
    ++stats_.downsampled;
    return;  // degraded cadence: skip this sweep, no breaker accounting
  }
  if (!breaker_.allow(sweep_time)) {
    ++stats_.skipped;
    return;  // quarantined: the sweep proceeds without this source
  }
  if (options_.deadline_ms <= 0) {
    run_inline(sweep_time, out);
  } else {
    run_with_deadline(sweep_time, out);
  }
}

void SupervisedSampler::run_inline(core::TimePoint sweep_time,
                                   core::SampleBatch& out) {
  const std::size_t before = out.samples.size();
  try {
    inner_->sample(sweep_time, out);
  } catch (const std::exception&) {
    // Partial output from a throwing sampler is untrustworthy; discard it.
    out.samples.resize(before);
    ++stats_.errors;
    breaker_.record_failure(sweep_time);
    return;
  }
  ++stats_.successes;
  stats_.samples_merged += out.samples.size() - before;
  breaker_.record_success(sweep_time);
}

void SupervisedSampler::run_with_deadline(core::TimePoint sweep_time,
                                          core::SampleBatch& out) {
  // The job outlives an abandoned call via shared ownership: the watchdog
  // thread only touches the job and its own copy of inner_, never `out` or
  // `this`, so a timeout cleanly detaches it.
  struct Job {
    core::SampleBatch batch;
    bool done = false;
    bool failed = false;
    std::mutex mu;
    std::condition_variable cv;
  };
  auto job = std::make_shared<Job>();
  job->batch.sweep_time = out.sweep_time;
  job->batch.origin = out.origin;
  std::thread watchdog([inner = inner_, job, sweep_time] {
    bool failed = false;
    try {
      inner->sample(sweep_time, job->batch);
    } catch (const std::exception&) {
      failed = true;
    }
    {
      std::scoped_lock lock(job->mu);
      job->done = true;
      job->failed = failed;
    }
    job->cv.notify_all();
  });

  bool done = false;
  {
    std::unique_lock lock(job->mu);
    done = job->cv.wait_for(lock, std::chrono::milliseconds(options_.deadline_ms),
                            [&] { return job->done; });
  }
  if (!done) {
    watchdog.detach();  // abandon the hung call; its output is discarded
    ++stats_.timeouts;
    breaker_.record_failure(sweep_time);
    return;
  }
  watchdog.join();
  if (job->failed) {
    ++stats_.errors;
    breaker_.record_failure(sweep_time);
    return;
  }
  out.samples.insert(out.samples.end(), job->batch.samples.begin(),
                     job->batch.samples.end());
  ++stats_.successes;
  stats_.samples_merged += job->batch.samples.size();
  breaker_.record_success(sweep_time);
}

}  // namespace hpcmon::resilience
