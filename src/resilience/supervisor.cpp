#include "resilience/supervisor.hpp"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace hpcmon::resilience {

SupervisorStats& SupervisorStats::operator+=(const SupervisorStats& o) {
  calls += o.calls;
  successes += o.successes;
  errors += o.errors;
  timeouts += o.timeouts;
  skipped += o.skipped;
  downsampled += o.downsampled;
  samples_merged += o.samples_merged;
  return *this;
}

SupervisedSampler::SupervisedSampler(std::unique_ptr<collect::Sampler> inner,
                                     SupervisorOptions options)
    : inner_(std::move(inner)),
      options_(options),
      breaker_(options.breaker, options.seed) {}

void SupervisedSampler::sample(core::TimePoint sweep_time,
                               core::SampleBatch& out) {
  calls_.add();
  const auto stride = stride_.load(std::memory_order_relaxed);
  const auto seq = sweep_seq_++;
  if (stride > 1 && (seq % stride) != 0) {
    downsampled_.add();
    return;  // degraded cadence: skip this sweep, no breaker accounting
  }
  if (!breaker_.allow(sweep_time)) {
    skipped_.add();
    return;  // quarantined: the sweep proceeds without this source
  }
  if (options_.deadline_ms <= 0) {
    run_inline(sweep_time, out);
  } else {
    run_with_deadline(sweep_time, out);
  }
}

void SupervisedSampler::run_inline(core::TimePoint sweep_time,
                                   core::SampleBatch& out) {
  const std::size_t before = out.samples.size();
  try {
    inner_->sample(sweep_time, out);
  } catch (const std::exception&) {
    // Partial output from a throwing sampler is untrustworthy; discard it.
    out.samples.resize(before);
    errors_.add();
    breaker_.record_failure(sweep_time);
    return;
  }
  successes_.add();
  samples_merged_.add(out.samples.size() - before);
  breaker_.record_success(sweep_time);
}

void SupervisedSampler::run_with_deadline(core::TimePoint sweep_time,
                                          core::SampleBatch& out) {
  // The job outlives an abandoned call via shared ownership: the watchdog
  // thread only touches the job and its own copy of inner_, never `out` or
  // `this`, so a timeout cleanly detaches it.
  struct Job {
    core::SampleBatch batch;
    bool done = false;
    bool failed = false;
    std::mutex mu;
    std::condition_variable cv;
  };
  auto job = std::make_shared<Job>();
  job->batch.sweep_time = out.sweep_time;
  job->batch.origin = out.origin;
  std::thread watchdog([inner = inner_, job, sweep_time] {
    bool failed = false;
    try {
      inner->sample(sweep_time, job->batch);
    } catch (const std::exception&) {
      failed = true;
    }
    {
      std::scoped_lock lock(job->mu);
      job->done = true;
      job->failed = failed;
    }
    job->cv.notify_all();
  });

  bool done = false;
  {
    std::unique_lock lock(job->mu);
    done = job->cv.wait_for(lock, std::chrono::milliseconds(options_.deadline_ms),
                            [&] { return job->done; });
  }
  if (!done) {
    watchdog.detach();  // abandon the hung call; its output is discarded
    timeouts_.add();
    breaker_.record_failure(sweep_time);
    return;
  }
  watchdog.join();
  if (job->failed) {
    errors_.add();
    breaker_.record_failure(sweep_time);
    return;
  }
  out.samples.insert(out.samples.end(), job->batch.samples.begin(),
                     job->batch.samples.end());
  successes_.add();
  samples_merged_.add(job->batch.samples.size());
  breaker_.record_success(sweep_time);
}

SupervisorStats SupervisedSampler::stats() const {
  SupervisorStats s;
  s.calls = calls_.value();
  s.successes = successes_.value();
  s.errors = errors_.value();
  s.timeouts = timeouts_.value();
  s.skipped = skipped_.value();
  s.downsampled = downsampled_.value();
  s.samples_merged = samples_merged_.value();
  return s;
}

void SupervisedSampler::attach_to(obs::ObsRegistry& registry) const {
  registry.attach({"resilience.sampler_calls", "calls",
                   "sweeps routed at supervised samplers"},
                  &calls_);
  registry.attach({"resilience.sampler_successes", "calls",
                   "supervised sampler calls that completed in time"},
                  &successes_);
  registry.attach({"resilience.sampler_errors", "calls",
                   "supervised sampler calls that threw"},
                  &errors_);
  registry.attach({"resilience.sampler_timeouts", "calls",
                   "supervised sampler calls abandoned at the deadline"},
                  &timeouts_);
  registry.attach({"resilience.sampler_skipped", "calls",
                   "sweeps that skipped a quarantined (breaker-open) sampler"},
                  &skipped_);
  registry.attach({"resilience.sampler_downsampled", "calls",
                   "sweeps skipped by a widened degradation cadence"},
                  &downsampled_);
  registry.attach({"resilience.sampler_samples", "samples",
                   "samples merged into sweeps by supervised samplers"},
                  &samples_merged_);
  breaker_.attach_to(registry);
}

}  // namespace hpcmon::resilience
