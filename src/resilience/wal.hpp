// Segmented write-ahead log for the ingest path.
//
// The paper's sites repeatedly lost analyses to monitoring that was not
// trustworthy across restarts (Sec. IV; Table I "Data Storage": stores must
// be dependable, "always on"). hpcmon's hot tier is in-memory, so a crash
// between retention passes loses every hot sample. The WAL closes that hole:
// every sample frame is appended (CRC32-framed) to an append-only segment
// file *before* it is considered ingested; on restart, replay() restores the
// un-persisted samples into the store, byte-identical to an uninterrupted
// run (duplicate suppression falls out of the store's strictly-increasing
// per-series timestamps).
//
// On-disk format (host-endian, like the archive files):
//   segment file "wal-%08llu.seg":
//     [u32 magic 'HPWL'][u32 version]
//     record*: [u32 payload_len][u32 crc32(payload)][payload]
//   payload = the binary transport codec's SampleBatch encoding
//             (transport::encode_samples), so the WAL reuses the documented
//             wire format instead of inventing a second one.
//
// Failure semantics on replay:
//   * torn tail (partial trailing record, e.g. crash mid-write): tolerated —
//     scanning stops at the tear, everything before it is restored, and the
//     tear is counted (torn_tails);
//   * CRC mismatch with an intact length header: the record is skipped and
//     counted (corrupt_skipped); scanning resumes at the next record;
//   * bad segment header: the whole segment is skipped and counted.
//
// Appends fwrite+fflush each record so a crashed *process* loses nothing
// already acknowledged (media-level fsync durability is out of scope for the
// simulation substrate and called out in DESIGN.md). Rotation starts a new
// segment once the active one exceeds segment_bytes; truncate_before()
// deletes sealed segments whose newest sample is older than a durability
// watermark (e.g. the hot-window cutoff once the archive has been spilled).
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/result.hpp"
#include "core/sample.hpp"
#include "obs/registry.hpp"
#include "resilience/fault.hpp"

namespace hpcmon::resilience {

struct WalOptions {
  std::string dir;                       // segment directory (created if absent)
  std::size_t segment_bytes = 1u << 20;  // rotate past this size
  FaultPlan* faults = nullptr;           // optional file-layer fault injection
};

/// Typed view over the WAL's obs instruments (see WriteAheadLog::attach_to).
struct WalStats {
  std::uint64_t appended_records = 0;
  std::uint64_t appended_samples = 0;
  std::uint64_t appended_bytes = 0;
  std::uint64_t append_failures = 0;  // injected/real I/O errors, short writes
  std::uint64_t segments_created = 0;
  std::uint64_t segments_truncated = 0;
};

struct ReplayStats {
  std::uint64_t segments = 0;
  std::uint64_t records = 0;
  std::uint64_t samples = 0;
  std::uint64_t corrupt_skipped = 0;  // CRC-mismatched records skipped
  std::uint64_t torn_tails = 0;       // partial trailing records tolerated
  std::uint64_t bad_segments = 0;     // unreadable/garbled segment headers
  std::string to_string() const;
};

class WriteAheadLog {
 public:
  /// Opens `opts.dir` (creating it if needed) and starts a fresh segment
  /// after the highest existing index; pre-existing segments are treated as
  /// sealed (replayable, truncatable) and never appended to.
  explicit WriteAheadLog(WalOptions opts);
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Append one batch as a CRC-framed record (empty batches are a no-op).
  /// The record is flushed before returning. Errors (real or injected) are
  /// counted; an injected short write leaves a torn tail and poisons the
  /// log (subsequent appends fail), simulating a crash mid-record.
  core::Status append(const core::SampleBatch& batch);

  /// Flush the active segment's stdio buffer.
  core::Status sync();

  /// Crash drill: write a deliberately torn record (length header promises
  /// more bytes than are written) and poison the log. Replay must tolerate
  /// the tear.
  void simulate_torn_tail();

  /// Recover a poisoned log: seal the damaged active segment (replay already
  /// tolerates its torn tail) and open a fresh one, clearing the poison on
  /// success. Appending after a tear must go to a NEW segment — anything
  /// written after a torn record in the same file would be unreachable to
  /// replay. No-op-ish on a healthy log: the active segment just rotates.
  /// The storm-mode self-heal loop calls this; sites can too, after an
  /// operator clears a disk fault.
  core::Status rotate();

  /// Delete sealed segments whose newest sample time is < cutoff. The
  /// active segment is never deleted. Returns segments removed.
  std::size_t truncate_before(core::TimePoint cutoff);

  WalStats stats() const;
  /// Catalog the WAL's instruments as resilience.wal_* in `registry`.
  void attach_to(obs::ObsRegistry& registry) const;
  std::size_t sealed_segments() const { return sealed_.size(); }
  std::uint64_t active_segment_index() const { return active_index_; }
  bool poisoned() const { return dead_; }

  /// Scan every segment in `dir` in index order, invoking `apply` for each
  /// intact record's decoded batch. Safe on a directory with a torn tail or
  /// corrupted records (see header comment). Missing dir = empty replay.
  static ReplayStats replay(
      const std::string& dir,
      const std::function<void(core::SampleBatch&&)>& apply);

 private:
  struct Sealed {
    std::uint64_t index = 0;
    std::string path;
    core::TimePoint max_time = INT64_MIN;
  };

  std::string segment_path(std::uint64_t index) const;
  core::Status open_segment(std::uint64_t index);
  void seal_active();

  WalOptions opts_;
  std::FILE* file_ = nullptr;
  std::size_t file_bytes_ = 0;
  std::uint64_t active_index_ = 0;
  core::TimePoint active_max_time_ = INT64_MIN;
  std::vector<Sealed> sealed_;  // ascending index order
  obs::Counter appended_records_;
  obs::Counter appended_samples_;
  obs::Counter appended_bytes_;
  obs::Counter append_failures_;
  obs::Counter segments_created_;
  obs::Counter segments_truncated_;
  bool dead_ = false;
};

}  // namespace hpcmon::resilience
