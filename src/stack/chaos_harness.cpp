#include "stack/chaos_harness.hpp"

#include <algorithm>
#include <filesystem>

#include "core/config.hpp"
#include "core/strings.hpp"
#include "stack/stack.hpp"
#include "transport/codec.hpp"

namespace hpcmon::stack {

namespace {

sim::ClusterParams harness_cluster(std::uint64_t seed) {
  sim::ClusterParams p;
  p.shape.cabinets = 1;
  p.shape.chassis_per_cabinet = 2;
  p.shape.blades_per_chassis = 2;
  p.shape.nodes_per_blade = 4;
  p.shape.gpu_node_fraction = 0.25;
  p.tick = 5 * core::kSecond;
  p.seed = seed;
  return p;
}

constexpr std::size_t kBulkSeries = 32;
constexpr std::size_t kDeadLetterCap = 32;

}  // namespace

std::string ChaosReport::to_string() const {
  return core::strformat(
      "chaos[%s] survived=%d hb=%llu/%llu crit_lost=%llu bulk_shed=%llu "
      "std_shed=%llu lost=%llu max_mode=%d transitions=%llu normal=%d "
      "dlq=%zu/%zu clean=%d%s%s",
      scenario.c_str(), survived ? 1 : 0,
      static_cast<unsigned long long>(heartbeats_stored),
      static_cast<unsigned long long>(heartbeats_sent),
      static_cast<unsigned long long>(critical_lost),
      static_cast<unsigned long long>(bulk_shed),
      static_cast<unsigned long long>(standard_shed),
      static_cast<unsigned long long>(involuntary_lost), max_mode,
      static_cast<unsigned long long>(transitions), returned_to_normal ? 1 : 0,
      dead_letters, dead_letter_cap, shutdown_clean ? 1 : 0,
      failure.empty() ? "" : " FAIL: ", failure.c_str());
}

ChaosReport run_chaos(
    const resilience::ChaosScenario& scenario,
    const std::vector<std::pair<std::string, std::string>>& overrides) {
  ChaosReport report;
  report.scenario = scenario.name;
  report.dead_letter_cap = kDeadLetterCap;

  const std::string wal_dir = "/tmp/hpcmon_chaos_" + scenario.name;
  const std::string tier_dir = wal_dir + "_tiers";
  std::filesystem::remove_all(wal_dir);
  std::filesystem::remove_all(tier_dir);

  core::Config config;
  config.set("sample_interval_s", "30");
  config.set("log_interval_s", "15");
  config.set("probe_interval_s", "0");
  config.set("health_interval_s", "120");
  config.set("ingest_shards", "2");
  config.set("ingest_queue_cap", "64");
  config.set("ingest_policy", "drop_oldest");
  config.set("wal_path", wal_dir);
  config.set("dead_letter_cap", std::to_string(kDeadLetterCap));
  // A real deadline so injected hangs are abandoned to watchdog threads
  // (and reclaimed by release_hangs) instead of stalling the sweep.
  config.set("sampler_deadline_ms", "50");
  config.set("breaker_threshold", "3");
  config.set("breaker_cooldown_s", "120");
  config.set("degradation", "1");
  config.set("degradation_interval_s", "30");
  for (const auto& [k, v] : scenario.config_overrides) config.set(k, v);
  for (const auto& [k, v] : overrides) config.set(k, v);
  // Scenarios ask for a tier ladder with the sentinel "auto"; the harness
  // owns the scratch directory so reruns start clean.
  if (config.get_string("tier_dir", "") == "auto") {
    config.set("tier_dir", tier_dir);
  }

  sim::Cluster cluster(harness_cluster(scenario.seed));
  resilience::FaultPlan plan(scenario.seed);
  auto stack = std::make_unique<MonitoringStack>(cluster, config, &plan);
  auto& registry = cluster.registry();

  // The liveness proof: one critical-class heartbeat series, published
  // through the full path (router -> WAL -> ingest) every tick. After the
  // storm every beat must be in the store — byte-complete critical data.
  const auto harness_component = registry.register_component(
      {"chaos.harness", core::ComponentKind::kService,
       cluster.topology().system()});
  const auto hb_metric = registry.register_metric(
      {"chaos.heartbeat", "beats", "storm-mode liveness heartbeat", true,
       core::Priority::kCritical});
  const auto hb_series = registry.series(hb_metric, harness_component);

  // Bulk-class flood series: the load the storm phases pour in.
  std::vector<core::SeriesId> bulk_series;
  for (std::size_t i = 0; i < kBulkSeries; ++i) {
    const auto m = registry.register_metric(
        {"chaos.bulk_flood." + std::to_string(i), "points",
         "synthetic bulk-class storm load", false, core::Priority::kBulk});
    bulk_series.push_back(registry.series(m, harness_component));
  }

  resilience::ChaosSchedule schedule(scenario);
  resilience::ChaosSchedule::Hooks hooks;
  // Log storms ride the cluster's own injection machinery so the storm
  // traffic is indistinguishable from a real console flood.
  hooks.phase_start = [&cluster](const resilience::StormPhase& phase,
                                 core::TimePoint now) {
    if (phase.log_events_per_tick > 0) {
      cluster.inject_log_storm(now, phase.duration,
                               static_cast<int>(phase.log_events_per_tick),
                               "chaos storm: " + phase.label);
    }
  };
  schedule.arm(cluster.events(), cluster.now(), plan, hooks);

  // Hard crash + restart mid-storm when the scenario scripts one: the stack
  // is destroyed the way a dead process dies (no drain, no flush — buffered
  // state abandoned) and a fresh stack recovers from the same WAL and tier
  // directories. Pre-crash obs counters are merged into the final snapshot
  // so the shedding ledger spans both incarnations.
  obs::ObsSnapshot pre_crash;
  if (scenario.crash_restart_at > 0) {
    cluster.events().schedule_at(
        cluster.now() + scenario.crash_restart_at, [&](core::TimePoint) {
          pre_crash.merge(stack->obs_snapshot());
          plan.release_hangs();  // hung sampler threads must join
          stack->simulate_crash();
          stack.reset();
          stack = std::make_unique<MonitoringStack>(cluster, config, &plan);
        });
  }

  const auto tick = 10 * core::kSecond;
  cluster.events().schedule_every(
      cluster.now() + tick, tick, [&](core::TimePoint t) {
        // Heartbeat through the full stack path.
        core::SampleBatch hb;
        hb.sweep_time = t;
        hb.origin = harness_component;
        hb.samples.push_back(
            {hb_series, t, static_cast<double>(report.heartbeats_sent)});
        auto frame = transport::encode_samples(hb);
        frame.priority = core::Priority::kCritical;
        stack->router().publish(frame);
        ++report.heartbeats_sent;

        // Bulk flood when a phase calls for it: each batch strides the bulk
        // series so queue pressure lands on both shards.
        const auto flood = schedule.active_bulk_batches_per_tick();
        for (std::uint32_t b = 0; b < flood; ++b) {
          core::SampleBatch bulk;
          bulk.sweep_time = t;
          bulk.origin = harness_component;
          for (std::size_t i = 0; i < bulk_series.size(); ++i) {
            bulk.samples.push_back(
                {bulk_series[i], t + static_cast<core::Duration>(b),
                 static_cast<double>(b)});
          }
          auto bulk_frame = transport::encode_samples(bulk);
          bulk_frame.priority = core::Priority::kBulk;
          stack->router().publish(bulk_frame);
        }

        // Track the controller's trajectory.
        if (const auto* d = stack->degradation()) {
          report.max_mode =
              std::max(report.max_mode, static_cast<int>(d->mode()));
        }
      });

  cluster.run_for(scenario.total);

  // Teardown in the only safe order: wake hung sampler threads, then drain
  // and stop the pipeline under a deadline.
  plan.release_hangs();
  const auto shutdown_report =
      stack->shutdown(std::chrono::milliseconds(10000));
  report.shutdown_clean = shutdown_report.clean();
  report.survived = true;

  // Assertions read the SAME obs snapshot the degradation loop and the
  // operator report consume — no bespoke accessors, no second set of books.
  // Counters from a pre-restart incarnation are merged in so voluntary
  // shedding before the crash still shows in the ledger.
  auto snap = stack->obs_snapshot();
  snap.merge(pre_crash);
  report.critical_lost = snap.counter("ingest.dropped_critical_samples") +
                         snap.counter("ingest.rejected_critical_samples");
  report.bulk_shed = snap.counter("ingest.shed_bulk_samples") +
                     snap.counter("ingest.dropped_bulk_samples") +
                     snap.counter("ingest.rejected_bulk_samples");
  report.standard_shed = snap.counter("ingest.shed_standard_samples");
  report.involuntary_lost = snap.counter("ingest.dropped_samples") +
                            snap.counter("ingest.rejected_samples");
  report.dead_letters = shutdown_report.dead_letters;
  if (const auto* d = stack->degradation()) {
    report.transitions = d->stats().transitions;
    report.returned_to_normal = d->mode() == core::DegradationMode::kNormal;
  }
  // Byte-completeness spans the tier ladder: heartbeats compacted out of the
  // hot store before a crash live in tier files, and the span view merges
  // both sides (hot wins exact-timestamp duplicates).
  const core::TimeRange hb_window{0, cluster.now() + core::kHour};
  if (stack->tiers() != nullptr) {
    const store::TierSpanView<ingest::ShardedTimeSeriesStore> span(
        stack->tiers(), stack->sharded_store());
    report.heartbeats_stored =
        static_cast<std::uint64_t>(span.query_range(hb_series, hb_window).size());
  } else {
    report.heartbeats_stored = static_cast<std::uint64_t>(
        stack->sharded_store()->query_range(hb_series, hb_window).size());
  }

  // Invariants, in the order an operator would triage them.
  if (!report.shutdown_clean) {
    report.failure = "shutdown abandoned in-flight work";
  } else if (report.critical_lost != 0) {
    report.failure = "critical-class samples were dropped or rejected";
  } else if (report.heartbeats_stored != report.heartbeats_sent) {
    report.failure = core::strformat(
        "heartbeat gap: stored %llu of %llu",
        static_cast<unsigned long long>(report.heartbeats_stored),
        static_cast<unsigned long long>(report.heartbeats_sent));
  } else if (report.dead_letters > report.dead_letter_cap) {
    report.failure = "dead-letter queue exceeded its bound";
  } else if (!report.returned_to_normal) {
    report.failure = "controller did not return to NORMAL in the recovery window";
  }
  return report;
}

std::string NetworkStormReport::to_string() const {
  return core::strformat(
      "netstorm[%s] survived=%d hb=%llu node=%llu upstream=%llu exact=%d "
      "acked=%llu resent=%llu rejected=%llu shed=%llu conns=%llu/%llu "
      "dup=%llu winrej=%llu unacked=%llu faults=%llu all_classes=%d%s%s",
      scenario.c_str(), survived ? 1 : 0,
      static_cast<unsigned long long>(heartbeats_sent),
      static_cast<unsigned long long>(node_heartbeats),
      static_cast<unsigned long long>(upstream_heartbeats),
      critical_byte_exact ? 1 : 0,
      static_cast<unsigned long long>(acked_batches),
      static_cast<unsigned long long>(resent_batches),
      static_cast<unsigned long long>(rejected_batches),
      static_cast<unsigned long long>(shed_batches),
      static_cast<unsigned long long>(connects),
      static_cast<unsigned long long>(disconnects),
      static_cast<unsigned long long>(duplicates),
      static_cast<unsigned long long>(window_rejects),
      static_cast<unsigned long long>(relay_unacked),
      static_cast<unsigned long long>(socket_faults),
      all_fault_classes ? 1 : 0, failure.empty() ? "" : " FAIL: ",
      failure.c_str());
}

NetworkStormReport run_network_storm(
    const resilience::ChaosScenario& scenario,
    const std::vector<std::pair<std::string, std::string>>& overrides) {
  NetworkStormReport report;
  report.scenario = scenario.name;

  const std::string node_wal =
      "/tmp/hpcmon_netstorm_" + scenario.name + "_node";
  std::filesystem::remove_all(node_wal);

  // ONE fault plan spans both stacks: the relay client's sends/recvs and the
  // aggregator reactor's recvs/sends draw from the same monotone socket-op
  // stream, so the storm hits both directions of the wire.
  resilience::FaultPlan plan(scenario.seed);

  // Aggregator: a plain synchronous stack whose only job is the serve tier's
  // relay ingest. Its sim event queue is NEVER run — no local collection, so
  // every stored sample arrived over the wire and the node's registry owns
  // every series id it holds.
  sim::Cluster agg_cluster(harness_cluster(scenario.seed + 1));
  core::Config agg_config;
  agg_config.set("serve_port", "0");
  agg_config.set("probe_interval_s", "0");
  agg_config.set("health_interval_s", "0");
  agg_config.set("rules", "false");
  agg_config.set("numeric_alerts", "false");
  for (const auto& [k, v] : scenario.config_overrides) {
    if (k.rfind("relay_dedupe", 0) == 0) agg_config.set(k, v);
  }
  MonitoringStack aggregator(agg_cluster, agg_config, &plan);

  // Node: the chaos-harness base stack plus the relay tier pointed at the
  // aggregator. Fast real-time backoff so reconnect storms resolve within
  // the test's wall clock; scenarios/overrides may re-pin any knob.
  sim::Cluster cluster(harness_cluster(scenario.seed));
  core::Config config;
  config.set("sample_interval_s", "30");
  config.set("log_interval_s", "15");
  config.set("probe_interval_s", "0");
  config.set("health_interval_s", "120");
  config.set("ingest_shards", "2");
  config.set("ingest_queue_cap", "64");
  config.set("ingest_policy", "drop_oldest");
  config.set("wal_path", node_wal);
  config.set("sampler_deadline_ms", "50");
  config.set("breaker_threshold", "3");
  config.set("relay_upstream", std::to_string(aggregator.serve()->port()));
  config.set("relay_backoff_ms", "2");
  config.set("relay_backoff_max_ms", "50");
  config.set("relay_queue_cap", "512");
  for (const auto& [k, v] : scenario.config_overrides) config.set(k, v);
  for (const auto& [k, v] : overrides) config.set(k, v);
  MonitoringStack node(cluster, config, &plan);
  auto& registry = cluster.registry();

  // The liveness proof, end to end across the wire: a critical heartbeat
  // published through the node's full path (router -> WAL -> ingest AND
  // router -> relay -> aggregator) every tick.
  const auto harness_component = registry.register_component(
      {"netstorm.harness", core::ComponentKind::kService,
       cluster.topology().system()});
  const auto hb_metric = registry.register_metric(
      {"netstorm.heartbeat", "beats", "relay storm liveness heartbeat", true,
       core::Priority::kCritical});
  const auto hb_series = registry.series(hb_metric, harness_component);
  std::vector<core::SeriesId> bulk_series;
  for (std::size_t i = 0; i < kBulkSeries; ++i) {
    const auto m = registry.register_metric(
        {"netstorm.bulk_flood." + std::to_string(i), "points",
         "synthetic bulk-class storm load", false, core::Priority::kBulk});
    bulk_series.push_back(registry.series(m, harness_component));
  }

  resilience::ChaosSchedule schedule(scenario);
  schedule.arm(cluster.events(), cluster.now(), plan);

  const auto tick = 10 * core::kSecond;
  cluster.events().schedule_every(
      cluster.now() + tick, tick, [&](core::TimePoint t) {
        core::SampleBatch hb;
        hb.sweep_time = t;
        hb.origin = harness_component;
        hb.samples.push_back(
            {hb_series, t, static_cast<double>(report.heartbeats_sent)});
        auto frame = transport::encode_samples(hb);
        frame.priority = core::Priority::kCritical;
        node.router().publish(frame);
        ++report.heartbeats_sent;

        const auto flood = schedule.active_bulk_batches_per_tick();
        for (std::uint32_t b = 0; b < flood; ++b) {
          core::SampleBatch bulk;
          bulk.sweep_time = t;
          bulk.origin = harness_component;
          for (std::size_t i = 0; i < bulk_series.size(); ++i) {
            bulk.samples.push_back(
                {bulk_series[i], t + static_cast<core::Duration>(b),
                 static_cast<double>(b)});
          }
          auto bulk_frame = transport::encode_samples(bulk);
          bulk_frame.priority = core::Priority::kBulk;
          node.router().publish(bulk_frame);
        }
      });

  // The sim runs in slices with a real-time relay drain between them: the
  // relay worker (real threads, real sockets) makes progress WHILE each
  // phase's fault spec is armed, so every fault class actually lands on
  // live traffic instead of the whole storm flashing past in sim time.
  const core::Duration slice = 30 * core::kSecond;
  for (core::Duration at = 0; at < scenario.total; at += slice) {
    cluster.run_for(std::min(slice, scenario.total - at));
    node.relay()->drain_for(25);
  }

  plan.release_hangs();
  const auto node_shutdown = node.shutdown(std::chrono::milliseconds(20000));
  report.relay_unacked = node_shutdown.relay_unacked;
  const auto relay_stats = node.relay()->stats();
  const auto serve_stats = aggregator.serve()->stats();
  aggregator.shutdown();
  report.survived = true;

  report.acked_batches = relay_stats.acked_batches;
  report.resent_batches = relay_stats.resent_batches;
  report.rejected_batches = relay_stats.rejected_batches;
  report.shed_batches = relay_stats.shed_batches;
  report.connects = relay_stats.connects;
  report.disconnects = relay_stats.disconnects;
  report.duplicates = serve_stats.relay_duplicates;
  report.window_rejects = serve_stats.relay_window_rejects;

  const auto injected = plan.injected();
  report.socket_faults = injected.sock_resets + injected.sock_stalls +
                         injected.sock_short_writes +
                         injected.sock_short_reads +
                         injected.sock_torn_frames;
  report.all_fault_classes =
      injected.sock_resets > 0 && injected.sock_stalls > 0 &&
      injected.sock_short_writes > 0 && injected.sock_short_reads > 0 &&
      injected.sock_torn_frames > 0;

  // Byte-exactness of the critical series: the aggregator must hold exactly
  // the heartbeat points the node stored — same count, same timestamps, same
  // values. The aggregator's strictly-increasing-timestamp append is the
  // second dedupe layer, so at-least-once resends cannot double a point.
  const core::TimeRange hb_window{0, cluster.now() + core::kHour};
  const auto node_points =
      node.sharded_store()->query_range(hb_series, hb_window);
  const auto upstream_points =
      aggregator.tsdb().hot().query_range(hb_series, hb_window);
  report.node_heartbeats = static_cast<std::uint64_t>(node_points.size());
  report.upstream_heartbeats =
      static_cast<std::uint64_t>(upstream_points.size());
  report.critical_byte_exact =
      node_points.size() == upstream_points.size() &&
      std::equal(node_points.begin(), node_points.end(),
                 upstream_points.begin(),
                 [](const core::TimedValue& a, const core::TimedValue& b) {
                   return a.time == b.time && a.value == b.value;
                 });

  if (report.node_heartbeats != report.heartbeats_sent) {
    report.failure = core::strformat(
        "node-side heartbeat gap: stored %llu of %llu",
        static_cast<unsigned long long>(report.node_heartbeats),
        static_cast<unsigned long long>(report.heartbeats_sent));
  } else if (report.relay_unacked != 0) {
    report.failure = "relay queue did not drain to acked within the deadline";
  } else if (report.rejected_batches != 0) {
    report.failure = "server refused relay payloads (poison-pill drops)";
  } else if (!report.critical_byte_exact) {
    report.failure = core::strformat(
        "critical series not byte-exact upstream: %llu of %llu points",
        static_cast<unsigned long long>(report.upstream_heartbeats),
        static_cast<unsigned long long>(report.node_heartbeats));
  } else if (report.socket_faults == 0) {
    report.failure = "storm injected no socket faults (harness no-op)";
  } else if (!report.all_fault_classes) {
    report.failure = "a socket fault class never fired during the storm";
  } else if (report.connects < 2) {
    report.failure = "relay never reconnected (resets did not bite)";
  }
  return report;
}

}  // namespace hpcmon::stack
