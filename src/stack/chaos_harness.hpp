// Chaos harness: run a full MonitoringStack through a seeded storm scenario
// and check the storm-mode survival invariants.
//
// resilience::ChaosSchedule scripts WHAT the storm is; this harness supplies
// the stack it lands on: a small deterministic cluster, a chaos-wired stack
// (fault plan through samplers/WAL/delivery, degradation controller on,
// drop-oldest ingest), a critical-class heartbeat series published every
// tick, and bulk-class floods when a phase calls for them. After the storm
// plus a recovery window, the report answers the only questions that matter
// in a real incident (Secs. III-IV of the paper):
//   * did the stack survive (no crash, no wedged teardown)?
//   * is the critical heartbeat byte-complete end to end (zero critical
//     samples dropped anywhere)?
//   * did bounded queues stay bounded (DLQ within cap, ingest drained)?
//   * did the controller ride the ladder up and come back to NORMAL?
// It lives in stack/ (not resilience/) because it builds a MonitoringStack;
// the dependency only points this way.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/priority.hpp"
#include "resilience/chaos.hpp"

namespace hpcmon::stack {

struct ChaosReport {
  std::string scenario;
  bool survived = false;  // constructed, ran, and tore down without wedging
  // Critical-path byte-completeness.
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t heartbeats_stored = 0;
  std::uint64_t critical_lost = 0;  // ingest dropped+rejected, critical class
  // Shedding ledger.
  std::uint64_t bulk_shed = 0;
  std::uint64_t standard_shed = 0;
  std::uint64_t involuntary_lost = 0;  // all classes, dropped+rejected
  // Controller trajectory.
  int max_mode = 0;  // worst DegradationMode reached (0..3)
  std::uint64_t transitions = 0;
  bool returned_to_normal = false;
  // Bounded-memory checks.
  std::size_t dead_letters = 0;
  std::size_t dead_letter_cap = 0;
  bool shutdown_clean = false;
  /// First violated invariant (empty when all held).
  std::string failure;

  bool ok() const { return survived && failure.empty(); }
  std::string to_string() const;
};

/// Run `scenario` end to end. `overrides` (key, value) pairs are applied on
/// top of the harness base config (small cluster, 2 ingest shards,
/// drop_oldest, WAL + DLQ, watchdog + breaker, degradation on) after the
/// scenario's own config_overrides — tests use them to pin policies.
ChaosReport run_chaos(
    const resilience::ChaosScenario& scenario,
    const std::vector<std::pair<std::string, std::string>>& overrides = {});

/// Verdict of the two-stack relay storm (run_network_storm): a node stack
/// forwarding through hpcmon::relay to an aggregator stack's serve tier,
/// with every socket fault class injected on BOTH sides of the wire.
struct NetworkStormReport {
  std::string scenario;
  bool survived = false;
  // Critical byte-exactness across the wire: every heartbeat the node
  // stored must ALSO be on the aggregator, same timestamps, same values.
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t node_heartbeats = 0;      // stored node-side
  std::uint64_t upstream_heartbeats = 0;  // stored aggregator-side
  bool critical_byte_exact = false;
  // Relay ledger (client side).
  std::uint64_t acked_batches = 0;
  std::uint64_t resent_batches = 0;
  std::uint64_t rejected_batches = 0;  // poison-pill drops (must stay 0)
  std::uint64_t shed_batches = 0;      // voluntary, never critical
  std::uint64_t connects = 0;
  std::uint64_t disconnects = 0;
  std::uint64_t relay_unacked = 0;  // left unacked at shutdown (must be 0)
  // Server-side dedupe ledger.
  std::uint64_t duplicates = 0;       // acked-without-reapply resends
  std::uint64_t window_rejects = 0;   // beyond-window refusals (resent)
  // Fault pressure actually exercised (the storm must not be a no-op).
  std::uint64_t socket_faults = 0;
  bool all_fault_classes = false;  // reset+stall+short write/read+torn frame
  /// First violated invariant (empty when all held).
  std::string failure;

  bool ok() const { return survived && failure.empty(); }
  std::string to_string() const;
};

/// Run the node→aggregator relay storm end to end: two MonitoringStacks on
/// one FaultPlan (one monotone socket-op stream spanning client and server
/// I/O), the scenario's phases driving resets, stalls, fragmentation, and
/// torn frames concurrently with a bulk ingest flood; then a recovery
/// window, a drained shutdown, and the zero-acked-loss / byte-exact-critical
/// verdict. `overrides` apply to the NODE stack's config after the
/// scenario's own config_overrides.
NetworkStormReport run_network_storm(
    const resilience::ChaosScenario& scenario,
    const std::vector<std::pair<std::string, std::string>>& overrides = {});

}  // namespace hpcmon::stack
