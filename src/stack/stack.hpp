// MonitoringStack: config-driven assembly of the complete pipeline.
//
// Table I (Architecture): "changes in data direction and data access easily
// configured and changed" and "extensibility and modularity are fundamental".
// MonitoringStack wires samplers -> EventRouter -> tiered store / log store /
// job store, plus the rule engine -> alert manager -> action dispatcher
// chain, entirely from a flat Config — the deployment description a site
// would keep in version control. Every subsystem remains reachable for
// extension (add samplers, rules, sinks after construction).
//
// Recognized configuration keys (defaults in parentheses):
//   sample_interval_s   (60)    synchronized sweep period
//   log_interval_s      (15)    log drain period
//   probe_interval_s    (600)   0 disables the probe suite
//   health_interval_s   (600)   0 disables the health battery
//   hot_window_s        (21600) TSDB hot retention
//   warm_window_s       (604800)
//   warm_bucket_s       (300)
//   chunk_points        (512)   TSDB chunk seal threshold
//   archive_path        ("")    when set, the cold tier is saved to this
//                               file after every retention pass (the
//                               "locate and reload" handoff to slow media)
//   rules               (true)  install the standard platform rule set
//   numeric_alerts      (true)  detector bank on key numeric series
//   min_free_mem_gb     (8)     below-threshold watch on node free memory
//   corrosion_alert_ppb (10)    ASHRAE G1 watch on facility gas level
//   novelty             (false) log-template novelty detection
//   novelty_training_s  (14400)
//   gate_pre / gate_post (false) CSCS-style GPU job gating
//   gate_repair_s       (1800)
//   quarantine_on_hw_critical (false) automated node quarantine action
//   ingest_shards       (0)     >0 routes numeric samples through the
//                               threaded sharded ingest tier (src/ingest)
//                               instead of the synchronous TieredStore
//                               append; 0 keeps the deterministic default
//   ingest_queue_cap    (256)   bounded sub-batches per shard queue
//   ingest_policy       (block) overload policy: block|drop_oldest|reject
//   ingest_coalesce     (16)    max sub-batches merged per shard append
//   ingest_autostart    (1)     0 constructs the pipeline without starting
//                               its workers (deterministic overload tests,
//                               wedged-shutdown drills)
//   degradation         (0)     1 runs the storm-mode DegradationController:
//                               series priorities (registry) drive the
//                               ingest door, and the controller walks
//                               NORMAL->SHED_BULK->SUMMARIZE->QUARANTINE on
//                               live health signals with hysteresis
//   degradation_interval_s (60) controller evaluation cadence
//   wal_path            ("")    when set, every sample frame is appended to
//                               a segmented write-ahead log in this
//                               directory before ingestion, and existing
//                               segments are REPLAYED into the store at
//                               construction (crash recovery)
//   wal_segment_bytes   (1048576) WAL segment rotation size
//   dead_letter_cap     (64)    bounded dead-letter queue for frames whose
//                               WAL append keeps failing (retried first)
//   sampler_deadline_ms (0)     >0 runs each sampler under a real-time
//                               watchdog; a call past the deadline is
//                               abandoned and the sweep continues
//   breaker_threshold   (0)     >0 wraps every sampler in a circuit breaker
//                               (open after N consecutive failures,
//                               half-open probe after backoff+jitter)
//   breaker_cooldown_s  (300)   first open->half-open cooldown
//   serve_port          (unset) when PRESENT, start the network serving tier
//                               (src/serve) on 127.0.0.1:<port>; 0 binds an
//                               ephemeral port (read it back via
//                               serve()->port()). Absent = no server.
//   serve_writer_threads (2)    serve writer pool size (one writer drains
//                               every (conn id % pool)-th connection)
//   serve_egress_cap    (256)   per-connection egress queue bound; the
//                               storm-mode priority door engages above it
//   serve_idle_timeout_ms (0)   >0 closes serve connections with no traffic
//                               for this long (real ms); half-open peers
//                               stop pinning reactor state forever
//   relay_upstream      (0)     >0 forwards every numeric sample batch to
//                               the aggregator stack serving on
//                               127.0.0.1:<port> with at-least-once,
//                               exactly-applied semantics (src/relay)
//   relay_source        (1)     durable source identity for relay dedupe
//   relay_batch_samples (512)   max samples per relay append frame
//   relay_queue_cap     (1024)  pending relay entries; unsent bulk/standard
//                               shed above it, critical never
//   relay_backoff_ms    (50)    first reconnect backoff (doubles, jittered,
//                               capped at relay_backoff_max_ms (2000))
//   relay_dedupe_window (1024)  server-side dedupe window above the acked
//                               watermark (appends beyond it are refused
//                               un-applied and resent later)
//   tier_dir            ("")    when set, sealed hot chunks age through
//                               journaled on-disk resolution tiers in this
//                               directory (raw -> 10s -> 5min -> 1h by
//                               default) and queries served over the network
//                               transparently span hot + every tier. The
//                               directory is recovered at construction
//                               (journal replay) BEFORE the WAL replays, so
//                               samples already durable in a tier are not
//                               re-ingested.
//   compact_interval_s  (3600)  compactor pass cadence (simulated timeline)
//   tier_hot_window_s   (hot_window_s) age at which sealed hot chunks are
//                               tiered out and evicted behind the durable
//                               watermark
//   tier_disk_budget_mb (1024)  denominator of the compact.disk_fill gauge
//                               that feeds disk pressure into storm mode
//   tier_policy         ("")    override the tier ladder:
//                               "res_s:crit_s,std_s,bulk_s;..." per tier,
//                               e.g. "0:172800,86400,21600;10:604800,
//                               259200,86400" (res_s 0 = raw); empty keeps
//                               the standard raw/10s/5min/1h ladder
//   rollup_enable       (0)     1 maintains the topology rollup tree
//                               (src/rollup): every ingested sample updates
//                               node->blade->chassis->cabinet->system
//                               running stats incrementally, and fleet-wide
//                               reads (machine heatmap, fleet health, the
//                               kRollupQuery/kRollupSub wire surface) answer
//                               from an immutable snapshot in O(1) instead
//                               of scatter-gathering every per-node series
//   rollup_tick_s       (5)     coalescing-merge cadence (simulated
//                               timeline, clamped >= 1): each tick drains
//                               the per-shard pending deltas, re-folds
//                               dirty levels, publishes a fresh snapshot,
//                               and fans changed levels out to kRollupSub
//                               subscribers
#pragma once

#include <chrono>
#include <memory>

#include "analysis/detector_bank.hpp"
#include "analysis/novelty.hpp"
#include "analysis/rules.hpp"
#include "collect/collection.hpp"
#include "collect/health.hpp"
#include "collect/probes.hpp"
#include "collect/samplers.hpp"
#include "core/config.hpp"
#include "ingest/pipeline.hpp"
#include "ingest/sharded_store.hpp"
#include "obs/exporter.hpp"
#include "obs/registry.hpp"
#include "obs/stage.hpp"
#include "relay/client.hpp"
#include "resilience/breaker.hpp"
#include "resilience/degradation.hpp"
#include "resilience/delivery.hpp"
#include "resilience/fault.hpp"
#include "resilience/supervisor.hpp"
#include "resilience/wal.hpp"
#include "response/actions.hpp"
#include "response/alerts.hpp"
#include "response/gate.hpp"
#include "rollup/tree.hpp"
#include "serve/server.hpp"
#include "store/compactor.hpp"
#include "store/jobstore.hpp"
#include "store/logstore.hpp"
#include "store/retention.hpp"
#include "store/tier.hpp"
#include "transport/event_router.hpp"

namespace hpcmon::stack {

/// What shutdown() left behind when its drain deadline expired. With a
/// healthy pipeline everything drains and the report is all zeros; a wedged
/// tier (workers never started, a hung store) is REPORTED instead of hanging
/// teardown forever — the paper's operational lesson that the monitor must
/// never become the thing you cannot restart.
struct ShutdownReport {
  bool drained = true;  // ingest in-flight reached zero within the deadline
  std::int64_t abandoned_batches = 0;  // sub-batches still queued at deadline
  std::size_t dead_letters = 0;        // frames stranded in the WAL DLQ
  std::size_t relay_unacked = 0;       // relay entries still unacked at stop
                                       // (durable locally; resent on restart)
  bool clean() const { return drained && abandoned_batches == 0; }
};

class MonitoringStack {
 public:
  /// Assemble and attach the full pipeline to `cluster` per `config`.
  /// The cluster must outlive the stack. When `wal_path` is configured and
  /// holds segments from a previous incarnation, they are replayed into the
  /// store here, before any new collection happens.
  MonitoringStack(sim::Cluster& cluster, const core::Config& config);

  /// Chaos-harness variant: every fault surface is threaded through `chaos`
  /// when non-null — samplers are wrapped in FaultySampler, the WAL consults
  /// it before each physical append, and the WAL delivery path injects
  /// delivery failures. The plan must outlive the stack (and any hung
  /// sampler threads; call chaos->release_hangs() before teardown).
  MonitoringStack(sim::Cluster& cluster, const core::Config& config,
                  resilience::FaultPlan* chaos);

  /// Orderly teardown: drain the ingest pipeline into the stores (bounded by
  /// `deadline` of real time), flush the WAL, then stop the workers. Work
  /// still queued when the deadline expires is abandoned and reported.
  /// Idempotent; the destructor calls it, so no buffered sample is ever
  /// silently lost on destruction — and a wedged tier cannot hang it.
  ShutdownReport shutdown(
      std::chrono::milliseconds deadline = std::chrono::milliseconds(5000));

  /// Crash drill: make the destructor skip shutdown() — buffered/hot state
  /// is abandoned exactly as a real crash would abandon it (worker threads
  /// are still joined; a process can't leak threads into the next test).
  /// Pair with a fresh MonitoringStack on the same wal_path to recover.
  void simulate_crash() { crashed_ = true; }

  ~MonitoringStack();

  // -- Data access -----------------------------------------------------------
  store::TieredStore& tsdb() { return tsdb_; }
  const store::TieredStore& tsdb() const { return tsdb_; }
  store::LogStore& logs() { return logs_; }
  store::JobStore& jobs() { return jobs_; }
  transport::EventRouter& router() { return router_; }
  response::AlertManager& alerts() { return alerts_; }
  response::ActionDispatcher& actions() { return actions_; }
  analysis::RuleEngine& rules() { return rules_; }
  analysis::DetectorBank& detectors() { return detectors_; }
  collect::CollectionService& collection() { return collection_; }
  sim::Cluster& cluster() { return cluster_; }

  /// Threaded ingest tier; nullptr unless ingest_shards > 0. When enabled,
  /// numeric samples land in sharded_store() (asynchronously — call
  /// drain_ingest() before querying) and the pipeline's self-metrics are
  /// re-ingested as "ingest.*" series every sample sweep.
  ingest::IngestPipeline* ingest_pipeline() { return ingest_.get(); }
  const ingest::ShardedTimeSeriesStore* sharded_store() const {
    return sharded_.get();
  }
  ingest::ShardedTimeSeriesStore* sharded_store() { return sharded_.get(); }
  /// Wait until the ingest tier has appended everything submitted so far.
  void drain_ingest() {
    if (ingest_) ingest_->drain();
  }

  // -- Resilience tier -------------------------------------------------------
  /// Write-ahead log; nullptr unless wal_path is configured.
  const resilience::WriteAheadLog* wal() const { return wal_.get(); }
  /// Replay outcome of the WAL recovery performed at construction.
  const resilience::ReplayStats& replay_stats() const { return replay_stats_; }
  /// Retry/dead-letter guard on the WAL append path; nullptr unless the WAL
  /// is enabled. redeliver() flushes dead letters after a disk recovers.
  resilience::ReliableDelivery* wal_delivery() { return wal_delivery_.get(); }
  /// Supervised sampler wrappers (empty unless breaker_threshold or
  /// sampler_deadline_ms is set); exposes per-sampler breaker state.
  const std::vector<resilience::SupervisedSampler*>& supervised_samplers()
      const {
    return supervised_;
  }
  /// Sum of every supervised sampler's counters.
  resilience::SupervisorStats supervisor_stats() const;
  /// Storm-mode controller; nullptr unless `degradation` is configured.
  resilience::DegradationController* degradation() {
    return degradation_.get();
  }
  const resilience::DegradationController* degradation() const {
    return degradation_.get();
  }

  // -- Tiered retention ------------------------------------------------------
  /// Durable tier ladder; nullptr unless tier_dir is configured (or its
  /// recovery failed, in which case the stack serves hot-only).
  store::TierStore* tiers() { return tiers_.get(); }
  const store::TierStore* tiers() const { return tiers_.get(); }
  /// Background compactor driving the ladder; nullptr without tiers.
  store::Compactor* compactor() { return compactor_.get(); }
  /// Breaker guarding compactor I/O: a sick disk opens it and the stack
  /// degrades to "stop compacting, keep serving".
  const resilience::CircuitBreaker* compact_breaker() const {
    return compact_breaker_.get();
  }
  /// One compaction attempt through the breaker at simulated time `now`
  /// (the scheduled cadence calls this; tests/benches drive it directly).
  void run_compaction(core::TimePoint now);

  // -- Rollup tier -----------------------------------------------------------
  /// Topology rollup tree; nullptr unless rollup_enable = 1. Its snapshot()
  /// is the fleet-at-a-glance read every fleet-wide path answers from.
  rollup::RollupTree* rollup() { return rollup_.get(); }
  const rollup::RollupTree* rollup() const { return rollup_.get(); }
  /// One coalescing rollup merge: drain shard deltas, publish a fresh
  /// snapshot, fan changed levels out to live kRollupSub subscribers (the
  /// scheduled rollup_tick_s cadence calls this; tests/benches drive it
  /// directly). No-op without the tree.
  void rollup_tick();

  // -- Serving tier ----------------------------------------------------------
  /// Network front door (queries, scans, live subscriptions, admin);
  /// nullptr unless `serve_port` is configured. The bound port (ephemeral
  /// when serve_port = 0) is serve()->port().
  serve::ServeServer* serve() { return serve_.get(); }
  const serve::ServeServer* serve() const { return serve_.get(); }

  // -- Relay tier ------------------------------------------------------------
  /// Durable upstream forwarder; nullptr unless relay_upstream is configured.
  /// Every numeric batch the router sees is also submitted here and shipped
  /// to the aggregator with at-least-once, exactly-applied semantics.
  relay::RelayClient* relay() { return relay_.get(); }
  const relay::RelayClient* relay() const { return relay_.get(); }

  /// Novelty reports accumulated so far (empty unless novelty = true).
  const std::vector<analysis::NoveltyEvent>& novelty_reports() const {
    return novelty_reports_;
  }
  const response::GateStats* gate_stats() const {
    return gate_ ? &gate_->stats() : nullptr;
  }

  /// Run retention maintenance (call periodically, or rely on the built-in
  /// hourly schedule installed at construction). Spills the archive to
  /// `archive_path` when configured.
  void enforce_retention();
  std::uint64_t archive_saves() const { return archive_saves_; }

  /// Read-path self-metrics of whichever numeric store is active (the
  /// sharded ingest tier when enabled, the hot tier otherwise); also
  /// reported as store.* in status().
  store::QueryStats store_query_stats() const {
    return ingest_ ? sharded_->query_stats() : tsdb_.hot().query_stats();
  }

  // -- Self-observability ----------------------------------------------------
  /// The one catalog every tier's instruments live in.
  const obs::ObsRegistry& obs() const { return obs_; }
  /// Refresh the live fill gauges (queue fill, breaker fraction) and take a
  /// merged snapshot of every instrument. This one snapshot feeds the
  /// degradation control loop, the hpcmon.self.* re-ingest, status(), and
  /// the chaos assertions — identical numbers, by construction.
  obs::ObsSnapshot obs_snapshot() const;
  /// Multi-line operator report over obs_snapshot() (per-tier sections,
  /// per-stage latency table).
  std::string obs_report() const { return exporter_.report(obs_snapshot()); }

  /// One-line status summary for operator consoles.
  std::string status() const;

 private:
  void on_log_frame(const transport::Frame& frame);
  void apply_degradation(core::DegradationMode mode);
  void refresh_live_gauges() const;
  /// Synchronous numeric append (the non-ingest path): the hot tier takes
  /// the batch, then the rollup tree (when enabled) observes it, exactly as
  /// the sharded appenders do on the threaded path.
  std::size_t sync_append(const std::vector<core::Sample>& samples);

  sim::Cluster& cluster_;
  // Declared before every tier: instruments attach into the registry at
  // construction and the registry must outlive their detachment-free
  // teardown (nobody snapshots during destruction).
  obs::ObsRegistry obs_;
  obs::StageTimer stages_;
  obs::ObsExporter exporter_;
  mutable resilience::HealthSignalAssembler health_assembler_;
  transport::EventRouter router_;
  store::TieredStore tsdb_;
  store::LogStore logs_;
  store::JobStore jobs_;
  analysis::RuleEngine rules_;
  analysis::DetectorBank detectors_;
  response::AlertManager alerts_;
  response::ActionDispatcher actions_;
  collect::CollectionService collection_;
  std::unique_ptr<collect::HealthCheckSuite> health_;
  std::unique_ptr<response::HealthGate> gate_;
  std::unique_ptr<analysis::NoveltyDetector> novelty_;
  std::vector<analysis::NoveltyEvent> novelty_reports_;
  std::string archive_path_;
  std::uint64_t archive_saves_ = 0;
  // Declared before the ingest tier: the shard appenders observe every
  // sample into the tree, so the tree must outlive them (ingest_ joins its
  // workers first, then sharded_ goes, then rollup_).
  std::unique_ptr<rollup::RollupTree> rollup_;
  // Declaration order matters: ingest_ is destroyed (joining its workers)
  // before sharded_, which the workers append into.
  std::unique_ptr<ingest::ShardedTimeSeriesStore> sharded_;
  std::unique_ptr<ingest::IngestPipeline> ingest_;
  // Resilience tier (all optional, see config keys above).
  std::unique_ptr<resilience::WriteAheadLog> wal_;
  std::unique_ptr<resilience::ReliableDelivery> wal_delivery_;
  resilience::ReplayStats replay_stats_;
  std::vector<resilience::SupervisedSampler*> supervised_;  // owned by
                                                            // collection_
  std::unique_ptr<resilience::DegradationController> degradation_;
  // Tiered retention: the durable tier ladder, the compactor that drives
  // it, the breaker that guards its I/O, and the merged read views the
  // serving tier binds. Declared after the hot stores they reference.
  std::unique_ptr<store::TierStore> tiers_;
  std::unique_ptr<store::Compactor> compactor_;
  std::unique_ptr<resilience::CircuitBreaker> compact_breaker_;
  std::unique_ptr<store::TierSpanView<store::TimeSeriesStore>> span_hot_;
  std::unique_ptr<store::TierSpanView<ingest::ShardedTimeSeriesStore>>
      span_sharded_;
  std::int64_t tier_disk_budget_bytes_ = 0;
  // Declared after the stores/ingest tier: destroyed first, so the serve
  // threads stop answering before the data they serve is torn down.
  std::unique_ptr<serve::ServeServer> serve_;
  // Declared after serve_: the forwarder stops before the (local) serving
  // tier, and its worker thread is joined before any store teardown.
  std::unique_ptr<relay::RelayClient> relay_;
  resilience::FaultPlan* chaos_ = nullptr;  // not owned; see chaos ctor
  // Registry-owned fill gauges the stack refreshes before each snapshot
  // (they summarize state the tiers do not hold as single instruments).
  obs::Gauge* queue_fill_gauge_ = nullptr;
  obs::Gauge* breaker_open_gauge_ = nullptr;
  obs::Gauge* disk_fill_gauge_ = nullptr;
  core::ComponentId self_component_ = core::kNoComponent;
  // Liveness flag captured by every event-queue closure the stack schedules:
  // the queue has no cancellation, so after a chaos-harness restart destroys
  // this stack mid-run, already-scheduled ticks fire as no-ops.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  bool crashed_ = false;
  bool shut_down_ = false;
};

}  // namespace hpcmon::stack
