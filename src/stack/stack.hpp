// MonitoringStack: config-driven assembly of the complete pipeline.
//
// Table I (Architecture): "changes in data direction and data access easily
// configured and changed" and "extensibility and modularity are fundamental".
// MonitoringStack wires samplers -> EventRouter -> tiered store / log store /
// job store, plus the rule engine -> alert manager -> action dispatcher
// chain, entirely from a flat Config — the deployment description a site
// would keep in version control. Every subsystem remains reachable for
// extension (add samplers, rules, sinks after construction).
//
// Recognized configuration keys (defaults in parentheses):
//   sample_interval_s   (60)    synchronized sweep period
//   log_interval_s      (15)    log drain period
//   probe_interval_s    (600)   0 disables the probe suite
//   health_interval_s   (600)   0 disables the health battery
//   hot_window_s        (21600) TSDB hot retention
//   warm_window_s       (604800)
//   warm_bucket_s       (300)
//   chunk_points        (512)   TSDB chunk seal threshold
//   archive_path        ("")    when set, the cold tier is saved to this
//                               file after every retention pass (the
//                               "locate and reload" handoff to slow media)
//   rules               (true)  install the standard platform rule set
//   numeric_alerts      (true)  detector bank on key numeric series
//   min_free_mem_gb     (8)     below-threshold watch on node free memory
//   corrosion_alert_ppb (10)    ASHRAE G1 watch on facility gas level
//   novelty             (false) log-template novelty detection
//   novelty_training_s  (14400)
//   gate_pre / gate_post (false) CSCS-style GPU job gating
//   gate_repair_s       (1800)
//   quarantine_on_hw_critical (false) automated node quarantine action
//   ingest_shards       (0)     >0 routes numeric samples through the
//                               threaded sharded ingest tier (src/ingest)
//                               instead of the synchronous TieredStore
//                               append; 0 keeps the deterministic default
//   ingest_queue_cap    (256)   bounded sub-batches per shard queue
//   ingest_policy       (block) overload policy: block|drop_oldest|reject
//   ingest_coalesce     (16)    max sub-batches merged per shard append
#pragma once

#include <memory>

#include "analysis/detector_bank.hpp"
#include "analysis/novelty.hpp"
#include "analysis/rules.hpp"
#include "collect/collection.hpp"
#include "collect/health.hpp"
#include "collect/probes.hpp"
#include "collect/samplers.hpp"
#include "core/config.hpp"
#include "ingest/pipeline.hpp"
#include "ingest/sharded_store.hpp"
#include "response/actions.hpp"
#include "response/alerts.hpp"
#include "response/gate.hpp"
#include "store/jobstore.hpp"
#include "store/logstore.hpp"
#include "store/retention.hpp"
#include "transport/event_router.hpp"

namespace hpcmon::stack {

class MonitoringStack {
 public:
  /// Assemble and attach the full pipeline to `cluster` per `config`.
  /// The cluster must outlive the stack.
  MonitoringStack(sim::Cluster& cluster, const core::Config& config);

  // -- Data access -----------------------------------------------------------
  store::TieredStore& tsdb() { return tsdb_; }
  const store::TieredStore& tsdb() const { return tsdb_; }
  store::LogStore& logs() { return logs_; }
  store::JobStore& jobs() { return jobs_; }
  transport::EventRouter& router() { return router_; }
  response::AlertManager& alerts() { return alerts_; }
  response::ActionDispatcher& actions() { return actions_; }
  analysis::RuleEngine& rules() { return rules_; }
  analysis::DetectorBank& detectors() { return detectors_; }
  collect::CollectionService& collection() { return collection_; }
  sim::Cluster& cluster() { return cluster_; }

  /// Threaded ingest tier; nullptr unless ingest_shards > 0. When enabled,
  /// numeric samples land in sharded_store() (asynchronously — call
  /// drain_ingest() before querying) and the pipeline's self-metrics are
  /// re-ingested as "ingest.*" series every sample sweep.
  ingest::IngestPipeline* ingest_pipeline() { return ingest_.get(); }
  const ingest::ShardedTimeSeriesStore* sharded_store() const {
    return sharded_.get();
  }
  ingest::ShardedTimeSeriesStore* sharded_store() { return sharded_.get(); }
  /// Wait until the ingest tier has appended everything submitted so far.
  void drain_ingest() {
    if (ingest_) ingest_->drain();
  }

  /// Novelty reports accumulated so far (empty unless novelty = true).
  const std::vector<analysis::NoveltyEvent>& novelty_reports() const {
    return novelty_reports_;
  }
  const response::GateStats* gate_stats() const {
    return gate_ ? &gate_->stats() : nullptr;
  }

  /// Run retention maintenance (call periodically, or rely on the built-in
  /// hourly schedule installed at construction). Spills the archive to
  /// `archive_path` when configured.
  void enforce_retention();
  std::uint64_t archive_saves() const { return archive_saves_; }

  /// One-line status summary for operator consoles.
  std::string status() const;

 private:
  void on_log_frame(const transport::Frame& frame);

  sim::Cluster& cluster_;
  transport::EventRouter router_;
  store::TieredStore tsdb_;
  store::LogStore logs_;
  store::JobStore jobs_;
  analysis::RuleEngine rules_;
  analysis::DetectorBank detectors_;
  response::AlertManager alerts_;
  response::ActionDispatcher actions_;
  collect::CollectionService collection_;
  std::unique_ptr<collect::HealthCheckSuite> health_;
  std::unique_ptr<response::HealthGate> gate_;
  std::unique_ptr<analysis::NoveltyDetector> novelty_;
  std::vector<analysis::NoveltyEvent> novelty_reports_;
  std::string archive_path_;
  std::uint64_t archive_saves_ = 0;
  // Declaration order matters: ingest_ is destroyed (joining its workers)
  // before sharded_, which the workers append into.
  std::unique_ptr<ingest::ShardedTimeSeriesStore> sharded_;
  std::unique_ptr<ingest::IngestPipeline> ingest_;
  core::ComponentId ingest_component_ = core::kNoComponent;
};

}  // namespace hpcmon::stack
