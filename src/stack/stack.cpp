#include "stack/stack.hpp"

#include <algorithm>
#include <cstdlib>

#include "core/strings.hpp"
#include "transport/codec.hpp"

namespace hpcmon::stack {

using core::Duration;
using core::kSecond;

namespace {
store::RetentionPolicy retention_from(const core::Config& config) {
  store::RetentionPolicy policy;
  policy.hot_window = config.get_int("hot_window_s", 21600) * kSecond;
  policy.warm_window = config.get_int("warm_window_s", 604800) * kSecond;
  policy.warm_bucket = config.get_int("warm_bucket_s", 300) * kSecond;
  return policy;
}

/// Parse "res_s:crit_s,std_s,bulk_s;..." (res_s 0 = raw); empty or
/// unparseable keeps the standard raw/10s/5min/1h ladder. A tier whose
/// fields don't all parse as non-negative integers with at least one
/// positive keep is rejected outright — a typo'd ladder must never become
/// a "keep nothing" ladder that silently expires everything.
store::TierPolicy tier_policy_from(const core::Config& config) {
  const std::string spec = config.get_string("tier_policy", "");
  if (spec.empty()) return store::TierPolicy::standard();
  const auto as_seconds = [](std::string_view field) -> long long {
    const std::string s{core::trim(field)};
    if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos) {
      return -1;
    }
    return std::atoll(s.c_str());
  };
  store::TierPolicy policy;
  for (const auto tier : core::split(spec, ';')) {
    const auto parts = core::split(tier, ':');
    if (parts.size() != 2) continue;
    store::TierSpec ts;
    const long long res = as_seconds(parts[0]);
    if (res < 0) continue;
    ts.resolution = res * kSecond;
    ts.agg = ts.resolution > 0 ? store::Agg::kMean : store::Agg::kLast;
    const auto keeps = core::split(parts[1], ',');
    bool valid = !keeps.empty();
    long long kept = 0;
    for (std::size_t c = 0; c < core::kPriorityClasses && c < keeps.size();
         ++c) {
      const long long keep = as_seconds(keeps[c]);
      if (keep < 0) {
        valid = false;
        break;
      }
      ts.keep[c] = keep * kSecond;
      kept += keep;
    }
    if (!valid || kept == 0) continue;
    policy.tiers.push_back(ts);
  }
  return policy.tiers.empty() ? store::TierPolicy::standard() : policy;
}
}  // namespace

MonitoringStack::MonitoringStack(sim::Cluster& cluster,
                                 const core::Config& config)
    : MonitoringStack(cluster, config, nullptr) {}

MonitoringStack::MonitoringStack(sim::Cluster& cluster,
                                 const core::Config& config,
                                 resilience::FaultPlan* chaos)
    : cluster_(cluster),
      tsdb_(retention_from(config),
            static_cast<std::size_t>(config.get_int("chunk_points", 512))),
      detectors_(cluster.registry()),
      collection_(cluster),
      chaos_(chaos) {
  const Duration sample_interval =
      config.get_int("sample_interval_s", 60) * kSecond;
  const Duration log_interval = config.get_int("log_interval_s", 15) * kSecond;

  // Self-observability plane: every tier catalogs its instruments in obs_,
  // and the per-stage latency histograms live in stages_. One snapshot of
  // this registry feeds the degradation control loop, the hpcmon.self.*
  // re-ingest, status(), and the chaos assertions.
  stages_.attach_to(obs_);
  router_.attach_to(obs_);
  collection_.set_stage_timer(&stages_);

  // Optional threaded ingest tier (ingest_shards > 0). The synchronous
  // TieredStore path stays the default so existing benches remain
  // deterministic and reproducible.
  if (const auto shards = config.get_int("ingest_shards", 0); shards > 0) {
    sharded_ = std::make_unique<ingest::ShardedTimeSeriesStore>(
        static_cast<std::size_t>(shards),
        static_cast<std::size_t>(config.get_int("chunk_points", 512)));
    sharded_->attach_to(obs_);
    sharded_->set_stage_timer(&stages_);
    ingest::IngestConfig ic;
    ic.queue_capacity =
        static_cast<std::size_t>(config.get_int("ingest_queue_cap", 256));
    ic.policy = ingest::policy_from_string(
        config.get_string("ingest_policy", "block"),
        ingest::OverloadPolicy::kBlock);
    ic.max_coalesce_batches =
        static_cast<std::size_t>(config.get_int("ingest_coalesce", 16));
    ic.obs = &obs_;
    ic.stages = &stages_;
    // Priority-aware shedding: the pipeline resolves (and caches) each
    // series' class from the registry, so bulk drops first and critical is
    // never dropped.
    ic.priority_of = [this](core::SeriesId id) {
      return cluster_.registry().series_priority(id);
    };
    ingest_ = std::make_unique<ingest::IngestPipeline>(*sharded_, ic);
    if (config.get_bool("ingest_autostart", true)) ingest_->start();
    queue_fill_gauge_ = &obs_.gauge(
        {"ingest.queue_fill", "frac",
         "max shard queue depth / capacity (refreshed per snapshot)"});
  } else {
    // The synchronous hot tier is the active numeric store; its read-path
    // counters are the store.* instruments.
    tsdb_.hot().attach_to(obs_);
    tsdb_.hot().set_stage_timer(&stages_);
  }

  // Topology rollup tree (rollup_enable = 1): every sample folds into a
  // per-shard pending cell on the append path, and the scheduled coalescing
  // tick publishes an immutable snapshot that the heatmap, fleet health,
  // and kRollupQuery read paths answer from in O(1). Built BEFORE tier
  // recovery and WAL replay so restored history is rolled up too.
  if (config.get_bool("rollup_enable", false)) {
    rollup::RollupConfig rc;
    rc.shards = sharded_ ? sharded_->shard_count() : 1;
    rollup_ = std::make_unique<rollup::RollupTree>(cluster_.registry(), rc);
    rollup_->attach_to(obs_);
    if (sharded_) {
      // The sharded store observes every accepted append into the tree and
      // wires its series-gone listeners to forget_series.
      sharded_->attach_rollup(rollup_.get());
    } else {
      // Synchronous path: sync_append() observes, and membership follows
      // hot-tier eviction through the same listener the shards use.
      tsdb_.hot().set_series_gone_listener(
          [this](core::SeriesId id) { rollup_->forget_series(id); });
    }
    // Clamped to >= 1 s: a zero period would repeat at the same sim
    // timestamp forever (EventQueue repeaters reschedule at now + period).
    const Duration rollup_tick_interval =
        std::max<std::int64_t>(1, config.get_int("rollup_tick_s", 5)) *
        kSecond;
    cluster_.events().schedule_every(
        cluster_.now() + rollup_tick_interval, rollup_tick_interval,
        [this, alive = alive_](core::TimePoint) {
          if (!*alive) return;
          rollup_tick();
        });
  }

  // Tiered retention: recover the durable tier ladder BEFORE the WAL
  // replays, so the watermark is known and samples already durable in a
  // tier are filtered out of the replay instead of re-ingested.
  if (const std::string tier_dir = config.get_string("tier_dir", "");
      !tier_dir.empty()) {
    store::TierStore::Options topts;
    topts.dir = tier_dir;
    topts.policy = tier_policy_from(config);
    topts.faults = chaos_;
    tiers_ = std::make_unique<store::TierStore>(std::move(topts));
    if (!tiers_->open().is_ok()) {
      // Unrecoverable tier directory: serve hot-only rather than refuse to
      // start — the monitor must come up even when its history cannot.
      tiers_.reset();
    }
  }
  if (tiers_) {
    tiers_->attach_to(obs_);
    std::vector<store::TimeSeriesStore*> shards;
    if (sharded_) {
      for (std::size_t i = 0; i < sharded_->shard_count(); ++i) {
        shards.push_back(&sharded_->shard(i));
      }
      span_sharded_ = std::make_unique<
          store::TierSpanView<ingest::ShardedTimeSeriesStore>>(
          tiers_.get(), sharded_.get());
    } else {
      shards.push_back(&tsdb_.hot());
      span_hot_ =
          std::make_unique<store::TierSpanView<store::TimeSeriesStore>>(
              tiers_.get(), &tsdb_.hot());
    }
    store::CompactorOptions co;
    co.hot_window =
        config.get_int("tier_hot_window_s",
                       config.get_int("hot_window_s", 21600)) *
        kSecond;
    co.priority_of = [this](core::SeriesId id) {
      return cluster_.registry().series_priority(id);
    };
    compactor_ = std::make_unique<store::Compactor>(std::move(shards),
                                                    tiers_.get(),
                                                    std::move(co));
    compactor_->attach_to(obs_);
    // Compactor I/O runs behind a breaker: persistent disk failure opens it
    // and the stack stops compacting while ingest and serving continue.
    compact_breaker_ = std::make_unique<resilience::CircuitBreaker>(
        resilience::BreakerConfig{}, 0xD15C);
    compact_breaker_->attach_to(obs_);
    tier_disk_budget_bytes_ =
        static_cast<std::int64_t>(config.get_int("tier_disk_budget_mb", 1024)) *
        1024 * 1024;
    disk_fill_gauge_ = &obs_.gauge(
        {"compact.disk_fill", "frac",
         "tier-ladder disk bytes / tier_disk_budget_mb (refreshed per "
         "snapshot)"});
    const Duration compact_interval =
        config.get_int("compact_interval_s", 3600) * kSecond;
    cluster_.events().schedule_every(
        cluster_.now() + compact_interval, compact_interval,
        [this, alive = alive_](core::TimePoint t) {
          if (!*alive) return;
          run_compaction(t);
        });
  }

  // Resilience tier: WAL recovery + durable append, sampler supervision.
  // Replay happens BEFORE collection is wired so restored history cannot
  // interleave with new sweeps.
  const std::string wal_path = config.get_string("wal_path", "");
  if (!wal_path.empty()) {
    replay_stats_ = resilience::WriteAheadLog::replay(
        wal_path, [this](core::SampleBatch&& batch) {
          // Samples below the tier watermark are already durable in a tier
          // file; replaying them would double-count against the span view.
          if (tiers_) {
            const auto wm = tiers_->watermark();
            auto& s = batch.samples;
            s.erase(std::remove_if(s.begin(), s.end(),
                                   [wm](const core::Sample& x) {
                                     return x.time < wm;
                                   }),
                    s.end());
          }
          if (sharded_) {
            sharded_->append_batch(batch.samples);
          } else {
            sync_append(batch.samples);
          }
        });
    // Replay ran exactly once, at construction: export its outcome through
    // registry-owned counters so it appears in the same snapshot as
    // everything else.
    obs_.counter({"resilience.replay_records", "records",
                  "intact WAL records restored at construction"})
        .add(replay_stats_.records);
    obs_.counter({"resilience.replay_samples", "samples",
                  "samples restored from the WAL at construction"})
        .add(replay_stats_.samples);
    obs_.counter({"resilience.replay_corrupt_skipped", "records",
                  "CRC-mismatched WAL records skipped during replay"})
        .add(replay_stats_.corrupt_skipped);
    obs_.counter({"resilience.replay_torn_tails", "records",
                  "torn trailing WAL records tolerated during replay"})
        .add(replay_stats_.torn_tails);
    resilience::WalOptions wo;
    wo.dir = wal_path;
    wo.segment_bytes =
        static_cast<std::size_t>(config.get_int("wal_segment_bytes", 1 << 20));
    wo.faults = chaos_;
    wal_ = std::make_unique<resilience::WriteAheadLog>(wo);
    wal_->attach_to(obs_);
    resilience::DeliveryOptions dopts;
    dopts.dead_letter_cap =
        static_cast<std::size_t>(config.get_int("dead_letter_cap", 64));
    resilience::ReliableDelivery::DeliverFn append_fn =
        [this](const transport::Frame& f) {
          auto batch = transport::decode_samples(f);
          if (!batch.is_ok()) return batch.status();
          return wal_->append(batch.value());
        };
    if (chaos_ != nullptr) {
      append_fn = resilience::faulty_deliver(std::move(append_fn), *chaos_);
    }
    wal_delivery_ = std::make_unique<resilience::ReliableDelivery>(
        std::move(append_fn), dopts);
    wal_delivery_->attach_to(obs_);
  }

  const int sampler_deadline_ms = config.get_int("sampler_deadline_ms", 0);
  const int breaker_threshold = config.get_int("breaker_threshold", 0);
  const bool supervise = sampler_deadline_ms > 0 || breaker_threshold > 0;
  if (supervise) {
    breaker_open_gauge_ = &obs_.gauge(
        {"resilience.breaker_open_frac", "frac",
         "open breakers / supervised samplers (refreshed per snapshot)"});
  }
  std::uint64_t supervisor_seed = 0xC0FFEE;
  // Wrap a sampler with watchdog + breaker when supervision is configured;
  // a pass-through otherwise so the default stack stays bit-deterministic.
  const auto supervised =
      [&](std::unique_ptr<collect::Sampler> sampler,
          core::Priority priority = core::Priority::kStandard)
      -> std::unique_ptr<collect::Sampler> {
    // Chaos builds interpose fault injection between the real sampler and
    // its supervisor, so injected hangs/errors hit the watchdog + breaker
    // exactly where real ones would (scenarios should configure
    // supervision; a bare FaultySampler throws into the sweep).
    if (chaos_ != nullptr) {
      sampler = std::make_unique<resilience::FaultySampler>(std::move(sampler),
                                                            *chaos_);
    }
    if (!supervise) return sampler;
    resilience::SupervisorOptions so;
    so.deadline_ms = sampler_deadline_ms;
    so.breaker.failure_threshold =
        breaker_threshold > 0 ? breaker_threshold : 3;
    so.breaker.cooldown = config.get_int("breaker_cooldown_s", 300) * kSecond;
    so.seed = supervisor_seed++;
    so.priority = priority;
    auto wrapper = std::make_unique<resilience::SupervisedSampler>(
        std::move(sampler), so);
    wrapper->attach_to(obs_);
    supervised_.push_back(wrapper.get());
    return wrapper;
  };

  // Collection -> router.
  for (auto& sampler : collect::make_all_samplers(cluster_)) {
    collection_.add_sampler(supervised(std::move(sampler)), sample_interval,
                            collect::router_sample_sink(router_));
  }
  collection_.add_log_collector(log_interval,
                                collect::router_log_sink(router_));

  // Optional probe suite.
  if (const auto probe_s = config.get_int("probe_interval_s", 600);
      probe_s > 0) {
    collect::ProbeConfig pc;
    pc.probe_nodes = {0, cluster_.topology().num_nodes() / 2};
    collection_.add_sampler(
        supervised(
            std::make_unique<collect::ProbeSuite>(cluster_, pc, core::Rng(101))),
        probe_s * kSecond, collect::router_sample_sink(router_));
  }
  // Optional health battery. Critical priority: the health signals are what
  // operators steer by during a storm, so the degradation controller never
  // widens this sampler's cadence.
  if (const auto health_s = config.get_int("health_interval_s", 600);
      health_s > 0) {
    collection_.add_sampler(
        supervised(std::make_unique<collect::HealthCheckSuite>(
                       cluster_, collect::HealthConfig{}),
                   core::Priority::kCritical),
        health_s * kSecond, collect::router_sample_sink(router_));
  }

  // Storm mode: the degradation controller closes the loop from the stack's
  // own health telemetry to priority-aware shedding. Evaluations run on the
  // simulated timeline; mode changes reach the ingest door immediately and
  // widen non-critical sampler cadence. Health signals are assembled from
  // the SAME obs snapshot the exporter re-ingests, so the control loop and
  // the operator report cannot disagree.
  if (config.get_bool("degradation", false)) {
    degradation_ =
        std::make_unique<resilience::DegradationController>(
            resilience::DegradationConfig{});
    degradation_->attach_to(obs_);
    degradation_->on_change(
        [this](core::DegradationMode mode) { apply_degradation(mode); });
    const Duration eval_interval =
        config.get_int("degradation_interval_s", 60) * kSecond;
    cluster_.events().schedule_every(
        cluster_.now() + eval_interval, eval_interval,
        [this, alive = alive_](core::TimePoint t) {
          if (!*alive) return;
          // Self-heal before taking the reading: rotate a poisoned WAL onto
          // a fresh segment, then run one redelivery pass over the
          // dead-letter queue. While the fault persists the letters stay put
          // (and keep dlq pressure honest); once the path recovers the queue
          // drains and the controller can stand down.
          if (wal_ && wal_->poisoned()) wal_->rotate();
          if (wal_delivery_ && wal_delivery_->dead_letter_count() > 0) {
            wal_delivery_->redeliver();
          }
          // With the rollup tree live, the assembler also reads the fleet
          // line — system-level utilization and live-node count — straight
          // from the current snapshot (advisory fields; the pressure model
          // is unchanged).
          if (rollup_) {
            const auto fleet = rollup_->snapshot();
            degradation_->evaluate(
                t, health_assembler_.assemble(obs_snapshot(), fleet.get(),
                                              cluster_.topology().system()));
          } else {
            degradation_->evaluate(
                t, health_assembler_.assemble(obs_snapshot()));
          }
        });
  }

  // Serving tier: the network front door (queries, streamed scans, live
  // subscriptions, admin surface) — off unless serve_port is present in the
  // config. serve_port = 0 binds an ephemeral port (serve()->port()).
  if (config.contains("serve_port")) {
    serve::ServeConfig sc;
    sc.port = static_cast<std::uint16_t>(config.get_int("serve_port", 0));
    sc.writer_threads = static_cast<std::size_t>(
        config.get_int("serve_writer_threads", 2));
    sc.egress_cap =
        static_cast<std::size_t>(config.get_int("serve_egress_cap", 256));
    sc.idle_timeout_ms = config.get_int("serve_idle_timeout_ms", 0);
    sc.relay_dedupe_window =
        static_cast<std::size_t>(config.get_int("relay_dedupe_window", 1024));
    sc.socket_faults = chaos_;
    sc.obs = &obs_;
    serve::ServeHooks hooks;
    // Queries answer from whichever numeric store is active — the exact
    // objects in-process callers read, so results are byte-identical. With
    // a tier ladder configured, the span view answers instead: dashboards
    // reach back through every resolution tier without knowing tiers exist.
    if (span_sharded_) {
      serve::bind_query_hooks(hooks, *span_sharded_);
    } else if (span_hot_) {
      serve::bind_query_hooks(hooks, *span_hot_);
    } else if (sharded_) {
      serve::bind_query_hooks(hooks, *sharded_);
    } else {
      serve::bind_query_hooks(hooks, tsdb_.hot());
    }
    hooks.registry = &cluster_.registry();
    hooks.status = [this] { return status(); };
    hooks.set_mode = [this](std::optional<core::DegradationMode> mode) {
      // Manual storm-mode override through the same enforcement path the
      // controller's on_change uses; nullopt releases back to NORMAL (a
      // running controller re-asserts its own verdict next evaluation).
      const auto m = mode.value_or(core::DegradationMode::kNormal);
      if (degradation_) {
        apply_degradation(m);
      } else if (ingest_) {
        ingest_->set_mode(m);
      } else {
        return false;
      }
      return true;
    };
    hooks.wal_rotate = [this] {
      if (!wal_) return false;
      wal_->rotate();
      return true;
    };
    // Rollup levels by name: resolve the component through the registry and
    // answer from the tree's current snapshot — never a store scatter-
    // gather. Unbound (=> kError to the client) without the tree.
    if (rollup_) {
      hooks.rollup_query =
          [this](std::string_view component,
                 std::string_view metric) -> std::optional<rollup::RollupStat> {
        const auto comp = cluster_.registry().find_component(component);
        if (!comp) return std::nullopt;
        const auto snap = rollup_->snapshot();
        const auto* s = snap->find(*comp, metric);
        if (s == nullptr) return std::nullopt;
        return *s;
      };
    }
    // Aggregator ingest for relayed batches: the server dedupes by
    // (source, seq) before calling this, so the hook applies each novel
    // batch through the SAME pathway local samples take — WAL first, then
    // the active numeric store, then the live-subscription fan-out.
    // Detector/rule analysis stays node-side (it already ran there).
    hooks.relay_apply = [this](const core::SampleBatch& batch,
                               core::Priority priority) -> std::size_t {
      if (wal_delivery_) {
        auto frame = transport::encode_samples(batch);
        frame.priority = priority;
        wal_delivery_->deliver(frame);
      }
      std::size_t applied = 0;
      if (ingest_) {
        ingest_->submit(batch);
        applied = batch.samples.size();
      } else {
        applied = sync_append(batch.samples);
      }
      if (serve_) serve_->publish_batch(batch);
      return applied;
    };
    serve_ = std::make_unique<serve::ServeServer>(sc, std::move(hooks));
    serve_->start();
  }

  // Relay tier: forward every numeric batch to an upstream aggregator with
  // at-least-once, exactly-applied semantics — off unless relay_upstream
  // names the aggregator's serve port.
  if (const auto upstream = config.get_int("relay_upstream", 0);
      upstream > 0) {
    relay::RelayConfig rc;
    rc.upstream_port = static_cast<std::uint16_t>(upstream);
    rc.source_id =
        static_cast<std::uint64_t>(config.get_int("relay_source", 1));
    rc.batch_samples =
        static_cast<std::size_t>(config.get_int("relay_batch_samples", 512));
    rc.queue_cap =
        static_cast<std::size_t>(config.get_int("relay_queue_cap", 1024));
    rc.backoff_ms = config.get_int("relay_backoff_ms", 50);
    rc.backoff_max_ms = config.get_int("relay_backoff_max_ms", 2000);
    // Seq-lease durability rides in the WAL directory when one exists; a
    // WAL-less node keeps volatile state (the hello heal still prevents
    // seq reuse after a restart).
    rc.state_path = wal_path.empty() ? "" : wal_path + "/relay.state";
    rc.priority_of = [this](core::SeriesId id) {
      return cluster_.registry().series_priority(id);
    };
    rc.socket_faults = chaos_;
    rc.fs_faults = chaos_;
    rc.obs = &obs_;
    relay_ = std::make_unique<relay::RelayClient>(std::move(rc));
    relay_->start();
  }

  // The monitor monitors itself: one unified export task re-ingests the
  // whole obs snapshot as hpcmon.self.* series every sweep (replacing the
  // per-tier self-ingest plumbing). Instruments are registered critical by
  // default — the monitor's vitals must survive the storms they report on.
  if (ingest_ || wal_ || supervise || degradation_) {
    self_component_ = cluster_.registry().register_component(
        {"hpcmon.self", core::ComponentKind::kService,
         cluster_.topology().system()});
    cluster_.events().schedule_every(
        cluster_.now() + sample_interval, sample_interval,
        [this, alive = alive_](core::TimePoint t) {
          if (!*alive) return;
          core::SampleBatch self;
          self.sweep_time = t;
          self.origin = self_component_;
          self.samples = exporter_.to_samples(obs_snapshot(),
                                              cluster_.registry(),
                                              self_component_, t);
          if (ingest_) {
            ingest_->submit(self);
          } else {
            sync_append(self.samples);
          }
          if (serve_) serve_->publish_batch(self);
        });
  }

  // Numeric alerting: detector bank on key series (Table I: triggers at
  // arbitrary points in the data pathway, here in-stream).
  const bool numeric_alerts = config.get_bool("numeric_alerts", true);
  if (numeric_alerts) {
    detectors_.watch("node.low_memory", "node.mem_free_gb",
                     analysis::below_factory(
                         config.get_double("min_free_mem_gb", 8.0), 4.0));
    detectors_.watch("facility.corrosion", "facility.corrosion_ppb",
                     analysis::above_factory(
                         config.get_double("corrosion_alert_ppb", 10.0), 2.0));
    detectors_.watch("fs.latency_outlier", "fs.ost.latency_ms",
                     analysis::mad_factory(60, 8.0));
  }

  // Router -> stores (+ analysis on both pathways).
  router_.subscribe(transport::FrameType::kSamples,
                    [this, numeric_alerts](const transport::Frame& f) {
                      auto batch = transport::decode_samples(f);
                      if (!batch.is_ok()) return;
                      if (numeric_alerts) {
                        for (const auto& a : detectors_.process(batch.value())) {
                          alerts_.raise(
                              {a.event.time, response::AlertSeverity::kWarning,
                               a.watch_name, a.component,
                               core::strformat("%s=%.3g (%s score %.1f)",
                                               a.metric.c_str(), a.event.value,
                                               a.event.detector.c_str(),
                                               a.event.score)});
                        }
                      }
                      // Write-ahead: the frame is durable (or dead-lettered
                      // and counted) before the in-memory store sees it.
                      if (wal_delivery_) wal_delivery_->deliver(f);
                      if (ingest_) {
                        ingest_->submit(batch.value());
                      } else {
                        sync_append(batch.value().samples);
                      }
                      // Live-subscription tap: fan the batch out to serve
                      // clients through bounded egress queues (never blocks
                      // on a slow client).
                      if (serve_) serve_->publish_batch(batch.value());
                      // Upstream tap: hand the batch to the relay tier for
                      // durable forwarding (never blocks; sheds bulk first
                      // under pressure, critical never).
                      if (relay_) relay_->submit(batch.value());
                    });
  router_.subscribe(transport::FrameType::kLogs,
                    [this](const transport::Frame& f) { on_log_frame(f); });

  // Rules / novelty / response.
  if (config.get_bool("rules", true)) {
    for (auto& r : analysis::standard_platform_rules()) {
      rules_.add_rule(std::move(r));
    }
  }
  if (config.get_bool("novelty", false)) {
    analysis::NoveltyParams np;
    np.training_until =
        config.get_int("novelty_training_s", 14400) * kSecond;
    novelty_ = std::make_unique<analysis::NoveltyDetector>(np);
  }
  alerts_.add_sink(
      [this](const response::Alert& a) { actions_.dispatch(a); });
  if (config.get_bool("quarantine_on_hw_critical", false)) {
    actions_.bind("hw_critical", response::AlertSeverity::kWarning,
                  "quarantine",
                  response::make_quarantine_action(
                      cluster_, config.get_int("gate_repair_s", 1800) * kSecond));
  }

  // Job lifecycle -> job store.
  cluster_.scheduler().set_on_start([this](const sim::JobRecord& rec) {
    store::JobMeta m;
    m.id = rec.id;
    m.app_name = rec.request.profile.name;
    m.nodes = rec.nodes;
    m.submit_time = rec.submit_time;
    m.start_time = rec.start_time;
    jobs_.record_start(m);
  });
  cluster_.scheduler().set_on_end([this](const sim::JobRecord& rec) {
    store::JobMeta m;
    m.id = rec.id;
    m.app_name = rec.request.profile.name;
    m.nodes = rec.nodes;
    m.submit_time = rec.submit_time;
    m.start_time = rec.start_time;
    m.end_time = rec.end_time;
    m.failed = rec.state == sim::JobState::kFailed;
    jobs_.record_end(m);
  });

  // Job gating.
  const bool pre = config.get_bool("gate_pre", false);
  const bool post = config.get_bool("gate_post", false);
  if (pre || post) {
    gate_ = std::make_unique<response::HealthGate>(
        cluster_, config.get_int("gate_repair_s", 1800) * kSecond);
    gate_->attach(pre, post);
  }

  // Hourly retention maintenance on the simulation timeline.
  archive_path_ = config.get_string("archive_path", "");
  cluster_.events().schedule_every(
      cluster_.now() + core::kHour, core::kHour,
      [this, alive = alive_](core::TimePoint) {
        if (!*alive) return;
        enforce_retention();
      });
}

MonitoringStack::~MonitoringStack() {
  // Scheduled closures outlive the stack in the event queue; flip the
  // liveness flag first so any tick firing after this point is a no-op.
  *alive_ = false;
  if (!crashed_) shutdown();
  // A simulated crash still joins the worker threads (the process is not
  // really dying) but skips the drain/flush, abandoning buffered state the
  // way a real crash would.
  if (ingest_) ingest_->stop();
}

ShutdownReport MonitoringStack::shutdown(std::chrono::milliseconds deadline) {
  ShutdownReport report;
  if (shut_down_) return report;
  shut_down_ = true;
  // Drain the relay first, while the upstream can still ack: anything left
  // unacked at the deadline is REPORTED and survives in the durable queue
  // semantics (fresh seqs after restart; the aggregator store's
  // strictly-increasing timestamps reject re-applies).
  if (relay_) {
    relay_->drain_for(static_cast<int>(deadline.count()));
    report.relay_unacked = relay_->pending();
    relay_->stop();
  }
  // Stop serving next: no client observes (or stalls) the drain below.
  if (serve_) serve_->stop();
  // Drain before teardown: everything already submitted reaches the shards —
  // unless a wedged tier can't finish within the deadline, in which case the
  // leftovers are abandoned and REPORTED rather than hanging teardown.
  if (ingest_) {
    report.drained = ingest_->drain_for(deadline);
    if (!report.drained) report.abandoned_batches = ingest_->in_flight();
    ingest_->stop();
  }
  if (wal_) wal_->sync();
  if (wal_delivery_) report.dead_letters = wal_delivery_->dead_letter_count();
  return report;
}

std::size_t MonitoringStack::sync_append(
    const std::vector<core::Sample>& samples) {
  const auto appended = tsdb_.append_batch(samples);
  // Observing the whole batch (including any store-rejected out-of-order
  // samples) is harmless: the tree keeps only each series' max-time value
  // and the merge discards anything older than the applied last_time.
  if (rollup_) {
    rollup_->observe(0, std::span<const core::Sample>(samples));
  }
  return appended;
}

void MonitoringStack::rollup_tick() {
  if (!rollup_) return;
  // Collecting the changed-level list costs an allocation per tick; skip it
  // unless a kRollupSub subscriber is actually watching.
  if (serve_ && serve_->has_rollup_subs()) {
    std::vector<rollup::RollupUpdate> changed;
    rollup_->tick(&changed);
    if (changed.empty()) return;
    std::vector<serve::RollupDelta> deltas;
    deltas.reserve(changed.size());
    for (auto& u : changed) {
      serve::RollupDelta d;
      d.component = cluster_.registry().component(u.component).name;
      d.metric = std::move(u.metric);
      d.stat = u.stat;
      deltas.push_back(std::move(d));
    }
    serve_->publish_rollup(deltas);
  } else {
    rollup_->tick();
  }
}

void MonitoringStack::apply_degradation(core::DegradationMode mode) {
  if (ingest_) ingest_->set_mode(mode);
  // Widen sampler cadence per the mode's stride — but never on critical
  // samplers: the health battery keeps full cadence through any storm.
  const auto stride =
      degradation_->config().sampler_stride[static_cast<std::size_t>(mode)];
  for (auto* s : supervised_) {
    if (s->priority() == core::Priority::kCritical) continue;
    s->set_stride(stride);
  }
}

void MonitoringStack::run_compaction(core::TimePoint now) {
  if (!compactor_ || !tiers_) return;
  // An injected crash killed the TierStore: durable state is frozen until a
  // fresh stack recovers the directory (the chaos harness's restart).
  if (tiers_->crashed()) return;
  // "Stop compacting, keep serving": the breaker denies passes while the
  // disk is sick; ingest, queries, and the WAL keep running untouched.
  if (!compact_breaker_->allow(now)) return;
  if (compactor_->run_pass(now).is_ok()) {
    compact_breaker_->record_success(now);
    // Everything below the watermark is durable in a tier file; the WAL no
    // longer needs to be able to replay it.
    if (wal_) wal_->truncate_before(tiers_->watermark());
  } else {
    compact_breaker_->record_failure(now);
  }
}

void MonitoringStack::refresh_live_gauges() const {
  if (queue_fill_gauge_ != nullptr && ingest_) {
    std::size_t depth = 0;
    for (std::size_t i = 0; i < sharded_->shard_count(); ++i) {
      depth = std::max(depth, ingest_->queue_depth(i));
    }
    queue_fill_gauge_->set(
        static_cast<double>(depth) /
        static_cast<double>(ingest_->config().queue_capacity));
  }
  if (disk_fill_gauge_ != nullptr && tiers_ && tier_disk_budget_bytes_ > 0) {
    disk_fill_gauge_->set(static_cast<double>(tiers_->disk_bytes()) /
                          static_cast<double>(tier_disk_budget_bytes_));
  }
  if (breaker_open_gauge_ != nullptr && !supervised_.empty()) {
    std::size_t open = 0;
    for (const auto* s : supervised_) {
      if (s->breaker_state() == resilience::BreakerState::kOpen) ++open;
    }
    breaker_open_gauge_->set(static_cast<double>(open) /
                             static_cast<double>(supervised_.size()));
  }
}

obs::ObsSnapshot MonitoringStack::obs_snapshot() const {
  refresh_live_gauges();
  return obs_.snapshot();
}

resilience::SupervisorStats MonitoringStack::supervisor_stats() const {
  resilience::SupervisorStats total;
  for (const auto* s : supervised_) total += s->stats();
  return total;
}

void MonitoringStack::enforce_retention() {
  // With a tier ladder configured, on-disk tiered retention owns eviction
  // (compaction passes evict behind the durable watermark); the in-memory
  // warm/archive ladder stands down so the two never race over a chunk.
  if (tiers_) return;
  const auto archived = tsdb_.enforce(cluster_.now());
  if (archived > 0 && !archive_path_.empty()) {
    if (tsdb_.archive().save_to_file(archive_path_).is_ok()) {
      ++archive_saves_;
      // History older than the hot window now lives in the just-spilled
      // archive file; the matching WAL segments are no longer the only
      // durable copy and can go. Without an archive_path the WAL is the
      // only durable tier, so it is never truncated.
      if (wal_) {
        wal_->truncate_before(cluster_.now() - tsdb_.policy().hot_window);
      }
    }
  }
}

void MonitoringStack::on_log_frame(const transport::Frame& frame) {
  auto events = transport::decode_logs(frame);
  if (!events.is_ok()) return;
  for (const auto& e : events.value()) {
    for (const auto& m : rules_.process(e)) {
      alerts_.raise({m.time,
                     e.severity <= core::Severity::kCritical
                         ? response::AlertSeverity::kCritical
                         : response::AlertSeverity::kWarning,
                     m.rule_name, m.component, m.detail});
    }
    if (novelty_) {
      for (auto& n : novelty_->process(e)) {
        novelty_reports_.push_back(std::move(n));
      }
    }
  }
  logs_.append_batch(std::move(events).take());
}

std::string MonitoringStack::status() const {
  const auto st = ingest_ ? sharded_->stats() : tsdb_.hot().stats();
  std::string line = core::strformat(
      "t=%s series=%zu points=%zu archived_blobs=%zu logs=%zu jobs=%zu "
      "alerts_active=%zu actions=%zu",
      core::format_time(cluster_.now()).c_str(), st.series, st.points,
      tsdb_.archive().blob_count(), logs_.size(), jobs_.size(),
      alerts_.active().size(), actions_.log().size());
  if (ingest_) {
    line += core::strformat(
        " | shards=%zu policy=%s",
        sharded_->shard_count(),
        std::string(ingest::to_string(ingest_->config().policy)).c_str());
  }
  if (degradation_) {
    line += core::strformat(
        " | mode=%s p=%.2f",
        std::string(core::to_string(degradation_->mode())).c_str(),
        degradation_->stats().last_pressure);
  }
  if (rollup_) {
    const auto snap = rollup_->snapshot();
    line += core::strformat(
        " | rollup v=%llu levels=%zu",
        static_cast<unsigned long long>(snap->version()),
        snap->entry_count());
  }
  if (!supervised_.empty()) {
    std::size_t open = 0;
    std::size_t half = 0;
    for (const auto* s : supervised_) {
      if (s->breaker_state() == resilience::BreakerState::kOpen) ++open;
      if (s->breaker_state() == resilience::BreakerState::kHalfOpen) ++half;
    }
    line += core::strformat(" | breakers closed=%zu open=%zu half=%zu",
                            supervised_.size() - open - half, open, half);
  }
  if (wal_delivery_) {
    line += core::strformat(" dlq=%zu", wal_delivery_->dead_letter_count());
  }
  // Everything else — ingest/store/wal/supervisor/degradation counters and
  // the per-stage latency histograms — is the exporter's one-line rendering
  // of the same snapshot the control loop reads.
  line += " | " + exporter_.report_line(obs_snapshot());
  return line;
}

}  // namespace hpcmon::stack
