#include "stack/stack.hpp"

#include "core/strings.hpp"
#include "transport/codec.hpp"

namespace hpcmon::stack {

using core::Duration;
using core::kSecond;

namespace {
store::RetentionPolicy retention_from(const core::Config& config) {
  store::RetentionPolicy policy;
  policy.hot_window = config.get_int("hot_window_s", 21600) * kSecond;
  policy.warm_window = config.get_int("warm_window_s", 604800) * kSecond;
  policy.warm_bucket = config.get_int("warm_bucket_s", 300) * kSecond;
  return policy;
}
}  // namespace

MonitoringStack::MonitoringStack(sim::Cluster& cluster,
                                 const core::Config& config)
    : cluster_(cluster),
      tsdb_(retention_from(config),
            static_cast<std::size_t>(config.get_int("chunk_points", 512))),
      detectors_(cluster.registry()),
      collection_(cluster) {
  const Duration sample_interval =
      config.get_int("sample_interval_s", 60) * kSecond;
  const Duration log_interval = config.get_int("log_interval_s", 15) * kSecond;

  // Optional threaded ingest tier (ingest_shards > 0). The synchronous
  // TieredStore path stays the default so existing benches remain
  // deterministic and reproducible.
  if (const auto shards = config.get_int("ingest_shards", 0); shards > 0) {
    sharded_ = std::make_unique<ingest::ShardedTimeSeriesStore>(
        static_cast<std::size_t>(shards),
        static_cast<std::size_t>(config.get_int("chunk_points", 512)));
    ingest::IngestConfig ic;
    ic.queue_capacity =
        static_cast<std::size_t>(config.get_int("ingest_queue_cap", 256));
    ic.policy = ingest::policy_from_string(
        config.get_string("ingest_policy", "block"),
        ingest::OverloadPolicy::kBlock);
    ic.max_coalesce_batches =
        static_cast<std::size_t>(config.get_int("ingest_coalesce", 16));
    ingest_ = std::make_unique<ingest::IngestPipeline>(*sharded_, ic);
    ingest_->start();
    // The monitor monitors itself: every sweep, the pipeline's own counters
    // are re-ingested as "ingest.*" series on a service component.
    ingest_component_ = cluster_.registry().register_component(
        {"ingest.pipeline", core::ComponentKind::kService,
         cluster_.topology().system()});
    cluster_.events().schedule_every(
        cluster_.now() + sample_interval, sample_interval,
        [this](core::TimePoint t) {
          core::SampleBatch self;
          self.sweep_time = t;
          self.origin = ingest_component_;
          self.samples = ingest_->metrics().to_samples(cluster_.registry(),
                                                       ingest_component_, t);
          ingest_->submit(self);
        });
  }

  // Collection -> router.
  for (auto& sampler : collect::make_all_samplers(cluster_)) {
    collection_.add_sampler(std::move(sampler), sample_interval,
                            collect::router_sample_sink(router_));
  }
  collection_.add_log_collector(log_interval,
                                collect::router_log_sink(router_));

  // Optional probe suite.
  if (const auto probe_s = config.get_int("probe_interval_s", 600);
      probe_s > 0) {
    collect::ProbeConfig pc;
    pc.probe_nodes = {0, cluster_.topology().num_nodes() / 2};
    collection_.add_sampler(
        std::make_unique<collect::ProbeSuite>(cluster_, pc, core::Rng(101)),
        probe_s * kSecond, collect::router_sample_sink(router_));
  }
  // Optional health battery.
  if (const auto health_s = config.get_int("health_interval_s", 600);
      health_s > 0) {
    collection_.add_sampler(
        std::make_unique<collect::HealthCheckSuite>(cluster_,
                                                    collect::HealthConfig{}),
        health_s * kSecond, collect::router_sample_sink(router_));
  }

  // Numeric alerting: detector bank on key series (Table I: triggers at
  // arbitrary points in the data pathway, here in-stream).
  const bool numeric_alerts = config.get_bool("numeric_alerts", true);
  if (numeric_alerts) {
    detectors_.watch("node.low_memory", "node.mem_free_gb",
                     analysis::below_factory(
                         config.get_double("min_free_mem_gb", 8.0), 4.0));
    detectors_.watch("facility.corrosion", "facility.corrosion_ppb",
                     analysis::above_factory(
                         config.get_double("corrosion_alert_ppb", 10.0), 2.0));
    detectors_.watch("fs.latency_outlier", "fs.ost.latency_ms",
                     analysis::mad_factory(60, 8.0));
  }

  // Router -> stores (+ analysis on both pathways).
  router_.subscribe(transport::FrameType::kSamples,
                    [this, numeric_alerts](const transport::Frame& f) {
                      auto batch = transport::decode_samples(f);
                      if (!batch.is_ok()) return;
                      if (numeric_alerts) {
                        for (const auto& a : detectors_.process(batch.value())) {
                          alerts_.raise(
                              {a.event.time, response::AlertSeverity::kWarning,
                               a.watch_name, a.component,
                               core::strformat("%s=%.3g (%s score %.1f)",
                                               a.metric.c_str(), a.event.value,
                                               a.event.detector.c_str(),
                                               a.event.score)});
                        }
                      }
                      if (ingest_) {
                        ingest_->submit(batch.value());
                      } else {
                        tsdb_.append_batch(batch.value().samples);
                      }
                    });
  router_.subscribe(transport::FrameType::kLogs,
                    [this](const transport::Frame& f) { on_log_frame(f); });

  // Rules / novelty / response.
  if (config.get_bool("rules", true)) {
    for (auto& r : analysis::standard_platform_rules()) {
      rules_.add_rule(std::move(r));
    }
  }
  if (config.get_bool("novelty", false)) {
    analysis::NoveltyParams np;
    np.training_until =
        config.get_int("novelty_training_s", 14400) * kSecond;
    novelty_ = std::make_unique<analysis::NoveltyDetector>(np);
  }
  alerts_.add_sink(
      [this](const response::Alert& a) { actions_.dispatch(a); });
  if (config.get_bool("quarantine_on_hw_critical", false)) {
    actions_.bind("hw_critical", response::AlertSeverity::kWarning,
                  "quarantine",
                  response::make_quarantine_action(
                      cluster_, config.get_int("gate_repair_s", 1800) * kSecond));
  }

  // Job lifecycle -> job store.
  cluster_.scheduler().set_on_start([this](const sim::JobRecord& rec) {
    store::JobMeta m;
    m.id = rec.id;
    m.app_name = rec.request.profile.name;
    m.nodes = rec.nodes;
    m.submit_time = rec.submit_time;
    m.start_time = rec.start_time;
    jobs_.record_start(m);
  });
  cluster_.scheduler().set_on_end([this](const sim::JobRecord& rec) {
    store::JobMeta m;
    m.id = rec.id;
    m.app_name = rec.request.profile.name;
    m.nodes = rec.nodes;
    m.submit_time = rec.submit_time;
    m.start_time = rec.start_time;
    m.end_time = rec.end_time;
    m.failed = rec.state == sim::JobState::kFailed;
    jobs_.record_end(m);
  });

  // Job gating.
  const bool pre = config.get_bool("gate_pre", false);
  const bool post = config.get_bool("gate_post", false);
  if (pre || post) {
    gate_ = std::make_unique<response::HealthGate>(
        cluster_, config.get_int("gate_repair_s", 1800) * kSecond);
    gate_->attach(pre, post);
  }

  // Hourly retention maintenance on the simulation timeline.
  archive_path_ = config.get_string("archive_path", "");
  cluster_.events().schedule_every(
      cluster_.now() + core::kHour, core::kHour,
      [this](core::TimePoint) { enforce_retention(); });
}

void MonitoringStack::enforce_retention() {
  const auto archived = tsdb_.enforce(cluster_.now());
  if (archived > 0 && !archive_path_.empty()) {
    if (tsdb_.archive().save_to_file(archive_path_).is_ok()) {
      ++archive_saves_;
    }
  }
}

void MonitoringStack::on_log_frame(const transport::Frame& frame) {
  auto events = transport::decode_logs(frame);
  if (!events.is_ok()) return;
  for (const auto& e : events.value()) {
    for (const auto& m : rules_.process(e)) {
      alerts_.raise({m.time,
                     e.severity <= core::Severity::kCritical
                         ? response::AlertSeverity::kCritical
                         : response::AlertSeverity::kWarning,
                     m.rule_name, m.component, m.detail});
    }
    if (novelty_) {
      for (auto& n : novelty_->process(e)) {
        novelty_reports_.push_back(std::move(n));
      }
    }
  }
  logs_.append_batch(std::move(events).take());
}

std::string MonitoringStack::status() const {
  const auto st = ingest_ ? sharded_->stats() : tsdb_.hot().stats();
  std::string line = core::strformat(
      "t=%s series=%zu points=%zu archived_blobs=%zu logs=%zu jobs=%zu "
      "alerts_active=%zu actions=%zu",
      core::format_time(cluster_.now()).c_str(), st.series, st.points,
      tsdb_.archive().blob_count(), logs_.size(), jobs_.size(),
      alerts_.active().size(), actions_.log().size());
  if (ingest_) {
    line += core::strformat(
        " | shards=%zu policy=%s ",
        sharded_->shard_count(),
        std::string(ingest::to_string(ingest_->config().policy)).c_str());
    line += ingest_->metrics().snapshot().to_string();
  }
  return line;
}

}  // namespace hpcmon::stack
