#include "transport/codec.hpp"

#include <cstdio>
#include <cstring>

#include "core/strings.hpp"

namespace hpcmon::transport {

using core::LogEvent;
using core::Result;
using core::Sample;
using core::SampleBatch;

Frame encode_samples(const SampleBatch& batch) {
  Frame f;
  f.type = FrameType::kSamples;
  ByteWriter w(f.payload);
  w.i64(batch.sweep_time);
  w.u32(core::raw(batch.origin));
  w.u32(static_cast<std::uint32_t>(batch.samples.size()));
  for (const auto& s : batch.samples) {
    w.u32(core::raw(s.series));
    w.i64(s.time);
    w.f64(s.value);
  }
  return f;
}

Result<SampleBatch> decode_samples(const Frame& frame) {
  if (frame.type != FrameType::kSamples) {
    return Result<SampleBatch>::error("frame is not a sample batch");
  }
  ByteReader r(frame.payload);
  SampleBatch batch;
  std::uint32_t origin = 0;
  std::uint32_t count = 0;
  if (!r.i64(batch.sweep_time) || !r.u32(origin) || !r.u32(count)) {
    return Result<SampleBatch>::error("truncated sample frame header");
  }
  batch.origin = core::ComponentId{origin};
  batch.samples.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Sample s;
    std::uint32_t series = 0;
    if (!r.u32(series) || !r.i64(s.time) || !r.f64(s.value)) {
      return Result<SampleBatch>::error("truncated sample frame body");
    }
    s.series = core::SeriesId{series};
    batch.samples.push_back(s);
  }
  return batch;
}

Frame encode_logs(const std::vector<LogEvent>& events) {
  Frame f;
  f.type = FrameType::kLogs;
  ByteWriter w(f.payload);
  w.u32(static_cast<std::uint32_t>(events.size()));
  for (const auto& e : events) {
    w.i64(e.time);
    w.i64(e.local_time);
    w.u32(core::raw(e.component));
    w.u8(static_cast<std::uint8_t>(e.facility));
    w.u8(static_cast<std::uint8_t>(e.severity));
    w.u64(core::raw(e.job));
    w.str(e.message);
  }
  return f;
}

Result<std::vector<LogEvent>> decode_logs(const Frame& frame) {
  if (frame.type != FrameType::kLogs) {
    return Result<std::vector<LogEvent>>::error("frame is not a log batch");
  }
  ByteReader r(frame.payload);
  std::uint32_t count = 0;
  if (!r.u32(count)) {
    return Result<std::vector<LogEvent>>::error("truncated log frame header");
  }
  std::vector<LogEvent> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    LogEvent e;
    std::uint32_t comp = 0;
    std::uint8_t fac = 0;
    std::uint8_t sev = 0;
    std::uint64_t job = 0;
    if (!r.i64(e.time) || !r.i64(e.local_time) || !r.u32(comp) ||
        !r.u8(fac) || !r.u8(sev) || !r.u64(job) || !r.str(e.message)) {
      return Result<std::vector<LogEvent>>::error("truncated log frame body");
    }
    e.component = core::ComponentId{comp};
    e.facility = static_cast<core::LogFacility>(fac);
    e.severity = static_cast<core::Severity>(sev);
    e.job = core::JobId{job};
    out.push_back(std::move(e));
  }
  return out;
}

std::string format_text(const LogEvent& event,
                        const core::MetricRegistry& registry) {
  const int pri = static_cast<int>(event.facility) * 8 +
                  static_cast<int>(event.severity);
  const std::string comp = event.component == core::kNoComponent
                               ? "-"
                               : registry.component(event.component).name;
  return core::strformat("<%d> %s %s %s: %s", pri,
                         core::format_time(event.time).c_str(), comp.c_str(),
                         std::string(core::to_string(event.facility)).c_str(),
                         event.message.c_str());
}

std::optional<LogEvent> parse_text(const std::string& line,
                                   const core::MetricRegistry& registry) {
  int pri = 0;
  long long days = 0, h = 0, m = 0, s = 0, ms = 0;
  char comp[128] = {0};
  char fac[32] = {0};
  int consumed = 0;
  const int n =
      std::sscanf(line.c_str(), "<%d> %lld+%lld:%lld:%lld.%lld %127s %31[^:]: %n",
                  &pri, &days, &h, &m, &s, &ms, comp, fac, &consumed);
  if (n < 8) return std::nullopt;
  LogEvent e;
  e.time = ((days * 24 + h) * 3600 + m * 60 + s) * core::kSecond +
           ms * core::kMillisecond;
  e.local_time = e.time;  // lost in translation: local stamp not in text form
  e.severity = static_cast<core::Severity>(pri % 8);
  e.facility = static_cast<core::LogFacility>(pri / 8);
  e.job = core::kNoJob;  // lost in translation
  if (auto id = registry.find_component(comp)) {
    e.component = *id;
  } else {
    e.component = core::kNoComponent;
  }
  e.message = line.substr(static_cast<std::size_t>(consumed));
  return e;
}

}  // namespace hpcmon::transport
