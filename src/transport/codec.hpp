// Wire codecs for telemetry frames.
//
// The paper's Sec. IV-A case study: Cray's ERD moves "a vast amount of data
// ... transported in a proprietary binary format (a small subset is made
// available to operations staff in text format)". ALCF had to reverse the
// format from source RPMs. hpcmon implements both paths as *documented*
// codecs: a compact binary frame format (what the ERD should have been —
// documented, lossless, raw) and a syslog-style text rendering (the lossy
// translated view). bench/ablation_transport measures the cost of the text
// detour; tests assert the binary path round-trips losslessly while the text
// path drops fields (job attribution, local timestamps) — exactly the
// paper's complaint.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/log_event.hpp"
#include "core/priority.hpp"
#include "core/registry.hpp"
#include "core/result.hpp"
#include "core/sample.hpp"

namespace hpcmon::transport {

enum class FrameType : std::uint8_t {
  kSamples = 1,  // SampleBatch payload
  kLogs = 2,     // LogEvent[] payload
};

/// One framed message: type tag + binary payload. `priority` is a hop-local
/// QoS tag (not serialized): bounded fan-out queues shed lower-priority
/// frames first (see EventRouter::subscribe_buffered). Encoders default it
/// to kStandard; producers that know better (self-telemetry, chaos floods)
/// tag their frames explicitly.
struct Frame {
  FrameType type = FrameType::kSamples;
  core::Priority priority = core::Priority::kStandard;
  std::vector<std::uint8_t> payload;

  std::size_t byte_size() const { return payload.size() + 1; }
};

// -- Binary codec (lossless, documented) -------------------------------------

Frame encode_samples(const core::SampleBatch& batch);
core::Result<core::SampleBatch> decode_samples(const Frame& frame);

Frame encode_logs(const std::vector<core::LogEvent>& events);
core::Result<std::vector<core::LogEvent>> decode_logs(const Frame& frame);

// -- Text codec (syslog-style, lossy translation) -----------------------------

/// Render one event as a syslog-like line:
///   "<pri> D+HH:MM:SS.mmm component facility: message"
/// Deliberately loses job attribution and the local (drifted) timestamp —
/// the kind of "vendor translation/filtration" the paper warns "may result
/// in less usable forms of data".
std::string format_text(const core::LogEvent& event,
                        const core::MetricRegistry& registry);

/// Parse a format_text() line back into an event. Component names are
/// resolved through the registry; unknown components yield kNoComponent.
std::optional<core::LogEvent> parse_text(const std::string& line,
                                         const core::MetricRegistry& registry);

}  // namespace hpcmon::transport
