// Wire codecs for telemetry frames.
//
// The paper's Sec. IV-A case study: Cray's ERD moves "a vast amount of data
// ... transported in a proprietary binary format (a small subset is made
// available to operations staff in text format)". ALCF had to reverse the
// format from source RPMs. hpcmon implements both paths as *documented*
// codecs: a compact binary frame format (what the ERD should have been —
// documented, lossless, raw) and a syslog-style text rendering (the lossy
// translated view). bench/ablation_transport measures the cost of the text
// detour; tests assert the binary path round-trips losslessly while the text
// path drops fields (job attribution, local timestamps) — exactly the
// paper's complaint.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "core/log_event.hpp"
#include "core/priority.hpp"
#include "core/registry.hpp"
#include "core/result.hpp"
#include "core/sample.hpp"

namespace hpcmon::transport {

enum class FrameType : std::uint8_t {
  kSamples = 1,  // SampleBatch payload
  kLogs = 2,     // LogEvent[] payload
};

/// One framed message: type tag + binary payload. `priority` is a hop-local
/// QoS tag (not serialized): bounded fan-out queues shed lower-priority
/// frames first (see EventRouter::subscribe_buffered). Encoders default it
/// to kStandard; producers that know better (self-telemetry, chaos floods)
/// tag their frames explicitly.
struct Frame {
  FrameType type = FrameType::kSamples;
  core::Priority priority = core::Priority::kStandard;
  std::vector<std::uint8_t> payload;

  std::size_t byte_size() const { return payload.size() + 1; }
};

// -- Primitive byte codec ------------------------------------------------------
// The little-endian scalar/string primitives every binary frame body in
// hpcmon is built from (sample/log frames here, WAL records, and the serve
// tier's request/response bodies). Reader methods return false on underrun
// instead of throwing — adversarial input from a socket must fail cheaply.

class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(out) {}
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) { raw(&v, 2); }
  void u32(std::uint32_t v) { raw(&v, 4); }
  void u64(std::uint64_t v) { raw(&v, 8); }
  void i64(std::int64_t v) { raw(&v, 8); }
  void f64(double v) { raw(&v, 8); }
  /// Length-prefixed string, truncated at 65535 bytes.
  void str(const std::string& s) {
    u16(static_cast<std::uint16_t>(std::min<std::size_t>(s.size(), 65535)));
    raw(s.data(), std::min<std::size_t>(s.size(), 65535));
  }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    out_.insert(out_.end(), b, b + n);
  }
  std::vector<std::uint8_t>& out_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& in) : in_(in) {}
  bool u8(std::uint8_t& v) { return raw(&v, 1); }
  bool u16(std::uint16_t& v) { return raw(&v, 2); }
  bool u32(std::uint32_t& v) { return raw(&v, 4); }
  bool u64(std::uint64_t& v) { return raw(&v, 8); }
  bool i64(std::int64_t& v) { return raw(&v, 8); }
  bool f64(double& v) { return raw(&v, 8); }
  bool str(std::string& s) {
    std::uint16_t n = 0;
    if (!u16(n)) return false;
    if (pos_ + n > in_.size()) return false;
    s.assign(reinterpret_cast<const char*>(in_.data() + pos_), n);
    pos_ += n;
    return true;
  }
  /// Bytes not yet consumed.
  std::size_t remaining() const { return in_.size() - pos_; }

 private:
  bool raw(void* p, std::size_t n) {
    if (pos_ + n > in_.size()) return false;
    std::memcpy(p, in_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  const std::vector<std::uint8_t>& in_;
  std::size_t pos_ = 0;
};

// -- Binary codec (lossless, documented) -------------------------------------

Frame encode_samples(const core::SampleBatch& batch);
core::Result<core::SampleBatch> decode_samples(const Frame& frame);

Frame encode_logs(const std::vector<core::LogEvent>& events);
core::Result<std::vector<core::LogEvent>> decode_logs(const Frame& frame);

// -- Text codec (syslog-style, lossy translation) -----------------------------

/// Render one event as a syslog-like line:
///   "<pri> D+HH:MM:SS.mmm component facility: message"
/// Deliberately loses job attribution and the local (drifted) timestamp —
/// the kind of "vendor translation/filtration" the paper warns "may result
/// in less usable forms of data".
std::string format_text(const core::LogEvent& event,
                        const core::MetricRegistry& registry);

/// Parse a format_text() line back into an event. Component names are
/// resolved through the registry; unknown components yield kNoComponent.
std::optional<core::LogEvent> parse_text(const std::string& line,
                                         const core::MetricRegistry& registry);

}  // namespace hpcmon::transport
