// EventRouter: the documented, open replacement for a vendor ERD.
//
// A fan-out hub for binary frames with (a) per-type subscriptions, (b) a raw
// tap that sees everything at maximum fidelity (Table I: "well-documented
// interfaces for accessing raw data at maximum fidelity with the lowest
// possible overhead"), and (c) forwarding into downstream routers so sites
// can build an aggregation tree (the paper notes PMDB "can be stored
// separately via ERD forwarding capabilities"). Routing is synchronous and
// deterministic; threaded deployments put a Channel between routers.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "obs/registry.hpp"
#include "transport/codec.hpp"

namespace hpcmon::transport {

/// Typed view over the router's obs instruments (see EventRouter::attach_to).
struct RouterStats {
  std::uint64_t frames = 0;
  std::uint64_t bytes = 0;
  std::array<std::uint64_t, 4> frames_by_type{};  // indexed by FrameType
  std::uint64_t dropped = 0;                      // no subscriber, no forward
  std::uint64_t subscriber_failures = 0;          // handlers that threw
  std::uint64_t fanout_dropped = 0;   // frames shed by full buffered queues
  std::uint64_t fanout_pending_hwm = 0;  // max pending across buffered subs
};

class EventRouter;

/// A bounded pending-frame queue for a subscriber that consumes at its own
/// pace (a flaky forwarder, a slow archiver). During a log storm an unbounded
/// mailbox for such a consumer grows without limit and takes the whole
/// process down with it; this queue caps pending frames at `max_pending` and
/// sheds — lowest priority first, oldest first within a class — when full.
/// An incoming frame that outranks nothing already queued is itself dropped.
/// Every shed frame is counted here and in RouterStats::fanout_dropped.
/// Single-threaded like the router itself (threaded deployments put a
/// Channel between routers).
class BufferedSubscription {
 public:
  std::size_t pending() const { return queue_.size(); }
  std::uint64_t dropped() const { return dropped_; }
  std::size_t max_pending() const { return max_pending_; }

  /// Deliver every pending frame to `handler` (in arrival order) and clear
  /// the queue; returns the number delivered. A throwing handler loses only
  /// the frame it threw on.
  std::size_t drain(const std::function<void(const Frame&)>& handler);

 private:
  friend class EventRouter;
  BufferedSubscription(FrameType type, std::size_t max_pending)
      : type_(type), max_pending_(max_pending == 0 ? 1 : max_pending) {}
  /// Admit `frame`, shedding per the policy above; reports drops into the
  /// owning router's instruments.
  void offer(const Frame& frame, EventRouter& router);

  FrameType type_;
  std::size_t max_pending_;
  std::deque<Frame> queue_;
  std::uint64_t dropped_ = 0;
};

class EventRouter {
 public:
  using Handler = std::function<void(const Frame&)>;

  /// Subscribe to one frame type.
  void subscribe(FrameType type, Handler handler);
  /// Raw tap: receives every frame before type dispatch.
  void subscribe_raw(Handler handler);
  /// Subscribe with a bounded pending queue instead of synchronous delivery;
  /// the consumer drains the returned subscription at its own pace. The
  /// router holds a reference too, so the subscription outlives either side.
  std::shared_ptr<BufferedSubscription> subscribe_buffered(
      FrameType type, std::size_t max_pending);

  /// Forward every frame into a downstream router (aggregation tree edge).
  /// The downstream router must outlive this one.
  void forward_to(EventRouter& downstream);

  /// Publish one frame: raw taps, then type subscribers (synchronous, then
  /// buffered), then forwards. A handler that throws is contained and
  /// counted (subscriber_failures); fan-out always continues to the
  /// remaining subscribers — one bad consumer must never take down the data
  /// path for the rest.
  void publish(const Frame& frame);

  RouterStats stats() const;

  /// Catalog the router's instruments as transport.* in `registry`.
  void attach_to(obs::ObsRegistry& registry) const;

 private:
  friend class BufferedSubscription;

  std::vector<std::pair<FrameType, Handler>> subscribers_;
  std::vector<Handler> raw_taps_;
  std::vector<std::shared_ptr<BufferedSubscription>> buffered_;
  std::vector<EventRouter*> forwards_;
  obs::Counter frames_;
  obs::Counter bytes_;
  std::array<obs::Counter, 4> frames_by_type_;  // indexed by FrameType
  obs::Counter dropped_;
  obs::Counter subscriber_failures_;
  obs::Counter fanout_dropped_;
  obs::Gauge fanout_pending_hwm_;
};

}  // namespace hpcmon::transport
