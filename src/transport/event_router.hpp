// EventRouter: the documented, open replacement for a vendor ERD.
//
// A fan-out hub for binary frames with (a) per-type subscriptions, (b) a raw
// tap that sees everything at maximum fidelity (Table I: "well-documented
// interfaces for accessing raw data at maximum fidelity with the lowest
// possible overhead"), and (c) forwarding into downstream routers so sites
// can build an aggregation tree (the paper notes PMDB "can be stored
// separately via ERD forwarding capabilities"). Routing is synchronous and
// deterministic; threaded deployments put a Channel between routers.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "transport/codec.hpp"

namespace hpcmon::transport {

struct RouterStats {
  std::uint64_t frames = 0;
  std::uint64_t bytes = 0;
  std::array<std::uint64_t, 4> frames_by_type{};  // indexed by FrameType
  std::uint64_t dropped = 0;                      // no subscriber, no forward
  std::uint64_t subscriber_failures = 0;          // handlers that threw
};

class EventRouter {
 public:
  using Handler = std::function<void(const Frame&)>;

  /// Subscribe to one frame type.
  void subscribe(FrameType type, Handler handler);
  /// Raw tap: receives every frame before type dispatch.
  void subscribe_raw(Handler handler);

  /// Forward every frame into a downstream router (aggregation tree edge).
  /// The downstream router must outlive this one.
  void forward_to(EventRouter& downstream);

  /// Publish one frame: raw taps, then type subscribers, then forwards.
  /// A handler that throws is contained and counted (subscriber_failures);
  /// fan-out always continues to the remaining subscribers — one bad
  /// consumer must never take down the data path for the rest.
  void publish(const Frame& frame);

  const RouterStats& stats() const { return stats_; }

 private:
  std::vector<std::pair<FrameType, Handler>> subscribers_;
  std::vector<Handler> raw_taps_;
  std::vector<EventRouter*> forwards_;
  RouterStats stats_;
};

}  // namespace hpcmon::transport
