#include "transport/event_router.hpp"

namespace hpcmon::transport {

void EventRouter::subscribe(FrameType type, Handler handler) {
  subscribers_.emplace_back(type, std::move(handler));
}

void EventRouter::subscribe_raw(Handler handler) {
  raw_taps_.push_back(std::move(handler));
}

void EventRouter::forward_to(EventRouter& downstream) {
  forwards_.push_back(&downstream);
}

void EventRouter::publish(const Frame& frame) {
  ++stats_.frames;
  stats_.bytes += frame.byte_size();
  const auto t = static_cast<std::size_t>(frame.type);
  if (t < stats_.frames_by_type.size()) ++stats_.frames_by_type[t];

  bool delivered = false;
  const auto guarded = [this](const Handler& handler, const Frame& f) {
    try {
      handler(f);
    } catch (const std::exception&) {
      ++stats_.subscriber_failures;
    }
  };
  for (const auto& tap : raw_taps_) {
    guarded(tap, frame);
    delivered = true;
  }
  for (const auto& [type, handler] : subscribers_) {
    if (type == frame.type) {
      guarded(handler, frame);
      delivered = true;
    }
  }
  for (auto* fwd : forwards_) {
    fwd->publish(frame);
    delivered = true;
  }
  if (!delivered) ++stats_.dropped;
}

}  // namespace hpcmon::transport
