#include "transport/event_router.hpp"

#include <algorithm>

namespace hpcmon::transport {

std::size_t BufferedSubscription::drain(
    const std::function<void(const Frame&)>& handler) {
  std::size_t delivered = 0;
  while (!queue_.empty()) {
    Frame f = std::move(queue_.front());
    queue_.pop_front();
    try {
      handler(f);
    } catch (const std::exception&) {
      // The frame it threw on is lost; the rest of the queue still drains.
    }
    ++delivered;
  }
  return delivered;
}

void BufferedSubscription::offer(const Frame& frame, EventRouter& router) {
  if (queue_.size() >= max_pending_) {
    // Evict the oldest frame of the lowest-priority class present. Priority
    // values order kCritical(0) < kStandard < kBulk, so "worst" = max value.
    auto worst = std::max_element(
        queue_.begin(), queue_.end(), [](const Frame& a, const Frame& b) {
          return static_cast<int>(a.priority) < static_cast<int>(b.priority);
        });
    if (worst == queue_.end() || worst->priority < frame.priority) {
      // Everything pending outranks (or ties better than) the newcomer:
      // shed the incoming frame instead.
      ++dropped_;
      router.fanout_dropped_.add();
      return;
    }
    // max_element returns the FIRST (oldest) of the worst class.
    queue_.erase(worst);
    ++dropped_;
    router.fanout_dropped_.add();
  }
  queue_.push_back(frame);
  router.fanout_pending_hwm_.update_max(static_cast<double>(queue_.size()));
}

void EventRouter::subscribe(FrameType type, Handler handler) {
  subscribers_.emplace_back(type, std::move(handler));
}

void EventRouter::subscribe_raw(Handler handler) {
  raw_taps_.push_back(std::move(handler));
}

std::shared_ptr<BufferedSubscription> EventRouter::subscribe_buffered(
    FrameType type, std::size_t max_pending) {
  auto sub = std::shared_ptr<BufferedSubscription>(
      new BufferedSubscription(type, max_pending));
  buffered_.push_back(sub);
  return sub;
}

void EventRouter::forward_to(EventRouter& downstream) {
  forwards_.push_back(&downstream);
}

void EventRouter::publish(const Frame& frame) {
  frames_.add();
  bytes_.add(frame.byte_size());
  const auto t = static_cast<std::size_t>(frame.type);
  if (t < frames_by_type_.size()) frames_by_type_[t].add();

  bool delivered = false;
  const auto guarded = [this](const Handler& handler, const Frame& f) {
    try {
      handler(f);
    } catch (const std::exception&) {
      subscriber_failures_.add();
    }
  };
  for (const auto& tap : raw_taps_) {
    guarded(tap, frame);
    delivered = true;
  }
  for (const auto& [type, handler] : subscribers_) {
    if (type == frame.type) {
      guarded(handler, frame);
      delivered = true;
    }
  }
  for (const auto& sub : buffered_) {
    if (sub->type_ == frame.type) {
      sub->offer(frame, *this);
      delivered = true;
    }
  }
  for (auto* fwd : forwards_) {
    fwd->publish(frame);
    delivered = true;
  }
  if (!delivered) dropped_.add();
}

RouterStats EventRouter::stats() const {
  RouterStats s;
  s.frames = frames_.value();
  s.bytes = bytes_.value();
  for (std::size_t i = 0; i < frames_by_type_.size(); ++i) {
    s.frames_by_type[i] = frames_by_type_[i].value();
  }
  s.dropped = dropped_.value();
  s.subscriber_failures = subscriber_failures_.value();
  s.fanout_dropped = fanout_dropped_.value();
  s.fanout_pending_hwm =
      static_cast<std::uint64_t>(fanout_pending_hwm_.value());
  return s;
}

void EventRouter::attach_to(obs::ObsRegistry& registry) const {
  registry.attach({"transport.frames", "frames", "frames published"},
                  &frames_);
  registry.attach({"transport.bytes", "bytes", "frame payload bytes routed"},
                  &bytes_);
  registry.attach({"transport.sample_frames", "frames",
                   "sample-batch frames published"},
                  &frames_by_type_[static_cast<std::size_t>(
                      FrameType::kSamples)]);
  registry.attach(
      {"transport.log_frames", "frames", "log-event frames published"},
      &frames_by_type_[static_cast<std::size_t>(FrameType::kLogs)]);
  registry.attach({"transport.unrouted_frames", "frames",
                   "frames with no subscriber and no forward"},
                  &dropped_);
  registry.attach({"transport.subscriber_failures", "frames",
                   "handler invocations that threw (contained)"},
                  &subscriber_failures_);
  registry.attach({"transport.fanout_dropped", "frames",
                   "frames shed by full buffered subscriptions"},
                  &fanout_dropped_);
  registry.attach({"transport.fanout_pending_hwm", "frames",
                   "max pending frames across buffered subscriptions"},
                  &fanout_pending_hwm_);
}

}  // namespace hpcmon::transport
