#include "transport/event_router.hpp"

#include <algorithm>

namespace hpcmon::transport {

std::size_t BufferedSubscription::drain(
    const std::function<void(const Frame&)>& handler) {
  std::size_t delivered = 0;
  while (!queue_.empty()) {
    Frame f = std::move(queue_.front());
    queue_.pop_front();
    try {
      handler(f);
    } catch (const std::exception&) {
      // The frame it threw on is lost; the rest of the queue still drains.
    }
    ++delivered;
  }
  return delivered;
}

void BufferedSubscription::offer(const Frame& frame, RouterStats& rs) {
  if (queue_.size() >= max_pending_) {
    // Evict the oldest frame of the lowest-priority class present. Priority
    // values order kCritical(0) < kStandard < kBulk, so "worst" = max value.
    auto worst = std::max_element(
        queue_.begin(), queue_.end(), [](const Frame& a, const Frame& b) {
          return static_cast<int>(a.priority) < static_cast<int>(b.priority);
        });
    if (worst == queue_.end() || worst->priority < frame.priority) {
      // Everything pending outranks (or ties better than) the newcomer:
      // shed the incoming frame instead.
      ++dropped_;
      ++rs.fanout_dropped;
      return;
    }
    // max_element returns the FIRST (oldest) of the worst class.
    queue_.erase(worst);
    ++dropped_;
    ++rs.fanout_dropped;
  }
  queue_.push_back(frame);
  rs.fanout_pending_hwm = std::max<std::uint64_t>(
      rs.fanout_pending_hwm, static_cast<std::uint64_t>(queue_.size()));
}

void EventRouter::subscribe(FrameType type, Handler handler) {
  subscribers_.emplace_back(type, std::move(handler));
}

void EventRouter::subscribe_raw(Handler handler) {
  raw_taps_.push_back(std::move(handler));
}

std::shared_ptr<BufferedSubscription> EventRouter::subscribe_buffered(
    FrameType type, std::size_t max_pending) {
  auto sub = std::shared_ptr<BufferedSubscription>(
      new BufferedSubscription(type, max_pending));
  buffered_.push_back(sub);
  return sub;
}

void EventRouter::forward_to(EventRouter& downstream) {
  forwards_.push_back(&downstream);
}

void EventRouter::publish(const Frame& frame) {
  ++stats_.frames;
  stats_.bytes += frame.byte_size();
  const auto t = static_cast<std::size_t>(frame.type);
  if (t < stats_.frames_by_type.size()) ++stats_.frames_by_type[t];

  bool delivered = false;
  const auto guarded = [this](const Handler& handler, const Frame& f) {
    try {
      handler(f);
    } catch (const std::exception&) {
      ++stats_.subscriber_failures;
    }
  };
  for (const auto& tap : raw_taps_) {
    guarded(tap, frame);
    delivered = true;
  }
  for (const auto& [type, handler] : subscribers_) {
    if (type == frame.type) {
      guarded(handler, frame);
      delivered = true;
    }
  }
  for (const auto& sub : buffered_) {
    if (sub->type_ == frame.type) {
      sub->offer(frame, stats_);
      delivered = true;
    }
  }
  for (auto* fwd : forwards_) {
    fwd->publish(frame);
    delivered = true;
  }
  if (!delivered) ++stats_.dropped;
}

}  // namespace hpcmon::transport
