// Bounded MPMC channel for threaded transport stages.
//
// The deterministic benches wire routers synchronously; the threaded example
// deployments (examples/quickstart) put a Channel between collection and
// storage so a slow consumer exerts backpressure instead of unbounded
// buffering (Table I: impact of transport "should be well-documented" — here
// it is explicit: producers block when the channel is full).
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace hpcmon::transport {

template <typename T>
class Channel {
 public:
  explicit Channel(std::size_t capacity) : capacity_(capacity) {}

  /// Blocking push; returns false if the channel was closed.
  bool push(T value) {
    std::unique_lock lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || queue_.size() < capacity_; });
    if (closed_) return false;
    queue_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool try_push(T value) {
    std::scoped_lock lock(mu_);
    if (closed_ || queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Timed push: waits up to `timeout` for space. Returns false on timeout or
  /// close and leaves `value` intact (not consumed), so callers can apply an
  /// overload policy (drop, reject, retry) to the very same item. A zero
  /// timeout is a non-consuming try_push.
  template <typename Rep, typename Period>
  bool push_for(T& value, const std::chrono::duration<Rep, Period>& timeout) {
    std::unique_lock lock(mu_);
    if (!not_full_.wait_for(lock, timeout, [&] {
          return closed_ || queue_.size() < capacity_;
        })) {
      return false;
    }
    if (closed_) return false;
    queue_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop; nullopt once closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    T out = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return out;
  }

  /// Timed pop: waits up to `timeout` for an item. Returns nullopt on timeout
  /// or once closed and drained. Lets consumers wake periodically to check
  /// shutdown flags instead of blocking forever on an idle queue.
  template <typename Rep, typename Period>
  std::optional<T> pop_for(const std::chrono::duration<Rep, Period>& timeout) {
    std::unique_lock lock(mu_);
    if (!not_empty_.wait_for(lock, timeout,
                             [&] { return closed_ || !queue_.empty(); })) {
      return std::nullopt;
    }
    if (queue_.empty()) return std::nullopt;
    T out = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return out;
  }

  /// Remove and return the OLDEST queued item satisfying `pred`; nullopt when
  /// none matches. The priority-aware overload path uses this to make room by
  /// evicting the lowest-priority queued work first (bulk before standard,
  /// never critical) instead of blindly evicting the queue head.
  template <typename Pred>
  std::optional<T> evict_first_if(Pred&& pred) {
    std::scoped_lock lock(mu_);
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (pred(*it)) {
        T out = std::move(*it);
        queue_.erase(it);
        not_full_.notify_one();
        return out;
      }
    }
    return std::nullopt;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::scoped_lock lock(mu_);
    if (queue_.empty()) return std::nullopt;
    T out = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return out;
  }

  /// Close: producers fail fast, consumers drain remaining items.
  void close() {
    std::scoped_lock lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t size() const {
    std::scoped_lock lock(mu_);
    return queue_.size();
  }
  bool closed() const {
    std::scoped_lock lock(mu_);
    return closed_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> queue_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace hpcmon::transport
