// Topic-routed pub/sub bus (AMQP/RabbitMQ-style semantics, in process).
//
// NERSC's infrastructure "includes a message queuing system (RabbitMQ)"
// feeding Elasticsearch (Sec. IV-C); Table I requires directing "the data
// and analysis results to multiple consumers". Bus gives hpcmon that
// routing layer: publishers tag payloads with a dotted topic
// ("samples.node.c0-0", "logs.hardware"), subscribers bind glob patterns
// ("samples.*", "logs.#" -> use '*' which spans dots here).
#pragma once

#include <functional>
#include <string>
#include <variant>
#include <vector>

#include "core/log_event.hpp"
#include "core/sample.hpp"
#include "core/strings.hpp"

namespace hpcmon::transport {

/// A routed payload: numeric batch, log batch, or opaque text.
using Payload = std::variant<core::SampleBatch, std::vector<core::LogEvent>,
                             std::string>;

struct BusStats {
  std::uint64_t published = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t unrouted = 0;
};

class Bus {
 public:
  using Handler = std::function<void(const std::string& topic,
                                     const Payload& payload)>;

  /// Bind a handler to a topic glob ('*' and '?' wildcards).
  void subscribe(std::string topic_glob, Handler handler);

  /// Deliver to every matching binding, in subscription order.
  void publish(const std::string& topic, const Payload& payload);

  const BusStats& stats() const { return stats_; }

 private:
  std::vector<std::pair<std::string, Handler>> bindings_;
  BusStats stats_;
};

}  // namespace hpcmon::transport
