// Topic-routed pub/sub bus (AMQP/RabbitMQ-style semantics, in process).
//
// NERSC's infrastructure "includes a message queuing system (RabbitMQ)"
// feeding Elasticsearch (Sec. IV-C); Table I requires directing "the data
// and analysis results to multiple consumers". Bus gives hpcmon that
// routing layer: publishers tag payloads with a dotted topic
// ("samples.node.c0-0", "logs.hardware"), subscribers bind AMQP-style
// patterns: '*' matches exactly one dot-separated segment (and may appear
// inside a segment, e.g. "samples.node.c0-*"), '#' matches zero or more
// whole segments ("logs.#" matches "logs", "logs.hardware.gpu", ...).
#pragma once

#include <functional>
#include <string>
#include <variant>
#include <vector>

#include "core/log_event.hpp"
#include "core/sample.hpp"
#include "core/strings.hpp"

namespace hpcmon::transport {

/// A routed payload: numeric batch, log batch, or opaque text.
using Payload = std::variant<core::SampleBatch, std::vector<core::LogEvent>,
                             std::string>;

struct BusStats {
  std::uint64_t published = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t unrouted = 0;
};

/// AMQP-style topic match over dot-separated segments: '#' matches zero or
/// more whole segments; within a segment, '*' and '?' glob without crossing
/// dots (so a bare '*' segment matches exactly one segment). Thin alias of
/// core::topic_match (core/topic.hpp), the one matcher shared with the serve
/// tier's subscription patterns.
bool topic_match(std::string_view pattern, std::string_view topic);

class Bus {
 public:
  using Handler = std::function<void(const std::string& topic,
                                     const Payload& payload)>;

  /// Bind a handler to a topic pattern (see topic_match for the semantics).
  void subscribe(std::string topic_glob, Handler handler);

  /// Deliver to every matching binding, in subscription order.
  void publish(const std::string& topic, const Payload& payload);

  const BusStats& stats() const { return stats_; }

 private:
  std::vector<std::pair<std::string, Handler>> bindings_;
  BusStats stats_;
};

}  // namespace hpcmon::transport
