#include "transport/bus.hpp"

#include "core/topic.hpp"

namespace hpcmon::transport {

bool topic_match(std::string_view pattern, std::string_view topic) {
  // One matcher for the whole stack: Bus bindings and serve-tier
  // subscription patterns share core::topic_match's semantics exactly.
  return core::topic_match(pattern, topic);
}

void Bus::subscribe(std::string topic_glob, Handler handler) {
  bindings_.emplace_back(std::move(topic_glob), std::move(handler));
}

void Bus::publish(const std::string& topic, const Payload& payload) {
  ++stats_.published;
  bool delivered = false;
  for (const auto& [glob, handler] : bindings_) {
    if (topic_match(glob, topic)) {
      handler(topic, payload);
      ++stats_.deliveries;
      delivered = true;
    }
  }
  if (!delivered) ++stats_.unrouted;
}

}  // namespace hpcmon::transport
