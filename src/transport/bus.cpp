#include "transport/bus.hpp"

namespace hpcmon::transport {

namespace {
// Recursive segment matcher; pattern/topic segment lists are short (a topic
// has a handful of dot-separated parts), so backtracking over '#' is cheap.
bool segments_match(const std::vector<std::string_view>& pat, std::size_t pi,
                    const std::vector<std::string_view>& top, std::size_t ti) {
  if (pi == pat.size()) return ti == top.size();
  if (pat[pi] == "#") {
    // '#' consumes zero or more whole segments.
    for (std::size_t k = ti; k <= top.size(); ++k) {
      if (segments_match(pat, pi + 1, top, k)) return true;
    }
    return false;
  }
  if (ti == top.size()) return false;
  if (!core::glob_match(pat[pi], top[ti])) return false;
  return segments_match(pat, pi + 1, top, ti + 1);
}
}  // namespace

bool topic_match(std::string_view pattern, std::string_view topic) {
  return segments_match(core::split(pattern, '.'), 0, core::split(topic, '.'),
                        0);
}

void Bus::subscribe(std::string topic_glob, Handler handler) {
  bindings_.emplace_back(std::move(topic_glob), std::move(handler));
}

void Bus::publish(const std::string& topic, const Payload& payload) {
  ++stats_.published;
  bool delivered = false;
  for (const auto& [glob, handler] : bindings_) {
    if (topic_match(glob, topic)) {
      handler(topic, payload);
      ++stats_.deliveries;
      delivered = true;
    }
  }
  if (!delivered) ++stats_.unrouted;
}

}  // namespace hpcmon::transport
