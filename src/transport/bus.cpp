#include "transport/bus.hpp"

namespace hpcmon::transport {

void Bus::subscribe(std::string topic_glob, Handler handler) {
  bindings_.emplace_back(std::move(topic_glob), std::move(handler));
}

void Bus::publish(const std::string& topic, const Payload& payload) {
  ++stats_.published;
  bool delivered = false;
  for (const auto& [glob, handler] : bindings_) {
    if (core::glob_match(glob, topic)) {
      handler(topic, payload);
      ++stats_.deliveries;
      delivered = true;
    }
  }
  if (!delivered) ++stats_.unrouted;
}

}  // namespace hpcmon::transport
