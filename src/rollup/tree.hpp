// RollupTree: incremental hierarchical aggregation up the machine topology.
//
// The paper's headline products — Fig 3's per-cabinet power and Fig 1's
// system-wide utilization — are reductions over the node→blade→chassis→
// cabinet→system containment tree, yet every fleet-wide read used to
// scatter-gather tens of thousands of raw per-node series. The
// Hierarchical-monitors design (monitors chained up the topology, each
// reducing its children with a pluggable stat) points at the fix: maintain
// the reduction *incrementally at ingest*, so a topology-level read is
// O(depth), not O(nodes).
//
// Design (three planes of concurrency):
//   * HOT PATH — observe(shard, samples) folds each sample into a per-shard
//     pending-latest cell (one compare + store per sample, one per-shard
//     mutex, no cross-shard lock). The cells are double-buffered: the tick
//     flips each shard's write epoch in O(1) under the shard lock and
//     drains the retired buffer without it, so ingest never waits on the
//     merge. Rejected out-of-order appends are harmless by construction:
//     the store keeps per-series times strictly increasing, so the max-time
//     sample of a window IS the store's latest whenever any sample was
//     accepted, and the merge discards pending values older than the
//     level's applied last_time.
//   * COALESCING TICK — tick() drains the retired shard buffers, applies
//     them to the leaf slots of each metric plane, and recomputes the dirty
//     ancestor chains bottom-up from their children (totals are re-folded
//     fresh, so float sums are reproducible regardless of update history —
//     the property tests assert bitwise equality against scatter-gather).
//   * READS — a changing tick bumps the published version; the immutable
//     RollupSnapshot itself materializes lazily at the next snapshot()
//     call (at most once per version), so sampling sweeps never pay for
//     views nobody reads. Steady-state reads are a lock-free atomic
//     shared_ptr load, and a snapshot stays valid for as long as the
//     reader holds it.
//
// Topology comes from the collector's component registry: the first sample
// of a series interns its component's whole parent chain
// (core::MetricRegistry containment), so anything with a parent — nodes,
// GPUs, routers, OSTs — rolls up without per-machine configuration.
//
// Membership follows retention: forget_series() (wired to the store's
// series-gone listener) retracts a fully-evicted series so its ancestors
// never serve stale last/min/max from deleted data.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/ids.hpp"
#include "core/registry.hpp"
#include "core/sample.hpp"
#include "core/time.hpp"
#include "obs/registry.hpp"
#include "rollup/reducer.hpp"
#include "store/summary.hpp"

namespace hpcmon::rollup {

struct RollupConfig {
  /// Number of independent delta domains; observe()'s shard index must be
  /// < shards. Matched to ShardedTimeSeriesStore::shard_count() when
  /// attached there; 1 for the synchronous store path.
  std::size_t shards = 1;
};

/// One immutable point-in-time view of every (metric, component) level.
/// Reads are plain lookups — no locks, no store queries.
class RollupSnapshot {
 public:
  /// The level's accumulator, or nullptr when the (metric, component) pair
  /// has never been touched. An interned-but-currently-empty level returns
  /// a stat with count == 0.
  const RollupStat* find(core::ComponentId comp, std::string_view metric) const;

  /// Reduce a level with the store/wire Agg enum; nullopt when absent/empty.
  std::optional<double> aggregate(core::ComponentId comp,
                                  std::string_view metric,
                                  store::Agg agg) const {
    const auto* s = find(comp, metric);
    return s ? reduce(*s, agg) : std::nullopt;
  }

  /// Reduce a level with any type satisfying the Reducer concept.
  template <Reducer R>
  std::optional<double> read(core::ComponentId comp,
                             std::string_view metric) const {
    const auto* s = find(comp, metric);
    if (s == nullptr || s->empty()) return std::nullopt;
    return R::reduce(*s);
  }

  /// Tick sequence number that published this snapshot (0 = pre-first-tick).
  std::uint64_t version() const { return version_; }
  /// Total (metric, component) levels materialized.
  std::size_t entry_count() const;
  /// Metric families with a plane in this snapshot.
  std::vector<std::string> metrics() const;
  /// Visit every (metric, component, stat) level — fleet tables, tests.
  void for_each(const std::function<void(std::string_view, core::ComponentId,
                                         const RollupStat&)>& fn) const;

 private:
  friend class RollupTree;

  struct Plane {
    std::string metric;
    // Shared with the tree's interning cache: rebuilt only when a new
    // component interns, so the per-tick publish copies stats, not maps.
    std::shared_ptr<const std::vector<std::uint32_t>> slot_of_comp;
    std::shared_ptr<const std::vector<core::ComponentId>> comp_of_slot;
    std::vector<RollupStat> total;
  };

  std::vector<Plane> planes_;
  // Keys view into planes_[i].metric; built only once planes_ is final.
  std::unordered_map<std::string_view, std::uint32_t> plane_by_metric_;
  std::uint64_t version_ = 0;
};

/// One level whose stat changed at the last tick — the serve tier fans these
/// out to kRollupSub subscribers.
struct RollupUpdate {
  core::ComponentId component = core::kNoComponent;
  std::string metric;
  RollupStat stat;
};

struct RollupTickStats {
  std::size_t leaf_updates = 0;  // pending cells applied to leaves
  std::size_t forgotten = 0;     // series retracted (eviction/churn)
  std::size_t recomputed = 0;    // tree nodes re-folded
  std::size_t changed = 0;       // nodes whose stat actually moved
};

class RollupTree {
 public:
  explicit RollupTree(const core::MetricRegistry& registry,
                      RollupConfig config = {});

  RollupTree(const RollupTree&) = delete;
  RollupTree& operator=(const RollupTree&) = delete;

  std::size_t shard_count() const { return shards_.size(); }

  /// Hot path: fold samples into shard `shard`'s pending-latest cells.
  /// Thread-safe; concurrent callers on distinct shards never contend.
  void observe(std::size_t shard, std::span<const core::Sample> samples);
  void observe(std::size_t shard, const core::Sample& s) {
    observe(shard, std::span<const core::Sample>(&s, 1));
  }

  /// Membership: retract a series that no longer holds data (evicted by
  /// retention, or a node that left the fleet). Takes effect at the next
  /// tick; any pending update for the series is discarded immediately.
  void forget_series(core::SeriesId id);

  /// Coalescing merge: drain shard deltas, re-fold dirty levels, bump the
  /// published version (the snapshot itself materializes at the next
  /// snapshot() call). When `changed` is non-null it receives every level
  /// whose stat moved (for subscription fan-out).
  RollupTickStats tick(std::vector<RollupUpdate>* changed = nullptr);

  /// Read the current published view (empty before the first tick). The
  /// first read after a changing tick materializes the view under the tree
  /// lock; every later read is a lock-free atomic load. The snapshot is
  /// immutable; hold it as long as needed.
  std::shared_ptr<const RollupSnapshot> snapshot() const;

  /// Catalog the rollup.* instruments in `registry`.
  void attach_to(obs::ObsRegistry& registry) const;

 private:
  static constexpr std::uint32_t kUnresolved = 0;  // route states
  static constexpr std::uint32_t kIgnored = 1;
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;
  static constexpr core::TimePoint kNoTime = RollupStat::kNoTime;

  struct Node {
    std::uint32_t parent = kNoSlot;
    std::uint32_t depth = 0;
    core::ComponentId comp = core::kNoComponent;
    std::vector<std::uint32_t> children;  // sorted by raw ComponentId
    bool dirty = false;
  };

  struct Plane {
    std::string metric;
    std::vector<std::uint32_t> slot_of_comp;  // raw ComponentId -> slot+1
    std::vector<Node> nodes;
    // Level stats live in slot-indexed arrays parallel to `nodes`, split
    // out of Node so the apply/fold/publish loops stream dense 48-byte
    // stats instead of striding across the cold topology fields.
    std::vector<RollupStat> self;   // own series' latest value (count <= 1)
    std::vector<RollupStat> total;  // self folded with every child's total
    // Slots awaiting re-fold, bucketed by depth so the deepest-first walk
    // is a linear scan instead of a per-tick sort (capacity is recycled).
    std::vector<std::vector<std::uint32_t>> dirty_by_depth;
    std::size_t dirty_count = 0;
    // Lazily rebuilt snapshot views of the interning maps; invalidated by
    // intern_comp, shared by every snapshot published since the last growth.
    std::shared_ptr<const std::vector<std::uint32_t>> snap_slot_of_comp;
    std::shared_ptr<const std::vector<core::ComponentId>> snap_comp_of_slot;
  };

  /// A cell is one (plane, leaf slot) fed by exactly one series.
  struct Cell {
    std::uint32_t plane = 0;
    std::uint32_t slot = 0;
  };

  struct Pending {
    core::TimePoint t = kNoTime;  // kNoTime = empty cell
    double v = 0.0;
  };

  struct Shard {
    std::mutex mu;
    std::vector<std::uint32_t> route;  // raw SeriesId -> state or cell+2
    // Double-buffered pending windows: writers fill pending[epoch] /
    // dirty[epoch]; tick() flips the epoch in O(1) under `mu` and reads
    // the retired buffer with no lock held (writers can't touch it, and
    // the flip's lock hand-off orders their prior writes before the
    // drain). The drain resets the retired cells before the next flip
    // makes them the write target again.
    std::uint8_t epoch = 0;
    std::array<std::vector<Pending>, 2> pending;      // indexed by cell
    std::array<std::vector<std::uint32_t>, 2> dirty;  // cells filled
  };

  /// Intern the series' (metric plane, component chain) under mu_ and hand
  /// back its route value. Lock order is ALWAYS shard.mu -> mu_.
  std::uint32_t resolve_route(core::SeriesId id);
  std::uint32_t intern_plane(std::uint32_t metric_index);
  std::uint32_t intern_comp(std::uint32_t plane_idx, core::ComponentId comp);
  void mark_dirty_up(Plane& plane, std::uint32_t slot);
  /// Materialize planes_ into a fresh snapshot and store it (mu_ held).
  void publish_locked() const;

  const core::MetricRegistry& registry_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::mutex tick_mu_;     // serializes ticks (epoch flips must not overlap)
  mutable std::mutex mu_;  // planes/cells/forgotten; never held across shard.mu
  // mutable: snapshot() materializes the lazily-published view (the
  // snap_* map caches and snap_ itself) under mu_ from const reads.
  mutable std::vector<Plane> planes_;
  std::unordered_map<std::uint32_t, std::uint32_t> plane_by_metric_;
  std::vector<Cell> cells_;
  std::unordered_map<std::uint32_t, std::uint32_t> cell_of_series_;
  std::vector<std::uint32_t> forgotten_;  // cells queued by forget_series
  std::uint64_t version_ = 0;
  std::size_t total_levels_ = 0;  // sum of plane.nodes sizes (entries gauge)

  mutable std::atomic<std::shared_ptr<const RollupSnapshot>> snap_;
  // True when version_ moved past snap_'s version; cleared by the reader
  // that materializes the fresh view.
  mutable std::atomic<bool> snap_stale_{false};

  // rollup.* instruments (attached to any registry via attach_to).
  obs::Counter updates_;
  obs::Counter ticks_;
  obs::Counter recomputes_;
  obs::Counter forgets_;
  mutable obs::Counter reads_;
  obs::Gauge entries_;
  obs::Histogram tick_us_;
};

}  // namespace hpcmon::rollup
