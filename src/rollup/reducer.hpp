// The rollup plane's accumulator and its pluggable reducer concept.
//
// Every level of the RollupTree keeps ONE canonical accumulator per metric —
// running count/sum/min/max/last over the latest values of the member series
// below it. A *reducer* is any type that turns that accumulator into a
// scalar; the built-ins (sum, mean, min, max, last, count) cover the wire's
// store::Agg enum, and callers add their own by satisfying the Reducer
// concept (the Hierarchical-monitors stat-plugin idea as a C++20 concept —
// e.g. a spread reducer `max - min` needs no tree changes, see
// rollup_tree_test).
//
// Consistency contract (what the accumulator means): the rollup plane
// answers "the fleet, now". Each member series contributes exactly its
// latest hot-store value, so
//   count = live member series below this level,
//   sum   = sum of their latest values (mean = sum/count),
//   min   = coldest member's latest value, max = hottest member's,
//   last  = the most recently updated member's value.
// Temporal windows stay with the query engine; the tree is the O(depth)
// answer to the paper's Fig 1/Fig 3 "per-cabinet / whole-system right now"
// reads.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <limits>
#include <optional>

#include "core/time.hpp"
#include "store/summary.hpp"

namespace hpcmon::rollup {

struct RollupStat {
  /// Sentinel for "no member has ever reported".
  static constexpr core::TimePoint kNoTime =
      std::numeric_limits<core::TimePoint>::min();

  std::uint64_t count = 0;  // live member series contributing
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double last = 0.0;
  core::TimePoint last_time = kNoTime;

  bool empty() const { return count == 0; }

  friend bool operator==(const RollupStat&, const RollupStat&) = default;

  /// Leaf stat: one series whose latest value is (t, v).
  static RollupStat of_value(core::TimePoint t, double v) {
    RollupStat s;
    s.count = 1;
    s.sum = s.min = s.max = s.last = v;
    s.last_time = t;
    return s;
  }

  /// Fold a member subtree's stat into this one. Empty members are inert;
  /// `last` takes the member's when strictly newer, so ties keep the
  /// earlier-folded member — fold order (self, then children by ascending
  /// ComponentId) is part of the contract and what the bitwise
  /// scatter-gather equality tests reproduce.
  void fold(const RollupStat& m) {
    if (m.count == 0) return;
    if (count == 0) {
      min = m.min;
      max = m.max;
    } else {
      min = std::min(min, m.min);
      max = std::max(max, m.max);
    }
    count += m.count;
    sum += m.sum;
    if (m.last_time > last_time) {
      last = m.last;
      last_time = m.last_time;
    }
  }
};

/// A reducer turns the canonical accumulator into one scalar. Any pure
/// function of the five running moments qualifies.
template <typename R>
concept Reducer = requires(const RollupStat& s) {
  { R::reduce(s) } -> std::convertible_to<double>;
};

struct SumReducer {
  static double reduce(const RollupStat& s) { return s.sum; }
};
struct MeanReducer {
  static double reduce(const RollupStat& s) {
    return s.sum / static_cast<double>(s.count);
  }
};
struct MinReducer {
  static double reduce(const RollupStat& s) { return s.min; }
};
struct MaxReducer {
  static double reduce(const RollupStat& s) { return s.max; }
};
struct LastReducer {
  static double reduce(const RollupStat& s) { return s.last; }
};
struct CountReducer {
  static double reduce(const RollupStat& s) {
    return static_cast<double>(s.count);
  }
};

static_assert(Reducer<SumReducer> && Reducer<MeanReducer> &&
              Reducer<MinReducer> && Reducer<MaxReducer> &&
              Reducer<LastReducer> && Reducer<CountReducer>);

/// Runtime dispatch for the store/wire Agg enum; nullopt on an empty level.
inline std::optional<double> reduce(const RollupStat& s, store::Agg agg) {
  if (s.count == 0) return std::nullopt;
  switch (agg) {
    case store::Agg::kSum:
      return SumReducer::reduce(s);
    case store::Agg::kMean:
      return MeanReducer::reduce(s);
    case store::Agg::kMin:
      return MinReducer::reduce(s);
    case store::Agg::kMax:
      return MaxReducer::reduce(s);
    case store::Agg::kCount:
      return CountReducer::reduce(s);
    case store::Agg::kLast:
      return LastReducer::reduce(s);
  }
  return std::nullopt;
}

}  // namespace hpcmon::rollup
