#include "rollup/tree.hpp"

#include <algorithm>
#include <chrono>

namespace hpcmon::rollup {

// -- RollupSnapshot -----------------------------------------------------------

const RollupStat* RollupSnapshot::find(core::ComponentId comp,
                                       std::string_view metric) const {
  const auto it = plane_by_metric_.find(metric);
  if (it == plane_by_metric_.end()) return nullptr;
  const Plane& plane = planes_[it->second];
  const auto raw = core::raw(comp);
  if (raw >= plane.slot_of_comp->size()) return nullptr;
  const auto slot = (*plane.slot_of_comp)[raw];
  if (slot == 0) return nullptr;
  return &plane.total[slot - 1];
}

std::size_t RollupSnapshot::entry_count() const {
  std::size_t n = 0;
  for (const auto& p : planes_) n += p.total.size();
  return n;
}

std::vector<std::string> RollupSnapshot::metrics() const {
  std::vector<std::string> out;
  out.reserve(planes_.size());
  for (const auto& p : planes_) out.push_back(p.metric);
  return out;
}

void RollupSnapshot::for_each(
    const std::function<void(std::string_view, core::ComponentId,
                             const RollupStat&)>& fn) const {
  for (const auto& p : planes_) {
    for (std::size_t i = 0; i < p.total.size(); ++i) {
      fn(p.metric, (*p.comp_of_slot)[i], p.total[i]);
    }
  }
}

// -- RollupTree ---------------------------------------------------------------

RollupTree::RollupTree(const core::MetricRegistry& registry,
                       RollupConfig config)
    : registry_(registry) {
  const auto shards = std::max<std::size_t>(1, config.shards);
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  // snapshot() must never return null: start from an empty version-0 view.
  snap_.store(std::make_shared<const RollupSnapshot>(),
              std::memory_order_release);
}

void RollupTree::observe(std::size_t shard,
                         std::span<const core::Sample> samples) {
  if (samples.empty()) return;
  Shard& sh = *shards_[shard % shards_.size()];
  std::scoped_lock lock(sh.mu);
  auto& pending = sh.pending[sh.epoch];
  auto& dirty = sh.dirty[sh.epoch];
  for (const auto& s : samples) {
    if (s.time == kNoTime) continue;  // the sentinel can't be represented
    const auto raw = core::raw(s.series);
    if (raw >= sh.route.size()) sh.route.resize(raw + 1, kUnresolved);
    std::uint32_t r = sh.route[raw];
    if (r == kUnresolved) r = sh.route[raw] = resolve_route(s.series);
    if (r == kIgnored) continue;
    const std::uint32_t cell = r - 2;
    if (cell >= pending.size()) pending.resize(cell + 1);
    Pending& p = pending[cell];
    if (p.t == kNoTime) {
      p.t = s.time;
      p.v = s.value;
      dirty.push_back(cell);
    } else if (s.time > p.t) {
      // Strictly-greater: on an equal-time tie the first value wins, which
      // is exactly the store's duplicate-timestamp rejection.
      p.t = s.time;
      p.v = s.value;
    }
  }
}

std::uint32_t RollupTree::resolve_route(core::SeriesId id) {
  std::scoped_lock lock(mu_);
  const auto raw = core::raw(id);
  if (const auto it = cell_of_series_.find(raw); it != cell_of_series_.end()) {
    return it->second + 2;
  }
  if (raw >= registry_.series_count()) return kIgnored;  // not interned
  const auto comp = registry_.series_component(id);
  if (comp == core::kNoComponent) return kIgnored;
  const auto plane_idx = intern_plane(registry_.series_metric(id));
  const auto slot = intern_comp(plane_idx, comp);
  const auto cell = static_cast<std::uint32_t>(cells_.size());
  cells_.push_back({plane_idx, slot});
  cell_of_series_.emplace(raw, cell);
  return cell + 2;
}

std::uint32_t RollupTree::intern_plane(std::uint32_t metric_index) {
  if (const auto it = plane_by_metric_.find(metric_index);
      it != plane_by_metric_.end()) {
    return it->second;
  }
  const auto idx = static_cast<std::uint32_t>(planes_.size());
  Plane plane;
  plane.metric = registry_.metric(metric_index).name;
  planes_.push_back(std::move(plane));
  plane_by_metric_.emplace(metric_index, idx);
  return idx;
}

std::uint32_t RollupTree::intern_comp(std::uint32_t plane_idx,
                                      core::ComponentId comp) {
  const auto raw = core::raw(comp);
  {
    const Plane& plane = planes_[plane_idx];
    if (raw < plane.slot_of_comp.size() && plane.slot_of_comp[raw] != 0) {
      return plane.slot_of_comp[raw] - 1;
    }
  }
  const auto& info = registry_.component(comp);
  // Recurse first: the parent chain must exist before this node links in
  // (and the recursion may reallocate plane.nodes).
  std::uint32_t parent_slot = kNoSlot;
  if (info.parent != core::kNoComponent) {
    parent_slot = intern_comp(plane_idx, info.parent);
  }
  Plane& plane = planes_[plane_idx];
  const auto slot = static_cast<std::uint32_t>(plane.nodes.size());
  Node node;
  node.comp = comp;
  node.parent = parent_slot;
  node.depth = parent_slot == kNoSlot ? 0 : plane.nodes[parent_slot].depth + 1;
  plane.nodes.push_back(std::move(node));
  plane.self.emplace_back();
  plane.total.emplace_back();
  ++total_levels_;
  if (raw >= plane.slot_of_comp.size()) plane.slot_of_comp.resize(raw + 1, 0);
  plane.slot_of_comp[raw] = slot + 1;
  // The shared snapshot views of the maps are stale now; the next publish
  // rebuilds them once.
  plane.snap_slot_of_comp = nullptr;
  plane.snap_comp_of_slot = nullptr;
  if (parent_slot != kNoSlot) {
    // Children stay sorted by raw ComponentId: fold order is deterministic,
    // so scatter-gather references can reproduce sums bit for bit.
    auto& kids = plane.nodes[parent_slot].children;
    const auto pos = std::upper_bound(
        kids.begin(), kids.end(), raw, [&](std::uint32_t r, std::uint32_t b) {
          return r < core::raw(plane.nodes[b].comp);
        });
    kids.insert(pos, slot);
  }
  return slot;
}

void RollupTree::forget_series(core::SeriesId id) {
  const auto raw = core::raw(id);
  // Discard any pending update first, shard locks only (lock order is
  // shard.mu -> mu_, so mu_ is NOT held here). Only the current write
  // epoch is cleared — the retired buffer belongs to a tick mid-drain, and
  // an update racing a drain may apply in either order, same as before
  // double-buffering. A later append re-fills the cell and legitimately
  // resurrects the series.
  for (const auto& shp : shards_) {
    Shard& sh = *shp;
    std::scoped_lock lock(sh.mu);
    if (raw >= sh.route.size()) continue;
    const auto r = sh.route[raw];
    if (r == kUnresolved || r == kIgnored) continue;
    const auto cell = r - 2;
    auto& pending = sh.pending[sh.epoch];
    if (cell < pending.size()) pending[cell].t = kNoTime;
  }
  std::scoped_lock lock(mu_);
  if (const auto it = cell_of_series_.find(raw); it != cell_of_series_.end()) {
    forgotten_.push_back(it->second);
    forgets_.add();
  }
}

void RollupTree::mark_dirty_up(Plane& plane, std::uint32_t slot) {
  for (auto s = slot; s != kNoSlot; s = plane.nodes[s].parent) {
    Node& n = plane.nodes[s];
    if (n.dirty) break;  // its whole ancestor chain is already marked
    n.dirty = true;
    if (n.depth >= plane.dirty_by_depth.size()) {
      plane.dirty_by_depth.resize(n.depth + 1);
    }
    plane.dirty_by_depth[n.depth].push_back(s);
    ++plane.dirty_count;
  }
}

RollupTickStats RollupTree::tick(std::vector<RollupUpdate>* changed) {
  const auto t0 = std::chrono::steady_clock::now();
  RollupTickStats out;
  // Ticks must not overlap: a second flip would hand writers a retired
  // buffer this tick is still draining.
  std::scoped_lock tick_lock(tick_mu_);

  // Phase 1: retire every shard's write buffer — an O(1) epoch flip under
  // the shard lock. Writers carry on in the fresh buffer; the retired one
  // is exclusively ours to read lock-free in phase 2b (the flip's lock
  // hand-off orders their prior writes before our reads).
  std::vector<std::uint8_t> retired(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& sh = *shards_[i];
    std::scoped_lock lock(sh.mu);
    retired[i] = sh.epoch;
    sh.epoch ^= 1;
  }

  std::scoped_lock lock(mu_);

  // Phase 2a: retractions first. A forget already cleared its pending cell
  // in the write epoch, so any retired update for that cell raced the
  // forget and may apply in either order (same contract as before
  // double-buffering; single-threaded forget-then-tick always retracts).
  for (const auto cell : forgotten_) {
    const Cell& c = cells_[cell];
    Plane& plane = planes_[c.plane];
    if (!plane.self[c.slot].empty()) {
      plane.self[c.slot] = RollupStat{};
      // The retracted leaf's last_time resets too, so a later re-append at
      // any newer-than-kNoTime time re-admits the series.
      mark_dirty_up(plane, c.slot);
      ++out.forgotten;
    }
  }
  forgotten_.clear();

  // Phase 2b: apply the retired pending values to the leaves straight from
  // the shard buffers (no copy), resetting each cell so the buffer is
  // clean before the next flip makes it the write target again. The
  // strictly-newer guard drops stale windows (all-rejected appends older
  // than the applied latest).
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& sh = *shards_[i];
    auto& pending = sh.pending[retired[i]];
    auto& dirty = sh.dirty[retired[i]];
    for (const auto cell : dirty) {
      Pending& p = pending[cell];
      if (p.t == kNoTime) continue;  // cleared by forget, or duplicate entry
      const Cell& c = cells_[cell];
      Plane& plane = planes_[c.plane];
      if (p.t > plane.self[c.slot].last_time) {
        plane.self[c.slot] = RollupStat::of_value(p.t, p.v);
        mark_dirty_up(plane, c.slot);
        ++out.leaf_updates;
      }
      p.t = kNoTime;
    }
    dirty.clear();
  }
  updates_.add(out.leaf_updates);

  // Phase 3: re-fold dirty nodes deepest-first — the depth buckets make the
  // walk linear; every dirty node's dirty descendants are strictly deeper,
  // so children are final when folded.
  for (Plane& plane : planes_) {
    if (plane.dirty_count == 0) continue;
    for (auto bucket = plane.dirty_by_depth.rbegin();
         bucket != plane.dirty_by_depth.rend(); ++bucket) {
      for (const auto slot : *bucket) {
        Node& node = plane.nodes[slot];
        node.dirty = false;
        RollupStat total = plane.self[slot];
        for (const auto child : node.children) {
          total.fold(plane.total[child]);
        }
        ++out.recomputed;
        if (total == plane.total[slot]) continue;
        plane.total[slot] = total;
        ++out.changed;
        if (changed != nullptr) {
          changed->push_back({node.comp, plane.metric, total});
        }
      }
      bucket->clear();
    }
    plane.dirty_count = 0;
  }
  recomputes_.add(out.recomputed);

  // Phase 4: version the result; materialization is deferred to the next
  // snapshot() call so sweeps don't build views nobody reads. (Version 0
  // always publishes so readers see interned planes even before data.)
  if (out.changed != 0 || out.forgotten != 0 || version_ == 0) {
    ++version_;
    snap_stale_.store(true, std::memory_order_release);
  }
  entries_.set(static_cast<double>(total_levels_));

  ticks_.add();
  tick_us_.record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count()));
  return out;
}

void RollupTree::publish_locked() const {
  auto snap = std::make_shared<RollupSnapshot>();
  snap->version_ = version_;
  snap->planes_.reserve(planes_.size());
  for (Plane& plane : planes_) {
    // The interning maps only change when a new component joins; share one
    // immutable copy across every snapshot until the next growth so the
    // per-version publish copies stats, not maps.
    if (plane.snap_slot_of_comp == nullptr) {
      plane.snap_slot_of_comp =
          std::make_shared<const std::vector<std::uint32_t>>(
              plane.slot_of_comp);
      std::vector<core::ComponentId> comps;
      comps.reserve(plane.nodes.size());
      for (const Node& n : plane.nodes) comps.push_back(n.comp);
      plane.snap_comp_of_slot =
          std::make_shared<const std::vector<core::ComponentId>>(
              std::move(comps));
    }
    RollupSnapshot::Plane sp;
    sp.metric = plane.metric;
    sp.slot_of_comp = plane.snap_slot_of_comp;
    sp.comp_of_slot = plane.snap_comp_of_slot;
    sp.total = plane.total;
    snap->planes_.push_back(std::move(sp));
  }
  // Keys view into the final planes_ strings — built only now, after the
  // vector stopped reallocating.
  for (std::uint32_t i = 0; i < snap->planes_.size(); ++i) {
    snap->plane_by_metric_.emplace(snap->planes_[i].metric, i);
  }
  snap_.store(std::move(snap), std::memory_order_release);
}

std::shared_ptr<const RollupSnapshot> RollupTree::snapshot() const {
  reads_.add();
  if (snap_stale_.load(std::memory_order_acquire)) {
    std::scoped_lock lock(mu_);
    // Double-checked: a racing reader may have materialized this version
    // already (mu_ also orders us after the tick that set the flag).
    if (snap_stale_.load(std::memory_order_relaxed)) {
      publish_locked();
      snap_stale_.store(false, std::memory_order_release);
    }
  }
  return snap_.load(std::memory_order_acquire);
}

void RollupTree::attach_to(obs::ObsRegistry& registry) const {
  registry.attach({"rollup.updates", "updates",
                   "Leaf latest-value updates applied at coalescing ticks"},
                  &updates_);
  registry.attach({"rollup.ticks", "ticks", "Coalescing merge ticks run"},
                  &ticks_);
  registry.attach({"rollup.recomputes", "nodes",
                   "Tree levels re-folded from their children at ticks"},
                  &recomputes_);
  registry.attach({"rollup.forgotten", "series",
                   "Series retracted from the tree (eviction / node churn)"},
                  &forgets_);
  registry.attach({"rollup.reads", "snapshots",
                   "Lock-free snapshot acquisitions by read paths"},
                  &reads_);
  registry.attach({"rollup.entries", "levels",
                   "Materialized (metric, component) levels in the tree"},
                  &entries_);
  registry.attach({"rollup.tick_us", "us", "Coalescing tick duration"},
                  &tick_us_);
}

}  // namespace hpcmon::rollup
