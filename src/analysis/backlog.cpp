#include "analysis/backlog.hpp"

#include <cmath>

namespace hpcmon::analysis {

std::string_view to_string(BacklogSignal signal) {
  switch (signal) {
    case BacklogSignal::kNormal: return "normal";
    case BacklogSignal::kRapidDrain: return "rapid_drain";
    case BacklogSignal::kRapidFill: return "rapid_fill";
  }
  return "?";
}

std::vector<BacklogEvent> detect_backlog_events(
    const std::vector<core::TimedValue>& depth_series,
    const BacklogParams& params) {
  std::vector<BacklogEvent> out;
  const std::size_t w = params.window;
  if (depth_series.size() < w + 1) return out;
  BacklogSignal current = BacklogSignal::kNormal;
  for (std::size_t i = w; i < depth_series.size(); ++i) {
    const auto& newer = depth_series[i];
    const auto& older = depth_series[i - w];
    const double minutes =
        core::to_seconds(newer.time - older.time) / 60.0;
    if (minutes <= 0.0) continue;
    const double rate = (newer.value - older.value) / minutes;
    BacklogSignal signal = BacklogSignal::kNormal;
    if (rate >= params.rate_threshold) {
      signal = BacklogSignal::kRapidFill;
    } else if (rate <= -params.rate_threshold) {
      signal = BacklogSignal::kRapidDrain;
    }
    if (signal != current) {
      current = signal;
      if (signal != BacklogSignal::kNormal) {
        out.push_back({newer.time, signal, rate, newer.value});
      }
    }
  }
  return out;
}

double estimate_wait_seconds(double queue_depth, double mean_runtime_s,
                             double running_jobs) {
  if (running_jobs <= 0.0) return queue_depth > 0 ? 1e18 : 0.0;
  return queue_depth * mean_runtime_s / running_jobs;
}

}  // namespace hpcmon::analysis
