#include "analysis/congestion.hpp"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace hpcmon::analysis {

std::string_view to_string(CongestionLevel level) {
  switch (level) {
    case CongestionLevel::kNone: return "none";
    case CongestionLevel::kLow: return "low";
    case CongestionLevel::kMedium: return "medium";
    case CongestionLevel::kHigh: return "high";
  }
  return "?";
}

CongestionReport analyze_congestion(const sim::Topology& topo,
                                    const std::vector<double>& stall_rates,
                                    const CongestionParams& params) {
  CongestionReport report;
  const int n_links = topo.num_links();
  if (static_cast<int>(stall_rates.size()) != n_links || n_links == 0) {
    return report;
  }

  std::vector<int> congested;
  for (int l = 0; l < n_links; ++l) {
    report.max_stall = std::max(report.max_stall, stall_rates[l]);
    if (stall_rates[l] >= params.link_stall_threshold) congested.push_back(l);
  }
  report.congested_link_fraction =
      static_cast<double>(congested.size()) / static_cast<double>(n_links);

  if (report.congested_link_fraction >= params.high_fraction) {
    report.level = CongestionLevel::kHigh;
  } else if (report.congested_link_fraction >= params.medium_fraction) {
    report.level = CongestionLevel::kMedium;
  } else if (report.congested_link_fraction >= params.low_fraction ||
             !congested.empty()) {
    report.level = CongestionLevel::kLow;
  }
  // A localized but severe hotspot matters even on fabrics with very high
  // link counts (dragonfly all-to-all groups dilute the fraction): grade it
  // after regions are extracted below.

  // Regions: connected components of congested links, where two links are
  // connected when they share a router.
  std::unordered_set<int> remaining(congested.begin(), congested.end());
  while (!remaining.empty()) {
    CongestionRegion region;
    std::deque<int> frontier{*remaining.begin()};
    remaining.erase(remaining.begin());
    std::unordered_set<int> region_routers;
    while (!frontier.empty()) {
      const int l = frontier.front();
      frontier.pop_front();
      region.links.push_back(l);
      region.peak_stall = std::max(region.peak_stall, stall_rates[l]);
      region.mean_stall += stall_rates[l];
      for (const int r : {topo.link(l).src_router, topo.link(l).dst_router}) {
        if (!region_routers.insert(r).second) continue;
        // Any congested link touching this router joins the region.
        for (auto it = remaining.begin(); it != remaining.end();) {
          const auto& li = topo.link(*it);
          if (li.src_router == r || li.dst_router == r) {
            frontier.push_back(*it);
            it = remaining.erase(it);
          } else {
            ++it;
          }
        }
      }
    }
    region.mean_stall /= static_cast<double>(region.links.size());
    region.routers.assign(region_routers.begin(), region_routers.end());
    std::sort(region.routers.begin(), region.routers.end());
    std::sort(region.links.begin(), region.links.end());
    report.regions.push_back(std::move(region));
  }
  std::sort(report.regions.begin(), report.regions.end(),
            [](const CongestionRegion& a, const CongestionRegion& b) {
              return a.links.size() > b.links.size();
            });
  for (const auto& region : report.regions) {
    if (region.links.size() >= 8 && region.mean_stall >= 0.5 &&
        report.level < CongestionLevel::kHigh) {
      report.level = CongestionLevel::kHigh;
    } else if (region.links.size() >= 3 && region.mean_stall >= 0.5 &&
               report.level < CongestionLevel::kMedium) {
      report.level = CongestionLevel::kMedium;
    }
  }
  return report;
}

}  // namespace hpcmon::analysis
