// Cross-component event association with clock-skew tolerance.
//
// Sec. III-A: "Associating numerical or log events over components and time
// is particularly tricky when a single global timestamp is unavailable as
// local clock drift can result in erroneous associations." Correlator
// matches events from two streams within a configurable tolerance window;
// bench/ablation_clockdrift sweeps injected drift and shows exact-timestamp
// matching collapsing while windowed matching holds.
//
// ConcurrentConditionFinder answers Table I's "concurrent conditions on
// disparate components should be able to be identified": given per-component
// anomaly intervals, report the component sets simultaneously unhealthy.
#pragma once

#include <string>
#include <vector>

#include "core/ids.hpp"
#include "core/time.hpp"

namespace hpcmon::analysis {

/// A timestamped occurrence on a component (anomaly, log hit, ...).
struct Occurrence {
  core::TimePoint time = 0;
  core::ComponentId component = core::kNoComponent;
};

struct MatchResult {
  std::size_t matched = 0;     // pairs associated
  std::size_t unmatched_a = 0;
  std::size_t unmatched_b = 0;
  /// Fraction of A-occurrences that found a partner.
  double recall_a() const {
    const auto total = matched + unmatched_a;
    return total == 0 ? 0.0 : static_cast<double>(matched) /
                                  static_cast<double>(total);
  }
};

/// Greedily associate occurrences of stream A with nearest-in-time
/// occurrences of stream B within +/- tolerance. Both inputs must be
/// time-sorted. Each B occurrence is consumed at most once.
MatchResult associate(const std::vector<Occurrence>& a,
                      const std::vector<Occurrence>& b,
                      core::Duration tolerance);

/// A component's unhealthy interval.
struct ConditionInterval {
  core::ComponentId component = core::kNoComponent;
  core::TimeRange range;
  std::string label;
};

/// A moment where >= min_components intervals overlap.
struct ConcurrentCondition {
  core::TimeRange overlap;
  std::vector<core::ComponentId> components;
  std::vector<std::string> labels;
};

/// Find all maximal overlap groups with at least `min_components` distinct
/// components simultaneously in condition.
std::vector<ConcurrentCondition> find_concurrent(
    std::vector<ConditionInterval> intervals, std::size_t min_components = 2);

}  // namespace hpcmon::analysis
