// Trend analysis: windowed linear regression and threshold-crossing
// forecasts.
//
// ALCF (Sec. II.8) "performs trend analysis ... on component error rates
// (e.g., High Speed Network (HSN) link Bit Error Rates)" to "flag and
// diagnose unusual behaviors on component and subsystem levels".
// TrendAnalyzer fits y = a + b*t over a trailing window and reports slope
// (per hour), fit quality, and — given a limit — the forecast crossing time.
#pragma once

#include <deque>
#include <optional>

#include "core/series_buffer.hpp"
#include "core/time.hpp"

namespace hpcmon::analysis {

struct TrendFit {
  double slope_per_hour = 0.0;  // d(value)/d(hour)
  double intercept = 0.0;       // value at window start
  double r2 = 0.0;              // coefficient of determination
  std::size_t points = 0;
};

/// Ordinary least squares over an explicit point set.
TrendFit fit_trend(const std::vector<core::TimedValue>& points);

/// Rolling-window trend tracker for one series.
class TrendAnalyzer {
 public:
  explicit TrendAnalyzer(core::Duration window) : window_(window) {}

  void add(core::TimePoint t, double value);
  /// Fit over the current window; nullopt with < 3 points.
  std::optional<TrendFit> fit() const;

  /// Forecast when the trend crosses `limit`, or nullopt if the trend is
  /// flat/receding or the fit is poor (r2 < min_r2).
  std::optional<core::TimePoint> forecast_crossing(double limit,
                                                   double min_r2 = 0.5) const;

 private:
  core::Duration window_;
  std::deque<core::TimedValue> points_;
};

}  // namespace hpcmon::analysis
