#include "analysis/streaming.hpp"

#include <algorithm>

namespace hpcmon::analysis {

P2Quantile::P2Quantile(double quantile) : q_(quantile) {
  desired_ = {1.0, 1.0 + 2.0 * q_, 1.0 + 4.0 * q_, 3.0 + 2.0 * q_, 5.0};
  increments_ = {0.0, q_ / 2.0, q_, (1.0 + q_) / 2.0, 1.0};
  positions_ = {1.0, 2.0, 3.0, 4.0, 5.0};
}

void P2Quantile::add(double x) {
  ++count_;
  if (count_ <= 5) {
    heights_[count_ - 1] = x;
    if (count_ == 5) std::sort(heights_.begin(), heights_.end());
    return;
  }
  // Locate the cell containing x and update extreme markers.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }
  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // Adjust the three middle markers with parabolic interpolation.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double dp = positions_[i + 1] - positions_[i];
    const double dm = positions_[i - 1] - positions_[i];
    if ((d >= 1.0 && dp > 1.0) || (d <= -1.0 && dm < -1.0)) {
      const double sign = d >= 0 ? 1.0 : -1.0;
      const double hp = (heights_[i + 1] - heights_[i]) / dp;
      const double hm = (heights_[i - 1] - heights_[i]) / dm;
      double candidate = heights_[i] +
                         sign / (dp - dm) *
                             ((sign - dm) * hp + (dp - sign) * hm);
      if (heights_[i - 1] < candidate && candidate < heights_[i + 1]) {
        heights_[i] = candidate;
      } else {
        // Parabolic step would violate ordering; use linear step.
        const int j = i + static_cast<int>(sign);
        heights_[i] += sign * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] += sign;
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ <= 5) {
    // Exact quantile over the sorted prefix.
    std::array<double, 5> tmp = heights_;
    std::sort(tmp.begin(), tmp.begin() + count_);
    const auto idx = static_cast<std::size_t>(
        q_ * static_cast<double>(count_ - 1) + 0.5);
    return tmp[std::min<std::size_t>(idx, count_ - 1)];
  }
  return heights_[2];
}

std::optional<double> RateConverter::update(core::TimePoint t, double counter) {
  if (!has_prev_ || counter < prev_v_ || t <= prev_t_) {
    has_prev_ = true;
    prev_t_ = t;
    prev_v_ = counter;
    return std::nullopt;
  }
  const double dt_s = core::to_seconds(t - prev_t_);
  const double rate = (counter - prev_v_) / dt_s;
  prev_t_ = t;
  prev_v_ = counter;
  return rate;
}

}  // namespace hpcmon::analysis
