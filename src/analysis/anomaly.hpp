// Anomaly detectors over timeseries.
//
// "Sites have long been interested in early detection ... of component
// degradation and failure based on trend and outlier analysis" (Sec. III-B).
// Four detector families are provided; all consume one (time, value) stream
// and emit AnomalyEvents. They are deliberately small-state so one instance
// per series is affordable at machine scale.
#pragma once

#include <deque>
#include <optional>
#include <string>

#include "analysis/streaming.hpp"
#include "core/time.hpp"

namespace hpcmon::analysis {

struct AnomalyEvent {
  core::TimePoint time = 0;
  double value = 0.0;
  double score = 0.0;      // detector-specific magnitude (e.g. z-score)
  std::string detector;    // "zscore", "mad", "threshold", "cusum"
};

/// Rolling-window z-score: |x - mean| / stddev over the trailing window.
class ZScoreDetector {
 public:
  ZScoreDetector(std::size_t window, double threshold)
      : window_(window), threshold_(threshold) {}
  std::optional<AnomalyEvent> update(core::TimePoint t, double x);

 private:
  std::size_t window_;
  double threshold_;
  std::deque<double> values_;
};

/// Median absolute deviation detector: robust to the outliers it hunts.
class MadDetector {
 public:
  MadDetector(std::size_t window, double threshold)
      : window_(window), threshold_(threshold) {}
  std::optional<AnomalyEvent> update(core::TimePoint t, double x);

 private:
  std::size_t window_;
  double threshold_;
  std::deque<double> values_;
};

/// Static bounds with hysteresis: fires once on entering the bad region,
/// re-arms after returning below (threshold - hysteresis).
class ThresholdDetector {
 public:
  ThresholdDetector(double upper, double hysteresis = 0.0)
      : upper_(upper), hysteresis_(hysteresis) {}
  std::optional<AnomalyEvent> update(core::TimePoint t, double x);
  bool in_alarm() const { return in_alarm_; }

 private:
  double upper_;
  double hysteresis_;
  bool in_alarm_ = false;
};

/// One-sided CUSUM change detector: accumulates (x - target - slack) and
/// fires when the sum exceeds `decision`; good at slow drifts z-scores miss.
class CusumDetector {
 public:
  CusumDetector(double target, double slack, double decision)
      : target_(target), slack_(slack), decision_(decision) {}
  std::optional<AnomalyEvent> update(core::TimePoint t, double x);
  void reset() { sum_ = 0.0; }
  double sum() const { return sum_; }

 private:
  double target_;
  double slack_;
  double decision_;
  double sum_ = 0.0;
};

}  // namespace hpcmon::analysis
