// Log-template novelty detection.
//
// Sec. III-B: "in production most log analysis involves detection of
// well-known log lines. ... new or infrequent events may be missed until
// manual observation of events leads to identification of relevant log lines
// to include in the scan." Static SEC-style rules (rules.hpp) are exactly
// that scan; NoveltyDetector is the complement: it reduces each message to a
// template (numbers, ids and hex tokens abstracted to placeholders), learns
// the template population during a training window, and then flags templates
// never seen before — surfacing the "new signatures" without a human writing
// a rule first.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/log_event.hpp"
#include "core/time.hpp"

namespace hpcmon::analysis {

/// Canonical template of a log message: digit runs -> '#', hex-ish tokens ->
/// '&', so "CRC retry count 3 on port 0x1f" == "CRC retry count # on port &".
std::string message_template(std::string_view message);

struct NoveltyEvent {
  core::TimePoint time = 0;
  core::ComponentId component = core::kNoComponent;
  std::string tmpl;
  std::string example;  // the concrete first-seen message
};

struct NoveltyParams {
  /// Events observed before this instant only train the model; novelty is
  /// reported for events at or after it.
  core::TimePoint training_until = 0;
  /// Report a known-but-rare template again if it reappears after this long
  /// of silence (0 = first-seen only).
  core::Duration rare_gap = 0;
};

class NoveltyDetector {
 public:
  explicit NoveltyDetector(const NoveltyParams& params) : params_(params) {}

  /// Feed events in time order; returns the novelty report for this event
  /// (empty optional-like: vector of 0 or 1 entries keeps the API uniform
  /// with RuleEngine::process).
  std::vector<NoveltyEvent> process(const core::LogEvent& event);

  std::size_t known_templates() const { return last_seen_.size(); }
  /// Occurrence count of a template so far (0 if never seen).
  std::uint64_t occurrences(const std::string& tmpl) const;

 private:
  NoveltyParams params_;
  struct Seen {
    core::TimePoint last = 0;
    std::uint64_t count = 0;
  };
  std::unordered_map<std::string, Seen> last_seen_;
};

}  // namespace hpcmon::analysis
