// HSN congestion analysis from link counters (SNL, Sec. II.9).
//
// SNL uses "functional combinations of High Speed Network performance
// counters, collected periodically and synchronously across a whole system,
// to determine congestion levels, congestion regions, and impact on
// application performance". Given per-link stall rates (derived from stall
// counters by RateConverter), CongestionAnalyzer grades machine congestion
// and extracts *regions*: connected subgraphs of congested links over the
// router graph — the spatial structure dashboards render.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/topology.hpp"

namespace hpcmon::analysis {

enum class CongestionLevel : std::uint8_t { kNone, kLow, kMedium, kHigh };

std::string_view to_string(CongestionLevel level);

struct CongestionRegion {
  std::vector<int> links;    // link indices in the region
  std::vector<int> routers;  // routers touched by those links
  double peak_stall = 0.0;
  double mean_stall = 0.0;
};

struct CongestionReport {
  CongestionLevel level = CongestionLevel::kNone;
  double congested_link_fraction = 0.0;
  double max_stall = 0.0;
  std::vector<CongestionRegion> regions;  // sorted by size, largest first
};

struct CongestionParams {
  /// Stall rate above which a link counts as congested.
  double link_stall_threshold = 0.05;
  /// Machine-level grade boundaries on the congested-link fraction.
  double low_fraction = 0.01;
  double medium_fraction = 0.05;
  double high_fraction = 0.15;
};

/// Analyze one synchronized snapshot of per-link stall rates.
/// `stall_rates[i]` corresponds to topology link i.
CongestionReport analyze_congestion(const sim::Topology& topo,
                                    const std::vector<double>& stall_rates,
                                    const CongestionParams& params = {});

}  // namespace hpcmon::analysis
