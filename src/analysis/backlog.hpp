// Batch-queue backlog analysis (NERSC/CSC, Sec. II.3/II.4).
//
// NERSC "monitors the batch queue backlog - large or sudden changes in
// outstanding demand can indicate for example a spike in jobs that fail
// immediately upon starting (quickly emptying the queue) or a blockage in
// the queue (quickly filling it)". BacklogAnalyzer classifies queue-depth
// series into those regimes; CSC's wait-time estimate is provided as a
// simple Little's-law projection.
#pragma once

#include <string>
#include <vector>

#include "core/series_buffer.hpp"
#include "core/time.hpp"

namespace hpcmon::analysis {

enum class BacklogSignal : std::uint8_t {
  kNormal,
  kRapidDrain,   // queue emptying abnormally fast (failure storm?)
  kRapidFill,    // queue filling abnormally fast (blockage?)
};

std::string_view to_string(BacklogSignal signal);

struct BacklogEvent {
  core::TimePoint time = 0;
  BacklogSignal signal = BacklogSignal::kNormal;
  double rate_jobs_per_min = 0.0;  // signed depth change rate
  double depth = 0.0;
};

struct BacklogParams {
  /// |d(depth)/dt| in jobs/minute that flags an event.
  double rate_threshold = 3.0;
  /// Slope estimation window (samples).
  std::size_t window = 5;
};

/// Scan a queue-depth series for abnormal fill/drain episodes (one event per
/// episode, fired at its first sample).
std::vector<BacklogEvent> detect_backlog_events(
    const std::vector<core::TimedValue>& depth_series,
    const BacklogParams& params = {});

/// Expected wait for a newly submitted job (CSC's user-facing estimate):
/// queue_depth * mean_service_time / running_slots, in seconds.
double estimate_wait_seconds(double queue_depth, double mean_runtime_s,
                             double running_jobs);

}  // namespace hpcmon::analysis
