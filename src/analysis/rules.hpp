// SEC-style log rule engine.
//
// "Cray systems more generally use SEC, which can trigger events, such as
// alerts, upon matching conditions ... typically via regular-expression
// matching" (Sec. III-C / IV-C). RuleEngine implements the four rule shapes
// production SEC configs actually use:
//   kSingle     match -> fire
//   kPair       A then B within a window -> fire (event propagation chains)
//   kAbsence    A without B within a window -> fire (lost recovery)
//   kThreshold  N matches within a window -> fire (event storms)
// with per-rule suppression so storms don't re-fire every line.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/log_event.hpp"
#include "core/time.hpp"

namespace hpcmon::analysis {

enum class RuleKind : std::uint8_t { kSingle, kPair, kAbsence, kThreshold };

/// A fired rule, ready to become an alert.
struct RuleMatch {
  std::string rule_name;
  core::TimePoint time = 0;
  core::ComponentId component = core::kNoComponent;
  std::string detail;
};

struct Rule {
  std::string name;
  RuleKind kind = RuleKind::kSingle;
  /// Glob over the message ('*'/'?'); empty matches everything.
  std::string pattern;
  /// Only consider events at least this severe (numerically <=).
  std::optional<core::Severity> max_severity;
  std::optional<core::LogFacility> facility;
  /// Second pattern for kPair ("then B") and kAbsence ("expect B").
  std::string pattern_b;
  /// Window for kPair/kAbsence/kThreshold.
  core::Duration window = core::kMinute;
  /// Occurrence count for kThreshold.
  std::size_t count = 10;
  /// Re-fire suppression: identical (rule, component) fires are swallowed
  /// for this long (0 = no suppression).
  core::Duration suppress = 0;
  /// kPair/kAbsence/kThreshold: require B / counts on the same component.
  bool same_component = true;
};

class RuleEngine {
 public:
  void add_rule(Rule rule);
  std::size_t rule_count() const { return rules_.size(); }

  /// Feed events in time order. Returns matches fired by this event,
  /// including kAbsence expirations due at or before this event's time.
  std::vector<RuleMatch> process(const core::LogEvent& event);

  /// Flush kAbsence rules whose windows expire at or before `now` (call at
  /// end of stream or periodically; absence can only otherwise be noticed
  /// when a later event arrives).
  std::vector<RuleMatch> advance_time(core::TimePoint now);

  std::uint64_t events_processed() const { return processed_; }

 private:
  struct PendingPair {      // waiting for B (kPair) or expecting B (kAbsence)
    core::TimePoint deadline = 0;
    core::ComponentId component = core::kNoComponent;
    core::TimePoint started = 0;
  };
  struct RuleState {
    Rule rule;
    std::deque<PendingPair> pending;
    // kThreshold: recent match times (per component matched loosely).
    std::deque<std::pair<core::TimePoint, core::ComponentId>> recent;
    // Suppression memory: (component, last fire time).
    std::vector<std::pair<core::ComponentId, core::TimePoint>> last_fired;
  };

  bool matches(const Rule& r, const core::LogEvent& e,
               const std::string& pattern) const;
  bool suppressed(RuleState& rs, core::ComponentId c, core::TimePoint t) const;
  void note_fired(RuleState& rs, core::ComponentId c, core::TimePoint t);

  std::vector<RuleState> rules_;
  std::uint64_t processed_ = 0;
};

/// A starter rule set covering the events the simulated platform emits
/// (link failures without recovery, GPU DBE storms, MDS saturation, ...).
std::vector<Rule> standard_platform_rules();

}  // namespace hpcmon::analysis
