#include "analysis/correlate.hpp"

#include <algorithm>
#include <map>

namespace hpcmon::analysis {

MatchResult associate(const std::vector<Occurrence>& a,
                      const std::vector<Occurrence>& b,
                      core::Duration tolerance) {
  MatchResult r;
  std::vector<char> used(b.size(), 0);
  std::size_t start = 0;  // advancing lower bound into b
  for (const auto& ea : a) {
    while (start < b.size() && b[start].time < ea.time - tolerance) ++start;
    // Choose the nearest unused b within the window.
    std::size_t best = b.size();
    core::Duration best_d = tolerance + 1;
    for (std::size_t j = start; j < b.size() && b[j].time <= ea.time + tolerance;
         ++j) {
      if (used[j]) continue;
      const core::Duration d =
          b[j].time > ea.time ? b[j].time - ea.time : ea.time - b[j].time;
      if (d < best_d) {
        best_d = d;
        best = j;
      }
    }
    if (best < b.size()) {
      used[best] = 1;
      ++r.matched;
    } else {
      ++r.unmatched_a;
    }
  }
  for (const char u : used) {
    if (!u) ++r.unmatched_b;
  }
  return r;
}

std::vector<ConcurrentCondition> find_concurrent(
    std::vector<ConditionInterval> intervals, std::size_t min_components) {
  std::vector<ConcurrentCondition> out;
  if (intervals.empty()) return out;
  // Sweep line over interval boundaries.
  struct Edge {
    core::TimePoint t;
    bool open;
    std::size_t idx;
  };
  std::vector<Edge> edges;
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    if (intervals[i].range.empty()) continue;
    edges.push_back({intervals[i].range.begin, true, i});
    edges.push_back({intervals[i].range.end, false, i});
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.open < b.open;  // close before open at the same instant
  });
  std::vector<std::size_t> active;
  core::TimePoint segment_start = 0;
  auto emit = [&](core::TimePoint end) {
    // Count distinct components among active intervals.
    std::map<core::ComponentId, std::size_t> distinct;
    for (const auto idx : active) distinct[intervals[idx].component] = idx;
    if (distinct.size() >= min_components && segment_start < end) {
      ConcurrentCondition c;
      c.overlap = {segment_start, end};
      for (const auto& [comp, idx] : distinct) {
        c.components.push_back(comp);
        c.labels.push_back(intervals[idx].label);
      }
      // Merge with the previous group when contiguous and identical.
      if (!out.empty() && out.back().overlap.end == segment_start &&
          out.back().components == c.components) {
        out.back().overlap.end = end;
      } else {
        out.push_back(std::move(c));
      }
    }
  };
  for (const auto& e : edges) {
    emit(e.t);
    if (e.open) {
      active.push_back(e.idx);
    } else {
      active.erase(std::remove(active.begin(), active.end(), e.idx),
                   active.end());
    }
    segment_start = e.t;
  }
  return out;
}

}  // namespace hpcmon::analysis
