// DetectorBank: per-series anomaly detection over sample streams.
//
// Table I (Response): alerting "should be able to be triggered based on
// arbitrary locations in the data and analysis pathways". The rule engine
// covers the log pathway; DetectorBank covers the numeric one: a watch binds
// a detector factory to a metric family, and the bank lazily instantiates
// one detector instance per (metric, component) series as samples arrive —
// O(1) state per series, suitable for in-stream deployment.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/anomaly.hpp"
#include "core/registry.hpp"
#include "core/sample.hpp"

namespace hpcmon::analysis {

/// A detector instance: feed (time, value), maybe get an anomaly.
using DetectorFn =
    std::function<std::optional<AnomalyEvent>(core::TimePoint, double)>;
/// Creates a fresh detector per watched series.
using DetectorFactory = std::function<DetectorFn()>;

// Factory helpers for the standard detectors.
DetectorFactory zscore_factory(std::size_t window, double threshold);
DetectorFactory mad_factory(std::size_t window, double threshold);
DetectorFactory above_factory(double upper, double hysteresis = 0.0);
/// Fires when the value drops below `lower` (free memory, bandwidth...).
DetectorFactory below_factory(double lower, double hysteresis = 0.0);
DetectorFactory cusum_factory(double target, double slack, double decision);

struct NumericAnomaly {
  core::SeriesId series{0};
  core::ComponentId component = core::kNoComponent;
  std::string metric;
  std::string watch_name;
  AnomalyEvent event;
};

class DetectorBank {
 public:
  explicit DetectorBank(core::MetricRegistry& registry)
      : registry_(registry) {}

  /// Watch every series of `metric_name` with detectors from `factory`.
  void watch(std::string watch_name, std::string_view metric_name,
             DetectorFactory factory);

  /// Feed one batch; returns anomalies fired by it.
  std::vector<NumericAnomaly> process(const core::SampleBatch& batch);

  std::size_t watch_count() const { return watches_.size(); }
  std::size_t active_detectors() const { return detectors_.size(); }

 private:
  struct Watch {
    std::string name;
    std::string metric;
    std::uint32_t metric_index;
    DetectorFactory factory;
  };
  core::MetricRegistry& registry_;
  std::vector<Watch> watches_;
  // Keyed by (watch index, series).
  std::unordered_map<std::uint64_t, DetectorFn> detectors_;
};

}  // namespace hpcmon::analysis
