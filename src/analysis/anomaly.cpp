#include "analysis/anomaly.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace hpcmon::analysis {

std::optional<AnomalyEvent> ZScoreDetector::update(core::TimePoint t,
                                                   double x) {
  std::optional<AnomalyEvent> out;
  if (values_.size() >= window_ / 2) {  // need some history before judging
    OnlineStats stats;
    for (const double v : values_) stats.add(v);
    const double sd = stats.stddev();
    if (sd > 1e-12) {
      const double z = std::abs(x - stats.mean()) / sd;
      if (z >= threshold_) out = AnomalyEvent{t, x, z, "zscore"};
    }
  }
  values_.push_back(x);
  if (values_.size() > window_) values_.pop_front();
  return out;
}

std::optional<AnomalyEvent> MadDetector::update(core::TimePoint t, double x) {
  std::optional<AnomalyEvent> out;
  if (values_.size() >= window_ / 2) {
    std::vector<double> v(values_.begin(), values_.end());
    const auto mid = v.size() / 2;
    std::nth_element(v.begin(), v.begin() + mid, v.end());
    const double median = v[mid];
    for (auto& d : v) d = std::abs(d - median);
    std::nth_element(v.begin(), v.begin() + mid, v.end());
    const double mad = v[mid] * 1.4826;  // consistency factor for normal data
    if (mad > 1e-12) {
      const double score = std::abs(x - median) / mad;
      if (score >= threshold_) out = AnomalyEvent{t, x, score, "mad"};
    }
  }
  values_.push_back(x);
  if (values_.size() > window_) values_.pop_front();
  return out;
}

std::optional<AnomalyEvent> ThresholdDetector::update(core::TimePoint t,
                                                      double x) {
  if (!in_alarm_ && x > upper_) {
    in_alarm_ = true;
    return AnomalyEvent{t, x, x - upper_, "threshold"};
  }
  if (in_alarm_ && x < upper_ - hysteresis_) in_alarm_ = false;
  return std::nullopt;
}

std::optional<AnomalyEvent> CusumDetector::update(core::TimePoint t, double x) {
  sum_ = std::max(0.0, sum_ + (x - target_ - slack_));
  if (sum_ >= decision_) {
    const AnomalyEvent ev{t, x, sum_, "cusum"};
    sum_ = 0.0;  // re-arm
    return ev;
  }
  return std::nullopt;
}

}  // namespace hpcmon::analysis
