#include "analysis/changepoint.hpp"

#include <cmath>

#include "analysis/streaming.hpp"

namespace hpcmon::analysis {

std::vector<Onset> detect_onsets(const std::vector<core::TimedValue>& series,
                                 const OnsetParams& params) {
  std::vector<Onset> out;
  const std::size_t need = params.baseline + params.recent;
  if (series.size() < need) return out;

  std::size_t regime_start = 0;
  std::size_t i = need;
  while (i <= series.size()) {
    // Baseline: [regime_start, i - recent); recent: [i - recent, i).
    const std::size_t recent_begin = i - params.recent;
    if (recent_begin < regime_start + params.baseline) {
      ++i;
      continue;
    }
    OnlineStats base;
    for (std::size_t k = regime_start; k < recent_begin; ++k) {
      base.add(series[k].value);
    }
    OnlineStats recent;
    for (std::size_t k = recent_begin; k < i; ++k) {
      recent.add(series[k].value);
    }
    const double sd = base.stddev();
    const double shift = std::abs(recent.mean() - base.mean());
    const double rel =
        base.mean() == 0.0 ? 0.0 : shift / std::abs(base.mean());
    // Guard against near-zero-variance baselines claiming huge sigma.
    const double sigma = sd > 1e-9 ? shift / sd : (rel > 0 ? 1e9 : 0.0);
    if (sigma >= params.threshold_sigma && rel >= params.min_rel_shift) {
      out.push_back({series[recent_begin].time, base.mean(), recent.mean(),
                     sigma});
      // Restart the baseline strictly after the detection window: the recent
      // window may straddle the true change point, and letting straddling
      // samples into the next baseline inflates its variance enough to mask
      // the next shift.
      regime_start = i;
      i = regime_start + need;
    } else {
      ++i;
    }
  }
  return out;
}

}  // namespace hpcmon::analysis
