// Aggressor/victim classification from runtime variability (HLRS, Sec. II.10).
//
// HLRS "developed an approach for identifying 'aggressor' and 'victim'
// applications based on their runtime variability. Applications having high
// runtime variability are classified as 'victim' applications and those
// running concurrently that don't hit the 'victim' variability threshold are
// considered as possible 'aggressor' applications where the resource being
// contended for is assumed to be the HSN."
#pragma once

#include <string>
#include <vector>

#include "core/time.hpp"
#include "store/jobstore.hpp"

namespace hpcmon::analysis {

struct AppVariability {
  std::string app_name;
  std::size_t runs = 0;
  double mean_runtime_s = 0.0;
  double cv = 0.0;          // coefficient of variation of runtimes
  bool is_victim = false;
};

struct AggressorSuspect {
  std::string app_name;
  /// How many victim slow-runs this app overlapped with.
  std::size_t overlaps = 0;
  /// Fraction of this app's runs that overlapped a victim slow-run.
  double overlap_fraction = 0.0;
};

struct VariabilityParams {
  double victim_cv_threshold = 0.10;  // >10% runtime CV -> victim
  std::size_t min_runs = 3;
  /// A victim run counts as "slow" above mean * slow_factor.
  double slow_factor = 1.15;
};

class VariabilityAnalyzer {
 public:
  explicit VariabilityAnalyzer(const VariabilityParams& params = {})
      : params_(params) {}

  /// Per-app runtime variability over all completed runs in the store.
  std::vector<AppVariability> classify(const store::JobStore& jobs) const;

  /// For each victim app's slow runs, rank concurrently running non-victim
  /// apps by overlap count — the HSN-aggressor suspects.
  std::vector<AggressorSuspect> suspects(const store::JobStore& jobs) const;

 private:
  VariabilityParams params_;
};

}  // namespace hpcmon::analysis
