#include "analysis/detector_bank.hpp"

namespace hpcmon::analysis {

DetectorFactory zscore_factory(std::size_t window, double threshold) {
  return [window, threshold]() -> DetectorFn {
    auto det = std::make_shared<ZScoreDetector>(window, threshold);
    return [det](core::TimePoint t, double v) { return det->update(t, v); };
  };
}

DetectorFactory mad_factory(std::size_t window, double threshold) {
  return [window, threshold]() -> DetectorFn {
    auto det = std::make_shared<MadDetector>(window, threshold);
    return [det](core::TimePoint t, double v) { return det->update(t, v); };
  };
}

DetectorFactory above_factory(double upper, double hysteresis) {
  return [upper, hysteresis]() -> DetectorFn {
    auto det = std::make_shared<ThresholdDetector>(upper, hysteresis);
    return [det](core::TimePoint t, double v) { return det->update(t, v); };
  };
}

DetectorFactory below_factory(double lower, double hysteresis) {
  return [lower, hysteresis]() -> DetectorFn {
    // Negate: crossing below `lower` == -value crossing above -lower.
    auto det = std::make_shared<ThresholdDetector>(-lower, hysteresis);
    return [det](core::TimePoint t, double v) {
      auto ev = det->update(t, -v);
      if (ev) {
        ev->value = v;  // report the real value, not the negated one
        ev->detector = "below";
      }
      return ev;
    };
  };
}

DetectorFactory cusum_factory(double target, double slack, double decision) {
  return [target, slack, decision]() -> DetectorFn {
    auto det = std::make_shared<CusumDetector>(target, slack, decision);
    return [det](core::TimePoint t, double v) { return det->update(t, v); };
  };
}

void DetectorBank::watch(std::string watch_name, std::string_view metric_name,
                         DetectorFactory factory) {
  Watch w;
  w.name = std::move(watch_name);
  w.metric = std::string(metric_name);
  w.metric_index = registry_.register_metric({w.metric, "", "", false});
  w.factory = std::move(factory);
  watches_.push_back(std::move(w));
}

std::vector<NumericAnomaly> DetectorBank::process(
    const core::SampleBatch& batch) {
  std::vector<NumericAnomaly> out;
  for (const auto& s : batch.samples) {
    const auto metric_index = registry_.series_metric(s.series);
    for (std::size_t wi = 0; wi < watches_.size(); ++wi) {
      auto& w = watches_[wi];
      if (w.metric_index != metric_index) continue;
      const std::uint64_t key =
          (static_cast<std::uint64_t>(wi) << 32) | core::raw(s.series);
      auto it = detectors_.find(key);
      if (it == detectors_.end()) {
        it = detectors_.emplace(key, w.factory()).first;
      }
      if (auto ev = it->second(s.time, s.value)) {
        out.push_back({s.series, registry_.series_component(s.series),
                       w.metric, w.name, *ev});
      }
    }
  }
  return out;
}

}  // namespace hpcmon::analysis
