#include "analysis/novelty.hpp"

#include <cctype>

namespace hpcmon::analysis {

namespace {
bool is_hexish(std::string_view token) {
  if (token.size() >= 2 && token[0] == '0' &&
      (token[1] == 'x' || token[1] == 'X')) {
    return true;
  }
  // Tokens of length >= 6 consisting only of hex digits with at least one
  // decimal digit (catches uuids/addresses without eating real words).
  if (token.size() < 6) return false;
  bool has_digit = false;
  for (const char c : token) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      has_digit = true;
    } else if (!std::isxdigit(static_cast<unsigned char>(c))) {
      return false;
    }
  }
  return has_digit;
}
}  // namespace

std::string message_template(std::string_view message) {
  std::string out;
  out.reserve(message.size());
  std::size_t i = 0;
  while (i < message.size()) {
    const char c = message[i];
    if (std::isalnum(static_cast<unsigned char>(c))) {
      // Take the whole alnum token and classify it.
      std::size_t j = i;
      while (j < message.size() &&
             std::isalnum(static_cast<unsigned char>(message[j]))) {
        ++j;
      }
      const auto token = message.substr(i, j - i);
      bool has_digit = false;
      for (const char t : token) {
        if (std::isdigit(static_cast<unsigned char>(t))) has_digit = true;
      }
      if (is_hexish(token)) {
        out += '&';
      } else if (has_digit) {
        // Any token carrying a digit is a parameter: "3", "9m", "rank12".
        out += '#';
      } else {
        out += token;
      }
      i = j;
    } else {
      out += c;
      ++i;
    }
  }
  return out;
}

std::vector<NoveltyEvent> NoveltyDetector::process(
    const core::LogEvent& event) {
  std::vector<NoveltyEvent> out;
  auto tmpl = message_template(event.message);
  auto [it, inserted] = last_seen_.try_emplace(tmpl);
  auto& seen = it->second;
  const bool trained = event.time >= params_.training_until;
  const bool first = seen.count == 0;
  const bool rare_return = !first && params_.rare_gap > 0 &&
                           event.time - seen.last >= params_.rare_gap;
  if (trained && (first || rare_return)) {
    out.push_back({event.time, event.component, it->first, event.message});
  }
  ++seen.count;
  seen.last = event.time;
  (void)inserted;
  return out;
}

std::uint64_t NoveltyDetector::occurrences(const std::string& tmpl) const {
  auto it = last_seen_.find(tmpl);
  return it == last_seen_.end() ? 0 : it->second.count;
}

}  // namespace hpcmon::analysis
