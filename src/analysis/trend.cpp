#include "analysis/trend.hpp"

#include <cmath>

namespace hpcmon::analysis {

TrendFit fit_trend(const std::vector<core::TimedValue>& points) {
  TrendFit fit;
  fit.points = points.size();
  if (points.size() < 2) return fit;
  // Work in hours relative to the first point for conditioning.
  const double t0 = static_cast<double>(points.front().time);
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  const double n = static_cast<double>(points.size());
  for (const auto& p : points) {
    const double x =
        (static_cast<double>(p.time) - t0) / static_cast<double>(core::kHour);
    sx += x;
    sy += p.value;
    sxx += x * x;
    sxy += x * p.value;
    syy += p.value * p.value;
  }
  const double denom = n * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) return fit;
  fit.slope_per_hour = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope_per_hour * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  if (ss_tot > 1e-12) {
    const double ss_res_num =
        syy - fit.intercept * sy - fit.slope_per_hour * sxy;
    fit.r2 = 1.0 - ss_res_num / ss_tot;
    if (fit.r2 < 0.0) fit.r2 = 0.0;
    if (fit.r2 > 1.0) fit.r2 = 1.0;
  } else {
    fit.r2 = 1.0;  // perfectly flat series: trivially explained
  }
  return fit;
}

void TrendAnalyzer::add(core::TimePoint t, double value) {
  points_.push_back({t, value});
  while (!points_.empty() && points_.front().time < t - window_) {
    points_.pop_front();
  }
}

std::optional<TrendFit> TrendAnalyzer::fit() const {
  if (points_.size() < 3) return std::nullopt;
  return fit_trend({points_.begin(), points_.end()});
}

std::optional<core::TimePoint> TrendAnalyzer::forecast_crossing(
    double limit, double min_r2) const {
  const auto f = fit();
  if (!f || f->r2 < min_r2 || f->slope_per_hour <= 0.0) return std::nullopt;
  const double latest = points_.back().value;
  if (latest >= limit) return points_.back().time;  // already crossed
  const double hours = (limit - latest) / f->slope_per_hour;
  return points_.back().time +
         static_cast<core::Duration>(hours * static_cast<double>(core::kHour));
}

}  // namespace hpcmon::analysis
