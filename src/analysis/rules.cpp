#include "analysis/rules.hpp"

#include <algorithm>

#include "core/strings.hpp"

namespace hpcmon::analysis {

using core::ComponentId;
using core::LogEvent;
using core::TimePoint;

void RuleEngine::add_rule(Rule rule) {
  RuleState rs;
  rs.rule = std::move(rule);
  rules_.push_back(std::move(rs));
}

bool RuleEngine::matches(const Rule& r, const LogEvent& e,
                         const std::string& pattern) const {
  if (r.max_severity && e.severity > *r.max_severity) return false;
  if (r.facility && e.facility != *r.facility) return false;
  if (!pattern.empty() && !core::glob_match(pattern, e.message)) return false;
  return true;
}

bool RuleEngine::suppressed(RuleState& rs, ComponentId c, TimePoint t) const {
  if (rs.rule.suppress <= 0) return false;
  for (const auto& [comp, when] : rs.last_fired) {
    if (comp == c && t - when < rs.rule.suppress) return true;
  }
  return false;
}

void RuleEngine::note_fired(RuleState& rs, ComponentId c, TimePoint t) {
  for (auto& [comp, when] : rs.last_fired) {
    if (comp == c) {
      when = t;
      return;
    }
  }
  rs.last_fired.emplace_back(c, t);
}

std::vector<RuleMatch> RuleEngine::process(const LogEvent& e) {
  ++processed_;
  std::vector<RuleMatch> fired = advance_time(e.time);

  for (auto& rs : rules_) {
    auto& r = rs.rule;
    switch (r.kind) {
      case RuleKind::kSingle: {
        if (matches(r, e, r.pattern) && !suppressed(rs, e.component, e.time)) {
          fired.push_back({r.name, e.time, e.component, e.message});
          note_fired(rs, e.component, e.time);
        }
        break;
      }
      case RuleKind::kPair: {
        // B completes a pending A (fires); A opens a pending entry.
        if (matches(r, e, r.pattern_b)) {
          auto it = std::find_if(
              rs.pending.begin(), rs.pending.end(), [&](const PendingPair& p) {
                return (!r.same_component || p.component == e.component) &&
                       e.time <= p.deadline;
              });
          if (it != rs.pending.end()) {
            if (!suppressed(rs, e.component, e.time)) {
              fired.push_back({r.name, e.time, e.component,
                               core::strformat("pair completed after %s",
                                               core::format_duration(
                                                   e.time - it->started)
                                                   .c_str())});
              note_fired(rs, e.component, e.time);
            }
            rs.pending.erase(it);
            break;
          }
        }
        if (matches(r, e, r.pattern)) {
          rs.pending.push_back({e.time + r.window, e.component, e.time});
        }
        break;
      }
      case RuleKind::kAbsence: {
        // B cancels a pending expectation; expiry is handled by
        // advance_time().
        if (matches(r, e, r.pattern_b)) {
          auto it = std::find_if(
              rs.pending.begin(), rs.pending.end(), [&](const PendingPair& p) {
                return !r.same_component || p.component == e.component;
              });
          if (it != rs.pending.end()) {
            rs.pending.erase(it);
            break;
          }
        }
        if (matches(r, e, r.pattern)) {
          rs.pending.push_back({e.time + r.window, e.component, e.time});
        }
        break;
      }
      case RuleKind::kThreshold: {
        if (!matches(r, e, r.pattern)) break;
        const ComponentId key =
            r.same_component ? e.component : core::kNoComponent;
        rs.recent.emplace_back(e.time, key);
        while (!rs.recent.empty() &&
               rs.recent.front().first < e.time - r.window) {
          rs.recent.pop_front();
        }
        std::size_t n = 0;
        for (const auto& [t, c] : rs.recent) {
          if (c == key) ++n;
        }
        if (n >= r.count && !suppressed(rs, key, e.time)) {
          fired.push_back({r.name, e.time, e.component,
                           core::strformat("%zu matches within %s", n,
                                           core::format_duration(r.window)
                                               .c_str())});
          note_fired(rs, key, e.time);
        }
        break;
      }
    }
  }
  return fired;
}

std::vector<RuleMatch> RuleEngine::advance_time(TimePoint now) {
  std::vector<RuleMatch> fired;
  for (auto& rs : rules_) {
    if (rs.rule.kind != RuleKind::kAbsence) continue;
    while (!rs.pending.empty() && rs.pending.front().deadline <= now) {
      const auto p = rs.pending.front();
      rs.pending.pop_front();
      if (!suppressed(rs, p.component, p.deadline)) {
        fired.push_back({rs.rule.name, p.deadline, p.component,
                         "expected follow-up event never arrived"});
        note_fired(rs, p.component, p.deadline);
      }
    }
  }
  return fired;
}

std::vector<Rule> standard_platform_rules() {
  using S = core::Severity;
  using F = core::LogFacility;
  std::vector<Rule> rules;
  {
    Rule r;
    r.name = "hw_critical";
    r.kind = RuleKind::kSingle;
    r.max_severity = S::kCritical;
    r.facility = F::kHardware;
    r.suppress = 10 * core::kMinute;
    rules.push_back(r);
  }
  {
    Rule r;  // link failed but no recovery within 5 minutes
    r.name = "link_no_recovery";
    r.kind = RuleKind::kAbsence;
    r.pattern = "HSN link failed*";
    r.pattern_b = "HSN link recovered*";
    r.facility = F::kNetwork;
    r.window = 5 * core::kMinute;
    rules.push_back(r);
  }
  {
    Rule r;  // GPU DBE storm: many errors on one GPU within 30 min
    r.name = "gpu_dbe_storm";
    r.kind = RuleKind::kThreshold;
    r.pattern = "GPU double bit error*";
    r.window = 30 * core::kMinute;
    r.count = 3;
    r.suppress = core::kHour;
    rules.push_back(r);
  }
  {
    Rule r;  // filesystem saturation persisting
    r.name = "mds_saturated";
    r.kind = RuleKind::kThreshold;
    r.pattern = "MDS request queue saturated*";
    r.window = 10 * core::kMinute;
    r.count = 5;
    r.suppress = 30 * core::kMinute;
    rules.push_back(r);
  }
  {
    Rule r;  // health-check failure anywhere
    r.name = "health_failure";
    r.kind = RuleKind::kSingle;
    r.pattern = "health check failed*";
    r.facility = F::kHealth;
    r.suppress = 10 * core::kMinute;
    rules.push_back(r);
  }
  {
    Rule r;  // console log storm, machine-wide
    r.name = "console_storm";
    r.kind = RuleKind::kThreshold;
    r.facility = F::kConsole;
    r.max_severity = S::kWarning;
    r.window = core::kMinute;
    r.count = 50;
    r.same_component = false;
    r.suppress = 5 * core::kMinute;
    rules.push_back(r);
  }
  return rules;
}

}  // namespace hpcmon::analysis
