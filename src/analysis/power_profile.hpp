// Power-profile library and imbalance detection (KAUST, Sec. II.7 / Fig 3).
//
// KAUST found "power profiles of applications were repeatable enough that
// they can, through profiling, characterization, continuous monitoring, and
// comparison against power profiles of known good application runs, identify
// problems with the system and applications". PowerProfileLibrary stores a
// normalized reference trace per application and scores new runs against it.
// ImbalanceDetector implements the Fig 3 signal directly: cabinet-to-cabinet
// power variation during a job flags load imbalance / hung nodes.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/series_buffer.hpp"
#include "core/time.hpp"

namespace hpcmon::analysis {

/// A power trace normalized to `points` samples over the run and to mean 1.0
/// (so profiles compare across job sizes and durations).
struct PowerProfile {
  std::string app_name;
  std::vector<double> shape;  // `points` values, mean-normalized

  static PowerProfile from_trace(std::string app_name,
                                 const std::vector<core::TimedValue>& trace,
                                 std::size_t points = 64);
};

/// Normalized RMS distance between two profiles (0 = identical shape).
double profile_distance(const PowerProfile& a, const PowerProfile& b);

class PowerProfileLibrary {
 public:
  /// Record (or replace) the known-good reference for an app.
  void set_reference(PowerProfile profile);
  const PowerProfile* reference(const std::string& app_name) const;

  /// Distance of a run's trace from its app's reference; nullopt when no
  /// reference exists. Distances above ~0.25 are suspicious in practice.
  std::optional<double> score_run(const std::string& app_name,
                                  const std::vector<core::TimedValue>& trace) const;

  std::size_t size() const { return profiles_.size(); }

 private:
  std::map<std::string, PowerProfile> profiles_;
};

/// One detected imbalance window.
struct ImbalanceWindow {
  core::TimeRange range;
  double max_ratio = 1.0;    // max over window of (max cabinet / min cabinet)
  double draw_drop = 1.0;    // baseline system draw / window system draw
};

struct ImbalanceParams {
  /// Cabinet max/min power ratio that flags imbalance (Fig 3 showed ~3x).
  double ratio_threshold = 2.0;
  /// Windows shorter than this are ignored (sampling noise).
  core::Duration min_duration = 2 * core::kMinute;
};

/// Detect imbalance windows from synchronized per-cabinet power series.
/// `cabinet_series[c]` are the samples of cabinet c over the analysis range;
/// all series must share timestamps (synchronized sweeps).
std::vector<ImbalanceWindow> detect_imbalance(
    const std::vector<std::vector<core::TimedValue>>& cabinet_series,
    const ImbalanceParams& params = {});

}  // namespace hpcmon::analysis
