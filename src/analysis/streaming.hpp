// Streaming statistics primitives.
//
// Analyses must run "at variety of locations within the monitoring
// infrastructure (e.g., at data sources, as streaming analysis, at the
// store)" (Table I). These accumulators are O(1) memory so they can sit at
// any of those points: Welford mean/variance, EWMA, P-squared quantiles,
// and counter-to-rate conversion with reset handling.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <optional>

#include "core/time.hpp"

namespace hpcmon::analysis {

/// Welford online mean/variance.
class OnlineStats {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }
  std::uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 points.
  double variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return min_; }
  double max() const { return max_; }
  /// Coefficient of variation (stddev/mean); 0 when mean is 0.
  double cv() const { return mean_ == 0.0 ? 0.0 : stddev() / std::abs(mean_); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exponentially weighted moving average with optional variance tracking.
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {}
  void add(double x) {
    if (!initialized_) {
      mean_ = x;
      initialized_ = true;
      return;
    }
    const double d = x - mean_;
    mean_ += alpha_ * d;
    var_ = (1.0 - alpha_) * (var_ + alpha_ * d * d);
  }
  bool initialized() const { return initialized_; }
  double mean() const { return mean_; }
  double stddev() const { return std::sqrt(var_); }

 private:
  double alpha_;
  double mean_ = 0.0;
  double var_ = 0.0;
  bool initialized_ = false;
};

/// P-squared (P2) single-quantile estimator (Jain & Chlamtac, 1985):
/// O(1) memory approximation of an arbitrary quantile.
class P2Quantile {
 public:
  explicit P2Quantile(double quantile);
  void add(double x);
  /// Current estimate; exact for the first five observations.
  double value() const;
  std::uint64_t count() const { return count_; }

 private:
  double q_;
  std::uint64_t count_ = 0;
  std::array<double, 5> heights_{};
  std::array<double, 5> positions_{};
  std::array<double, 5> desired_{};
  std::array<double, 5> increments_{};
};

/// Convert a monotonic counter into a per-second rate; a counter that moves
/// backwards (component replaced / rolled over) restarts the baseline.
class RateConverter {
 public:
  /// Returns the rate over the interval since the previous observation, or
  /// nullopt for the first point / after a reset.
  std::optional<double> update(core::TimePoint t, double counter);

 private:
  bool has_prev_ = false;
  core::TimePoint prev_t_ = 0;
  double prev_v_ = 0.0;
};

}  // namespace hpcmon::analysis
