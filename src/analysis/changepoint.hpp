// Change-point (onset) detection for benchmark trending.
//
// Fig 2 (NERSC): "occurrences and onset of performance problems are apparent
// in visualizations tracking performance over time". detect_onsets finds
// level shifts in a probe-result series by comparing a trailing window's
// mean against a reference (baseline) window's distribution — the analytic
// equivalent of the staff eyeballing the plot.
#pragma once

#include <vector>

#include "core/series_buffer.hpp"
#include "core/time.hpp"

namespace hpcmon::analysis {

struct Onset {
  core::TimePoint time = 0;     // first sample of the shifted regime
  double before_mean = 0.0;
  double after_mean = 0.0;
  double shift_sigma = 0.0;     // |after-before| in baseline stddevs
};

struct OnsetParams {
  std::size_t baseline = 12;  // reference window length (samples)
  std::size_t recent = 4;     // trailing window length (samples)
  double threshold_sigma = 4.0;
  double min_rel_shift = 0.10;  // also require >=10% relative change
};

/// Scan a series for sustained level shifts (either direction). After an
/// onset fires, the baseline restarts in the new regime so each shift is
/// reported once.
std::vector<Onset> detect_onsets(const std::vector<core::TimedValue>& series,
                                 const OnsetParams& params = {});

}  // namespace hpcmon::analysis
