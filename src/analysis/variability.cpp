#include "analysis/variability.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "analysis/streaming.hpp"

namespace hpcmon::analysis {

namespace {
std::map<std::string, std::vector<store::JobMeta>> runs_by_app(
    const store::JobStore& jobs) {
  std::map<std::string, std::vector<store::JobMeta>> by_app;
  // Collect every completed job via a wide overlap query.
  for (const auto& j :
       jobs.jobs_overlapping({INT64_MIN / 2, INT64_MAX / 2})) {
    if (j.end_time >= 0 && !j.failed) by_app[j.app_name].push_back(j);
  }
  return by_app;
}
}  // namespace

std::vector<AppVariability> VariabilityAnalyzer::classify(
    const store::JobStore& jobs) const {
  std::vector<AppVariability> out;
  for (const auto& [app, runs] : runs_by_app(jobs)) {
    if (runs.size() < params_.min_runs) continue;
    OnlineStats stats;
    for (const auto& r : runs) {
      stats.add(core::to_seconds(r.end_time - r.start_time));
    }
    AppVariability v;
    v.app_name = app;
    v.runs = runs.size();
    v.mean_runtime_s = stats.mean();
    v.cv = stats.cv();
    v.is_victim = v.cv > params_.victim_cv_threshold;
    out.push_back(std::move(v));
  }
  std::sort(out.begin(), out.end(),
            [](const AppVariability& a, const AppVariability& b) {
              return a.cv > b.cv;
            });
  return out;
}

std::vector<AggressorSuspect> VariabilityAnalyzer::suspects(
    const store::JobStore& jobs) const {
  const auto by_app = runs_by_app(jobs);
  const auto classes = classify(jobs);
  std::set<std::string> victims;
  std::map<std::string, double> mean_runtime;
  for (const auto& c : classes) {
    if (c.is_victim) victims.insert(c.app_name);
    mean_runtime[c.app_name] = c.mean_runtime_s;
  }

  // Collect victim slow-run windows.
  std::vector<core::TimeRange> slow_windows;
  for (const auto& v : victims) {
    const auto it = by_app.find(v);
    if (it == by_app.end()) continue;
    for (const auto& run : it->second) {
      const double rt = core::to_seconds(run.end_time - run.start_time);
      if (rt > mean_runtime[v] * params_.slow_factor) {
        slow_windows.push_back({run.start_time, run.end_time});
      }
    }
  }

  std::vector<AggressorSuspect> out;
  for (const auto& [app, runs] : by_app) {
    if (victims.count(app) != 0) continue;  // victims are not suspects
    std::size_t overlaps = 0;
    for (const auto& run : runs) {
      const core::TimeRange rr{run.start_time, run.end_time};
      const bool hit =
          std::any_of(slow_windows.begin(), slow_windows.end(),
                      [&](const core::TimeRange& w) { return w.overlaps(rr); });
      if (hit) ++overlaps;
    }
    if (overlaps > 0) {
      out.push_back({app, overlaps,
                     static_cast<double>(overlaps) /
                         static_cast<double>(runs.size())});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const AggressorSuspect& a, const AggressorSuspect& b) {
              return a.overlaps > b.overlaps;
            });
  return out;
}

}  // namespace hpcmon::analysis
