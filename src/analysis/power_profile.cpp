#include "analysis/power_profile.hpp"

#include <algorithm>
#include <cmath>

namespace hpcmon::analysis {

using core::TimedValue;

PowerProfile PowerProfile::from_trace(std::string app_name,
                                      const std::vector<TimedValue>& trace,
                                      std::size_t points) {
  PowerProfile p;
  p.app_name = std::move(app_name);
  if (trace.empty() || points == 0) return p;
  p.shape.resize(points);
  // Resample by nearest neighbour over the run's normalized time axis.
  const auto n = trace.size();
  double sum = 0.0;
  for (std::size_t i = 0; i < points; ++i) {
    const auto src = std::min(
        n - 1, static_cast<std::size_t>(
                   static_cast<double>(i) * static_cast<double>(n) /
                   static_cast<double>(points)));
    p.shape[i] = trace[src].value;
    sum += p.shape[i];
  }
  const double mean = sum / static_cast<double>(points);
  if (mean > 1e-12) {
    for (auto& v : p.shape) v /= mean;
  }
  return p;
}

double profile_distance(const PowerProfile& a, const PowerProfile& b) {
  if (a.shape.empty() || a.shape.size() != b.shape.size()) return 1e9;
  double ss = 0.0;
  for (std::size_t i = 0; i < a.shape.size(); ++i) {
    const double d = a.shape[i] - b.shape[i];
    ss += d * d;
  }
  return std::sqrt(ss / static_cast<double>(a.shape.size()));
}

void PowerProfileLibrary::set_reference(PowerProfile profile) {
  profiles_[profile.app_name] = std::move(profile);
}

const PowerProfile* PowerProfileLibrary::reference(
    const std::string& app_name) const {
  auto it = profiles_.find(app_name);
  return it == profiles_.end() ? nullptr : &it->second;
}

std::optional<double> PowerProfileLibrary::score_run(
    const std::string& app_name, const std::vector<TimedValue>& trace) const {
  const auto* ref = reference(app_name);
  if (ref == nullptr) return std::nullopt;
  const auto run =
      PowerProfile::from_trace(app_name, trace, ref->shape.size());
  return profile_distance(*ref, run);
}

std::vector<ImbalanceWindow> detect_imbalance(
    const std::vector<std::vector<TimedValue>>& cabinet_series,
    const ImbalanceParams& params) {
  std::vector<ImbalanceWindow> out;
  if (cabinet_series.empty()) return out;
  const std::size_t len = cabinet_series[0].size();
  for (const auto& s : cabinet_series) {
    if (s.size() != len) return out;  // require synchronized sweeps
  }
  if (len == 0) return out;

  // Per-timestamp max/min ratio and total draw.
  std::vector<double> ratio(len), total(len);
  for (std::size_t i = 0; i < len; ++i) {
    double lo = cabinet_series[0][i].value;
    double hi = lo;
    double sum = 0.0;
    for (const auto& s : cabinet_series) {
      lo = std::min(lo, s[i].value);
      hi = std::max(hi, s[i].value);
      sum += s[i].value;
    }
    ratio[i] = lo > 1e-9 ? hi / lo : 1e9;
    total[i] = sum;
  }

  // Baseline draw: mean of total over balanced timestamps.
  double base_sum = 0.0;
  std::size_t base_n = 0;
  for (std::size_t i = 0; i < len; ++i) {
    if (ratio[i] < params.ratio_threshold) {
      base_sum += total[i];
      ++base_n;
    }
  }
  const double baseline = base_n > 0 ? base_sum / static_cast<double>(base_n)
                                     : total[0];

  // Contiguous runs of flagged timestamps form windows.
  std::size_t i = 0;
  const auto& t = cabinet_series[0];
  while (i < len) {
    if (ratio[i] < params.ratio_threshold) {
      ++i;
      continue;
    }
    const std::size_t begin = i;
    double worst = ratio[i];
    double draw_sum = 0.0;
    while (i < len && ratio[i] >= params.ratio_threshold) {
      worst = std::max(worst, ratio[i]);
      draw_sum += total[i];
      ++i;
    }
    const core::TimeRange range{t[begin].time,
                                i < len ? t[i].time : t[i - 1].time + 1};
    if (range.length() >= params.min_duration) {
      const double window_draw =
          draw_sum / static_cast<double>(i - begin);
      out.push_back({range, worst,
                     window_draw > 1e-9 ? baseline / window_draw : 1.0});
    }
  }
  return out;
}

}  // namespace hpcmon::analysis
