// Application behaviour profiles.
//
// KAUST (Sec. II.7) found that "power profiles of applications were
// repeatable enough" to detect system problems by comparing against known
// good runs. That only works if applications have structured, phase-wise
// resource behaviour — which is what AppProfile encodes: an ordered list of
// phases, each with CPU, memory, network, and I/O intensity, plus an
// active-node fraction used to model the load-imbalance bug of Fig 3.
#pragma once

#include <string>
#include <vector>

namespace hpcmon::sim {

/// One phase of an application's execution.
struct AppPhase {
  /// Fraction of the job's nominal runtime spent in this phase (sums to ~1).
  double duration_frac = 1.0;
  double cpu_util = 0.8;            // 0..1 on active nodes
  double mem_gb_per_node = 16.0;
  double net_gbps_per_node = 0.0;   // ring traffic to the next job node
  double read_mbps_per_node = 0.0;
  double write_mbps_per_node = 0.0;
  double md_ops_per_node = 0.0;     // filesystem metadata ops/s
  /// Fraction of the job's nodes doing work this phase; the rest idle-wait
  /// (models the Fig 3 load-imbalance pathology when < 1).
  double active_fraction = 1.0;
};

/// A named application with its phase structure.
struct AppProfile {
  std::string name;
  std::vector<AppPhase> phases;
  /// Progress slows by (1 + sensitivity * path_stall) under HSN congestion;
  /// 0 = immune (pure compute), ~1 = communication-bound (HLRS "victim").
  double network_sensitivity = 0.5;
  /// Progress in I/O phases slows with filesystem latency inflation.
  double io_sensitivity = 1.0;

  /// Phase index at a given progress fraction in [0,1].
  int phase_at(double progress) const;
};

// Canonical profiles used by the workload generator and benches. Each
// corresponds to a workload class the paper's sites monitor for.
AppProfile app_compute_bound();   // CPU-heavy, network-light
AppProfile app_network_heavy();   // halo-exchange style, congestion victim
AppProfile app_io_checkpoint();   // compute then burst writes (Fig 4 spikes)
AppProfile app_metadata_heavy();  // many small fs metadata ops
AppProfile app_imbalanced();      // middle phase with few active nodes (Fig 3)
AppProfile app_aggressor();       // all-to-all traffic blaster (HLRS)

/// All canonical profiles, for mixed workloads.
std::vector<AppProfile> standard_app_mix();

}  // namespace hpcmon::sim
