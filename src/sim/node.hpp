// Per-node instantaneous load and health state.
//
// This is the "raw data at maximum fidelity" surface (Table I, Architecture)
// that node samplers read: what /proc, /sys and MSRs expose on a real node.
#pragma once

#include <vector>

namespace hpcmon::sim {

struct NodeParams {
  double mem_total_gb = 128.0;
  double os_mem_gb = 6.0;  // kernel/daemon baseline usage
};

/// Instantaneous state of one compute node, recomputed every tick by the
/// scheduler from the applications running on it, plus fault state.
struct NodeState {
  double cpu_util = 0.0;       // 0..1
  double mem_used_gb = 0.0;    // application + OS + leak
  double read_mbps = 0.0;      // filesystem traffic attributed to this node
  double write_mbps = 0.0;
  double md_ops = 0.0;
  double gpu_util = 0.0;
  /// CPU frequency scaling factor in (0, 1]: 1.0 = nominal p-state.
  /// Compute throughput scales ~linearly, dynamic power ~cubically (DVFS).
  double pstate = 1.0;
  // Fault state.
  bool hung = false;           // NodeHang fault: job makes no progress
  double leak_gb = 0.0;        // accumulated memory leak
  bool down = false;           // removed from service (response action)
  // Health-check-visible service state (LANL-style checks, Sec. II.1).
  bool fs_mounted = true;
  bool daemons_ok = true;
};

}  // namespace hpcmon::sim
