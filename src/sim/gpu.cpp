#include "sim/gpu.hpp"

#include "core/strings.hpp"

namespace hpcmon::sim {

using core::Duration;
using core::LogEvent;
using core::LogFacility;
using core::Severity;
using core::TimePoint;

GpuFleet::GpuFleet(const Topology& topo, const GpuParams& params, core::Rng rng)
    : topo_(topo), params_(params), rng_(rng) {
  slot_of_node_.assign(topo.num_nodes(), -1);
  for (int i = 0; i < topo.num_nodes(); ++i) {
    if (topo.node_has_gpu(i)) {
      slot_of_node_[i] = static_cast<int>(gpu_nodes_.size());
      gpu_nodes_.push_back(i);
    }
  }
  gpus_.resize(gpu_nodes_.size());
}

int GpuFleet::slot(int node) const { return slot_of_node_.at(node); }

void GpuFleet::tick(TimePoint now, Duration dt, double corrosion_ppb,
                    std::vector<LogEvent>& log_out) {
  const double hours = core::to_seconds(dt) / 3600.0;
  const double excess_ppb =
      std::max(0.0, corrosion_ppb - params_.corrosion_threshold_ppb);
  for (std::size_t g = 0; g < gpus_.size(); ++g) {
    auto& gpu = gpus_[g];
    if (gpu.health == GpuHealth::kFailed) continue;
    gpu.damage += params_.damage_per_ppb_hour * excess_ppb * hours;
    if (gpu.health == GpuHealth::kOk) {
      const double hazard =
          (params_.base_degrade_per_hour +
           params_.damage_degrade_per_hour * gpu.damage) * hours;
      if (rng_.bernoulli(std::min(1.0, hazard))) {
        gpu.health = GpuHealth::kDegraded;
        log_out.push_back({now, now, topo_.gpu_of(gpu_nodes_[g]),
                           LogFacility::kHardware, Severity::kWarning,
                           core::kNoJob,
                           "GPU ECC page retirement threshold reached"});
      }
    }
    if (gpu.health == GpuHealth::kDegraded) {
      const double mean_dbe = params_.dbe_per_hour_degraded * hours;
      const auto dbes = rng_.poisson(mean_dbe);
      if (dbes > 0) {
        gpu.dbe += static_cast<double>(dbes);
        log_out.push_back({now, now, topo_.gpu_of(gpu_nodes_[g]),
                           LogFacility::kHardware, Severity::kError,
                           core::kNoJob,
                           core::strformat("GPU double bit error count %lld",
                                           static_cast<long long>(dbes))});
      }
      if (rng_.bernoulli(std::min(1.0, params_.degraded_fail_per_hour * hours))) {
        gpu.health = GpuHealth::kFailed;
        log_out.push_back({now, now, topo_.gpu_of(gpu_nodes_[g]),
                           LogFacility::kHardware, Severity::kCritical,
                           core::kNoJob, "GPU has fallen off the bus"});
      }
    }
  }
}

GpuHealth GpuFleet::health(int node) const {
  const int s = slot(node);
  return s < 0 ? GpuHealth::kOk : gpus_[s].health;
}

double GpuFleet::damage(int node) const {
  const int s = slot(node);
  return s < 0 ? 0.0 : gpus_[s].damage;
}

double GpuFleet::dbe_count(int node) const {
  const int s = slot(node);
  return s < 0 ? 0.0 : gpus_[s].dbe;
}

bool GpuFleet::run_diagnostic(int node) {
  const int s = slot(node);
  if (s < 0) return true;
  switch (gpus_[s].health) {
    case GpuHealth::kOk:
      return true;
    case GpuHealth::kDegraded:
      return !rng_.bernoulli(params_.diag_detect_degraded);
    case GpuHealth::kFailed:
      return false;
  }
  return true;
}

void GpuFleet::repair(int node) {
  const int s = slot(node);
  if (s >= 0) gpus_[s] = Gpu{};
}

int GpuFleet::count(GpuHealth h) const {
  int n = 0;
  for (const auto& g : gpus_) {
    if (g.health == h) ++n;
  }
  return n;
}

void GpuFleet::force_health(int node, GpuHealth h) {
  const int s = slot(node);
  if (s >= 0) gpus_[s].health = h;
}

}  // namespace hpcmon::sim
