#include "sim/power.hpp"

#include <algorithm>

#include "core/strings.hpp"

namespace hpcmon::sim {

using core::Duration;
using core::LogEvent;
using core::LogFacility;
using core::Severity;
using core::TimePoint;

PowerModel::PowerModel(const Topology& topo, const PowerParams& params,
                       core::Rng rng)
    : topo_(topo), params_(params), rng_(rng) {
  node_power_.assign(topo.num_nodes(), params.node_idle_w);
  cabinet_power_.assign(topo.num_cabinets(), 0.0);
  cabinet_temp_.assign(topo.num_cabinets(), params.inlet_temp_c);
}

void PowerModel::tick(TimePoint now, Duration dt,
                      const std::vector<NodeState>& nodes,
                      std::vector<LogEvent>& log_out) {
  const double dt_s = core::to_seconds(dt);
  std::fill(cabinet_power_.begin(), cabinet_power_.end(),
            params_.blower_w_per_cabinet);
  for (int i = 0; i < topo_.num_nodes(); ++i) {
    const auto& n = nodes[i];
    // DVFS: dynamic power ~ f^3 (voltage scales with frequency).
    const double dvfs = n.pstate * n.pstate * n.pstate;
    double p = params_.node_idle_w +
               (params_.node_peak_w - params_.node_idle_w) * n.cpu_util * dvfs;
    if (topo_.node_has_gpu(i)) {
      p += params_.gpu_idle_w +
           (params_.gpu_peak_w - params_.gpu_idle_w) * n.gpu_util;
    }
    if (n.down) p = 0.0;  // powered off for service
    p += rng_.normal(0.0, params_.noise_w);
    node_power_[i] = std::max(0.0, p);
    cabinet_power_[topo_.cabinet_of_node(i)] += node_power_[i];
  }
  system_power_ = 0.0;
  for (int c = 0; c < topo_.num_cabinets(); ++c) {
    system_power_ += cabinet_power_[c];
    cabinet_temp_[c] = params_.inlet_temp_c +
                       params_.temp_c_per_kw * cabinet_power_[c] / 1000.0 +
                       rng_.normal(0.0, 0.2);
  }
  energy_joules_ += system_power_ * dt_s;

  // Facility environment: slow random walk around baselines, plus any
  // injected corrosion excursion.
  facility_.humidity_pct =
      std::clamp(facility_.humidity_pct + rng_.normal(0.0, 0.05), 30.0, 60.0);
  facility_.particulates_ugm3 = std::max(
      0.0, facility_.particulates_ugm3 + rng_.normal(0.0, 0.02));
  double corrosion = 3.0 + rng_.normal(0.0, 0.1);
  if (now < excursion_until_) corrosion += excursion_ppb_;
  facility_.corrosion_ppb = std::max(0.0, corrosion);
  // ASHRAE severity level G1 is < 10 ppb for reactive gases; log breaches.
  if (facility_.corrosion_ppb > 10.0) {
    log_out.push_back({now, now, topo_.facility_sensor(),
                       LogFacility::kFacilityEnv, Severity::kWarning,
                       core::kNoJob,
                       core::strformat("corrosive gas %.1f ppb exceeds ASHRAE G1",
                                       facility_.corrosion_ppb)});
  }
}

void PowerModel::set_corrosion_excursion(double ppb, TimePoint until) {
  excursion_ppb_ = ppb;
  excursion_until_ = until;
}

}  // namespace hpcmon::sim
