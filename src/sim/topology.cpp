#include "sim/topology.hpp"

#include <cassert>

#include "core/strings.hpp"
#include "core/topo_path.hpp"

namespace hpcmon::sim {

using core::ComponentId;
using core::ComponentInfo;
using core::ComponentKind;
using core::strformat;

Topology::Topology(core::MetricRegistry& registry, const MachineShape& shape,
                   FabricKind fabric)
    : shape_(shape), fabric_(fabric) {
  assert(shape.cabinets > 0 && shape.chassis_per_cabinet > 0 &&
         shape.blades_per_chassis > 0 && shape.nodes_per_blade > 0);

  system_ = registry.register_component(
      {"system", ComponentKind::kSystem, core::kNoComponent});
  facility_ = registry.register_component(
      {"facility.env", ComponentKind::kFacility, system_});

  // Structure first (cabinet -> chassis -> blade), then nodes in one dense
  // block so node_index() can be O(1) arithmetic on the raw id. All cnames
  // and the node-index arithmetic come from core::TopoPath — the same helper
  // viz and serve use to map names back to coordinates.
  const core::TopoPath::Dims dims{shape.chassis_per_cabinet,
                                  shape.blades_per_chassis,
                                  shape.nodes_per_blade};
  for (int c = 0; c < shape.cabinets; ++c) {
    core::TopoPath path;
    path.cabinet = c;
    cabinets_.push_back(registry.register_component(
        {path.format(), ComponentKind::kCabinet, system_}));
    for (int ch = 0; ch < shape.chassis_per_cabinet; ++ch) {
      path.chassis = ch;
      path.slot = -1;
      chassis_.push_back(registry.register_component(
          {path.format(), ComponentKind::kChassis, cabinets_.back()}));
      for (int s = 0; s < shape.blades_per_chassis; ++s) {
        path.slot = s;
        blades_.push_back(registry.register_component(
            {path.format(), ComponentKind::kBlade, chassis_.back()}));
      }
    }
  }

  const int total = shape.total_nodes();
  nodes_.reserve(total);
  gpu_of_node_.assign(total, -1);
  const int gpu_cutoff = static_cast<int>(shape.gpu_node_fraction * total);
  for (int i = 0; i < total; ++i) {
    const auto path = core::TopoPath::of_node_index(i, dims);
    const auto id = registry.register_component(
        {path.format(), ComponentKind::kNode,
         blades_.at(path.blade_index(dims))});
    if (i == 0) first_node_raw_ = core::raw(id);
    nodes_.push_back(id);
  }
  // GPUs on the first gpu_cutoff nodes (a "hybrid partition", Piz-Daint style).
  for (int i = 0; i < gpu_cutoff; ++i) {
    gpu_of_node_[i] = static_cast<int>(gpus_.size());
    gpus_.push_back(registry.register_component(
        {strformat("gpu.%s", registry.component(nodes_[i]).name.c_str()),
         ComponentKind::kGpu, nodes_[i]}));
  }

  // One router per blade.
  num_routers_ = shape.total_blades();
  routers_.reserve(num_routers_);
  for (int r = 0; r < num_routers_; ++r) {
    routers_.push_back(registry.register_component(
        {strformat("rtr.%s", registry.component(blades_.at(r)).name.c_str()),
         ComponentKind::kHsnRouter, blades_.at(r)}));
  }
  out_links_.assign(num_routers_, {});

  if (fabric_ == FabricKind::kTorus3D) {
    build_torus_links(registry);
  } else {
    build_dragonfly_links(registry);
  }

  // Filesystems: one MDS + N OSTs each.
  for (int f = 0; f < shape.filesystems; ++f) {
    mds_.push_back(registry.register_component(
        {strformat("fs%d.mds", f), ComponentKind::kFsTarget, system_}));
    osts_.emplace_back();
    for (int o = 0; o < shape.osts_per_filesystem; ++o) {
      osts_.back().push_back(registry.register_component(
          {strformat("fs%d.ost%d", f, o), ComponentKind::kFsTarget, system_}));
    }
  }
}

int Topology::node_index(ComponentId id) const {
  const auto r = core::raw(id);
  if (r < first_node_raw_ ||
      r >= first_node_raw_ + static_cast<std::uint32_t>(nodes_.size())) {
    return -1;
  }
  return static_cast<int>(r - first_node_raw_);
}

ComponentId Topology::gpu_of(int node_index) const {
  const int g = gpu_of_node_.at(node_index);
  return g < 0 ? core::kNoComponent : gpus_.at(g);
}

int Topology::cabinet_of_node(int node_index) const {
  return node_index / shape_.nodes_per_cabinet();
}

std::vector<int> Topology::nodes_in_cabinet(int cabinet_index) const {
  std::vector<int> out;
  const int per = shape_.nodes_per_cabinet();
  out.reserve(per);
  for (int i = cabinet_index * per; i < (cabinet_index + 1) * per; ++i) {
    out.push_back(i);
  }
  return out;
}

int Topology::link_between(int src_router, int dst_router) const {
  for (int li : out_links_.at(src_router)) {
    if (links_[li].dst_router == dst_router) return li;
  }
  return -1;
}

Topology::Coord Topology::torus_coord(int router) const {
  const int x_dim = shape_.blades_per_chassis;
  const int y_dim = shape_.chassis_per_cabinet;
  Coord c;
  c.x = router % x_dim;
  c.y = (router / x_dim) % y_dim;
  c.z = router / (x_dim * y_dim);
  return c;
}

int Topology::add_link(core::MetricRegistry& registry, int src, int dst,
                       bool global) {
  const int index = static_cast<int>(links_.size());
  const auto comp = registry.register_component(
      {strformat("link.r%d-r%d", src, dst), ComponentKind::kHsnLink,
       routers_.at(src)});
  links_.push_back({src, dst, comp, global});
  out_links_.at(src).push_back(index);
  return index;
}

void Topology::build_torus_links(core::MetricRegistry& registry) {
  // 3D torus over (blade-slot, chassis, cabinet) with wraparound in each
  // dimension; dimensions of size <= 2 get a single bidirectional pair (a
  // wrap link would duplicate the direct one).
  const int x_dim = shape_.blades_per_chassis;
  const int y_dim = shape_.chassis_per_cabinet;
  const int z_dim = shape_.cabinets;
  auto router_at = [&](int x, int y, int z) {
    return x + x_dim * (y + y_dim * z);
  };
  for (int z = 0; z < z_dim; ++z) {
    for (int y = 0; y < y_dim; ++y) {
      for (int x = 0; x < x_dim; ++x) {
        const int r = router_at(x, y, z);
        auto connect = [&](int nx, int ny, int nz) {
          const int nr = router_at(nx, ny, nz);
          if (nr == r) return;
          if (link_between(r, nr) < 0) add_link(registry, r, nr, false);
          if (link_between(nr, r) < 0) add_link(registry, nr, r, false);
        };
        connect((x + 1) % x_dim, y, z);
        connect(x, (y + 1) % y_dim, z);
        connect(x, y, (z + 1) % z_dim);
      }
    }
  }
}

void Topology::build_dragonfly_links(core::MetricRegistry& registry) {
  // Group == cabinet. Intra-group: all-to-all among the group's routers
  // (Aries' electrical backplane behaves close to this). Inter-group: every
  // group pair gets one bidirectional global (optical) link; the endpoint
  // routers rotate so global traffic does not all land on router 0.
  const int per_group = shape_.chassis_per_cabinet * shape_.blades_per_chassis;
  const int groups = shape_.cabinets;
  for (int g = 0; g < groups; ++g) {
    const int base = g * per_group;
    for (int a = 0; a < per_group; ++a) {
      for (int b = a + 1; b < per_group; ++b) {
        add_link(registry, base + a, base + b, false);
        add_link(registry, base + b, base + a, false);
      }
    }
  }
  int rotation = 0;
  for (int g1 = 0; g1 < groups; ++g1) {
    for (int g2 = g1 + 1; g2 < groups; ++g2) {
      const int r1 = g1 * per_group + (rotation % per_group);
      const int r2 = g2 * per_group + ((rotation + 1) % per_group);
      add_link(registry, r1, r2, true);
      add_link(registry, r2, r1, true);
      ++rotation;
    }
  }
}

}  // namespace hpcmon::sim
