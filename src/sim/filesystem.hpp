// Lustre-like shared filesystem model: one MDS plus N OSTs per filesystem.
//
// NCSA (Sec. II.2) probes "file I/O and metadata action response latencies"
// against "each independent filesystem component"; Fig 4 drills from
// filesystem-aggregate read bytes/s down to per-node contributions. This
// model provides both surfaces: per-target latency/throughput (M/M/1-style
// latency inflation as utilization rho -> 1) and per-node demand attribution.
#pragma once

#include <vector>

#include "core/ids.hpp"
#include "core/log_event.hpp"
#include "core/rng.hpp"
#include "core/time.hpp"
#include "sim/topology.hpp"

namespace hpcmon::sim {

struct FsParams {
  double ost_bandwidth_mbps = 2000.0;   // per OST, read+write combined
  double mds_ops_capacity = 20000.0;    // metadata ops/s
  double base_io_latency_ms = 2.0;      // unloaded OST op latency
  double base_md_latency_ms = 0.8;      // unloaded MDS op latency
  double max_rho = 0.97;                // queueing model saturation clamp
};

/// State of one storage target (MDS or OST) for one tick.
struct FsTargetState {
  double demand = 0.0;      // MB/s for OSTs, ops/s for MDS
  double carried = 0.0;
  double utilization = 0.0;
  double latency_ms = 0.0;
  // Monotonic counters.
  double read_bytes = 0.0;   // OST only
  double write_bytes = 0.0;  // OST only
  double ops = 0.0;          // MDS only
  // Fault state: multiplies base latency and divides capacity.
  double slowdown = 1.0;
};

class FsModel {
 public:
  FsModel(const Topology& topo, const FsParams& params, core::Rng rng);

  /// Zero per-tick demand accumulators; call before adding job demand.
  void begin_tick();

  /// Add one node's I/O demand against filesystem `fs`. Reads/writes are
  /// striped round-robin over OSTs by node index; metadata goes to the MDS.
  void add_demand(int fs, int node, double read_mbps, double write_mbps,
                  double md_ops);

  /// Compute latencies/throughputs and advance counters.
  void tick(core::TimePoint now, core::Duration dt,
            std::vector<core::LogEvent>& log_out);

  int num_filesystems() const { return static_cast<int>(mds_.size()); }
  int num_osts(int fs) const { return static_cast<int>(osts_.at(fs).size()); }

  const FsTargetState& mds_state(int fs) const { return mds_.at(fs); }
  const FsTargetState& ost_state(int fs, int ost) const {
    return osts_.at(fs).at(ost);
  }

  /// Factor >= 1 by which I/O-phase progress is inflated on filesystem `fs`
  /// this tick (latency relative to unloaded baseline).
  double io_slowdown(int fs) const;

  /// Per-node I/O actually carried this tick (for Fig 4 attribution).
  double node_read_mbps(int node) const { return node_read_.at(node); }
  double node_write_mbps(int node) const { return node_write_.at(node); }

  /// Aggregate carried read MB/s across all OSTs of `fs` this tick.
  double fs_read_mbps(int fs) const;
  double fs_write_mbps(int fs) const;

  // -- Fault hooks ----------------------------------------------------------
  void set_ost_slowdown(int fs, int ost, double factor);
  void set_mds_slowdown(int fs, double factor);

 private:
  const Topology& topo_;
  FsParams params_;
  core::Rng rng_;
  std::vector<FsTargetState> mds_;                  // [fs]
  std::vector<std::vector<FsTargetState>> osts_;    // [fs][ost]
  std::vector<double> node_read_;                   // [node] demand MB/s
  std::vector<double> node_write_;
  // Per-tick read/write split of each OST's demand (for counters).
  std::vector<std::vector<double>> ost_read_demand_;
  std::vector<std::vector<double>> ost_write_demand_;
};

}  // namespace hpcmon::sim
