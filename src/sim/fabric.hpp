// High-speed network model: flows, routing, per-link counters, congestion.
//
// Mirrors the counter classes SNL's congestion work (Sec. II.9, [5]) builds
// on: per-link traffic and stall counters sampled synchronously system-wide.
// Jobs register traffic flows between their nodes; each tick the fabric
// routes demand, derives per-link utilization and stall rates, and advances
// monotonic counters (traffic bytes, stalls, bit errors). Fault injection can
// raise a link's bit-error rate (ALCF's BER trend analysis, Sec. II.8) or
// take a link down (rerouting then finds surviving paths).
#pragma once

#include <unordered_map>
#include <vector>

#include "core/ids.hpp"
#include "core/log_event.hpp"
#include "core/rng.hpp"
#include "sim/topology.hpp"

namespace hpcmon::sim {

struct FabricParams {
  double link_capacity_gbps = 10.0;
  double global_link_capacity_gbps = 25.0;  // dragonfly optical links
  double injection_capacity_gbps = 8.0;     // per-node NIC limit
  double base_ber = 1e-12;                  // bit errors per bit carried
};

/// One application traffic demand between two compute nodes.
struct Flow {
  int src_node = 0;
  int dst_node = 0;
  double gbps = 0.0;
};

/// Instantaneous and cumulative state of one directed link.
struct LinkState {
  // Instantaneous (recomputed every tick).
  double demand_gbps = 0.0;
  double carried_gbps = 0.0;
  double utilization = 0.0;   // carried / capacity
  double stall_rate = 0.0;    // (demand - capacity)+ / capacity
  // Monotonic counters (what a sampler reads).
  double traffic_bytes = 0.0;
  double stalls = 0.0;
  double bit_errors = 0.0;
  // Fault state.
  double ber_multiplier = 1.0;
  bool up = true;
};

class Fabric {
 public:
  Fabric(const Topology& topo, const FabricParams& params, core::Rng rng);

  /// Replace the flow set of a job (empty vector removes it).
  void set_job_flows(core::JobId job, std::vector<Flow> flows);
  void clear_job_flows(core::JobId job);

  /// Advance one tick: route demand, update link states and counters.
  /// Emits log events (link errors, congestion warnings) into `log_out`.
  void tick(core::TimePoint now, core::Duration dt,
            std::vector<core::LogEvent>& log_out);

  const LinkState& link_state(int link_index) const {
    return links_.at(link_index);
  }
  int num_links() const { return static_cast<int>(links_.size()); }

  /// Effective (post-congestion) injection bandwidth of a node, Gbit/s.
  double node_injection_gbps(int node) const {
    return node_injection_.at(node);
  }
  /// Injection as a fraction of NIC capacity — Fig 1's metric.
  double node_injection_utilization(int node) const {
    return node_injection_.at(node) / params_.injection_capacity_gbps;
  }

  /// Mean stall rate over the links a job's flows traverse (0 if no flows).
  /// Drives victim-app slowdown (HLRS, Sec. II.10).
  double job_path_stall(core::JobId job) const;

  /// Ratio of a job's carried to demanded bandwidth in [0,1]; 1 = uncongested.
  double job_delivered_fraction(core::JobId job) const;

  // -- Fault hooks ----------------------------------------------------------
  void set_link_ber_multiplier(int link_index, double multiplier);
  void set_link_up(int link_index, bool up);

  /// Links (indices) on the current route between two nodes; empty if
  /// unreachable. Exposed for congestion ground-truth checks in tests.
  const std::vector<int>& route(int src_node, int dst_node);

 private:
  const std::vector<int>& route_routers(int src_router, int dst_router);
  void invalidate_routes() { route_cache_.clear(); }
  double capacity(int link_index) const;

  const Topology& topo_;
  FabricParams params_;
  core::Rng rng_;
  std::vector<LinkState> links_;
  std::vector<double> node_injection_;
  std::unordered_map<core::JobId, std::vector<Flow>> flows_;
  // Route cache: key = src_router * num_routers + dst_router.
  std::unordered_map<std::uint64_t, std::vector<int>> route_cache_;
  static const std::vector<int> kEmptyRoute;
};

}  // namespace hpcmon::sim
