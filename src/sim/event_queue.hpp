// Discrete-event scheduling for the cluster simulator.
//
// A thin priority queue of (time, sequence, callback). Sequence numbers make
// same-time ordering deterministic (FIFO), which keeps whole-simulation runs
// bit-reproducible under a fixed seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "core/time.hpp"

namespace hpcmon::sim {

class EventQueue {
 public:
  using Callback = std::function<void(core::TimePoint)>;

  /// Schedule a one-shot callback at absolute time t.
  void schedule_at(core::TimePoint t, Callback cb) {
    heap_.push(Entry{t, next_seq_++, std::move(cb)});
  }

  /// Schedule a callback every `period`, first firing at `first`.
  /// The callback returns void; cancel by capturing a shared flag.
  void schedule_every(core::TimePoint first, core::Duration period,
                      Callback cb);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  core::TimePoint next_time() const { return heap_.top().time; }

  /// Pop and run all events with time <= t, in (time, seq) order.
  /// Returns the number of events executed. Events may schedule new events;
  /// newly scheduled events that fall within t are also executed.
  std::size_t run_until(core::TimePoint t);

 private:
  struct Entry {
    core::TimePoint time;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace hpcmon::sim
