#include "sim/apps.hpp"

namespace hpcmon::sim {

int AppProfile::phase_at(double progress) const {
  if (phases.empty()) return 0;
  double acc = 0.0;
  for (std::size_t i = 0; i < phases.size(); ++i) {
    acc += phases[i].duration_frac;
    if (progress < acc) return static_cast<int>(i);
  }
  return static_cast<int>(phases.size()) - 1;
}

AppProfile app_compute_bound() {
  AppProfile p;
  p.name = "compute_bound";
  p.network_sensitivity = 0.05;
  p.phases = {
      {.duration_frac = 0.05, .cpu_util = 0.30, .mem_gb_per_node = 8.0,
       .net_gbps_per_node = 0.1, .read_mbps_per_node = 200.0,
       .write_mbps_per_node = 0.0, .md_ops_per_node = 20.0,
       .active_fraction = 1.0},  // startup: read input deck
      {.duration_frac = 0.90, .cpu_util = 0.95, .mem_gb_per_node = 24.0,
       .net_gbps_per_node = 0.2, .read_mbps_per_node = 0.0,
       .write_mbps_per_node = 0.0, .md_ops_per_node = 1.0,
       .active_fraction = 1.0},
      {.duration_frac = 0.05, .cpu_util = 0.20, .mem_gb_per_node = 24.0,
       .net_gbps_per_node = 0.0, .read_mbps_per_node = 0.0,
       .write_mbps_per_node = 400.0, .md_ops_per_node = 10.0,
       .active_fraction = 1.0},  // final write
  };
  return p;
}

AppProfile app_network_heavy() {
  AppProfile p;
  p.name = "network_heavy";
  p.network_sensitivity = 1.0;
  p.phases = {
      {.duration_frac = 1.0, .cpu_util = 0.75, .mem_gb_per_node = 16.0,
       .net_gbps_per_node = 2.5, .read_mbps_per_node = 0.0,
       .write_mbps_per_node = 0.0, .md_ops_per_node = 1.0,
       .active_fraction = 1.0},
  };
  return p;
}

AppProfile app_io_checkpoint() {
  AppProfile p;
  p.name = "io_checkpoint";
  p.network_sensitivity = 0.3;
  // compute / checkpoint / compute / checkpoint: bursty write pattern that
  // shows up as spikes in filesystem aggregate plots (Fig 4).
  p.phases = {
      {.duration_frac = 0.40, .cpu_util = 0.90, .mem_gb_per_node = 32.0,
       .net_gbps_per_node = 0.8, .read_mbps_per_node = 0.0,
       .write_mbps_per_node = 0.0, .md_ops_per_node = 1.0,
       .active_fraction = 1.0},
      {.duration_frac = 0.10, .cpu_util = 0.25, .mem_gb_per_node = 32.0,
       .net_gbps_per_node = 0.1, .read_mbps_per_node = 0.0,
       .write_mbps_per_node = 1500.0, .md_ops_per_node = 50.0,
       .active_fraction = 1.0},
      {.duration_frac = 0.40, .cpu_util = 0.90, .mem_gb_per_node = 32.0,
       .net_gbps_per_node = 0.8, .read_mbps_per_node = 0.0,
       .write_mbps_per_node = 0.0, .md_ops_per_node = 1.0,
       .active_fraction = 1.0},
      {.duration_frac = 0.10, .cpu_util = 0.25, .mem_gb_per_node = 32.0,
       .net_gbps_per_node = 0.1, .read_mbps_per_node = 0.0,
       .write_mbps_per_node = 1500.0, .md_ops_per_node = 50.0,
       .active_fraction = 1.0},
  };
  return p;
}

AppProfile app_metadata_heavy() {
  AppProfile p;
  p.name = "metadata_heavy";
  p.network_sensitivity = 0.1;
  p.io_sensitivity = 1.5;
  p.phases = {
      {.duration_frac = 1.0, .cpu_util = 0.35, .mem_gb_per_node = 4.0,
       .net_gbps_per_node = 0.05, .read_mbps_per_node = 50.0,
       .write_mbps_per_node = 50.0, .md_ops_per_node = 500.0,
       .active_fraction = 1.0},
  };
  return p;
}

AppProfile app_imbalanced() {
  AppProfile p;
  p.name = "imbalanced";
  p.network_sensitivity = 0.4;
  // Middle phase: only ~30% of nodes work while the rest spin-wait at low
  // utilization. This is the pathology KAUST spotted from per-cabinet power
  // (Fig 3): large cabinet-to-cabinet variation and reduced system draw.
  p.phases = {
      {.duration_frac = 0.25, .cpu_util = 0.90, .mem_gb_per_node = 16.0,
       .net_gbps_per_node = 1.0, .read_mbps_per_node = 100.0,
       .write_mbps_per_node = 0.0, .md_ops_per_node = 5.0,
       .active_fraction = 1.0},
      {.duration_frac = 0.50, .cpu_util = 0.90, .mem_gb_per_node = 16.0,
       .net_gbps_per_node = 0.3, .read_mbps_per_node = 0.0,
       .write_mbps_per_node = 0.0, .md_ops_per_node = 1.0,
       .active_fraction = 0.30},
      {.duration_frac = 0.25, .cpu_util = 0.90, .mem_gb_per_node = 16.0,
       .net_gbps_per_node = 1.0, .read_mbps_per_node = 0.0,
       .write_mbps_per_node = 200.0, .md_ops_per_node = 5.0,
       .active_fraction = 1.0},
  };
  return p;
}

AppProfile app_aggressor() {
  AppProfile p;
  p.name = "aggressor";
  p.network_sensitivity = 0.0;  // blasts traffic, indifferent to stalls
  p.phases = {
      {.duration_frac = 1.0, .cpu_util = 0.50, .mem_gb_per_node = 8.0,
       .net_gbps_per_node = 7.5, .read_mbps_per_node = 0.0,
       .write_mbps_per_node = 0.0, .md_ops_per_node = 0.0,
       .active_fraction = 1.0},
  };
  return p;
}

std::vector<AppProfile> standard_app_mix() {
  return {app_compute_bound(), app_network_heavy(), app_io_checkpoint(),
          app_metadata_heavy(), app_imbalanced()};
}

}  // namespace hpcmon::sim
