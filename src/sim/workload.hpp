// Stochastic job stream: Poisson arrivals, log-normal sizes and runtimes,
// weighted application mix. Drives the background load every figure bench
// runs against ("a single run of an application may occupy thousands of
// nodes ... across several functional subsystems", Sec. II).
#pragma once

#include <vector>

#include "core/rng.hpp"
#include "core/time.hpp"
#include "sim/apps.hpp"
#include "sim/scheduler.hpp"

namespace hpcmon::sim {

struct WorkloadParams {
  core::Duration mean_interarrival = 2 * core::kMinute;
  int min_nodes = 2;
  int max_nodes = 64;
  /// Median of the log-normal node-count distribution.
  double median_nodes = 8.0;
  core::Duration min_runtime = 4 * core::kMinute;
  core::Duration median_runtime = 15 * core::kMinute;
  double runtime_sigma = 0.6;  // log-normal shape
  std::vector<AppProfile> mix = standard_app_mix();
  std::vector<double> weights = {};  // empty = uniform
  double gpu_job_fraction = 0.0;
};

class WorkloadGenerator {
 public:
  WorkloadGenerator(const WorkloadParams& params, core::Rng rng);

  /// Time until the next submission.
  core::Duration next_interarrival();
  /// Draw the next job request.
  JobRequest next_request();

 private:
  WorkloadParams params_;
  core::Rng rng_;
  std::vector<double> cumulative_;
};

}  // namespace hpcmon::sim
