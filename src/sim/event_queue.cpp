#include "sim/event_queue.hpp"

#include <memory>

namespace hpcmon::sim {

namespace {
// Self-rescheduling wrapper; shared_ptr to the body avoids copying a
// potentially heavy closure on every repetition.
struct Repeater {
  EventQueue* queue;
  core::Duration period;
  std::shared_ptr<EventQueue::Callback> body;
  void operator()(core::TimePoint now) const {
    (*body)(now);
    queue->schedule_at(now + period, Repeater{*this});
  }
};
}  // namespace

void EventQueue::schedule_every(core::TimePoint first, core::Duration period,
                                Callback cb) {
  schedule_at(first,
              Repeater{this, period, std::make_shared<Callback>(std::move(cb))});
}

std::size_t EventQueue::run_until(core::TimePoint t) {
  std::size_t n = 0;
  while (!heap_.empty() && heap_.top().time <= t) {
    // Copy out before pop so the callback may schedule freely.
    Entry e = heap_.top();
    heap_.pop();
    e.cb(e.time);
    ++n;
  }
  return n;
}

}  // namespace hpcmon::sim
