#include "sim/workload.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hpcmon::sim {

WorkloadGenerator::WorkloadGenerator(const WorkloadParams& params,
                                     core::Rng rng)
    : params_(params), rng_(rng) {
  assert(!params_.mix.empty());
  double total = 0.0;
  for (std::size_t i = 0; i < params_.mix.size(); ++i) {
    const double w = i < params_.weights.size() ? params_.weights[i] : 1.0;
    total += w;
    cumulative_.push_back(total);
  }
}

core::Duration WorkloadGenerator::next_interarrival() {
  return std::max<core::Duration>(
      core::kSecond,
      static_cast<core::Duration>(rng_.exponential(
          static_cast<double>(params_.mean_interarrival))));
}

JobRequest WorkloadGenerator::next_request() {
  JobRequest req;
  const double nodes = rng_.lognormal(std::log(params_.median_nodes), 0.8);
  req.num_nodes = std::clamp(static_cast<int>(nodes + 0.5), params_.min_nodes,
                             params_.max_nodes);
  const double runtime = rng_.lognormal(
      std::log(static_cast<double>(params_.median_runtime)),
      params_.runtime_sigma);
  req.nominal_runtime = std::max(params_.min_runtime,
                                 static_cast<core::Duration>(runtime));
  const double pick = rng_.uniform(0.0, cumulative_.back());
  const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), pick);
  req.profile = params_.mix.at(
      static_cast<std::size_t>(std::distance(cumulative_.begin(), it)));
  req.needs_gpu = rng_.bernoulli(params_.gpu_job_fraction);
  return req;
}

}  // namespace hpcmon::sim
