// GPU fleet health model.
//
// Combines two site stories: CSCS (Sec. II.5) gates every job behind pre/post
// GPU health checks so "a problem should only be encountered by at most one
// batch job"; ORNL (Sec. II.6) traced a rising GPU failure rate to
// sulfur-corrosion of SXM resistors — an environmental aging process. Here
// each GPU accumulates corrosion damage proportional to the facility's
// corrosive-gas level; damage raises the hazard of degradation, and degraded
// GPUs eventually fail (emitting double-bit-error log events).
#pragma once

#include <cstdint>
#include <vector>

#include "core/log_event.hpp"
#include "core/rng.hpp"
#include "core/time.hpp"
#include "sim/topology.hpp"

namespace hpcmon::sim {

enum class GpuHealth : std::uint8_t { kOk, kDegraded, kFailed };

struct GpuParams {
  /// Baseline probability of spontaneous degradation per GPU-hour.
  double base_degrade_per_hour = 2e-6;
  /// Additional degradation hazard per hour per unit of accumulated damage.
  double damage_degrade_per_hour = 2e-4;
  /// Damage accumulation per hour per ppb of corrosive gas above threshold.
  double damage_per_ppb_hour = 1e-3;
  double corrosion_threshold_ppb = 10.0;  // ASHRAE G1 boundary
  /// Probability per hour that a degraded GPU hard-fails.
  double degraded_fail_per_hour = 0.05;
  /// Probability a diagnostic catches a degraded (not yet failed) GPU.
  double diag_detect_degraded = 0.7;
  /// Rate of double-bit errors per hour on a degraded GPU.
  double dbe_per_hour_degraded = 0.5;
};

class GpuFleet {
 public:
  GpuFleet(const Topology& topo, const GpuParams& params, core::Rng rng);

  /// Advance aging/failure processes. `corrosion_ppb` is the current
  /// facility gas level; `gpu_util` is indexed by node.
  void tick(core::TimePoint now, core::Duration dt, double corrosion_ppb,
            std::vector<core::LogEvent>& log_out);

  /// Health of the GPU on `node`; kOk if the node has no GPU.
  GpuHealth health(int node) const;
  /// Accumulated corrosion damage (arbitrary units) of the GPU on `node`.
  double damage(int node) const;
  double dbe_count(int node) const;

  /// Run a CSCS-style diagnostic on the node's GPU. Failed GPUs always fail
  /// the diagnostic; degraded ones are caught with diag_detect_degraded
  /// probability; healthy ones always pass. Returns true on pass.
  bool run_diagnostic(int node);

  /// Replace the GPU (node taken out of service and repaired).
  void repair(int node);

  int num_gpus() const { return static_cast<int>(gpu_nodes_.size()); }
  /// Nodes that carry GPUs, ascending.
  const std::vector<int>& gpu_nodes() const { return gpu_nodes_; }
  /// Count of GPUs currently in each health state.
  int count(GpuHealth h) const;

  /// Force a health state (fault injection / tests).
  void force_health(int node, GpuHealth h);

 private:
  struct Gpu {
    GpuHealth health = GpuHealth::kOk;
    double damage = 0.0;
    double dbe = 0.0;
  };
  int slot(int node) const;  // index into gpus_, -1 if none

  const Topology& topo_;
  GpuParams params_;
  core::Rng rng_;
  std::vector<int> gpu_nodes_;
  std::vector<int> slot_of_node_;  // [node] -> gpu slot or -1
  std::vector<Gpu> gpus_;
};

}  // namespace hpcmon::sim
